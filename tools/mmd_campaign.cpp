// mmd_campaign — campaign service mode: many scenarios multiplexed over one
// process, with a shared executor and asset cache (docs/SERVICE.md).
//
//   mmd_campaign campaign.mmd --root=DIR
//   mmd_campaign campaign.mmd --root=DIR --resume
//   mmd_campaign campaign.mmd --root=DIR --summary=summary.json
//   mmd_campaign campaign.mmd --root=DIR --stop-after-jobs=2   # kill drill
//   mmd_campaign --print-example > campaign.mmd
//
// The campaign file declares a base scenario plus sweep.<key> axes that
// expand as a cross product into jobs. Jobs run on campaign.max_concurrent
// lanes; EAM tables are built once per distinct resolution and shared;
// accel=slave jobs interleave their kernel epochs on one shared slave-core
// pool. Each job checkpoints into <root>/<id>/ckpt and drops
// <root>/<id>/result.mmd on completion, so a killed campaign rerun with
// --resume skips finished jobs and resumes unfinished ones mid-flight.
//
// Exit codes: 0 all jobs done, 3 stopped early (some jobs pending),
// 1 runtime/config error or any job failed, 2 usage error.

#include <cstdio>
#include <string>

#include "serve/campaign.h"
#include "serve/campaign_runner.h"

using namespace mmd;

int main(int argc, char** argv) {
  std::string campaign_path;
  serve::CampaignRunner::Options opt;
  std::string summary_out;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-example") {
      std::fputs(serve::campaign_example_text().c_str(), stdout);
      return 0;
    } else if (arg.rfind("--root=", 0) == 0) {
      opt.root = arg.substr(7);
    } else if (arg.rfind("--summary=", 0) == 0) {
      summary_out = arg.substr(10);
    } else if (arg.rfind("--max-concurrent=", 0) == 0) {
      opt.max_concurrent = std::stoi(arg.substr(17));
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      opt.checkpoint_every = std::stoi(arg.substr(19));
    } else if (arg.rfind("--stop-after-jobs=", 0) == 0) {
      opt.stop_after_jobs = std::stoi(arg.substr(18));
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage_error = true;
    } else if (campaign_path.empty()) {
      campaign_path = arg;
    } else {
      usage_error = true;
    }
  }
  if (usage_error || campaign_path.empty() || opt.root.empty()) {
    std::fprintf(stderr,
                 "usage: mmd_campaign <campaign-file> --root=DIR [--resume]\n"
                 "                    [--max-concurrent=N] [--summary=FILE]\n"
                 "                    [--checkpoint-every=CYCLES] "
                 "[--stop-after-jobs=N]\n"
                 "       mmd_campaign --print-example\n");
    return 2;
  }

  try {
    serve::CampaignSpec spec = serve::CampaignSpec::parse_file(campaign_path);
    opt.on_job_complete = [](const serve::JobResult& r) {
      if (!r.error.empty()) {
        std::printf("mmd_campaign: %s [%s] FAILED after %.2f s: %s\n",
                    r.id.c_str(), r.label.c_str(), r.wall_seconds,
                    r.error.c_str());
      } else {
        std::printf(
            "mmd_campaign: %s [%s] %s (%.2f s, %llu vacancies, crc %u)\n",
            r.id.c_str(), r.label.c_str(),
            r.skipped ? "already done" : "completed", r.wall_seconds,
            static_cast<unsigned long long>(r.vacancies), r.vacancies_crc);
      }
      std::fflush(stdout);
    };
    serve::CampaignRunner runner(std::move(spec), std::move(opt));
    std::printf("mmd_campaign: %zu job(s), %d lane(s)%s\n",
                runner.spec().jobs.size(), runner.spec().max_concurrent,
                runner.spec().uses_slave_pool ? ", shared slave pool" : "");
    const serve::CampaignOutcome outcome = runner.run();
    std::printf(
        "mmd_campaign: %d completed, %d skipped, %d failed of %zu in %.2f s "
        "(%.1f jobs/hour, pool utilization %.0f%%)\n",
        outcome.completed, outcome.skipped, outcome.failed,
        runner.spec().jobs.size(), outcome.wall_seconds, outcome.jobs_per_hour,
        100.0 * outcome.pool_utilization);
    if (!summary_out.empty()) {
      if (!serve::write_campaign_summary_file(summary_out, runner.spec(),
                                              outcome)) {
        std::fprintf(stderr, "error: cannot write %s\n", summary_out.c_str());
        return 1;
      }
      std::printf("wrote %s (campaign summary)\n", summary_out.c_str());
    }
    if (outcome.failed > 0) return 1;
    return outcome.complete ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
