// mmd_run — configuration-file driver for the coupled MD-KMC damage
// simulation. The whole pipeline of core::Simulation exposed through a
// key=value file, with optional XYZ trajectory output for visualization.
//
//   mmd_run config.mmd
//   mmd_run config.mmd --trace-out=trace.json --metrics-out=metrics.json
//   mmd_run config.mmd --comm-trace-out=run.mmdtrace
//   mmd_run config.mmd --perf-report
//   mmd_run config.mmd --perf-report=perf.json
//   mmd_run config.mmd --checkpoint-dir=ckpt --checkpoint-every=10
//   mmd_run config.mmd --checkpoint-dir=ckpt --resume
//   mmd_run --print-defaults > config.mmd
//   mmd_run --help
//
// --trace-out writes a Chrome-trace JSON (load in chrome://tracing or
// ui.perfetto.dev) with per-rank MD/KMC phase spans; --metrics-out writes the
// flat metrics JSON (comm volumes, DMA traffic, timing split).
// --comm-trace-out enables the comm flight recorder and writes the binary
// per-message trace (replayable with mmd_trace_replay; equivalently set the
// comm.trace scenario key). With both --trace-out and the recorder enabled,
// messages appear as flow arrows between rank timelines. --perf-report
// analyzes the run's spans + metrics (per-phase critical path over ranks,
// load-imbalance factor, p50/p95/p99 span tails, DMA-vs-compute overlap) and
// prints the human-readable report; with =FILE it also writes the versioned
// JSON form. All output files that cannot be opened fail the run with a
// nonzero exit. See docs/OBSERVABILITY.md.
//
// --checkpoint-dir/--checkpoint-every enable periodic per-rank checkpoints
// of the full coupled state; --resume restarts from the newest committed
// epoch (falling back past corrupt ones), producing a report identical to an
// uninterrupted run. See docs/CHECKPOINTING.md. The flags override the
// checkpoint.dir / checkpoint.every configuration keys.
//
// Example configuration:
//
//   box           = 12        # unit cells per axis
//   ranks         = 4
//   temperature   = 600
//   md.time_ps    = 0.08
//   pka.count     = 4
//   pka.energy_ev = 100
//   kmc.cycles    = 60
//   kmc.strategy  = on-demand # traditional | on-demand | on-demand-2sided
//   xyz           = damage.xyz

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/simulation.h"
#include "lattice/geometry.h"
#include "telemetry/analysis.h"
#include "telemetry/comm_trace.h"
#include "telemetry/export.h"
#include "telemetry/session.h"
#include "util/key_value.h"

using namespace mmd;

namespace {

void print_defaults() {
  std::printf(
      "# mmd_run configuration (defaults shown)\n"
      "%s"
      "xyz           =          # optional: write final KMC sites as .xyz\n",
      core::scenario_defaults_text().c_str());
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: mmd_run <config-file> [--trace-out=FILE] "
               "[--metrics-out=FILE]\n"
               "               [--comm-trace-out=FILE] [--perf-report[=FILE]]\n"
               "               [--checkpoint-dir=DIR] "
               "[--checkpoint-every=CYCLES] [--resume]\n"
               "       mmd_run --print-defaults\n"
               "       mmd_run --help\n");
}

void print_help() {
  print_usage(stdout);
  std::printf(
      "\nRun the coupled MD-KMC metal-damage simulation described by the\n"
      "key=value <config-file> (see --print-defaults for the schema and\n"
      "docs/SAMPLING.md for the sampled long-time mode, sample.*).\n"
      "\noptions:\n"
      "  --trace-out=FILE         Chrome-trace JSON of per-rank phase spans\n"
      "  --metrics-out=FILE       flat metrics JSON (counters/gauges/timings)\n"
      "  --comm-trace-out=FILE    comm flight-recorder binary trace\n"
      "  --perf-report[=FILE]     per-phase critical-path analysis (stdout;\n"
      "                           with =FILE also the versioned JSON form)\n"
      "  --checkpoint-dir=DIR     per-rank checkpoint directory\n"
      "  --checkpoint-every=N     KMC cycles between checkpoint epochs\n"
      "  --resume                 restart from the newest committed epoch\n"
      "  --print-defaults         print the configuration schema and exit\n"
      "  --help                   this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string trace_out;
  std::string metrics_out;
  std::string comm_trace_out;
  std::string checkpoint_dir;
  int checkpoint_every = -1;  // -1: not given on the command line
  bool resume = false;
  bool perf_report = false;
  std::string perf_report_out;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-defaults") {
      print_defaults();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg.rfind("--comm-trace-out=", 0) == 0) {
      comm_trace_out = arg.substr(17);
    } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
      checkpoint_dir = arg.substr(17);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      checkpoint_every = std::stoi(arg.substr(19));
    } else if (arg == "--perf-report") {
      perf_report = true;
    } else if (arg.rfind("--perf-report=", 0) == 0) {
      perf_report = true;
      perf_report_out = arg.substr(14);
    } else if (arg == "--resume") {
      resume = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage_error = true;
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      usage_error = true;
    }
  }
  if (usage_error || config_path.empty()) {
    print_usage(stderr);
    return 2;
  }

  try {
    const auto cfg_file = util::KeyValueConfig::parse_file(config_path);

    core::SimulationConfig cfg = core::scenario_from_kv(cfg_file);
    const std::string xyz_path = cfg_file.get_string("xyz", "");
    // A typo'd key would silently fall through to its default; fail loudly
    // with the offending file:line instead.
    cfg_file.reject_unknown_keys();
    if (!checkpoint_dir.empty()) cfg.checkpoint_dir = checkpoint_dir;
    if (checkpoint_every >= 0) cfg.checkpoint_every = checkpoint_every;
    cfg.resume = resume;
    if (cfg.resume && cfg.checkpoint_dir.empty()) {
      std::fprintf(stderr, "error: --resume requires --checkpoint-dir or "
                           "checkpoint.dir\n");
      return 2;
    }

    // The flag overrides the comm.trace scenario key, mirroring checkpoints.
    if (!comm_trace_out.empty()) cfg.comm_trace = comm_trace_out;

    const int box = cfg.md.nx;
    std::printf("mmd_run: %d^3 cells (%d atoms), %d ranks, T = %.0f K\n", box,
                2 * box * box * box, cfg.nranks, cfg.md.temperature);
    telemetry::Session::Options session_opt;
    if (!cfg.comm_trace.empty()) {
      session_opt.comm_events_per_rank = std::size_t{1} << 16;
    }
    telemetry::Session session(cfg.nranks, session_opt);
    core::Simulation sim(cfg);
    const auto report = sim.run();
    // stderr, so stdout stays byte-comparable between a full run and a
    // kill-and-resume run (the CI restart-equivalence check diffs it).
    if (cfg.resume) {
      if (report.resumed) {
        std::fprintf(stderr, "mmd_run: resumed from checkpoint at KMC cycle %llu\n",
                     static_cast<unsigned long long>(report.resumed_from_cycle));
      } else {
        std::fprintf(stderr,
                     "mmd_run: no usable checkpoint in '%s'; started fresh\n",
                     cfg.checkpoint_dir.c_str());
      }
    }
    std::printf("%s\n", core::to_string(report).c_str());

    if (!trace_out.empty()) {
      // With the flight recorder on, comm messages ride along as flow arrows.
      if (!telemetry::write_chrome_trace_file(trace_out, session.tracer(),
                                              session.comm_recorder())) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
        return 1;
      }
      std::printf("wrote %s (Chrome trace; load in chrome://tracing or Perfetto)\n",
                  trace_out.c_str());
    }
    if (!cfg.comm_trace.empty()) {
      const auto agg = session.metrics().aggregate();
      const auto counter = [&](const char* name) -> std::uint64_t {
        const auto it = agg.counters.find(name);
        return it == agg.counters.end() ? 0 : it->second;
      };
      const auto nranks_u = static_cast<std::uint64_t>(cfg.nranks);
      // Per-rank step count: every rank walks the same MD + KMC loop, so the
      // replay's per-step normalization divides the aggregate by nranks.
      const std::uint64_t steps =
          (counter("md.steps") + counter("kmc.cycles")) / nranks_u;
      std::map<std::string, std::string> meta;
      meta["scenario"] = config_path;
      meta["ranks"] = std::to_string(cfg.nranks);
      meta["box"] = std::to_string(box);
      meta["atoms"] = std::to_string(2 * box * box * box);
      meta["steps"] = std::to_string(steps > 0 ? steps : 1);
      meta["md_steps"] = std::to_string(counter("md.steps") / nranks_u);
      meta["kmc_cycles"] = std::to_string(counter("kmc.cycles") / nranks_u);
      const auto trace = telemetry::trace_from_recorder(
          *session.comm_recorder(), std::move(meta));
      std::string err;
      if (!telemetry::write_comm_trace_file(cfg.comm_trace, trace, &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
      std::printf("wrote %s (comm trace: %llu events, %llu dropped)\n",
                  cfg.comm_trace.c_str(),
                  static_cast<unsigned long long>(trace.total_stored()),
                  static_cast<unsigned long long>(trace.total_dropped()));
    }
    if (!metrics_out.empty()) {
      if (!telemetry::write_metrics_json_file(metrics_out, session.metrics())) {
        std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
        return 1;
      }
      std::printf("wrote %s (metrics registry)\n", metrics_out.c_str());
    }

    if (perf_report) {
      const auto perf =
          telemetry::analyze(session.tracer(), session.metrics());
      write_perf_report_text(std::cout, perf);
      if (!perf_report_out.empty()) {
        if (!telemetry::write_perf_report_json_file(perf_report_out, perf)) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       perf_report_out.c_str());
          return 1;
        }
        std::printf("wrote %s (perf report)\n", perf_report_out.c_str());
      }
    }

    if (!xyz_path.empty()) {
      // Final vacancy field as pseudo-atom XYZ for OVITO/VMD.
      std::ofstream os(xyz_path);
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", xyz_path.c_str());
        return 1;
      }
      const lat::BccGeometry geo(box, box, box, cfg.md.lattice_constant);
      os << report.final_vacancies.size() << "\n";
      os << "Lattice=\"" << geo.box_length().x << " 0 0 0 " << geo.box_length().y
         << " 0 0 0 " << geo.box_length().z
         << "\" Properties=species:S:1:pos:R:3 final KMC vacancies\n";
      for (const std::int64_t gid : report.final_vacancies) {
        const util::Vec3 r = geo.position(geo.site_coord(gid));
        os << "X " << r.x << ' ' << r.y << ' ' << r.z << '\n';
      }
      std::printf("wrote %s (%zu vacancies)\n", xyz_path.c_str(),
                  report.final_vacancies.size());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
