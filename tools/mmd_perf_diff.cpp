// mmd_perf_diff — compare two BENCH_*.json files (perf::BenchReport schema)
// and grade every shared metric pass / warn / fail against a noise threshold
// derived from the recorded MAD of both runs.
//
//   mmd_perf_diff baseline.json candidate.json
//   mmd_perf_diff --warn-only bench/baselines/BENCH_micro_comm.json BENCH_micro_comm.json
//
// Exit codes (distinct so CI can gate on them):
//   0  every metric passed
//   3  at least one warning (regression between the noise gate and the fail
//      threshold, a new/vanished metric, or --warn-only demotions)
//   4  at least one failure
//   2  usage error, unreadable file, or schema mismatch
//
// Options:
//   --warn-only          demote failures to warnings (seed baselines recorded
//                        on different hardware)
//   --rel-floor=F        ignore relative regressions below F       (default 0.02)
//   --noise-sigmas=S     noise gate width in robust sigmas          (default 3)
//   --fail-rel=F         fail beyond this relative regression       (default 0.10)

#include <cstdio>
#include <iostream>
#include <string>

#include "perf/bench_report.h"

using namespace mmd;

namespace {

constexpr int kExitPass = 0;
constexpr int kExitUsage = 2;
constexpr int kExitWarn = 3;
constexpr int kExitFail = 4;

int usage() {
  std::fprintf(stderr,
               "usage: mmd_perf_diff [--warn-only] [--rel-floor=F] "
               "[--noise-sigmas=S] [--fail-rel=F]\n"
               "                     <baseline.json> <candidate.json>\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  perf::DiffOptions opt;
  std::string paths[2];
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--warn-only") {
        opt.warn_only = true;
      } else if (arg.rfind("--rel-floor=", 0) == 0) {
        opt.rel_floor = std::stod(arg.substr(12));
      } else if (arg.rfind("--noise-sigmas=", 0) == 0) {
        opt.noise_sigmas = std::stod(arg.substr(15));
      } else if (arg.rfind("--fail-rel=", 0) == 0) {
        opt.fail_rel = std::stod(arg.substr(11));
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
        return usage();
      } else if (npaths < 2) {
        paths[npaths++] = arg;
      } else {
        return usage();
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: bad value in '%s'\n", arg.c_str());
      return kExitUsage;
    }
  }
  if (npaths != 2) return usage();

  try {
    const perf::BenchReport baseline = perf::BenchReport::load_file(paths[0]);
    const perf::BenchReport candidate = perf::BenchReport::load_file(paths[1]);
    if (baseline.name != candidate.name) {
      std::fprintf(stderr,
                   "warning: comparing different benches ('%s' vs '%s')\n",
                   baseline.name.c_str(), candidate.name.c_str());
    }
    std::printf("mmd_perf_diff: %s\n  baseline : %s  (%s, %s, %s)\n"
                "  candidate: %s  (%s, %s, %s)\n",
                baseline.name.c_str(), paths[0].c_str(),
                baseline.env.git_sha.c_str(), baseline.env.compiler.c_str(),
                baseline.env.timestamp_utc.c_str(), paths[1].c_str(),
                candidate.env.git_sha.c_str(), candidate.env.compiler.c_str(),
                candidate.env.timestamp_utc.c_str());
    const perf::DiffReport diff = perf::diff_reports(baseline, candidate, opt);
    perf::write_diff_text(std::cout, diff);
    switch (diff.overall()) {
      case perf::Verdict::Pass: return kExitPass;
      case perf::Verdict::Warn: return kExitWarn;
      case perf::Verdict::Fail: return kExitFail;
    }
    return kExitFail;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  }
}
