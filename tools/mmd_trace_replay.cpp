// Replay a recorded comm trace through the topology-aware platform model and
// project weak/strong scaling to the paper's TaihuLight core counts
// (Fig. 12/13), including the 40,960-node full machine. See
// docs/OBSERVABILITY.md "Record -> calibrate -> replay".
//
// Usage:
//   mmd_trace_replay TRACE.mmdtrace [options]
//     --json=FILE           write the projection JSON (schema mmd.trace_replay)
//     --no-contention       price every link as private (flat-model bound)
//     --steps=N             override the trace's step count
//     --weak-eff=E          weak calibration target (default 0.85)
//     --strong-speedup=S    strong calibration target (default 26.4)
//     --compute-from-trace  use the trace's own compute time, no calibration
//
// Exit codes: 0 ok, 1 runtime error (unreadable/corrupt trace, unwritable
// output), 2 usage.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "perf/trace_replay.h"
#include "telemetry/comm_trace.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mmd_trace_replay TRACE.mmdtrace [--json=FILE] [--no-contention]\n"
      "                        [--steps=N] [--weak-eff=E] [--strong-speedup=S]\n"
      "                        [--compute-from-trace]\n");
  return 2;
}

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  mmd::perf::ProjectionOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--no-contention") == 0) {
      opt.contention = false;
    } else if (std::strcmp(arg, "--compute-from-trace") == 0) {
      opt.compute_from_trace = true;
    } else if (parse_flag(arg, "--json", &value)) {
      json_path = value;
    } else if (parse_flag(arg, "--steps", &value)) {
      opt.steps = std::strtoull(value.c_str(), nullptr, 10);
      if (opt.steps == 0) return usage();
    } else if (parse_flag(arg, "--weak-eff", &value)) {
      opt.weak_target_eff = std::strtod(value.c_str(), nullptr);
      if (opt.weak_target_eff <= 0.0 || opt.weak_target_eff > 1.0) {
        return usage();
      }
    } else if (parse_flag(arg, "--strong-speedup", &value)) {
      opt.strong_target_speedup = std::strtod(value.c_str(), nullptr);
      if (opt.strong_target_speedup <= 0.0) return usage();
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "mmd_trace_replay: unknown option %s\n", arg);
      return usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      return usage();
    }
  }
  if (trace_path.empty()) return usage();

  try {
    const mmd::telemetry::CommTraceData trace =
        mmd::telemetry::read_comm_trace_file(trace_path);
    const mmd::perf::ProjectionResult result =
        mmd::perf::project_scaling(trace, opt);
    mmd::perf::print_projection(std::cout, result);
    if (!json_path.empty()) {
      if (!mmd::perf::write_projection_json_file(json_path, result)) {
        std::fprintf(stderr, "mmd_trace_replay: cannot write %s\n",
                     json_path.c_str());
        return 1;
      }
      std::printf("\nProjection JSON: %s\n", json_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmd_trace_replay: %s\n", e.what());
    return 1;
  }
  return 0;
}
