// Ablation: atomistic KMC (the paper's choice, §2.2) vs object KMC (the
// related-work alternative, refs [13, 15]) on the same initial damage.
//
// Both engines start from an identical random vacancy population and evolve
// it at 600 K. AKMC resolves every vacancy-atom exchange on the BCC lattice;
// OKMC steps whole clusters with coarse-grained rates. The comparison shows
// (a) both reproduce the clustering trend of Fig. 17, and (b) why the paper
// prefers AKMC: full EAM fidelity and per-site detail, at the cost of much
// smaller time steps — which is exactly what makes its parallel scaling
// story matter.

#include <mutex>

#include "bench_common.h"
#include "kmc/clusters.h"
#include "kmc/engine.h"
#include "kmc/okmc.h"

using namespace mmd;

int main() {
  bench::title("Ablation", "atomistic KMC vs object KMC on identical initial damage");

  kmc::KmcConfig acfg;
  acfg.nx = acfg.ny = acfg.nz = 14;
  acfg.table_segments = 500;
  acfg.dt_scale = 4.0;
  const double conc = 0.008;
  const int nranks = 2;
  const kmc::KmcSetup setup(acfg, nranks);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(acfg.lattice_constant, acfg.cutoff), acfg.table_segments);

  // --- AKMC ---
  std::vector<std::int64_t> initial, akmc_final;
  double akmc_time = 0.0;
  std::uint64_t akmc_events = 0;
  std::mutex m;
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    kmc::KmcEngine engine(acfg, setup.geo, setup.dd, tables, comm.rank(),
                          kmc::GhostStrategy::OnDemandOneSided);
    engine.initialize_random(comm, conc);
    auto init = engine.gather_vacancies(comm);
    engine.run_cycles(comm, 40);
    auto fin = engine.gather_vacancies(comm);
    const auto ev = comm.allreduce_sum_u64(engine.stats().events);
    if (comm.rank() == 0) {
      std::lock_guard lk(m);
      initial = std::move(init);
      akmc_final = std::move(fin);
      akmc_time = engine.mc_time();
      akmc_events = ev;
    }
  });

  // --- OKMC from the same vacancies ---
  kmc::OkmcConfig ocfg;
  ocfg.nx = acfg.nx;
  ocfg.ny = acfg.ny;
  ocfg.nz = acfg.nz;
  ocfg.temperature = acfg.temperature;
  kmc::OkmcEngine okmc(ocfg);
  std::vector<util::Vec3> seeds;
  for (std::int64_t gid : initial) {
    seeds.push_back(setup.geo.position(setup.geo.site_coord(gid)));
  }
  okmc.initialize(seeds);
  const double okmc_mean0 = okmc.mean_cluster_size();
  okmc.run_until(akmc_time);  // same physical MC time

  const auto before = kmc::cluster_vacancies(setup.geo, initial);
  const auto after = kmc::cluster_vacancies(setup.geo, akmc_final);

  std::printf("\n  initial damage: %llu vacancies, %llu clusters (mean %.2f)\n",
              static_cast<unsigned long long>(before.num_vacancies),
              static_cast<unsigned long long>(before.num_clusters),
              before.mean_size);
  std::printf("\n  %-10s %12s %12s %12s %14s %12s\n", "engine", "MC time [s]",
              "events", "clusters", "mean size", "vacancies");
  std::printf("  %-10s %12.3g %12llu %12llu %14.2f %12llu\n", "AKMC", akmc_time,
              static_cast<unsigned long long>(akmc_events),
              static_cast<unsigned long long>(after.num_clusters),
              after.mean_size,
              static_cast<unsigned long long>(after.num_vacancies));
  std::printf("  %-10s %12.3g %12llu %12zu %14.2f %12lld\n", "OKMC",
              okmc.time(), static_cast<unsigned long long>(okmc.events()),
              okmc.objects().size(), okmc.mean_cluster_size(),
              static_cast<long long>(okmc.total_vacancies()));

  std::printf("\n");
  bench::note("both engines conserve vacancies and aggregate them (mean size");
  bench::note("grows from %.2f: AKMC -> %.2f, OKMC -> %.2f from %.2f)",
              before.mean_size, after.mean_size, okmc.mean_cluster_size(),
              okmc_mean0);
  bench::note("AKMC pays ~%.0fx more events for on-lattice EAM fidelity — the",
              static_cast<double>(akmc_events) /
                  std::max(1.0, static_cast<double>(okmc.events())));
  bench::note("cost that motivates the paper's parallel-scaling work.");
  return 0;
}
