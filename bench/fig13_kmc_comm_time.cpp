// Fig. 13 — KMC communication time: traditional vs on-demand, 1.6e7 sites,
// C_v = 4.5e-5, 16..1024 master cores. Paper: on-demand gives ~21x lower
// communication time on average.
//
// Live runs provide measured in-process communication seconds AND per-cycle
// message/byte counts; the alpha-beta network model converts the counts into
// modeled times at the paper's core counts.

#include <mutex>

#include "bench_common.h"
#include "harness.h"
#include "kmc/engine.h"
#include "perf/scaling_model.h"
#include "util/stats.h"

using namespace mmd;

namespace {

struct Cost {
  kmc::GhostTraffic traffic;
  double comm_seconds = 0.0;
  std::uint64_t cycles = 0;
};

Cost run(int nranks, kmc::GhostStrategy strategy, int cells, double conc,
         int cycles) {
  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = cells;
  cfg.table_segments = 500;
  cfg.dt_scale = 2.0;
  const kmc::KmcSetup setup(cfg, nranks);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  Cost cost;
  std::mutex m;
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    kmc::KmcEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank(), strategy);
    engine.initialize_random(comm, conc);
    engine.ghost_comm().reset_traffic();
    engine.run_cycles(comm, cycles);
    const double comm_s = comm.allreduce_max(engine.communication_seconds());
    std::lock_guard lk(m);
    cost.traffic += engine.ghost_comm().traffic();
    if (comm.rank() == 0) {
      cost.comm_seconds = comm_s;
      cost.cycles = engine.stats().cycles;
    }
  });
  return cost;
}

}  // namespace

int main() {
  bench::title("Fig. 13", "KMC communication time: traditional vs on-demand");
  // Each sample is a whole engine lifecycle, so a handful of repeats keeps
  // the runtime sane; MMD_BENCH_REPEATS still overrides.
  bench::BenchHarness h("fig13_kmc_comm_time", {.warmup = 1, .repeats = 5});

  const int cells = 24;
  const double conc = 4.5e-5;
  const int cycles = 3;
  const int nranks = 4;

  // The ghost traffic is deterministic per strategy (seeded initialization);
  // the measured communication seconds are not, so those are sampled over
  // warmup + repeats full runs.
  Cost trad, ondemand;
  std::vector<double> trad_ms, ondemand_ms;
  for (int rep = 0; rep < h.options().warmup + h.options().repeats; ++rep) {
    trad = run(nranks, kmc::GhostStrategy::Traditional, cells, conc, cycles);
    ondemand =
        run(nranks, kmc::GhostStrategy::OnDemandOneSided, cells, conc, cycles);
    if (rep >= h.options().warmup) {
      trad_ms.push_back(1e3 * trad.comm_seconds);
      ondemand_ms.push_back(1e3 * ondemand.comm_seconds);
    }
  }
  h.add_samples("traditional_comm_ms", "ms", trad_ms);
  h.add_samples("ondemand_comm_ms", "ms", ondemand_ms);
  h.add_value("traditional_bytes_per_cycle", "bytes",
              static_cast<double>(trad.traffic.bytes_sent) / cycles);
  h.add_value("ondemand_bytes_per_cycle", "bytes",
              static_cast<double>(ondemand.traffic.bytes_sent) / cycles);

  std::printf("\n  Live measurement (%d ranks, %d^3 cells, C_v = %.1e):\n", nranks,
              cells, conc);
  std::printf("  %-24s %14s %14s %16s\n", "strategy", "msgs/cycle",
              "bytes/cycle", "comm time [ms] (median)");
  auto row = [&](const char* name, const Cost& c, const std::vector<double>& ms) {
    std::printf("  %-24s %14.1f %14.1f %16.3f\n", name,
                static_cast<double>(c.traffic.messages_sent) / cycles,
                static_cast<double>(c.traffic.bytes_sent) / cycles,
                util::median(ms));
  };
  row("Traditional", trad, trad_ms);
  row("On-demand (one-sided)", ondemand, ondemand_ms);

  // Project per-rank, per-cycle comm cost at the paper's scale: 1.6e7 sites
  // over `cores` master cores (1 rank each). Traditional shell volume scales
  // with the subdomain surface; on-demand volume with the vacancies per rank.
  perf::ScalingModel model;
  std::printf("\n  Modeled communication time per cycle at the paper's scale\n");
  std::printf("  (live traffic rescaled to 1.6e7 sites, alpha-beta network):\n");
  std::printf("  %8s %18s %18s %10s %10s\n", "cores", "traditional [us]",
              "on-demand [us]", "speedup", "paper");
  std::vector<double> speedups;
  std::vector<double> core_series, trad_us, ondemand_us;
  const double sites_per_rank_live =
      2.0 * cells * cells * cells / static_cast<double>(nranks);
  for (const std::uint64_t cores : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    const std::uint64_t ranks = cores;
    const double sites_per_rank = 1.6e7 / static_cast<double>(cores);
    const double surf = std::pow(sites_per_rank / sites_per_rank_live, 2.0 / 3.0);
    const double vol = sites_per_rank / sites_per_rank_live;
    const double per_rank_msgs_t =
        static_cast<double>(trad.traffic.messages_sent) / nranks / cycles;
    const double per_rank_bytes_t =
        static_cast<double>(trad.traffic.bytes_sent) / nranks / cycles * surf;
    const double per_rank_msgs_o = std::max(
        1.0, static_cast<double>(ondemand.traffic.messages_sent) / nranks / cycles);
    const double per_rank_bytes_o =
        static_cast<double>(ondemand.traffic.bytes_sent) / nranks / cycles * vol;
    const double t_trad = model.network().p2p_time(
        static_cast<std::uint64_t>(per_rank_msgs_t),
        static_cast<std::uint64_t>(per_rank_bytes_t), ranks);
    const double t_od = model.network().p2p_time(
        static_cast<std::uint64_t>(per_rank_msgs_o),
        static_cast<std::uint64_t>(per_rank_bytes_o), ranks) +
        model.network().collective_time(ranks);  // the one-sided fence
    speedups.push_back(t_trad / t_od);
    core_series.push_back(static_cast<double>(cores));
    trad_us.push_back(1e6 * t_trad);
    ondemand_us.push_back(1e6 * t_od);
    std::printf("  %8s %18.2f %18.2f %9.1fx %9s\n",
                bench::cores_str(cores).c_str(), 1e6 * t_trad, 1e6 * t_od,
                t_trad / t_od, "21x");
  }
  std::printf("\n");
  bool write_failed = false;
  {
    bench::FigureJson fj("fig13_kmc_comm_time");
    fj.add_note("paper_speedup", "21x");
    fj.add_series("cores", core_series);
    fj.add_series("traditional_us", trad_us);
    fj.add_series("ondemand_us", ondemand_us);
    fj.add_series("speedup", speedups);
    write_failed = fj.write().empty();
  }
  h.add_value("modeled_speedup_geomean", "ratio", util::geometric_mean(speedups),
              /*lower_is_better=*/false);
  bench::note("mean modeled speedup: %.1fx (paper: 21x on average)",
              util::geometric_mean(speedups));
  bench::note("measured in-process comm-time ratio: %.1fx",
              util::median(trad_ms) / std::max(1e-9, util::median(ondemand_ms)));
  const int rc = h.write();
  return write_failed ? 1 : rc;
}
