// campaign — service-mode throughput: interleaved lanes vs back-to-back jobs.
//
// Runs the same 8-job quick matrix (2 energies x 4 temperatures) through
// serve::CampaignRunner twice: once with 4 concurrent lanes sharing the
// asset cache, once with a single lane (the back-to-back shape a shell loop
// over mmd_run would produce, minus process startup). Reports wall time and
// jobs/hour for both plus the interleave speedup.
//
// Writes BENCH_campaign.json for tools/mmd_perf_diff.

#include <cstddef>
#include <filesystem>
#include <string>

#include "harness.h"
#include "serve/campaign.h"
#include "serve/campaign_runner.h"
#include "util/key_value.h"

namespace {

constexpr const char* kMatrix8 =
    "campaign.name = bench8\n"
    "box = 6\n"
    "md.time_ps = 0.02\n"
    "md.table_segments = 400\n"
    "kmc.table_segments = 200\n"
    "kmc.cycles = 8\n"
    "sweep.pka.energy_ev = 40,80\n"
    "sweep.temperature = 300,450,600,750\n";

/// One full campaign over a fresh root; returns the outcome for rate math.
mmd::serve::CampaignOutcome run_campaign(int lanes, int* run_counter) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() /
                        ("mmd_bench_campaign_" + std::to_string((*run_counter)++));
  fs::remove_all(root);
  mmd::serve::CampaignRunner::Options opt;
  opt.root = root.string();
  opt.max_concurrent = lanes;
  mmd::serve::CampaignRunner runner(
      mmd::serve::CampaignSpec::parse(
          mmd::util::KeyValueConfig::parse(kMatrix8, "bench8.mmd")),
      opt);
  auto outcome = runner.run();
  fs::remove_all(root);
  return outcome;
}

}  // namespace

int main() {
  using namespace mmd;
  bench::BenchHarness h("campaign");

  int run_counter = 0;
  serve::CampaignOutcome interleaved, serial;
  h.time_call_ms("campaign_8jobs_4lanes",
                 [&] { interleaved = run_campaign(4, &run_counter); });
  h.time_call_ms("campaign_8jobs_1lane",
                 [&] { serial = run_campaign(1, &run_counter); });

  h.add_value("jobs_per_hour_4lanes", "jobs/h", interleaved.jobs_per_hour,
              /*lower_is_better=*/false);
  h.add_value("jobs_per_hour_1lane", "jobs/h", serial.jobs_per_hour,
              /*lower_is_better=*/false);
  h.add_value("interleave_speedup", "x",
              serial.wall_seconds > 0.0
                  ? interleaved.jobs_per_hour / serial.jobs_per_hour
                  : 0.0,
              /*lower_is_better=*/false);

  return h.write();
}
