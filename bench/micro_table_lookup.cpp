// Microbenchmarks (google-benchmark) for the interpolation-table machinery
// of paper §2.1.2: compacted-resident vs compacted-window-DMA vs traditional
// row-DMA lookups, table construction, and the on-the-fly Hermite
// reconstruction cost the compaction trades for DMA volume.

#include <benchmark/benchmark.h>

#include "potential/eam.h"
#include "potential/table_access.h"
#include "sunway/dma.h"
#include "sunway/local_store.h"
#include "util/rng.h"

using namespace mmd;

namespace {

const pot::EamTableSet& tables() {
  static const pot::EamTableSet t =
      pot::EamTableSet::build(pot::EamModel::iron(), 5000);
  return t;
}

void BM_CompactValueDirect(benchmark::State& state) {
  const auto& phi = tables().phi(0, 0);
  util::Rng rng(1);
  double x = 0;
  for (auto _ : state) {
    const double r = 1.5 + 3.4 * rng.uniform();
    double v, d;
    phi.eval(r, &v, &d);
    x += v + d;
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_CompactValueDirect);

void BM_TraditionalValueDirect(benchmark::State& state) {
  const auto& phi = tables().phi_trad;
  util::Rng rng(1);
  double x = 0;
  for (auto _ : state) {
    const double r = 1.5 + 3.4 * rng.uniform();
    x += phi.value(r) + phi.derivative(r);
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_TraditionalValueDirect);

void BM_CompactResidentLookup(benchmark::State& state) {
  sw::LocalStore store;
  sw::DmaEngine dma;
  pot::CompactTableAccess access(tables().phi(0, 0), store, dma, true);
  util::Rng rng(2);
  double x = 0;
  for (auto _ : state) {
    double v, d;
    access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
    x += v;
  }
  benchmark::DoNotOptimize(x);
  state.counters["dma_ops"] = static_cast<double>(dma.stats().get_ops);
}
BENCHMARK(BM_CompactResidentLookup);

void BM_CompactWindowDmaLookup(benchmark::State& state) {
  sw::LocalStore store(1024);  // too small for residency
  sw::DmaEngine dma;
  pot::CompactTableAccess access(tables().phi(0, 0), store, dma, true);
  util::Rng rng(3);
  double x = 0;
  for (auto _ : state) {
    double v, d;
    access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
    x += v;
  }
  benchmark::DoNotOptimize(x);
  state.counters["dma_bytes_per_lookup"] =
      static_cast<double>(dma.stats().get_bytes) /
      static_cast<double>(std::max<std::uint64_t>(1, dma.stats().get_ops));
}
BENCHMARK(BM_CompactWindowDmaLookup);

void BM_TraditionalRowDmaLookup(benchmark::State& state) {
  sw::DmaEngine dma;
  pot::CoefficientTableAccess access(tables().phi_trad, dma);
  util::Rng rng(4);
  double x = 0;
  for (auto _ : state) {
    double v, d;
    access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
    x += v;
  }
  benchmark::DoNotOptimize(x);
  state.counters["dma_bytes_per_lookup"] =
      static_cast<double>(dma.stats().get_bytes) /
      static_cast<double>(std::max<std::uint64_t>(1, dma.stats().get_ops));
}
BENCHMARK(BM_TraditionalRowDmaLookup);

void BM_BuildCompactTable(benchmark::State& state) {
  const pot::EamModel fe = pot::EamModel::iron();
  for (auto _ : state) {
    auto t = pot::CompactTable::build([&](double r) { return fe.phi(0, 0, r); },
                                      1.0, 5.0, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BuildCompactTable)->Arg(1000)->Arg(5000);

void BM_ExpandToCoefficients(benchmark::State& state) {
  const auto& compact = tables().phi(0, 0);
  for (auto _ : state) {
    auto trad = compact.to_coefficients();
    benchmark::DoNotOptimize(trad);
  }
}
BENCHMARK(BM_ExpandToCoefficients);

}  // namespace

BENCHMARK_MAIN();
