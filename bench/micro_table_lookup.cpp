// Microbenchmarks (BenchHarness) for the interpolation-table machinery of
// paper §2.1.2: compacted-resident vs compacted-window-DMA vs traditional
// row-DMA lookups, table construction, and the on-the-fly Hermite
// reconstruction cost the compaction trades for DMA volume. Emits
// BENCH_micro_table_lookup.json for tools/mmd_perf_diff.

#include "bench_common.h"
#include "harness.h"
#include "potential/eam.h"
#include "potential/table_access.h"
#include "sunway/dma.h"
#include "sunway/local_store.h"
#include "util/rng.h"

using namespace mmd;

namespace {

const pot::EamTableSet& tables() {
  static const pot::EamTableSet t =
      pot::EamTableSet::build(pot::EamModel::iron(), 5000);
  return t;
}

}  // namespace

int main() {
  bench::title("micro_table_lookup",
               "EAM interpolation-table lookup and construction costs");
  bench::BenchHarness h("micro_table_lookup");

  {
    const auto& phi = tables().phi(0, 0);
    util::Rng rng(1);
    double x = 0;
    h.time_per_op("compact_value_direct", [&] {
      const double r = 1.5 + 3.4 * rng.uniform();
      double v, d;
      phi.eval(r, &v, &d);
      x += v + d;
    });
    bench::keep(x);
  }

  {
    const auto& phi = tables().phi_trad;
    util::Rng rng(1);
    double x = 0;
    h.time_per_op("traditional_value_direct", [&] {
      const double r = 1.5 + 3.4 * rng.uniform();
      x += phi.value(r) + phi.derivative(r);
    });
    bench::keep(x);
  }

  {
    sw::LocalStore store;
    sw::DmaEngine dma;
    pot::CompactTableAccess access(tables().phi(0, 0), store, dma, true);
    util::Rng rng(2);
    double x = 0;
    h.time_per_op("compact_resident_lookup", [&] {
      double v, d;
      access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
      x += v;
    });
    bench::keep(x);
    h.add_value("compact_resident_dma_ops", "ops",
                static_cast<double>(dma.stats().get_ops));
  }

  {
    sw::LocalStore store(1024);  // too small for residency
    sw::DmaEngine dma;
    pot::CompactTableAccess access(tables().phi(0, 0), store, dma, true);
    util::Rng rng(3);
    double x = 0;
    h.time_per_op("compact_window_dma_lookup", [&] {
      double v, d;
      access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
      x += v;
    });
    bench::keep(x);
    h.add_value("compact_window_dma_bytes_per_lookup", "bytes",
                static_cast<double>(dma.stats().get_bytes) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, dma.stats().get_ops)));
  }

  {
    sw::DmaEngine dma;
    pot::CoefficientTableAccess access(tables().phi_trad, dma);
    util::Rng rng(4);
    double x = 0;
    h.time_per_op("traditional_row_dma_lookup", [&] {
      double v, d;
      access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
      x += v;
    });
    bench::keep(x);
    h.add_value("traditional_row_dma_bytes_per_lookup", "bytes",
                static_cast<double>(dma.stats().get_bytes) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, dma.stats().get_ops)));
  }

  {
    const pot::EamModel fe = pot::EamModel::iron();
    for (const int segments : {1000, 5000}) {
      h.time_call_ms(
          "build_compact_table_" + std::to_string(segments), [&] {
            auto t = pot::CompactTable::build(
                [&](double r) { return fe.phi(0, 0, r); }, 1.0, 5.0, segments);
            bench::keep(t);
          });
    }
  }

  {
    const auto& compact = tables().phi(0, 0);
    h.time_call_ms("expand_to_coefficients", [&] {
      auto trad = compact.to_coefficients();
      bench::keep(trad);
    });
  }

  return h.write();
}
