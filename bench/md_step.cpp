// BENCH_md_step — end-to-end MD step on the simulated core group: the
// integration + ghost exchange + slave-core EAM force pipeline that PR 4's
// fused-sweep kernel optimizes. One metric per force path (fused single-sweep
// vs the two-pass pair/density reference shape) so mmd_perf_diff can track
// the whole-step win, plus the force-phase DMA get traffic that drives it.
//
// Config notes: 12^3 cells (3456 atoms) keeps a timed step near a
// millisecond; table_segments=1500 gives two 12 KB compact tables so the
// fused sweep can stage BOTH resident in the 64 KB local store (the
// authentic 5000-segment tables force the per-segment fallback, which
// bench/fig09 and the tests cover).

#include <array>

#include "bench_common.h"
#include "harness.h"
#include "md/engine.h"
#include "md/slave_force.h"
#include "telemetry/session.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("BENCH_md_step", "end-to-end MD step, slave-core force path");
  bench::BenchHarness h("md_step");

  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 12;
  cfg.temperature = 400.0;
  cfg.table_segments = 1500;
  const md::MdSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  struct Mode {
    const char* key;
    bool fused;
    bool simd;
  };
  // fused_scalar isolates the SIMD win from the SoA-staging win: it runs the
  // same fused sweep with the AVX2 kernels disabled (md.simd=off path).
  constexpr std::array<Mode, 3> kModes = {{{"fused", true, true},
                                           {"fused_scalar", true, false},
                                           {"two_pass", false, true}}};

  const int warm = std::max(1, h.options().warmup);
  const int reps = h.options().repeats;

  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    {
      // Global throwaway warmup so the first measured mode does not absorb
      // the process cold start (first-touch pages, CPU frequency ramp).
      md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
      sw::SlaveCorePool pool(64);
      md::SlaveForceCompute kernel(tables, pool,
                                   md::AccelStrategy::CompactedReuse);
      engine.use_slave_kernel(&kernel);
      engine.initialize(comm);
      engine.run(comm, std::max(2, warm));
    }
    for (const Mode& mode : kModes) {
      md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
      sw::SlaveCorePool pool(64);
      md::SlaveForceCompute kernel(tables, pool,
                                   md::AccelStrategy::CompactedReuse);
      kernel.set_fused(mode.fused);
      kernel.set_simd(mode.simd);
      engine.use_slave_kernel(&kernel);
      engine.initialize(comm);
      engine.run(comm, warm);

      std::vector<double> wall_ms;
      wall_ms.reserve(static_cast<std::size_t>(reps));
      kernel.reset_stats();
      for (int r = 0; r < reps; ++r) {
        util::Timer t;
        engine.run(comm, 1);
        wall_ms.push_back(1e3 * t.elapsed());
      }
      const sw::DmaStats dma = kernel.dma_stats();
      const std::string key(mode.key);
      h.add_samples(key + "_step_ms", "ms", wall_ms);
      h.add_value(key + "_modeled_ms_per_step", "ms",
                  1e3 * kernel.modeled_time() / reps);
      h.add_value(key + "_dma_get_mb_per_step", "MB",
                  static_cast<double>(dma.get_bytes) / reps / 1e6);
      h.add_value(key + "_dma_ops_per_step", "ops",
                  static_cast<double>(dma.total_ops()) / reps);
      bench::note("%-8s median %.3f ms/step, %.2f MB DMA-get/step",
                  mode.key, util::median(wall_ms),
                  static_cast<double>(dma.get_bytes) / reps / 1e6);
    }
  });

  // Recorder overhead: the same fused step under a telemetry session with
  // the comm flight recorder off vs on. The ratio is the observability tax
  // per step; perf-smoke gates it at <= 3% against a hand-written unity
  // baseline (bench/baselines/BENCH_md_step_traced_gate.json), so recording
  // can never silently become expensive enough to perturb what it measures.
  struct Traced {
    const char* key;
    std::size_t ring;
  };
  constexpr std::array<Traced, 2> kTraced = {
      {{"fused_session", 0}, {"fused_traced", std::size_t{1} << 16}}};
  std::array<double, 2> traced_median{};
  for (std::size_t i = 0; i < kTraced.size(); ++i) {
    telemetry::Session::Options opt;
    opt.comm_events_per_rank = kTraced[i].ring;
    telemetry::Session session(1, opt);
    comm::World traced_world(1);
    std::vector<double> wall_ms;
    wall_ms.reserve(static_cast<std::size_t>(reps));
    traced_world.run([&](comm::Comm& comm) {
      md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
      sw::SlaveCorePool pool(64);
      md::SlaveForceCompute kernel(tables, pool,
                                   md::AccelStrategy::CompactedReuse);
      engine.use_slave_kernel(&kernel);
      engine.initialize(comm);
      engine.run(comm, warm);
      for (int r = 0; r < reps; ++r) {
        util::Timer t;
        engine.run(comm, 1);
        wall_ms.push_back(1e3 * t.elapsed());
      }
    });
    h.add_samples(std::string(kTraced[i].key) + "_step_ms", "ms", wall_ms);
    traced_median[i] = util::median(wall_ms);
    bench::note("%-13s median %.3f ms/step%s", kTraced[i].key,
                traced_median[i],
                kTraced[i].ring != 0 ? " (flight recorder on)" : "");
  }
  h.add_value("traced_overhead_ratio", "x", traced_median[1] / traced_median[0]);
  bench::note("recorder overhead: %.2f%%",
              100.0 * (traced_median[1] / traced_median[0] - 1.0));

  return h.write();
}
