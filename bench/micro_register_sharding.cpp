// Ablation (paper §2.1.2 alternative + §5 future-work suggestion): alloy
// tables do not all fit one 64 KB local store. Compare, per EAM table
// lookup, the modeled cost of:
//   (a) resident compacted table        (the paper's choice for the majority
//                                        species — zero per-lookup traffic),
//   (b) register-mesh sharded table     (the rejected-then-suggested layout:
//                                        table split across the 64 CPEs,
//                                        6-sample windows pulled one-sided),
//   (c) per-lookup main-memory DMA      (window fetch, what a non-resident
//                                        compact table costs),
//   (d) traditional coefficient row DMA (the unoptimized baseline).
// Emits BENCH_micro_register_sharding.json for tools/mmd_perf_diff.

#include "bench_common.h"
#include "harness.h"
#include "potential/eam.h"
#include "potential/sharded_table.h"
#include "potential/table_access.h"
#include "sunway/dma.h"
#include "sunway/local_store.h"
#include "util/rng.h"

using namespace mmd;

namespace {

const pot::EamTableSet& tables() {
  static const pot::EamTableSet t =
      pot::EamTableSet::build(pot::EamModel::iron_copper(), 5000);
  return t;
}

}  // namespace

int main() {
  bench::title("micro_register_sharding",
               "alloy-table layouts: resident vs sharded vs DMA per lookup");
  bench::BenchHarness h("micro_register_sharding");

  {
    sw::RegisterMesh mesh;
    pot::ShardedTableAccess access(tables().f(0, 1), mesh, /*my_core=*/27);
    util::Rng rng(5);
    double x = 0;
    std::uint64_t lookups = 0;
    h.time_per_op("sharded_register_lookup", [&] {
      double v, d;
      access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
      x += v;
      ++lookups;
    });
    bench::keep(x);
    const auto s = mesh.total_stats();
    h.add_value("sharded_mesh_msgs_per_lookup", "msgs",
                static_cast<double>(s.messages) /
                    static_cast<double>(std::max<std::uint64_t>(1, lookups)));
    h.add_value("sharded_modeled_ns_per_lookup", "ns/op",
                1e9 * mesh.modeled_time(27) /
                    static_cast<double>(std::max<std::uint64_t>(1, lookups)));
  }

  {
    sw::LocalStore store;
    sw::DmaEngine dma;
    pot::CompactTableAccess access(tables().f(0, 1), store, dma, true);
    util::Rng rng(5);
    double x = 0;
    h.time_per_op("resident_lookup_baseline", [&] {
      double v, d;
      access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
      x += v;
    });
    bench::keep(x);
  }

  {
    sw::LocalStore store(512);  // no residency possible
    sw::DmaEngine dma;
    pot::CompactTableAccess access(tables().f(0, 1), store, dma, true);
    util::Rng rng(5);
    double x = 0;
    std::uint64_t lookups = 0;
    h.time_per_op("main_memory_window_dma", [&] {
      double v, d;
      access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
      x += v;
      ++lookups;
    });
    bench::keep(x);
    h.add_value("window_dma_modeled_ns_per_lookup", "ns/op",
                1e9 * dma.modeled_time() /
                    static_cast<double>(std::max<std::uint64_t>(1, lookups)));
  }

  {
    sw::DmaEngine dma;
    pot::CoefficientTableAccess access(tables().phi_trad, dma);
    util::Rng rng(5);
    double x = 0;
    std::uint64_t lookups = 0;
    h.time_per_op("traditional_row_dma", [&] {
      double v, d;
      access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
      x += v;
      ++lookups;
    });
    bench::keep(x);
    h.add_value("traditional_row_dma_modeled_ns_per_lookup", "ns/op",
                1e9 * dma.modeled_time() /
                    static_cast<double>(std::max<std::uint64_t>(1, lookups)));
  }

  return h.write();
}
