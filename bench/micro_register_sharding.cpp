// Ablation (paper §2.1.2 alternative + §5 future-work suggestion): alloy
// tables do not all fit one 64 KB local store. Compare, per EAM table
// lookup, the modeled cost of:
//   (a) resident compacted table        (the paper's choice for the majority
//                                        species — zero per-lookup traffic),
//   (b) register-mesh sharded table     (the rejected-then-suggested layout:
//                                        table split across the 64 CPEs,
//                                        6-sample windows pulled one-sided),
//   (c) per-lookup main-memory DMA      (window fetch, what a non-resident
//                                        compact table costs),
//   (d) traditional coefficient row DMA (the unoptimized baseline).

#include <benchmark/benchmark.h>

#include "potential/eam.h"
#include "potential/sharded_table.h"
#include "potential/table_access.h"
#include "sunway/dma.h"
#include "sunway/local_store.h"
#include "util/rng.h"

using namespace mmd;

namespace {

const pot::EamTableSet& tables() {
  static const pot::EamTableSet t =
      pot::EamTableSet::build(pot::EamModel::iron_copper(), 5000);
  return t;
}

void BM_ShardedRegisterLookup(benchmark::State& state) {
  sw::RegisterMesh mesh;
  pot::ShardedTableAccess access(tables().f(0, 1), mesh, /*my_core=*/27);
  util::Rng rng(5);
  double x = 0;
  for (auto _ : state) {
    double v, d;
    access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
    x += v;
  }
  benchmark::DoNotOptimize(x);
  const auto s = mesh.total_stats();
  state.counters["mesh_msgs_per_lookup"] =
      static_cast<double>(s.messages) / static_cast<double>(state.iterations());
  state.counters["modeled_ns_per_lookup"] =
      1e9 * mesh.modeled_time(27) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ShardedRegisterLookup);

void BM_ResidentLookupBaseline(benchmark::State& state) {
  sw::LocalStore store;
  sw::DmaEngine dma;
  pot::CompactTableAccess access(tables().f(0, 1), store, dma, true);
  util::Rng rng(5);
  double x = 0;
  for (auto _ : state) {
    double v, d;
    access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
    x += v;
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_ResidentLookupBaseline);

void BM_MainMemoryWindowDma(benchmark::State& state) {
  sw::LocalStore store(512);  // no residency possible
  sw::DmaEngine dma;
  pot::CompactTableAccess access(tables().f(0, 1), store, dma, true);
  util::Rng rng(5);
  double x = 0;
  for (auto _ : state) {
    double v, d;
    access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
    x += v;
  }
  benchmark::DoNotOptimize(x);
  state.counters["modeled_ns_per_lookup"] =
      1e9 * dma.modeled_time() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MainMemoryWindowDma);

void BM_TraditionalRowDma(benchmark::State& state) {
  sw::DmaEngine dma;
  pot::CoefficientTableAccess access(tables().phi_trad, dma);
  util::Rng rng(5);
  double x = 0;
  for (auto _ : state) {
    double v, d;
    access.eval(1.5 + 3.4 * rng.uniform(), &v, &d);
    x += v;
  }
  benchmark::DoNotOptimize(x);
  state.counters["modeled_ns_per_lookup"] =
      1e9 * dma.modeled_time() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_TraditionalRowDma);

}  // namespace

BENCHMARK_MAIN();
