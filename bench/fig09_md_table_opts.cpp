// Fig. 9 — Performance comparison of the MD slave-core optimizations:
// TraditionalTable -> CompactedTable -> +DataReuse -> +DoubleBuffer,
// 2e7 atoms on 65..1040 master+slave cores in the paper.
//
// Here the four strategies run LIVE on the simulated core group; measured
// per-step wall time (BenchHarness: warmup + repeated timed steps, robust
// stats), DMA op/byte counters, and the alpha-beta-modeled Sunway time are
// reported per strategy, then projected across the paper's core counts
// (strong scaling of a fixed 2e7-atom box). Paper result to match in shape:
// compacted tables ~54.7% faster (geo-mean), data reuse ~+4%, double buffer
// ~no further gain. Emits BENCH_fig09_md_table_opts.json.

#include <array>
#include <vector>

#include "bench_common.h"
#include "harness.h"
#include "md/engine.h"
#include "md/slave_force.h"
#include "perf/scaling_model.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("Fig. 9", "MD table-optimization ladder on the simulated core group");
  bench::BenchHarness h("fig09_md_table_opts");

  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.temperature = 400.0;
  cfg.table_segments = 5000;  // authentic 39 KB / 273 KB table sizes
  const md::MdSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  constexpr std::array kStrategies = {
      md::AccelStrategy::TraditionalTable, md::AccelStrategy::CompactedTable,
      md::AccelStrategy::CompactedReuse, md::AccelStrategy::CompactedReuseDouble};
  constexpr std::array kKeys = {"traditional", "compacted", "compacted_reuse",
                                "compacted_reuse_double"};

  struct Result {
    std::vector<double> wall_ms;  // per timed step
    double modeled_s = 0.0;       // per step, alpha-beta DMA + compute
    sw::DmaStats dma;             // per timed run
    int steps = 0;
  };
  std::array<Result, 4> results;
  const int warm = std::max(1, h.options().warmup);
  const int reps = h.options().repeats;

  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    for (std::size_t s = 0; s < kStrategies.size(); ++s) {
      md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
      sw::SlaveCorePool pool(64);
      md::SlaveForceCompute kernel(tables, pool, kStrategies[s]);
      // The paper's ladder stages exactly one table per force sweep; keep the
      // two-pass shape so each rung measures what Fig. 9 measured. The fused
      // sweep is compared separately below.
      kernel.set_fused(false);
      engine.use_slave_kernel(&kernel);
      engine.initialize(comm);
      engine.run(comm, warm);
      kernel.reset_stats();
      for (int r = 0; r < reps; ++r) {
        util::Timer t;
        engine.run(comm, 1);
        results[s].wall_ms.push_back(1e3 * t.elapsed());
      }
      results[s].steps = reps;
      results[s].modeled_s = kernel.modeled_time() / reps;
      results[s].dma = kernel.dma_stats();
    }
  });

  for (std::size_t s = 0; s < kStrategies.size(); ++s) {
    h.add_samples(std::string(kKeys[s]) + "_wall_ms_per_step", "ms",
                  results[s].wall_ms);
    h.add_value(std::string(kKeys[s]) + "_modeled_ms_per_step", "ms",
                1e3 * results[s].modeled_s);
    h.add_value(std::string(kKeys[s]) + "_dma_ops_per_step", "ops",
                static_cast<double>(results[s].dma.total_ops()) /
                    results[s].steps);
    h.add_value(std::string(kKeys[s]) + "_dma_mb_per_step", "MB",
                static_cast<double>(results[s].dma.total_bytes()) /
                    results[s].steps / 1e6);
  }

  std::printf("\n  %-40s %12s %14s %14s %14s\n", "strategy", "wall [ms]",
              "DMA ops/step", "DMA MB/step", "modeled [ms]");
  for (std::size_t s = 0; s < kStrategies.size(); ++s) {
    const auto& r = results[s];
    std::printf("  %-40s %12.2f %14.3g %14.2f %14.3f\n",
                md::to_string(kStrategies[s]).c_str(), util::median(r.wall_ms),
                static_cast<double>(r.dma.total_ops()) / r.steps,
                static_cast<double>(r.dma.total_bytes()) / r.steps / 1e6,
                1e3 * r.modeled_s);
  }

  // The paper's runtimes are dominated by per-op DMA latency on the real
  // SW26010; on a host CPU the simulated DMA is a cheap memcpy, so the
  // Sunway-shaped comparison is the MODELED column (measured compute +
  // alpha-beta DMA cost), with wall time reported for transparency.
  const double speedup =
      (results[0].modeled_s - results[1].modeled_s) / results[0].modeled_s;
  const double reuse_gain =
      (results[1].modeled_s - results[2].modeled_s) / results[1].modeled_s;
  const double dbl_gain =
      (results[2].modeled_s - results[3].modeled_s) / results[2].modeled_s;
  const double wall2 = util::median(results[2].wall_ms);
  const double wall3 = util::median(results[3].wall_ms);
  std::printf("\n");
  bench::note("compacted vs traditional : %+.1f%% modeled  (paper: +54.7%% geo-mean)",
              100.0 * speedup);
  bench::note("+ data reuse             : %+.1f%% modeled  (paper: +4%% on average)",
              100.0 * reuse_gain);
  bench::note("+ double buffer          : %+.1f%% modeled; wall %+.1f%% "
              "(paper: no obvious gain)",
              100.0 * dbl_gain, 100.0 * (wall2 - wall3) / wall2);
  bench::note("DMA op reduction         : %.0fx",
              static_cast<double>(results[0].dma.total_ops()) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, results[1].dma.total_ops())));
  bench::note("(the split between the table terms depends on the assumed per-op");
  bench::note(" DMA latency, 0.25 us here; the ordering does not)");
  h.add_value("compacted_vs_traditional_modeled_gain", "ratio", speedup,
              /*lower_is_better=*/false);

  // Project the modeled per-core-group time over the paper's core counts
  // (strong scaling of a fixed 2e7-atom box, 65 cores per group).
  std::printf("\n  Projected total runtime over the paper's core counts "
              "(modeled, fixed 2e7 atoms):\n");
  std::printf("  %10s", "cores");
  for (const auto& s : kStrategies) {
    std::printf(" %23s", md::to_string(s).substr(0, 23).c_str());
  }
  std::printf("\n");
  perf::ScalingModel model;
  const double atoms_per_group_ref =
      static_cast<double>(setup.geo.num_sites());
  for (const std::uint64_t cores : {65u, 130u, 260u, 520u, 1040u}) {
    const auto groups = static_cast<double>(cores) / 65.0;
    const double atoms_per_group = 2.0e7 / groups;
    const double scale = atoms_per_group / atoms_per_group_ref;
    std::printf("  %10s", bench::cores_str(cores).c_str());
    for (std::size_t s = 0; s < kStrategies.size(); ++s) {
      // Per-step modeled time scales with the per-group atom count; ~100
      // steps, as a nominal cascade segment.
      std::printf(" %23.1f", results[s].modeled_s * scale * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\n  Shape check vs paper Fig. 9: Traditional slowest by a wide\n"
              "  margin at every core count; Compacted captures nearly all of\n"
              "  the gain; Reuse adds a little; DoubleBuffer adds ~nothing.\n");

  // Beyond the paper's ladder: the fused single-sweep force kernel walks the
  // block window once per force evaluation instead of twice. Measured at a
  // table size where BOTH compact tables stay resident (1500 segments ->
  // 2 x 12 KB), on the reuse strategy. Counters cover the whole step (rho +
  // force), so the printed cut understates the force-phase-only reduction;
  // the >= 40% force-phase bar is asserted in tests/test_slave_force.cpp.
  std::printf("\n  Fused force sweep vs two-pass (CompactedReuse, 1500-segment "
              "tables):\n");
  md::MdConfig fcfg = cfg;
  fcfg.table_segments = 1500;
  const md::MdSetup fsetup(fcfg, 1);
  const auto ftables = pot::EamTableSet::build(
      pot::EamModel::iron(fcfg.lattice_constant, fcfg.cutoff),
      fcfg.table_segments);
  struct FusedResult {
    double modeled_s = 0.0;
    sw::DmaStats dma;
  };
  std::array<FusedResult, 2> fres;  // [two_pass, fused]
  world.run([&](comm::Comm& comm) {
    for (int fused = 0; fused < 2; ++fused) {
      md::MdEngine engine(fcfg, fsetup.geo, fsetup.dd, ftables, comm.rank());
      sw::SlaveCorePool pool(64);
      md::SlaveForceCompute kernel(ftables, pool,
                                   md::AccelStrategy::CompactedReuse);
      kernel.set_fused(fused != 0);
      engine.use_slave_kernel(&kernel);
      engine.initialize(comm);
      engine.run(comm, warm);
      kernel.reset_stats();
      for (int r = 0; r < reps; ++r) engine.run(comm, 1);
      fres[fused].modeled_s = kernel.modeled_time() / reps;
      fres[fused].dma = kernel.dma_stats();
    }
  });
  const double get_mb_two =
      static_cast<double>(fres[0].dma.get_bytes) / reps / 1e6;
  const double get_mb_fused =
      static_cast<double>(fres[1].dma.get_bytes) / reps / 1e6;
  std::printf("  %-12s %14s %14s %14s\n", "shape", "get MB/step", "ops/step",
              "modeled [ms]");
  for (int fused = 0; fused < 2; ++fused) {
    std::printf("  %-12s %14.2f %14.3g %14.3f\n",
                fused ? "fused" : "two-pass",
                static_cast<double>(fres[fused].dma.get_bytes) / reps / 1e6,
                static_cast<double>(fres[fused].dma.total_ops()) / reps,
                1e3 * fres[fused].modeled_s);
  }
  const double fused_cut = 1.0 - get_mb_fused / get_mb_two;
  bench::note("fused sweep cuts DMA get traffic by %.1f%% and modeled time by "
              "%.1f%%", 100.0 * fused_cut,
              100.0 * (1.0 - fres[1].modeled_s / fres[0].modeled_s));
  h.add_value("fused_get_mb_per_step", "MB", get_mb_fused);
  h.add_value("two_pass_get_mb_per_step", "MB", get_mb_two);
  h.add_value("fused_get_traffic_cut", "ratio", fused_cut,
              /*lower_is_better=*/false);
  h.add_value("fused_modeled_ms_per_step", "ms", 1e3 * fres[1].modeled_s);
  return h.write();
}
