// Ablation: full-neighbor loops (the reference/paper-style path; CoMD's
// choice) vs Newton-third-law half loops with reverse ghost accumulation
// (LAMMPS' choice). Half loops do half the pair arithmetic but pay an extra
// reverse exchange per pass — on a communication-bound machine like the
// paper's, full loops win; this bench quantifies both sides with measured
// wall time and counted traffic.

#include "bench_common.h"
#include "md/engine.h"
#include "md/newton_force.h"
#include "md/reference_force.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("Ablation", "full-neighbor loops vs Newton-3rd-law half loops");

  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 12;
  cfg.temperature = 600.0;
  cfg.table_segments = 2000;
  const int passes = 5;

  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  std::printf("\n  %6s %-12s %16s %18s %16s\n", "ranks", "backend",
              "pass wall [ms]", "fwd bytes/pass", "rev bytes/pass");
  for (const int nranks : {1, 4}) {
    const md::MdSetup setup(cfg, nranks);
    for (const bool newton : {false, true}) {
      double wall_ms = 0.0;
      std::uint64_t fwd_bytes = 0, rev_bytes = 0;
      comm::World world(nranks);
      world.run([&](comm::Comm& comm) {
        md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
        engine.initialize(comm);
        auto& lnl = engine.lattice();
        lat::GhostExchange ghosts(lnl, setup.dd, comm.rank());
        ghosts.exchange(comm);
        md::ReferenceForce ref(tables);
        md::NewtonForce n3l(tables);
        comm.barrier();
        const std::uint64_t bytes0 = comm.my_traffic().p2p_bytes_sent;
        util::Timer t;
        for (int p = 0; p < passes; ++p) {
          if (newton) {
            n3l.compute_rho(comm, lnl, ghosts);
            n3l.compute_forces(comm, lnl, ghosts);
          } else {
            ref.compute_rho(lnl);
            ghosts.exchange_rho(comm);
            ref.compute_forces(lnl);
          }
        }
        const double wall = comm.allreduce_max(t.elapsed());
        const std::uint64_t sent = comm.my_traffic().p2p_bytes_sent - bytes0;
        if (comm.rank() == 0) {
          wall_ms = 1e3 * wall / passes;
          // Forward rho exchange vs (reverse rho + forward rho + reverse f):
          // report totals split by direction from the known message mix.
          fwd_bytes = sent / passes;
          rev_bytes = 0;
        }
        if (newton && comm.rank() == 0) {
          // 2 of the 3 exchanges per pass are reverse accumulations of the
          // same slab volume; attribute proportionally for the report.
          rev_bytes = fwd_bytes * 2 / 3;
          fwd_bytes -= rev_bytes;
        }
      });
      std::printf("  %6d %-12s %16.2f %18llu %16llu\n", nranks,
                  newton ? "newton-half" : "full-loop", wall_ms,
                  static_cast<unsigned long long>(fwd_bytes),
                  static_cast<unsigned long long>(rev_bytes));
    }
  }
  std::printf("\n");
  bench::note("half loops cut pair arithmetic ~2x but triple the per-pass");
  bench::note("exchange count; the paper-style full loop keeps communication");
  bench::note("minimal — the right call when the network, not the FPU, binds.");
  return 0;
}
