// micro_slave_pool — dispatch overhead of the simulated CPE worker pool.
//
// Quantifies the two overheads the persistent-pool rework removes:
//   * fork/join cost per run(): persistent parked workers vs constructing a
//     fresh pool (thread spawn + join) around every invocation;
//   * per-item std::function dispatch: parallel_for (one call per item) vs
//     parallel_for_chunks (one call per core slab).
//
// Writes BENCH_micro_slave_pool.json for tools/mmd_perf_diff.

#include <atomic>
#include <cstddef>

#include "harness.h"
#include "sunway/slave_pool.h"

int main() {
  using namespace mmd;
  bench::BenchHarness h("micro_slave_pool");

  constexpr std::size_t kCores = 64;
  constexpr std::size_t kStore = 4096;

  // Fork/join of a no-op kernel on the persistent pool: pure barrier cost.
  {
    sw::SlaveCorePool pool(kCores, kStore);
    std::atomic<std::uint64_t> sink{0};
    h.time_per_op("run_noop_persistent", [&] {
      pool.run([&](sw::SlaveCtx& ctx) {
        sink.fetch_add(ctx.core_id, std::memory_order_relaxed);
      });
    });
  }

  // The pre-rework shape: spawn/join every OS thread per invocation (a cold
  // pool per run). Kept as the comparison bar, not a usage pattern.
  {
    std::atomic<std::uint64_t> sink{0};
    h.time_per_op("run_noop_cold_pool", [&] {
      sw::SlaveCorePool pool(kCores, kStore);
      pool.run([&](sw::SlaveCtx& ctx) {
        sink.fetch_add(ctx.core_id, std::memory_order_relaxed);
      });
    });
  }

  // Per-item vs chunked dispatch over a slab-sized loop. The work per item is
  // a few arithmetic ops, so the std::function call dominates per-item cost.
  {
    constexpr std::size_t kItems = 1 << 16;
    sw::SlaveCorePool pool(kCores, kStore);
    std::vector<double> data(kItems, 1.0);
    std::atomic<std::uint64_t> sink{0};
    h.time_per_op("parallel_for_per_item", [&] {
      pool.parallel_for(kItems, [&](sw::SlaveCtx&, std::size_t i) {
        data[i] = data[i] * 1.0000001 + 1e-9;
      });
      sink.fetch_add(1, std::memory_order_relaxed);
    });
    h.time_per_op("parallel_for_chunks", [&] {
      pool.parallel_for_chunks(
          kItems, [&](sw::SlaveCtx&, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              data[i] = data[i] * 1.0000001 + 1e-9;
            }
          });
      sink.fetch_add(1, std::memory_order_relaxed);
    });
  }

  return h.write();
}
