// Microbenchmarks (BenchHarness) of the in-process message-passing
// substrate: point-to-point latency/throughput, collective rendezvous cost,
// probe-based dynamic receives (the on-demand KMC primitive), and one-sided
// window puts. Characterizes the substrate the scaling benches run on.
// Emits BENCH_micro_comm.json for tools/mmd_perf_diff.
//
// Sampling shape: the harness cannot drive a callable that must execute
// inside a rank function, so each benchmark runs warmup + repeats blocks of
// K operations inside comm::World::run, rank 0 timing each block, and feeds
// the per-op samples to the harness through add_samples.

#include <span>
#include <vector>

#include "bench_common.h"
#include "comm/neighborhood.h"
#include "comm/world.h"
#include "harness.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("micro_comm", "in-process message-passing substrate");
  bench::BenchHarness h("micro_comm");
  const int warm = h.options().warmup;
  const int reps = h.options().repeats;

  {
    constexpr int kOps = 2000;
    std::vector<double> samples;
    comm::World w(2);
    w.run([&](comm::Comm& c) {
      const double x = 1.0;
      if (c.rank() == 0) {
        for (int rep = 0; rep < warm + reps; ++rep) {
          util::Timer t;
          for (int i = 0; i < kOps; ++i) {
            c.send(1, 1, std::span<const double>(&x, 1));
            bench::keep(c.recv(1, 2));
          }
          if (rep >= warm) samples.push_back(1e9 * t.elapsed() / kOps);
        }
        c.send_value(1, 9, 0);  // stop token
      } else {
        for (;;) {
          if (c.iprobe(0, 9)) break;
          if (c.iprobe(0, 1)) {
            c.recv(0, 1);
            c.send(0, 2, std::span<const double>(&x, 1));
          }
        }
        c.recv(0, 9);
      }
    });
    h.add_samples("ping_pong_small", "ns/op", std::move(samples));
  }

  for (const std::size_t bytes : {std::size_t{1} << 10, std::size_t{1} << 16,
                                  std::size_t{1} << 20}) {
    const int ops = bytes >= (std::size_t{1} << 20) ? 100 : 1000;
    std::vector<double> samples;
    comm::World w(2);
    w.run([&](comm::Comm& c) {
      std::vector<char> buf(bytes, 'x');
      if (c.rank() == 0) {
        for (int rep = 0; rep < warm + reps; ++rep) {
          util::Timer t;
          for (int i = 0; i < ops; ++i) {
            c.send(1, 1, std::span<const char>(buf));
            bench::keep(c.recv(1, 2));
          }
          if (rep >= warm) {
            samples.push_back(static_cast<double>(bytes) * ops / t.elapsed() /
                              1e6);
          }
        }
        c.send_value(1, 9, 0);
      } else {
        for (;;) {
          if (c.iprobe(0, 9)) break;
          if (c.iprobe(0, 1)) {
            c.recv(0, 1);
            c.send_value(0, 2, 1);
          }
        }
        c.recv(0, 9);
      }
    });
    h.add_samples("send_recv_throughput_" + std::to_string(bytes >> 10) + "k",
                  "MB/s", std::move(samples), /*lower_is_better=*/false);
  }

  for (const int nranks : {2, 4, 8}) {
    // Every rank executes the identical allreduce sequence, so the blocks
    // stay in lockstep without a release token; rank 0's clock is the sample.
    constexpr int kOps = 500;
    std::vector<double> samples;
    comm::World w(nranks);
    w.run([&](comm::Comm& c) {
      for (int rep = 0; rep < warm + reps; ++rep) {
        util::Timer t;
        for (int i = 0; i < kOps; ++i) bench::keep(c.allreduce_sum(1.0));
        if (c.rank() == 0 && rep >= warm) {
          samples.push_back(1e9 * t.elapsed() / kOps);
        }
      }
    });
    h.add_samples("allreduce_rendezvous_" + std::to_string(nranks) + "ranks",
                  "ns/op", std::move(samples));
  }

  {
    // Neighborhood halo round on an 8-rank periodic ring, both sides per
    // round, 4 KB per side — the ghost-exchange shape. Blocking = ordered
    // send/recv per side; nonblocking = NeighborhoodExchange (receives
    // pre-posted, out-of-order completion). The gap is the serialization a
    // slow neighbor imposes on the fixed recv order.
    constexpr int kRanks = 8;
    constexpr int kOps = 300;
    const std::vector<double> payload(512, 1.0);
    for (const bool nonblocking : {false, true}) {
      std::vector<double> samples;
      comm::World w(kRanks);
      w.run([&](comm::Comm& c) {
        const int lo = (c.rank() + kRanks - 1) % kRanks;
        const int hi = (c.rank() + 1) % kRanks;
        const auto bytes = comm::pack(std::span<const double>(payload));
        for (int rep = 0; rep < warm + reps; ++rep) {
          c.barrier();  // keep the blocks aligned across ranks
          util::Timer t;
          for (int i = 0; i < kOps; ++i) {
            if (nonblocking) {
              comm::NeighborhoodExchange nx(c);
              nx.expect(lo, 1);
              nx.expect(hi, 1);
              nx.send(lo, 1, bytes);
              nx.send(hi, 1, bytes);
              nx.complete([&](std::size_t, comm::Message&& m) {
                bench::keep(m.payload.size());
              });
            } else {
              c.send(lo, 1, std::span<const double>(payload));
              c.send(hi, 1, std::span<const double>(payload));
              bench::keep(c.recv(lo, 1));
              bench::keep(c.recv(hi, 1));
            }
          }
          if (c.rank() == 0 && rep >= warm) {
            samples.push_back(1e9 * t.elapsed() / kOps);
          }
        }
      });
      h.add_samples(nonblocking ? "neighborhood_nonblocking"
                                : "neighborhood_blocking",
                    "ns/op", std::move(samples));
    }
  }

  {
    // Single-rank epoch: measures the put + fence + drain machinery without a
    // cross-rank iteration-count handshake.
    constexpr int kOps = 2000;
    std::vector<double> samples;
    comm::World w(1);
    w.run([&](comm::Comm& c) {
      auto win = c.create_window();
      const std::int64_t rec = 42;
      for (int rep = 0; rep < warm + reps; ++rep) {
        util::Timer t;
        for (int i = 0; i < kOps; ++i) {
          c.put(*win, 0, std::span<const std::int64_t>(&rec, 1));
          c.barrier();
          bench::keep(c.drain<std::int64_t>(*win));
        }
        if (rep >= warm) samples.push_back(1e9 * t.elapsed() / kOps);
      }
    });
    h.add_samples("window_put_drain", "ns/op", std::move(samples));
  }

  return h.write();
}
