// Microbenchmarks (google-benchmark) of the in-process message-passing
// substrate: point-to-point latency/throughput, collective rendezvous cost,
// probe-based dynamic receives (the on-demand KMC primitive), and one-sided
// window puts. Characterizes the substrate the scaling benches run on.

#include <benchmark/benchmark.h>

#include "comm/world.h"

using namespace mmd;

namespace {

void BM_PingPongSmall(benchmark::State& state) {
  comm::World w(2);
  w.run([&](comm::Comm& c) {
    const double x = 1.0;
    if (c.rank() == 0) {
      for (auto _ : state) {
        c.send(1, 1, std::span<const double>(&x, 1));
        benchmark::DoNotOptimize(c.recv(1, 2));
      }
      c.send_value(1, 9, 0);  // stop token
    } else {
      for (;;) {
        if (c.iprobe(0, 9)) break;
        if (c.iprobe(0, 1)) {
          c.recv(0, 1);
          c.send(0, 2, std::span<const double>(&x, 1));
        }
      }
      c.recv(0, 9);
    }
  });
}
BENCHMARK(BM_PingPongSmall);

void BM_SendRecvThroughput(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  comm::World w(2);
  w.run([&](comm::Comm& c) {
    std::vector<char> buf(bytes, 'x');
    if (c.rank() == 0) {
      for (auto _ : state) {
        c.send(1, 1, std::span<const char>(buf));
        benchmark::DoNotOptimize(c.recv(1, 2));
      }
      c.send_value(1, 9, 0);
    } else {
      for (;;) {
        if (c.iprobe(0, 9)) break;
        if (c.iprobe(0, 1)) {
          c.recv(0, 1);
          c.send_value(0, 2, 1);
        }
      }
      c.recv(0, 9);
    }
  });
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SendRecvThroughput)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_AllreduceRendezvous(benchmark::State& state) {
  // Every rank participates in every allreduce; rank 0 releases the others
  // by flipping its contribution strongly negative on the last round.
  const int n = static_cast<int>(state.range(0));
  comm::World w(n);
  w.run([&](comm::Comm& c) {
    if (c.rank() == 0) {
      for (auto _ : state) {
        benchmark::DoNotOptimize(c.allreduce_sum(1.0));
      }
      c.allreduce_sum(-1e9);  // release
    } else {
      while (c.allreduce_sum(1.0) > 0.0) {
      }
    }
  });
}
BENCHMARK(BM_AllreduceRendezvous)->Arg(2)->Arg(4)->Arg(8);

void BM_WindowPutDrain(benchmark::State& state) {
  // Single-rank epoch: measures the put + fence + drain machinery without a
  // cross-rank iteration-count handshake.
  comm::World w(1);
  w.run([&](comm::Comm& c) {
    auto win = c.create_window();
    const std::int64_t rec = 42;
    for (auto _ : state) {
      c.put(*win, 0, std::span<const std::int64_t>(&rec, 1));
      c.barrier();
      benchmark::DoNotOptimize(c.drain<std::int64_t>(*win));
    }
  });
}
BENCHMARK(BM_WindowPutDrain);

}  // namespace

BENCHMARK_MAIN();
