// Fig. 10 — Strong scaling of MD with 3.2e10 atoms, 97.5k -> 6.24M
// master+slave cores. Paper: 26.4x speedup over a 64x core increase (41.3%
// parallel efficiency), degrading gradually from communication overhead.
//
// Live runs at 1..8 in-process ranks on a fixed box supply the measured
// per-rank compute rate and ghost traffic; the alpha-beta scaling model
// projects the per-step time across the paper's core counts.

#include <mutex>

#include "bench_common.h"
#include "md/engine.h"
#include "perf/scaling_model.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("Fig. 10", "MD strong scaling (3.2e10 atoms in the paper)");

  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 12;
  cfg.temperature = 600.0;
  cfg.table_segments = 2000;
  const int steps = 5;

  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  std::printf("\n  Live measurement (fixed %d^3-cell box, %lld atoms):\n",
              cfg.nx, static_cast<long long>(2ll * cfg.nx * cfg.ny * cfg.nz));
  std::printf("  %8s %14s %14s %14s %12s\n", "ranks", "step [ms]",
              "compute [ms]", "comm [ms]", "speedup");

  double base_time = 0.0;
  perf::StepProfile base_profile;
  for (const int nranks : {1, 2, 4, 8}) {
    const md::MdSetup setup(cfg, nranks);
    double step_ms = 0.0, comp_ms = 0.0, comm_ms = 0.0;
    std::uint64_t bytes = 0;
    std::mutex m;
    comm::World world(nranks);
    world.run([&](comm::Comm& comm) {
      md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
      engine.initialize(comm);
      util::Timer t;
      engine.run(comm, steps);
      const double wall = comm.allreduce_max(t.elapsed());
      const double comp = comm.allreduce_max(engine.computation_seconds());
      const double cms = comm.allreduce_max(engine.communication_seconds());
      std::lock_guard lk(m);
      bytes = std::max(bytes, comm.my_traffic().p2p_bytes_sent);
      if (comm.rank() == 0) {
        step_ms = 1e3 * wall / steps;
        comp_ms = 1e3 * comp / steps;
        comm_ms = 1e3 * cms / steps;
      }
    });
    if (nranks == 1) {
      base_time = step_ms;
      base_profile.compute_s = comp_ms / 1e3;
      base_profile.p2p_msgs = 6 * 3;  // 3-phase, 2 sides, entries+chains+emigrants
      base_profile.p2p_bytes = bytes / steps;
      base_profile.collectives = 0;
    }
    std::printf("  %8d %14.2f %14.2f %14.2f %12.2fx\n", nranks, step_ms, comp_ms,
                comm_ms, base_time / step_ms);
  }

  std::printf("\n  Projection to the paper's core counts (3.2e10 atoms):\n");
  std::printf("  %12s %12s %12s %14s %20s\n", "cores", "speedup", "ideal",
              "efficiency", "paper");
  perf::ScalingModel model;
  const std::uint64_t base_cores = 97500;
  const std::uint64_t base_ranks = perf::ranks_from_cores(base_cores);
  // Normalize the measured ghost traffic to a 97.5k-core subdomain of
  // 3.2e10 atoms (surface scaling).
  const double atoms_per_rank_paper = 3.2e10 / static_cast<double>(base_ranks);
  const double atoms_measured = 2.0 * cfg.nx * cfg.ny * cfg.nz;
  perf::StepProfile paper_base = base_profile;
  paper_base.p2p_bytes = static_cast<std::uint64_t>(
      static_cast<double>(paper_base.p2p_bytes) *
      std::pow(atoms_per_rank_paper / atoms_measured, 2.0 / 3.0));

  const struct { std::uint64_t cores; double paper_speedup; } paper_rows[] = {
      {97500, 1.0},   {195000, 1.96}, {390000, 3.8},  {780000, 7.2},
      {1560000, 12.8}, {3120000, 19.5}, {6240000, 26.4}};
  // Per-point modeled communication time from our counted volumes.
  double m[std::size(paper_rows)];
  for (std::size_t i = 0; i < std::size(paper_rows); ++i) {
    const double factor = static_cast<double>(paper_rows[i].cores) / base_cores;
    const auto scaled = model.strong_scale(paper_base, factor);
    const auto ranks = perf::ranks_from_cores(paper_rows[i].cores);
    m[i] = model.network().p2p_time(scaled.p2p_msgs, scaled.p2p_bytes, ranks) +
           model.network().collective_time(ranks);  // adaptive-dt allreduce
  }
  // Calibrate the one unknown — the real machine's per-rank compute time —
  // against the paper's reported END point (26.4x at 64x cores); every other
  // row is a prediction of this reproduction's communication model.
  const double C = perf::ScalingModel::calibrate_strong_compute(
      m[0], m[std::size(paper_rows) - 1], 64.0, 26.4);
  for (std::size_t i = 0; i < std::size(paper_rows); ++i) {
    const auto& row = paper_rows[i];
    const double factor = static_cast<double>(row.cores) / base_cores;
    const double speedup = (C + m[0]) / (C / factor + m[i]);
    std::printf("  %12s %11.1fx %11.0fx %13.1f%% %17.1fx\n",
                bench::cores_str(row.cores).c_str(), speedup, factor,
                100.0 * perf::ScalingModel::strong_efficiency(speedup, factor),
                row.paper_speedup);
  }
  std::printf("\n  Calibration: the testbed's per-rank compute time (C = %.3f s/step)\n"
              "  is fitted to the paper's final point; intermediate rows follow\n"
              "  from this code's measured ghost volumes + the network model.\n", C);
  std::printf("\n  Shape check vs paper Fig. 10: near-ideal at small scale,\n"
              "  efficiency decaying toward ~40%% at 64x cores as ghost exchange\n"
              "  and contention dominate the shrinking subdomains.\n");
  return 0;
}
