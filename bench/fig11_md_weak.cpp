// Fig. 11 — Weak scaling of MD, 3.9e7 atoms per core group, 104k -> 6.656M
// master+slave cores; computation time stays flat while communication grows
// slowly; 85% parallel efficiency at 4e12 atoms on 6.656M cores.
//
// Live runs keep the per-rank box fixed while the rank count grows; the
// measured per-rank compute time and ghost traffic are projected to the
// paper's core counts with the alpha-beta + contention model.

#include "bench_common.h"
#include "md/engine.h"
#include "perf/scaling_model.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("Fig. 11", "MD weak scaling (3.9e7 atoms per core group in the paper)");

  md::MdConfig base_cfg;
  base_cfg.temperature = 600.0;
  base_cfg.table_segments = 2000;
  const int per_rank_cells = 8;  // 8^3 cells = 1024 atoms per rank
  const int steps = 5;

  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(base_cfg.lattice_constant, base_cfg.cutoff),
      base_cfg.table_segments);

  std::printf("\n  Live weak-scaling measurement (%d^3 cells per rank):\n",
              per_rank_cells);
  std::printf("  %8s %14s %14s %14s %12s\n", "ranks", "step [ms]",
              "compute [ms]", "comm [ms]", "efficiency");

  double base_time = 0.0;
  perf::StepProfile profile;
  for (const int nranks : {1, 2, 4, 8}) {
    md::MdConfig cfg = base_cfg;
    // Grow the box so each rank keeps the same subdomain.
    cfg.nx = per_rank_cells * (nranks >= 2 ? 2 : 1);
    cfg.ny = per_rank_cells * (nranks >= 4 ? 2 : 1);
    cfg.nz = per_rank_cells * (nranks >= 8 ? 2 : 1);
    const md::MdSetup setup(cfg, nranks);
    double step_ms = 0.0, comp_ms = 0.0, comm_ms = 0.0;
    std::uint64_t bytes = 0;
    comm::World world(nranks);
    world.run([&](comm::Comm& comm) {
      md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
      engine.initialize(comm);
      util::Timer t;
      engine.run(comm, steps);
      const double wall = comm.allreduce_max(t.elapsed());
      const double comp = comm.allreduce_max(engine.computation_seconds());
      const double cms = comm.allreduce_max(engine.communication_seconds());
      if (comm.rank() == 0) {
        step_ms = 1e3 * wall / steps;
        comp_ms = 1e3 * comp / steps;
        comm_ms = 1e3 * cms / steps;
        bytes = comm.my_traffic().p2p_bytes_sent / steps;
      }
    });
    if (nranks == 1) base_time = step_ms;
    if (nranks == 8) {
      profile.compute_s = comp_ms / 1e3;
      profile.p2p_msgs = 18;
      profile.p2p_bytes = bytes;
      profile.collectives = 0;
    }
    std::printf("  %8d %14.2f %14.2f %14.2f %11.1f%%\n", nranks, step_ms, comp_ms,
                comm_ms, 100.0 * base_time / step_ms);
  }

  // Scale the per-rank profile to the paper's 3.9e7 atoms per core group.
  const double atoms_measured = 2.0 * per_rank_cells * per_rank_cells * per_rank_cells;
  perf::StepProfile paper = profile;
  paper.compute_s *= 3.9e7 / atoms_measured;
  paper.p2p_bytes = static_cast<std::uint64_t>(
      static_cast<double>(paper.p2p_bytes) *
      std::pow(3.9e7 / atoms_measured, 2.0 / 3.0));
  paper.collectives = 0;

  std::printf("\n  Projection to the paper's core counts (weak scaling):\n");
  std::printf("  %12s %14s %14s %14s %12s %10s\n", "cores", "atoms", "compute [s]",
              "comm [ms]", "efficiency", "paper");
  perf::ScalingModel model;
  const struct { std::uint64_t cores; double paper_eff; } rows[] = {
      {104000, 0.801},  {208000, 0.867},  {416000, 0.951},
      {832000, 0.907},  {1664000, 0.884}, {6656000, 0.85}};
  // Modeled per-step communication time at every point (per-rank traffic is
  // fixed under weak scaling; contention and the adaptive-dt allreduce grow).
  double m[std::size(rows)];
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto ranks = perf::ranks_from_cores(rows[i].cores);
    m[i] = model.network().p2p_time(paper.p2p_msgs, paper.p2p_bytes, ranks) +
           model.network().collective_time(ranks);
  }
  // Calibrate the testbed compute time to the paper's final efficiency; the
  // intermediate rows then follow from our communication model.
  const double C = perf::ScalingModel::calibrate_weak_compute(
      m[0], m[std::size(rows) - 1], 0.85);
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto& row = rows[i];
    const double atoms = 3.9e7 / 65.0 * static_cast<double>(row.cores);
    std::printf("  %12s %14.3g %14.4f %14.4f %11.1f%% %9.1f%%\n",
                bench::cores_str(row.cores).c_str(), atoms, C, 1e3 * m[i],
                100.0 * (C + m[0]) / (C + m[i]), 100.0 * row.paper_eff);
  }
  std::printf("\n  Calibration: compute/step C fitted to the paper's 85%% end\n"
              "  point; the efficiency decay across rows comes from this code's\n"
              "  measured ghost traffic plus modeled contention.\n");
  std::printf("\n  Shape check vs paper Fig. 11: computation flat across core\n"
              "  counts; communication creeps up with contention; efficiency\n"
              "  stays in the 80-95%% band out to 6.656M cores / 4e12 atoms.\n");
  std::printf("\n  Memory argument (in-text): the lattice neighbor list's\n"
              "  per-atom footprint lets 4e12 atoms fit where a Verlet-list\n"
              "  code manages ~8e11 — see tab_memory_footprint.\n");
  return 0;
}
