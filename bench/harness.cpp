#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/timer.h"

namespace mmd::bench {

namespace {

int env_int(const char* name, int fallback, int floor) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  const int v = std::atoi(s);
  return v < floor ? floor : v;
}

}  // namespace

BenchHarness::BenchHarness(std::string name, Options opt) : opt_(opt) {
  opt_.repeats = env_int("MMD_BENCH_REPEATS", opt_.repeats, 1);
  opt_.warmup = env_int("MMD_BENCH_WARMUP", opt_.warmup, 0);
  report_.name = std::move(name);
  report_.env = perf::capture_bench_env();
  report_.warmup = opt_.warmup;
  report_.repeats = opt_.repeats;
}

void BenchHarness::time_per_op(const std::string& metric,
                               const std::function<void()>& op) {
  // Calibrate the inner batch so one sample is long enough to time reliably.
  std::uint64_t batch = 1;
  for (;;) {
    util::Timer t;
    for (std::uint64_t i = 0; i < batch; ++i) op();
    if (t.elapsed() >= opt_.min_sample_s || batch >= (1ull << 30)) break;
    batch *= 2;
  }
  for (int w = 0; w < opt_.warmup; ++w) {
    for (std::uint64_t i = 0; i < batch; ++i) op();
  }
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(opt_.repeats));
  for (int r = 0; r < opt_.repeats; ++r) {
    util::Timer t;
    for (std::uint64_t i = 0; i < batch; ++i) op();
    samples.push_back(1e9 * t.elapsed() / static_cast<double>(batch));
  }
  add_samples(metric, "ns/op", std::move(samples));
}

void BenchHarness::time_call_ms(const std::string& metric,
                                const std::function<void()>& fn) {
  for (int w = 0; w < opt_.warmup; ++w) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(opt_.repeats));
  for (int r = 0; r < opt_.repeats; ++r) {
    util::Timer t;
    fn();
    samples.push_back(1e3 * t.elapsed());
  }
  add_samples(metric, "ms", std::move(samples));
}

void BenchHarness::add_samples(const std::string& metric, const std::string& unit,
                               std::vector<double> samples, bool lower_is_better) {
  perf::BenchMetric m;
  m.name = metric;
  m.unit = unit;
  m.lower_is_better = lower_is_better;
  m.samples = std::move(samples);
  report_.metrics.push_back(std::move(m));
}

void BenchHarness::add_value(const std::string& metric, const std::string& unit,
                             double value, bool lower_is_better) {
  add_samples(metric, unit, {value}, lower_is_better);
}

int BenchHarness::write(const std::string& dir) {
  for (auto& m : report_.metrics) m.finalize();
  std::printf("\n  %-44s %14s %12s %12s %9s\n", "metric", "median", "MAD", "min",
              "outliers");
  for (const auto& m : report_.metrics) {
    std::printf("  %-44s %12.4g %-6s %12.4g %12.4g %9d\n", m.name.c_str(),
                m.median, m.unit.c_str(), m.mad, m.min, m.outliers);
  }
  try {
    const std::string path = report_.write_file(dir);
    std::printf("  wrote %s (schema mmd.bench v%d, %d warmup + %d repeats)\n",
                path.c_str(), perf::BenchReport::kSchemaVersion, opt_.warmup,
                opt_.repeats);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace mmd::bench
