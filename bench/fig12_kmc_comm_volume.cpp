// Fig. 12 — KMC communication volume: traditional full-shell ghost exchange
// vs the paper's on-demand strategy, 1.6e7 sites, vacancy concentration
// 4.5e-5, 16..1024 master cores. Paper: on-demand volume is ~2.6% of the
// traditional volume on average.
//
// Both strategies run LIVE here (downscaled box, same concentration); the
// byte counters come from the actual exchanges, and equivalence of the final
// configurations is verified in tests/test_kmc_engine.cpp.

#include <mutex>

#include "bench_common.h"
#include "harness.h"
#include "kmc/engine.h"
#include "util/stats.h"

using namespace mmd;

namespace {

kmc::GhostTraffic run(const kmc::KmcConfig& cfg, int nranks,
                      kmc::GhostStrategy strategy, double concentration,
                      int cycles) {
  const kmc::KmcSetup setup(cfg, nranks);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  kmc::GhostTraffic total;
  std::mutex m;
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    kmc::KmcEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank(), strategy);
    engine.initialize_random(comm, concentration);
    engine.ghost_comm().reset_traffic();  // exclude the init full refresh
    engine.run_cycles(comm, cycles);
    std::lock_guard lk(m);
    total += engine.ghost_comm().traffic();
  });
  return total;
}

}  // namespace

int main() {
  bench::title("Fig. 12",
               "KMC communication volume: traditional vs on-demand "
               "(C_v = 4.5e-5 in the paper)");
  bench::BenchHarness h("fig12_kmc_comm_volume");

  kmc::KmcConfig cfg;
  cfg.table_segments = 500;
  cfg.dt_scale = 2.0;
  const double concentration = 4.5e-5;
  const int cycles = 3;

  std::printf("\n  Live volumes, %d cycles, paper concentration %.1e:\n", cycles,
              concentration);
  std::printf("  %8s %10s %18s %18s %12s %10s\n", "ranks", "sites",
              "traditional [B]", "on-demand [B]", "ratio", "paper");
  std::vector<double> ratios;
  std::vector<double> rank_series, trad_series, ondemand_series;
  for (const auto& [nranks, cells] : std::vector<std::pair<int, int>>{
           {2, 20}, {4, 24}, {8, 28}}) {
    kmc::KmcConfig c = cfg;
    c.nx = c.ny = c.nz = cells;
    const auto trad = run(c, nranks, kmc::GhostStrategy::Traditional,
                          concentration, cycles);
    const auto ondemand = run(c, nranks, kmc::GhostStrategy::OnDemandOneSided,
                              concentration, cycles);
    const double ratio = trad.bytes_sent > 0
                             ? static_cast<double>(ondemand.bytes_sent) /
                                   static_cast<double>(trad.bytes_sent)
                             : 0.0;
    ratios.push_back(std::max(ratio, 1e-6));
    rank_series.push_back(nranks);
    trad_series.push_back(static_cast<double>(trad.bytes_sent));
    ondemand_series.push_back(static_cast<double>(ondemand.bytes_sent));
    h.add_value("traditional_bytes_r" + std::to_string(nranks), "bytes",
                static_cast<double>(trad.bytes_sent));
    h.add_value("ondemand_bytes_r" + std::to_string(nranks), "bytes",
                static_cast<double>(ondemand.bytes_sent));
    h.add_value("ondemand_ratio_r" + std::to_string(nranks), "ratio", ratio);
    std::printf("  %8d %10lld %18llu %18llu %11.2f%% %9s\n", nranks,
                2ll * cells * cells * cells,
                static_cast<unsigned long long>(trad.bytes_sent),
                static_cast<unsigned long long>(ondemand.bytes_sent),
                100.0 * ratio, "2.6%");
  }
  std::printf("\n");
  bench::note("on-demand / traditional volume (geo-mean): %.2f%%  (paper: 2.6%%)",
              100.0 * util::geometric_mean(ratios));
  h.add_value("ondemand_ratio_geomean", "ratio", util::geometric_mean(ratios));
  bool write_failed = false;
  {
    bench::FigureJson fj("fig12_kmc_comm_volume");
    fj.add_note("paper_ratio", "0.026");
    fj.add_series("ranks", rank_series);
    fj.add_series("traditional_bytes", trad_series);
    fj.add_series("ondemand_bytes", ondemand_series);
    fj.add_series("ratio", ratios);
    write_failed = fj.write().empty();
  }
  bench::note("the traditional scheme ships the whole sector ghost shell twice");
  bench::note("per sector whether updated or not; on-demand ships only the");
  bench::note("few sites events touched — at C_v = 4.5e-5 almost nothing.");

  // The mechanism behind the ratio: traditional volume is fixed by the shell
  // geometry, on-demand volume follows the number of update records. Shown
  // per concentration; the traditional column does not move.
  std::printf("\n  Sensitivity to vacancy concentration (4 ranks, 24^3 cells):\n");
  std::printf("  %14s %18s %18s %12s\n", "C_v", "traditional [B]",
              "on-demand [B]", "ratio");
  for (const double cv : {4.5e-5, 5e-4, 5e-3}) {
    kmc::KmcConfig c = cfg;
    c.nx = c.ny = c.nz = 24;
    const auto trad = run(c, 4, kmc::GhostStrategy::Traditional, cv, cycles);
    const auto ondemand = run(c, 4, kmc::GhostStrategy::OnDemandOneSided, cv, cycles);
    std::printf("  %14.1e %18llu %18llu %11.2f%%\n", cv,
                static_cast<unsigned long long>(trad.bytes_sent),
                static_cast<unsigned long long>(ondemand.bytes_sent),
                100.0 * static_cast<double>(ondemand.bytes_sent) /
                    static_cast<double>(std::max<std::uint64_t>(1, trad.bytes_sent)));
  }
  std::printf("\n");
  bench::note("(event counts per cycle depend on the BKL clock, so the");
  bench::note(" on-demand column tracks events, not concentration, exactly)");
  const int rc = h.write();
  return write_failed ? 1 : rc;
}
