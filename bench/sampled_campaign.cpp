// sampled_campaign — sampled long-time mode vs all-detailed KMC at matched
// MC coverage (docs/SAMPLING.md).
//
// Runs one two-job campaign: the same cascade scenario scheduled once with
// every KMC cycle detailed and once in sampled mode (detailed windows + SCD
// warming strides covering the same kmc.cycles target). Reports the campaign
// wall time (the perf-smoke regression metric) plus the per-job walls, the
// KMC-stage speedup the window/stride schedule buys, the detailed-event
// reduction, and the confidence interval the estimator pays for it.
//
// Writes BENCH_sampled_campaign.json for tools/mmd_perf_diff.

#include <cstddef>
#include <filesystem>
#include <string>

#include "harness.h"
#include "serve/campaign.h"
#include "serve/campaign_runner.h"
#include "util/key_value.h"

namespace {

// 150 cycles split as (5 detailed + 45 coarse) periods: the sampled job runs
// 15 detailed cycles for the same 150-cycle coverage, so the KMC stage is
// where the schedule's ~10x event reduction must show up.
constexpr const char* kPair =
    "campaign.name = sampled_pair\n"
    "campaign.max_concurrent = 1\n"
    "box = 8\n"
    "md.time_ps = 0.02\n"
    "md.table_segments = 400\n"
    "kmc.table_segments = 200\n"
    "kmc.cycles = 150\n"
    "sample.window = 5\n"
    "sample.stride = 45\n"
    "sample.replicates = 8\n"
    "sweep.sample.mode = off,scd\n";

mmd::serve::CampaignOutcome run_pair(int* run_counter) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("mmd_bench_sampled_" + std::to_string((*run_counter)++));
  fs::remove_all(root);
  mmd::serve::CampaignRunner::Options opt;
  opt.root = root.string();
  opt.max_concurrent = 1;
  mmd::serve::CampaignRunner runner(
      mmd::serve::CampaignSpec::parse(
          mmd::util::KeyValueConfig::parse(kPair, "sampled_pair.mmd")),
      opt);
  auto outcome = runner.run();
  fs::remove_all(root);
  return outcome;
}

}  // namespace

int main() {
  using namespace mmd;
  bench::BenchHarness::Options opt;
  opt.warmup = 1;
  opt.repeats = 5;
  bench::BenchHarness h("sampled_campaign", opt);

  int run_counter = 0;
  serve::CampaignOutcome outcome;
  h.time_call_ms("campaign_detailed_plus_sampled",
                 [&] { outcome = run_pair(&run_counter); });

  const serve::JobResult& detailed = outcome.jobs.at(0);  // sample.mode = off
  const serve::JobResult& sampled = outcome.jobs.at(1);   // sample.mode = scd

  h.add_value("detailed_job_ms", "ms", detailed.wall_seconds * 1e3);
  h.add_value("sampled_job_ms", "ms", sampled.wall_seconds * 1e3);
  h.add_value("kmc_stage_speedup", "x",
              sampled.kmc_seconds > 0.0
                  ? detailed.kmc_seconds / sampled.kmc_seconds
                  : 0.0,
              /*lower_is_better=*/false);
  h.add_value("detailed_event_reduction", "x",
              sampled.kmc_events > 0
                  ? static_cast<double>(detailed.kmc_events) /
                        static_cast<double>(sampled.kmc_events)
                  : 0.0,
              /*lower_is_better=*/false);
  h.add_value("sampled_windows", "windows",
              static_cast<double>(sampled.report.sampled.windows),
              /*lower_is_better=*/false);
  h.add_value("sampled_ci_halfwidth", "clusters",
              sampled.report.sampled.ci_halfwidth);

  return h.write();
}
