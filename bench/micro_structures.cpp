// Microbenchmarks (BenchHarness) for the lattice data structures: neighbor
// iteration over the lattice neighbor list vs the Verlet-list and linked-cell
// baselines, and the run-away bookkeeping ablation the paper calls out
// against [Hu 2017] — linked lists (O(N) re-homing via chained hosts) vs a
// flat array of run-aways (O(N^2) mutual search). Emits
// BENCH_micro_structures.json for tools/mmd_perf_diff.

#include <vector>

#include "bench_common.h"
#include "harness.h"
#include "lattice/lattice_neighbor_list.h"
#include "lattice/verlet_list.h"
#include "util/rng.h"

using namespace mmd;

namespace {

constexpr double kA = 2.855;
constexpr double kCut = 5.0;

struct Crystal {
  lat::BccGeometry geo{12, 12, 12, kA};
  lat::LatticeNeighborList lnl{geo, lat::LocalBox{0, 0, 0, 12, 12, 12, 2}, kCut};
  std::vector<util::Vec3> pos;

  Crystal() {
    lnl.fill_perfect(lat::Species::Fe);
    pos.resize(static_cast<std::size_t>(geo.num_sites()));
    for (std::int64_t id = 0; id < geo.num_sites(); ++id) {
      pos[static_cast<std::size_t>(id)] = geo.position(geo.site_coord(id));
    }
  }
};

Crystal& crystal() {
  static Crystal c;
  return c;
}

}  // namespace

int main() {
  bench::title("micro_structures",
               "lattice neighbor structures and run-away bookkeeping ablation");
  bench::BenchHarness h("micro_structures");
  auto& c = crystal();

  // One op = one full-lattice neighbor sweep, so the per-op time is
  // comparable across the three structures at identical geometry.
  {
    double acc = 0.0;
    h.time_per_op("lnl_neighbor_sweep", [&] {
      for (std::size_t idx : c.lnl.owned_indices()) {
        c.lnl.for_each_neighbor_of_entry(
            idx, [&](const lat::ParticleView& p) { acc += p.r.x; });
      }
    });
    bench::keep(acc);
  }

  {
    lat::VerletNeighborList verlet(kCut, 0.6);
    verlet.build(c.pos, c.geo.box_length());
    double acc = 0.0;
    h.time_per_op("verlet_neighbor_sweep", [&] {
      for (std::size_t i = 0; i < c.pos.size(); ++i) {
        for (std::int32_t j : verlet.neighbors(i)) {
          acc += c.pos[static_cast<std::size_t>(j)].x;
        }
      }
    });
    bench::keep(acc);
  }

  {
    lat::VerletNeighborList verlet(kCut, 0.6);
    h.time_per_op("verlet_rebuild",
                  [&] { verlet.build(c.pos, c.geo.box_length()); });
    bench::keep(verlet);
  }

  {
    lat::LinkedCellList cells(kCut);
    double acc = 0.0;
    h.time_per_op("linked_cell_sweep", [&] {
      cells.build(c.pos, c.geo.box_length());  // rebuilt every step (IMD-style)
      for (std::size_t i = 0; i < c.pos.size(); ++i) {
        cells.for_each_neighbor(i, [&](std::size_t, const util::Vec3& d) {
          acc += d.x;
        });
      }
    });
    bench::keep(acc);
  }

  // Ablation: run-away neighbor discovery with chained hosts (the paper's
  // improvement) — each run-away checks only the chains in its host's
  // neighbor region. Detachment is done once per run-away count; the
  // iteration itself does not mutate the list.
  for (const int n_runaways : {16, 64, 256}) {
    lat::BccGeometry geo(12, 12, 12, kA);
    lat::LatticeNeighborList lnl(geo, lat::LocalBox{0, 0, 0, 12, 12, 12, 2}, kCut);
    lnl.fill_perfect(lat::Species::Fe);
    util::Rng rng(7);
    for (int i = 0; i < n_runaways; ++i) {
      const auto idx = lnl.box().entry_index(
          {static_cast<int>(rng.uniform_index(12)),
           static_cast<int>(rng.uniform_index(12)),
           static_cast<int>(rng.uniform_index(12)), 0});
      if (lnl.entry(idx).is_atom()) lnl.detach(idx);
    }
    double acc = 0.0;
    h.time_per_op("runaway_chained_rehome_" + std::to_string(n_runaways), [&] {
      lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
        lnl.for_each_neighbor_of_runaway(
            ri, host, [&](const lat::ParticleView& p) { acc += p.rho; });
      });
    });
    bench::keep(acc);
  }

  // Ablation baseline: flat-array run-aways with no positional linkage —
  // every run-away must test every other run-away (the O(N^2) cost of
  // [Hu 2017]).
  for (const int n_runaways : {16, 64, 256}) {
    util::Rng rng(7);
    std::vector<util::Vec3> runaways;
    runaways.reserve(static_cast<std::size_t>(n_runaways));
    for (int i = 0; i < n_runaways; ++i) {
      runaways.push_back({rng.uniform(0, 12 * kA), rng.uniform(0, 12 * kA),
                          rng.uniform(0, 12 * kA)});
    }
    const double cut2 = kCut * kCut;
    double acc = 0.0;
    h.time_per_op("runaway_flat_array_pairs_" + std::to_string(n_runaways), [&] {
      for (std::size_t i = 0; i < runaways.size(); ++i) {
        for (std::size_t j = 0; j < runaways.size(); ++j) {
          if (i != j && (runaways[i] - runaways[j]).norm2() < cut2) acc += 1.0;
        }
      }
    });
    bench::keep(acc);
  }

  return h.write();
}
