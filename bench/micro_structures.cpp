// Microbenchmarks (google-benchmark) for the lattice data structures:
// neighbor iteration over the lattice neighbor list vs the Verlet-list and
// linked-cell baselines, and the run-away bookkeeping ablation the paper
// calls out against [Hu 2017] — linked lists (O(N) re-homing via chained
// hosts) vs a flat array of run-aways (O(N^2) mutual search).

#include <benchmark/benchmark.h>

#include <vector>

#include "lattice/lattice_neighbor_list.h"
#include "lattice/verlet_list.h"
#include "util/rng.h"

using namespace mmd;

namespace {

constexpr double kA = 2.855;
constexpr double kCut = 5.0;

struct Crystal {
  lat::BccGeometry geo{12, 12, 12, kA};
  lat::LatticeNeighborList lnl{geo, lat::LocalBox{0, 0, 0, 12, 12, 12, 2}, kCut};
  std::vector<util::Vec3> pos;

  Crystal() {
    lnl.fill_perfect(lat::Species::Fe);
    pos.resize(static_cast<std::size_t>(geo.num_sites()));
    for (std::int64_t id = 0; id < geo.num_sites(); ++id) {
      pos[static_cast<std::size_t>(id)] = geo.position(geo.site_coord(id));
    }
  }
};

Crystal& crystal() {
  static Crystal c;
  return c;
}

void BM_LnlNeighborIteration(benchmark::State& state) {
  auto& c = crystal();
  double acc = 0.0;
  for (auto _ : state) {
    for (std::size_t idx : c.lnl.owned_indices()) {
      c.lnl.for_each_neighbor_of_entry(
          idx, [&](const lat::ParticleView& p) { acc += p.r.x; });
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.lnl.owned_indices().size()));
}
BENCHMARK(BM_LnlNeighborIteration);

void BM_VerletNeighborIteration(benchmark::State& state) {
  auto& c = crystal();
  lat::VerletNeighborList verlet(kCut, 0.6);
  verlet.build(c.pos, c.geo.box_length());
  double acc = 0.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < c.pos.size(); ++i) {
      for (std::int32_t j : verlet.neighbors(i)) {
        acc += c.pos[static_cast<std::size_t>(j)].x;
      }
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(c.pos.size()));
}
BENCHMARK(BM_VerletNeighborIteration);

void BM_VerletRebuild(benchmark::State& state) {
  auto& c = crystal();
  lat::VerletNeighborList verlet(kCut, 0.6);
  for (auto _ : state) {
    verlet.build(c.pos, c.geo.box_length());
  }
  benchmark::DoNotOptimize(verlet);
}
BENCHMARK(BM_VerletRebuild);

void BM_LinkedCellIteration(benchmark::State& state) {
  auto& c = crystal();
  lat::LinkedCellList cells(kCut);
  double acc = 0.0;
  for (auto _ : state) {
    cells.build(c.pos, c.geo.box_length());  // rebuilt every step (IMD-style)
    for (std::size_t i = 0; i < c.pos.size(); ++i) {
      cells.for_each_neighbor(i, [&](std::size_t, const util::Vec3& d) {
        acc += d.x;
      });
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(c.pos.size()));
}
BENCHMARK(BM_LinkedCellIteration);

/// Ablation: run-away neighbor discovery with chained hosts (ours / the
/// paper's improvement) — each run-away checks only the chains in its host's
/// neighbor region.
void BM_RunawayChainedRehome(benchmark::State& state) {
  const auto n_runaways = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    lat::BccGeometry geo(12, 12, 12, kA);
    lat::LatticeNeighborList lnl(geo, lat::LocalBox{0, 0, 0, 12, 12, 12, 2}, kCut);
    lnl.fill_perfect(lat::Species::Fe);
    util::Rng rng(7);
    for (int i = 0; i < n_runaways; ++i) {
      const auto idx = lnl.box().entry_index(
          {static_cast<int>(rng.uniform_index(12)),
           static_cast<int>(rng.uniform_index(12)),
           static_cast<int>(rng.uniform_index(12)), 0});
      if (lnl.entry(idx).is_atom()) lnl.detach(idx);
    }
    state.ResumeTiming();
    double acc = 0.0;
    lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
      lnl.for_each_neighbor_of_runaway(ri, host, [&](const lat::ParticleView& p) {
        acc += p.rho;
      });
    });
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RunawayChainedRehome)->Arg(16)->Arg(64)->Arg(256);

/// Ablation baseline: flat-array run-aways with no positional linkage — every
/// run-away must test every other run-away (the O(N^2) cost of [Hu 2017]).
void BM_RunawayFlatArrayPairs(benchmark::State& state) {
  const auto n_runaways = static_cast<int>(state.range(0));
  util::Rng rng(7);
  std::vector<util::Vec3> runaways;
  runaways.reserve(static_cast<std::size_t>(n_runaways));
  for (int i = 0; i < n_runaways; ++i) {
    runaways.push_back({rng.uniform(0, 12 * kA), rng.uniform(0, 12 * kA),
                        rng.uniform(0, 12 * kA)});
  }
  const double cut2 = kCut * kCut;
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < runaways.size(); ++i) {
      for (std::size_t j = 0; j < runaways.size(); ++j) {
        if (i != j && (runaways[i] - runaways[j]).norm2() < cut2) acc += 1.0;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RunawayFlatArrayPairs)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
