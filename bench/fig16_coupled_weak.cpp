// Fig. 16 — Weak scaling of the coupled MD-KMC pipeline, 3.3e5 atoms per
// core group, 97.5k -> 6.24M master+slave cores. Paper: 98.9% / 77.4% /
// 75.7% parallel efficiency at 390k / 1.56M / 6.24M cores.
//
// The live coupled pipeline (cascade MD -> defect handoff -> KMC) runs at
// 1..8 ranks with a fixed per-rank box; measured per-rank compute plus
// counted traffic are projected to the paper's scale.

#include "bench_common.h"
#include "core/simulation.h"
#include "perf/scaling_model.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("Fig. 16", "coupled MD-KMC weak scaling (3.3e5 atoms/CG in the paper)");

  const int per_rank_cells = 8;
  std::printf("\n  Live coupled runs (%d^3 cells per rank):\n", per_rank_cells);
  std::printf("  %8s %12s %12s %12s %12s %12s\n", "ranks", "total [s]",
              "MD [s]", "KMC [s]", "comm [s]", "efficiency");

  double base_total = 0.0;
  perf::StepProfile profile;
  for (const int nranks : {1, 2, 4, 8}) {
    core::SimulationConfig cfg;
    cfg.md.nx = per_rank_cells * (nranks >= 2 ? 2 : 1);
    cfg.md.ny = per_rank_cells * (nranks >= 4 ? 2 : 1);
    cfg.md.nz = per_rank_cells * (nranks >= 8 ? 2 : 1);
    cfg.md.temperature = 600.0;
    cfg.md.table_segments = 1000;
    cfg.kmc_table_segments = 500;
    cfg.md_time_ps = 0.02;
    cfg.pka_count = nranks;  // one cascade per subdomain keeps work per rank flat
    cfg.pka_energy_ev = 60.0;
    cfg.kmc_cycles = 5;
    cfg.nranks = nranks;

    util::Timer t;
    core::Simulation sim(cfg);
    const auto report = sim.run();
    const double total = t.elapsed();
    if (nranks == 1) base_total = total;
    if (nranks == 8) {
      profile.compute_s = report.md_compute_seconds + report.kmc_compute_seconds;
      profile.p2p_msgs = 200;
      profile.p2p_bytes = 1 << 22;
      profile.collectives = 50 + 9 * cfg.kmc_cycles;
    }
    std::printf("  %8d %12.2f %12.2f %12.2f %12.2f %11.1f%%\n", nranks, total,
                report.md_seconds, report.kmc_seconds,
                report.md_comm_seconds + report.kmc_comm_seconds,
                100.0 * base_total / total);
  }

  // Paper projection: atoms/CG fixed at 3.3e5.
  const double atoms_measured = 2.0 * per_rank_cells * per_rank_cells * per_rank_cells;
  perf::StepProfile paper = profile;
  paper.compute_s *= 3.3e5 / atoms_measured;
  paper.p2p_bytes = static_cast<std::uint64_t>(
      static_cast<double>(paper.p2p_bytes) * std::pow(3.3e5 / atoms_measured, 2.0 / 3.0));

  std::printf("\n  Projection to the paper's core counts:\n");
  std::printf("  %10s %14s %14s %12s %10s\n", "cores", "atoms", "comm [ms]",
              "efficiency", "paper");
  perf::ScalingModel model;
  const struct { std::uint64_t cores; double paper_eff; } rows[] = {
      {97500, 1.0}, {390000, 0.989}, {1560000, 0.774}, {6240000, 0.757}};
  double m[std::size(rows)];
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto ranks = perf::ranks_from_cores(rows[i].cores);
    m[i] = model.network().p2p_time(paper.p2p_msgs, paper.p2p_bytes, ranks) +
           static_cast<double>(paper.collectives) *
               model.network().collective_time(ranks);
  }
  const double C = perf::ScalingModel::calibrate_weak_compute(
      m[0], m[std::size(rows) - 1], 0.757);
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto& row = rows[i];
    std::printf("  %10s %14.3g %14.4f %11.1f%% %9.1f%%\n",
                bench::cores_str(row.cores).c_str(),
                3.3e5 / 65.0 * static_cast<double>(row.cores), 1e3 * m[i],
                100.0 * (C + m[0]) / (C + m[i]), 100.0 * row.paper_eff);
  }
  std::printf("\n  Calibration: per-rank pipeline compute time fitted to the\n"
              "  paper's 75.7%% end point; intermediate rows are predictions.\n");
  std::printf("\n  Shape check vs paper Fig. 16: high efficiency that settles\n"
              "  in the ~75%% band at millions of cores — the coupled pipeline\n"
              "  inherits MD's ghost exchange and KMC's synchronization costs.\n");
  return 0;
}
