// Fig. 14 — Strong scaling of KMC with 3.2e10 sites, 1.5k -> 48k master
// cores; paper: 18.5x speedup at 32x cores (58.2% efficiency), with a
// super-linear region between 3k and 12k cores where the per-core dataset
// starts fitting in the master core's L2 cache.
//
// Live runs at 1..8 ranks on a fixed box give the compute rate and traffic;
// the scaling model projects to the paper's range, applying a cache boost in
// the band where the per-rank working set crosses the 256 KB L2.

#include "bench_common.h"
#include "kmc/engine.h"
#include "perf/scaling_model.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("Fig. 14", "KMC strong scaling (3.2e10 sites in the paper)");

  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 20;
  cfg.table_segments = 500;
  cfg.dt_scale = 2.0;
  const double conc = 1e-3;
  const int cycles = 3;

  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  std::printf("\n  Live measurement (fixed %d^3-cell box, %lld sites):\n", cfg.nx,
              2ll * cfg.nx * cfg.ny * cfg.nz);
  std::printf("  %8s %16s %16s %12s\n", "ranks", "cycle [ms]", "compute [ms]",
              "speedup");
  double base_ms = 0.0;
  perf::StepProfile profile;
  for (const int nranks : {1, 2, 4, 8}) {
    const kmc::KmcSetup setup(cfg, nranks);
    double cyc_ms = 0.0, comp_ms = 0.0;
    std::uint64_t bytes = 0, msgs = 0;
    comm::World world(nranks);
    world.run([&](comm::Comm& comm) {
      kmc::KmcEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank(),
                            kmc::GhostStrategy::OnDemandOneSided);
      engine.initialize_random(comm, conc);
      util::Timer t;
      engine.run_cycles(comm, cycles);
      const double wall = comm.allreduce_max(t.elapsed());
      const double comp = comm.allreduce_max(engine.computation_seconds());
      if (comm.rank() == 0) {
        cyc_ms = 1e3 * wall / cycles;
        comp_ms = 1e3 * comp / cycles;
        bytes = engine.ghost_comm().traffic().bytes_sent / cycles;
        msgs = std::max<std::uint64_t>(
            1, engine.ghost_comm().traffic().messages_sent / cycles);
      }
    });
    if (nranks == 1) {
      base_ms = cyc_ms;
      profile.compute_s = comp_ms / 1e3;
      profile.p2p_bytes = bytes;
      profile.p2p_msgs = msgs;
      profile.collectives = 9;  // dt sync + 8 sector fences
    }
    std::printf("  %8d %16.2f %16.2f %12.2fx\n", nranks, cyc_ms, comp_ms,
                base_ms / cyc_ms);
  }

  // Paper projection: base = 1500 master cores, 3.2e10 sites.
  std::printf("\n  Projection to the paper's core counts:\n");
  std::printf("  %8s %12s %10s %14s %12s %10s\n", "cores", "speedup", "ideal",
              "efficiency", "sites/core", "paper");
  perf::ScalingModel model;
  const std::uint64_t base_cores = 1500;
  const double sites_measured = 2.0 * cfg.nx * cfg.ny * cfg.nz;
  perf::StepProfile base = profile;
  base.p2p_bytes = static_cast<std::uint64_t>(
      static_cast<double>(base.p2p_bytes) *
      std::pow(3.2e10 / base_cores / sites_measured, 2.0 / 3.0));
  const struct { std::uint64_t cores; double paper; } rows[] = {
      {1500, 1.0}, {3000, 1.9}, {6000, 4.1}, {12000, 8.6},
      {24000, 13.5}, {48000, 18.5}};
  // L2 cache boost in the band where the per-core site array (1 B/site)
  // approaches the master core's caches (paper's super-linear region).
  auto boost_of = [](double sites_per_core) {
    if (sites_per_core <= 2.5e5) return 1.6;    // fully L2-resident
    if (sites_per_core < 8.0e6) return 1.25;    // partially cached
    return 1.0;
  };
  double m[std::size(rows)], boost[std::size(rows)];
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const double factor = static_cast<double>(rows[i].cores) / base_cores;
    const auto scaled = model.strong_scale(base, factor);
    m[i] = model.network().p2p_time(scaled.p2p_msgs, scaled.p2p_bytes,
                                    rows[i].cores) +
           static_cast<double>(base.collectives) *
               model.network().collective_time(rows[i].cores);
    boost[i] = boost_of(3.2e10 / static_cast<double>(rows[i].cores));
  }
  // Calibrate the unknown per-core compute time to the paper's end point
  // (18.5x at 32x cores); intermediate rows follow from our model.
  const double C = perf::ScalingModel::calibrate_strong_compute(
      m[0], m[std::size(rows) - 1], 32.0, 18.5, boost[std::size(rows) - 1]);
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto& row = rows[i];
    const double factor = static_cast<double>(row.cores) / base_cores;
    const double speedup =
        (C / boost[0] + m[0]) / (C / (factor * boost[i]) + m[i]);
    std::printf("  %8s %11.1fx %9.0fx %13.1f%% %12.3g %9.1fx\n",
                bench::cores_str(row.cores).c_str(), speedup, factor,
                100.0 * perf::ScalingModel::strong_efficiency(speedup, factor),
                3.2e10 / static_cast<double>(row.cores), row.paper);
  }
  std::printf("\n  Calibration: per-core compute time fitted to the paper's\n"
              "  final point; the cache-boost band reproduces the super-linear\n"
              "  region the paper attributes to the master core's L2.\n");
  std::printf("\n  Shape check vs paper Fig. 14: super-linear stretch while the\n"
              "  dataset shrinks into cache, then communication-bound decay to\n"
              "  ~58%% efficiency at 48k cores.\n");
  return 0;
}
