// In-text memory claim (paper §3): with the lattice neighbor list the MD
// stage fits 4e12 atoms on the machine, where "using the traditional data
// structures (such as neighbor list), we only simulate about 8e11 atoms" —
// roughly a 5x memory advantage per atom.
//
// This harness measures actual per-atom heap bytes of the three structures
// on the same crystal and derives the max-atoms ratio for the paper's 8 GB
// core groups.

#include "bench_common.h"
#include "lattice/lattice_neighbor_list.h"
#include "lattice/verlet_list.h"

using namespace mmd;

int main() {
  bench::title("Table (in-text)",
               "memory per atom: lattice neighbor list vs Verlet list vs linked cell");

  const double a = 2.855, cutoff = 5.0, skin = 0.6;
  std::printf("\n  %8s %22s %22s %22s\n", "atoms", "LNL [B/atom]",
              "Verlet list [B/atom]", "linked cell [B/atom]");

  double lnl_bpa = 0.0, verlet_bpa = 0.0, cell_bpa = 0.0;
  for (const int n : {8, 12, 16, 20}) {
    lat::BccGeometry geo(n, n, n, a);
    const auto atoms = static_cast<double>(geo.num_sites());

    lat::LocalBox box{0, 0, 0, n, n, n, 2};
    lat::LatticeNeighborList lnl(geo, box, cutoff + skin);
    lnl.fill_perfect(lat::Species::Fe);

    std::vector<util::Vec3> pos(static_cast<std::size_t>(geo.num_sites()));
    for (std::int64_t id = 0; id < geo.num_sites(); ++id) {
      pos[static_cast<std::size_t>(id)] = geo.position(geo.site_coord(id));
    }
    lat::VerletNeighborList verlet(cutoff, skin);
    verlet.build(pos, geo.box_length());
    lat::LinkedCellList cells(cutoff);
    cells.build(pos, geo.box_length());

    // Apples to apples: every structure also needs the per-atom state
    // (position/velocity/force/rho/id ~ 96 B); the difference is the
    // neighbor bookkeeping on top.
    constexpr double kAtomState = 96.0;
    lnl_bpa = static_cast<double>(lnl.memory_bytes()) / atoms;
    verlet_bpa = kAtomState + static_cast<double>(verlet.memory_bytes()) / atoms;
    cell_bpa = kAtomState + static_cast<double>(cells.memory_bytes()) / atoms;
    std::printf("  %8.0f %22.1f %22.1f %22.1f\n", atoms, lnl_bpa, verlet_bpa,
                cell_bpa);
  }

  std::printf("\n  Paper's capacity argument (8 GB per core group):\n");
  const double gb = 8.0 * (1ull << 30);
  bench::note("max atoms/CG with LNL          : %.3g", gb / lnl_bpa);
  bench::note("max atoms/CG with Verlet list  : %.3g", gb / verlet_bpa);
  bench::note("capacity ratio                 : %.1fx  (paper: 4e12 / 8e11 = 5x)",
              verlet_bpa / lnl_bpa);
  bench::note("LNL stores no neighbor indices at all: neighbors come from a");
  bench::note("fixed offset table shared by every lattice point, and the ghost");
  bench::note("halo is the only per-rank overhead.");
  return 0;
}
