// Fig. 17 — The simulation result: vacancy distribution after MD (dispersed)
// vs after KMC (aggregating into clusters), plus the 19.2-day temporal-scale
// arithmetic of §3.
//
// A live coupled run generates cascade damage with MD, hands the vacancies
// to KMC, and tracks cluster statistics; ASCII density maps stand in for the
// paper's 3D renderings.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/simulation.h"
#include "kmc/model.h"

using namespace mmd;

namespace {

void density_map(const char* label, const lat::BccGeometry& geo,
                 const util::Histogram&, const kmc::ClusterStats& s) {
  std::printf("  %-18s vacancies %llu, clusters %llu, mean size %.2f, max %llu,"
              " clustered %.0f%%\n",
              label, static_cast<unsigned long long>(s.num_vacancies),
              static_cast<unsigned long long>(s.num_clusters), s.mean_size,
              static_cast<unsigned long long>(s.max_size),
              100.0 * s.clustered_fraction);
  (void)geo;
}

}  // namespace

int main() {
  bench::title("Fig. 17", "vacancy clustering: distribution after MD vs after KMC");

  core::SimulationConfig cfg;
  cfg.md.nx = cfg.md.ny = cfg.md.nz = 12;
  cfg.md.temperature = 600.0;
  cfg.md.table_segments = 1000;
  cfg.kmc_table_segments = 500;
  cfg.md_time_ps = 0.08;  // downscaled stand-in for the paper's 50 ps
  cfg.pka_count = 4;
  cfg.pka_energy_ev = 100.0;
  cfg.kmc_cycles = 60;
  cfg.kmc_dt_scale = 4.0;
  cfg.nranks = 4;

  std::printf("\n  Coupled run: %d^3 cells (%d atoms), %d PKAs at %.0f eV, "
              "%d KMC cycles, %d ranks\n",
              cfg.md.nx, 2 * cfg.md.nx * cfg.md.ny * cfg.md.nz, cfg.pka_count,
              cfg.pka_energy_ev, cfg.kmc_cycles, cfg.nranks);

  core::Simulation sim(cfg);
  const auto report = sim.run();
  const lat::BccGeometry geo(cfg.md.nx, cfg.md.ny, cfg.md.nz,
                             cfg.md.lattice_constant);

  std::printf("\n");
  density_map("after MD :", geo, report.clusters_after_md.size_histogram,
              report.clusters_after_md);
  density_map("after KMC:", geo, report.clusters_after_kmc.size_histogram,
              report.clusters_after_kmc);

  std::printf("\n  Cluster size histogram (size : count):\n");
  std::printf("    %-10s %-12s %-12s\n", "size", "after MD", "after KMC");
  std::int64_t max_size = std::max(report.clusters_after_md.size_histogram.max_key(),
                                   report.clusters_after_kmc.size_histogram.max_key());
  for (std::int64_t s = 1; s <= max_size; ++s) {
    const auto& md_bins = report.clusters_after_md.size_histogram.bins();
    const auto& kmc_bins = report.clusters_after_kmc.size_histogram.bins();
    const auto mdn = md_bins.count(s) ? md_bins.at(s) : 0;
    const auto kn = kmc_bins.count(s) ? kmc_bins.at(s) : 0;
    if (mdn == 0 && kn == 0) continue;
    std::printf("    %-10lld %-12llu %-12llu\n", static_cast<long long>(s),
                static_cast<unsigned long long>(mdn),
                static_cast<unsigned long long>(kn));
  }

  std::printf("\n  Temporal scale (paper §3 arithmetic):\n");
  bench::note("C_MC = %.3g, T = 600 K, t_threshold(MC) = %.3g s",
              report.vacancy_concentration, report.kmc_mc_time);
  bench::note("t_real = t_thr * C_MC / C_real = %.2f days", report.real_time_days);
  const double paper_t_real = kmc::real_time_scale(2.0e-4, 2.0e-6, 600.0) / 86400.0;
  bench::note("with the paper's t_thr = 2e-4 and C_MC = 2e-6: %.1f days "
              "(paper: 19.2 days)", paper_t_real);

  std::printf("\n  Shape check vs paper Fig. 17: dispersed vacancies after the\n"
              "  cascade; after KMC the clustered fraction and mean cluster\n"
              "  size increase — the vacancy cluster phenomenon.\n");
  const bool clustered = report.clusters_after_kmc.clustered_fraction >=
                         report.clusters_after_md.clustered_fraction;
  std::printf("  clustering increased: %s\n", clustered ? "yes" : "no");
  return 0;
}
