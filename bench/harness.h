#pragma once

// BenchHarness — the measurement discipline every bench binary shares:
// untimed warmup repeats, N timed repeats, robust statistics (median / MAD /
// min) with outlier flagging, and environment capture (git SHA, compiler,
// flags, build type, core count, UTC timestamp). Results land in a single
// schema-versioned BENCH_<name>.json (perf::BenchReport) that
// tools/mmd_perf_diff can compare across commits.
//
//   bench::BenchHarness h("micro_table_lookup");
//   h.time_per_op("compact_value_direct", [&] { phi.eval(r, &v, &d); });
//   h.add_value("dma_bytes_per_lookup", "bytes", bytes);
//   return h.write();   // prints the table, writes BENCH_micro_table_lookup.json
//
// Repeat counts can be overridden per run through MMD_BENCH_REPEATS /
// MMD_BENCH_WARMUP (the CI perf-smoke job trims them), never below 1/0.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "perf/bench_report.h"

namespace mmd::bench {

class BenchHarness {
 public:
  struct Options {
    int warmup = 2;              ///< untimed repeats before sampling
    int repeats = 9;             ///< timed repeats (odd keeps the median a sample)
    double min_sample_s = 0.02;  ///< auto-batch target per sample in time_per_op
  };

  /// `name` becomes the report/file name (BENCH_<name>.json). Options are
  /// adjusted by the MMD_BENCH_REPEATS / MMD_BENCH_WARMUP environment
  /// variables when set.
  explicit BenchHarness(std::string name) : BenchHarness(std::move(name), Options()) {}
  BenchHarness(std::string name, Options opt);

  const Options& options() const { return opt_; }

  /// Measure nanoseconds per call of `op`: the inner batch size is calibrated
  /// (doubling) until one sample takes >= min_sample_s, then warmup + repeats
  /// samples are taken. Metric unit is "ns/op".
  void time_per_op(const std::string& metric, const std::function<void()>& op);

  /// Measure milliseconds per call of `fn`, one call per sample (for
  /// coarse-grained work where the callee is the whole measured unit).
  void time_call_ms(const std::string& metric, const std::function<void()>& fn);

  /// Record externally measured samples (one per repeat) under `metric`.
  void add_samples(const std::string& metric, const std::string& unit,
                   std::vector<double> samples, bool lower_is_better = true);

  /// Record a deterministic quantity (byte counts, modeled times, ratios).
  void add_value(const std::string& metric, const std::string& unit, double value,
                 bool lower_is_better = true);

  perf::BenchReport& report() { return report_; }

  /// Finalize all metrics, print the summary table, write BENCH_<name>.json
  /// into `dir`. Returns a process exit code: 0 on success, 1 when the file
  /// cannot be written (the error names the path). Intended as the bench
  /// main()'s return value so write failures fail the run.
  [[nodiscard]] int write(const std::string& dir = ".");

 private:
  Options opt_;
  perf::BenchReport report_;
};

}  // namespace mmd::bench
