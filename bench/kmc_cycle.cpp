// BENCH_kmc_cycle — AKMC event throughput: the incremental event table
// (dirty-region rate rebuilds + O(log N) BKL selection) against the
// full-rescan oracle (kmc.incremental=off), same seed, same physics. The two
// modes execute bit-identical event sequences (tests pin this), so events/s
// is a pure bookkeeping comparison: per executed event the oracle re-scans
// every owned site and re-rates every in-sector candidate, while the
// incremental path re-rates only the blocks inside the invalidation shell of
// the two swapped sites.
//
// Config notes: 20^3 cells (16000 sites) at 2% vacancies gives ~40 vacancies
// (~320 candidate slots) per sector — large enough that the oracle's O(N)
// rescan dominates, small enough that a timed cycle stays in milliseconds.

#include <array>

#include "bench_common.h"
#include "harness.h"
#include "kmc/engine.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("BENCH_kmc_cycle",
               "AKMC cycle throughput, incremental event table vs full rescan");
  bench::BenchHarness h("kmc_cycle");

  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 20;
  cfg.table_segments = 500;
  // Hot + long sector windows: a high temperature compresses the exponential
  // rate spread (sum/max rate ~ candidate count) so each sector executes many
  // events per initial table build — the regime where bookkeeping dominates.
  cfg.temperature = 1500.0;
  cfg.dt_scale = 20.0;
  const kmc::KmcSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  struct Mode {
    const char* key;
    bool incremental;
  };
  constexpr std::array<Mode, 2> kModes = {
      {{"incremental", true}, {"rescan", false}}};

  const int warm = std::max(1, h.options().warmup);
  const int reps = h.options().repeats;

  std::array<double, 2> median_eps{};
  for (std::size_t m = 0; m < kModes.size(); ++m) {
    kmc::KmcConfig c = cfg;
    c.incremental = kModes[m].incremental;
    std::vector<double> events_per_s;
    std::vector<double> cycle_ms;
    events_per_s.reserve(static_cast<std::size_t>(reps));
    cycle_ms.reserve(static_cast<std::size_t>(reps));
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      kmc::KmcEngine engine(c, setup.geo, setup.dd, tables, comm.rank(),
                            kmc::GhostStrategy::OnDemandOneSided);
      engine.initialize_random(comm, 0.02);
      engine.run_cycles(comm, warm);
      for (int r = 0; r < reps; ++r) {
        util::Timer t;
        const std::uint64_t ev = engine.run_cycles(comm, 1);
        const double s = t.elapsed();
        events_per_s.push_back(static_cast<double>(ev) / s);
        cycle_ms.push_back(1e3 * s);
      }
    });
    const std::string key(kModes[m].key);
    h.add_samples(key + "_events_per_s", "events/s", events_per_s,
                  /*lower_is_better=*/false);
    h.add_samples(key + "_cycle_ms", "ms", cycle_ms);
    median_eps[m] = util::median(events_per_s);
    bench::note("%-11s median %.0f events/s, %.2f ms/cycle", kModes[m].key,
                median_eps[m], util::median(cycle_ms));
  }

  // The acceptance headline: incremental over rescan, same event sequence.
  h.add_value("speedup_x", "x", median_eps[0] / median_eps[1],
              /*lower_is_better=*/false);
  bench::note("incremental/rescan speedup: %.1fx", median_eps[0] / median_eps[1]);

  return h.write();
}
