// Fig. 15 — Weak scaling of KMC, 1e7 sites per master core, 1.6k -> 102.4k
// cores, C_v = 2e-6. Paper: computation flat, communication creeping up from
// the time-synchronization collectives; 74% efficiency at 102.4k cores.

#include "bench_common.h"
#include "kmc/engine.h"
#include "perf/scaling_model.h"
#include "util/timer.h"

using namespace mmd;

int main() {
  bench::title("Fig. 15", "KMC weak scaling (1e7 sites per core in the paper)");

  kmc::KmcConfig base_cfg;
  base_cfg.table_segments = 500;
  base_cfg.dt_scale = 2.0;
  const int per_rank_cells = 12;
  const double conc = 2e-6 * 500;  // scaled so the tiny box still hosts events
  const int cycles = 3;

  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(base_cfg.lattice_constant, base_cfg.cutoff),
      base_cfg.table_segments);

  std::printf("\n  Live weak-scaling measurement (%d^3 cells per rank):\n",
              per_rank_cells);
  std::printf("  %8s %14s %14s %14s %12s\n", "ranks", "cycle [ms]",
              "compute [ms]", "comm [ms]", "efficiency");
  double base_ms = 0.0;
  perf::StepProfile profile;
  for (const int nranks : {1, 2, 4, 8}) {
    kmc::KmcConfig cfg = base_cfg;
    cfg.nx = per_rank_cells * (nranks >= 2 ? 2 : 1);
    cfg.ny = per_rank_cells * (nranks >= 4 ? 2 : 1);
    cfg.nz = per_rank_cells * (nranks >= 8 ? 2 : 1);
    const kmc::KmcSetup setup(cfg, nranks);
    double cyc_ms = 0.0, comp_ms = 0.0, comm_ms = 0.0;
    std::uint64_t bytes = 0, msgs = 0;
    comm::World world(nranks);
    world.run([&](comm::Comm& comm) {
      kmc::KmcEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank(),
                            kmc::GhostStrategy::OnDemandOneSided);
      engine.initialize_random(comm, conc);
      util::Timer t;
      engine.run_cycles(comm, cycles);
      const double wall = comm.allreduce_max(t.elapsed());
      const double comp = comm.allreduce_max(engine.computation_seconds());
      const double cms = comm.allreduce_max(engine.communication_seconds());
      if (comm.rank() == 0) {
        cyc_ms = 1e3 * wall / cycles;
        comp_ms = 1e3 * comp / cycles;
        comm_ms = 1e3 * cms / cycles;
        bytes = engine.ghost_comm().traffic().bytes_sent / cycles;
        msgs = std::max<std::uint64_t>(
            1, engine.ghost_comm().traffic().messages_sent / cycles);
      }
    });
    if (nranks == 1) base_ms = cyc_ms;
    if (nranks == 8) {
      profile.compute_s = comp_ms / 1e3;
      profile.p2p_bytes = bytes;
      profile.p2p_msgs = msgs;
      profile.collectives = 9;  // dt allreduce + 8 sector fences per cycle
    }
    std::printf("  %8d %14.2f %14.2f %14.2f %11.1f%%\n", nranks, cyc_ms, comp_ms,
                comm_ms, 100.0 * base_ms / cyc_ms);
  }

  // Paper scale: 1e7 sites/core at C_v = 2e-6.
  const double sites_measured = 2.0 * per_rank_cells * per_rank_cells * per_rank_cells;
  perf::StepProfile paper = profile;
  paper.compute_s *= 1.0e7 / sites_measured;
  paper.p2p_bytes = static_cast<std::uint64_t>(
      static_cast<double>(paper.p2p_bytes) *
      std::pow(1.0e7 / sites_measured, 2.0 / 3.0));

  std::printf("\n  Projection to the paper's core counts (only master cores):\n");
  std::printf("  %10s %14s %14s %14s %12s %10s\n", "cores", "sites",
              "compute [s]", "comm [ms]", "efficiency", "paper");
  perf::ScalingModel model;
  const struct { std::uint64_t cores; double paper_eff; } rows[] = {
      {1600, 0.972}, {3200, 0.881}, {12800, 0.861},
      {25600, 0.852}, {51200, 0.799}, {102400, 0.74}};
  double m[std::size(rows)];
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    m[i] = model.network().p2p_time(paper.p2p_msgs, paper.p2p_bytes,
                                    rows[i].cores) +
           static_cast<double>(paper.collectives) *
               model.network().collective_time(rows[i].cores);
  }
  // Calibrate the per-core compute time to the paper's final 74% point; the
  // intermediate decay follows from our measured traffic + the collective
  // time-synchronization model.
  const double C = perf::ScalingModel::calibrate_weak_compute(
      m[0], m[std::size(rows) - 1], 0.74);
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto& row = rows[i];
    std::printf("  %10s %14.3g %14.4f %14.4f %11.1f%% %9.1f%%\n",
                bench::cores_str(row.cores).c_str(),
                1.0e7 * static_cast<double>(row.cores), C, 1e3 * m[i],
                100.0 * (C + m[0]) / (C + m[i]), 100.0 * row.paper_eff);
  }
  std::printf("\n  Shape check vs paper Fig. 15: compute constant; the growing\n"
              "  term is the collective time synchronization, pulling weak\n"
              "  efficiency from ~97%% down toward ~74%% at 102.4k cores.\n");
  return 0;
}
