// Damage accumulation under sustained irradiation: the application workflow
// the paper's coupled model exists for. Alternate cascade MD (new PKA each
// dose step) with KMC annealing of the surviving vacancies, and track the
// defect inventory and cluster population versus dose. Checkpointing
// demonstrates restartable long campaigns; an XYZ trajectory records the
// evolving vacancy field.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/defects.h"
#include "io/checkpoint.h"
#include "io/xyz.h"
#include "kmc/clusters.h"
#include "kmc/engine.h"
#include "md/engine.h"

using namespace mmd;

int main() {
  md::MdConfig md_cfg;
  md_cfg.nx = md_cfg.ny = md_cfg.nz = 10;
  md_cfg.temperature = 600.0;
  md_cfg.table_segments = 1000;

  kmc::KmcConfig kmc_cfg;
  kmc_cfg.nx = md_cfg.nx;
  kmc_cfg.ny = md_cfg.ny;
  kmc_cfg.nz = md_cfg.nz;
  kmc_cfg.temperature = md_cfg.temperature;
  kmc_cfg.table_segments = 500;
  kmc_cfg.dt_scale = 4.0;

  const int nranks = 2;
  const int dose_steps = 5;
  const double pka_energy = 90.0;

  const md::MdSetup md_setup(md_cfg, nranks);
  const kmc::KmcSetup kmc_setup(kmc_cfg, nranks);
  const auto md_tables = pot::EamTableSet::build(
      pot::EamModel::iron(md_cfg.lattice_constant, md_cfg.cutoff),
      md_cfg.table_segments);
  const auto kmc_tables = pot::EamTableSet::build(
      pot::EamModel::iron(kmc_cfg.lattice_constant, kmc_cfg.cutoff),
      kmc_cfg.table_segments);

  std::printf("# Damage accumulation: %d cascade+anneal dose steps, %d atoms\n",
              dose_steps, 2 * md_cfg.nx * md_cfg.ny * md_cfg.nz);
  std::printf("%6s %10s %10s %12s %12s %14s\n", "dose", "vacancies",
              "clusters", "mean size", "max size", "Frenkel <r> [A]");

  std::ofstream xyz("damage_accumulation.xyz");
  std::vector<std::int64_t> surviving;  // vacancy inventory carried over doses

  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    util::Rng pka_rng(1234);  // same stream on every rank
    for (int dose = 1; dose <= dose_steps; ++dose) {
      // --- cascade MD on a fresh crystal (the lattice relaxes between
      // doses; carried-over damage re-enters through the KMC inventory) ---
      md::MdEngine md_engine(md_cfg, md_setup.geo, md_setup.dd, md_tables,
                             comm.rank());
      md_engine.initialize(comm);
      const auto site = static_cast<std::int64_t>(pka_rng.uniform_index(
          static_cast<std::uint64_t>(md_setup.geo.num_sites())));
      md_engine.inject_pka(comm, site, pka_rng.unit_vector(), pka_energy);
      md_engine.run_for(comm, 0.06);
      const auto frenkel = analysis::analyze_defects_global(comm, md_engine.lattice());

      // --- merge the new vacancies into the surviving inventory ---
      std::vector<std::int64_t> fresh;
      for (const auto& v : md_engine.vacancies()) fresh.push_back(v.site_rank);

      // --- KMC anneal of the combined inventory ---
      kmc::KmcEngine kmc_engine(kmc_cfg, kmc_setup.geo, kmc_setup.dd, kmc_tables,
                                comm.rank(), kmc::GhostStrategy::OnDemandOneSided);
      std::vector<std::int64_t> seed = fresh;
      for (std::int64_t gid : surviving) {
        // set_state_global only affects images present on this rank.
        seed.push_back(gid);
      }
      kmc_engine.initialize_sites(comm, seed);
      kmc_engine.run_cycles(comm, 12);
      const auto after = kmc_engine.gather_vacancies(comm);

      // --- checkpoint the KMC state (restartable campaigns) ---
      std::ostringstream ckpt;
      io::Checkpoint::save_kmc(ckpt, kmc_engine.model(), kmc_engine.mc_time());

      if (comm.rank() == 0) {
        surviving = after;
        const auto stats = kmc::cluster_vacancies(kmc_setup.geo, after);
        std::printf("%6d %10llu %10llu %12.2f %12llu %14.2f\n", dose,
                    static_cast<unsigned long long>(stats.num_vacancies),
                    static_cast<unsigned long long>(stats.num_clusters),
                    stats.mean_size,
                    static_cast<unsigned long long>(stats.max_size),
                    frenkel.separation.count() > 0 ? frenkel.separation.mean()
                                                   : 0.0);
        // One XYZ frame of the vacancy field per dose.
        xyz << after.size() << "\n";
        xyz << "dose " << dose << " vacancies\n";
        for (std::int64_t gid : after) {
          const util::Vec3 r =
              kmc_setup.geo.position(kmc_setup.geo.site_coord(gid));
          xyz << "X " << r.x << ' ' << r.y << ' ' << r.z << '\n';
        }
      }
      // Broadcast the surviving inventory (held by rank 0 after the gather)
      // to all ranks for the next dose.
      surviving = comm.broadcast_from<std::int64_t>(0, surviving, 7000 + dose);
    }
  });

  std::printf("\nVacancy inventory grows with dose while KMC annealing keeps\n"
              "aggregating it into clusters — the microstructure evolution the\n"
              "paper's large-scale runs resolve at 3.2e10 atoms.\n"
              "Wrote damage_accumulation.xyz (one frame per dose step).\n");
  return 0;
}
