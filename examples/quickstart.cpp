// Quickstart: the whole coupled MD-KMC pipeline in ~20 lines of user code.
//
// A small BCC iron box is bombarded with two primary knock-on atoms; MD
// evolves the cascade, the resulting vacancies are handed to KMC, which
// evolves the damage at a much larger temporal scale. Finally the report
// (defect census, cluster statistics, temporal scale) is printed.
//
// Build & run:   ./examples/quickstart

#include <cstdio>

#include "core/simulation.h"

int main() {
  mmd::core::SimulationConfig cfg;
  cfg.md.nx = cfg.md.ny = cfg.md.nz = 10;   // 2000 atoms
  cfg.md.temperature = 600.0;               // K (the paper's conditions)
  cfg.md.table_segments = 2000;
  cfg.md_time_ps = 0.06;                    // 60 fs of cascade MD
  cfg.pka_count = 2;
  cfg.pka_energy_ev = 80.0;
  cfg.kmc_cycles = 30;
  cfg.nranks = 4;                           // 4 message-passing ranks

  std::printf("Running coupled MD-KMC damage simulation (%d^3 cells, %d ranks)...\n",
              cfg.md.nx, cfg.nranks);
  mmd::core::Simulation sim(cfg);
  const mmd::core::SimulationReport report = sim.run();
  std::printf("%s\n", mmd::core::to_string(report).c_str());

  // The headline qualitative result of the paper's Fig. 17: after KMC the
  // vacancies are more aggregated than right after the cascade.
  std::printf("\nClustered vacancy fraction: %.1f%% after MD -> %.1f%% after KMC\n",
              100.0 * report.clusters_after_md.clustered_fraction,
              100.0 * report.clusters_after_kmc.clustered_fraction);
  return 0;
}
