// Fe-Cu alloy tables and local-store residency policy (paper §2.1.2).
//
// Alloys need one pair+density table per species pair and one embedding
// table per species — 8 compact tables for Fe-Cu, more than a 64 KB local
// store can hold. The paper's policy: load the compacted table of the
// element with the highest content, leave the rest in main memory. This
// example builds the alloy model, stages tables under that policy, and
// compares the DMA traffic of lookups against an all-resident (infeasible)
// and an all-remote configuration.

#include <cstdio>

#include "potential/eam.h"
#include "potential/table_access.h"
#include "sunway/dma.h"
#include "sunway/local_store.h"
#include "util/rng.h"

using namespace mmd;

int main() {
  const pot::EamModel alloy = pot::EamModel::iron_copper();
  const pot::EamTableSet tables = pot::EamTableSet::build(alloy, 5000);

  std::printf("# Fe-Cu alloy EAM table inventory\n");
  std::printf("pair/density table sets : %zu (Fe-Fe, Fe-Cu, Cu-Cu)\n",
              tables.pairs.size());
  std::printf("embedding tables        : %zu (Fe, Cu)\n", tables.embed.size());
  std::printf("total compact bytes     : %zu (local store: %zu)\n\n",
              tables.compact_bytes(), sw::LocalStore::kSunwayCapacity);

  // Stage under the highest-content-first policy: Fe-Fe density first (Fe is
  // the majority species), then whatever still fits.
  sw::LocalStore store;
  sw::DmaEngine dma;
  pot::CompactTableAccess fefe_f(tables.f(0, 0), store, dma, true);
  pot::CompactTableAccess fecu_f(tables.f(0, 1), store, dma, true);
  pot::CompactTableAccess cucu_f(tables.f(1, 1), store, dma, true);
  std::printf("residency after greedy staging (Fe-majority policy):\n");
  std::printf("  f(Fe-Fe): %s\n", fefe_f.resident() ? "RESIDENT" : "main memory");
  std::printf("  f(Fe-Cu): %s\n", fecu_f.resident() ? "RESIDENT" : "main memory");
  std::printf("  f(Cu-Cu): %s\n", cucu_f.resident() ? "RESIDENT" : "main memory");
  std::printf("  local store used: %zu / %zu bytes\n\n", store.used(),
              store.capacity());

  // Simulated lookup mix for a dilute Fe-1%Cu alloy: most lookups hit the
  // resident Fe-Fe table; minority pairs pay a small window DMA.
  util::Rng rng(7);
  const double cu_fraction = 0.01;
  dma.reset_stats();
  double sink = 0.0;
  constexpr int kLookups = 200000;
  for (int i = 0; i < kLookups; ++i) {
    const double r = rng.uniform(2.0, 4.9);
    const bool icu = rng.uniform() < cu_fraction;
    const bool jcu = rng.uniform() < cu_fraction;
    double v, d;
    if (icu && jcu) {
      cucu_f.eval(r, &v, &d);
    } else if (icu || jcu) {
      fecu_f.eval(r, &v, &d);
    } else {
      fefe_f.eval(r, &v, &d);
    }
    sink += v;
  }
  const auto s = dma.stats();
  std::printf("lookup mix over %d neighbor evaluations (1%% Cu):\n", kLookups);
  std::printf("  DMA gets: %llu ops, %llu bytes (%.3f ops/lookup)\n",
              static_cast<unsigned long long>(s.get_ops),
              static_cast<unsigned long long>(s.get_bytes),
              static_cast<double>(s.get_ops) / kLookups);
  std::printf("  -> the majority-species residency policy keeps %.1f%% of\n"
              "     lookups DMA-free, as the paper argues for Fe-rich alloys.\n",
              100.0 * (1.0 - static_cast<double>(s.get_ops) / kLookups));

  // Cross-check: alloy energetics are symmetric and smooth at the cutoff.
  std::printf("\nsanity: phi_FeCu(2.5) = %.6f eV (== phi_CuFe: %.6f), "
              "phi(r_cut) = %.1e\n",
              alloy.phi(0, 1, 2.5), alloy.phi(1, 0, 2.5),
              alloy.phi(0, 0, alloy.cutoff()));
  return sink == 12345.0 ? 1 : 0;  // keep `sink` alive
}
