// Vacancy clustering with KMC: start from a random (dispersed) vacancy
// population — the state right after irradiation — and watch AKMC aggregate
// it into clusters, reproducing the qualitative content of the paper's
// Fig. 17 with quantitative cluster statistics and an ASCII density map.

#include <cstdio>
#include <vector>

#include "kmc/clusters.h"
#include "kmc/engine.h"

using namespace mmd;

namespace {

/// Coarse ASCII projection of vacancy density onto the x-y plane.
void print_density_map(const lat::BccGeometry& geo,
                       const std::vector<std::int64_t>& vacancies) {
  constexpr int W = 32, H = 16;
  int grid[H][W] = {};
  for (const std::int64_t gid : vacancies) {
    const lat::SiteCoord c = geo.site_coord(gid);
    const int gx = c.x * W / geo.nx();
    const int gy = c.y * H / geo.ny();
    ++grid[gy][gx];
  }
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      const char* shade = " .:*#@";
      std::printf("%c", shade[std::min(grid[y][x], 5)]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 16;
  cfg.table_segments = 1000;
  cfg.dt_scale = 4.0;
  const double concentration = 0.01;
  const int nranks = 4;

  const kmc::KmcSetup setup(cfg, nranks);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  std::printf("# KMC vacancy clustering, %lld sites, C_v = %.3f, %d ranks\n",
              static_cast<long long>(setup.geo.num_sites()), concentration,
              nranks);
  std::printf("%8s %10s %10s %10s %10s %12s\n", "cycles", "events", "clusters",
              "mean", "max", "clustered%");

  std::vector<std::int64_t> final_vacs;
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    kmc::KmcEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank(),
                          kmc::GhostStrategy::OnDemandOneSided);
    engine.initialize_random(comm, concentration);
    for (int checkpoint = 0; checkpoint <= 5; ++checkpoint) {
      if (checkpoint > 0) engine.run_cycles(comm, 8);
      const auto vacs = engine.gather_vacancies(comm);
      const auto events = comm.allreduce_sum_u64(engine.stats().events);
      if (comm.rank() == 0) {
        const auto s = kmc::cluster_vacancies(setup.geo, vacs);
        std::printf("%8llu %10llu %10llu %10.2f %10llu %11.1f%%\n",
                    static_cast<unsigned long long>(engine.stats().cycles),
                    static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(s.num_clusters), s.mean_size,
                    static_cast<unsigned long long>(s.max_size),
                    100.0 * s.clustered_fraction);
        if (checkpoint == 5) final_vacs = vacs;
      }
    }
  });

  std::printf("\nFinal vacancy density (x-y projection):\n");
  print_density_map(setup.geo, final_vacs);
  std::printf("\nMean cluster size grows as vacancies aggregate — the vacancy\n"
              "cluster phenomenon the paper's simulation reveals.\n");
  return 0;
}
