// Cascade damage study: sweep the primary-knock-on-atom (PKA) energy and
// measure how many Frenkel pairs (vacancy + interstitial) each cascade
// leaves behind, exercising the MD engine, the run-away linked lists, and
// the defect census directly through the public API.
//
// This is the workload of the paper's MD stage ("MD simulates the defect
// generation caused by cascade collision").

#include <cstdio>
#include <vector>

#include "analysis/defects.h"
#include "analysis/thermal.h"
#include "md/engine.h"

using namespace mmd;

int main() {
  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 10;
  cfg.temperature = 300.0;
  cfg.table_segments = 2000;
  const int nranks = 2;
  const double duration_ps = 0.08;

  const md::MdSetup setup(cfg, nranks);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  std::printf("# Cascade damage vs PKA energy (%d^3 cells, %d atoms, %d ranks)\n",
              cfg.nx, static_cast<int>(setup.geo.num_sites()), nranks);
  std::printf("%12s %12s %14s %14s %14s %14s\n", "PKA [eV]", "vacancies",
              "interstitials", "Frenkel <r>", "SIA clusters", "peak T [K]");

  for (const double energy : {20.0, 40.0, 80.0, 160.0, 320.0}) {
    md::DefectSummary defects;
    double frenkel_mean = 0.0, peak_t = 0.0;
    std::uint64_t sia_clusters = 0;
    comm::World world(nranks);
    world.run([&](comm::Comm& comm) {
      md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
      engine.initialize(comm);
      const lat::SiteCoord pka{5, 5, 5, 0};
      engine.inject_pka(comm, setup.geo.site_id(pka), {1.0, 0.6, 0.3}, energy);
      // Sample the thermal spike in the early ballistic phase...
      engine.run_for(comm, 0.004);
      const auto spike = analysis::thermal_profile(
          engine.lattice(), cfg, setup.geo.position(pka), 12.0, 5);
      const double core_t = comm.allreduce_max(spike.core_temperature());
      // ...then let the cascade run to completion.
      engine.run_for(comm, duration_ps - 0.004);
      const auto d = engine.defects(comm);
      const auto pairs = analysis::analyze_defects_global(comm, engine.lattice());
      const auto sia = analysis::cluster_interstitials(engine.lattice());
      const auto sia_n = comm.allreduce_sum_u64(sia.num_clusters);
      if (comm.rank() == 0) {
        defects = d;
        frenkel_mean = pairs.separation.count() ? pairs.separation.mean() : 0.0;
        sia_clusters = sia_n;
        peak_t = core_t;
      }
    });
    std::printf("%12.0f %12llu %14llu %14.2f %14llu %14.0f\n", energy,
                static_cast<unsigned long long>(defects.vacancies),
                static_cast<unsigned long long>(defects.interstitials),
                frenkel_mean, static_cast<unsigned long long>(sia_clusters),
                peak_t);
  }
  std::printf("\nHigher PKA energy -> more displaced atoms, as in collision\n"
              "cascade physics; each vacancy row is matched by interstitials\n"
              "stored in the lattice neighbor list's run-away chains.\n");
  return 0;
}
