// Vacancy diffusion with KMC: track vacancy trajectories across the MC
// clock, estimate the diffusion coefficient from the mean-square
// displacement, and sweep temperature to expose the Arrhenius behaviour
// D ~ exp(-E_m / kB T) that the transition-rate model (paper Eq. 4) implies.

#include <cmath>
#include <cstdio>
#include <mutex>

#include "analysis/diffusion.h"
#include "kmc/engine.h"
#include "util/units.h"

using namespace mmd;

namespace {

struct Point {
  double temperature = 0.0;
  double d_coeff = 0.0;       ///< [A^2/s]
  std::uint64_t hops = 0;
  double mc_time = 0.0;
};

Point run_at(double temperature) {
  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 12;
  cfg.temperature = temperature;
  cfg.table_segments = 500;
  cfg.dt_scale = 4.0;
  const int nranks = 2;
  const kmc::KmcSetup setup(cfg, nranks);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);

  Point p;
  p.temperature = temperature;
  analysis::VacancyTracker tracker(setup.geo);
  std::mutex m;
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    kmc::KmcEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank(),
                          kmc::GhostStrategy::OnDemandOneSided);
    engine.initialize_random(comm, 0.003);
    for (int c = 0; c < 24; ++c) {
      engine.run_cycles(comm, 1);
      const auto vacs = engine.gather_vacancies(comm);
      if (comm.rank() == 0) {
        std::lock_guard lk(m);
        tracker.record(engine.mc_time(), vacs);
      }
    }
    if (comm.rank() == 0) {
      std::lock_guard lk(m);
      p.d_coeff = tracker.diffusion_coefficient();
      p.hops = tracker.hops();
      p.mc_time = engine.mc_time();
    }
  });
  return p;
}

}  // namespace

int main() {
  std::printf("# Vacancy diffusion vs temperature (KMC + MSD tracking)\n");
  std::printf("%8s %16s %10s %14s %16s\n", "T [K]", "D [A^2/s]", "hops",
              "MC time [s]", "kB*T ln-slope");

  double prev_d = 0.0, prev_inv_t = 0.0;
  for (const double t : {500.0, 600.0, 700.0, 800.0}) {
    const Point p = run_at(t);
    double slope = 0.0;
    const double inv_t = 1.0 / t;
    if (prev_d > 0.0 && p.d_coeff > 0.0) {
      // Arrhenius: ln D = ln D0 - (E_m / kB) * (1/T); the slope between
      // consecutive temperatures estimates -E_m / kB.
      slope = (std::log(p.d_coeff) - std::log(prev_d)) / (inv_t - prev_inv_t);
    }
    std::printf("%8.0f %16.4g %10llu %14.3g %16.4g\n", t, p.d_coeff,
                static_cast<unsigned long long>(p.hops), p.mc_time,
                slope == 0.0 ? 0.0 : -slope * util::units::kBoltzmann);
    prev_d = p.d_coeff;
    prev_inv_t = inv_t;
  }
  std::printf("\nThe ln-slope column estimates the migration barrier E_m; the\n"
              "KMC rate model uses E_m0 = %.2f eV, so values in that vicinity\n"
              "confirm the Arrhenius kinetics of the vacancy random walk.\n",
              util::iron::kVacancyMigrationBarrier);
  return 0;
}
