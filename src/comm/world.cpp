#include "comm/world.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "telemetry/comm_recorder.h"
#include "telemetry/session.h"

namespace mmd::comm {

namespace {

bool matches(const Message& m, int src, int tag) {
  return (src == kAnySource || m.src == src) && (tag == kAnyTag || m.tag == tag);
}

/// Fold this run's traffic delta into the telemetry registry (the registry is
/// the durable home for comm accounting; RankTraffic stays the in-run,
/// zero-overhead tally).
void fold_traffic(telemetry::Session& session, int rank, const RankTraffic& before,
                  const RankTraffic& after) {
  auto& m = session.metrics();
  m.add(rank, "comm.p2p.msgs", after.p2p_msgs_sent - before.p2p_msgs_sent);
  m.add(rank, "comm.p2p.bytes", after.p2p_bytes_sent - before.p2p_bytes_sent);
  m.add(rank, "comm.onesided.puts", after.onesided_puts - before.onesided_puts);
  m.add(rank, "comm.onesided.bytes", after.onesided_bytes - before.onesided_bytes);
  m.add(rank, "comm.collectives", after.collectives - before.collectives);
  m.add(rank, "comm.wait.ns", after.wait_ns - before.wait_ns);
}

/// Monotonic nanoseconds for wait-time accounting.
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

World::World(int nranks) : size_(nranks), traffic_(static_cast<std::size_t>(nranks)) {
  if (nranks <= 0) throw std::invalid_argument("World requires at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  // Rank threads inherit the SUBMITTING thread's current session, not the
  // process-global one: when several campaign jobs run concurrently, each
  // job's world records into that job's thread-scoped session instead of
  // racing on the shared slots of whichever session installed first.
  telemetry::Session* session = telemetry::Session::current();
  telemetry::CommRecorder* recorder =
      session != nullptr ? session->comm_recorder() : nullptr;
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      telemetry::Session::ThreadScope telemetry_scope(session);
      const RankTraffic before = traffic_[static_cast<std::size_t>(r)];
      if (session != nullptr) session->tracer().attach_calling_thread(r);
      Comm comm(*this, r);
      comm.rec_ = recorder;
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      if (session != nullptr) {
        fold_traffic(*session, r, before, traffic_[static_cast<std::size_t>(r)]);
        if (recorder != nullptr && r < recorder->nranks()) {
          session->metrics().set_gauge(
              r, "telemetry.trace.dropped",
              static_cast<double>(recorder->rank_log(r).dropped()));
        }
        telemetry::Tracer::detach_calling_thread();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

RankTraffic World::total_traffic() const {
  RankTraffic total;
  for (const auto& t : traffic_) total += t;
  return total;
}

void World::reset_traffic() {
  for (auto& t : traffic_) t = RankTraffic{};
}

void World::deliver(int dst, Message msg) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lk(box.m);
    // Posted receives match before the queue, in post order, so a message an
    // irecv already owns is never observed by probe or a blocking recv.
    for (auto it = box.pending.begin(); it != box.pending.end(); ++it) {
      RequestState& rs = **it;
      if (!rs.done && matches(msg, rs.src, rs.tag)) {
        rs.msg = std::move(msg);
        rs.done = true;
        box.pending.erase(it);
        box.cv.notify_all();
        return;
      }
    }
    box.q.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Message World::receive(int me, int src, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::unique_lock lk(box.m);
  for (;;) {
    auto it = std::find_if(box.q.begin(), box.q.end(),
                           [&](const Message& m) { return matches(m, src, tag); });
    if (it != box.q.end()) {
      Message out = std::move(*it);
      box.q.erase(it);
      return out;
    }
    box.cv.wait(lk);
  }
}

ProbeInfo World::probe_blocking(int me, int src, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::unique_lock lk(box.m);
  for (;;) {
    auto it = std::find_if(box.q.begin(), box.q.end(),
                           [&](const Message& m) { return matches(m, src, tag); });
    if (it != box.q.end()) return {it->src, it->tag, it->payload.size()};
    box.cv.wait(lk);
  }
}

std::optional<ProbeInfo> World::probe_nonblocking(int me, int src, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::lock_guard lk(box.m);
  auto it = std::find_if(box.q.begin(), box.q.end(),
                         [&](const Message& m) { return matches(m, src, tag); });
  if (it == box.q.end()) return std::nullopt;
  return ProbeInfo{it->src, it->tag, it->payload.size()};
}

Request World::post_irecv(int me, int src, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(me)];
  auto state = std::make_shared<RequestState>();
  state->src = src;
  state->tag = tag;
  std::lock_guard lk(box.m);
  // A message already queued before the post satisfies the receive at once
  // (earliest match wins, same as blocking recv).
  auto it = std::find_if(box.q.begin(), box.q.end(),
                         [&](const Message& m) { return matches(m, src, tag); });
  if (it != box.q.end()) {
    state->msg = std::move(*it);
    box.q.erase(it);
    state->done = true;
  } else {
    box.pending.push_back(state);
  }
  return Request(std::move(state));
}

Message World::request_wait(int me, Request& r) {
  auto& box = *mailboxes_[static_cast<std::size_t>(me)];
  RequestState& rs = *r.state_;
  {
    std::unique_lock lk(box.m);
    box.cv.wait(lk, [&] { return rs.done; });
    rs.consumed = true;
  }
  // Safe without the lock: once done && consumed, no other thread touches rs.
  Message out = std::move(rs.msg);
  r.state_.reset();
  return out;
}

bool World::request_test(int me, const Request& r) {
  auto& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::lock_guard lk(box.m);
  return r.state_->done;
}

std::size_t World::request_wait_any(int me, std::span<Request> rs) {
  auto& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::unique_lock lk(box.m);
  for (;;) {
    for (std::size_t i = 0; i < rs.size(); ++i) {
      const auto& st = rs[i].state_;
      if (st && st->done && !st->consumed) {
        st->consumed = true;
        return i;
      }
    }
    box.cv.wait(lk);
  }
}

Message Request::take_message() {
  // Valid only after wait_any marked this request consumed under the mailbox
  // lock; from then on the state is exclusively the caller's.
  Message out = std::move(state_->msg);
  state_.reset();
  return out;
}

// Generation-counted rendezvous: the first arrival of a generation runs
// `init`, every arrival runs `combine`, the last arrival publishes and bumps
// the generation; everyone returns `extract` under the same lock, so no rank
// can start the next collective before all ranks have read this one.
template <typename Init, typename Combine, typename Extract>
auto World::rendezvous(Init init, Combine combine, Extract extract) {
  std::unique_lock lk(rv_.m);
  if (rv_.arrived == 0) init(rv_);
  combine(rv_);
  ++rv_.arrived;
  const std::uint64_t gen = rv_.generation;
  if (rv_.arrived == size_) {
    rv_.result_d = rv_.acc_d;
    rv_.result_u = rv_.acc_u;
    rv_.arrived = 0;
    ++rv_.generation;
    rv_.cv.notify_all();
  } else {
    rv_.cv.wait(lk, [&] { return rv_.generation != gen; });
  }
  return extract(rv_);
}

void World::barrier() {
  rendezvous([](Rendezvous&) {}, [](Rendezvous&) {},
             [](Rendezvous&) { return 0; });
}

double World::allreduce_sum(double x) {
  return rendezvous([](Rendezvous& r) { r.acc_d = 0.0; },
                    [x](Rendezvous& r) { r.acc_d += x; },
                    [](Rendezvous& r) { return r.result_d; });
}

double World::allreduce_max(double x) {
  return rendezvous([x](Rendezvous& r) { r.acc_d = x; },
                    [x](Rendezvous& r) { r.acc_d = std::max(r.acc_d, x); },
                    [](Rendezvous& r) { return r.result_d; });
}

std::uint64_t World::allreduce_sum_u64(std::uint64_t x) {
  return rendezvous([](Rendezvous& r) { r.acc_u = 0; },
                    [x](Rendezvous& r) { r.acc_u += x; },
                    [](Rendezvous& r) { return r.result_u; });
}

std::uint64_t World::allreduce_max_u64(std::uint64_t x) {
  return rendezvous([x](Rendezvous& r) { r.acc_u = x; },
                    [x](Rendezvous& r) { r.acc_u = std::max(r.acc_u, x); },
                    [](Rendezvous& r) { return r.result_u; });
}

std::shared_ptr<PutWindow> World::create_window() {
  return rendezvous(
      [this](Rendezvous& r) { r.window = std::make_shared<PutWindow>(size_); },
      [](Rendezvous&) {},
      [](Rendezvous& r) { return r.window; });
}

void Comm::send_bytes(int dst, int tag, std::span<const std::byte> data) {
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.payload.assign(data.begin(), data.end());
  auto& t = my_traffic();
  ++t.p2p_msgs_sent;
  t.p2p_bytes_sent += data.size();
  if (rec_ != nullptr) {
    telemetry::CommEvent ev;
    ev.t0_ns = rec_->now_ns();
    ev.bytes = data.size();
    ev.peer = dst;
    ev.tag = tag;
    ev.op = telemetry::CommOp::kSend;
    world_->deliver(dst, std::move(m));
    ev.t1_ns = rec_->now_ns();
    rec_->record(rank_, ev);
  } else {
    world_->deliver(dst, std::move(m));
  }
}

Request Comm::isend_bytes(int dst, int tag, std::span<const std::byte> data) {
  send_bytes(dst, tag, data);
  auto state = std::make_shared<RequestState>();
  state->done = true;     // buffered: delivery already happened
  state->is_send = true;  // wait paths must not record it as a receive
  return Request(std::move(state));
}

Request Comm::irecv(int src, int tag) {
  Request r = world_->post_irecv(rank_, src, tag);
  if (rec_ != nullptr) {
    telemetry::CommEvent ev;
    ev.t0_ns = rec_->now_ns();
    ev.t1_ns = ev.t0_ns;
    ev.peer = src;
    ev.tag = tag;
    ev.op = telemetry::CommOp::kIrecvPost;
    rec_->record(rank_, ev);
  }
  return r;
}

Message Comm::wait(Request& r) {
  const bool record = rec_ != nullptr && r.state_ != nullptr && !r.state_->is_send;
  const std::uint64_t r0 = record ? rec_->now_ns() : 0;
  const std::uint64_t t0 = now_ns();
  Message m = world_->request_wait(rank_, r);
  my_traffic().wait_ns += now_ns() - t0;
  if (record) {
    telemetry::CommEvent ev;
    ev.t0_ns = r0;
    ev.t1_ns = rec_->now_ns();
    ev.bytes = m.payload.size();
    ev.peer = m.src;
    ev.tag = m.tag;
    ev.op = telemetry::CommOp::kWait;
    rec_->record(rank_, ev);
  }
  return m;
}

bool Comm::test(const Request& r) { return world_->request_test(rank_, r); }

std::vector<Message> Comm::wait_all(std::span<Request> rs) {
  const std::uint64_t t0 = now_ns();
  std::vector<Message> out;
  out.reserve(rs.size());
  for (Request& r : rs) {
    const bool record =
        rec_ != nullptr && r.state_ != nullptr && !r.state_->is_send;
    const std::uint64_t r0 = record ? rec_->now_ns() : 0;
    out.push_back(world_->request_wait(rank_, r));
    if (record) {
      const Message& m = out.back();
      telemetry::CommEvent ev;
      ev.t0_ns = r0;
      ev.t1_ns = rec_->now_ns();
      ev.bytes = m.payload.size();
      ev.peer = m.src;
      ev.tag = m.tag;
      ev.op = telemetry::CommOp::kWait;
      rec_->record(rank_, ev);
    }
  }
  my_traffic().wait_ns += now_ns() - t0;
  return out;
}

std::size_t Comm::wait_any(std::span<Request> rs) {
  const std::uint64_t r0 = rec_ != nullptr ? rec_->now_ns() : 0;
  const std::uint64_t t0 = now_ns();
  const std::size_t i = world_->request_wait_any(rank_, rs);
  my_traffic().wait_ns += now_ns() - t0;
  // Once wait_any marked the request consumed, its state is exclusively ours
  // to read until the caller's take_message().
  const RequestState& st = *rs[i].state_;
  if (rec_ != nullptr && !st.is_send) {
    telemetry::CommEvent ev;
    ev.t0_ns = r0;
    ev.t1_ns = rec_->now_ns();
    ev.bytes = st.msg.payload.size();
    ev.peer = st.msg.src;
    ev.tag = st.msg.tag;
    ev.op = telemetry::CommOp::kWait;
    rec_->record(rank_, ev);
  }
  return i;
}

Message Comm::recv(int src, int tag) {
  if (rec_ == nullptr) return world_->receive(rank_, src, tag);
  telemetry::CommEvent ev;
  ev.t0_ns = rec_->now_ns();
  Message m = world_->receive(rank_, src, tag);
  ev.t1_ns = rec_->now_ns();
  ev.bytes = m.payload.size();
  ev.peer = m.src;
  ev.tag = m.tag;
  ev.op = telemetry::CommOp::kRecv;
  rec_->record(rank_, ev);
  return m;
}

ProbeInfo Comm::probe(int src, int tag) {
  return world_->probe_blocking(rank_, src, tag);
}

std::optional<ProbeInfo> Comm::iprobe(int src, int tag) {
  return world_->probe_nonblocking(rank_, src, tag);
}

namespace {

/// Wrap one collective call with flight-recorder accounting. `bytes` is the
/// reduced payload per rank (8 for the scalar allreduces, 0 for barriers).
template <typename Fn>
auto record_collective(telemetry::CommRecorder* rec, int rank,
                       std::uint64_t bytes, Fn&& fn) {
  if (rec == nullptr) return fn();
  telemetry::CommEvent ev;
  ev.t0_ns = rec->now_ns();
  auto out = fn();
  ev.t1_ns = rec->now_ns();
  ev.bytes = bytes;
  ev.op = telemetry::CommOp::kCollective;
  rec->record(rank, ev);
  return out;
}

}  // namespace

void Comm::barrier() {
  ++my_traffic().collectives;
  record_collective(rec_, rank_, 0, [&] {
    world_->barrier();
    return 0;
  });
}

double Comm::allreduce_sum(double x) {
  ++my_traffic().collectives;
  return record_collective(rec_, rank_, sizeof(double),
                           [&] { return world_->allreduce_sum(x); });
}

double Comm::allreduce_max(double x) {
  ++my_traffic().collectives;
  return record_collective(rec_, rank_, sizeof(double),
                           [&] { return world_->allreduce_max(x); });
}

std::uint64_t Comm::allreduce_sum_u64(std::uint64_t x) {
  ++my_traffic().collectives;
  return record_collective(rec_, rank_, sizeof(std::uint64_t),
                           [&] { return world_->allreduce_sum_u64(x); });
}

std::uint64_t Comm::allreduce_max_u64(std::uint64_t x) {
  ++my_traffic().collectives;
  return record_collective(rec_, rank_, sizeof(std::uint64_t),
                           [&] { return world_->allreduce_max_u64(x); });
}

std::shared_ptr<PutWindow> Comm::create_window() {
  ++my_traffic().collectives;
  return record_collective(rec_, rank_, 0,
                           [&] { return world_->create_window(); });
}

void Comm::note_put(int target, std::size_t bytes) {
  auto& t = my_traffic();
  ++t.onesided_puts;
  t.onesided_bytes += bytes;
  if (rec_ != nullptr) {
    telemetry::CommEvent ev;
    ev.t0_ns = rec_->now_ns();
    ev.t1_ns = ev.t0_ns;
    ev.bytes = bytes;
    ev.peer = target;
    ev.op = telemetry::CommOp::kPut;
    rec_->record(rank_, ev);
  }
}

}  // namespace mmd::comm
