#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace mmd::comm {

/// Wildcard constants mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Central message-tag registry. Every subsystem draws its tags from a named
/// block below, so two layers can never collide on the same (peer, tag)
/// channel — previously the bases were magic numbers scattered over
/// `world.h`, `ghost_exchange.cpp`, and `kmc/comm_strategy.cpp`.
///
/// Blocks are sized generously; helpers derive the per-channel tag inside a
/// block (axis/side for the lattice halo, sector for KMC). Tests and benches
/// use ad-hoc small tags (< 100), which is fine as long as they do not run
/// concurrently with subsystem exchanges on the same World.
namespace tags {

// --- comm-internal collectives (world.h) ---
inline constexpr int kGather = 9990;     ///< default gather_to channel
inline constexpr int kBroadcast = 9991;  ///< default broadcast_from channel

// --- lattice ghost exchange (blocks of 8: base + axis*2 + side) ---
inline constexpr int kGhostHalo = 100;          ///< forward exchange, aggregated
inline constexpr int kGhostRho = 110;           ///< rho-only refresh, aggregated
inline constexpr int kGhostReverseRho = 120;    ///< reverse rho accumulation
inline constexpr int kGhostReverseForce = 130;  ///< reverse force accumulation

/// Channel of one (axis, side) within a lattice ghost-exchange block.
inline constexpr int axis_side(int base, int axis, int side) {
  return base + axis * 2 + side;
}

// --- KMC sector exchange (blocks of 16: base + sector; sector 8 = full halo) ---
inline constexpr int kKmcGet = 1000;       ///< traditional GET shells
inline constexpr int kKmcPut = 1016;       ///< traditional PUT-back shells
inline constexpr int kKmcOnDemand = 1032;  ///< on-demand two-sided updates

/// Channel of one KMC sector within a block (sector in [0, 8]; 8 = full halo).
inline constexpr int sector(int base, int s) { return base + s; }

// --- application drivers (kmc::engine, core::simulation gathers) ---
inline constexpr int kKmcVacancyGather = 9000;
inline constexpr int kSimVacancyGather = 9010;

}  // namespace tags

/// A point-to-point message in flight.
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Result of a probe: who sent what, and how big it is — the information an
/// on-demand receiver must discover at runtime (paper §2.2.1: "the receiver
/// has to use MPI_Probe to query the information beforehand").
struct ProbeInfo {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

/// Serialize a trivially-copyable span into a byte vector.
template <typename T>
std::vector<std::byte> pack(std::span<const T> items) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(items.size_bytes());
  if (!items.empty()) std::memcpy(out.data(), items.data(), items.size_bytes());
  return out;
}

/// Deserialize a byte vector produced by pack<T>.
template <typename T>
std::vector<T> unpack(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), out.size() * sizeof(T));
  return out;
}

/// Builder for a multi-section payload: each section is a u64 byte count
/// followed by the raw bytes of a trivially-copyable span. Aggregating the
/// logically separate arrays of one exchange step (halo entries + run-away
/// chains + emigrants, or rho values + chain rho) into ONE message per peer
/// replaces several small sends with a single large one — the per-message
/// latency amortization behind the NeighborhoodExchange refactor.
class SectionWriter {
 public:
  template <typename T>
  void add(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = items.size_bytes();
    const auto* hdr = reinterpret_cast<const std::byte*>(&n);
    buf_.insert(buf_.end(), hdr, hdr + sizeof n);
    if (n != 0) {
      const auto* data = reinterpret_cast<const std::byte*>(items.data());
      buf_.insert(buf_.end(), data, data + n);
    }
  }

  std::span<const std::byte> bytes() const { return buf_; }
  bool empty() const { return buf_.empty(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::byte> buf_;
};

/// Reader for a SectionWriter payload; sender and receiver agree on the
/// section order. Throws on truncated or misaligned sections.
class SectionReader {
 public:
  explicit SectionReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  std::vector<T> take() {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = 0;
    if (pos_ + sizeof n > bytes_.size()) {
      throw std::runtime_error("SectionReader: truncated section header");
    }
    std::memcpy(&n, bytes_.data() + pos_, sizeof n);
    pos_ += sizeof n;
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("SectionReader: truncated section payload");
    }
    if (n % sizeof(T) != 0) {
      throw std::runtime_error("SectionReader: section size misaligned");
    }
    std::vector<T> out(n / sizeof(T));
    if (n != 0) std::memcpy(out.data(), bytes_.data() + pos_, n);
    pos_ += n;
    return out;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace mmd::comm
