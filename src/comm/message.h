#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace mmd::comm {

/// Wildcard constants mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A point-to-point message in flight.
struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Result of a probe: who sent what, and how big it is — the information an
/// on-demand receiver must discover at runtime (paper §2.2.1: "the receiver
/// has to use MPI_Probe to query the information beforehand").
struct ProbeInfo {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

/// Serialize a trivially-copyable span into a byte vector.
template <typename T>
std::vector<std::byte> pack(std::span<const T> items) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(items.size_bytes());
  if (!items.empty()) std::memcpy(out.data(), items.data(), items.size_bytes());
  return out;
}

/// Deserialize a byte vector produced by pack<T>.
template <typename T>
std::vector<T> unpack(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), out.size() * sizeof(T));
  return out;
}

}  // namespace mmd::comm
