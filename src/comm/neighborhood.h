#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "comm/world.h"

namespace mmd::comm {

/// One round of a static neighborhood exchange: the paper's §2.1.1 reusable
/// communication pattern, made nonblocking. The consumer
///
///   1. `expect()`s every inbound (peer, tag) channel — each posts its
///      receive immediately, so all receives are outstanding before any
///      send flows (the MPI ordering that avoids unexpected-message copies),
///   2. `send()`s one aggregated buffer per outbound channel, and
///   3. `complete()`s, which hands each inbound message to the callback in
///      ARRIVAL order — out-of-order completion, so a slow neighbor never
///      serializes the fast ones.
///
/// Consumers whose reduction order matters (emigrant adoption, overlapping
/// reverse-accumulate slabs) stage per-channel results inside the callback
/// and apply them in fixed channel order afterwards; unpacking into disjoint
/// regions may be done directly in the callback.
///
/// The object is a one-shot round: after complete() it is empty and may be
/// reused for the next round.
class NeighborhoodExchange {
 public:
  explicit NeighborhoodExchange(Comm& comm) : comm_(&comm) {}

  /// Declare an inbound channel and post its receive now. Returns the
  /// channel index passed to the complete() callback for this message.
  std::size_t expect(int peer, int tag) {
    recvs_.push_back(comm_->irecv(peer, tag));
    return recvs_.size() - 1;
  }

  /// Nonblocking aggregated send on an outbound channel.
  void send(int peer, int tag, std::span<const std::byte> payload) {
    sends_.push_back(comm_->isend_bytes(peer, tag, payload));
  }

  std::size_t expected() const { return recvs_.size(); }

  /// Complete the round: invoke f(channel_index, Message&&) for every
  /// expected message as it arrives, then retire the (already-buffered)
  /// sends. Every posted receive is always drained — see Request's contract.
  template <typename F>
  void complete(F&& f) {
    for (std::size_t remaining = recvs_.size(); remaining != 0; --remaining) {
      const std::size_t i = comm_->wait_any(recvs_);
      f(i, recvs_[i].take_message());
    }
    comm_->wait_all(sends_);
    recvs_.clear();
    sends_.clear();
  }

 private:
  Comm* comm_;
  std::vector<Request> recvs_;
  std::vector<Request> sends_;
};

}  // namespace mmd::comm
