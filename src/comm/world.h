#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "comm/message.h"

namespace mmd::telemetry {
class CommRecorder;
}  // namespace mmd::telemetry

namespace mmd::comm {

class Comm;
class World;

/// Per-rank traffic accounting. Only the owning rank's thread writes its own
/// entry, so no atomics are needed; aggregation happens after `run()` or at
/// collective boundaries.
struct RankTraffic {
  std::uint64_t p2p_msgs_sent = 0;
  std::uint64_t p2p_bytes_sent = 0;
  std::uint64_t onesided_puts = 0;
  std::uint64_t onesided_bytes = 0;
  std::uint64_t collectives = 0;
  std::uint64_t wait_ns = 0;  ///< time blocked in wait/wait_all/wait_any

  RankTraffic& operator+=(const RankTraffic& o) {
    p2p_msgs_sent += o.p2p_msgs_sent;
    p2p_bytes_sent += o.p2p_bytes_sent;
    onesided_puts += o.onesided_puts;
    onesided_bytes += o.onesided_bytes;
    collectives += o.collectives;
    wait_ns += o.wait_ns;
    return *this;
  }

  std::uint64_t total_bytes() const { return p2p_bytes_sent + onesided_bytes; }
  std::uint64_t total_msgs() const { return p2p_msgs_sent + onesided_puts; }
};

/// Shared state of one outstanding nonblocking operation. All fields are
/// guarded by the owning rank's mailbox mutex; completion is broadcast on
/// that mailbox's condition variable (the single-mutex design keeps wait /
/// deliver race-free without per-request synchronization).
struct RequestState {
  int src = kAnySource;   ///< match filter (receives only)
  int tag = kAnyTag;      ///< match filter (receives only)
  bool done = false;      ///< message arrived, or send was buffered
  bool consumed = false;  ///< result already handed to the caller
  bool is_send = false;   ///< born-complete send; wait paths skip recording
  Message msg;            ///< the matched message (receives only)
};

/// Handle to a nonblocking operation, in the shape of an MPI_Request.
///
/// Semantics: `isend` is buffered (like the blocking `send`) so its request
/// is born complete; `irecv` posts a matching slot that `deliver` fills
/// before the mailbox queue is consulted, so a posted receive is invisible
/// to probe. Every posted receive MUST be completed via wait/wait_all/
/// wait_any — an abandoned request would silently swallow the next matching
/// message.
class Request {
 public:
  Request() = default;

  /// True until the operation's result has been retrieved.
  bool valid() const { return state_ != nullptr; }

  /// After Comm::wait_any reports this request complete, move the received
  /// message out and release the handle.
  Message take_message();

 private:
  friend class Comm;
  friend class World;
  explicit Request(std::shared_ptr<RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<RequestState> state_;
};

/// One-sided communication window (models an MPI-3 RMA epoch with
/// MPI_Put + MPI_Win_fence). Each rank owns an append inbox; remote ranks
/// deposit byte records into it without any matching receive. After a
/// `fence()` the owner drains its inbox. This is exactly the primitive the
/// paper proposes for on-demand KMC communication without zero-size
/// handshake messages.
class PutWindow {
 public:
  explicit PutWindow(int nranks) : inboxes_(nranks) {}

  void append(int target, std::span<const std::byte> data) {
    auto& box = inboxes_[static_cast<std::size_t>(target)];
    std::lock_guard lk(box.m);
    box.data.insert(box.data.end(), data.begin(), data.end());
  }

  std::vector<std::byte> drain(int rank) {
    auto& box = inboxes_[static_cast<std::size_t>(rank)];
    std::lock_guard lk(box.m);
    return std::exchange(box.data, {});
  }

 private:
  struct Inbox {
    std::mutex m;
    std::vector<std::byte> data;
  };
  std::vector<Inbox> inboxes_;
};

/// An N-rank message-passing world executed as N threads inside one process.
///
/// This is the substitution for MPI on TaihuLight (see DESIGN.md §2): the
/// communication *algorithms* (ghost exchange, probe-based on-demand
/// delivery, one-sided puts) run unchanged, and per-rank traffic counters
/// supply the volumes that the scaling model projects to paper scale.
class World {
 public:
  explicit World(int nranks);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }

  /// Spawn one thread per rank, run `fn(comm)` on each, join all. Any
  /// exception thrown by a rank is rethrown on the caller after join.
  void run(const std::function<void(Comm&)>& fn);

  /// Aggregate traffic over all ranks since construction or reset.
  RankTraffic total_traffic() const;
  const RankTraffic& traffic(int rank) const {
    return traffic_[static_cast<std::size_t>(rank)];
  }
  void reset_traffic();

 private:
  friend class Comm;

  struct Mailbox {
    std::mutex m;
    std::condition_variable cv;
    std::deque<Message> q;
    /// Posted receives, in post order. deliver() matches these before the
    /// queue, so a message claimed by an irecv is never seen by probe/recv.
    std::vector<std::shared_ptr<RequestState>> pending;
  };

  // --- point to point ---
  void deliver(int dst, Message msg);
  Message receive(int me, int src, int tag);
  ProbeInfo probe_blocking(int me, int src, int tag);
  std::optional<ProbeInfo> probe_nonblocking(int me, int src, int tag);

  // --- nonblocking requests (me = owning rank) ---
  Request post_irecv(int me, int src, int tag);
  Message request_wait(int me, Request& r);
  bool request_test(int me, const Request& r);
  std::size_t request_wait_any(int me, std::span<Request> rs);

  // --- collectives (single generation-counted rendezvous) ---
  struct Rendezvous {
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
    double acc_d = 0.0;
    std::uint64_t acc_u = 0;
    double result_d = 0.0;
    std::uint64_t result_u = 0;
    std::shared_ptr<PutWindow> window;
  };

  void barrier();
  double allreduce_sum(double x);
  double allreduce_max(double x);
  std::uint64_t allreduce_sum_u64(std::uint64_t x);
  std::uint64_t allreduce_max_u64(std::uint64_t x);
  std::shared_ptr<PutWindow> create_window();

  template <typename Init, typename Combine, typename Extract>
  auto rendezvous(Init init, Combine combine, Extract extract);

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Rendezvous rv_;
  std::vector<RankTraffic> traffic_;
};

/// A rank's handle into the World: the MPI-communicator-shaped API used by
/// all parallel algorithms in this codebase.
class Comm {
 public:
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size_; }

  /// Blocking untyped send (buffered: never deadlocks on unmatched sends).
  void send_bytes(int dst, int tag, std::span<const std::byte> data);

  /// Blocking typed send of trivially-copyable elements.
  template <typename T>
  void send(int dst, int tag, std::span<const T> items) {
    send_bytes(dst, tag, std::as_bytes(items));
  }
  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send(dst, tag, std::span<const T>(&v, 1));
  }

  /// Nonblocking untyped send. Buffered like `send` — the payload is copied
  /// and delivered before return — so the request is born complete; waiting
  /// on it is a no-op kept for MPI-shaped symmetry.
  Request isend_bytes(int dst, int tag, std::span<const std::byte> data);

  /// Nonblocking typed send of trivially-copyable elements.
  template <typename T>
  Request isend(int dst, int tag, std::span<const T> items) {
    return isend_bytes(dst, tag, std::as_bytes(items));
  }

  /// Post a nonblocking receive matching (src, tag). The posted slot
  /// out-prioritizes probe/recv for matching messages; it MUST be completed
  /// with wait/wait_all/wait_any.
  Request irecv(int src = kAnySource, int tag = kAnyTag);

  /// Block until `r` completes; return its message and release the handle.
  Message wait(Request& r);

  /// Nonblocking completion check. Does not consume: once true, wait()
  /// returns instantly with the message.
  bool test(const Request& r);

  /// Complete every request, returning messages in REQUEST order (not
  /// arrival order) — deterministic regardless of sender scheduling.
  std::vector<Message> wait_all(std::span<Request> rs);

  /// Block until any not-yet-consumed request completes; returns its index.
  /// Retrieve the message with rs[i].take_message(). Skips invalidated
  /// handles, so callers can loop until every request has been taken.
  std::size_t wait_any(std::span<Request> rs);

  /// Blocking receive matching (src, tag); wildcards kAnySource/kAnyTag.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  template <typename T>
  std::vector<T> recv_vector(int src = kAnySource, int tag = kAnyTag,
                             int* actual_src = nullptr) {
    Message m = recv(src, tag);
    if (actual_src) *actual_src = m.src;
    return unpack<T>(m.payload);
  }

  /// Blocking probe: wait until a matching message exists, return its info
  /// without consuming it.
  ProbeInfo probe(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe.
  std::optional<ProbeInfo> iprobe(int src = kAnySource, int tag = kAnyTag);

  void barrier();
  double allreduce_sum(double x);
  double allreduce_max(double x);
  std::uint64_t allreduce_sum_u64(std::uint64_t x);
  std::uint64_t allreduce_max_u64(std::uint64_t x);

  /// Collective: concatenate every rank's items on `root` (rank order).
  /// Non-root ranks receive an empty vector.
  template <typename T>
  std::vector<T> gather_to(int root, std::span<const T> items,
                           int tag = tags::kGather) {
    if (rank_ != root) {
      send(root, tag, items);
      return {};
    }
    std::vector<T> all;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) {
        all.insert(all.end(), items.begin(), items.end());
      } else {
        auto part = recv_vector<T>(r, tag);
        all.insert(all.end(), part.begin(), part.end());
      }
    }
    return all;
  }

  /// Collective: every rank receives root's items.
  template <typename T>
  std::vector<T> broadcast_from(int root, std::span<const T> items,
                                int tag = tags::kBroadcast) {
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) send(r, tag, items);
      }
      return {items.begin(), items.end()};
    }
    return recv_vector<T>(root, tag);
  }

  /// Collective: create (or join) a one-sided window shared by all ranks.
  std::shared_ptr<PutWindow> create_window();

  /// One-sided put of typed records into `target`'s inbox.
  template <typename T>
  void put(PutWindow& win, int target, std::span<const T> items) {
    auto bytes = std::as_bytes(items);
    win.append(target, bytes);
    note_put(target, bytes.size());
  }

  /// Drain this rank's one-sided inbox (valid after a fence/barrier).
  template <typename T>
  std::vector<T> drain(PutWindow& win) {
    return unpack<T>(win.drain(rank_));
  }

  RankTraffic& my_traffic() {
    return world_->traffic_[static_cast<std::size_t>(rank_)];
  }

 private:
  friend class World;

  /// Traffic + flight-recorder accounting for put() (non-template so the
  /// header never needs the complete CommRecorder type).
  void note_put(int target, std::size_t bytes);

  World* world_;
  int rank_;
  /// The current session's comm flight recorder, set by World::run; nullptr
  /// (every instrumentation point a cheap branch) when recording is off.
  telemetry::CommRecorder* rec_ = nullptr;
};

}  // namespace mmd::comm
