#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mmd::io {

class FaultInjector;

/// On-disk layout and failure discipline of checkpoint epochs.
///
/// One directory holds per-rank files plus a manifest:
///
///   <dir>/epoch_<E>_rank_<R>.mmdc   one v2 Checkpoint stream per rank
///   <dir>/MANIFEST                  the epochs whose every rank file landed
///
/// Writes are atomic and durable: blob -> <path>.tmp, write, fsync, rename,
/// directory fsync. A crash at any point leaves either the old file or the
/// new one, never a half-written checkpoint under the final name. An epoch
/// becomes *committed* only when rank 0 rewrites the manifest (same atomic
/// discipline) after every rank reported success — so the manifest never
/// names an epoch with missing rank files. Loaders walk the manifest newest
/// first and fall back on any validation failure (graceful degradation).
///
/// Old epochs are pruned at commit, keeping the last `keep_epochs` so a
/// corrupt newest epoch still has a good predecessor to fall back to.
///
/// An armed FaultInjector intercepts rank-blob writes (not manifest writes,
/// so write counts in tests stay predictable).
class CheckpointStore {
 public:
  CheckpointStore(std::string dir, int nranks);

  const std::string& dir() const { return dir_; }
  int nranks() const { return nranks_; }

  void set_fault_injector(FaultInjector* fi) { fault_ = fi; }
  void set_keep_epochs(int n) { keep_ = n < 1 ? 1 : n; }
  int keep_epochs() const { return keep_; }

  std::string rank_path(std::uint64_t epoch, int rank) const;
  std::string manifest_path() const;

  /// Atomically persist one rank's blob for `epoch`. Returns false on an
  /// injected or real I/O failure (the tmp file is cleaned up).
  bool write_rank_blob(std::uint64_t epoch, int rank, const std::string& blob);

  /// Record `epoch` as complete (call on rank 0, after every rank's write
  /// succeeded) and prune epochs beyond the retention window.
  bool commit_epoch(std::uint64_t epoch);

  /// Committed epochs, ascending. Empty when there is no usable manifest or
  /// it was written for a different rank count.
  std::vector<std::uint64_t> committed_epochs() const;

  std::optional<std::string> read_rank_blob(std::uint64_t epoch,
                                            int rank) const;

  /// Best-effort removal of this rank's file of an epoch that failed to
  /// complete on some rank (keeps the directory from accumulating orphans).
  void discard_rank_blob(std::uint64_t epoch, int rank) const;

 private:
  bool write_file_atomic(const std::string& path, std::string blob,
                         bool allow_fault);
  void remove_epoch_files(std::uint64_t epoch) const;

  std::string dir_;
  int nranks_;
  int keep_ = 2;
  FaultInjector* fault_ = nullptr;
};

}  // namespace mmd::io
