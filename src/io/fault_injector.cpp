#include "io/fault_injector.h"

namespace mmd::io {

void FaultInjector::arm_truncate_at(std::uint64_t byte, int after_writes) {
  std::lock_guard lk(m_);
  mode_ = Mode::kTruncateAt;
  byte_ = byte;
  after_writes_ = after_writes;
  injected_ = 0;
}

void FaultInjector::arm_bit_flip(std::uint64_t byte, int bit, int after_writes) {
  std::lock_guard lk(m_);
  mode_ = Mode::kBitFlip;
  byte_ = byte;
  bit_ = bit & 7;
  after_writes_ = after_writes;
  injected_ = 0;
}

void FaultInjector::arm_fail_on_nth_write(int nth) {
  std::lock_guard lk(m_);
  mode_ = Mode::kFailOnNthWrite;
  nth_ = nth;
  injected_ = 0;
}

bool FaultInjector::apply(std::string& blob) {
  std::lock_guard lk(m_);
  const int write_no = ++writes_;
  if (mode_ == Mode::kNone) return true;
  if (fire_once_ && injected_ > 0) return true;
  switch (mode_) {
    case Mode::kFailOnNthWrite:
      if (write_no == nth_) {
        ++injected_;
        return false;
      }
      return true;
    case Mode::kTruncateAt:
      if (write_no > after_writes_ && byte_ < blob.size()) {
        blob.resize(static_cast<std::size_t>(byte_));
        ++injected_;
      }
      return true;
    case Mode::kBitFlip:
      if (write_no > after_writes_ && byte_ < blob.size()) {
        blob[static_cast<std::size_t>(byte_)] ^=
            static_cast<char>(1u << bit_);
        ++injected_;
      }
      return true;
    case Mode::kNone:
      break;
  }
  return true;
}

int FaultInjector::writes_seen() const {
  std::lock_guard lk(m_);
  return writes_;
}

int FaultInjector::faults_injected() const {
  std::lock_guard lk(m_);
  return injected_;
}

}  // namespace mmd::io
