#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/vec3.h"

namespace mmd::io {

/// Field-at-a-time little-endian serializer into a growable byte buffer.
///
/// Checkpoint payloads are built through this instead of writing structs
/// raw: struct padding never reaches the file, so blobs are byte-identical
/// across runs (stable CRCs, MSan-clean) and independent of the compiler's
/// layout choices.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i16(std::int16_t v) { put_le(static_cast<std::uint16_t>(v)); }
  void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }
  void put_vec3(const util::Vec3& v) {
    put_f64(v.x);
    put_f64(v.y);
    put_f64(v.z);
  }

  const std::string& str() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename U>
  void put_le(U v) {
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  std::string buf_;
};

/// Bounds-checked little-endian reader over an in-memory payload. Every
/// accessor throws on underflow, so a truncated or corrupt section can never
/// read past the buffer — the counterpart of ByteWriter.
class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  std::size_t remaining() const { return buf_.size() - pos_; }

  std::uint8_t get_u8() {
    need(1);
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int16_t get_i16() { return static_cast<std::int16_t>(get_le<std::uint16_t>()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_le<std::uint32_t>()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  double get_f64() { return std::bit_cast<double>(get_le<std::uint64_t>()); }
  util::Vec3 get_vec3() {
    util::Vec3 v;
    v.x = get_f64();
    v.y = get_f64();
    v.z = get_f64();
    return v;
  }

 private:
  void need(std::size_t n) const {
    if (buf_.size() - pos_ < n) {
      throw std::runtime_error("Checkpoint: truncated section payload");
    }
  }

  template <typename U>
  U get_le() {
    need(sizeof(U));
    U v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(static_cast<std::uint8_t>(buf_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(U);
    return v;
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace mmd::io
