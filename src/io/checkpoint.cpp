#include "io/checkpoint.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/byte_io.h"
#include "util/crc32.h"

namespace mmd::io {

namespace {

// Serialized record sizes (fields only — no struct padding).
constexpr std::size_t kEntryBytes = 10 * 8 + 8 + 2;    // r v f rho, id, type
constexpr std::size_t kRunawayBytes = 10 * 8 + 8 + 2;  // same fields
// Length bound for sections read from non-seekable streams, where the real
// remaining byte count cannot be determined.
constexpr std::uint64_t kMaxBlindSectionBytes = 1ull << 28;

void write_u32_stream(std::ostream& os, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  os.write(b, 4);
}

void write_u64_stream(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  os.write(b, 8);
}

std::uint32_t read_u32_stream(std::istream& is, const char* what) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) {
    throw std::runtime_error(std::string("Checkpoint: truncated stream (") +
                             what + ")");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64_stream(std::istream& is, const char* what) {
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), 8);
  if (!is) {
    throw std::runtime_error(std::string("Checkpoint: truncated stream (") +
                             what + ")");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

/// Bytes left between the read position and the end of a seekable stream;
/// UINT64_MAX when the stream does not support seeking.
std::uint64_t remaining_stream_bytes(std::istream& is) {
  const auto pos = is.tellg();
  if (pos < 0) return std::numeric_limits<std::uint64_t>::max();
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(pos);
  if (end < pos) return 0;
  return static_cast<std::uint64_t>(end - pos);
}

/// Shared geometry/decomposition prefix of MD and KMC payloads.
struct GeoPrefix {
  std::int32_t nx = 0, ny = 0, nz = 0;
  std::int32_t ox = 0, oy = 0, oz = 0;
  std::int32_t lx = 0, ly = 0, lz = 0;

  static GeoPrefix of(const lat::BccGeometry& geo, const lat::LocalBox& box) {
    return {geo.nx(), geo.ny(), geo.nz(), box.ox, box.oy,
            box.oz,   box.lx,  box.ly,   box.lz};
  }

  void write(ByteWriter& w) const {
    w.put_i32(nx);
    w.put_i32(ny);
    w.put_i32(nz);
    w.put_i32(ox);
    w.put_i32(oy);
    w.put_i32(oz);
    w.put_i32(lx);
    w.put_i32(ly);
    w.put_i32(lz);
  }

  static GeoPrefix read(ByteReader& r) {
    GeoPrefix g;
    g.nx = r.get_i32();
    g.ny = r.get_i32();
    g.nz = r.get_i32();
    g.ox = r.get_i32();
    g.oy = r.get_i32();
    g.oz = r.get_i32();
    g.lx = r.get_i32();
    g.ly = r.get_i32();
    g.lz = r.get_i32();
    return g;
  }

  bool operator==(const GeoPrefix&) const = default;
};

void check_geometry(const GeoPrefix& saved, const lat::BccGeometry& geo,
                    const lat::LocalBox& box) {
  if (saved != GeoPrefix::of(geo, box)) {
    throw std::runtime_error("Checkpoint: geometry/decomposition mismatch");
  }
}

void write_kinematics(ByteWriter& w, const util::Vec3& r, const util::Vec3& v,
                      const util::Vec3& f, double rho, std::int64_t id,
                      lat::Species type) {
  w.put_vec3(r);
  w.put_vec3(v);
  w.put_vec3(f);
  w.put_f64(rho);
  w.put_i64(id);
  w.put_i16(static_cast<std::int16_t>(type));
}

}  // namespace

void Checkpoint::write_file_header(std::ostream& os) {
  write_u32_stream(os, kMagic);
  write_u32_stream(os, kVersion);
}

void Checkpoint::read_file_header(std::istream& is) {
  const std::uint32_t magic = read_u32_stream(is, "magic");
  if (magic != kMagic) throw std::runtime_error("Checkpoint: bad magic");
  const std::uint32_t version = read_u32_stream(is, "version");
  if (version == 1) {
    throw std::runtime_error(
        "Checkpoint: file is format version 1 (raw structs, no CRC). This "
        "build reads only version 3 — re-generate the checkpoint from a "
        "fresh run; v1 files cannot be verified for integrity.");
  }
  if (version == 2) {
    throw std::runtime_error(
        "Checkpoint: file is format version 2 (no stage-schedule META). This "
        "build reads only version 3 — re-generate the checkpoint from a "
        "fresh run; a v2 epoch cannot position the stage pipeline.");
  }
  if (version != kVersion) {
    throw std::runtime_error("Checkpoint: unsupported format version " +
                             std::to_string(version));
  }
}

void Checkpoint::write_section(std::ostream& os, std::uint32_t kind,
                               const std::string& payload) {
  write_u32_stream(os, kind);
  write_u64_stream(os, payload.size());
  write_u32_stream(os, util::crc32(payload));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

std::string Checkpoint::read_section(std::istream& is,
                                     std::uint32_t expected_kind) {
  const std::uint32_t kind = read_u32_stream(is, "section kind");
  if (kind != expected_kind) {
    throw std::runtime_error("Checkpoint: wrong checkpoint kind (section " +
                             std::to_string(kind) + ", expected " +
                             std::to_string(expected_kind) + ")");
  }
  const std::uint64_t len = read_u64_stream(is, "section length");
  const std::uint64_t available = remaining_stream_bytes(is);
  const std::uint64_t bound =
      available == std::numeric_limits<std::uint64_t>::max()
          ? kMaxBlindSectionBytes
          : available;
  if (len > bound) {
    throw std::runtime_error(
        "Checkpoint: section length " + std::to_string(len) +
        " exceeds the " + std::to_string(bound) + " bytes remaining");
  }
  const std::uint32_t crc = read_u32_stream(is, "section crc");
  std::string payload(static_cast<std::size_t>(len), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("Checkpoint: truncated section payload");
  if (util::crc32(payload) != crc) {
    throw std::runtime_error(
        "Checkpoint: section CRC mismatch (corrupt or tampered data)");
  }
  return payload;
}

void Checkpoint::write_md_section(std::ostream& os,
                                  const lat::LatticeNeighborList& lnl,
                                  double time_ps) {
  ByteWriter w;
  GeoPrefix::of(lnl.geometry(), lnl.box()).write(w);
  w.put_f64(time_ps);
  w.put_u64(lnl.owned_indices().size());
  for (std::size_t idx : lnl.owned_indices()) {
    const lat::AtomEntry& e = lnl.entry(idx);
    write_kinematics(w, e.r, e.v, e.f, e.rho, e.id, e.type);
    // The run-away chain is written inline, head first; `runaway_head` and
    // the pool links are rebuilt at load.
    std::uint32_t chain_len = 0;
    for (std::int32_t ri = e.runaway_head; ri != lat::AtomEntry::kNoRunaway;
         ri = lnl.runaway(ri).next) {
      ++chain_len;
    }
    w.put_u32(chain_len);
    for (std::int32_t ri = e.runaway_head; ri != lat::AtomEntry::kNoRunaway;
         ri = lnl.runaway(ri).next) {
      const lat::RunawayAtom& a = lnl.runaway(ri);
      write_kinematics(w, a.r, a.v, a.f, a.rho, a.id, a.type);
    }
  }
  write_section(os, kKindMd, w.str());
}

double Checkpoint::read_md_section(std::istream& is,
                                   lat::LatticeNeighborList& lnl) {
  const std::string payload = read_section(is, kKindMd);
  ByteReader r(payload);
  check_geometry(GeoPrefix::read(r), lnl.geometry(), lnl.box());
  const double time_ps = r.get_f64();
  const std::uint64_t count = r.get_u64();
  if (count != lnl.owned_indices().size()) {
    throw std::runtime_error("Checkpoint: owned-entry count mismatch");
  }
  // Reset everything (also clears the run-away pool), then repopulate.
  lnl.fill_perfect(lat::Species::Fe);
  lnl.clear_ghosts();
  std::vector<lat::RunawayAtom> chain;
  for (std::size_t idx : lnl.owned_indices()) {
    lat::AtomEntry e;
    e.r = r.get_vec3();
    e.v = r.get_vec3();
    e.f = r.get_vec3();
    e.rho = r.get_f64();
    e.id = r.get_i64();
    e.type = static_cast<lat::Species>(r.get_i16());
    e.runaway_head = lat::AtomEntry::kNoRunaway;
    lnl.entry(idx) = e;
    const std::uint32_t chain_len = r.get_u32();
    // A corrupt length must not drive the allocation below: bound it by the
    // records that can actually still be present in the payload.
    if (chain_len > r.remaining() / kRunawayBytes) {
      throw std::runtime_error(
          "Checkpoint: run-away chain length " + std::to_string(chain_len) +
          " exceeds the " + std::to_string(r.remaining()) +
          " payload bytes remaining");
    }
    chain.assign(chain_len, {});
    for (auto& a : chain) {
      a.r = r.get_vec3();
      a.v = r.get_vec3();
      a.f = r.get_vec3();
      a.rho = r.get_f64();
      a.id = r.get_i64();
      a.type = static_cast<lat::Species>(r.get_i16());
    }
    // Chains restore in reverse so the head order matches the saved order.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      it->next = lat::AtomEntry::kNoRunaway;
      lnl.add_runaway(*it, idx);
    }
  }
  return time_ps;
}

void Checkpoint::write_kmc_section(std::ostream& os, const kmc::KmcModel& model,
                                   double mc_time_s) {
  ByteWriter w;
  GeoPrefix::of(model.geometry(), model.box()).write(w);
  w.put_f64(mc_time_s);
  w.put_u64(model.owned_indices().size());
  for (std::size_t idx : model.owned_indices()) {
    w.put_u8(static_cast<std::uint8_t>(model.state(idx)));
  }
  write_section(os, kKindKmc, w.str());
}

double Checkpoint::read_kmc_section(std::istream& is, kmc::KmcModel& model) {
  const std::string payload = read_section(is, kKindKmc);
  ByteReader r(payload);
  check_geometry(GeoPrefix::read(r), model.geometry(), model.box());
  const double mc_time_s = r.get_f64();
  const std::uint64_t count = r.get_u64();
  if (count != model.owned_indices().size()) {
    throw std::runtime_error("Checkpoint: owned-site count mismatch");
  }
  for (std::size_t idx : model.owned_indices()) {
    model.set_state(idx, static_cast<kmc::SiteState>(r.get_u8()));
  }
  return mc_time_s;
}

void Checkpoint::write_meta_section(std::ostream& os, const MetaState& meta) {
  ByteWriter w;
  w.put_i32(meta.rank);
  w.put_i32(meta.nranks);
  w.put_u64(meta.seed);
  w.put_f64(meta.md_time_ps);
  w.put_u64(meta.kmc_cycles);
  w.put_u64(meta.kmc_events);
  w.put_f64(meta.kmc_mc_time);
  w.put_f64(meta.kmc_last_max_rate);
  w.put_u64(meta.kmc_rng_state);
  w.put_u32(static_cast<std::uint32_t>(meta.stage_tag.size()));
  for (const char c : meta.stage_tag) {
    w.put_u8(static_cast<std::uint8_t>(c));
  }
  w.put_u64(meta.sample_windows);
  w.put_f64(meta.scd_time_s);
  w.put_f64(meta.sample_est_clusters);
  w.put_f64(meta.sample_ci_halfwidth);
  write_section(os, kKindMeta, w.str());
}

Checkpoint::MetaState Checkpoint::read_meta_section(std::istream& is) {
  const std::string payload = read_section(is, kKindMeta);
  ByteReader r(payload);
  MetaState meta;
  meta.rank = r.get_i32();
  meta.nranks = r.get_i32();
  meta.seed = r.get_u64();
  meta.md_time_ps = r.get_f64();
  meta.kmc_cycles = r.get_u64();
  meta.kmc_events = r.get_u64();
  meta.kmc_mc_time = r.get_f64();
  meta.kmc_last_max_rate = r.get_f64();
  meta.kmc_rng_state = r.get_u64();
  const std::uint32_t tag_len = r.get_u32();
  if (tag_len > 64) {
    throw std::runtime_error("Checkpoint: implausible stage tag length " +
                             std::to_string(tag_len));
  }
  meta.stage_tag.clear();
  for (std::uint32_t i = 0; i < tag_len; ++i) {
    meta.stage_tag.push_back(static_cast<char>(r.get_u8()));
  }
  meta.sample_windows = r.get_u64();
  meta.scd_time_s = r.get_f64();
  meta.sample_est_clusters = r.get_f64();
  meta.sample_ci_halfwidth = r.get_f64();
  return meta;
}

void Checkpoint::save_md(std::ostream& os, const lat::LatticeNeighborList& lnl,
                         double time_ps) {
  write_file_header(os);
  write_md_section(os, lnl, time_ps);
}

double Checkpoint::load_md(std::istream& is, lat::LatticeNeighborList& lnl) {
  read_file_header(is);
  return read_md_section(is, lnl);
}

void Checkpoint::save_kmc(std::ostream& os, const kmc::KmcModel& model,
                          double mc_time_s) {
  write_file_header(os);
  write_kmc_section(os, model, mc_time_s);
}

double Checkpoint::load_kmc(std::istream& is, kmc::KmcModel& model) {
  read_file_header(is);
  return read_kmc_section(is, model);
}

}  // namespace mmd::io
