#include "io/checkpoint.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace mmd::io {

namespace {

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("Checkpoint: truncated stream");
  return v;
}

/// Serialized MD record: the owned entry plus its chained run-aways inline.
struct MdRecord {
  lat::AtomEntry entry;
  std::uint32_t chain_len = 0;
};

}  // namespace

Checkpoint::Header Checkpoint::read_header(std::istream& is,
                                           std::uint32_t expected_kind) {
  const Header h = read_pod<Header>(is);
  if (h.magic != kMagic) throw std::runtime_error("Checkpoint: bad magic");
  if (h.version != kVersion) throw std::runtime_error("Checkpoint: bad version");
  if (h.kind != expected_kind) {
    throw std::runtime_error("Checkpoint: wrong checkpoint kind");
  }
  return h;
}

void Checkpoint::save_md(std::ostream& os, const lat::LatticeNeighborList& lnl,
                         double time_ps) {
  const auto& geo = lnl.geometry();
  const auto& box = lnl.box();
  Header h;
  h.kind = 1;
  h.nx = geo.nx();
  h.ny = geo.ny();
  h.nz = geo.nz();
  h.ox = box.ox;
  h.oy = box.oy;
  h.oz = box.oz;
  h.lx = box.lx;
  h.ly = box.ly;
  h.lz = box.lz;
  h.time = time_ps;
  h.payload_count = lnl.owned_indices().size();
  write_pod(os, h);
  for (std::size_t idx : lnl.owned_indices()) {
    MdRecord rec;
    rec.entry = lnl.entry(idx);
    std::vector<lat::RunawayAtom> chain;
    for (std::int32_t ri = rec.entry.runaway_head; ri != lat::AtomEntry::kNoRunaway;
         ri = lnl.runaway(ri).next) {
      chain.push_back(lnl.runaway(ri));
    }
    rec.entry.runaway_head = lat::AtomEntry::kNoRunaway;
    rec.chain_len = static_cast<std::uint32_t>(chain.size());
    write_pod(os, rec);
    for (const auto& a : chain) write_pod(os, a);
  }
}

double Checkpoint::load_md(std::istream& is, lat::LatticeNeighborList& lnl) {
  const Header h = read_header(is, 1);
  const auto& geo = lnl.geometry();
  const auto& box = lnl.box();
  if (h.nx != geo.nx() || h.ny != geo.ny() || h.nz != geo.nz() ||
      h.ox != box.ox || h.oy != box.oy || h.oz != box.oz || h.lx != box.lx ||
      h.ly != box.ly || h.lz != box.lz) {
    throw std::runtime_error("Checkpoint: geometry/decomposition mismatch");
  }
  if (h.payload_count != lnl.owned_indices().size()) {
    throw std::runtime_error("Checkpoint: owned-entry count mismatch");
  }
  // Reset everything (also clears the run-away pool), then repopulate.
  lnl.fill_perfect(lat::Species::Fe);
  lnl.clear_ghosts();
  for (std::size_t idx : lnl.owned_indices()) {
    const MdRecord rec = read_pod<MdRecord>(is);
    lnl.entry(idx) = rec.entry;
    // Chains restore in reverse so the head order matches the saved order.
    std::vector<lat::RunawayAtom> chain(rec.chain_len);
    for (auto& a : chain) a = read_pod<lat::RunawayAtom>(is);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      it->next = lat::AtomEntry::kNoRunaway;
      lnl.add_runaway(*it, idx);
    }
  }
  return h.time;
}

void Checkpoint::save_kmc(std::ostream& os, const kmc::KmcModel& model,
                          double mc_time_s) {
  const auto& geo = model.geometry();
  const auto& box = model.box();
  Header h;
  h.kind = 2;
  h.nx = geo.nx();
  h.ny = geo.ny();
  h.nz = geo.nz();
  h.ox = box.ox;
  h.oy = box.oy;
  h.oz = box.oz;
  h.lx = box.lx;
  h.ly = box.ly;
  h.lz = box.lz;
  h.time = mc_time_s;
  h.payload_count = model.owned_indices().size();
  write_pod(os, h);
  for (std::size_t idx : model.owned_indices()) {
    write_pod(os, static_cast<std::uint8_t>(model.state(idx)));
  }
}

double Checkpoint::load_kmc(std::istream& is, kmc::KmcModel& model) {
  const Header h = read_header(is, 2);
  const auto& geo = model.geometry();
  const auto& box = model.box();
  if (h.nx != geo.nx() || h.ny != geo.ny() || h.nz != geo.nz() ||
      h.ox != box.ox || h.oy != box.oy || h.oz != box.oz || h.lx != box.lx ||
      h.ly != box.ly || h.lz != box.lz) {
    throw std::runtime_error("Checkpoint: geometry/decomposition mismatch");
  }
  if (h.payload_count != model.owned_indices().size()) {
    throw std::runtime_error("Checkpoint: owned-site count mismatch");
  }
  for (std::size_t idx : model.owned_indices()) {
    model.set_state(idx, static_cast<kmc::SiteState>(read_pod<std::uint8_t>(is)));
  }
  return h.time;
}

}  // namespace mmd::io
