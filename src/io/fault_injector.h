#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace mmd::io {

/// Deterministic fault injection for the checkpoint write path, used by the
/// corruption tests and the restart-equivalence harness. An armed injector
/// is handed to io::CheckpointStore, which routes every blob about to be
/// persisted through `apply()`:
///
///   - truncate-at-byte-N: the blob is cut to N bytes (a crash mid-write),
///   - bit-flip: one bit of the blob is inverted (media corruption),
///   - fail-on-nth-write: the Nth write call across all ranks fails outright
///     (a full filesystem / dead node).
///
/// Write calls arrive concurrently from the rank threads, so the counter is
/// mutex-guarded; `fire_once` (default) makes a fault a one-shot so a run
/// degrades at one epoch and recovers at the next — exactly the behavior
/// the graceful-degradation tests pin down.
class FaultInjector {
 public:
  enum class Mode {
    kNone,
    kTruncateAt,
    kBitFlip,
    kFailOnNthWrite,
  };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm: every write after `after_writes` persists only `byte` bytes.
  void arm_truncate_at(std::uint64_t byte, int after_writes = 0);
  /// Arm: flip bit `bit` of byte `byte` in the next affected write.
  void arm_bit_flip(std::uint64_t byte, int bit, int after_writes = 0);
  /// Arm: the `nth` write call (1-based, counted across ranks) fails.
  void arm_fail_on_nth_write(int nth);
  /// A fault fires on every eligible write instead of only the first.
  void set_fire_once(bool once) { fire_once_ = once; }

  /// Called by the store with the blob about to be persisted; may mutate it.
  /// Returns false when the write must fail outright.
  bool apply(std::string& blob);

  int writes_seen() const;
  int faults_injected() const;

 private:
  mutable std::mutex m_;
  Mode mode_ = Mode::kNone;
  std::uint64_t byte_ = 0;
  int bit_ = 0;
  int nth_ = 0;
  int after_writes_ = 0;
  bool fire_once_ = true;
  int writes_ = 0;
  int injected_ = 0;
};

}  // namespace mmd::io
