#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "kmc/model.h"
#include "lattice/lattice_neighbor_list.h"

namespace mmd::io {

/// Binary checkpointing of simulation state: versioned, CRC-guarded section
/// stream. An MD section captures every owned entry (atoms, vacancies,
/// velocities, forces) plus the run-away pool; a KMC section captures the
/// owned site states; a META section captures the coupled-pipeline clocks,
/// cycle/event counters, and RNG state that restart equivalence depends on.
///
/// Format v3 (see docs/CHECKPOINTING.md):
///   file    := magic u32 | version u32 | section*
///   section := kind u32 | payload_len u64 | crc32(payload) u32 | payload
///
/// Payload fields are serialized one by one (little-endian) — no struct
/// padding ever reaches the file, so blobs are byte-deterministic and the
/// CRCs are stable. Every load validates the CRC, bounds every length field
/// against the bytes actually present, and verifies geometry/decomposition
/// before mutating state, failing loudly instead of corrupting the run.
///
/// Checkpoints are per rank (as on real machines: one file per rank); the
/// multi-section composition and the on-disk atomic-write/manifest
/// discipline live in io::CheckpointStore.
class Checkpoint {
 public:
  static constexpr std::uint32_t kMagic = 0x4d4d4443;  // "MMDC"
  static constexpr std::uint32_t kVersion = 3;

  enum Kind : std::uint32_t {
    kKindMd = 1,
    kKindKmc = 2,
    kKindMeta = 3,
  };

  /// Coupled-pipeline state beyond the raw lattice/site arrays: everything a
  /// resumed run needs to continue bit-identically to an uninterrupted one.
  struct MetaState {
    std::int32_t rank = 0;
    std::int32_t nranks = 1;
    std::uint64_t seed = 0;             ///< run seed, cross-checked at load
    double md_time_ps = 0.0;            ///< MD clock at the MD->KMC handoff
    std::uint64_t kmc_cycles = 0;       ///< KMC cycles completed
    std::uint64_t kmc_events = 0;       ///< events executed on this rank
    double kmc_mc_time = 0.0;           ///< MC clock [s]
    double kmc_last_max_rate = 0.0;     ///< seeds the next cycle's dt sync
    std::uint64_t kmc_rng_state = 0;    ///< generator state, not the seed
    // --- v3: stage-pipeline schedule position (docs/SAMPLING.md) ---
    /// Which KMC-side propagator wrote the epoch ("kmc" for the all-detailed
    /// pipeline, "sampling" for the sampled window/stride scheduler);
    /// cross-checked at load so a sampled checkpoint never resumes under a
    /// different schedule.
    std::string stage_tag = "kmc";
    std::uint64_t sample_windows = 0;   ///< warming strides completed
    double scd_time_s = 0.0;            ///< MC time covered by SCD warming
    double sample_est_clusters = 0.0;   ///< last stride's replicate mean
    double sample_ci_halfwidth = 0.0;   ///< ... and its 95% CI halfwidth
  };

  // --- whole-file convenience (one header + one section) ---

  /// Serialize the owned state of a lattice neighbor list.
  static void save_md(std::ostream& os, const lat::LatticeNeighborList& lnl,
                      double time_ps);

  /// Restore into a compatible lattice; returns the saved simulation time.
  /// Ghosts are left UNSET — run a ghost exchange before computing forces.
  static double load_md(std::istream& is, lat::LatticeNeighborList& lnl);

  /// Serialize the owned sites of a KMC model plus the MC clock.
  static void save_kmc(std::ostream& os, const kmc::KmcModel& model,
                       double mc_time_s);

  static double load_kmc(std::istream& is, kmc::KmcModel& model);

  // --- composing multi-section rank files (the coupled pipeline) ---

  static void write_file_header(std::ostream& os);
  /// Throws on bad magic or version; a v1 file gets an explicit migration
  /// message rather than a generic mismatch.
  static void read_file_header(std::istream& is);

  static void write_md_section(std::ostream& os,
                               const lat::LatticeNeighborList& lnl,
                               double time_ps);
  static double read_md_section(std::istream& is, lat::LatticeNeighborList& lnl);

  static void write_kmc_section(std::ostream& os, const kmc::KmcModel& model,
                                double mc_time_s);
  static double read_kmc_section(std::istream& is, kmc::KmcModel& model);

  static void write_meta_section(std::ostream& os, const MetaState& meta);
  static MetaState read_meta_section(std::istream& is);

 private:
  static void write_section(std::ostream& os, std::uint32_t kind,
                            const std::string& payload);
  /// Reads one section, validating kind, length (bounded by the bytes left
  /// in the stream) and CRC; returns the payload.
  static std::string read_section(std::istream& is, std::uint32_t expected_kind);
};

}  // namespace mmd::io
