#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "kmc/model.h"
#include "lattice/lattice_neighbor_list.h"

namespace mmd::io {

/// Binary checkpointing of simulation state: versioned, header-validated
/// stream format. An MD checkpoint captures every owned entry (atoms,
/// vacancies, velocities, forces) plus the run-away pool; a KMC checkpoint
/// captures the owned site states. Restores require a lattice/model built
/// with the same geometry and decomposition — the header carries enough
/// metadata to verify that and fail loudly instead of corrupting state.
///
/// Checkpoints are per rank (as on real machines: one file per rank).
class Checkpoint {
 public:
  static constexpr std::uint32_t kMagic = 0x4d4d4443;  // "MMDC"
  static constexpr std::uint32_t kVersion = 1;

  /// Serialize the owned state of a lattice neighbor list.
  static void save_md(std::ostream& os, const lat::LatticeNeighborList& lnl,
                      double time_ps);

  /// Restore into a compatible lattice; returns the saved simulation time.
  /// Ghosts are left UNSET — run a ghost exchange before computing forces.
  static double load_md(std::istream& is, lat::LatticeNeighborList& lnl);

  /// Serialize the owned sites of a KMC model plus the MC clock.
  static void save_kmc(std::ostream& os, const kmc::KmcModel& model,
                       double mc_time_s);

  static double load_kmc(std::istream& is, kmc::KmcModel& model);

 private:
  struct Header {
    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint32_t kind = 0;  ///< 1 = MD, 2 = KMC
    std::int32_t nx = 0, ny = 0, nz = 0;
    std::int32_t ox = 0, oy = 0, oz = 0;
    std::int32_t lx = 0, ly = 0, lz = 0;
    double time = 0.0;
    std::uint64_t payload_count = 0;
  };

  static Header read_header(std::istream& is, std::uint32_t expected_kind);
};

}  // namespace mmd::io
