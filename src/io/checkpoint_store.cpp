#include "io/checkpoint_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/fault_injector.h"

namespace mmd::io {

namespace fs = std::filesystem;

CheckpointStore::CheckpointStore(std::string dir, int nranks)
    : dir_(std::move(dir)), nranks_(nranks) {
  std::error_code ec;
  fs::create_directories(dir_, ec);  // surfaced as write failures later
}

std::string CheckpointStore::rank_path(std::uint64_t epoch, int rank) const {
  std::ostringstream os;
  os << dir_ << "/epoch_" << epoch << "_rank_" << rank << ".mmdc";
  return os.str();
}

std::string CheckpointStore::manifest_path() const { return dir_ + "/MANIFEST"; }

bool CheckpointStore::write_file_atomic(const std::string& path,
                                        std::string blob, bool allow_fault) {
  if (allow_fault && fault_ != nullptr && !fault_->apply(blob)) return false;
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = blob.data();
  std::size_t left = blob.size();
  bool ok = true;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) {
      ok = false;
      break;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  ::close(fd);
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable.
  const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool CheckpointStore::write_rank_blob(std::uint64_t epoch, int rank,
                                      const std::string& blob) {
  return write_file_atomic(rank_path(epoch, rank), blob, /*allow_fault=*/true);
}

std::vector<std::uint64_t> CheckpointStore::committed_epochs() const {
  std::ifstream is(manifest_path());
  if (!is) return {};
  std::string word;
  int version = 0, ranks = 0;
  if (!(is >> word >> version >> ranks) || word != "mmdc-manifest" ||
      version != 2 || ranks != nranks_) {
    return {};
  }
  std::vector<std::uint64_t> epochs;
  std::uint64_t e = 0;
  while (is >> word >> e) {
    if (word == "epoch") epochs.push_back(e);
  }
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  return epochs;
}

bool CheckpointStore::commit_epoch(std::uint64_t epoch) {
  std::vector<std::uint64_t> epochs = committed_epochs();
  epochs.push_back(epoch);
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  std::vector<std::uint64_t> dropped;
  while (static_cast<int>(epochs.size()) > keep_) {
    dropped.push_back(epochs.front());
    epochs.erase(epochs.begin());
  }
  std::ostringstream os;
  os << "mmdc-manifest 2 " << nranks_ << "\n";
  for (const std::uint64_t e : epochs) os << "epoch " << e << "\n";
  if (!write_file_atomic(manifest_path(), os.str(), /*allow_fault=*/false)) {
    return false;
  }
  for (const std::uint64_t e : dropped) remove_epoch_files(e);
  return true;
}

std::optional<std::string> CheckpointStore::read_rank_blob(std::uint64_t epoch,
                                                           int rank) const {
  std::ifstream is(rank_path(epoch, rank), std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

void CheckpointStore::discard_rank_blob(std::uint64_t epoch, int rank) const {
  std::error_code ec;
  fs::remove(rank_path(epoch, rank), ec);
}

void CheckpointStore::remove_epoch_files(std::uint64_t epoch) const {
  for (int r = 0; r < nranks_; ++r) discard_rank_blob(epoch, r);
}

}  // namespace mmd::io
