#pragma once

#include <iosfwd>
#include <string>

#include "comm/world.h"
#include "kmc/model.h"
#include "lattice/lattice_neighbor_list.h"

namespace mmd::io {

/// Extended-XYZ trajectory writer for visualizing configurations in OVITO /
/// VMD / ASE. One frame per call; species are written as element symbols,
/// vacancies optionally as pseudo-atoms ("X") so damage is visible, and
/// run-away atoms carry a flag column.
class XyzWriter {
 public:
  struct Options {
    bool include_vacancies = true;   ///< emit vacancies as species "X"
    bool mark_runaways = true;       ///< extra 0/1 column for run-away atoms
    std::string comment;             ///< appended to the frame comment line
  };

  XyzWriter() = default;
  explicit XyzWriter(Options opts) : opts_(std::move(opts)) {}

  /// Write one frame of a rank's owned atoms (and vacancies) to a stream.
  void write_frame(std::ostream& os, const lat::LatticeNeighborList& lnl,
                   double time_ps = 0.0) const;

  /// Gather all ranks' frames to rank 0 and write a single global frame
  /// (collective; only rank 0 writes).
  void write_frame_global(std::ostream& os, comm::Comm& comm,
                          const lat::LatticeNeighborList& lnl,
                          double time_ps = 0.0) const;

  /// Write a KMC site configuration (atoms by species, vacancies as "X").
  void write_sites(std::ostream& os, const kmc::KmcModel& model) const;

 private:
  struct Record {
    util::Vec3 r;
    std::int16_t species;  ///< -1 vacancy, otherwise lat::Species
    std::int16_t runaway;
    std::int32_t pad = 0;
  };

  void collect(const lat::LatticeNeighborList& lnl,
               std::vector<Record>* out) const;
  void emit(std::ostream& os, const std::vector<Record>& records,
            const util::Vec3& box, double time_ps) const;

  Options opts_;
};

/// Element symbol for a species (or "X" for vacancies).
const char* species_symbol(int species);

}  // namespace mmd::io
