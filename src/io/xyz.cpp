#include "io/xyz.h"

#include <ostream>
#include <vector>

namespace mmd::io {

const char* species_symbol(int species) {
  switch (species) {
    case -1: return "X";
    case 0: return "Fe";
    case 1: return "Cu";
    default: return "?";
  }
}

void XyzWriter::collect(const lat::LatticeNeighborList& lnl,
                        std::vector<Record>* out) const {
  for (std::size_t idx : lnl.owned_indices()) {
    const lat::AtomEntry& e = lnl.entry(idx);
    if (e.is_atom()) {
      out->push_back({e.r, static_cast<std::int16_t>(e.type), 0, 0});
    } else if (e.is_vacancy() && opts_.include_vacancies) {
      out->push_back({e.r, -1, 0, 0});
    }
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
    const lat::RunawayAtom& a = lnl.runaway(ri);
    out->push_back({a.r, static_cast<std::int16_t>(a.type), 1, 0});
  });
}

void XyzWriter::emit(std::ostream& os, const std::vector<Record>& records,
                     const util::Vec3& box, double time_ps) const {
  os << records.size() << '\n';
  os << "Lattice=\"" << box.x << " 0 0 0 " << box.y << " 0 0 0 " << box.z
     << "\" Properties=species:S:1:pos:R:3";
  if (opts_.mark_runaways) os << ":runaway:I:1";
  os << " Time=" << time_ps;
  if (!opts_.comment.empty()) os << ' ' << opts_.comment;
  os << '\n';
  for (const Record& rec : records) {
    os << species_symbol(rec.species) << ' ' << rec.r.x << ' ' << rec.r.y << ' '
       << rec.r.z;
    if (opts_.mark_runaways) os << ' ' << rec.runaway;
    os << '\n';
  }
}

void XyzWriter::write_frame(std::ostream& os, const lat::LatticeNeighborList& lnl,
                            double time_ps) const {
  std::vector<Record> records;
  collect(lnl, &records);
  emit(os, records, lnl.geometry().box_length(), time_ps);
}

void XyzWriter::write_frame_global(std::ostream& os, comm::Comm& comm,
                                   const lat::LatticeNeighborList& lnl,
                                   double time_ps) const {
  constexpr int kTag = 9200;
  std::vector<Record> records;
  collect(lnl, &records);
  if (comm.rank() != 0) {
    comm.send(0, kTag, std::span<const Record>(records));
    return;
  }
  for (int r = 1; r < comm.size(); ++r) {
    auto part = comm.recv_vector<Record>(r, kTag);
    records.insert(records.end(), part.begin(), part.end());
  }
  emit(os, records, lnl.geometry().box_length(), time_ps);
}

void XyzWriter::write_sites(std::ostream& os, const kmc::KmcModel& model) const {
  std::vector<Record> records;
  const auto& geo = model.geometry();
  for (std::size_t idx : model.owned_indices()) {
    const kmc::SiteState s = model.state(idx);
    const util::Vec3 r = geo.position(geo.site_coord(model.site_rank_of(idx)));
    if (s == kmc::SiteState::Vacancy) {
      if (opts_.include_vacancies) records.push_back({r, -1, 0, 0});
    } else {
      records.push_back({r, static_cast<std::int16_t>(s), 0, 0});
    }
  }
  emit(os, records, geo.box_length(), 0.0);
}

}  // namespace mmd::io
