#include "sunway/slave_pool.h"

#include <algorithm>
#include <chrono>

#include "telemetry/session.h"
#include "telemetry/trace.h"

namespace mmd::sw {

SlaveCorePool::SlaveCorePool(std::size_t num_slave_cores,
                             std::size_t local_store_bytes,
                             DmaCostModel dma_cost,
                             std::size_t max_os_threads) {
  cores_.reserve(num_slave_cores);
  ctxs_.reserve(num_slave_cores);
  for (std::size_t i = 0; i < num_slave_cores; ++i) {
    Core c;
    c.store = std::make_unique<LocalStore>(local_store_bytes);
    c.dma = std::make_unique<DmaEngine>(dma_cost);
    cores_.push_back(std::move(c));
    auto ctx = std::make_unique<SlaveCtx>();
    ctx->core_id = i;
    ctx->local_store = cores_[i].store.get();
    ctx->dma = cores_[i].dma.get();
    ctxs_.push_back(std::move(ctx));
  }
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  os_threads_ = max_os_threads == 0 ? std::min(hw, num_slave_cores)
                                    : std::min(max_os_threads, num_slave_cores);
  os_threads_ = std::max<std::size_t>(1, os_threads_);
  workers_.reserve(os_threads_ - 1);
  for (std::size_t t = 1; t < os_threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SlaveCorePool::~SlaveCorePool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void SlaveCorePool::drain_cores() {
  try {
    for (std::size_t i = next_core_.fetch_add(1); i < cores_.size();
         i = next_core_.fetch_add(1)) {
      ctxs_[i]->local_store->reset();
      if (job_tracer_ != nullptr) {
        job_tracer_->attach_calling_thread(job_parent_rank_,
                                           1 + static_cast<int>(i));
        const DmaStats d0 = cores_[i].dma->stats();
        telemetry::ScopedSpan span("cpe.kernel");
        (*job_)(*ctxs_[i]);
        const DmaStats d1 = cores_[i].dma->stats();
        span.set_dma(d1.total_ops() - d0.total_ops(),
                     d1.total_bytes() - d0.total_bytes());
      } else {
        (*job_)(*ctxs_[i]);
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void SlaveCorePool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
    }
    drain_cores();
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void SlaveCorePool::run(const std::function<void(SlaveCtx&)>& fn) {
  if (cores_.empty()) return;
  // Serialize concurrent submitters (several jobs sharing this pool as their
  // campaign executor): one epoch at a time, the next queued submitter's
  // epoch starting the moment this one joins. try_lock first so contention —
  // a second job with runnable work while the pool was busy — is observable.
  const bool contended = !submit_mu_.try_lock();
  if (contended) submit_mu_.lock();
  std::lock_guard<std::mutex> submit_guard(submit_mu_, std::adopt_lock);
  const auto epoch_t0 = std::chrono::steady_clock::now();

  // Telemetry: if the calling (rank) thread is attached to a tracer, each
  // logical CPE records a span on its own lane of that rank's track group,
  // tagged with the DMA traffic of this invocation; the rank thread folds the
  // aggregate DMA delta into the metrics registry after the join (CPE worker
  // threads never touch the single-writer rank slot).
  telemetry::Tracer* tracer = telemetry::Tracer::calling_thread_tracer();
  const telemetry::TrackId parent = telemetry::Tracer::calling_thread_track();
  const bool tracing = tracer != nullptr && parent.rank >= 0 &&
                       parent.lane == telemetry::Tracer::kMasterLane;
  const int metrics_rank = telemetry::attached_metrics_rank();
  const DmaStats dma_before = aggregate_dma_stats();

  // Publish the job and release the parked workers (the mutex orders the
  // job/next_core_ writes before any worker observes the new epoch).
  next_core_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_tracer_ = tracing ? tracer : nullptr;
    job_parent_rank_ = parent.rank;
    first_error_ = nullptr;
    workers_done_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();

  // The calling thread executes its share, then joins the barrier.
  drain_cores();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return workers_done_ == workers_.size(); });
    job_ = nullptr;
    job_tracer_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }

  if (tracing) {
    // The calling thread ran kernels too and re-bound itself to CPE lanes;
    // restore its master-lane binding before touching the registry.
    tracer->attach_calling_thread(parent.rank, parent.lane);
    if (metrics_rank >= 0) {
      const DmaStats d = aggregate_dma_stats();
      auto& m = telemetry::Session::current()->metrics();
      m.add(metrics_rank, "sw.dma.get_ops", d.get_ops - dma_before.get_ops);
      m.add(metrics_rank, "sw.dma.put_ops", d.put_ops - dma_before.put_ops);
      m.add(metrics_rank, "sw.dma.get_bytes", d.get_bytes - dma_before.get_bytes);
      m.add(metrics_rank, "sw.dma.put_bytes", d.put_bytes - dma_before.put_bytes);
    }
  }

  ++activity_.epochs;
  if (contended) ++activity_.contended_epochs;
  activity_.busy_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_t0)
          .count();

  if (error) std::rethrow_exception(error);
}

void SlaveCorePool::parallel_for_chunks(
    std::size_t n,
    const std::function<void(SlaveCtx&, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t cores = cores_.size();
  run([&](SlaveCtx& ctx) {
    // Contiguous slab per core, like the paper's subdomain-into-slabs split.
    const std::size_t chunk = (n + cores - 1) / cores;
    const std::size_t begin = std::min(n, ctx.core_id * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) fn(ctx, begin, end);
  });
}

void SlaveCorePool::parallel_for(
    std::size_t n, const std::function<void(SlaveCtx&, std::size_t)>& fn) {
  parallel_for_chunks(n, [&](SlaveCtx& ctx, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(ctx, i);
  });
}

DmaStats SlaveCorePool::aggregate_dma_stats() const {
  DmaStats total;
  for (const auto& c : cores_) total += c.dma->stats();
  return total;
}

double SlaveCorePool::max_modeled_dma_time() const {
  double m = 0.0;
  for (const auto& c : cores_) m = std::max(m, c.dma->modeled_time());
  return m;
}

void SlaveCorePool::reset_stats() {
  for (auto& c : cores_) c.dma->reset_stats();
}

SlaveCorePool::PoolActivity SlaveCorePool::activity() const {
  std::lock_guard<std::mutex> lk(submit_mu_);
  return activity_;
}

void SlaveCorePool::reset_activity() {
  std::lock_guard<std::mutex> lk(submit_mu_);
  activity_ = PoolActivity{};
}

}  // namespace mmd::sw
