#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmd::sw {

/// Software model of one CPE (slave core) local store: a fixed-capacity,
/// user-managed scratchpad (64 KB on the SW26010, paper §2.1.2).
///
/// Allocation is a bump pointer: buffers are carved off in order and freed
/// all at once with `reset()`, matching how the paper's kernels stage data
/// per block. Allocation FAILS (returns nullptr) when capacity is exceeded —
/// this is the hardware constraint that forces the compacted interpolation
/// table: a traditional 5000x7 double table (273 KB) cannot be resident,
/// while the 5000-sample compact table (39 KB) can.
class LocalStore {
 public:
  /// SW26010 CPE local store size in bytes.
  static constexpr std::size_t kSunwayCapacity = 64 * 1024;

  explicit LocalStore(std::size_t capacity = kSunwayCapacity)
      : storage_(capacity), capacity_(capacity) {}

  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;

  /// Allocate `bytes` with the given alignment. Returns nullptr if the
  /// request does not fit in the remaining space. The returned POINTER is
  /// aligned: the request is padded relative to the storage base address,
  /// which operator new only guarantees to alignof(max_align_t) — aligning
  /// the bump offset alone would hand out misaligned pointers for the
  /// 32/64-byte SIMD staging buffers.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    const std::size_t offset = aligned_offset(align);
    if (offset + bytes > capacity_) return nullptr;
    used_ = offset + bytes;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return storage_.data() + offset;
  }

  /// Typed allocation of `count` elements of T; nullptr when it does not fit.
  /// `align` may raise (never lower) the alignment above alignof(T).
  template <typename T>
  T* allocate_array(std::size_t count, std::size_t align = alignof(T)) {
    return static_cast<T*>(
        allocate(count * sizeof(T), align > alignof(T) ? align : alignof(T)));
  }

  /// Whether an allocation of `bytes` would currently succeed. Uses the same
  /// rounding as allocate(): fits(b, a) == (allocate(b, a) != nullptr).
  bool fits(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) const {
    return aligned_offset(align) + bytes <= capacity_;
  }

  /// Release everything allocated so far (buffers become dangling).
  void reset() { used_ = 0; }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t remaining() const { return capacity_ - used_; }

  /// Maximum bytes ever simultaneously live — reported by the memory
  /// footprint bench.
  std::size_t high_water_mark() const { return high_water_; }

 private:
  /// Offset at which the next allocation with `align` starts, computed from
  /// the actual base ADDRESS so the resulting pointer is aligned even when
  /// align exceeds the base's own alignment. Shared by allocate() and fits()
  /// so their rounding can never drift apart.
  std::size_t aligned_offset(std::size_t align) const {
    const auto base = reinterpret_cast<std::uintptr_t>(storage_.data());
    const std::uintptr_t raw = base + used_;
    return static_cast<std::size_t>((raw + align - 1) / align * align - base);
  }

  std::vector<std::byte> storage_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mmd::sw
