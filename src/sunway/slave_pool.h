#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sunway/dma.h"
#include "sunway/local_store.h"

namespace mmd::telemetry {
class Tracer;
}

namespace mmd::sw {

/// Per-slave-core execution context handed to kernels: the core id within the
/// core group, its private local store, and its DMA engine.
struct SlaveCtx {
  std::size_t core_id = 0;
  LocalStore* local_store = nullptr;
  DmaEngine* dma = nullptr;
};

/// Athread-style fork/join pool over the 64 CPEs of one core group
/// (paper §2.1.2: "each process launches 64 threads ... using the Athread
/// multithreading library").
///
/// `num_slave_cores` logical CPEs are multiplexed onto at most
/// `max_os_threads` OS threads; each logical core keeps its own LocalStore
/// and DmaEngine across invocations so stats accumulate per core.
///
/// The OS threads are PERSISTENT: spawned once in the constructor and parked
/// on a condition variable between invocations, so each `run()` costs one
/// fork/join barrier instead of a spawn/join of every thread (an MD step
/// issues 2-3 kernel launches — at the old per-run spawn cost the dispatch
/// overhead was a measurable slice of small steps). The calling thread
/// participates as one executor, exactly as on the Sunway MPE. Exceptions
/// thrown by the kernel on any executor are captured and the first one is
/// rethrown from `run()` after the join; the pool stays usable afterwards.
///
/// EPOCH INTERLEAVING (campaign service mode): `run()` may be called from
/// any number of threads concurrently — epochs from different submitters are
/// serialized on an internal submit lock, FIFO-ish, so many jobs can share
/// one pool as their common executor. The moment one job's epoch joins, the
/// next waiting job's epoch is released: the pool never parks while any
/// submitter has runnable work. PoolActivity records how the sharing played
/// out (epoch count, epochs that had to wait behind another submitter, and
/// the summed busy time, which over a wall-clock interval yields pool
/// utilization).
class SlaveCorePool {
 public:
  static constexpr std::size_t kSunwayCoreGroupSize = 64;

  /// Cumulative fork/join activity since construction or reset_activity().
  struct PoolActivity {
    std::uint64_t epochs = 0;            ///< completed run() invocations
    /// Epochs that found the submit lock held — i.e. a second job had
    /// runnable work while the pool was busy. Nonzero proves interleaving.
    std::uint64_t contended_epochs = 0;
    double busy_seconds = 0.0;           ///< summed wall time of all epochs
  };

  explicit SlaveCorePool(std::size_t num_slave_cores = kSunwayCoreGroupSize,
                         std::size_t local_store_bytes = LocalStore::kSunwayCapacity,
                         DmaCostModel dma_cost = {},
                         std::size_t max_os_threads = 0);
  ~SlaveCorePool();

  SlaveCorePool(const SlaveCorePool&) = delete;
  SlaveCorePool& operator=(const SlaveCorePool&) = delete;

  std::size_t size() const { return cores_.size(); }

  /// Run `fn(ctx)` once on every logical slave core (athread spawn/join).
  /// Safe to call from multiple threads; concurrent epochs serialize on the
  /// submit lock (see the class comment).
  void run(const std::function<void(SlaveCtx&)>& fn);

  /// Static partition of tasks [0, n) over the slave cores; each core
  /// processes a contiguous chunk (the paper's slab decomposition). The
  /// callback is invoked through a std::function per ITEM — for hot loops
  /// prefer parallel_for_chunks, which dispatches once per core.
  void parallel_for(std::size_t n,
                    const std::function<void(SlaveCtx&, std::size_t)>& fn);

  /// Chunked variant of parallel_for: `fn(ctx, begin, end)` is invoked at
  /// most once per core with that core's contiguous slab [begin, end), so
  /// the per-item std::function dispatch is amortized over the whole chunk.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(SlaveCtx&, std::size_t, std::size_t)>& fn);

  /// Aggregate DMA statistics over all slave cores.
  DmaStats aggregate_dma_stats() const;

  /// Maximum modeled DMA time over cores (the critical path of a fork/join
  /// phase).
  double max_modeled_dma_time() const;

  void reset_stats();

  /// Fork/join activity snapshot (thread-safe).
  PoolActivity activity() const;
  void reset_activity();

  /// Direct access to one core's context (for tests and cost-model readers).
  SlaveCtx& core(std::size_t i) { return *ctxs_[i]; }
  const SlaveCtx& core(std::size_t i) const { return *ctxs_[i]; }

  /// Number of OS threads executing kernels (including the calling thread).
  std::size_t os_threads() const { return os_threads_; }

 private:
  struct Core {
    std::unique_ptr<LocalStore> store;
    std::unique_ptr<DmaEngine> dma;
  };

  /// Pull logical cores off the shared counter until the epoch's work is
  /// exhausted; called by the rank thread and every parked worker.
  void drain_cores();
  void worker_loop();

  std::vector<Core> cores_;
  std::vector<std::unique_ptr<SlaveCtx>> ctxs_;
  std::size_t os_threads_;

  // Submitter serialization + activity accounting. submit_mu_ is held for a
  // whole run() (publish, drain, join, telemetry fold) so concurrent jobs
  // interleave at epoch granularity; activity_ is guarded by it.
  mutable std::mutex submit_mu_;
  PoolActivity activity_;

  // Persistent-worker barrier state. `epoch_` names the current run();
  // workers park on work_cv_ until it advances, the caller parks on done_cv_
  // until every worker has drained the epoch.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t workers_done_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;

  // The in-flight job (valid while an epoch is active). Kernel + telemetry
  // binding are published under mu_ before the epoch advances.
  const std::function<void(SlaveCtx&)>* job_ = nullptr;
  telemetry::Tracer* job_tracer_ = nullptr;
  int job_parent_rank_ = -1;
  std::atomic<std::size_t> next_core_{0};
};

}  // namespace mmd::sw
