#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sunway/dma.h"
#include "sunway/local_store.h"

namespace mmd::sw {

/// Per-slave-core execution context handed to kernels: the core id within the
/// core group, its private local store, and its DMA engine.
struct SlaveCtx {
  std::size_t core_id = 0;
  LocalStore* local_store = nullptr;
  DmaEngine* dma = nullptr;
};

/// Athread-style fork/join pool over the 64 CPEs of one core group
/// (paper §2.1.2: "each process launches 64 threads ... using the Athread
/// multithreading library").
///
/// `num_slave_cores` logical CPEs are multiplexed onto at most
/// `max_os_threads` OS threads; each logical core keeps its own LocalStore
/// and DmaEngine across invocations so stats accumulate per core.
class SlaveCorePool {
 public:
  static constexpr std::size_t kSunwayCoreGroupSize = 64;

  explicit SlaveCorePool(std::size_t num_slave_cores = kSunwayCoreGroupSize,
                         std::size_t local_store_bytes = LocalStore::kSunwayCapacity,
                         DmaCostModel dma_cost = {},
                         std::size_t max_os_threads = 0);
  ~SlaveCorePool();

  SlaveCorePool(const SlaveCorePool&) = delete;
  SlaveCorePool& operator=(const SlaveCorePool&) = delete;

  std::size_t size() const { return cores_.size(); }

  /// Run `fn(ctx)` once on every logical slave core (athread spawn/join).
  void run(const std::function<void(SlaveCtx&)>& fn);

  /// Static partition of tasks [0, n) over the slave cores; each core
  /// processes a contiguous chunk (the paper's slab decomposition).
  void parallel_for(std::size_t n,
                    const std::function<void(SlaveCtx&, std::size_t)>& fn);

  /// Aggregate DMA statistics over all slave cores.
  DmaStats aggregate_dma_stats() const;

  /// Maximum modeled DMA time over cores (the critical path of a fork/join
  /// phase).
  double max_modeled_dma_time() const;

  void reset_stats();

  /// Direct access to one core's context (for tests).
  SlaveCtx& core(std::size_t i) { return *ctxs_[i]; }

 private:
  struct Core {
    std::unique_ptr<LocalStore> store;
    std::unique_ptr<DmaEngine> dma;
  };

  std::vector<Core> cores_;
  std::vector<std::unique_ptr<SlaveCtx>> ctxs_;
  std::size_t os_threads_;
};

}  // namespace mmd::sw
