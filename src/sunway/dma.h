#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace mmd::sw {

/// Traffic and op counters for one DMA engine. The paper's Fig. 9 result —
/// compacted tables beat traditional tables by 54.7% — is driven entirely by
/// the number of DMA get operations, which these counters expose.
struct DmaStats {
  std::uint64_t get_ops = 0;
  std::uint64_t put_ops = 0;
  std::uint64_t get_bytes = 0;
  std::uint64_t put_bytes = 0;

  DmaStats& operator+=(const DmaStats& o) {
    get_ops += o.get_ops;
    put_ops += o.put_ops;
    get_bytes += o.get_bytes;
    put_bytes += o.put_bytes;
    return *this;
  }

  std::uint64_t total_ops() const { return get_ops + put_ops; }
  std::uint64_t total_bytes() const { return get_bytes + put_bytes; }
};

/// Alpha-beta cost parameters for modeled DMA time. Defaults approximate the
/// SW26010: ~0.25 us fixed cost per DMA descriptor round trip, ~8 GB/s
/// per-CPE bandwidth for well-formed transfers.
struct DmaCostModel {
  double latency_s = 0.25e-6;           // per-op startup
  double bandwidth_bytes_per_s = 8e9;   // streaming bandwidth

  double cost(std::uint64_t ops, std::uint64_t bytes) const {
    return static_cast<double>(ops) * latency_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// Software model of a CPE DMA engine moving data between main memory and the
/// local store.
///
/// Transfers are executed as immediate memcpys (both "memories" are host
/// RAM), but every operation is metered: counters feed the table-compaction
/// benchmarks, and `modeled_time()` applies the alpha-beta model so benches
/// can report Sunway-shaped runtimes. Asynchronous gets/puts complete
/// immediately; the double-buffer strategy accounts for overlap by combining
/// `modeled_time()` with its own compute timeline (see md::BlockPipeline).
class DmaEngine {
 public:
  explicit DmaEngine(DmaCostModel cost = {}) : cost_(cost) {}

  /// Main memory -> local store.
  void get(void* local_dst, const void* main_src, std::size_t bytes) {
    std::memcpy(local_dst, main_src, bytes);
    ++stats_.get_ops;
    stats_.get_bytes += bytes;
  }

  /// Local store -> main memory.
  void put(void* main_dst, const void* local_src, std::size_t bytes) {
    std::memcpy(main_dst, local_src, bytes);
    ++stats_.put_ops;
    stats_.put_bytes += bytes;
  }

  /// Handle for an in-flight asynchronous transfer. In this model transfers
  /// complete eagerly, so wait() only exists to keep call sites shaped like
  /// real double-buffered code.
  class Handle {
   public:
    void wait() { done_ = true; }
    bool done() const { return done_; }

   private:
    bool done_ = false;
  };

  Handle get_async(void* local_dst, const void* main_src, std::size_t bytes) {
    get(local_dst, main_src, bytes);
    return Handle{};
  }

  Handle put_async(void* main_dst, const void* local_src, std::size_t bytes) {
    put(main_dst, local_src, bytes);
    return Handle{};
  }

  /// One strided transfer segment of a batched (descriptor-chained) DMA.
  struct Run {
    void* dst;
    const void* src;
    std::size_t bytes;
  };

  /// Gather several main-memory runs into the local store with a single DMA
  /// descriptor chain — the SW26010 supports strided transfers, so a block
  /// window fetch costs one op regardless of its row count.
  void get_batched(const Run* runs, std::size_t n) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(runs[i].dst, runs[i].src, runs[i].bytes);
      total += runs[i].bytes;
    }
    ++stats_.get_ops;
    stats_.get_bytes += total;
  }

  const DmaStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DmaStats{}; }

  /// Modeled wall time [s] of all transfers so far under the cost model.
  double modeled_time() const {
    return cost_.cost(stats_.total_ops(), stats_.total_bytes());
  }

  const DmaCostModel& cost_model() const { return cost_; }

 private:
  DmaCostModel cost_;
  DmaStats stats_;
};

}  // namespace mmd::sw
