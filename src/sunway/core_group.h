#pragma once

#include <cstddef>

#include "sunway/slave_pool.h"

namespace mmd::sw {

/// Shape parameters of the simulated SW26010 core group (paper Fig. 4).
struct CoreGroupConfig {
  std::size_t slave_cores = SlaveCorePool::kSunwayCoreGroupSize;
  std::size_t local_store_bytes = LocalStore::kSunwayCapacity;
  DmaCostModel dma_cost{};
  /// Cap on real OS threads backing the logical CPEs (0 = hardware default).
  std::size_t max_os_threads = 0;
};

/// One MPE (master core) plus its CPE cluster. The MPE side is simply the
/// calling thread — it handles communication and orchestration, mirroring the
/// paper's split: "the master cores are responsible for inter-node
/// communication and the slave cores are responsible for the EAM
/// computation".
class CoreGroup {
 public:
  explicit CoreGroup(const CoreGroupConfig& cfg = {})
      : cfg_(cfg),
        pool_(cfg.slave_cores, cfg.local_store_bytes, cfg.dma_cost,
              cfg.max_os_threads) {}

  SlaveCorePool& slaves() { return pool_; }
  const CoreGroupConfig& config() const { return cfg_; }

 private:
  CoreGroupConfig cfg_;
  SlaveCorePool pool_;
};

}  // namespace mmd::sw
