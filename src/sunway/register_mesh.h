#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace mmd::sw {

/// Software model of the SW26010 CPE register-communication mesh.
///
/// The 64 CPEs of a core group form an 8x8 grid; a core can move register
/// payloads to another core in the same row or the same column in a few
/// cycles, and to any other core in two hops (row then column). The paper
/// considers distributing the alloy interpolation tables across the local
/// stores of neighbor slave cores and fetching entries over this mesh
/// (§2.1.2), and its conclusion (§5) asks for one-sided register
/// communication to make such irregular transfers practical. This model
/// implements exactly that one-sided style: `remote_get` pulls bytes out of
/// a peer core's local store, metering messages, bytes, and hop-weighted
/// modeled time.
/// Cost parameters of one register-communication hop.
struct RegisterCostModel {
  double hop_latency_s = 1.1e-8;        ///< ~16 cycles at 1.45 GHz per hop
  double bandwidth_bytes_per_s = 46e9;  ///< 256-bit per cycle peak
};

class RegisterMesh {
 public:
  using CostModel = RegisterCostModel;

  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t hops = 0;

    Stats& operator+=(const Stats& o) {
      messages += o.messages;
      bytes += o.bytes;
      hops += o.hops;
      return *this;
    }
  };

  explicit RegisterMesh(int rows = 8, int cols = 8,
                        RegisterCostModel cost = RegisterCostModel())
      : rows_(rows), cols_(cols), cost_(cost),
        stats_(static_cast<std::size_t>(rows) * cols) {
    if (rows <= 0 || cols <= 0) {
      throw std::invalid_argument("RegisterMesh: bad dimensions");
    }
  }

  int size() const { return rows_ * cols_; }

  /// Mesh hops between two cores: 0 (same), 1 (same row or column), else 2.
  int hops(int from, int to) const {
    check_core(from);
    check_core(to);
    if (from == to) return 0;
    const int fr = from / cols_, fc = from % cols_;
    const int tr = to / cols_, tc = to % cols_;
    return (fr == tr || fc == tc) ? 1 : 2;
  }

  /// One-sided pull of `bytes` from core `owner`'s local store into `dst`
  /// (the caller's buffer), accounted against the calling core `me`.
  void remote_get(int me, int owner, void* dst, const void* src,
                  std::size_t bytes) {
    std::memcpy(dst, src, bytes);
    Stats& s = stats_[static_cast<std::size_t>(me)];
    ++s.messages;
    s.bytes += bytes;
    s.hops += static_cast<std::uint64_t>(hops(me, owner));
  }

  const Stats& stats(int core) const {
    check_core(core);
    return stats_[static_cast<std::size_t>(core)];
  }

  Stats total_stats() const {
    Stats t;
    for (const auto& s : stats_) t += s;
    return t;
  }

  /// Modeled time spent by `core` on mesh transfers.
  double modeled_time(int core) const {
    const Stats& s = stats(core);
    return static_cast<double>(s.hops) * cost_.hop_latency_s +
           static_cast<double>(s.bytes) / cost_.bandwidth_bytes_per_s;
  }

  double max_modeled_time() const {
    double m = 0.0;
    for (int c = 0; c < size(); ++c) m = std::max(m, modeled_time(c));
    return m;
  }

  void reset_stats() {
    for (auto& s : stats_) s = Stats{};
  }

 private:
  void check_core(int c) const {
    if (c < 0 || c >= size()) throw std::out_of_range("RegisterMesh: bad core id");
  }

  int rows_, cols_;
  CostModel cost_;
  std::vector<Stats> stats_;
};

}  // namespace mmd::sw
