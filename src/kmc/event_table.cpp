#include "kmc/event_table.h"

#include <algorithm>

namespace mmd::kmc {

void EventTable::reset(std::size_t n_sites) {
  n_slots_ = n_sites * static_cast<std::size_t>(kSlotsPerSite);
  cap_ = 1;
  while (cap_ < std::max<std::size_t>(n_slots_, 1)) cap_ <<= 1;
  tree_.assign(2 * cap_, 0.0);
  touched_.assign(n_sites, 0);
  touched_list_.clear();
  active_slots_ = 0;
}

void EventTable::clear() {
  for (const std::uint32_t site : touched_list_) {
    const std::size_t base = static_cast<std::size_t>(site) * kSlotsPerSite;
    for (int k = 0; k < kSlotsPerSite; ++k) {
      if (tree_[cap_ + base + k] != 0.0) write_leaf(base + k, 0.0);
    }
    touched_[site] = 0;
  }
  touched_list_.clear();
}

void EventTable::write_leaf(std::size_t slot, double rate) {
  const double prev = tree_[cap_ + slot];
  if (prev == 0.0 && rate != 0.0) {
    ++active_slots_;
  } else if (prev != 0.0 && rate == 0.0) {
    --active_slots_;
  }
  tree_[cap_ + slot] = rate;
  for (std::size_t i = (cap_ + slot) >> 1; i >= 1; i >>= 1) {
    tree_[i] = tree_[2 * i] + tree_[2 * i + 1];
  }
}

void EventTable::set_rate(std::size_t site, int k, double rate) {
  if (touched_[site] == 0) {
    touched_[site] = 1;
    touched_list_.push_back(static_cast<std::uint32_t>(site));
  }
  write_leaf(site * static_cast<std::size_t>(kSlotsPerSite) +
                 static_cast<std::size_t>(k),
             rate);
}

void EventTable::clear_site(std::size_t site) {
  const std::size_t base = site * static_cast<std::size_t>(kSlotsPerSite);
  for (int k = 0; k < kSlotsPerSite; ++k) {
    if (tree_[cap_ + base + k] != 0.0) write_leaf(base + k, 0.0);
  }
}

std::size_t EventTable::sample(double pick) const {
  if (total() <= 0.0) return npos;
  std::size_t i = 1;
  while (i < cap_) {
    i <<= 1;
    const double left = tree_[i];
    if (pick >= left) {
      pick -= left;
      ++i;
    }
  }
  const std::size_t slot = i - cap_;
  if (tree_[i] != 0.0) return slot;
  // FP edge: a pick that rounds past every active leaf. Deterministic
  // fallback to the highest-index active slot (mirrors the linear scan's
  // "last event" convention); never taken for picks strictly inside a
  // leaf's interval.
  for (std::size_t s = n_slots_; s-- > 0;) {
    if (tree_[cap_ + s] != 0.0) return s;
  }
  return npos;
}

}  // namespace mmd::kmc
