#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kmc/cluster_stats.h"
#include "lattice/geometry.h"

namespace mmd::kmc {

/// Cluster the given global vacancy site ranks (typically the gather of all
/// ranks' vacancies) on the given lattice. O(N) with hashing.
ClusterStats cluster_vacancies(const lat::BccGeometry& geo,
                               std::span<const std::int64_t> vacancy_sites);

}  // namespace mmd::kmc
