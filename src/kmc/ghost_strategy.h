#pragma once

namespace mmd::kmc {

/// Ghost-site communication strategies for the sublattice KMC loop.
enum class GhostStrategy {
  /// The SPPARKS/KMCLib pattern (paper Fig. 8b/c): before a sector, GET the
  /// whole ghost shell of the sector from the neighbors; after the sector,
  /// PUT the whole shell back. Static pattern, all sites transferred whether
  /// updated or not.
  Traditional,
  /// The paper's on-demand strategy via two-sided messages: after a sector
  /// only the sites actually modified are sent; the receiver must MPI_Probe
  /// because sources/sizes are dynamic, and every neighbor pair exchanges a
  /// message even when empty (the zero-size handshake the paper criticizes).
  OnDemandTwoSided,
  /// The same strategy via one-sided puts into a window: no empty messages;
  /// a fence (barrier) completes the epoch.
  OnDemandOneSided,
};

}  // namespace mmd::kmc
