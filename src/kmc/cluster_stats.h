#pragma once

#include <cstdint>

#include "util/stats.h"

namespace mmd::kmc {

/// Vacancy-cluster census: connected components of vacancy sites under
/// first-nearest-neighbor BCC adjacency. This quantifies the clustering the
/// paper demonstrates visually in Fig. 17 (dispersed after MD, aggregated
/// after KMC): clustering shows up as a growing mean/max cluster size and a
/// shrinking cluster count.
struct ClusterStats {
  std::uint64_t num_vacancies = 0;
  std::uint64_t num_clusters = 0;
  double mean_size = 0.0;
  std::uint64_t max_size = 0;
  /// Fraction of vacancies that have at least one vacancy 1NN.
  double clustered_fraction = 0.0;
  util::Histogram size_histogram;
};

}  // namespace mmd::kmc
