#pragma once

#include <cstdint>
#include <vector>

#include "core/stage.h"
#include "kmc/cluster_stats.h"
#include "kmc/model.h"
#include "util/rng.h"

namespace mmd::kmc {

/// Parameters of the stochastic cluster dynamics (SCD) estimator — the
/// coarse propagator of the sampled long-time mode (PAPERS.md, arXiv
/// 1412.0640; docs/SAMPLING.md). Rate constants are seeded from the same
/// migration energetics the detailed KMC model uses, so the coarse and
/// detailed propagators describe the same material.
struct ScdParams {
  double prefactor = 1e13;           ///< attempt frequency nu [1/s]
  double migration_barrier_ev = 0.7; ///< monovacancy migration barrier E_m
  double temperature_k = 600.0;
  /// Binding energy of a divacancy / of a vacancy to the bulk void surface
  /// [eV]; sizes in between follow the capillarity interpolation
  /// Eb(s) = Eb_inf - (Eb_inf - Eb_2) * (s^(2/3) - (s-1)^(2/3)) / (2^(2/3) - 1).
  double binding_dimer_ev = 0.2;
  double binding_bulk_ev = 1.86;
  /// Geometric capture efficiency of the absorption rate (dimensionless).
  double capture_factor = 1.0;
  /// Lattice sites in the box — the concentration normalization volume.
  std::uint64_t sites = 1;

  /// Derive from the KMC stage's configuration and box size.
  static ScdParams from(const KmcConfig& cfg, std::uint64_t sites);
};

/// Mean-field stochastic cluster dynamics over vacancy-cluster size classes:
/// the population n_s (number of clusters of s vacancies) evolves by
/// monovacancy absorption, dimerization, and thermal emission, selected with
/// BKL residence-time sampling over the aggregate class rates. Every event
/// moves whole vacancies between classes, so the total vacancy count
/// sum(s * n_s) is conserved exactly — the invariant the sanity tests pin.
///
/// This is O(size classes) per event instead of O(lattice sites), which is
/// what makes warming strides between detailed windows nearly free.
class ScdModel {
 public:
  explicit ScdModel(const ScdParams& params);

  /// Seed the population from a detailed-window cluster census.
  void seed(const ClusterStats& census);

  /// Advance the population by `time_budget_s` of MC time (BKL loop; stops
  /// early only when every rate is zero or `max_events` is hit). Returns the
  /// events executed.
  std::uint64_t advance(double time_budget_s, util::Rng& rng,
                        std::uint64_t max_events = 1u << 20);

  std::uint64_t total_vacancies() const;
  /// Number of clusters, singletons included — comparable to
  /// ClusterStats::num_clusters.
  std::uint64_t cluster_count() const;
  /// n_s, indexed by cluster size (index 0 unused).
  const std::vector<std::uint64_t>& population() const { return pop_; }

  /// Window save/restore: replicates restart from the same seeded
  /// population, paired only by their RNG streams.
  std::vector<std::uint64_t> save() const { return pop_; }
  void restore(std::vector<std::uint64_t> pop) { pop_ = std::move(pop); }

  /// Binding energy of size-s cluster losing one vacancy [eV] (s >= 2).
  double binding_ev(std::uint64_t s) const;

 private:
  double absorption_rate(std::uint64_t s) const;  ///< monovacancy + size-s
  double emission_rate(std::uint64_t s) const;    ///< size-s -> (s-1) + mono

  ScdParams p_;
  double kT_ = 1.0;
  double jump_rate_ = 0.0;  ///< nu * exp(-E_m / kT)
  std::vector<std::uint64_t> pop_;  ///< pop_[s] = clusters of size s
};

/// The coarse stage propagator of the sampled pipeline: between two detailed
/// KMC windows it advances the cluster-population estimate with RNG-paired
/// ScdModel replicates seeded from the latest window's vacancy census
/// (state.vacancies_after, a rank-0 gather). advance() moves
/// clock.scd_time_s forward by the configured time budget on every rank and
/// folds the replicate mean / CI into state.sampled on rank 0.
class ScdStage : public core::StagePropagator {
 public:
  ScdStage(const lat::BccGeometry& geo, const ScdParams& params,
           int replicates, std::uint64_t seed);

  const char* name() const override { return "scd"; }

  /// Configure the next warming stride: `window_index` keys the replicate
  /// RNG streams (so a resumed schedule replays the same draws) and
  /// `time_budget_s` is the MC time the stride covers.
  void set_window(std::uint64_t window_index, double time_budget_s);

  core::StageReport advance(comm::Comm& comm, core::StageState& state,
                            core::StageClock& clock) override;

 private:
  const lat::BccGeometry& geo_;
  ScdParams params_;
  int replicates_;
  std::uint64_t seed_;
  std::uint64_t window_index_ = 0;
  double time_budget_s_ = 0.0;
};

}  // namespace mmd::kmc
