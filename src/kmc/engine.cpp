#include "kmc/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "telemetry/session.h"
#include "telemetry/trace.h"

namespace mmd::kmc {

KmcSetup::KmcSetup(const KmcConfig& cfg, int nranks)
    : geo(cfg.nx, cfg.ny, cfg.nz, cfg.lattice_constant),
      dd(geo, nranks,
         lat::required_halo_cells(cfg.lattice_constant, cfg.cutoff) + 1) {}

KmcEngine::KmcEngine(const KmcConfig& cfg, const lat::BccGeometry& geo,
                     const lat::DomainDecomposition& dd,
                     const pot::EamTableSet& tables, int rank,
                     GhostStrategy strategy)
    : cfg_(cfg),
      model_(cfg, geo, dd, tables, rank),
      ghosts_(geo, dd, rank, model_.box().halo, strategy),
      base_rng_(cfg.seed) {
  table_.reset(model_.owned_indices().size());
  dirty_mark_.assign(model_.owned_indices().size(), 0);
}

void KmcEngine::initialize_random(comm::Comm& comm, double vacancy_concentration,
                                  double solute_fraction) {
  const util::Rng site_rng(cfg_.seed ^ 0x5eedf00dull);
  for (std::size_t idx : model_.owned_indices()) {
    util::Rng r = site_rng.split(
        static_cast<std::uint64_t>(model_.site_rank_of(idx)));
    SiteState s = SiteState::Fe;
    if (r.uniform() < vacancy_concentration) {
      s = SiteState::Vacancy;
    } else if (solute_fraction > 0.0 && r.uniform() < solute_fraction) {
      s = SiteState::Cu;
    }
    model_.set_state(idx, s);
  }
  comm_time_.start();
  ghosts_.initialize(comm, model_);
  comm_time_.stop();
  initialized_ = true;
}

void KmcEngine::initialize_sites(comm::Comm& comm,
                                 std::span<const std::int64_t> owned_vacancies) {
  for (std::int64_t gid : owned_vacancies) {
    model_.set_state_global(gid, SiteState::Vacancy);
  }
  comm_time_.start();
  ghosts_.initialize(comm, model_);
  comm_time_.stop();
  initialized_ = true;
}

KmcEngineState KmcEngine::engine_state() const {
  KmcEngineState s;
  s.events = stats_.events;
  s.cycles = stats_.cycles;
  s.mc_time = stats_.mc_time;
  s.last_max_rate = last_max_rate_;
  s.rng_state = base_rng_.state();
  return s;
}

void KmcEngine::restore_state(comm::Comm& comm, const KmcEngineState& s) {
  stats_.events = s.events;
  stats_.cycles = s.cycles;
  stats_.mc_time = s.mc_time;
  last_max_rate_ = s.last_max_rate;
  base_rng_.set_state(s.rng_state);
  comm_time_.start();
  ghosts_.initialize(comm, model_);
  comm_time_.stop();
  initialized_ = true;
}

int KmcEngine::sector_of(const lat::LocalCoord& c) const {
  const lat::LocalBox& b = model_.box();
  const int hx = c.x >= b.lx / 2 ? 1 : 0;
  const int hy = c.y >= b.ly / 2 ? 1 : 0;
  const int hz = c.z >= b.lz / 2 ? 1 : 0;
  return (hz << 2) | (hy << 1) | hx;
}

void KmcEngine::enumerate_candidates(std::size_t vac) {
  const lat::LocalBox& b = model_.box();
  const lat::LocalCoord c = b.coord_of(vac);
  const std::uint32_t ord = model_.owned_ordinal(vac);
  const auto& nn = model_.nn_offsets(c.sub);
  for (std::size_t k = 0; k < nn.size(); ++k) {
    const auto& o = nn[k];
    const lat::LocalCoord n{c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub};
    if (!b.in_storage(n)) continue;
    const std::size_t ni = b.entry_index(n);
    if (!is_atom(model_.state(ni))) continue;
    batch_.push_back({vac, ni});
    slots_.push_back(static_cast<std::size_t>(ord) * EventTable::kSlotsPerSite + k);
  }
}

void KmcEngine::apply_batch(double* max_rate) {
  // Exchange energies: master-core path, or batched on the slave cores
  // (paper §2.2 — the same interpolation machinery as MD). Each dE is a pure
  // function of its candidate's neighborhood, so rating a dirty subset gives
  // bit-identical values to rating the full population.
  const std::vector<double>* dE;
  if (slave_rates_ != nullptr) {
    dE = &slave_rates_->exchange_dE_batch(model_, batch_);
  } else {
    de_scratch_.clear();
    de_scratch_.reserve(batch_.size());
    for (const EventCandidate& ev : batch_) {
      de_scratch_.push_back(model_.exchange_dE(ev.vac, ev.nb));
    }
    dE = &de_scratch_;
  }
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    const double k = model_.rate((*dE)[i]);
    table_.set_rate(EventTable::site_of(slots_[i]),
                    EventTable::offset_of(slots_[i]), k);
    if (max_rate != nullptr) *max_rate = std::max(*max_rate, k);
  }
  rates_recomputed_ += batch_.size();
}

void KmcEngine::rebuild_sector_table(int sector, double* max_rate) {
  MMD_TRACE_SCOPE("kmc.rates.build");
  table_.clear();
  batch_.clear();
  slots_.clear();
  const lat::LocalBox& b = model_.box();
  for (std::size_t idx : model_.owned_indices()) {
    if (model_.state(idx) != SiteState::Vacancy) continue;
    if (sector_of(b.coord_of(idx)) != sector) continue;
    enumerate_candidates(idx);
  }
  apply_batch(max_rate);
}

void KmcEngine::update_after_event(int sector, std::int64_t gid_vac,
                                   std::int64_t gid_atom, double* max_rate) {
  MMD_TRACE_SCOPE("kmc.rates.update");
  const lat::LocalBox& b = model_.box();
  dirty_sites_.clear();
  // A candidate block needs a refresh when its site is an in-sector owned
  // vacancy near a flipped site (rates or partners changed) or when it holds
  // stale slots (the site stopped being a vacancy: exactly the swapped
  // vacancy site itself). Every local image of the two swapped gids is a
  // flip center — periodic wraps can place one inside the halo shell of a
  // distant-looking region.
  const auto consider = [&](const lat::LocalCoord& c) {
    if (!b.owns(c)) return;
    if (sector_of(c) != sector) return;
    const std::size_t idx = b.entry_index(c);
    const std::uint32_t ord = model_.owned_ordinal(idx);
    if (dirty_mark_[ord] != 0) return;
    if (model_.state(idx) != SiteState::Vacancy && !table_.site_touched(ord)) {
      return;
    }
    dirty_mark_[ord] = 1;
    dirty_sites_.push_back(idx);
  };
  for (const std::int64_t gid : {gid_vac, gid_atom}) {
    model_.images_of_global(gid, images_);
    for (const std::size_t img : images_) {
      const lat::LocalCoord c = b.coord_of(img);
      consider(c);
      for (const auto& o : model_.invalidation_offsets(c.sub)) {
        const lat::LocalCoord n{c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub};
        if (!b.in_storage(n)) continue;
        consider(n);
      }
    }
  }
  batch_.clear();
  slots_.clear();
  for (const std::size_t idx : dirty_sites_) {
    table_.clear_site(model_.owned_ordinal(idx));
    if (model_.state(idx) == SiteState::Vacancy) enumerate_candidates(idx);
  }
  apply_batch(max_rate);
  for (const std::size_t idx : dirty_sites_) {
    dirty_mark_[model_.owned_ordinal(idx)] = 0;
  }
  // Candidates that survived the event untouched — the rescan path would
  // have recomputed all of them. Every batch entry rates nonzero (rate() is
  // an exponential), so active-after minus the batch is exactly the reuse.
  rates_reused_ += table_.active_slots() - batch_.size();
}

void KmcEngine::process_sector(comm::Comm& comm, int sector, double dt,
                               std::uint64_t cycle) {
  MMD_TRACE_SCOPE("kmc.sector");
  const std::uint64_t events_before = stats_.events;
  comm_time_.start();
  {
    MMD_TRACE_SCOPE("kmc.ghost.before");
    ghosts_.before_sector(comm, model_, sector);
  }
  comm_time_.stop();

  comp_.start();
  util::Rng rng = base_rng_.split(cycle * 8 + static_cast<std::uint64_t>(sector))
                      .split(static_cast<std::uint64_t>(model_.rank()) + 1);
  const lat::LocalBox& b = model_.box();
  double max_rate = 0.0;
  rebuild_sector_table(sector, &max_rate);

  std::vector<std::int64_t> touched;
  double tau = 0.0;
  while (true) {
    const double total = table_.total();
    if (total <= 0.0) break;
    // BKL residence time: advance the sector clock before executing; if the
    // event would land beyond dt it is not executed this cycle.
    tau += -std::log(std::max(rng.uniform(), 1e-300)) / total;
    if (tau > dt) break;
    const double pick = rng.uniform() * total;
    const std::size_t slot = table_.sample(pick);
    if (slot == EventTable::npos) break;  // FP guard; total() > 0 above
    candidates_seen_ += table_.active_slots();
    // Decode the canonical slot back into the candidate it addresses: the
    // block's owned site is the vacancy, the in-block index its 1NN offset.
    const std::size_t vac = model_.owned_indices()[EventTable::site_of(slot)];
    const lat::LocalCoord cv = b.coord_of(vac);
    const auto& o = model_.nn_offsets(cv.sub)[static_cast<std::size_t>(
        EventTable::offset_of(slot))];
    const std::size_t nb =
        b.entry_index({cv.x + o.dx, cv.y + o.dy, cv.z + o.dz, o.to_sub});
    const std::int64_t gid_vac = model_.site_rank_of(vac);
    const std::int64_t gid_atom = model_.site_rank_of(nb);
    const SiteState atom = model_.state(nb);
    if (cfg_.debug_events) {
      std::fprintf(stderr, "[ev] cyc %llu sec %d rank %d: vac %lld <-> %lld (%d)\n",
                   static_cast<unsigned long long>(cycle), sector, model_.rank(),
                   static_cast<long long>(gid_vac),
                   static_cast<long long>(gid_atom), static_cast<int>(atom));
    }
    if (cfg_.record_events) event_log_.emplace_back(gid_vac, gid_atom);
    model_.set_state_global(gid_vac, atom);
    model_.set_state_global(gid_atom, SiteState::Vacancy);
    touched.push_back(gid_vac);
    touched.push_back(gid_atom);
    ++stats_.events;
    if (cfg_.incremental) {
      update_after_event(sector, gid_vac, gid_atom, &max_rate);
    } else {
      rebuild_sector_table(sector, &max_rate);
    }
  }
  last_max_rate_ = std::max(last_max_rate_, max_rate);
  // The table is per-sector transient: leave it empty so the next sector
  // (and a checkpoint-resumed engine) starts from the same clean slate.
  table_.clear();

  // Final states of all touched sites (a site may have been swapped twice).
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  std::vector<SiteUpdate> updates;
  updates.reserve(touched.size());
  std::vector<std::size_t> images;
  for (std::int64_t gid : touched) {
    model_.images_of_global(gid, images);
    updates.push_back({gid, static_cast<std::int32_t>(model_.state(images[0])), 0});
  }
  comp_.stop();

  comm_time_.start();
  {
    MMD_TRACE_SCOPE("kmc.ghost.after");
    ghosts_.after_sector(comm, model_, sector, updates);
  }
  comm_time_.stop();

  const std::uint64_t executed = stats_.events - events_before;
  if (executed > 0) telemetry::count("kmc.events", executed);
  if (executed > 0 && !cfg_.debug_events) {
    telemetry::count("kmc.events.debug_suppressed", executed);
  }
  telemetry::observe("kmc.sector_events", static_cast<double>(executed));
  // Event-table bookkeeping counters, accumulated per event and flushed once
  // per sector to keep registry lookups off the hot loop.
  if (rates_recomputed_ > 0) {
    telemetry::count("kmc.rates.recomputed", rates_recomputed_);
    rates_recomputed_ = 0;
  }
  if (rates_reused_ > 0) {
    telemetry::count("kmc.rates.reused", rates_reused_);
    rates_reused_ = 0;
  }
  if (candidates_seen_ > 0) {
    telemetry::count("kmc.events.candidates", candidates_seen_);
    candidates_seen_ = 0;
  }
}

std::uint64_t KmcEngine::run_cycles(comm::Comm& comm, int n) {
  const std::uint64_t before = stats_.events;
  // Upper bound on any single-event rate: barrier clamped at min_barrier.
  const double k_bound = cfg_.prefactor *
                         std::exp(-cfg_.min_barrier /
                                  (util::units::kBoltzmann * cfg_.temperature));
  for (int i = 0; i < n; ++i) {
    MMD_TRACE_SCOPE("kmc.cycle");
    // Time synchronization (paper: "collective operations used for time
    // synchronization"): dt derives from the fastest event seen globally in
    // the previous cycle, bounded by the analytic maximum.
    comm_time_.start();
    double k_max = 0.0;
    {
      MMD_TRACE_SCOPE("kmc.dt_sync");
      k_max = comm.allreduce_max(last_max_rate_);
    }
    comm_time_.stop();
    if (k_max <= 0.0) k_max = k_bound;
    const double dt = cfg_.dt_scale / k_max;
    last_max_rate_ = 0.0;
    for (int sector = 0; sector < 8; ++sector) {
      process_sector(comm, sector, dt, stats_.cycles);
    }
    stats_.mc_time += dt;
    ++stats_.cycles;
    telemetry::count("kmc.cycles");
  }
  return stats_.events - before;
}

void KmcEngine::run_to_threshold(comm::Comm& comm) {
  while (stats_.mc_time < cfg_.t_threshold) {
    run_cycles(comm, 1);
  }
}

std::vector<std::int64_t> KmcEngine::gather_vacancies(comm::Comm& comm) const {
  const auto mine = model_.owned_vacancy_sites();
  auto all = comm.gather_to<std::int64_t>(0, mine, comm::tags::kKmcVacancyGather);
  std::sort(all.begin(), all.end());
  return all;
}

double KmcEngine::vacancy_concentration(comm::Comm& comm) const {
  const auto vac = comm.allreduce_sum_u64(
      static_cast<std::uint64_t>(model_.count_owned_vacancies()));
  return static_cast<double>(vac) /
         static_cast<double>(model_.geometry().num_sites());
}

}  // namespace mmd::kmc
