#include "kmc/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "telemetry/session.h"
#include "telemetry/trace.h"

namespace mmd::kmc {

KmcSetup::KmcSetup(const KmcConfig& cfg, int nranks)
    : geo(cfg.nx, cfg.ny, cfg.nz, cfg.lattice_constant),
      dd(geo, nranks,
         lat::required_halo_cells(cfg.lattice_constant, cfg.cutoff) + 1) {}

KmcEngine::KmcEngine(const KmcConfig& cfg, const lat::BccGeometry& geo,
                     const lat::DomainDecomposition& dd,
                     const pot::EamTableSet& tables, int rank,
                     GhostStrategy strategy)
    : cfg_(cfg),
      model_(cfg, geo, dd, tables, rank),
      ghosts_(geo, dd, rank, model_.box().halo, strategy),
      base_rng_(cfg.seed) {}

void KmcEngine::initialize_random(comm::Comm& comm, double vacancy_concentration,
                                  double solute_fraction) {
  const util::Rng site_rng(cfg_.seed ^ 0x5eedf00dull);
  for (std::size_t idx : model_.owned_indices()) {
    util::Rng r = site_rng.split(
        static_cast<std::uint64_t>(model_.site_rank_of(idx)));
    SiteState s = SiteState::Fe;
    if (r.uniform() < vacancy_concentration) {
      s = SiteState::Vacancy;
    } else if (solute_fraction > 0.0 && r.uniform() < solute_fraction) {
      s = SiteState::Cu;
    }
    model_.set_state(idx, s);
  }
  comm_time_.start();
  ghosts_.initialize(comm, model_);
  comm_time_.stop();
  initialized_ = true;
}

void KmcEngine::initialize_sites(comm::Comm& comm,
                                 std::span<const std::int64_t> owned_vacancies) {
  for (std::int64_t gid : owned_vacancies) {
    model_.set_state_global(gid, SiteState::Vacancy);
  }
  comm_time_.start();
  ghosts_.initialize(comm, model_);
  comm_time_.stop();
  initialized_ = true;
}

KmcEngineState KmcEngine::engine_state() const {
  KmcEngineState s;
  s.events = stats_.events;
  s.cycles = stats_.cycles;
  s.mc_time = stats_.mc_time;
  s.last_max_rate = last_max_rate_;
  s.rng_state = base_rng_.state();
  return s;
}

void KmcEngine::restore_state(comm::Comm& comm, const KmcEngineState& s) {
  stats_.events = s.events;
  stats_.cycles = s.cycles;
  stats_.mc_time = s.mc_time;
  last_max_rate_ = s.last_max_rate;
  base_rng_.set_state(s.rng_state);
  comm_time_.start();
  ghosts_.initialize(comm, model_);
  comm_time_.stop();
  initialized_ = true;
}

int KmcEngine::sector_of(const lat::LocalCoord& c) const {
  const lat::LocalBox& b = model_.box();
  const int hx = c.x >= b.lx / 2 ? 1 : 0;
  const int hy = c.y >= b.ly / 2 ? 1 : 0;
  const int hz = c.z >= b.lz / 2 ? 1 : 0;
  return (hz << 2) | (hy << 1) | hx;
}

void KmcEngine::build_events(int sector, std::vector<Event>& out,
                             double* max_rate) {
  MMD_TRACE_SCOPE("kmc.rates.build");
  out.clear();
  const lat::LocalBox& b = model_.box();
  std::vector<EventCandidate> candidates;
  for (std::size_t idx : model_.owned_indices()) {
    if (model_.state(idx) != SiteState::Vacancy) continue;
    const lat::LocalCoord c = b.coord_of(idx);
    if (sector_of(c) != sector) continue;
    for (const auto& o : model_.nn_offsets(c.sub)) {
      const lat::LocalCoord n{c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub};
      if (!b.in_storage(n)) continue;
      const std::size_t ni = b.entry_index(n);
      if (!is_atom(model_.state(ni))) continue;
      candidates.push_back({idx, ni});
    }
  }
  // Exchange energies: master-core path, or batched on the slave cores
  // (paper §2.2 — the same interpolation machinery as MD).
  std::vector<double> dE;
  if (slave_rates_ != nullptr) {
    dE = slave_rates_->exchange_dE_batch(model_, candidates);
  } else {
    dE.reserve(candidates.size());
    for (const EventCandidate& ev : candidates) {
      dE.push_back(model_.exchange_dE(ev.vac, ev.nb));
    }
  }
  out.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double k = model_.rate(dE[i]);
    out.push_back({candidates[i].vac, candidates[i].nb, k});
    if (max_rate != nullptr) *max_rate = std::max(*max_rate, k);
  }
}

void KmcEngine::process_sector(comm::Comm& comm, int sector, double dt,
                               std::uint64_t cycle) {
  MMD_TRACE_SCOPE("kmc.sector");
  const std::uint64_t events_before = stats_.events;
  comm_time_.start();
  {
    MMD_TRACE_SCOPE("kmc.ghost.before");
    ghosts_.before_sector(comm, model_, sector);
  }
  comm_time_.stop();

  comp_.start();
  util::Rng rng = base_rng_.split(cycle * 8 + static_cast<std::uint64_t>(sector))
                      .split(static_cast<std::uint64_t>(model_.rank()) + 1);
  std::vector<Event> events;
  double max_rate = 0.0;
  build_events(sector, events, &max_rate);
  last_max_rate_ = std::max(last_max_rate_, max_rate);

  std::vector<std::int64_t> touched;
  double tau = 0.0;
  while (!events.empty()) {
    double total = 0.0;
    for (const Event& e : events) total += e.rate;
    if (total <= 0.0) break;
    // BKL residence time: advance the sector clock before executing; if the
    // event would land beyond dt it is not executed this cycle.
    tau += -std::log(std::max(rng.uniform(), 1e-300)) / total;
    if (tau > dt) break;
    double pick = rng.uniform() * total;
    std::size_t chosen = events.size() - 1;
    for (std::size_t i = 0; i < events.size(); ++i) {
      pick -= events[i].rate;
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    const Event ev = events[chosen];
    const std::int64_t gid_vac = model_.site_rank_of(ev.vac);
    const std::int64_t gid_atom = model_.site_rank_of(ev.nb);
    const SiteState atom = model_.state(ev.nb);
    static const bool kDebugEvents = std::getenv("MMD_KMC_DEBUG") != nullptr;
    if (kDebugEvents) {
      std::fprintf(stderr, "[ev] cyc %llu sec %d rank %d: vac %lld <-> %lld (%d)\n",
                   static_cast<unsigned long long>(cycle), sector, model_.rank(),
                   static_cast<long long>(gid_vac),
                   static_cast<long long>(gid_atom), static_cast<int>(atom));
    }
    model_.set_state_global(gid_vac, atom);
    model_.set_state_global(gid_atom, SiteState::Vacancy);
    touched.push_back(gid_vac);
    touched.push_back(gid_atom);
    ++stats_.events;
    double mr = 0.0;
    build_events(sector, events, &mr);
    last_max_rate_ = std::max(last_max_rate_, mr);
  }

  // Final states of all touched sites (a site may have been swapped twice).
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  std::vector<SiteUpdate> updates;
  updates.reserve(touched.size());
  std::vector<std::size_t> images;
  for (std::int64_t gid : touched) {
    model_.images_of_global(gid, images);
    updates.push_back({gid, static_cast<std::int32_t>(model_.state(images[0])), 0});
  }
  comp_.stop();

  comm_time_.start();
  {
    MMD_TRACE_SCOPE("kmc.ghost.after");
    ghosts_.after_sector(comm, model_, sector, updates);
  }
  comm_time_.stop();

  const std::uint64_t executed = stats_.events - events_before;
  if (executed > 0) telemetry::count("kmc.events", executed);
  telemetry::observe("kmc.sector_events", static_cast<double>(executed));
}

std::uint64_t KmcEngine::run_cycles(comm::Comm& comm, int n) {
  const std::uint64_t before = stats_.events;
  // Upper bound on any single-event rate: barrier clamped at min_barrier.
  const double k_bound = cfg_.prefactor *
                         std::exp(-cfg_.min_barrier /
                                  (util::units::kBoltzmann * cfg_.temperature));
  for (int i = 0; i < n; ++i) {
    MMD_TRACE_SCOPE("kmc.cycle");
    // Time synchronization (paper: "collective operations used for time
    // synchronization"): dt derives from the fastest event seen globally in
    // the previous cycle, bounded by the analytic maximum.
    comm_time_.start();
    double k_max = 0.0;
    {
      MMD_TRACE_SCOPE("kmc.dt_sync");
      k_max = comm.allreduce_max(last_max_rate_);
    }
    comm_time_.stop();
    if (k_max <= 0.0) k_max = k_bound;
    const double dt = cfg_.dt_scale / k_max;
    last_max_rate_ = 0.0;
    for (int sector = 0; sector < 8; ++sector) {
      process_sector(comm, sector, dt, stats_.cycles);
    }
    stats_.mc_time += dt;
    ++stats_.cycles;
    telemetry::count("kmc.cycles");
  }
  return stats_.events - before;
}

void KmcEngine::run_to_threshold(comm::Comm& comm) {
  while (stats_.mc_time < cfg_.t_threshold) {
    run_cycles(comm, 1);
  }
}

std::vector<std::int64_t> KmcEngine::gather_vacancies(comm::Comm& comm) const {
  const auto mine = model_.owned_vacancy_sites();
  auto all = comm.gather_to<std::int64_t>(0, mine, comm::tags::kKmcVacancyGather);
  std::sort(all.begin(), all.end());
  return all;
}

double KmcEngine::vacancy_concentration(comm::Comm& comm) const {
  const auto vac = comm.allreduce_sum_u64(
      static_cast<std::uint64_t>(model_.count_owned_vacancies()));
  return static_cast<double>(vac) /
         static_cast<double>(model_.geometry().num_sites());
}

}  // namespace mmd::kmc
