#include "kmc/okmc.h"

#include <algorithm>
#include <cmath>

namespace mmd::kmc {

OkmcEngine::OkmcEngine(const OkmcConfig& cfg)
    : cfg_(cfg),
      geo_(cfg.nx, cfg.ny, cfg.nz, cfg.lattice_constant),
      rng_(cfg.seed),
      kT_(util::units::kBoltzmann * cfg.temperature),
      hop_dist_(std::sqrt(3.0) / 2.0 * cfg.lattice_constant) {}

void OkmcEngine::initialize(const std::vector<util::Vec3>& vacancy_positions) {
  objects_.clear();
  time_ = 0.0;
  events_ = 0;
  for (const util::Vec3& r : vacancy_positions) {
    objects_.push_back({wrap(r), 1});
    coalesce_around(objects_.size() - 1);
  }
}

double OkmcEngine::binding_energy(int size) const {
  if (size < 2) return 0.0;
  // Capillary law anchored at E_b(2) and approaching E_f for large n:
  // E_b(n) = E_f - (E_f - E_b2) * (n^(2/3) - (n-1)^(2/3)) / (2^(2/3) - 1).
  const double shape =
      (std::pow(static_cast<double>(size), 2.0 / 3.0) -
       std::pow(static_cast<double>(size - 1), 2.0 / 3.0)) /
      (std::pow(2.0, 2.0 / 3.0) - 1.0);
  return cfg_.formation_energy - (cfg_.formation_energy - cfg_.binding_e2) * shape;
}

double OkmcEngine::hop_rate(int size) const {
  const double barrier =
      cfg_.migration_barrier +
      cfg_.mobility_slope * std::log(static_cast<double>(size));
  return cfg_.prefactor * std::exp(-barrier / kT_);
}

double OkmcEngine::emission_rate(int size) const {
  if (size < 2) return 0.0;
  const double barrier = cfg_.migration_barrier + binding_energy(size);
  // A size-n cluster offers ~n surface vacancies as emission candidates.
  return static_cast<double>(size) * cfg_.prefactor * std::exp(-barrier / kT_);
}

util::Vec3 OkmcEngine::wrap(util::Vec3 r) const {
  const util::Vec3 box = geo_.box_length();
  r.x -= box.x * std::floor(r.x / box.x);
  r.y -= box.y * std::floor(r.y / box.y);
  r.z -= box.z * std::floor(r.z / box.z);
  return r;
}

void OkmcEngine::coalesce_around(std::size_t idx) {
  // Absorb every object within the sum of capture radii of `idx`; repeat
  // until stable (a merge grows the radius).
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t j = 0; j < objects_.size(); ++j) {
      if (j == idx) continue;
      const double reach =
          capture_radius(objects_[idx].size) + capture_radius(objects_[j].size);
      const double d2 = geo_.min_image(objects_[idx].r, objects_[j].r).norm2();
      if (d2 <= reach * reach) {
        // Size-weighted center of mass (minimum-image consistent).
        const auto wi = static_cast<double>(objects_[idx].size);
        const auto wj = static_cast<double>(objects_[j].size);
        const util::Vec3 d = geo_.min_image(objects_[idx].r, objects_[j].r);
        objects_[idx].r = wrap(objects_[idx].r + d * (wj / (wi + wj)));
        objects_[idx].size += objects_[j].size;
        objects_.erase(objects_.begin() + static_cast<std::ptrdiff_t>(j));
        if (j < idx) --idx;
        merged = true;
        break;
      }
    }
  }
}

bool OkmcEngine::step() {
  if (objects_.empty()) return false;
  // BKL over 2 event classes per object: hop, emission.
  double total = 0.0;
  for (const Object& o : objects_) {
    total += hop_rate(o.size) + emission_rate(o.size);
  }
  if (total <= 0.0) return false;
  time_ += -std::log(std::max(rng_.uniform(), 1e-300)) / total;
  double pick = rng_.uniform() * total;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    const double h = hop_rate(objects_[i].size);
    const double e = emission_rate(objects_[i].size);
    if (pick < h) {
      objects_[i].r = wrap(objects_[i].r + rng_.unit_vector() * hop_dist_);
      coalesce_around(i);
      ++events_;
      return true;
    }
    pick -= h;
    if (pick < e) {
      // Emit a monovacancy just outside the capture radius, shrink the
      // cluster by one.
      const util::Vec3 dir = rng_.unit_vector();
      const double out = capture_radius(objects_[i].size) +
                         capture_radius(1) + 0.51 * hop_dist_;
      Object mono{wrap(objects_[i].r + dir * out), 1};
      objects_[i].size -= 1;
      if (objects_[i].size == 0) {
        objects_[i] = mono;  // a size-1 "cluster" emitting is just a hop
      } else {
        objects_.push_back(mono);
        coalesce_around(objects_.size() - 1);
      }
      ++events_;
      return true;
    }
    pick -= e;
  }
  // Numerical edge: attribute to the last object as a hop.
  objects_.back().r = wrap(objects_.back().r + rng_.unit_vector() * hop_dist_);
  coalesce_around(objects_.size() - 1);
  ++events_;
  return true;
}

void OkmcEngine::run_events(int n) {
  for (int i = 0; i < n; ++i) {
    if (!step()) return;
  }
}

void OkmcEngine::run_until(double t_s) {
  while (time_ < t_s) {
    if (!step()) return;
  }
}

std::int64_t OkmcEngine::total_vacancies() const {
  std::int64_t n = 0;
  for (const Object& o : objects_) n += o.size;
  return n;
}

util::Histogram OkmcEngine::size_histogram() const {
  util::Histogram h;
  for (const Object& o : objects_) h.add(o.size);
  return h;
}

double OkmcEngine::mean_cluster_size() const {
  if (objects_.empty()) return 0.0;
  return static_cast<double>(total_vacancies()) /
         static_cast<double>(objects_.size());
}

}  // namespace mmd::kmc
