#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmd::kmc {

/// Partial-sum (segment) tree over per-site candidate slots: the event
/// population of one sector, maintained across events.
///
/// Every owned site gets a fixed block of kSlotsPerSite slots, one per
/// first-nearest-neighbor offset, so slot = ordinal * 8 + k is a *canonical*
/// address: it depends only on the configuration, never on insertion order.
/// Inactive slots hold rate 0. The tree is a full binary tree over a
/// power-of-two leaf array; every interior node stores the exact FP sum of
/// its two children, recomputed bottom-up on each leaf write (never
/// accumulated as a delta, so no drift).
///
/// Determinism contract (DESIGN.md "Incremental event tables"): because the
/// association order of total() is fixed by the tree shape — which depends
/// only on the capacity, not on which slots are active — two tables holding
/// identical leaf values are identical objects: same total() bits, same
/// sample() result for every pick. This is what lets the incremental
/// dirty-region path in KmcEngine be *bit-identical* to the full-rescan
/// oracle: both end each event with the same leaves, hence the same draws.
class EventTable {
 public:
  static constexpr int kSlotsPerSite = 8;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Size the table for n_sites owned sites and zero every slot.
  void reset(std::size_t n_sites);

  /// Zero every slot touched since the last clear (sector teardown);
  /// O(active sites), leaves the capacity in place.
  void clear();

  /// Set the rate of slot (site, k); O(log N) path update. Marks the site's
  /// block active so clear()/clear_site() can find it.
  void set_rate(std::size_t site, int k, double rate);

  /// Zero all slots of one site's block (candidate invalidation).
  void clear_site(std::size_t site);

  /// Whether the site's block has been written since the last clear()
  /// (it may still be all-zero; used to find stale blocks to refresh).
  bool site_touched(std::size_t site) const {
    return site < touched_.size() && touched_[site] != 0;
  }

  /// Exact FP sum of all slots: the BKL total rate. Bit-deterministic for a
  /// given leaf array regardless of write order.
  double total() const { return tree_.empty() ? 0.0 : tree_[1]; }

  /// BKL selection: the slot s such that pick lands in its rate interval
  /// under the tree's summation order; O(log N) descent. Requires
  /// 0 <= pick < total(). If FP rounding strands the descent on a zero-rate
  /// leaf, deterministically falls back to the highest-index active slot
  /// (the same convention as a linear scan's "last event" fallback).
  std::size_t sample(double pick) const;

  double slot_rate(std::size_t slot) const { return tree_[cap_ + slot]; }
  static std::size_t site_of(std::size_t slot) {
    return slot / static_cast<std::size_t>(kSlotsPerSite);
  }
  static int offset_of(std::size_t slot) {
    return static_cast<int>(slot % static_cast<std::size_t>(kSlotsPerSite));
  }

  /// Number of slots currently holding a nonzero rate (live candidates).
  std::size_t active_slots() const { return active_slots_; }

  std::size_t capacity_slots() const { return n_slots_; }
  std::size_t memory_bytes() const {
    return tree_.capacity() * sizeof(double) + touched_.capacity() +
           touched_list_.capacity() * sizeof(std::uint32_t);
  }

 private:
  void write_leaf(std::size_t slot, double rate);

  std::size_t n_slots_ = 0;  ///< addressable slots (n_sites * 8)
  std::size_t cap_ = 0;      ///< power-of-two leaf count, >= n_slots_
  std::vector<double> tree_; ///< 2*cap_ nodes; leaves at [cap_, cap_+n_slots_)
  std::vector<std::uint8_t> touched_;        ///< per-site block flag
  std::vector<std::uint32_t> touched_list_;  ///< sites to zero on clear()
  std::size_t active_slots_ = 0;
};

}  // namespace mmd::kmc
