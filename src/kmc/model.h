#pragma once

#include <cstdint>
#include <vector>

#include "lattice/decomposition.h"
#include "lattice/geometry.h"
#include "lattice/local_box.h"
#include "lattice/neighbor_offsets.h"
#include "potential/eam.h"
#include "util/units.h"

namespace mmd::kmc {

/// AKMC site occupancy. Atoms and vacancies are uniformly named "sites"
/// (paper §2.2); the on-lattice approximation maps every atom or vacancy to a
/// lattice point.
enum class SiteState : std::uint8_t {
  Fe = 0,
  Cu = 1,
  Vacancy = 255,
};

inline bool is_atom(SiteState s) { return s != SiteState::Vacancy; }

/// Configuration of the KMC stage. Defaults are the paper's: Fe at 600 K,
/// attempt frequency 1e13/s, t_threshold = 2e-4 s of MC time.
struct KmcConfig {
  int nx = 10, ny = 10, nz = 10;
  double lattice_constant = util::iron::kLatticeConstant;
  double cutoff = 5.0;                 ///< EAM cutoff [A]
  double temperature = 600.0;          ///< [K]
  double prefactor = util::iron::kAttemptFrequency;          ///< nu [1/s]
  double migration_barrier = util::iron::kVacancyMigrationBarrier;  ///< E_m0 [eV]
  double min_barrier = 0.05;           ///< clamp for downhill exchanges [eV]
  double t_threshold = 2.0e-4;         ///< MC time budget [s] (paper §3)
  double dt_scale = 1.0;               ///< cycle dt = dt_scale / k_max
  std::uint64_t seed = 42;
  int table_segments = 5000;
  /// Maintain the sector's event table incrementally (dirty-region rate
  /// rebuilds after each executed event). false = full rescan after every
  /// event, the O(N_owned)-per-event equivalence oracle (scenario key
  /// `kmc.incremental`). Both paths share the same partial-sum tree for
  /// totals and selection, so the event sequence is bit-identical.
  bool incremental = true;
  /// Per-event stderr logging (scenario key `kmc.debug_events`); when off,
  /// suppressed events are counted under `kmc.events.debug_suppressed`.
  bool debug_events = false;
  /// Test hook: record every executed event's (vacancy gid, atom gid) pair
  /// in KmcEngine::event_log() for sequence-equivalence assertions.
  bool record_events = false;
};

/// KMC real-time conversion (paper §3): t_real = t_threshold * C_MC / C_real
/// with C_real = exp(-E_v+ / kB T). Returns seconds of physical time.
double real_time_scale(double t_threshold_s, double vacancy_concentration,
                       double temperature,
                       double formation_energy = util::iron::kVacancyFormationEnergy);

/// One rank's on-lattice site array plus the EAM energetics used to rate
/// vacancy-exchange events.
///
/// Storage mirrors the MD LocalBox layout (owned cells + halo), one byte per
/// site. A global site may have several local images when the rank grid is
/// short along an axis; `set_state_global` keeps every image coherent, which
/// is what lets the traditional and on-demand communication strategies
/// produce bit-identical configurations.
class KmcModel {
 public:
  KmcModel(const KmcConfig& cfg, const lat::BccGeometry& geo,
           const lat::DomainDecomposition& dd, const pot::EamTableSet& tables,
           int rank);

  const lat::BccGeometry& geometry() const { return *geo_; }
  const lat::LocalBox& box() const { return box_; }
  const KmcConfig& config() const { return cfg_; }
  int rank() const { return rank_; }

  // --- state access --------------------------------------------------------

  SiteState state(std::size_t idx) const { return sites_[idx]; }
  void set_state(std::size_t idx, SiteState s) { sites_[idx] = s; }
  std::size_t size() const { return sites_.size(); }

  /// Raw site array (main-memory view for the slave-core rate kernel).
  const SiteState* raw_sites() const { return sites_.data(); }

  std::int64_t site_rank_of(std::size_t idx) const;
  std::size_t index_of_local(const lat::LocalCoord& c) const {
    return box_.entry_index(c);
  }

  /// All local storage indices holding an image of global site `gid`
  /// (owned and ghost); at least one if the site is in this rank's storage.
  void images_of_global(std::int64_t gid, std::vector<std::size_t>& out) const;

  /// Set every local image of a global site (no-op images outside storage).
  void set_state_global(std::int64_t gid, SiteState s);

  /// Whether this rank's storage holds any image of the global cell.
  bool in_storage_global(std::int64_t gid) const;

  // --- energetics -----------------------------------------------------------

  /// Host electron density felt by an atom of species `center_type` at the
  /// position of site idx (occupied neighbors only, self excluded).
  /// Out-of-storage neighbors are skipped.
  double rho_at(std::size_t idx, int center_type = 0) const;

  /// Pair-energy sum of an atom of species `center_type` at site idx with
  /// occupied neighbors, optionally pretending site `exclude` is empty.
  double pair_energy_at(std::size_t idx, std::size_t exclude,
                        int center_type = 0) const;

  /// Energy change of moving the atom at `atom_idx` into the vacancy at
  /// `vac_idx` (its 1NN), in the kinetically-resolved local approximation
  /// described in DESIGN.md.
  double exchange_dE(std::size_t vac_idx, std::size_t atom_idx) const;

  /// Transition rate k = nu * exp(-(E_m0 + dE/2) / kB T) (paper Eq. 4), with
  /// the barrier clamped at min_barrier.
  double rate(double dE) const;

  // --- neighbor tables -------------------------------------------------------

  /// All offsets within the EAM cutoff for a sublattice.
  const std::vector<lat::SiteOffset>& cutoff_offsets(int sub) const {
    return offsets_[sub];
  }
  /// The 8 first-nearest-neighbor offsets (the possible vacancy events,
  /// paper §2.2: "eight possible events for a vacancy").
  const std::vector<lat::SiteOffset>& nn_offsets(int sub) const {
    return nn_[sub];
  }
  const std::vector<std::int64_t>& cutoff_deltas(int sub) const {
    return deltas_[sub];
  }
  const std::vector<std::int64_t>& nn_deltas(int sub) const {
    return nn_deltas_[sub];
  }

  /// Owned entry indices (rank order).
  const std::vector<std::size_t>& owned_indices() const { return owned_; }
  bool is_owned(std::size_t idx) const { return box_.owns(box_.coord_of(idx)); }

  /// Dense ordinal of an owned entry within owned_indices() — the canonical
  /// candidate-block address of the incremental event table — or
  /// `kNotOwned` for halo entries.
  static constexpr std::uint32_t kNotOwned = 0xffffffffu;
  std::uint32_t owned_ordinal(std::size_t idx) const {
    return owned_ordinal_[idx];
  }

  /// A pure cell/sublattice displacement (no geometry payload), used by the
  /// invalidation shell below.
  struct ShellOffset {
    int dx = 0, dy = 0, dz = 0;
    int to_sub = 0;
  };

  /// Invalidation shell of a site on sublattice `sub`: every offset o such
  /// that flipping the state at c can change the existence or the rate of a
  /// candidate whose vacancy sits at c + o. A candidate (v, n) reads the
  /// states within the EAM cutoff of v and of n (n a 1NN of v), plus the
  /// occupancy of v and n themselves — so the shell is the cutoff shell
  /// dilated by the 1NN shell: {0} ∪ cutoff ∪ (cutoff ∘ nn), deduplicated.
  /// Both shells are symmetric under negation on the BCC lattice, so the
  /// "who do I affect" and "who affects me" sets coincide.
  const std::vector<ShellOffset>& invalidation_offsets(int sub) const {
    return invalidation_[sub];
  }

  std::size_t count_owned_vacancies() const;
  std::vector<std::int64_t> owned_vacancy_sites() const;

  std::size_t memory_bytes() const;

 private:
  /// Per-shell table values: on-lattice KMC only ever evaluates phi/f at the
  /// discrete neighbor-shell distances, so the (pair, offset) values are
  /// precomputed once from the interpolation tables — bit-identical to a
  /// live table lookup, with no per-rate table traffic on the master core.
  double f_shell(int sub, int t0, int t1, std::size_t k) const {
    return f_cache_[sub][pair_of(t0, t1) * offsets_[sub].size() + k];
  }
  double phi_shell(int sub, int t0, int t1, std::size_t k) const {
    return phi_cache_[sub][pair_of(t0, t1) * offsets_[sub].size() + k];
  }

  const KmcConfig cfg_;
  const lat::BccGeometry* geo_;
  lat::LocalBox box_;
  const pot::EamTableSet* tables_;
  int rank_;
  std::size_t pair_of(int t0, int t1) const { return tables_->pair_index(t0, t1); }
  std::vector<double> f_cache_[2];
  std::vector<double> phi_cache_[2];
  std::vector<SiteState> sites_;
  std::vector<std::size_t> owned_;
  std::vector<std::uint32_t> owned_ordinal_;
  std::vector<ShellOffset> invalidation_[2];
  std::vector<lat::SiteOffset> offsets_[2];
  std::vector<lat::SiteOffset> nn_[2];
  std::vector<std::int64_t> deltas_[2];
  std::vector<std::int64_t> nn_deltas_[2];
  double kT_;
};

}  // namespace mmd::kmc
