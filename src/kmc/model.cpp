#include "kmc/model.h"

#include <array>
#include <cmath>
#include <set>
#include <stdexcept>

namespace mmd::kmc {

double real_time_scale(double t_threshold_s, double vacancy_concentration,
                       double temperature, double formation_energy) {
  const double c_real =
      std::exp(-formation_energy / (util::units::kBoltzmann * temperature));
  return t_threshold_s * vacancy_concentration / c_real;
}

KmcModel::KmcModel(const KmcConfig& cfg, const lat::BccGeometry& geo,
                   const lat::DomainDecomposition& dd,
                   const pot::EamTableSet& tables, int rank)
    : cfg_(cfg),
      geo_(&geo),
      box_(dd.local_box(rank)),
      tables_(&tables),
      rank_(rank),
      kT_(util::units::kBoltzmann * cfg.temperature) {
  // The box halo must cover the EAM cutoff PLUS one cell, because the energy
  // of a ghost exchange partner (one cell into the halo) is evaluated over
  // its own cutoff neighborhood.
  const int needed = lat::required_halo_cells(cfg.lattice_constant, cfg.cutoff) + 1;
  if (box_.halo < needed) {
    throw std::invalid_argument("KmcModel: halo too small for cutoff + ghost events");
  }
  for (int sub = 0; sub <= 1; ++sub) {
    offsets_[sub] = lat::bcc_neighbor_offsets(cfg.lattice_constant, cfg.cutoff, sub);
    nn_[sub].assign(offsets_[sub].begin(), offsets_[sub].begin() + 8);
    deltas_[sub].reserve(offsets_[sub].size());
    for (const auto& o : offsets_[sub]) {
      deltas_[sub].push_back(box_.flat_delta(o.dx, o.dy, o.dz, o.to_sub - sub));
    }
    nn_deltas_[sub].assign(deltas_[sub].begin(), deltas_[sub].begin() + 8);
  }
  // Sanity: the first 8 offsets of a BCC lattice are the 1NN shell at
  // sqrt(3)/2 * a.
  const double d1 = std::sqrt(nn_[0][0].dist2);
  if (std::abs(d1 - std::sqrt(3.0) / 2.0 * cfg.lattice_constant) > 1e-9) {
    throw std::logic_error("KmcModel: unexpected first-neighbor shell");
  }
  // Per-shell caches: every (species pair, offset) gets its table value
  // precomputed (see f_shell/phi_shell).
  const auto n_sp = static_cast<std::size_t>(tables.num_species);
  const std::size_t n_pairs = n_sp * (n_sp + 1) / 2;
  for (int sub = 0; sub <= 1; ++sub) {
    const std::size_t n_off = offsets_[sub].size();
    f_cache_[sub].resize(n_pairs * n_off);
    phi_cache_[sub].resize(n_pairs * n_off);
    for (int i = 0; i < tables.num_species; ++i) {
      for (int j = i; j < tables.num_species; ++j) {
        const std::size_t p = tables.pair_index(i, j);
        for (std::size_t k = 0; k < n_off; ++k) {
          const double r = std::sqrt(offsets_[sub][k].dist2);
          f_cache_[sub][p * n_off + k] = tables.f(i, j).value(r);
          phi_cache_[sub][p * n_off + k] = tables.phi(i, j).value(r);
        }
      }
    }
  }
  sites_.assign(box_.num_entries(), SiteState::Fe);
  owned_.reserve(box_.num_owned_sites());
  owned_ordinal_.assign(box_.num_entries(), kNotOwned);
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (box_.owns(box_.coord_of(i))) {
      owned_ordinal_[i] = static_cast<std::uint32_t>(owned_.size());
      owned_.push_back(i);
    }
  }
  // Invalidation shells: {0} ∪ cutoff ∪ (cutoff ∘ nn) per sublattice, as a
  // sorted deduplicated set so the engine's dirty sweeps are deterministic.
  for (int sub = 0; sub <= 1; ++sub) {
    std::set<std::array<int, 4>> shell;
    shell.insert({0, 0, 0, sub});
    for (const auto& o1 : offsets_[sub]) {
      shell.insert({o1.dx, o1.dy, o1.dz, o1.to_sub});
      for (const auto& o2 : nn_[o1.to_sub]) {
        shell.insert({o1.dx + o2.dx, o1.dy + o2.dy, o1.dz + o2.dz, o2.to_sub});
      }
    }
    // The site's own 1NNs (candidate partners of a flipped vacancy) are
    // already inside the cutoff shell, but keep the union explicit in case a
    // tiny cutoff ever excludes them.
    for (const auto& o2 : nn_[sub]) {
      shell.insert({o2.dx, o2.dy, o2.dz, o2.to_sub});
    }
    invalidation_[sub].reserve(shell.size());
    for (const auto& s : shell) {
      invalidation_[sub].push_back({s[0], s[1], s[2], s[3]});
    }
  }
}

std::int64_t KmcModel::site_rank_of(std::size_t idx) const {
  const lat::LocalCoord c = box_.coord_of(idx);
  return geo_->site_id(
      geo_->wrap({c.x + box_.ox, c.y + box_.oy, c.z + box_.oz, c.sub}));
}

void KmcModel::images_of_global(std::int64_t gid,
                                std::vector<std::size_t>& out) const {
  out.clear();
  const lat::SiteCoord g = geo_->site_coord(gid);
  // Representatives of each axis coordinate within [-halo, l+halo).
  auto reps = [&](int gc, int origin, int len, int n, int* buf) {
    int cnt = 0;
    // Candidate local coords differ by multiples of the box period; start
    // from the smallest representative >= -halo.
    int base = (gc - origin) % n;
    while (base - n >= -box_.halo) base -= n;
    while (base < -box_.halo) base += n;
    for (int c = base; c < len + box_.halo && cnt < 4; c += n) {
      buf[cnt++] = c;
    }
    return cnt;
  };
  int xs[4], ys[4], zs[4];
  const int nx = reps(g.x, box_.ox, box_.lx, geo_->nx(), xs);
  const int ny = reps(g.y, box_.oy, box_.ly, geo_->ny(), ys);
  const int nz = reps(g.z, box_.oz, box_.lz, geo_->nz(), zs);
  for (int iz = 0; iz < nz; ++iz) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        out.push_back(box_.entry_index({xs[ix], ys[iy], zs[iz], g.sub}));
      }
    }
  }
}

void KmcModel::set_state_global(std::int64_t gid, SiteState s) {
  std::vector<std::size_t> images;
  images_of_global(gid, images);
  for (std::size_t i : images) sites_[i] = s;
}

bool KmcModel::in_storage_global(std::int64_t gid) const {
  std::vector<std::size_t> images;
  images_of_global(gid, images);
  return !images.empty();
}

double KmcModel::rho_at(std::size_t idx, int center_type) const {
  const lat::LocalCoord c = box_.coord_of(idx);
  double rho = 0.0;
  const auto& offs = offsets_[c.sub];
  for (std::size_t k = 0; k < offs.size(); ++k) {
    const auto& o = offs[k];
    const lat::LocalCoord n{c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub};
    if (!box_.in_storage(n)) continue;
    const SiteState s = sites_[box_.entry_index(n)];
    if (!is_atom(s)) continue;
    rho += f_shell(c.sub, center_type, static_cast<int>(s), k);
  }
  return rho;
}

double KmcModel::pair_energy_at(std::size_t idx, std::size_t exclude,
                                int center_type) const {
  const lat::LocalCoord c = box_.coord_of(idx);
  double e = 0.0;
  const auto& offs = offsets_[c.sub];
  for (std::size_t k = 0; k < offs.size(); ++k) {
    const auto& o = offs[k];
    const lat::LocalCoord n{c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub};
    if (!box_.in_storage(n)) continue;
    const std::size_t ni = box_.entry_index(n);
    if (ni == exclude) continue;
    const SiteState s = sites_[ni];
    if (!is_atom(s)) continue;
    e += phi_shell(c.sub, center_type, static_cast<int>(s), k);
  }
  return e;
}

double KmcModel::exchange_dE(std::size_t vac_idx, std::size_t atom_idx) const {
  // Local energy of the hopping atom before (at atom_idx) and after (at
  // vac_idx, with atom_idx now empty): embedding + pair terms. On-lattice
  // positions make all distances ideal-lattice distances.
  const SiteState atom = sites_[atom_idx];
  const int t = static_cast<int>(atom);
  const auto& embed = tables_->embed_of(t);
  const double e_before =
      embed.value(rho_at(atom_idx, t)) +
      pair_energy_at(atom_idx, static_cast<std::size_t>(-1), t);
  // After the swap, the atom sits at vac_idx; its density/pairs must not
  // count its old position (now a vacancy).
  // After the swap the atom sits at vac_idx with atom_idx empty: rho at
  // vac_idx currently still counts the atom at its old position, so remove
  // that one contribution explicitly.
  const double rho_after = rho_at(vac_idx, t);
  const lat::LocalCoord cv = box_.coord_of(vac_idx);
  double rho_corr = 0.0;
  for (const auto& o : offsets_[cv.sub]) {
    const lat::LocalCoord n{cv.x + o.dx, cv.y + o.dy, cv.z + o.dz, o.to_sub};
    if (!box_.in_storage(n)) continue;
    if (box_.entry_index(n) == atom_idx) {
      rho_corr = tables_->f(t, t).value(std::sqrt(o.dist2));
      break;
    }
  }
  const double e_after = embed.value(rho_after - rho_corr) +
                         pair_energy_at(vac_idx, atom_idx, t);
  return e_after - e_before;
}

double KmcModel::rate(double dE) const {
  const double barrier =
      std::max(cfg_.migration_barrier + 0.5 * dE, cfg_.min_barrier);
  return cfg_.prefactor * std::exp(-barrier / kT_);
}

std::size_t KmcModel::count_owned_vacancies() const {
  std::size_t n = 0;
  for (std::size_t i : owned_) {
    if (sites_[i] == SiteState::Vacancy) ++n;
  }
  return n;
}

std::vector<std::int64_t> KmcModel::owned_vacancy_sites() const {
  std::vector<std::int64_t> out;
  for (std::size_t i : owned_) {
    if (sites_[i] == SiteState::Vacancy) out.push_back(site_rank_of(i));
  }
  return out;
}

std::size_t KmcModel::memory_bytes() const {
  std::size_t b = sites_.capacity() * sizeof(SiteState);
  b += owned_.capacity() * sizeof(std::size_t);
  b += owned_ordinal_.capacity() * sizeof(std::uint32_t);
  for (int sub = 0; sub <= 1; ++sub) {
    b += offsets_[sub].capacity() * sizeof(lat::SiteOffset);
    b += deltas_[sub].capacity() * sizeof(std::int64_t);
    b += invalidation_[sub].capacity() * sizeof(ShellOffset);
  }
  return b;
}

}  // namespace mmd::kmc
