#include "kmc/scd.h"

#include <algorithm>
#include <cmath>

#include "comm/world.h"
#include "kmc/clusters.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "util/stats.h"
#include "util/timer.h"

namespace mmd::kmc {

namespace {

constexpr std::uint64_t kScdSeedSalt = 0x5cd5cd5cdull;

}  // namespace

ScdParams ScdParams::from(const KmcConfig& cfg, std::uint64_t sites) {
  ScdParams p;
  p.prefactor = cfg.prefactor;
  p.migration_barrier_ev = cfg.migration_barrier;
  p.temperature_k = cfg.temperature;
  p.sites = std::max<std::uint64_t>(sites, 1);
  return p;
}

ScdModel::ScdModel(const ScdParams& params) : p_(params) {
  kT_ = util::units::kBoltzmann * p_.temperature_k;
  jump_rate_ = p_.prefactor * std::exp(-p_.migration_barrier_ev / kT_);
  pop_.assign(2, 0);
}

void ScdModel::seed(const ClusterStats& census) {
  pop_.assign(2, 0);
  for (const auto& [size, count] : census.size_histogram.bins()) {
    if (size <= 0 || count == 0) continue;
    const auto s = static_cast<std::size_t>(size);
    if (pop_.size() <= s) pop_.resize(s + 1, 0);
    pop_[s] += count;
  }
}

double ScdModel::binding_ev(std::uint64_t s) const {
  if (s < 2) return 0.0;
  // Capillarity interpolation between the divacancy and the bulk limit.
  const double sd = static_cast<double>(s);
  const double geom =
      (std::cbrt(sd * sd) - std::cbrt((sd - 1.0) * (sd - 1.0))) /
      (std::cbrt(4.0) - 1.0);
  return p_.binding_bulk_ev - (p_.binding_bulk_ev - p_.binding_dimer_ev) * geom;
}

double ScdModel::absorption_rate(std::uint64_t s) const {
  const double n1 = static_cast<double>(pop_[1]);
  const double vol = static_cast<double>(p_.sites);
  if (s == 1) {
    // Dimerization: unordered monovacancy pairs.
    return p_.capture_factor * jump_rate_ * n1 * (n1 - 1.0) / (2.0 * vol);
  }
  const double ns = static_cast<double>(pop_[s]);
  // Capture cross-section grows with the cluster radius ~ s^(1/3).
  return p_.capture_factor * jump_rate_ * std::cbrt(static_cast<double>(s)) *
         n1 * ns / vol;
}

double ScdModel::emission_rate(std::uint64_t s) const {
  if (s < 2) return 0.0;
  const double ns = static_cast<double>(pop_[s]);
  const double sd = static_cast<double>(s);
  // Surface sites ~ s^(2/3) can each attempt the (E_m + E_b) escape.
  return p_.prefactor * std::cbrt(sd * sd) * ns *
         std::exp(-(p_.migration_barrier_ev + binding_ev(s)) / kT_);
}

std::uint64_t ScdModel::total_vacancies() const {
  std::uint64_t total = 0;
  for (std::size_t s = 1; s < pop_.size(); ++s) {
    total += s * pop_[s];
  }
  return total;
}

std::uint64_t ScdModel::cluster_count() const {
  std::uint64_t total = 0;
  for (std::size_t s = 1; s < pop_.size(); ++s) total += pop_[s];
  return total;
}

std::uint64_t ScdModel::advance(double time_budget_s, util::Rng& rng,
                                std::uint64_t max_events) {
  std::uint64_t events = 0;
  double t = 0.0;
  std::vector<double> rates;  // [absorption s=1.., emission s=2..] interleaved
  while (events < max_events) {
    rates.clear();
    double total = 0.0;
    const std::size_t top = pop_.size();
    for (std::size_t s = 1; s < top; ++s) {
      const double a = pop_[s] > 0 && pop_[1] > 0 ? absorption_rate(s) : 0.0;
      const double e = pop_[s] > 0 ? emission_rate(s) : 0.0;
      rates.push_back(a);
      rates.push_back(e);
      total += a + e;
    }
    if (!(total > 0.0)) break;  // absorbing state: time still passes
    const double u = 1.0 - rng.uniform();  // (0, 1], log-safe
    const double dt = -std::log(u) / total;
    if (t + dt > time_budget_s) break;
    t += dt;
    // BKL selection over the class rates.
    double pick = rng.uniform() * total;
    std::size_t chosen = rates.size() - 1;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      pick -= rates[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    const std::size_t s = chosen / 2 + 1;
    const bool absorption = (chosen % 2) == 0;
    if (absorption) {
      if (s == 1) {
        if (pop_.size() <= 2) pop_.resize(3, 0);
        pop_[1] -= 2;
        pop_[2] += 1;
      } else {
        if (pop_.size() <= s + 1) pop_.resize(s + 2, 0);
        pop_[1] -= 1;
        pop_[s] -= 1;
        pop_[s + 1] += 1;
      }
    } else {
      pop_[s] -= 1;
      pop_[1] += 1;
      if (s - 1 >= 2) {
        pop_[s - 1] += 1;
      } else {
        pop_[1] += 1;
      }
    }
    ++events;
  }
  return events;
}

ScdStage::ScdStage(const lat::BccGeometry& geo, const ScdParams& params,
                   int replicates, std::uint64_t seed)
    : geo_(geo), params_(params), replicates_(replicates), seed_(seed) {}

void ScdStage::set_window(std::uint64_t window_index, double time_budget_s) {
  window_index_ = window_index;
  time_budget_s_ = std::max(time_budget_s, 0.0);
}

core::StageReport ScdStage::advance(comm::Comm& comm, core::StageState& state,
                                    core::StageClock& clock) {
  MMD_TRACE_SCOPE("sim.scd");
  util::Timer wall;
  std::uint64_t events = 0;
  if (comm.rank() == 0) {
    const ClusterStats census = cluster_vacancies(geo_, state.vacancies_after);
    ScdModel model(params_);
    model.seed(census);
    const std::vector<std::uint64_t> seed_pop = model.save();
    util::RunningStats est;
    std::vector<double> finals;
    finals.reserve(static_cast<std::size_t>(replicates_));
    for (int r = 0; r < replicates_; ++r) {
      model.restore(seed_pop);
      util::Rng rng = util::Rng(seed_ ^ kScdSeedSalt)
                          .split(window_index_)
                          .split(static_cast<std::uint64_t>(r));
      events += model.advance(time_budget_s_, rng);
      const double final_clusters = static_cast<double>(model.cluster_count());
      finals.push_back(final_clusters);
      est.add(final_clusters);
    }
    state.sampled.est_clusters = est.mean();
    state.sampled.ci_halfwidth =
        1.96 * std::sqrt(est.variance() /
                         static_cast<double>(std::max(replicates_, 1)));
    state.sampled.replicate_estimates = std::move(finals);
    telemetry::count("scd.events", events);
    telemetry::set_gauge("sample.ci.halfwidth", state.sampled.ci_halfwidth);
  }
  state.sampled.replicates = replicates_;
  clock.scd_time_s += time_budget_s_;
  return {name(), wall.elapsed(), events};
}

}  // namespace mmd::kmc
