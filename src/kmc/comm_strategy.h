#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/world.h"
#include "kmc/ghost_strategy.h"
#include "kmc/model.h"

namespace mmd::kmc {

std::string to_string(GhostStrategy s);

/// A modified-site record shipped by the on-demand strategies.
struct SiteUpdate {
  std::int64_t gid = 0;
  std::int32_t state = 0;
  std::int32_t pad = 0;
};

/// Per-rank traffic attributable to KMC ghost communication.
struct GhostTraffic {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;  ///< including zero-size handshakes

  GhostTraffic& operator+=(const GhostTraffic& o) {
    bytes_sent += o.bytes_sent;
    messages_sent += o.messages_sent;
    return *this;
  }
};

/// Precomputed exchange plan for one rank and one sector (or the full halo
/// when sector < 0): which of my owned cells each peer reads, which of my
/// ghost images each peer owns, and the owned->image copies for self-wrapped
/// boxes. Both sides derive the lists from the same pure function of the
/// decomposition, so the pattern is static and needs no handshaking —
/// exactly the paper's description of the traditional scheme.
class SectorExchangePlan {
 public:
  /// `depth` is the shell thickness on the sector's outer sides (the full
  /// halo for GET plans; one cell for PUT-back plans — see the correctness
  /// note in comm_strategy.cpp). Ignored for sector < 0 (full halo).
  SectorExchangePlan(const lat::BccGeometry& geo,
                     const lat::DomainDecomposition& dd, int rank, int sector,
                     int depth);

  /// GET: refresh my ghost images of the sector shell from their owners.
  GhostTraffic get(comm::Comm& comm, KmcModel& model, int tag_base) const;

  /// Owner-side snapshot of the values peers currently hold for my cells in
  /// this plan (taken right after a GET, when owner and images agree). The
  /// PUT uses it to ignore stale echoes: several peers put the same cell
  /// back, and only the one whose events touched it returns a new value.
  std::vector<std::vector<std::uint8_t>> snapshot(const KmcModel& model) const;

  /// PUT: send my (possibly modified) ghost images back to their owners.
  /// The owner applies a cell only when it differs from `sent_snapshot`.
  GhostTraffic put(comm::Comm& comm, KmcModel& model, int tag_base,
                   const std::vector<std::vector<std::uint8_t>>& sent_snapshot) const;

  /// Total sites in this plan's ghost region (for reporting).
  std::size_t ghost_sites() const;

 private:
  struct PeerCells {
    int peer = 0;
    std::vector<std::size_t> cells;  ///< local entry indices, canonical order
  };

  std::vector<PeerCells> recv_from_;  ///< my ghost images, grouped by owner
  std::vector<PeerCells> send_to_;    ///< my owned cells read by each peer
  std::vector<std::pair<std::size_t, std::size_t>> self_copy_;  ///< owned->image
};

/// Dispatcher bundling the per-sector plans and the on-demand machinery.
class GhostComm {
 public:
  GhostComm(const lat::BccGeometry& geo, const lat::DomainDecomposition& dd,
            int rank, int halo, GhostStrategy strategy);

  GhostStrategy strategy() const { return strategy_; }

  /// Collective: must be called once by every rank before the first cycle
  /// (creates the one-sided window; refreshes the full halo).
  void initialize(comm::Comm& comm, KmcModel& model);

  /// Called before processing `sector` (traditional GET; no-op on-demand).
  void before_sector(comm::Comm& comm, KmcModel& model, int sector);

  /// Called after processing `sector` with the set of globally-identified
  /// modified sites (traditional PUT ignores them and ships the shell).
  void after_sector(comm::Comm& comm, KmcModel& model, int sector,
                    std::span<const SiteUpdate> updates);

  const GhostTraffic& traffic() const { return traffic_; }
  void reset_traffic() { traffic_ = GhostTraffic{}; }

 private:
  void push_updates_two_sided(comm::Comm& comm, KmcModel& model, int sector,
                              std::span<const SiteUpdate> updates);
  void push_updates_one_sided(comm::Comm& comm, KmcModel& model,
                              std::span<const SiteUpdate> updates);
  /// Whether rank q's storage (owned + halo) holds an image of gid.
  bool peer_has_image(std::size_t peer_pos, std::int64_t gid) const;

  const lat::BccGeometry* geo_;
  const lat::DomainDecomposition* dd_;
  int rank_;
  int halo_;
  GhostStrategy strategy_;
  std::vector<std::unique_ptr<SectorExchangePlan>> sector_get_plans_;  ///< 8, full halo
  std::vector<std::unique_ptr<SectorExchangePlan>> sector_put_plans_;  ///< 8, depth 1
  std::vector<std::vector<std::uint8_t>> put_snapshot_;  ///< active sector's GET-time values
  std::unique_ptr<SectorExchangePlan> full_plan_;
  std::vector<int> neighbors_;           ///< unique adjacent ranks
  std::vector<lat::LocalBox> neighbor_boxes_;
  std::shared_ptr<comm::PutWindow> window_;
  GhostTraffic traffic_;
};

}  // namespace mmd::kmc
