#include "kmc/clusters.h"

#include <numeric>
#include <unordered_map>

#include "lattice/neighbor_offsets.h"

namespace mmd::kmc {

namespace {

/// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ClusterStats cluster_vacancies(const lat::BccGeometry& geo,
                               std::span<const std::int64_t> vacancy_sites) {
  ClusterStats out;
  out.num_vacancies = vacancy_sites.size();
  if (vacancy_sites.empty()) return out;

  std::unordered_map<std::int64_t, std::size_t> index;
  index.reserve(vacancy_sites.size() * 2);
  for (std::size_t i = 0; i < vacancy_sites.size(); ++i) {
    index.emplace(vacancy_sites[i], i);
  }

  // 1NN adjacency: the 8 shortest offsets of each sublattice.
  const double nn_cut = 0.9 * geo.lattice_constant();  // > sqrt(3)/2 a, < a
  std::vector<lat::SiteOffset> nn[2];
  for (int sub = 0; sub <= 1; ++sub) {
    nn[sub] = lat::bcc_neighbor_offsets(geo.lattice_constant(), nn_cut, sub);
  }

  UnionFind uf(vacancy_sites.size());
  std::uint64_t with_neighbor = 0;
  for (std::size_t i = 0; i < vacancy_sites.size(); ++i) {
    const lat::SiteCoord c = geo.site_coord(vacancy_sites[i]);
    bool any = false;
    for (const auto& o : nn[c.sub]) {
      const lat::SiteCoord n =
          geo.wrap({c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub});
      const auto it = index.find(geo.site_id(n));
      if (it != index.end()) {
        uf.unite(i, it->second);
        any = true;
      }
    }
    if (any) ++with_neighbor;
  }
  out.clustered_fraction = static_cast<double>(with_neighbor) /
                           static_cast<double>(vacancy_sites.size());

  std::unordered_map<std::size_t, std::uint64_t> sizes;
  for (std::size_t i = 0; i < vacancy_sites.size(); ++i) ++sizes[uf.find(i)];
  out.num_clusters = sizes.size();
  for (const auto& [root, size] : sizes) {
    out.size_histogram.add(static_cast<std::int64_t>(size));
    out.max_size = std::max<std::uint64_t>(out.max_size, size);
  }
  out.mean_size = static_cast<double>(out.num_vacancies) /
                  static_cast<double>(out.num_clusters);
  return out;
}

}  // namespace mmd::kmc
