#include "kmc/comm_strategy.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "comm/neighborhood.h"

namespace mmd::kmc {

namespace {

// Tag blocks from the central registry (comm/message.h).
constexpr int kTagGet = comm::tags::kKmcGet;
constexpr int kTagPut = comm::tags::kKmcPut;
constexpr int kTagOnDemand = comm::tags::kKmcOnDemand;

/// Canonical iteration of the ghost cells within `depth` cells of a sector's
/// octant — expanded in BOTH directions per axis, because an event partner
/// can sit one cell inside the sector along one axis while being a ghost
/// site along another. sector < 0 means the whole halo. Pure function of
/// (box, sector, depth): sender and receiver replay it identically.
///
/// Depth differs by use: the GET shell needs the full halo (a sector
/// vacancy's exchange partner is up to 1 cell away and its energy reads a
/// cutoff further), while the PUT-back shell is ONE cell deep — events
/// displace sites at most one cell from the sector, and a deeper put-back
/// would echo sites other ranks legitimately modified in the same sector.
template <typename F>
void for_each_region_cell(const lat::LocalBox& box, int sector, int depth, F&& f) {
  const int h = sector < 0 ? box.halo : depth;
  int lo[3], hi[3];
  const int len[3] = {box.lx, box.ly, box.lz};
  for (int a = 0; a < 3; ++a) {
    if (sector < 0) {
      lo[a] = -h;
      hi[a] = len[a] + h;
    } else {
      const int half = (sector >> a) & 1;
      const int mid = len[a] / 2;
      lo[a] = std::max(half == 0 ? -h : mid - h, -box.halo);
      hi[a] = std::min(half == 0 ? mid + h : len[a] + h, len[a] + box.halo);
    }
  }
  for (int z = lo[2]; z < hi[2]; ++z) {
    for (int y = lo[1]; y < hi[1]; ++y) {
      for (int x = lo[0]; x < hi[0]; ++x) {
        const bool ghost = x < 0 || x >= len[0] || y < 0 || y >= len[1] ||
                           z < 0 || z >= len[2];
        if (!ghost) continue;
        for (int sub = 0; sub <= 1; ++sub) {
          f(lat::LocalCoord{x, y, z, sub});
        }
      }
    }
  }
}

lat::SiteCoord global_of(const lat::BccGeometry& geo, const lat::LocalBox& box,
                         const lat::LocalCoord& c) {
  return geo.wrap({c.x + box.ox, c.y + box.oy, c.z + box.oz, c.sub});
}

/// Local coordinate of a global cell inside `box`'s OWNED region (assumes
/// ownership).
lat::LocalCoord owned_local_of(const lat::BccGeometry& geo,
                               const lat::LocalBox& box,
                               const lat::SiteCoord& g) {
  auto rep = [](int gc, int origin, int len, int n) {
    int c = (gc - origin) % n;
    if (c < 0) c += n;
    // Owned coords are unique representatives in [0, len).
    (void)len;
    return c;
  };
  return {rep(g.x, box.ox, box.lx, geo.nx()), rep(g.y, box.oy, box.ly, geo.ny()),
          rep(g.z, box.oz, box.lz, geo.nz()), g.sub};
}

bool box_has_image(const lat::BccGeometry& geo, const lat::LocalBox& box,
                   const lat::SiteCoord& g) {
  auto has_rep = [&](int gc, int origin, int len, int n) {
    int base = (gc - origin) % n;
    while (base - n >= -box.halo) base -= n;
    while (base < -box.halo) base += n;
    return base < len + box.halo;
  };
  return has_rep(g.x, box.ox, box.lx, geo.nx()) &&
         has_rep(g.y, box.oy, box.ly, geo.ny()) &&
         has_rep(g.z, box.oz, box.lz, geo.nz());
}

}  // namespace

std::string to_string(GhostStrategy s) {
  switch (s) {
    case GhostStrategy::Traditional: return "Traditional";
    case GhostStrategy::OnDemandTwoSided: return "OnDemand(two-sided)";
    case GhostStrategy::OnDemandOneSided: return "OnDemand(one-sided)";
  }
  return "?";
}

SectorExchangePlan::SectorExchangePlan(const lat::BccGeometry& geo,
                                       const lat::DomainDecomposition& dd,
                                       int rank, int sector, int depth) {
  const lat::LocalBox my_box = dd.local_box(rank);
  std::map<int, std::vector<std::size_t>> recv, send;
  // My reads: ghost cells of my own region, grouped by owner.
  for_each_region_cell(my_box, sector, depth, [&](const lat::LocalCoord& c) {
    const lat::SiteCoord g = global_of(geo, my_box, c);
    const int owner = dd.rank_of_cell(g.x, g.y, g.z);
    if (owner == rank) {
      const lat::LocalCoord oc = owned_local_of(geo, my_box, g);
      self_copy_.emplace_back(my_box.entry_index(oc), my_box.entry_index(c));
    } else {
      recv[owner].push_back(my_box.entry_index(c));
    }
  });
  // My sends: replay each neighbor's region, pick the cells I own.
  for (int q : dd.neighbor_ranks(rank)) {
    const lat::LocalBox q_box = dd.local_box(q);
    for_each_region_cell(q_box, sector, depth, [&](const lat::LocalCoord& c) {
      const lat::SiteCoord g = global_of(geo, q_box, c);
      if (dd.rank_of_cell(g.x, g.y, g.z) != rank) return;
      const lat::LocalCoord mine = owned_local_of(geo, my_box, g);
      send[q].push_back(my_box.entry_index(mine));
    });
  }
  for (auto& [p, cells] : recv) recv_from_.push_back({p, std::move(cells)});
  for (auto& [q, cells] : send) send_to_.push_back({q, std::move(cells)});
}

std::size_t SectorExchangePlan::ghost_sites() const {
  std::size_t n = self_copy_.size();
  for (const auto& p : recv_from_) n += p.cells.size();
  return n;
}

GhostTraffic SectorExchangePlan::get(comm::Comm& comm, KmcModel& model,
                                     int tag_base) const {
  GhostTraffic t;
  comm::NeighborhoodExchange nx(comm);
  // Every ghost cell has exactly one owner, so the per-peer cell lists are
  // disjoint and arrival-order application is deterministic.
  for (const auto& r : recv_from_) nx.expect(r.peer, tag_base);
  std::vector<std::uint8_t> buf;
  for (const auto& s : send_to_) {
    buf.clear();
    buf.reserve(s.cells.size());
    for (std::size_t idx : s.cells) {
      buf.push_back(static_cast<std::uint8_t>(model.state(idx)));
    }
    nx.send(s.peer, tag_base, std::as_bytes(std::span<const std::uint8_t>(buf)));
    t.bytes_sent += buf.size();
    ++t.messages_sent;
  }
  for (const auto& [src, dst] : self_copy_) {
    model.set_state(dst, model.state(src));
  }
  nx.complete([&](std::size_t i, comm::Message&& m) {
    const auto& r = recv_from_[i];
    auto data = comm::unpack<std::uint8_t>(m.payload);
    if (data.size() != r.cells.size()) {
      throw std::runtime_error("SectorExchangePlan::get: size mismatch");
    }
    for (std::size_t j = 0; j < data.size(); ++j) {
      model.set_state(r.cells[j], static_cast<SiteState>(data[j]));
    }
  });
  return t;
}

std::vector<std::vector<std::uint8_t>> SectorExchangePlan::snapshot(
    const KmcModel& model) const {
  std::vector<std::vector<std::uint8_t>> snap;
  snap.reserve(send_to_.size());
  for (const auto& s : send_to_) {
    std::vector<std::uint8_t> vals;
    vals.reserve(s.cells.size());
    for (std::size_t idx : s.cells) {
      vals.push_back(static_cast<std::uint8_t>(model.state(idx)));
    }
    snap.push_back(std::move(vals));
  }
  return snap;
}

GhostTraffic SectorExchangePlan::put(
    comm::Comm& comm, KmcModel& model, int tag_base,
    const std::vector<std::vector<std::uint8_t>>& sent_snapshot) const {
  GhostTraffic t;
  comm::NeighborhoodExchange nx(comm);
  for (const auto& s : send_to_) nx.expect(s.peer, tag_base);
  std::vector<std::uint8_t> buf;
  // Reverse direction: my ghost images travel back to their owners —
  // whether updated or not; that is exactly the redundancy the paper's
  // on-demand strategy removes.
  for (const auto& r : recv_from_) {
    buf.clear();
    buf.reserve(r.cells.size());
    for (std::size_t idx : r.cells) {
      buf.push_back(static_cast<std::uint8_t>(model.state(idx)));
    }
    nx.send(r.peer, tag_base, std::as_bytes(std::span<const std::uint8_t>(buf)));
    t.bytes_sent += buf.size();
    ++t.messages_sent;
  }
  for (const auto& [src, dst] : self_copy_) {
    // Ghost image -> owned representative; set_state_global keeps any other
    // self images coherent.
    model.set_state_global(model.site_rank_of(dst), model.state(dst));
    (void)src;
  }
  nx.complete([&](std::size_t si, comm::Message&& m) {
    const auto& s = send_to_[si];
    auto data = comm::unpack<std::uint8_t>(m.payload);
    if (data.size() != s.cells.size()) {
      throw std::runtime_error("SectorExchangePlan::put: size mismatch");
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto incoming = static_cast<SiteState>(data[i]);
      // Several peers echo the same cell; apply only a genuine change
      // relative to what this owner served at GET time, so a peer that did
      // not touch the cell cannot overwrite one that did. Sector
      // write-disjointness means at most ONE echo per cell passes the
      // filter, so arrival-order application stays deterministic.
      if (static_cast<std::uint8_t>(incoming) == sent_snapshot[si][i]) continue;
      model.set_state_global(model.site_rank_of(s.cells[i]), incoming);
    }
  });
  return t;
}

GhostComm::GhostComm(const lat::BccGeometry& geo,
                     const lat::DomainDecomposition& dd, int rank, int halo,
                     GhostStrategy strategy)
    : geo_(&geo), dd_(&dd), rank_(rank), halo_(halo), strategy_(strategy) {
  const lat::LocalBox my_box = dd.local_box(rank);
  if (strategy == GhostStrategy::Traditional &&
      std::min({my_box.lx, my_box.ly, my_box.lz}) < 5) {
    // With fewer than 5 cells per axis, an owner's sector events can reach
    // the one-cell put-back shell of a neighbor's same-index sector, and the
    // traditional put would overwrite fresh data.
    throw std::invalid_argument(
        "GhostComm(Traditional): subdomains must be at least 5 cells per axis");
  }
  for (int s = 0; s < 8; ++s) {
    sector_get_plans_.push_back(
        std::make_unique<SectorExchangePlan>(geo, dd, rank, s, halo));
    sector_put_plans_.push_back(
        std::make_unique<SectorExchangePlan>(geo, dd, rank, s, /*depth=*/1));
  }
  full_plan_ = std::make_unique<SectorExchangePlan>(geo, dd, rank, -1, halo);
  neighbors_ = dd.neighbor_ranks(rank);
  neighbor_boxes_.reserve(neighbors_.size());
  for (int q : neighbors_) neighbor_boxes_.push_back(dd.local_box(q));
}

void GhostComm::initialize(comm::Comm& comm, KmcModel& model) {
  traffic_ += full_plan_->get(comm, model, comm::tags::sector(kTagGet, 8));
  if (strategy_ == GhostStrategy::OnDemandOneSided) {
    window_ = comm.create_window();
  }
  comm.barrier();
}

void GhostComm::before_sector(comm::Comm& comm, KmcModel& model, int sector) {
  if (strategy_ == GhostStrategy::Traditional) {
    traffic_ += sector_get_plans_[static_cast<std::size_t>(sector)]->get(
        comm, model, comm::tags::sector(kTagGet, sector));
    // Owner-side record of what peers now hold, for stale-echo filtering at
    // the put-back.
    put_snapshot_ =
        sector_put_plans_[static_cast<std::size_t>(sector)]->snapshot(model);
  }
}

void GhostComm::after_sector(comm::Comm& comm, KmcModel& model, int sector,
                             std::span<const SiteUpdate> updates) {
  switch (strategy_) {
    case GhostStrategy::Traditional:
      traffic_ += sector_put_plans_[static_cast<std::size_t>(sector)]->put(
          comm, model, comm::tags::sector(kTagPut, sector), put_snapshot_);
      break;
    case GhostStrategy::OnDemandTwoSided:
      push_updates_two_sided(comm, model, sector, updates);
      break;
    case GhostStrategy::OnDemandOneSided:
      push_updates_one_sided(comm, model, updates);
      break;
  }
}

bool GhostComm::peer_has_image(std::size_t peer_pos, std::int64_t gid) const {
  return box_has_image(*geo_, neighbor_boxes_[peer_pos], geo_->site_coord(gid));
}

void GhostComm::push_updates_two_sided(comm::Comm& comm, KmcModel& model,
                                       int sector,
                                       std::span<const SiteUpdate> updates) {
  const int tag = comm::tags::sector(kTagOnDemand, sector);
  comm::NeighborhoodExchange nx(comm);
  // The neighbor SET is static even though the payloads are dynamic, so the
  // receives can be posted up front; the paper's runtime-discovery cost
  // survives as the variable message size. Each site is modified by exactly
  // one rank per sector, so updates from different neighbors touch disjoint
  // gids and arrival-order application is deterministic.
  for (int q : neighbors_) nx.expect(q, tag);
  std::vector<SiteUpdate> out;
  for (std::size_t qi = 0; qi < neighbors_.size(); ++qi) {
    out.clear();
    for (const SiteUpdate& u : updates) {
      if (peer_has_image(qi, u.gid)) out.push_back(u);
    }
    // The paper's point about two-sided on-demand: the message must be sent
    // even when empty, or the receiver cannot know the epoch is over.
    nx.send(neighbors_[qi], tag, std::as_bytes(std::span<const SiteUpdate>(out)));
    traffic_.bytes_sent += out.size() * sizeof(SiteUpdate);
    ++traffic_.messages_sent;
  }
  nx.complete([&](std::size_t, comm::Message&& m) {
    for (const SiteUpdate& u : comm::unpack<SiteUpdate>(m.payload)) {
      model.set_state_global(u.gid, static_cast<SiteState>(u.state));
    }
  });
}

void GhostComm::push_updates_one_sided(comm::Comm& comm, KmcModel& model,
                                       std::span<const SiteUpdate> updates) {
  std::vector<SiteUpdate> out;
  for (std::size_t qi = 0; qi < neighbors_.size(); ++qi) {
    out.clear();
    for (const SiteUpdate& u : updates) {
      if (peer_has_image(qi, u.gid)) out.push_back(u);
    }
    if (!out.empty()) {
      comm.put(*window_, neighbors_[qi], std::span<const SiteUpdate>(out));
      traffic_.bytes_sent += out.size() * sizeof(SiteUpdate);
      ++traffic_.messages_sent;
    }
  }
  // Fence: a global synchronization completes the epoch (paper §2.2.1).
  comm.barrier();
  for (const SiteUpdate& u : comm.drain<SiteUpdate>(*window_)) {
    model.set_state_global(u.gid, static_cast<SiteState>(u.state));
  }
  comm.barrier();
}

}  // namespace mmd::kmc
