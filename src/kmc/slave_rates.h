#pragma once

#include <cstdint>
#include <vector>

#include "kmc/model.h"
#include "sunway/slave_pool.h"

namespace mmd::kmc {

/// A candidate vacancy-exchange event (local storage indices).
struct EventCandidate {
  std::size_t vac = 0;
  std::size_t nb = 0;
};

/// Slave-core accelerated exchange-energy evaluation (paper §2.2: the KMC
/// EAM interpolation "is the same as MD and can be accelerated by the slave
/// cores").
///
/// Candidates are partitioned over the slave cores. Each core stages the
/// compacted table of the active pass in its local store and, per candidate,
/// DMAs the two (2h+1)^3-cell site-state windows around the vacancy and its
/// partner (a few hundred bytes each — KMC state is one byte per site, the
/// "data compaction" effect is even stronger than in MD). Two table passes
/// mirror the MD kernel:
///   pass f   (density table resident): host densities before/after the swap
///   pass phi (pair table resident)   : pair-energy sums before/after
/// The embedding terms (two lookups per candidate) are applied on the master
/// core. Results are bit-compatible with KmcModel::exchange_dE.
class SlaveRateCompute {
 public:
  SlaveRateCompute(const pot::EamTableSet& tables, sw::SlaveCorePool& pool);

  /// dE for every candidate, in order.
  std::vector<double> exchange_dE_batch(const KmcModel& model,
                                        const std::vector<EventCandidate>& events);

  sw::DmaStats dma_stats() const { return pool_->aggregate_dma_stats(); }
  void reset_stats() { pool_->reset_stats(); }

 private:
  enum class Pass { Density, Pair };

  void run_pass(const KmcModel& model, const std::vector<EventCandidate>& events,
                Pass pass, std::vector<double>& before,
                std::vector<double>& after);

  const pot::EamTableSet* tables_;
  sw::SlaveCorePool* pool_;
};

}  // namespace mmd::kmc
