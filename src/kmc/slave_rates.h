#pragma once

#include <cstdint>
#include <vector>

#include "kmc/model.h"
#include "sunway/slave_pool.h"

namespace mmd::kmc {

/// A candidate vacancy-exchange event (local storage indices).
struct EventCandidate {
  std::size_t vac = 0;
  std::size_t nb = 0;
};

/// Slave-core accelerated exchange-energy evaluation (paper §2.2: the KMC
/// EAM interpolation "is the same as MD and can be accelerated by the slave
/// cores").
///
/// Candidates are partitioned over the slave cores. Each core stages the
/// compacted table of the active pass in its local store and, per candidate,
/// DMAs the two (2h+1)^3-cell site-state windows around the vacancy and its
/// partner (a few hundred bytes each — KMC state is one byte per site, the
/// "data compaction" effect is even stronger than in MD). Two table passes
/// mirror the MD kernel:
///   pass f   (density table resident): host densities before/after the swap
///   pass phi (pair table resident)   : pair-energy sums before/after
/// The embedding terms (two lookups per candidate) are applied on the master
/// core. Results are bit-compatible with KmcModel::exchange_dE, and each
/// candidate's dE depends only on its own neighborhood — batch composition
/// (full rescan vs a dirty subset) never changes a value, which the
/// incremental event table relies on.
///
/// Scratch buffers (pass results + the dE epilogue) are members reused
/// across calls: the incremental engine calls this once per executed event
/// with a small dirty batch, so per-call allocation would dominate.
class SlaveRateCompute {
 public:
  SlaveRateCompute(const pot::EamTableSet& tables, sw::SlaveCorePool& pool);

  /// dE for every candidate, in order. The returned reference points at
  /// member scratch and is invalidated by the next call.
  const std::vector<double>& exchange_dE_batch(
      const KmcModel& model, const std::vector<EventCandidate>& events);

  sw::DmaStats dma_stats() const { return pool_->aggregate_dma_stats(); }
  void reset_stats() {
    pool_->reset_stats();
    density_dma_ = {};
    pair_dma_ = {};
  }

  /// DMA traffic attributed to each table pass across all batches since the
  /// last reset_stats() (also mirrored into the `kmc.rates.dma.*` telemetry
  /// counters). Attribution assumes this object's batches are not
  /// interleaved with other users of the same pool mid-call.
  const sw::DmaStats& density_dma_stats() const { return density_dma_; }
  const sw::DmaStats& pair_dma_stats() const { return pair_dma_; }

 private:
  enum class Pass { Density, Pair };

  void run_pass(const KmcModel& model, const std::vector<EventCandidate>& events,
                Pass pass, std::vector<double>& before,
                std::vector<double>& after);

  const pot::EamTableSet* tables_;
  sw::SlaveCorePool* pool_;
  // Reused scratch: pass outputs and the assembled per-candidate dE.
  std::vector<double> rho_before_, rho_after_, pair_before_, pair_after_;
  std::vector<double> de_;
  sw::DmaStats density_dma_;
  sw::DmaStats pair_dma_;
};

}  // namespace mmd::kmc
