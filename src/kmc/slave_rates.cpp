#include "kmc/slave_rates.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "potential/table_access.h"
#include "telemetry/session.h"

namespace mmd::kmc {

SlaveRateCompute::SlaveRateCompute(const pot::EamTableSet& tables,
                                   sw::SlaveCorePool& pool)
    : tables_(&tables), pool_(&pool) {}

void SlaveRateCompute::run_pass(const KmcModel& model,
                                const std::vector<EventCandidate>& events,
                                Pass pass, std::vector<double>& before,
                                std::vector<double>& after) {
  before.assign(events.size(), 0.0);
  after.assign(events.size(), 0.0);
  const lat::LocalBox box = model.box();
  const SiteState* sites = model.raw_sites();

  // Contiguous fetch range covering every cutoff neighbor of a center.
  std::int64_t dmin = 0, dmax = 0;
  for (int sub = 0; sub <= 1; ++sub) {
    for (const std::int64_t d : model.cutoff_deltas(sub)) {
      dmin = std::min(dmin, d);
      dmax = std::max(dmax, d);
    }
  }
  const auto window_len = static_cast<std::size_t>(dmax - dmin + 1);

  const std::size_t n_events = events.size();
  const std::size_t n_cores = pool_->size();
  pool_->run([&](sw::SlaveCtx& ctx) {
    // Per-core staging, allocated once: the state window plus the resident
    // majority-species (Fe-Fe) table of this pass — the paper's residency
    // policy; minority-pair lookups fall back to main memory.
    auto* window =
        static_cast<std::uint8_t*>(ctx.local_store->allocate(window_len, 1));
    if (window == nullptr) {
      throw std::runtime_error("SlaveRateCompute: window does not fit local store");
    }
    const pot::CompactTable& fe_table =
        pass == Pass::Density ? tables_->f(0, 0) : tables_->phi(0, 0);
    pot::CompactTableAccess fe_access(fe_table, *ctx.local_store, *ctx.dma, true);

    const std::size_t chunk = (n_events + n_cores - 1) / n_cores;
    const std::size_t lo_i = ctx.core_id * chunk;
    const std::size_t hi_i = std::min(n_events, lo_i + chunk);
    for (std::size_t i = lo_i; i < hi_i; ++i) {
      const EventCandidate ev = events[i];
      const auto t = static_cast<int>(model.state(ev.nb));

      auto accumulate = [&](std::size_t center, std::size_t exclude) {
        const lat::LocalCoord c = box.coord_of(center);
        // Stage the contiguous site-state range around the center: one DMA.
        const std::int64_t lo = static_cast<std::int64_t>(center) + dmin;
        ctx.dma->get(window, sites + lo, window_len);
        double sum = 0.0;
        const auto& offsets = model.cutoff_offsets(c.sub);
        const auto& deltas = model.cutoff_deltas(c.sub);
        for (std::size_t k = 0; k < offsets.size(); ++k) {
          const auto n = static_cast<std::size_t>(
              static_cast<std::int64_t>(center) + deltas[k]);
          if (n == exclude) continue;
          const auto s = static_cast<SiteState>(
              window[static_cast<std::int64_t>(n) - lo]);
          if (!is_atom(s)) continue;
          double v;
          if (t == 0 && static_cast<int>(s) == 0) {
            fe_access.eval(std::sqrt(offsets[k].dist2), &v, nullptr);
          } else if (pass == Pass::Density) {
            v = tables_->f(t, static_cast<int>(s)).value(std::sqrt(offsets[k].dist2));
          } else {
            v = tables_->phi(t, static_cast<int>(s)).value(std::sqrt(offsets[k].dist2));
          }
          sum += v;
        }
        return sum;
      };

      before[i] = accumulate(ev.nb, static_cast<std::size_t>(-1));
      // Pair pass: the hopping atom's old site is excluded from the new
      // environment. Density pass: keep it — the master-core epilogue
      // applies the pair-distance correction exactly as exchange_dE does.
      after[i] = accumulate(ev.vac, pass == Pass::Pair
                                        ? ev.nb
                                        : static_cast<std::size_t>(-1));
    }
  });
}

namespace {

sw::DmaStats dma_delta(const sw::DmaStats& after, const sw::DmaStats& before) {
  sw::DmaStats d;
  d.get_ops = after.get_ops - before.get_ops;
  d.put_ops = after.put_ops - before.put_ops;
  d.get_bytes = after.get_bytes - before.get_bytes;
  d.put_bytes = after.put_bytes - before.put_bytes;
  return d;
}

}  // namespace

const std::vector<double>& SlaveRateCompute::exchange_dE_batch(
    const KmcModel& model, const std::vector<EventCandidate>& events) {
  const sw::DmaStats at_start = pool_->aggregate_dma_stats();
  run_pass(model, events, Pass::Density, rho_before_, rho_after_);
  const sw::DmaStats after_density = pool_->aggregate_dma_stats();
  run_pass(model, events, Pass::Pair, pair_before_, pair_after_);
  const sw::DmaStats density = dma_delta(after_density, at_start);
  const sw::DmaStats pair =
      dma_delta(pool_->aggregate_dma_stats(), after_density);
  density_dma_ += density;
  pair_dma_ += pair;
  telemetry::count("kmc.rates.dma.density_bytes", density.total_bytes());
  telemetry::count("kmc.rates.dma.pair_bytes", pair.total_bytes());

  const auto& rho_before = rho_before_;
  const auto& rho_after = rho_after_;
  const auto& pair_before = pair_before_;
  const auto& pair_after = pair_after_;

  // Master-core epilogue: the pair-distance density correction (the hopping
  // atom no longer contributes to its own new host density) and the
  // embedding terms.
  const lat::LocalBox box = model.box();
  std::vector<double>& dE = de_;
  dE.assign(events.size(), 0.0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const EventCandidate ev = events[i];
    const auto t = static_cast<int>(model.state(ev.nb));
    const lat::LocalCoord cv = box.coord_of(ev.vac);
    double rho_corr = 0.0;
    const auto& offsets = model.cutoff_offsets(cv.sub);
    const auto& deltas = model.cutoff_deltas(cv.sub);
    for (std::size_t k = 0; k < offsets.size(); ++k) {
      if (static_cast<std::size_t>(static_cast<std::int64_t>(ev.vac) +
                                   deltas[k]) == ev.nb) {
        rho_corr = tables_->f(t, t).value(std::sqrt(offsets[k].dist2));
        break;
      }
    }
    const auto& embed = tables_->embed_of(t);
    const double e_before = embed.value(rho_before[i]) + pair_before[i];
    const double e_after = embed.value(rho_after[i] - rho_corr) + pair_after[i];
    dE[i] = e_after - e_before;
  }
  return dE;
}

}  // namespace mmd::kmc
