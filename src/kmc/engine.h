#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "comm/world.h"
#include "kmc/comm_strategy.h"
#include "kmc/event_table.h"
#include "kmc/model.h"
#include "kmc/slave_rates.h"
#include "util/rng.h"
#include "util/timer.h"

namespace mmd::kmc {

/// Aggregate statistics of a KMC run on one rank.
struct KmcStats {
  std::uint64_t events = 0;
  std::uint64_t cycles = 0;
  double mc_time = 0.0;  ///< accumulated MC clock [s]
};

/// Everything beyond the site array that a checkpoint must capture for a
/// resumed run to continue bit-identically: the cycle counter seeds the
/// per-sector RNG streams, `last_max_rate` seeds the next cycle's dt
/// synchronization, and the generator state (not the seed!) pins the draw
/// sequence.
struct KmcEngineState {
  std::uint64_t events = 0;
  std::uint64_t cycles = 0;
  double mc_time = 0.0;
  double last_max_rate = 0.0;
  std::uint64_t rng_state = 0;
};

/// Parallel AKMC engine implementing the semirigorous synchronous sublattice
/// method (Shim & Amar, paper Fig. 7):
///
///   per cycle: compute dt (global max-rate synchronization), then process
///   the 8 sectors of the subdomain sequentially. Within a sector, vacancy
///   exchange events are selected with BKL residence-time sampling until the
///   sector's local clock passes dt. Ghost consistency between sectors is
///   maintained by the pluggable GhostComm strategy (traditional full-shell
///   get/put vs the paper's on-demand updates).
///
/// With a fixed seed the event sequence is identical under every strategy,
/// which the equivalence tests exploit.
class KmcEngine {
 public:
  KmcEngine(const KmcConfig& cfg, const lat::BccGeometry& geo,
            const lat::DomainDecomposition& dd, const pot::EamTableSet& tables,
            int rank, GhostStrategy strategy);

  /// Collective: scatter vacancies with the given concentration (seeded per
  /// site, decomposition-independent) and initialize ghosts. A nonzero
  /// `solute_fraction` additionally converts that fraction of the remaining
  /// atoms to Cu — the Fe-Cu configuration whose vacancy-driven solute
  /// transport models Cu precipitation in alpha-Fe (paper refs [1, 2]).
  /// Requires alloy tables when solute_fraction > 0.
  void initialize_random(comm::Comm& comm, double vacancy_concentration,
                         double solute_fraction = 0.0);

  /// Collective: vacancies at the given owned global site ranks (the MD
  /// handoff path) plus ghost initialization.
  void initialize_sites(comm::Comm& comm, std::span<const std::int64_t> owned_vacancies);

  /// Checkpoint capture of the engine state (site states live in model()).
  KmcEngineState engine_state() const;

  /// Collective: adopt a checkpointed engine state after the model's owned
  /// sites were restored; re-initializes ghost images from their owners.
  /// Replaces initialize_random/initialize_sites on the resume path.
  void restore_state(comm::Comm& comm, const KmcEngineState& s);

  /// Advance `n` cycles; returns events executed on this rank.
  std::uint64_t run_cycles(comm::Comm& comm, int n);

  /// Advance until the MC clock reaches the configured t_threshold.
  void run_to_threshold(comm::Comm& comm);

  double mc_time() const { return stats_.mc_time; }
  const KmcStats& stats() const { return stats_; }
  KmcModel& model() { return model_; }
  const KmcModel& model() const { return model_; }
  GhostComm& ghost_comm() { return ghosts_; }

  /// Gather every rank's vacancy site list on rank 0 (others get empty).
  std::vector<std::int64_t> gather_vacancies(comm::Comm& comm) const;

  /// Global vacancy concentration C_MC (collective).
  double vacancy_concentration(comm::Comm& comm) const;

  double computation_seconds() const { return comp_.total(); }
  double communication_seconds() const { return comm_time_.total(); }

  /// Attach the slave-core rate kernel (nullptr restores the master-core
  /// path). Event energetics are identical either way.
  void use_slave_rates(SlaveRateCompute* kernel) { slave_rates_ = kernel; }

  /// Executed events as (vacancy gid, atom gid) pairs, recorded when
  /// cfg.record_events is set (test hook for sequence equivalence).
  const std::vector<std::pair<std::int64_t, std::int64_t>>& event_log() const {
    return event_log_;
  }

 private:
  /// Sector membership of an owned local coordinate.
  int sector_of(const lat::LocalCoord& c) const;

  /// Append the candidate events of the owned vacancy at `vac` (its occupied
  /// 1NNs) to batch_/slots_, in canonical nn-offset order.
  void enumerate_candidates(std::size_t vac);

  /// Rate batch_ (slave kernel or master path), write the rates into the
  /// event table at slots_, and fold the per-batch maximum into *max_rate.
  void apply_batch(double* max_rate);

  /// Rebuild the sector's table from scratch: clear every touched block,
  /// re-enumerate every in-sector vacancy, recompute every dE. The
  /// per-executed-event cost of the kmc.incremental=off oracle.
  void rebuild_sector_table(int sector, double* max_rate);

  /// Dirty-region maintenance after a swap of (gid_vac, gid_atom): refresh
  /// only the candidate blocks inside the invalidation shell of the two
  /// sites' local images. Leaves the table bit-identical to what
  /// rebuild_sector_table would produce.
  void update_after_event(int sector, std::int64_t gid_vac,
                          std::int64_t gid_atom, double* max_rate);

  void process_sector(comm::Comm& comm, int sector, double dt,
                      std::uint64_t cycle);

  KmcConfig cfg_;
  KmcModel model_;
  GhostComm ghosts_;
  SlaveRateCompute* slave_rates_ = nullptr;
  util::Rng base_rng_;
  KmcStats stats_;
  double last_max_rate_ = 0.0;
  bool initialized_ = false;
  mutable util::AccumTimer comp_;
  mutable util::AccumTimer comm_time_;

  // --- incremental event-table state (reused scratch, no per-event allocs) ---
  EventTable table_;
  std::vector<EventCandidate> batch_;     ///< candidates awaiting rating
  std::vector<std::size_t> slots_;        ///< table slot per batch_ entry
  std::vector<double> de_scratch_;        ///< master-core path dE output
  std::vector<std::size_t> dirty_sites_;  ///< owned entries to refresh
  std::vector<std::uint8_t> dirty_mark_;  ///< per-ordinal dedup flags
  std::vector<std::size_t> images_;       ///< images_of_global scratch
  std::vector<std::pair<std::int64_t, std::int64_t>> event_log_;
  // Per-run telemetry accumulators, flushed once per sector.
  std::uint64_t rates_recomputed_ = 0;
  std::uint64_t rates_reused_ = 0;
  std::uint64_t candidates_seen_ = 0;
};

/// Geometry/decomposition pair for a KMC-only run.
struct KmcSetup {
  lat::BccGeometry geo;
  lat::DomainDecomposition dd;

  KmcSetup(const KmcConfig& cfg, int nranks);
};

}  // namespace mmd::kmc
