#pragma once

#include <cstdint>
#include <vector>

#include "lattice/geometry.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"
#include "util/vec3.h"

namespace mmd::kmc {

/// Configuration of the object-KMC comparison engine.
struct OkmcConfig {
  int nx = 16, ny = 16, nz = 16;
  double lattice_constant = util::iron::kLatticeConstant;
  double temperature = 600.0;
  double prefactor = util::iron::kAttemptFrequency;       ///< nu [1/s]
  double migration_barrier = util::iron::kVacancyMigrationBarrier;  ///< monovacancy E_m
  /// Cluster mobility decays with size: E_m(n) = E_m + mobility_slope*ln(n).
  double mobility_slope = 0.08;
  /// Divacancy binding energy [eV]; with the formation energy it anchors the
  /// capillary-law binding of larger clusters.
  double binding_e2 = 0.30;
  double formation_energy = util::iron::kVacancyFormationEnergy;
  /// Capture radius of a size-n cluster: r0 * n^(1/3) [A].
  double capture_r0 = 3.3;
  std::uint64_t seed = 42;
};

/// Object kinetic Monte Carlo over vacancy clusters — the coarse-grained
/// alternative to the paper's atomistic KMC (paper §2.2 chooses AKMC; OKMC
/// appears in its related work via MMonCa [15] and the GPU OKMC of Jiménez &
/// Ortiz [13]). Objects are whole vacancy clusters with continuous positions;
/// events are cluster diffusion hops and monovacancy emission; absorption is
/// geometric (capture radii). Coarse-graining loses on-lattice detail but
/// steps clusters, not vacancies — the standard trade OKMC makes to reach
/// longer times.
///
/// Serial by design: it serves as a physics cross-check for the AKMC engine
/// (bench/abl_okmc_vs_akmc), not as a scaling vehicle.
class OkmcEngine {
 public:
  struct Object {
    util::Vec3 r;
    int size = 1;
  };

  explicit OkmcEngine(const OkmcConfig& cfg);

  /// Seed monovacancies at the given positions (e.g. an MD handoff or a
  /// random distribution); merges immediately-overlapping ones.
  void initialize(const std::vector<util::Vec3>& vacancy_positions);

  /// Execute one BKL event; returns false when no event is possible.
  bool step();

  void run_events(int n);
  void run_until(double t_s);

  double time() const { return time_; }
  std::uint64_t events() const { return events_; }

  const std::vector<Object>& objects() const { return objects_; }

  /// Total vacancies across all objects (conserved).
  std::int64_t total_vacancies() const;

  util::Histogram size_histogram() const;
  double mean_cluster_size() const;

  // --- rate model (exposed for tests) ---
  double hop_rate(int size) const;
  double emission_rate(int size) const;
  /// Capillary binding energy of removing one vacancy from a size-n cluster.
  double binding_energy(int size) const;
  double capture_radius(int size) const {
    return cfg_.capture_r0 * std::cbrt(static_cast<double>(size));
  }

 private:
  void coalesce_around(std::size_t idx);
  util::Vec3 wrap(util::Vec3 r) const;

  OkmcConfig cfg_;
  lat::BccGeometry geo_;
  util::Rng rng_;
  std::vector<Object> objects_;
  double time_ = 0.0;
  std::uint64_t events_ = 0;
  double kT_;
  double hop_dist_;
};

}  // namespace mmd::kmc
