#include "md/newton_force.h"

#include <cmath>
#include <stdexcept>

namespace mmd::md {

namespace {

/// Run-away complement shared with the reference semantics: every chain node
/// (owned or ghost) contributes to nearby OWNED lattice atoms; every owned
/// run-away computes its own full sums. Mirrors the slave-kernel complement.
template <typename PerPair>
void complement_chains(lat::LatticeNeighborList& lnl, double cutoff,
                       PerPair&& add_to_entry) {
  const lat::LocalBox box = lnl.box();
  const double cut2 = cutoff * cutoff;
  for (std::size_t host = 0; host < lnl.size(); ++host) {
    for (std::int32_t ri = lnl.entry(host).runaway_head;
         ri != lat::AtomEntry::kNoRunaway; ri = lnl.runaway(ri).next) {
      const lat::RunawayAtom& a = lnl.runaway(ri);
      const lat::LocalCoord hc = box.coord_of(host);
      auto visit = [&](std::size_t idx) {
        lat::AtomEntry& e = lnl.entry(idx);
        if (!e.is_atom() || !box.owns(box.coord_of(idx))) return;
        const double r2 = (a.r - e.r).norm2();
        if (r2 > cut2 || r2 == 0.0) return;
        add_to_entry(e, a, std::sqrt(r2));
      };
      visit(host);
      for (const auto& o : lnl.offsets(hc.sub)) {
        const lat::LocalCoord nc{hc.x + o.dx, hc.y + o.dy, hc.z + o.dz, o.to_sub};
        if (box.in_storage(nc)) visit(box.entry_index(nc));
      }
    }
  }
}

}  // namespace

NewtonForce::NewtonForce(const pot::EamTableSet& tables) : tables_(&tables) {
  if (tables.num_species != 1) {
    throw std::invalid_argument("NewtonForce: single-species (Fe) only");
  }
}

void NewtonForce::compute_rho(comm::Comm& comm, lat::LatticeNeighborList& lnl,
                              lat::GhostExchange& ghosts) const {
  const double cut2 = tables_->cutoff * tables_->cutoff;
  const double r_min = tables_->r_min;
  const auto& ftab = tables_->f(0, 0);
  for (std::size_t i = 0; i < lnl.size(); ++i) lnl.entry(i).rho = 0.0;

  // Half loops over lattice pairs: the rank owning the smaller-id atom
  // evaluates the pair and credits both sides.
  for (std::size_t idx : lnl.owned_indices()) {
    lat::AtomEntry& e = lnl.entry(idx);
    if (!e.is_atom()) continue;
    const int sub = static_cast<int>(idx & 1);
    for (const std::int64_t d : lnl.deltas(sub)) {
      const std::size_t n = idx + static_cast<std::size_t>(d);
      lat::AtomEntry& o = lnl.entry(n);
      if (!o.is_atom() || o.id <= e.id) continue;
      const double r2 = (o.r - e.r).norm2();
      if (r2 > cut2) continue;
      const double f = ftab.value(std::max(std::sqrt(r2), r_min));
      e.rho += f;
      o.rho += f;  // possibly a ghost: returned by the reverse accumulation
    }
  }
  // Run-aways: full-loop complement.
  complement_chains(lnl, tables_->cutoff,
                    [&](lat::AtomEntry& e, const lat::RunawayAtom&, double r) {
                      e.rho += ftab.value(std::max(r, r_min));
                    });
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    lat::RunawayAtom& a = lnl.runaway(ri);
    double rho = 0.0;
    lnl.for_each_neighbor_of_runaway(ri, host, [&](const lat::ParticleView& p) {
      const double r2 = (p.r - a.r).norm2();
      if (r2 > cut2) return;
      rho += ftab.value(std::max(std::sqrt(r2), r_min));
    });
    a.rho = rho;
  });

  ghosts.reverse_accumulate_rho(comm);
  ghosts.exchange_rho(comm);
}

void NewtonForce::compute_forces(comm::Comm& comm, lat::LatticeNeighborList& lnl,
                                 lat::GhostExchange& ghosts) const {
  const double cut2 = tables_->cutoff * tables_->cutoff;
  const double r_min = tables_->r_min;
  const auto& ftab = tables_->f(0, 0);
  const auto& phit = tables_->phi(0, 0);
  const auto& embed = tables_->embed_of(0);
  for (std::size_t i = 0; i < lnl.size(); ++i) lnl.entry(i).f = {};

  for (std::size_t idx : lnl.owned_indices()) {
    lat::AtomEntry& e = lnl.entry(idx);
    if (!e.is_atom()) continue;
    const double fp_e = embed.derivative(e.rho);
    const int sub = static_cast<int>(idx & 1);
    for (const std::int64_t d : lnl.deltas(sub)) {
      const std::size_t n = idx + static_cast<std::size_t>(d);
      lat::AtomEntry& o = lnl.entry(n);
      if (!o.is_atom() || o.id <= e.id) continue;
      const util::Vec3 dv = o.r - e.r;
      const double r2 = dv.norm2();
      if (r2 > cut2 || r2 == 0.0) continue;
      const double r = std::max(std::sqrt(r2), r_min);
      double dphi, df;
      phit.eval(r, nullptr, &dphi);
      ftab.eval(r, nullptr, &df);
      const double fp_o = embed.derivative(o.rho);
      const util::Vec3 pair = dv * ((dphi + (fp_e + fp_o) * df) / r);
      e.f += pair;
      o.f -= pair;
    }
  }
  // Run-aways: full complement (adds to owned atoms and computes own force).
  complement_chains(lnl, tables_->cutoff,
                    [&](lat::AtomEntry& e, const lat::RunawayAtom& a, double r_true) {
                      const double r = std::max(r_true, r_min);
                      double dphi, df;
                      phit.eval(r, nullptr, &dphi);
                      ftab.eval(r, nullptr, &df);
                      const double fp_e = embed.derivative(e.rho);
                      const double fp_a = embed.derivative(a.rho);
                      const util::Vec3 dv = a.r - e.r;
                      e.f += dv * ((dphi + (fp_e + fp_a) * df) / r_true);
                    });
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    lat::RunawayAtom& a = lnl.runaway(ri);
    const double fp_a = embed.derivative(a.rho);
    util::Vec3 force{};
    lnl.for_each_neighbor_of_runaway(ri, host, [&](const lat::ParticleView& p) {
      const util::Vec3 dv = p.r - a.r;
      const double r2 = dv.norm2();
      if (r2 > cut2 || r2 == 0.0) return;
      const double r = std::max(std::sqrt(r2), r_min);
      double dphi, df;
      phit.eval(r, nullptr, &dphi);
      ftab.eval(r, nullptr, &df);
      const double fp_p = embed.derivative(p.rho);
      force += dv * ((dphi + (fp_a + fp_p) * df) / r);
    });
    a.f = force;
  });

  ghosts.reverse_accumulate_force(comm);
}

}  // namespace mmd::md
