#pragma once

#include <span>

#include "lattice/lattice_neighbor_list.h"
#include "potential/eam.h"

namespace mmd::md {

/// Master-core (reference) EAM evaluation over the lattice neighbor list.
///
/// All arithmetic goes through the compacted interpolation tables — the same
/// tables and the same Hermite evaluation the slave-core kernels use — so the
/// accelerated strategies can be tested for exact agreement against this
/// path. Two-pass EAM:
///   pass 1: rho_i = sum_j f_{t_i t_j}(r_ij)           (+ ghost rho exchange)
///   pass 2: F_i  += [phi'(r) + (F'(rho_i) + F'(rho_j)) f'(r)] * d_hat
/// Forces are written for owned lattice atoms and owned run-away atoms; ghost
/// entries are read-only.
class ReferenceForce {
 public:
  explicit ReferenceForce(const pot::EamTableSet& tables) : tables_(&tables) {}

  /// Pass 1: electron density at every owned atom (lattice + run-away).
  void compute_rho(lat::LatticeNeighborList& lnl) const;

  /// Pass 2: forces on every owned atom. Requires rho valid on owned AND
  /// ghost entries (run exchange_rho between passes in parallel runs).
  void compute_forces(lat::LatticeNeighborList& lnl) const;

  /// Pass 2 restricted to the given lattice entries. Used by the overlap
  /// split: interior entries (lnl.owned_interior_indices()) only read owned
  /// rho, so they can be computed while the rho exchange is in flight;
  /// boundary entries follow after it completes. Per-entry force is a plain
  /// assignment, so any partition of owned_indices() reproduces
  /// compute_forces exactly.
  void compute_entry_forces(lat::LatticeNeighborList& lnl,
                            std::span<const std::size_t> indices) const;

  /// Pass 2 for the owned run-away atoms (their stencils may reach ghost
  /// chains anywhere in the halo: requires the completed rho exchange).
  void compute_runaway_forces(lat::LatticeNeighborList& lnl) const;

  /// Potential energy attributed to this rank's owned atoms:
  /// sum_i [ F(rho_i) + 1/2 sum_j phi(r_ij) ].
  double potential_energy(const lat::LatticeNeighborList& lnl) const;

  /// Embedding derivative F'(rho) for a species, via the tables.
  double fprime(int species, double rho) const {
    return tables_->embed_of(species).derivative(rho);
  }

  const pot::EamTableSet& tables() const { return *tables_; }

 private:
  const pot::EamTableSet* tables_;
};

}  // namespace mmd::md
