#pragma once

#include "lattice/lattice_neighbor_list.h"
#include "potential/eam.h"

namespace mmd::md {

/// Master-core (reference) EAM evaluation over the lattice neighbor list.
///
/// All arithmetic goes through the compacted interpolation tables — the same
/// tables and the same Hermite evaluation the slave-core kernels use — so the
/// accelerated strategies can be tested for exact agreement against this
/// path. Two-pass EAM:
///   pass 1: rho_i = sum_j f_{t_i t_j}(r_ij)           (+ ghost rho exchange)
///   pass 2: F_i  += [phi'(r) + (F'(rho_i) + F'(rho_j)) f'(r)] * d_hat
/// Forces are written for owned lattice atoms and owned run-away atoms; ghost
/// entries are read-only.
class ReferenceForce {
 public:
  explicit ReferenceForce(const pot::EamTableSet& tables) : tables_(&tables) {}

  /// Pass 1: electron density at every owned atom (lattice + run-away).
  void compute_rho(lat::LatticeNeighborList& lnl) const;

  /// Pass 2: forces on every owned atom. Requires rho valid on owned AND
  /// ghost entries (run exchange_rho between passes in parallel runs).
  void compute_forces(lat::LatticeNeighborList& lnl) const;

  /// Potential energy attributed to this rank's owned atoms:
  /// sum_i [ F(rho_i) + 1/2 sum_j phi(r_ij) ].
  double potential_energy(const lat::LatticeNeighborList& lnl) const;

  /// Embedding derivative F'(rho) for a species, via the tables.
  double fprime(int species, double rho) const {
    return tables_->embed_of(species).derivative(rho);
  }

  const pot::EamTableSet& tables() const { return *tables_; }

 private:
  const pot::EamTableSet* tables_;
};

}  // namespace mmd::md
