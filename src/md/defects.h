#pragma once

#include <cstdint>

#include "util/vec3.h"

namespace mmd::md {

/// Defect census of the whole box (allreduced).
struct DefectSummary {
  std::uint64_t atoms = 0;
  std::uint64_t vacancies = 0;
  std::uint64_t interstitials = 0;  ///< live run-away atoms
};

/// One owned vacancy, as handed to the KMC stage (paper: "MD outputs the
/// coordinates of vacancy and the information of atoms").
struct VacancyRecord {
  std::int64_t site_rank = 0;
  util::Vec3 position;
};

}  // namespace mmd::md
