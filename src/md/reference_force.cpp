#include "md/reference_force.h"

#include <algorithm>
#include <cmath>

namespace mmd::md {

namespace {

int sp(lat::Species s) { return static_cast<int>(s); }

}  // namespace

void ReferenceForce::compute_rho(lat::LatticeNeighborList& lnl) const {
  const double cut2 = tables_->cutoff * tables_->cutoff;
  const double r_min = tables_->r_min;
  auto accumulate = [&](const util::Vec3& r0, int t0, auto&& visit) {
    double rho = 0.0;
    visit([&](const lat::ParticleView& p) {
      const double r2 = (p.r - r0).norm2();
      if (r2 > cut2) return;
      const double r = std::max(std::sqrt(r2), r_min);
      rho += tables_->f(t0, sp(p.type)).value(r);
    });
    return rho;
  };
  for (std::size_t idx : lnl.owned_indices()) {
    lat::AtomEntry& e = lnl.entry(idx);
    if (!e.is_atom()) continue;
    e.rho = accumulate(e.r, sp(e.type), [&](auto&& f) {
      lnl.for_each_neighbor_of_entry(idx, f);
    });
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    lat::RunawayAtom& a = lnl.runaway(ri);
    a.rho = accumulate(a.r, sp(a.type), [&](auto&& f) {
      lnl.for_each_neighbor_of_runaway(ri, host, f);
    });
  });
}

namespace {

/// The pass-2 per-particle kernel, shared by the entry and run-away drivers.
template <typename Visit>
util::Vec3 eam_force_on(const pot::EamTableSet& tables, const util::Vec3& r0,
                        int t0, double rho0, Visit&& visit) {
  const double cut2 = tables.cutoff * tables.cutoff;
  const double r_min = tables.r_min;
  const double fp0 = tables.embed_of(t0).derivative(rho0);
  util::Vec3 force;
  visit([&](const lat::ParticleView& p) {
    const util::Vec3 d = p.r - r0;
    const double r2 = d.norm2();
    if (r2 > cut2 || r2 == 0.0) return;
    const double r = std::max(std::sqrt(r2), r_min);
    const int t1 = sp(p.type);
    double dphi, df;
    tables.phi(t0, t1).eval(r, nullptr, &dphi);
    tables.f(t0, t1).eval(r, nullptr, &df);
    const double fp1 = tables.embed_of(t1).derivative(p.rho);
    const double scale = (dphi + (fp0 + fp1) * df) / r;
    force += d * scale;
  });
  return force;
}

}  // namespace

void ReferenceForce::compute_entry_forces(
    lat::LatticeNeighborList& lnl, std::span<const std::size_t> indices) const {
  for (std::size_t idx : indices) {
    lat::AtomEntry& e = lnl.entry(idx);
    if (!e.is_atom()) continue;
    e.f = eam_force_on(*tables_, e.r, sp(e.type), e.rho, [&](auto&& f) {
      lnl.for_each_neighbor_of_entry(idx, f);
    });
  }
}

void ReferenceForce::compute_runaway_forces(lat::LatticeNeighborList& lnl) const {
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    lat::RunawayAtom& a = lnl.runaway(ri);
    a.f = eam_force_on(*tables_, a.r, sp(a.type), a.rho, [&](auto&& f) {
      lnl.for_each_neighbor_of_runaway(ri, host, f);
    });
  });
}

void ReferenceForce::compute_forces(lat::LatticeNeighborList& lnl) const {
  compute_entry_forces(lnl, lnl.owned_indices());
  compute_runaway_forces(lnl);
}

double ReferenceForce::potential_energy(const lat::LatticeNeighborList& lnl) const {
  const double cut2 = tables_->cutoff * tables_->cutoff;
  const double r_min = tables_->r_min;
  auto energy_of = [&](const util::Vec3& r0, int t0, double rho0, auto&& visit) {
    double e = tables_->embed_of(t0).value(rho0);
    visit([&](const lat::ParticleView& p) {
      const double r2 = (p.r - r0).norm2();
      if (r2 > cut2 || r2 == 0.0) return;
      const double r = std::max(std::sqrt(r2), r_min);
      e += 0.5 * tables_->phi(t0, sp(p.type)).value(r);
    });
    return e;
  };
  double total = 0.0;
  for (std::size_t idx : lnl.owned_indices()) {
    const lat::AtomEntry& e = lnl.entry(idx);
    if (!e.is_atom()) continue;
    total += energy_of(e.r, sp(e.type), e.rho, [&](auto&& f) {
      lnl.for_each_neighbor_of_entry(idx, f);
    });
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    const lat::RunawayAtom& a = lnl.runaway(ri);
    total += energy_of(a.r, sp(a.type), a.rho, [&](auto&& f) {
      lnl.for_each_neighbor_of_runaway(ri, host, f);
    });
  });
  return total;
}

}  // namespace mmd::md
