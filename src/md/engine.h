#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/world.h"
#include "lattice/decomposition.h"
#include "lattice/ghost_exchange.h"
#include "lattice/lattice_neighbor_list.h"
#include "md/config.h"
#include "md/defects.h"
#include "md/reference_force.h"
#include "potential/eam.h"
#include "util/rng.h"
#include "util/timer.h"

namespace mmd::md {

class SlaveForceCompute;  // slave-core accelerated kernels (slave_force.h)

/// Extra margin added to the EAM cutoff when building the neighbor-offset
/// tables, so thermally displaced atoms are still found by the static
/// offsets; kernels filter by the true cutoff.
inline constexpr double kNeighborSkin = 0.6;

/// Per-rank molecular dynamics engine over the lattice neighbor list.
///
/// Velocity-Verlet NVE integration (optionally Berendsen-rescaled) with EAM
/// forces from the interpolation tables. Each time step:
///   1. half kick + drift,
///   2. detach atoms that left their lattice point, re-home run-aways,
///   3. three-phase ghost exchange (positions + run-away routing),
///   4. EAM pass 1 (rho), ghost-rho exchange, EAM pass 2 (forces),
///   5. half kick.
/// Forces can be computed by the reference master-core path or by the
/// slave-core block pipeline (see SlaveForceCompute) — both produce
/// identical physics.
class MdEngine {
 public:
  MdEngine(const MdConfig& cfg, const lat::BccGeometry& geo,
           const lat::DomainDecomposition& dd, const pot::EamTableSet& tables,
           int rank);

  /// Fill the perfect crystal, draw Maxwell-Boltzmann velocities (seeded per
  /// global site id, so results do not depend on the rank layout), exchange
  /// ghosts, and compute initial forces.
  void initialize(comm::Comm& comm);

  /// Give the atom at a global site a primary-knock-on kick of `energy_ev`
  /// along `direction` (collective: every rank must call; only the owner
  /// applies it). Models the incident irradiation particle of a cascade.
  void inject_pka(comm::Comm& comm, std::int64_t site_rank,
                  const util::Vec3& direction, double energy_ev);

  /// Convert a random fraction of atoms to the solute species (Fe-Cu alloy
  /// support, paper §2.1.2). Seeded per global site id, so the arrangement is
  /// independent of the decomposition. Collective (refreshes ghosts).
  /// Requires alloy tables; the slave-core kernel path does not support
  /// alloys (use the reference path).
  void seed_solutes(comm::Comm& comm, double fraction,
                    lat::Species solute = lat::Species::Cu);

  /// Advance one velocity-Verlet step (collective). The step length is
  /// cfg.dt, shortened when the fastest atom would move more than
  /// cfg.max_displacement (adaptive cascade stepping).
  void step(comm::Comm& comm);

  void run(comm::Comm& comm, int steps);

  /// Advance until at least `duration_ps` of simulated time has elapsed
  /// since initialize() (collective).
  void run_for(comm::Comm& comm, double duration_ps);

  /// Simulated physical time since initialize() [ps].
  double simulated_time() const { return time_; }

  /// Adopt an externally restored clock (checkpoint restart: the lattice is
  /// loaded by io::Checkpoint, which returns the saved time).
  void set_simulated_time(double t_ps) { time_ = t_ps; }

  /// Attach the slave-core force backend (nullptr restores the reference
  /// path). The pointer must outlive the engine's use of it.
  void use_slave_kernel(SlaveForceCompute* kernel) { slave_ = kernel; }

  // --- diagnostics (collective where a Comm is taken) ---

  double kinetic_energy(comm::Comm& comm) const;
  double potential_energy(comm::Comm& comm) const;
  double temperature(comm::Comm& comm) const;
  DefectSummary defects(comm::Comm& comm) const;

  /// Owned vacancies (local, no communication).
  std::vector<VacancyRecord> vacancies() const;

  lat::LatticeNeighborList& lattice() { return lnl_; }
  const lat::LatticeNeighborList& lattice() const { return lnl_; }
  const MdConfig& config() const { return cfg_; }
  int rank() const { return rank_; }

  /// Wall-clock split between computation and communication since
  /// initialize(), for the scaling benches.
  double computation_seconds() const { return comp_.total(); }
  double communication_seconds() const { return comm_time_.total(); }

 private:
  void compute_all_forces(comm::Comm& comm);
  void detach_and_rehome(comm::Comm& comm);
  double local_kinetic() const;

  MdConfig cfg_;
  const lat::BccGeometry* geo_;
  int rank_;
  lat::LatticeNeighborList lnl_;
  lat::GhostExchange ghosts_;
  const pot::EamTableSet* tables_;
  ReferenceForce ref_force_;
  SlaveForceCompute* slave_ = nullptr;
  double time_ = 0.0;
  mutable util::AccumTimer comp_;
  mutable util::AccumTimer comm_time_;
};

/// Build the geometry/decomposition pair implied by a config. Throws if the
/// box cannot host `nranks` subdomains with the needed halo.
struct MdSetup {
  lat::BccGeometry geo;
  lat::DomainDecomposition dd;

  MdSetup(const MdConfig& cfg, int nranks);
};

}  // namespace mmd::md
