#pragma once

#include <array>
#include <cstdint>

#include "lattice/atom.h"
#include "util/units.h"

namespace mmd::md {

/// Configuration of an MD run. Defaults follow the paper's experiment: BCC Fe
/// at a = 2.855 A, dt = 1 fs, T = 600 K, EAM cutoff within the 4th neighbor
/// shell.
struct MdConfig {
  int nx = 10, ny = 10, nz = 10;   ///< box size in unit cells
  double lattice_constant = util::iron::kLatticeConstant;
  double cutoff = 5.0;             ///< EAM cutoff radius [A]
  double dt = util::units::kFemtosecond;  ///< time step [ps]
  double temperature = 600.0;      ///< initial temperature [K]
  /// Atomic masses per species [amu]: Fe, Cu.
  std::array<double, 2> species_mass{util::iron::kMass, 63.546};

  double mass_of(lat::Species s) const {
    return species_mass[static_cast<std::size_t>(s)];
  }
  /// Displacement from the lattice point beyond which an atom is considered
  /// run-away and detached into the linked-list pool [A]. Half the BCC
  /// first-neighbor distance keeps normal thermal vibration on-lattice.
  double detach_threshold = 1.2;
  /// Adaptive time step: no atom may move further than this per step [A]
  /// (0 disables). During the ballistic phase of a cascade the step shrinks
  /// to keep the keV-scale atoms integrable; it relaxes back to `dt` as the
  /// cascade thermalizes. Standard practice for collision-cascade MD.
  double max_displacement = 0.05;
  std::uint64_t seed = 42;
  int table_segments = 5000;
  /// Berendsen velocity-rescale strength (0 disables the thermostat).
  double thermostat_rate = 0.0;
};

}  // namespace mmd::md
