#include "md/slave_force.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "md/slave_force_kernels.h"
#include "potential/table_access.h"
#include "telemetry/session.h"
#include "util/timer.h"

namespace mmd::md {

std::string to_string(AccelStrategy s) {
  switch (s) {
    case AccelStrategy::TraditionalTable: return "TraditionalTable";
    case AccelStrategy::CompactedTable: return "CompactedTable";
    case AccelStrategy::CompactedReuse: return "CompactedTable+DataReuse";
    case AccelStrategy::CompactedReuseDouble:
      return "CompactedTable+DataReuse+DoubleBuffer";
  }
  return "?";
}

bool SlaveForceCompute::simd_supported() { return detail::simd_available(); }

SlaveForceCompute::SlaveForceCompute(const pot::EamTableSet& tables,
                                     sw::SlaveCorePool& pool,
                                     AccelStrategy strategy)
    : tables_(&tables), pool_(&pool), strategy_(strategy),
      simd_(detail::simd_available()), compute_s_(pool.size(), 0.0) {
  if (tables.num_species != 1) {
    throw std::invalid_argument(
        "SlaveForceCompute: the slave-core path handles the single-species "
        "(Fe) configuration; use the reference path for alloys");
  }
}

void SlaveForceCompute::reset_stats() {
  pool_->reset_stats();
  std::fill(compute_s_.begin(), compute_s_.end(), 0.0);
  table_fallbacks_.store(0, std::memory_order_relaxed);
}

double SlaveForceCompute::compute_seconds() const {
  double m = 0.0;
  for (double c : compute_s_) m = std::max(m, c);
  return m;
}

double SlaveForceCompute::modeled_time() const {
  double worst = 0.0;
  for (std::size_t c = 0; c < pool_->size(); ++c) {
    const double dma = pool_->core(c).dma->modeled_time();
    const double comp = compute_s_[c];
    const double t = strategy_ == AccelStrategy::CompactedReuseDouble
                         ? std::max(dma, comp)
                         : dma + comp;
    worst = std::max(worst, t);
  }
  return worst;
}

void SlaveForceCompute::pack(const lat::LatticeNeighborList& lnl,
                             bool with_fprime) {
  planes_.reset(lnl.box());
  planes_.pack_positions(lnl);
  if (with_fprime) refresh_fprime(lnl);
}

void SlaveForceCompute::refresh_fprime(const lat::LatticeNeighborList& lnl) {
  const auto& embed = tables_->embed_of(0);
  double* fp = planes_.fprime();
  for (std::size_t i = 0; i < lnl.size(); ++i) {
    const lat::AtomEntry& e = lnl.entry(i);
    fp[planes_.slot(i)] = e.is_atom() ? embed.derivative(e.rho) : 0.0;
  }
}

void SlaveForceCompute::refresh_fprime_owned(const lat::LatticeNeighborList& lnl) {
  const auto& embed = tables_->embed_of(0);
  double* fp = planes_.fprime();
  for (std::size_t i : lnl.owned_indices()) {
    const lat::AtomEntry& e = lnl.entry(i);
    fp[planes_.slot(i)] = e.is_atom() ? embed.derivative(e.rho) : 0.0;
  }
}

void SlaveForceCompute::refresh_fprime_ghosts(const lat::LatticeNeighborList& lnl) {
  const auto& embed = tables_->embed_of(0);
  double* fp = planes_.fprime();
  for (std::size_t i = 0; i < lnl.size(); ++i) {
    if (lnl.is_owned(i)) continue;
    const lat::AtomEntry& e = lnl.entry(i);
    fp[planes_.slot(i)] = e.is_atom() ? embed.derivative(e.rho) : 0.0;
  }
}

template <SlaveForceCompute::Stage S, bool Traditional>
void SlaveForceCompute::sweep(
    lat::LatticeNeighborList& lnl, const lat::CellRegion& region,
    std::vector<std::conditional_t<S == Stage::Rho, double, util::Vec3>>& out) {
  using Out = std::conditional_t<S == Stage::Rho, double, util::Vec3>;
  constexpr bool kFused = S == Stage::FusedForce;
  // Planes a pass stages through the local store: x/y/z/id always, the
  // F'(rho) plane only when the stage's kernel reads it. Order matters —
  // the window pointer array below is indexed the same way.
  constexpr int kPlanes = (S == Stage::DensForce || kFused) ? 5 : 4;
  constexpr std::size_t kTailPad = 4;  ///< zeroed doubles per plane, so
                                       ///< full-width remainder loads stay
                                       ///< inside the allocation
  const lat::LocalBox box = lnl.box();
  const int h = box.halo;
  const int wy = 2 * h + 1;
  const int rows_per_window = wy * wy;
  // No zero-fill: every region entry is overwritten by the result DMA puts
  // below, and entries outside the swept regions are never read.
  out.resize(lnl.size());
  if (region.empty()) return;
  const bool reuse = strategy_ == AccelStrategy::CompactedReuse ||
                     strategy_ == AccelStrategy::CompactedReuseDouble;
  // Primary table of the sweep: phi for the pair-interaction stages, f for
  // the density ones. The fused sweep additionally needs f as secondary.
  const pot::CompactTable& primary = (S == Stage::PairForce || kFused)
                                         ? tables_->phi(0, 0)
                                         : tables_->f(0, 0);
  const pot::CompactTable& secondary = tables_->f(0, 0);
  const pot::CoefficientTable& trad_primary = (S == Stage::PairForce || kFused)
                                                  ? tables_->phi_trad
                                                  : tables_->f_trad;
  const pot::CoefficientTable& trad_secondary = tables_->f_trad;
  const double cutoff = tables_->cutoff;
  const double cut2 = cutoff * cutoff;
  const double r_min = tables_->r_min;

  const int ry = region.y1 - region.y0;
  const int rx = region.x1 - region.x0;
  const std::size_t total_rows = static_cast<std::size_t>(ry) *
                                 static_cast<std::size_t>(region.z1 - region.z0);

  // Main-memory plane sources, in window-plane order.
  const std::size_t num_cells = planes_.cells();
  const double* mains[5] = {planes_.x(), planes_.y(), planes_.z(),
                            planes_.id(), planes_.fprime()};

  pool_->run([&](sw::SlaveCtx& ctx) {
    util::Timer timer;
    sw::LocalStore& store = *ctx.local_store;
    sw::DmaEngine& dma = *ctx.dma;

    // Bytes a window of `cand` central cells needs: kPlanes padded planes
    // (64-byte aligned, hence the per-plane slack) of 2 sublattices x
    // rows_per_window rows x (cand + 2h) cells.
    auto window_bytes = [&](int cand) {
      const std::size_t doubles =
          2 * static_cast<std::size_t>(rows_per_window) *
              static_cast<std::size_t>(cand + 2 * h) +
          kTailPad;
      return static_cast<std::size_t>(kPlanes) *
             (doubles * sizeof(double) + 64);
    };

    // Table residency: compacted tables are staged whole (paper: "load the
    // whole compacted table into the local store at one time"); the
    // traditional 273 KB table can never fit and stays in main memory. The
    // fused sweep stages BOTH compact tables when they fit next to a minimal
    // window; otherwise the secondary stays in main memory and each lookup
    // DMAs its 6-sample span (counted as a fallback below).
    // Smallest footprint a one-cell block needs next to the staged tables;
    // a table is staged resident only when that much room is left over.
    const std::size_t min_window_bytes =
        window_bytes(1) + 2 * sizeof(Out) + 2048;
    const bool want_primary =
        !Traditional &&
        store.remaining() >= primary.bytes() + min_window_bytes;
    bool want_secondary = false;
    if constexpr (kFused) {
      want_secondary = want_primary &&
                       store.remaining() >=
                           primary.bytes() + secondary.bytes() + min_window_bytes;
    }
    pot::CompactTableAccess primary_access(primary, store, dma, want_primary);
    pot::CompactTableAccess secondary_access(secondary, store, dma, want_secondary);
    pot::CoefficientTableAccess trad_primary_access(trad_primary, dma);
    pot::CoefficientTableAccess trad_secondary_access(trad_secondary, dma);
    if constexpr (!Traditional) {
      bool fallback = !primary_access.resident();
      if constexpr (kFused) fallback = fallback || !secondary_access.resident();
      if (fallback) table_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }

    // The vector kernels index resident padded tables with gathers; any
    // sweep that cannot keep a needed table resident (or runs the
    // traditional format) takes the scalar loop below instead.
    bool use_simd = false;
    if constexpr (!Traditional) {
      use_simd = simd_ && primary_access.resident();
      if constexpr (kFused) use_simd = use_simd && secondary_access.resident();
    }
    detail::SimdTable prim_tab, sec_tab;
    if (use_simd) {
      prim_tab = {primary_access.padded(), primary.x_min(), primary.dx(),
                  primary.x_min() / primary.dx(), primary.segments() - 1};
      if constexpr (kFused) {
        sec_tab = {secondary_access.padded(), secondary.x_min(),
                   secondary.dx(), secondary.x_min() / secondary.dx(),
                   secondary.segments() - 1};
      }
    }

    // Block width: the largest bx whose window + output fit what is left of
    // the 64 KB store.
    const std::size_t budget = store.remaining() > 2048 ? store.remaining() - 2048 : 0;
    int bx = 0;
    for (int cand = 1; cand <= rx; ++cand) {
      const std::size_t out_bytes = static_cast<std::size_t>(cand) * 2 * sizeof(Out);
      if (window_bytes(cand) + out_bytes <= budget) bx = cand; else break;
    }
    if (bx == 0) {
      throw std::runtime_error(
          "SlaveForceCompute: local store too small for even a one-cell block");
    }
    const int row_cells = bx + 2 * h;
    const std::size_t plane_len =
        2 * static_cast<std::size_t>(rows_per_window) *
            static_cast<std::size_t>(row_cells) +
        kTailPad;
    double* win[5] = {};
    for (int p = 0; p < kPlanes; ++p) {
      win[p] = store.allocate_array<double>(plane_len, 64);
    }
    Out* out_buf = store.allocate_array<Out>(static_cast<std::size_t>(bx) * 2);
    bool alloc_ok = out_buf != nullptr;
    for (int p = 0; p < kPlanes; ++p) alloc_ok = alloc_ok && win[p] != nullptr;
    if (!alloc_ok) {
      throw std::runtime_error("SlaveForceCompute: local store allocation failed");
    }
    // Zero the planes once: over-reads between rows and into the tail pad
    // (masked SIMD lanes only) then read defined values.
    for (int p = 0; p < kPlanes; ++p) {
      std::memset(win[p], 0, plane_len * sizeof(double));
    }

    // Per-sublattice stencil, as absolute int32 offsets into a window plane:
    // neighbor slot = wdeltas[sub][j] + xi, central slot = cbase[sub] + xi.
    const int crow = h * wy + h;
    std::vector<std::int32_t> wdeltas[2];
    std::int32_t cbase[2];
    for (int sub = 0; sub <= 1; ++sub) {
      cbase[sub] = static_cast<std::int32_t>(
          (sub * rows_per_window + crow) * row_cells + h);
      const auto& offs = lnl.offsets(sub);
      wdeltas[sub].reserve(offs.size());
      for (const auto& o : offs) {
        wdeltas[sub].push_back(static_cast<std::int32_t>(
            (o.to_sub * rows_per_window + crow + o.dz * wy + o.dy) * row_cells +
            h + o.dx));
      }
    }

    // Slab: a contiguous chunk of owned (y,z) rows for this core.
    const std::size_t chunk = (total_rows + pool_->size() - 1) / pool_->size();
    const std::size_t row_begin = ctx.core_id * chunk;
    const std::size_t row_end = std::min(total_rows, row_begin + chunk);

    std::vector<sw::DmaEngine::Run> runs;
    runs.reserve(static_cast<std::size_t>(kPlanes) * 2 *
                 static_cast<std::size_t>(rows_per_window));
    auto window_row = [&](int p, int sb, int rr) {
      return win[p] + (static_cast<std::size_t>(sb) * rows_per_window + rr) *
                          static_cast<std::size_t>(row_cells);
    };
    auto main_row = [&](int p, int sb, int x, int cy, int cz, int rr) {
      const int dy = rr % wy - h;
      const int dz = rr / wy - h;
      const std::size_t cell0 =
          box.entry_index({x, cy + dy, cz + dz, 0}) >> 1;
      return mains[p] + static_cast<std::size_t>(sb) * num_cells + cell0;
    };

    for (std::size_t row = row_begin; row < row_end; ++row) {
      const int cy = region.y0 + static_cast<int>(row % static_cast<std::size_t>(ry));
      const int cz = region.z0 + static_cast<int>(row / static_cast<std::size_t>(ry));
      bool window_valid = false;
      for (int x0 = region.x0; x0 < region.x1; x0 += bx) {
        const int bw = std::min(bx, region.x1 - x0);
        // --- window transfer (one batched DMA regardless of plane count) ---
        runs.clear();
        if (reuse && window_valid) {
          // Slide each plane row left by bx cells locally, then DMA only the
          // new tail slice (the paper's ghost-data reuse).
          const std::size_t keep = static_cast<std::size_t>(2 * h);
          for (int p = 0; p < kPlanes; ++p) {
            for (int sb = 0; sb < 2; ++sb) {
              for (int rr = 0; rr < rows_per_window; ++rr) {
                double* wrow = window_row(p, sb, rr);
                std::memmove(wrow, wrow + bx, keep * sizeof(double));
                runs.push_back({wrow + keep,
                                main_row(p, sb, x0 + h, cy, cz, rr),
                                static_cast<std::size_t>(bw) * sizeof(double)});
              }
            }
          }
        } else {
          for (int p = 0; p < kPlanes; ++p) {
            for (int sb = 0; sb < 2; ++sb) {
              for (int rr = 0; rr < rows_per_window; ++rr) {
                runs.push_back({window_row(p, sb, rr),
                                main_row(p, sb, x0 - h, cy, cz, rr),
                                static_cast<std::size_t>(bw + 2 * h) *
                                    sizeof(double)});
              }
            }
          }
          window_valid = true;
        }
        dma.get_batched(runs.data(), runs.size());

        // --- compute owned entries of the block ---
        timer.reset();
        if (use_simd) {
          detail::BlockArgs a;
          a.w.x = win[0];
          a.w.y = win[1];
          a.w.z = win[2];
          a.w.id = win[3];
          a.w.fprime = kPlanes == 5 ? win[4] : nullptr;
          a.central_base[0] = cbase[0];
          a.central_base[1] = cbase[1];
          a.deltas[0] = wdeltas[0].data();
          a.deltas[1] = wdeltas[1].data();
          a.num_deltas[0] = static_cast<std::int32_t>(wdeltas[0].size());
          a.num_deltas[1] = static_cast<std::int32_t>(wdeltas[1].size());
          a.cut2 = cut2;
          a.r_min = r_min;
          a.bw = bw;
          if constexpr (S == Stage::Rho) {
            detail::simd_rho_block(a, prim_tab, out_buf);
          } else if constexpr (S == Stage::PairForce) {
            detail::simd_pair_block(a, prim_tab, out_buf);
          } else if constexpr (S == Stage::DensForce) {
            detail::simd_dens_block(a, prim_tab, out_buf);
          } else {
            detail::simd_fused_block(a, prim_tab, sec_tab, out_buf);
          }
        } else {
          const double* px = win[0];
          const double* py = win[1];
          const double* pz = win[2];
          const double* pid = win[3];
          const double* pfp = kPlanes == 5 ? win[4] : nullptr;
          for (int xi = 0; xi < bw; ++xi) {
            for (int sub = 0; sub <= 1; ++sub) {
              const std::int32_t c = cbase[sub] + xi;
              Out acc{};
              if (pid[c] >= 0.0) {
                const double cx = px[c], cyy = py[c], czz = pz[c];
                const double cfp = pfp != nullptr ? pfp[c] : 0.0;
                for (const std::int32_t d : wdeltas[sub]) {
                  const std::int32_t n = d + xi;
                  if (pid[n] < 0.0) continue;
                  const double dx = px[n] - cx, dy2 = py[n] - cyy,
                               dz2 = pz[n] - czz;
                  const double r2 = dx * dx + dy2 * dy2 + dz2 * dz2;
                  if (r2 > cut2 || r2 == 0.0) continue;
                  const double r = std::max(std::sqrt(r2), r_min);
                  if constexpr (S == Stage::Rho) {
                    double val = 0.0;
                    if constexpr (Traditional) {
                      trad_primary_access.eval(r, &val, nullptr);
                    } else {
                      primary_access.eval(r, &val, nullptr);
                    }
                    acc += val;
                  } else {
                    double pder = 0.0;
                    if constexpr (Traditional) {
                      trad_primary_access.eval(r, nullptr, &pder);
                    } else {
                      primary_access.eval(r, nullptr, &pder);
                    }
                    double s;
                    if constexpr (S == Stage::PairForce) {
                      s = pder / r;
                    } else if constexpr (S == Stage::DensForce) {
                      s = (cfp + pfp[n]) * pder / r;
                    } else {  // FusedForce: pder is phi'; also evaluate f'.
                      double fder = 0.0;
                      if constexpr (Traditional) {
                        trad_secondary_access.eval(r, nullptr, &fder);
                      } else {
                        secondary_access.eval(r, nullptr, &fder);
                      }
                      s = (pder + (cfp + pfp[n]) * fder) / r;
                    }
                    acc += util::Vec3{dx, dy2, dz2} * s;
                  }
                }
              }
              out_buf[static_cast<std::size_t>(xi) * 2 +
                      static_cast<std::size_t>(sub)] = acc;
            }
          }
        }
        compute_s_[ctx.core_id] += timer.elapsed();

        // --- result transfer ---
        const std::size_t base = box.entry_index({x0, cy, cz, 0});
        dma.put(out.data() + base, out_buf,
                static_cast<std::size_t>(bw) * 2 * sizeof(Out));
      }
    }
  });
}

void SlaveForceCompute::run_scalar_stage(lat::LatticeNeighborList& lnl,
                                         const lat::CellRegion& region,
                                         std::vector<double>& out_rho) {
  const std::uint64_t before = table_fallbacks_.load(std::memory_order_relaxed);
  if (strategy_ == AccelStrategy::TraditionalTable) {
    sweep<Stage::Rho, true>(lnl, region, out_rho);
  } else {
    sweep<Stage::Rho, false>(lnl, region, out_rho);
  }
  fold_fallbacks(before);
}

void SlaveForceCompute::run_vector_stage(lat::LatticeNeighborList& lnl,
                                         Stage stage,
                                         const lat::CellRegion& region,
                                         std::vector<util::Vec3>& out_force) {
  const std::uint64_t before = table_fallbacks_.load(std::memory_order_relaxed);
  const bool trad = strategy_ == AccelStrategy::TraditionalTable;
  switch (stage) {
    case Stage::PairForce:
      trad ? sweep<Stage::PairForce, true>(lnl, region, out_force)
           : sweep<Stage::PairForce, false>(lnl, region, out_force);
      break;
    case Stage::DensForce:
      trad ? sweep<Stage::DensForce, true>(lnl, region, out_force)
           : sweep<Stage::DensForce, false>(lnl, region, out_force);
      break;
    case Stage::FusedForce:
      trad ? sweep<Stage::FusedForce, true>(lnl, region, out_force)
           : sweep<Stage::FusedForce, false>(lnl, region, out_force);
      break;
    case Stage::Rho:
      throw std::logic_error("run_vector_stage: Rho writes a scalar output");
  }
  fold_fallbacks(before);
}

void SlaveForceCompute::force_stages(lat::LatticeNeighborList& lnl,
                                     const lat::CellRegion& region) {
  if (region.empty()) return;
  if (fused_) {
    run_vector_stage(lnl, Stage::FusedForce, region, fpair_stage_);
  } else {
    run_vector_stage(lnl, Stage::PairForce, region, fpair_stage_);
    run_vector_stage(lnl, Stage::DensForce, region, fdens_stage_);
  }
}

void SlaveForceCompute::scatter_forces(
    lat::LatticeNeighborList& lnl,
    std::span<const std::size_t> indices) const {
  if (fused_) {
    for (std::size_t idx : indices) {
      lat::AtomEntry& e = lnl.entry(idx);
      if (e.is_atom()) e.f = fpair_stage_[idx];
    }
  } else {
    for (std::size_t idx : indices) {
      lat::AtomEntry& e = lnl.entry(idx);
      if (e.is_atom()) e.f = fpair_stage_[idx] + fdens_stage_[idx];
    }
  }
}

void SlaveForceCompute::fold_fallbacks(std::uint64_t before) {
  const std::uint64_t fell =
      table_fallbacks_.load(std::memory_order_relaxed) - before;
  if (fell == 0) return;
  // Fold from the rank thread (CPE workers must not touch metrics slots).
  telemetry::count("sw.table.fallback", fell);
  if (!fallback_logged_) {
    fallback_logged_ = true;
    std::fprintf(stderr,
                 "mmd: slave force sweep: compact table(s) exceed the local "
                 "store, using per-segment DMA lookups (%llu core-sweeps)\n",
                 static_cast<unsigned long long>(fell));
  }
}

void SlaveForceCompute::compute_rho(lat::LatticeNeighborList& lnl) {
  pack(lnl, /*with_fprime=*/false);
  run_scalar_stage(lnl, lat::CellRegion::full(lnl.box()), rho_stage_);
  for (std::size_t idx : lnl.owned_indices()) {
    lat::AtomEntry& e = lnl.entry(idx);
    if (e.is_atom()) e.rho = rho_stage_[idx];
  }
  complement_runaways_rho(lnl);
  packed_fresh_ = true;
}

void SlaveForceCompute::compute_forces(lat::LatticeNeighborList& lnl) {
  if (packed_fresh_ && planes_.size() == lnl.size()) {
    // Positions have not moved since compute_rho packed them; only F'(rho)
    // changed with the rho ghost exchange.
    refresh_fprime(lnl);
  } else {
    pack(lnl, /*with_fprime=*/true);
  }
  packed_fresh_ = false;
  force_stages(lnl, lat::CellRegion::full(lnl.box()));
  scatter_forces(lnl, lnl.owned_indices());
  complement_runaways_force(lnl);
}

void SlaveForceCompute::compute_forces_interior(lat::LatticeNeighborList& lnl) {
  if (!(packed_fresh_ && planes_.size() == lnl.size())) {
    // Positions moved since the last pack. Stage them WITHOUT F'(rho): the
    // ghost rho it would read is still in flight.
    pack(lnl, /*with_fprime=*/false);
  }
  packed_fresh_ = false;
  // Owned rho is final (compute_rho + run-away complement); ghost slots stay
  // stale — interior windows never read them.
  refresh_fprime_owned(lnl);
  force_stages(lnl, lat::interior_region(lnl.box(), lnl.box().halo));
  scatter_forces(lnl, lnl.owned_interior_indices());
}

void SlaveForceCompute::compute_forces_boundary(lat::LatticeNeighborList& lnl) {
  // The rho exchange has completed: ghost F'(rho) becomes valid now.
  refresh_fprime_ghosts(lnl);
  const lat::LocalBox box = lnl.box();
  std::vector<lat::CellRegion> shell;
  lat::boundary_shell(box, box.halo, shell);
  for (const lat::CellRegion& r : shell) force_stages(lnl, r);
  scatter_forces(lnl, lnl.owned_boundary_indices());
  complement_runaways_force(lnl);
}

// Master-core complement: contributions involving run-away atoms. Run-aways
// are "several millionth of the number of all the atoms" (paper §2.1.1), so
// this scalar pass is negligible next to the slave-core lattice work.
void SlaveForceCompute::complement_runaways_rho(lat::LatticeNeighborList& lnl) const {
  const lat::LocalBox box = lnl.box();
  const double cut2 = tables_->cutoff * tables_->cutoff;
  const double r_min = tables_->r_min;
  const auto& ftab = tables_->f(0, 0);
  // Every chain node (owned or ghost) contributes to owned lattice atoms
  // around its host.
  for (std::size_t host = 0; host < lnl.size(); ++host) {
    for (std::int32_t ri = lnl.entry(host).runaway_head;
         ri != lat::AtomEntry::kNoRunaway; ri = lnl.runaway(ri).next) {
      const lat::RunawayAtom& a = lnl.runaway(ri);
      const lat::LocalCoord hc = box.coord_of(host);
      auto add_to = [&](std::size_t idx) {
        lat::AtomEntry& e = lnl.entry(idx);
        if (!e.is_atom() || !box.owns(box.coord_of(idx))) return;
        const double r2 = (a.r - e.r).norm2();
        if (r2 > cut2 || r2 == 0.0) return;
        e.rho += ftab.value(std::max(std::sqrt(r2), r_min));
      };
      add_to(host);
      for (const auto& o : lnl.offsets(hc.sub)) {
        const lat::LocalCoord nc{hc.x + o.dx, hc.y + o.dy, hc.z + o.dz, o.to_sub};
        if (box.in_storage(nc)) add_to(box.entry_index(nc));
      }
    }
  }
  // Each owned run-away computes its own full density.
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    lat::RunawayAtom& a = lnl.runaway(ri);
    double rho = 0.0;
    lnl.for_each_neighbor_of_runaway(ri, host, [&](const lat::ParticleView& p) {
      const double r2 = (p.r - a.r).norm2();
      if (r2 > cut2) return;
      rho += ftab.value(std::max(std::sqrt(r2), r_min));
    });
    a.rho = rho;
  });
}

void SlaveForceCompute::complement_runaways_force(lat::LatticeNeighborList& lnl) const {
  const lat::LocalBox box = lnl.box();
  const double cut2 = tables_->cutoff * tables_->cutoff;
  const double r_min = tables_->r_min;
  const auto& phit = tables_->phi(0, 0);
  const auto& ftab = tables_->f(0, 0);
  const auto& embed = tables_->embed_of(0);
  for (std::size_t host = 0; host < lnl.size(); ++host) {
    for (std::int32_t ri = lnl.entry(host).runaway_head;
         ri != lat::AtomEntry::kNoRunaway; ri = lnl.runaway(ri).next) {
      const lat::RunawayAtom& a = lnl.runaway(ri);
      const double fpa = embed.derivative(a.rho);
      const lat::LocalCoord hc = box.coord_of(host);
      auto add_to = [&](std::size_t idx) {
        lat::AtomEntry& e = lnl.entry(idx);
        if (!e.is_atom() || !box.owns(box.coord_of(idx))) return;
        const util::Vec3 d = a.r - e.r;
        const double r2 = d.norm2();
        if (r2 > cut2 || r2 == 0.0) return;
        const double r = std::max(std::sqrt(r2), r_min);
        double dphi, df;
        phit.eval(r, nullptr, &dphi);
        ftab.eval(r, nullptr, &df);
        const double fpe = embed.derivative(e.rho);
        e.f += d * ((dphi + (fpe + fpa) * df) / r);
      };
      add_to(host);
      for (const auto& o : lnl.offsets(hc.sub)) {
        const lat::LocalCoord nc{hc.x + o.dx, hc.y + o.dy, hc.z + o.dz, o.to_sub};
        if (box.in_storage(nc)) add_to(box.entry_index(nc));
      }
    }
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    lat::RunawayAtom& a = lnl.runaway(ri);
    const double fpa = embed.derivative(a.rho);
    util::Vec3 force{};
    lnl.for_each_neighbor_of_runaway(ri, host, [&](const lat::ParticleView& p) {
      const util::Vec3 d = p.r - a.r;
      const double r2 = d.norm2();
      if (r2 > cut2 || r2 == 0.0) return;
      const double r = std::max(std::sqrt(r2), r_min);
      double dphi, df;
      phit.eval(r, nullptr, &dphi);
      ftab.eval(r, nullptr, &df);
      const double fpp = embed.derivative(p.rho);
      force += d * ((dphi + (fpa + fpp) * df) / r);
    });
    a.f = force;
  });
}

}  // namespace mmd::md
