#include "md/slave_force.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "potential/table_access.h"
#include "util/timer.h"

namespace mmd::md {

namespace {

/// Window-local flat deltas for a block window of row length `row_cells`
/// cells ((bx + 2h) cells per (dy,dz) row, wy = 2h+1 rows per axis).
std::vector<std::int64_t> window_deltas(const std::vector<lat::SiteOffset>& offs,
                                        int sub, int row_cells, int wy) {
  std::vector<std::int64_t> d;
  d.reserve(offs.size());
  for (const auto& o : offs) {
    d.push_back(((static_cast<std::int64_t>(o.dz) * wy + o.dy) * row_cells + o.dx) * 2 +
                (o.to_sub - sub));
  }
  return d;
}

}  // namespace

std::string to_string(AccelStrategy s) {
  switch (s) {
    case AccelStrategy::TraditionalTable: return "TraditionalTable";
    case AccelStrategy::CompactedTable: return "CompactedTable";
    case AccelStrategy::CompactedReuse: return "CompactedTable+DataReuse";
    case AccelStrategy::CompactedReuseDouble:
      return "CompactedTable+DataReuse+DoubleBuffer";
  }
  return "?";
}

SlaveForceCompute::SlaveForceCompute(const pot::EamTableSet& tables,
                                     sw::SlaveCorePool& pool,
                                     AccelStrategy strategy)
    : tables_(&tables), pool_(&pool), strategy_(strategy),
      compute_s_(pool.size(), 0.0) {
  if (tables.num_species != 1) {
    throw std::invalid_argument(
        "SlaveForceCompute: the slave-core path handles the single-species "
        "(Fe) configuration; use the reference path for alloys");
  }
}

void SlaveForceCompute::reset_stats() {
  pool_->reset_stats();
  std::fill(compute_s_.begin(), compute_s_.end(), 0.0);
}

double SlaveForceCompute::compute_seconds() const {
  double m = 0.0;
  for (double c : compute_s_) m = std::max(m, c);
  return m;
}

double SlaveForceCompute::modeled_time() const {
  double worst = 0.0;
  for (std::size_t c = 0; c < pool_->size(); ++c) {
    const double dma =
        const_cast<sw::SlaveCorePool*>(pool_)->core(c).dma->modeled_time();
    const double comp = compute_s_[c];
    const double t = strategy_ == AccelStrategy::CompactedReuseDouble
                         ? std::max(dma, comp)
                         : dma + comp;
    worst = std::max(worst, t);
  }
  return worst;
}

void SlaveForceCompute::pack(const lat::LatticeNeighborList& lnl,
                             bool with_fprime) {
  packed_.resize(lnl.size());
  const auto& embed = tables_->embed_of(0);
  for (std::size_t i = 0; i < lnl.size(); ++i) {
    const lat::AtomEntry& e = lnl.entry(i);
    Packed& p = packed_[i];
    p.x = e.r.x;
    p.y = e.r.y;
    p.z = e.r.z;
    p.fprime = (with_fprime && e.is_atom()) ? embed.derivative(e.rho) : 0.0;
    p.id = e.is_atom() ? static_cast<double>(e.id) : -1.0;
  }
}

void SlaveForceCompute::run_stage(lat::LatticeNeighborList& lnl, Stage stage,
                                  std::vector<double>& out_scalar,
                                  std::vector<util::Vec3>& out_vec) {
  const lat::LocalBox box = lnl.box();
  const int h = box.halo;
  const int wy = 2 * h + 1;
  const int rows_per_window = wy * wy;
  const bool scalar_out = stage == Stage::Rho;
  if (scalar_out) {
    out_scalar.assign(lnl.size(), 0.0);
  } else {
    out_vec.assign(lnl.size(), util::Vec3{});
  }
  const bool traditional = strategy_ == AccelStrategy::TraditionalTable;
  const bool reuse = strategy_ == AccelStrategy::CompactedReuse ||
                     strategy_ == AccelStrategy::CompactedReuseDouble;
  const pot::CompactTable& compact =
      stage == Stage::PairForce ? tables_->phi(0, 0) : tables_->f(0, 0);
  const pot::CoefficientTable& trad =
      stage == Stage::PairForce ? tables_->phi_trad : tables_->f_trad;
  const double cutoff = tables_->cutoff;
  const double cut2 = cutoff * cutoff;
  const double r_min = tables_->r_min;

  const std::size_t total_rows =
      static_cast<std::size_t>(box.ly) * static_cast<std::size_t>(box.lz);

  pool_->run([&](sw::SlaveCtx& ctx) {
    util::Timer timer;
    sw::LocalStore& store = *ctx.local_store;
    sw::DmaEngine& dma = *ctx.dma;

    // Table residency: the compacted table is staged whole (paper: "load the
    // whole compacted table into the local store at one time"); the
    // traditional 273 KB table can never fit and stays in main memory.
    pot::CompactTableAccess compact_access(compact, store, dma, !traditional);
    pot::CoefficientTableAccess trad_access(trad, dma);

    // Block width: the largest bx whose window + output fit what is left of
    // the 64 KB store.
    const std::size_t budget = store.remaining() > 2048 ? store.remaining() - 2048 : 0;
    const std::size_t out_entry_bytes = scalar_out ? sizeof(double) : sizeof(util::Vec3);
    int bx = 0;
    for (int cand = 1; cand <= box.lx; ++cand) {
      const std::size_t win_bytes = static_cast<std::size_t>(cand + 2 * h) * 2 *
                                    rows_per_window * sizeof(Packed);
      const std::size_t out_bytes = static_cast<std::size_t>(cand) * 2 * out_entry_bytes;
      if (win_bytes + out_bytes <= budget) bx = cand; else break;
    }
    if (bx == 0) {
      throw std::runtime_error(
          "SlaveForceCompute: local store too small for even a one-cell block");
    }
    const int row_cells = bx + 2 * h;
    const std::size_t win_entries =
        static_cast<std::size_t>(row_cells) * 2 * rows_per_window;
    Packed* window = store.allocate_array<Packed>(win_entries);
    void* out_buf = store.allocate(static_cast<std::size_t>(bx) * 2 * out_entry_bytes,
                                   alignof(util::Vec3));
    if (window == nullptr || out_buf == nullptr) {
      throw std::runtime_error("SlaveForceCompute: local store allocation failed");
    }

    std::vector<std::int64_t> wdeltas[2];
    for (int sub = 0; sub <= 1; ++sub) {
      wdeltas[sub] = window_deltas(lnl.offsets(sub), sub, row_cells, wy);
    }
    const std::int64_t central_row = static_cast<std::int64_t>(h) * wy + h;

    // Slab: a contiguous chunk of owned (y,z) rows for this core.
    const std::size_t chunk = (total_rows + pool_->size() - 1) / pool_->size();
    const std::size_t row_begin = ctx.core_id * chunk;
    const std::size_t row_end = std::min(total_rows, row_begin + chunk);

    std::vector<sw::DmaEngine::Run> runs;
    runs.reserve(static_cast<std::size_t>(rows_per_window));

    for (std::size_t row = row_begin; row < row_end; ++row) {
      const int cy = static_cast<int>(row % static_cast<std::size_t>(box.ly));
      const int cz = static_cast<int>(row / static_cast<std::size_t>(box.ly));
      bool window_valid = false;
      for (int x0 = 0; x0 < box.lx; x0 += bx) {
        const int bw = std::min(bx, box.lx - x0);
        // --- window transfer ---
        runs.clear();
        if (reuse && window_valid) {
          // Slide the window left by bx cells locally, then DMA only the new
          // tail slice of each row (the paper's ghost-data reuse).
          const std::size_t keep = static_cast<std::size_t>(2 * h) * 2;
          const std::size_t rowlen = static_cast<std::size_t>(row_cells) * 2;
          for (int rr = 0; rr < rows_per_window; ++rr) {
            Packed* wrow = window + static_cast<std::size_t>(rr) * rowlen;
            std::memmove(wrow, wrow + static_cast<std::size_t>(2 * bx), keep * sizeof(Packed));
            const int dy = rr % wy - h;
            const int dz = rr / wy - h;
            const std::size_t src = box.entry_index({x0 + h, cy + dy, cz + dz, 0});
            runs.push_back({wrow + keep, packed_.data() + src,
                            static_cast<std::size_t>(bw) * 2 * sizeof(Packed)});
          }
        } else {
          for (int rr = 0; rr < rows_per_window; ++rr) {
            const int dy = rr % wy - h;
            const int dz = rr / wy - h;
            const std::size_t src = box.entry_index({x0 - h, cy + dy, cz + dz, 0});
            runs.push_back({window + static_cast<std::size_t>(rr) * row_cells * 2,
                            packed_.data() + src,
                            static_cast<std::size_t>(bw + 2 * h) * 2 * sizeof(Packed)});
          }
          window_valid = true;
        }
        dma.get_batched(runs.data(), runs.size());

        // --- compute owned entries of the block ---
        timer.reset();
        for (int xi = 0; xi < bw; ++xi) {
          for (int sub = 0; sub <= 1; ++sub) {
            const std::size_t wc =
                (static_cast<std::size_t>(central_row) * row_cells + h + xi) * 2 +
                static_cast<std::size_t>(sub);
            const Packed& c = window[wc];
            double rho = 0.0;
            util::Vec3 force{};
            if (c.id >= 0.0) {
              for (const std::int64_t d : wdeltas[sub]) {
                const Packed& nb = window[wc + static_cast<std::size_t>(d)];
                if (nb.id < 0.0) continue;
                const double dx = nb.x - c.x, dy2 = nb.y - c.y, dz2 = nb.z - c.z;
                const double r2 = dx * dx + dy2 * dy2 + dz2 * dz2;
                if (r2 > cut2 || r2 == 0.0) continue;
                const double r = std::max(std::sqrt(r2), r_min);
                double val = 0.0, der = 0.0;
                if (traditional) {
                  trad_access.eval(r, &val, &der);
                } else {
                  compact_access.eval(r, &val, &der);
                }
                switch (stage) {
                  case Stage::Rho:
                    rho += val;
                    break;
                  case Stage::PairForce: {
                    const double s = der / r;
                    force += util::Vec3{dx, dy2, dz2} * s;
                    break;
                  }
                  case Stage::DensForce: {
                    const double s = (c.fprime + nb.fprime) * der / r;
                    force += util::Vec3{dx, dy2, dz2} * s;
                    break;
                  }
                }
              }
            }
            const std::size_t oi = static_cast<std::size_t>(xi) * 2 +
                                   static_cast<std::size_t>(sub);
            if (scalar_out) {
              static_cast<double*>(out_buf)[oi] = rho;
            } else {
              static_cast<util::Vec3*>(out_buf)[oi] = force;
            }
          }
        }
        compute_s_[ctx.core_id] += timer.elapsed();

        // --- result transfer ---
        const std::size_t base = box.entry_index({x0, cy, cz, 0});
        if (scalar_out) {
          dma.put(out_scalar.data() + base, out_buf,
                  static_cast<std::size_t>(bw) * 2 * sizeof(double));
        } else {
          dma.put(out_vec.data() + base, out_buf,
                  static_cast<std::size_t>(bw) * 2 * sizeof(util::Vec3));
        }
      }
    }
  });
}

void SlaveForceCompute::compute_rho(lat::LatticeNeighborList& lnl) {
  pack(lnl, /*with_fprime=*/false);
  run_stage(lnl, Stage::Rho, rho_stage_, fpair_stage_);
  for (std::size_t idx : lnl.owned_indices()) {
    lat::AtomEntry& e = lnl.entry(idx);
    if (e.is_atom()) e.rho = rho_stage_[idx];
  }
  complement_runaways_rho(lnl);
}

void SlaveForceCompute::compute_forces(lat::LatticeNeighborList& lnl) {
  pack(lnl, /*with_fprime=*/true);
  run_stage(lnl, Stage::PairForce, rho_stage_, fpair_stage_);
  run_stage(lnl, Stage::DensForce, rho_stage_, fdens_stage_);
  for (std::size_t idx : lnl.owned_indices()) {
    lat::AtomEntry& e = lnl.entry(idx);
    if (e.is_atom()) e.f = fpair_stage_[idx] + fdens_stage_[idx];
  }
  complement_runaways_force(lnl);
}

// Master-core complement: contributions involving run-away atoms. Run-aways
// are "several millionth of the number of all the atoms" (paper §2.1.1), so
// this scalar pass is negligible next to the slave-core lattice work.
void SlaveForceCompute::complement_runaways_rho(lat::LatticeNeighborList& lnl) const {
  const lat::LocalBox box = lnl.box();
  const double cut2 = tables_->cutoff * tables_->cutoff;
  const double r_min = tables_->r_min;
  const auto& ftab = tables_->f(0, 0);
  // Every chain node (owned or ghost) contributes to owned lattice atoms
  // around its host.
  for (std::size_t host = 0; host < lnl.size(); ++host) {
    for (std::int32_t ri = lnl.entry(host).runaway_head;
         ri != lat::AtomEntry::kNoRunaway; ri = lnl.runaway(ri).next) {
      const lat::RunawayAtom& a = lnl.runaway(ri);
      const lat::LocalCoord hc = box.coord_of(host);
      auto add_to = [&](std::size_t idx) {
        lat::AtomEntry& e = lnl.entry(idx);
        if (!e.is_atom() || !box.owns(box.coord_of(idx))) return;
        const double r2 = (a.r - e.r).norm2();
        if (r2 > cut2 || r2 == 0.0) return;
        e.rho += ftab.value(std::max(std::sqrt(r2), r_min));
      };
      add_to(host);
      for (const auto& o : lnl.offsets(hc.sub)) {
        const lat::LocalCoord nc{hc.x + o.dx, hc.y + o.dy, hc.z + o.dz, o.to_sub};
        if (box.in_storage(nc)) add_to(box.entry_index(nc));
      }
    }
  }
  // Each owned run-away computes its own full density.
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    lat::RunawayAtom& a = lnl.runaway(ri);
    double rho = 0.0;
    lnl.for_each_neighbor_of_runaway(ri, host, [&](const lat::ParticleView& p) {
      const double r2 = (p.r - a.r).norm2();
      if (r2 > cut2) return;
      rho += ftab.value(std::max(std::sqrt(r2), r_min));
    });
    a.rho = rho;
  });
}

void SlaveForceCompute::complement_runaways_force(lat::LatticeNeighborList& lnl) const {
  const lat::LocalBox box = lnl.box();
  const double cut2 = tables_->cutoff * tables_->cutoff;
  const double r_min = tables_->r_min;
  const auto& phit = tables_->phi(0, 0);
  const auto& ftab = tables_->f(0, 0);
  const auto& embed = tables_->embed_of(0);
  for (std::size_t host = 0; host < lnl.size(); ++host) {
    for (std::int32_t ri = lnl.entry(host).runaway_head;
         ri != lat::AtomEntry::kNoRunaway; ri = lnl.runaway(ri).next) {
      const lat::RunawayAtom& a = lnl.runaway(ri);
      const double fpa = embed.derivative(a.rho);
      const lat::LocalCoord hc = box.coord_of(host);
      auto add_to = [&](std::size_t idx) {
        lat::AtomEntry& e = lnl.entry(idx);
        if (!e.is_atom() || !box.owns(box.coord_of(idx))) return;
        const util::Vec3 d = a.r - e.r;
        const double r2 = d.norm2();
        if (r2 > cut2 || r2 == 0.0) return;
        const double r = std::max(std::sqrt(r2), r_min);
        double dphi, df;
        phit.eval(r, nullptr, &dphi);
        ftab.eval(r, nullptr, &df);
        const double fpe = embed.derivative(e.rho);
        e.f += d * ((dphi + (fpe + fpa) * df) / r);
      };
      add_to(host);
      for (const auto& o : lnl.offsets(hc.sub)) {
        const lat::LocalCoord nc{hc.x + o.dx, hc.y + o.dy, hc.z + o.dz, o.to_sub};
        if (box.in_storage(nc)) add_to(box.entry_index(nc));
      }
    }
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t host) {
    lat::RunawayAtom& a = lnl.runaway(ri);
    const double fpa = embed.derivative(a.rho);
    util::Vec3 force{};
    lnl.for_each_neighbor_of_runaway(ri, host, [&](const lat::ParticleView& p) {
      const util::Vec3 d = p.r - a.r;
      const double r2 = d.norm2();
      if (r2 > cut2 || r2 == 0.0) return;
      const double r = std::max(std::sqrt(r2), r_min);
      double dphi, df;
      phit.eval(r, nullptr, &dphi);
      ftab.eval(r, nullptr, &df);
      const double fpp = embed.derivative(p.rho);
      force += d * ((dphi + (fpa + fpp) * df) / r);
    });
    a.f = force;
  });
}

}  // namespace mmd::md
