// AVX2+FMA block kernels for the slave-core force sweeps. This TU is the
// only one compiled with -mavx2 -mfma (see src/md/CMakeLists.txt); when the
// toolchain cannot target AVX2 the stubs at the bottom compile instead and
// simd_available() reports false, so the sweep driver keeps its scalar path.
//
// Numerical contract (what the tests pin down):
//  - Per-atom results are lane-position independent: every lane runs the
//    identical straight-line op sequence on its own data, remainder groups
//    use the same full-width ops with only the STORE masked, and skipped
//    pairs contribute an exact +0.0. Hence interior/boundary splits and any
//    block width reproduce the unsplit sweep bit for bit.
//  - Against the scalar kernel the results agree to ~1 ulp (FMA contraction
//    and vector sqrt are the only differences); the suite checks 1e-12.
//  - Garbage in masked lanes is harmless by construction: plane tail pads
//    keep over-reads in-bounds, gather indices are clamped into the table,
//    and max(sqrt, r_min) maps NaN lanes to r_min before indexing.

#include "md/slave_force_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace mmd::md::detail {

namespace {

/// The 6-sample window of each lane's segment plus the Hermite parameter t,
/// gathered from an edge-padded resident table. Mirrors CompactTable:
/// i = clamp(int((x - x_min)/dx), 0, segments-1), t = x/dx - x_min/dx - i,
/// window k = padded[i + k] (== samples[clamp(i-2+k, 0, n-1)]).
struct Window {
  __m256d w0, w1, w2, w3, w4, w5, t;
};

inline Window gather_window(const SimdTable& tab, __m256d r) {
  const __m256d dx = _mm256_set1_pd(tab.dx);
  const __m256d iv = _mm256_div_pd(_mm256_sub_pd(r, _mm256_set1_pd(tab.x_min)), dx);
  __m128i i = _mm256_cvttpd_epi32(iv);  // NaN lanes -> INT_MIN, clamped next
  i = _mm_max_epi32(i, _mm_setzero_si128());
  i = _mm_min_epi32(i, _mm_set1_epi32(tab.last_segment));
  Window w;
  w.t = _mm256_sub_pd(
      _mm256_sub_pd(_mm256_div_pd(r, dx), _mm256_set1_pd(tab.xmin_over_dx)),
      _mm256_cvtepi32_pd(i));
  w.w0 = _mm256_i32gather_pd(tab.padded + 0, i, 8);
  w.w1 = _mm256_i32gather_pd(tab.padded + 1, i, 8);
  w.w2 = _mm256_i32gather_pd(tab.padded + 2, i, 8);
  w.w3 = _mm256_i32gather_pd(tab.padded + 3, i, 8);
  w.w4 = _mm256_i32gather_pd(tab.padded + 4, i, 8);
  w.w5 = _mm256_i32gather_pd(tab.padded + 5, i, 8);
  return w;
}

inline __m256d node_d0(const Window& w) {
  // (w0 - w4 + 8*(w3 - w1)) / 12
  return _mm256_div_pd(
      _mm256_add_pd(_mm256_sub_pd(w.w0, w.w4),
                    _mm256_mul_pd(_mm256_set1_pd(8.0), _mm256_sub_pd(w.w3, w.w1))),
      _mm256_set1_pd(12.0));
}

inline __m256d node_d1(const Window& w) {
  return _mm256_div_pd(
      _mm256_add_pd(_mm256_sub_pd(w.w1, w.w5),
                    _mm256_mul_pd(_mm256_set1_pd(8.0), _mm256_sub_pd(w.w4, w.w2))),
      _mm256_set1_pd(12.0));
}

/// Hermite value: (2t^3-3t^2+1)s0 + (t^3-2t^2+t)d0 + (-2t^3+3t^2)s1 + (t^3-t^2)d1.
inline __m256d hermite_value(const Window& w) {
  const __m256d d0 = node_d0(w), d1 = node_d1(w);
  const __m256d t = w.t;
  const __m256d t2 = _mm256_mul_pd(t, t);
  const __m256d t3 = _mm256_mul_pd(t2, t);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d c_s0 = _mm256_add_pd(
      _mm256_fmsub_pd(_mm256_set1_pd(2.0), t3, _mm256_mul_pd(_mm256_set1_pd(3.0), t2)),
      one);
  const __m256d c_d0 = _mm256_add_pd(
      _mm256_fnmadd_pd(_mm256_set1_pd(2.0), t2, t3), t);
  const __m256d c_s1 = _mm256_fmsub_pd(_mm256_set1_pd(3.0), t2,
                                       _mm256_mul_pd(_mm256_set1_pd(2.0), t3));
  const __m256d c_d1 = _mm256_sub_pd(t3, t2);
  __m256d acc = _mm256_mul_pd(c_s0, w.w2);
  acc = _mm256_fmadd_pd(c_d0, d0, acc);
  acc = _mm256_fmadd_pd(c_s1, w.w3, acc);
  return _mm256_fmadd_pd(c_d1, d1, acc);
}

/// Hermite d/dx: ((6t^2-6t)s0 + (3t^2-4t+1)d0 + (-6t^2+6t)s1 + (3t^2-2t)d1) / dx.
inline __m256d hermite_deriv(const Window& w, double dx) {
  const __m256d d0 = node_d0(w), d1 = node_d1(w);
  const __m256d t = w.t;
  const __m256d t2 = _mm256_mul_pd(t, t);
  const __m256d six = _mm256_set1_pd(6.0);
  const __m256d three = _mm256_set1_pd(3.0);
  const __m256d c_s0 = _mm256_fmsub_pd(six, t2, _mm256_mul_pd(six, t));
  const __m256d c_d0 = _mm256_add_pd(
      _mm256_fnmadd_pd(_mm256_set1_pd(4.0), t, _mm256_mul_pd(three, t2)),
      _mm256_set1_pd(1.0));
  const __m256d c_s1 = _mm256_fnmadd_pd(six, t2, _mm256_mul_pd(six, t));
  const __m256d c_d1 = _mm256_fnmadd_pd(_mm256_set1_pd(2.0), t, _mm256_mul_pd(three, t2));
  __m256d acc = _mm256_mul_pd(c_s0, w.w2);
  acc = _mm256_fmadd_pd(c_d0, d0, acc);
  acc = _mm256_fmadd_pd(c_s1, w.w3, acc);
  acc = _mm256_fmadd_pd(c_d1, d1, acc);
  return _mm256_div_pd(acc, _mm256_set1_pd(dx));
}

/// The pair-loop skeleton shared by every stage. For each 4-cell central
/// group of each sublattice it walks the stencil, builds the validity mask
/// (central is atom AND neighbor is atom AND 0 < r2 <= cut2), hands
/// (mask, r, dx, dy, dz, cfp, nfp) to the stage functor which accumulates,
/// then the functor's store callback writes the <= 4 valid lanes.
template <class InitFn, class PairFn, class StoreFn>
inline void block_loop(const BlockArgs& a, InitFn&& init, PairFn&& pair,
                       StoreFn&& store) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d cut2 = _mm256_set1_pd(a.cut2);
  const __m256d rmin = _mm256_set1_pd(a.r_min);
  const bool has_fp = a.w.fprime != nullptr;
  for (int sub = 0; sub <= 1; ++sub) {
    const std::int32_t cbase = a.central_base[sub];
    const std::int32_t* deltas = a.deltas[sub];
    const std::int32_t nd = a.num_deltas[sub];
    for (std::int32_t xi = 0; xi < a.bw; xi += 4) {
      const int valid = std::min<std::int32_t>(4, a.bw - xi);
      const std::int32_t c = cbase + xi;
      const __m256d cx = _mm256_loadu_pd(a.w.x + c);
      const __m256d cy = _mm256_loadu_pd(a.w.y + c);
      const __m256d cz = _mm256_loadu_pd(a.w.z + c);
      const __m256d cid = _mm256_loadu_pd(a.w.id + c);
      const __m256d cfp = has_fp ? _mm256_loadu_pd(a.w.fprime + c) : zero;
      const __m256d cmask = _mm256_cmp_pd(cid, zero, _CMP_GE_OQ);
      init();
      for (std::int32_t j = 0; j < nd; ++j) {
        const std::int32_t n = deltas[j] + xi;
        const __m256d nid = _mm256_loadu_pd(a.w.id + n);
        const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(a.w.x + n), cx);
        const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(a.w.y + n), cy);
        const __m256d dz = _mm256_sub_pd(_mm256_loadu_pd(a.w.z + n), cz);
        const __m256d r2 = _mm256_fmadd_pd(
            dz, dz, _mm256_fmadd_pd(dy, dy, _mm256_mul_pd(dx, dx)));
        __m256d mask = _mm256_and_pd(_mm256_cmp_pd(nid, zero, _CMP_GE_OQ),
                                     _mm256_cmp_pd(r2, cut2, _CMP_LE_OQ));
        mask = _mm256_and_pd(mask, _mm256_cmp_pd(r2, zero, _CMP_NEQ_OQ));
        mask = _mm256_and_pd(mask, cmask);
        const __m256d r = _mm256_max_pd(_mm256_sqrt_pd(r2), rmin);
        const __m256d nfp = has_fp ? _mm256_loadu_pd(a.w.fprime + n) : zero;
        pair(mask, r, dx, dy, dz, cfp, nfp);
      }
      store(sub, xi, valid);
    }
  }
}

}  // namespace

bool simd_available() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}

void simd_rho_block(const BlockArgs& a, const SimdTable& f, double* out) {
  __m256d acc{};
  block_loop(
      a, [&] { acc = _mm256_setzero_pd(); },
      [&](__m256d mask, __m256d r, __m256d, __m256d, __m256d, __m256d, __m256d) {
        const __m256d val = hermite_value(gather_window(f, r));
        acc = _mm256_add_pd(acc, _mm256_and_pd(val, mask));
      },
      [&](int sub, std::int32_t xi, int valid) {
        alignas(32) double tmp[4];
        _mm256_store_pd(tmp, acc);
        for (int l = 0; l < valid; ++l) out[(xi + l) * 2 + sub] = tmp[l];
      });
}

namespace {

/// Force-stage driver: accumulate d_hat * s per pair, with the stage-specific
/// scale s supplied by `scale(r, cfp, nfp)`.
template <class ScaleFn>
inline void force_block(const BlockArgs& a, ScaleFn&& scale, util::Vec3* out) {
  __m256d ax{}, ay{}, az{};
  block_loop(
      a,
      [&] { ax = ay = az = _mm256_setzero_pd(); },
      [&](__m256d mask, __m256d r, __m256d dx, __m256d dy, __m256d dz,
          __m256d cfp, __m256d nfp) {
        const __m256d s = scale(r, cfp, nfp);
        ax = _mm256_add_pd(ax, _mm256_and_pd(_mm256_mul_pd(dx, s), mask));
        ay = _mm256_add_pd(ay, _mm256_and_pd(_mm256_mul_pd(dy, s), mask));
        az = _mm256_add_pd(az, _mm256_and_pd(_mm256_mul_pd(dz, s), mask));
      },
      [&](int sub, std::int32_t xi, int valid) {
        alignas(32) double tx[4], ty[4], tz[4];
        _mm256_store_pd(tx, ax);
        _mm256_store_pd(ty, ay);
        _mm256_store_pd(tz, az);
        for (int l = 0; l < valid; ++l) {
          out[(xi + l) * 2 + sub] = util::Vec3{tx[l], ty[l], tz[l]};
        }
      });
}

}  // namespace

void simd_pair_block(const BlockArgs& a, const SimdTable& phi, util::Vec3* out) {
  force_block(
      a,
      [&](__m256d r, __m256d, __m256d) {
        return _mm256_div_pd(hermite_deriv(gather_window(phi, r), phi.dx), r);
      },
      out);
}

void simd_dens_block(const BlockArgs& a, const SimdTable& f, util::Vec3* out) {
  force_block(
      a,
      [&](__m256d r, __m256d cfp, __m256d nfp) {
        const __m256d fder = hermite_deriv(gather_window(f, r), f.dx);
        return _mm256_div_pd(_mm256_mul_pd(_mm256_add_pd(cfp, nfp), fder), r);
      },
      out);
}

void simd_fused_block(const BlockArgs& a, const SimdTable& phi,
                      const SimdTable& f, util::Vec3* out) {
  force_block(
      a,
      [&](__m256d r, __m256d cfp, __m256d nfp) {
        const __m256d pder = hermite_deriv(gather_window(phi, r), phi.dx);
        const __m256d fder = hermite_deriv(gather_window(f, r), f.dx);
        return _mm256_div_pd(
            _mm256_fmadd_pd(_mm256_add_pd(cfp, nfp), fder, pder), r);
      },
      out);
}

}  // namespace mmd::md::detail

#else  // !__AVX2__: toolchain could not target AVX2 — stub everything out.

#include <cstdlib>

namespace mmd::md::detail {

bool simd_available() { return false; }

// The sweep driver never calls the kernels when simd_available() is false.
void simd_rho_block(const BlockArgs&, const SimdTable&, double*) { std::abort(); }
void simd_pair_block(const BlockArgs&, const SimdTable&, util::Vec3*) { std::abort(); }
void simd_dens_block(const BlockArgs&, const SimdTable&, util::Vec3*) { std::abort(); }
void simd_fused_block(const BlockArgs&, const SimdTable&, const SimdTable&,
                      util::Vec3*) {
  std::abort();
}

}  // namespace mmd::md::detail

#endif
