#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "lattice/lattice_neighbor_list.h"
#include "lattice/soa_pack.h"
#include "potential/eam.h"
#include "sunway/slave_pool.h"

namespace mmd::md {

/// The cumulative optimization ladder of the paper's Fig. 9.
enum class AccelStrategy {
  TraditionalTable,      ///< 5000x7 coefficient tables, one DMA per lookup
  CompactedTable,        ///< resident 5000-sample tables, window DMA per block
  CompactedReuse,        ///< + keep the overlapping window slices between blocks
  CompactedReuseDouble,  ///< + double-buffer window transfer against compute
};

std::string to_string(AccelStrategy s);

/// EAM force computation on the simulated Sunway slave cores (paper §2.1.2).
///
/// The subdomain is split into slabs (one per slave core: a contiguous chunk
/// of owned (y,z) cell rows); each slab is processed in blocks of `bx` cells
/// along x. Per block the core DMAs a window of (bx+2h)(2h+1)^2 cells into
/// its local store, evaluates the stage's table(s), and DMAs the results
/// back.
///
/// Staging is structure-of-arrays end to end: main memory keeps one
/// sublattice-deinterleaved plane per field (lat::SoaPlanes), and the local
/// store window mirrors that as per-field, per-sublattice row blocks, each
/// 64-byte aligned. A pass moves only the planes it reads (x/y/z/id always;
/// F'(rho) only for the density-force and fused stages), so the rho and
/// pair sweeps ship 32 B per entry where the packed-record layout shipped
/// 40 B. Within a window, one sublattice's row is a contiguous run of
/// doubles, which makes every stencil offset of a 4-cell central group a
/// unit-stride vector load — the layout the AVX2 kernels
/// (slave_force_simd.cpp) are built on. On hardware without AVX2, or
/// whenever a needed compact table is not store-resident, the sweep runs a
/// scalar loop over the same planes with the original arithmetic.
///
/// Stage -> table(s) -> output mapping (each sweep writes exactly ONE output
/// array; see run_scalar_stage / run_vector_stage):
///   sweep RHO         : density table f          -> rho_i           (scalar)
///   (MPE)             : embedding table          -> F'(rho_i), packed
///   sweep FUSED-FORCE : pair phi AND density f   -> full EAM force  (vector)
/// and, for the unfused two-pass shape kept for comparison benches:
///   sweep PAIR-FORCE  : pair table phi           -> sum phi'(r) d_hat
///   sweep DENS-FORCE  : density table f          -> sum (F'_i + F'_j) f'(r) d_hat
///
/// The fused sweep (default) walks the block window ONCE per force
/// evaluation, evaluating both compact tables per pair — roughly half the
/// window DMA get traffic of the two-pass shape. Both tables are staged
/// resident in the local store when they fit next to a minimal window;
/// otherwise the non-resident table falls back to per-segment DMA lookups
/// (counted in table_fallbacks() and the sw.table.fallback telemetry counter
/// — at the authentic 2x39 KB table sizes the 64 KB store cannot hold both).
///
/// One set of planes serves a whole step: compute_rho packs positions once
/// and compute_forces refreshes only the F'(rho) plane after the rho ghost
/// exchange (positions cannot have changed in between).
///
/// Run-away atoms (a few millionths of all atoms) are handled on the master
/// core as a complement pass; physics is identical to ReferenceForce up to
/// floating-point summation order.
class SlaveForceCompute {
 public:
  SlaveForceCompute(const pot::EamTableSet& tables, sw::SlaveCorePool& pool,
                    AccelStrategy strategy);

  void compute_rho(lat::LatticeNeighborList& lnl);
  void compute_forces(lat::LatticeNeighborList& lnl);

  /// Overlap split of compute_forces, bit-identical to the unsplit call.
  /// compute_forces_interior sweeps only the interior cells — whose windows
  /// never read ghost storage — and may run while the rho ghost exchange is
  /// still in flight (only OWNED F'(rho) is refreshed; ghost slots stay
  /// stale and unread). compute_forces_boundary must run after the exchange
  /// completes: it refreshes ghost F'(rho), sweeps the boundary shell, and
  /// runs the run-away complement. Always call interior first, then
  /// boundary; per-entry output is an assignment from the same fixed-order
  /// window walk (and the SIMD kernels are lane-position independent), so
  /// the region decomposition reproduces compute_forces exactly.
  void compute_forces_interior(lat::LatticeNeighborList& lnl);
  void compute_forces_boundary(lat::LatticeNeighborList& lnl);

  AccelStrategy strategy() const { return strategy_; }

  /// Toggle the fused single-sweep force kernel (default on). Off restores
  /// the two-pass pair/density shape — kept so benches and tests can measure
  /// the fusion win on identical inputs.
  void set_fused(bool on) { fused_ = on; }
  bool fused() const { return fused_; }

  /// Toggle the AVX2 block kernels (default on when the build and CPU
  /// support them). The SIMD path engages per sweep only for the compacted
  /// strategies with every needed table store-resident; everything else
  /// always runs the scalar loop. Off pins the scalar loop everywhere —
  /// benches and the scalar-vs-SIMD equivalence tests flip this.
  void set_simd(bool on) { simd_ = on && simd_supported(); }
  bool simd() const { return simd_; }
  /// True when the AVX2 kernels were compiled in and this CPU runs them.
  static bool simd_supported();

  /// Number of core-sweeps that could not keep every wanted compact table
  /// resident and fell back to per-segment DMA lookups.
  std::uint64_t table_fallbacks() const {
    return table_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Aggregated DMA statistics from the pool since the last reset.
  sw::DmaStats dma_stats() const { return pool_->aggregate_dma_stats(); }
  void reset_stats();

  /// Modeled Sunway time of everything executed since the last reset: the
  /// critical-path core's DMA cost (alpha-beta model) combined with its
  /// measured compute time — summed for the serial strategies, overlapped
  /// (max) for the double-buffered one. The DMA ledger already reflects the
  /// executed sweep shape (one window pass when fused, two when not), so the
  /// overlap model needs no fused-specific term.
  double modeled_time() const;

  /// Measured compute seconds on the critical-path core.
  double compute_seconds() const;

 private:
  enum class Stage { Rho, PairForce, DensForce, FusedForce };

  void pack(const lat::LatticeNeighborList& lnl, bool with_fprime);
  /// Rewrite only the F'(rho) plane of already packed planes (the rho
  /// exchange between the two phases of a step changes nothing else).
  void refresh_fprime(const lat::LatticeNeighborList& lnl);
  /// Partial refreshes for the overlap split: owned slots can be refreshed
  /// before the rho exchange completes; ghost slots only after.
  void refresh_fprime_owned(const lat::LatticeNeighborList& lnl);
  void refresh_fprime_ghosts(const lat::LatticeNeighborList& lnl);

  /// One slave-core window sweep over the owned cells of `region`.
  /// Stage::Rho writes per-entry densities into `out_rho`; the force stages
  /// write per-entry force (partial for Pair/DensForce, total for
  /// FusedForce) into `out_force`. Each overload accepts only the stages
  /// that produce its output type.
  void run_scalar_stage(lat::LatticeNeighborList& lnl,
                        const lat::CellRegion& region,
                        std::vector<double>& out_rho);
  void run_vector_stage(lat::LatticeNeighborList& lnl, Stage stage,
                        const lat::CellRegion& region,
                        std::vector<util::Vec3>& out_force);

  /// Run the configured force stage shape (fused or two-pass) over one
  /// region, leaving the results in the staging vectors.
  void force_stages(lat::LatticeNeighborList& lnl,
                    const lat::CellRegion& region);
  /// Copy staged forces onto the given owned entries.
  void scatter_forces(lat::LatticeNeighborList& lnl,
                      std::span<const std::size_t> indices) const;

  /// Fold table-residency fallbacks recorded since `before` into telemetry
  /// (rank thread only) and log the first occurrence.
  void fold_fallbacks(std::uint64_t before);

  /// The stage kernel, with the per-pair stage/table-format branches hoisted
  /// into template parameters so they resolve at compile time.
  template <Stage S, bool Traditional>
  void sweep(lat::LatticeNeighborList& lnl, const lat::CellRegion& region,
             std::vector<std::conditional_t<S == Stage::Rho, double,
                                            util::Vec3>>& out);

  void complement_runaways_rho(lat::LatticeNeighborList& lnl) const;
  void complement_runaways_force(lat::LatticeNeighborList& lnl) const;

  const pot::EamTableSet* tables_;
  sw::SlaveCorePool* pool_;
  AccelStrategy strategy_;
  bool fused_ = true;
  bool simd_;                        ///< set in the constructor
  lat::SoaPlanes planes_;            ///< main-memory SoA staging, slot-indexed
  bool packed_fresh_ = false;        ///< planes_ hold this step's positions
  std::vector<double> rho_stage_;
  std::vector<util::Vec3> fpair_stage_;
  std::vector<util::Vec3> fdens_stage_;
  std::vector<double> compute_s_;    ///< per-core measured compute seconds
  std::atomic<std::uint64_t> table_fallbacks_{0};
  bool fallback_logged_ = false;
};

}  // namespace mmd::md
