#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/lattice_neighbor_list.h"
#include "potential/eam.h"
#include "sunway/slave_pool.h"

namespace mmd::md {

/// The cumulative optimization ladder of the paper's Fig. 9.
enum class AccelStrategy {
  TraditionalTable,      ///< 5000x7 coefficient tables, one DMA per lookup
  CompactedTable,        ///< resident 5000-sample tables, window DMA per block
  CompactedReuse,        ///< + keep the overlapping window slices between blocks
  CompactedReuseDouble,  ///< + double-buffer window transfer against compute
};

std::string to_string(AccelStrategy s);

/// EAM force computation on the simulated Sunway slave cores (paper §2.1.2).
///
/// The subdomain is split into slabs (one per slave core: a contiguous chunk
/// of owned (y,z) cell rows); each slab is processed in blocks of `bx` cells
/// along x. Per block the core DMAs a packed window of (bx+2h)(2h+1)^2 cells
/// into its local store, evaluates one table stage, and DMAs the results
/// back. The three interpolation tables are accessed sequentially, one pass
/// per table, so the resident compacted table is always the single table the
/// stage needs:
///   pass RHO        : density table   -> rho_i
///   (MPE)           : embedding table -> F'(rho_i), packed with positions
///   pass PAIR-FORCE : pair table      -> sum phi'(r) d_hat
///   pass DENS-FORCE : density table   -> sum (F'_i + F'_j) f'(r) d_hat
///
/// Run-away atoms (a few millionths of all atoms) are handled on the master
/// core as a complement pass; physics is identical to ReferenceForce up to
/// floating-point summation order.
class SlaveForceCompute {
 public:
  SlaveForceCompute(const pot::EamTableSet& tables, sw::SlaveCorePool& pool,
                    AccelStrategy strategy);

  void compute_rho(lat::LatticeNeighborList& lnl);
  void compute_forces(lat::LatticeNeighborList& lnl);

  AccelStrategy strategy() const { return strategy_; }

  /// Aggregated DMA statistics from the pool since the last reset.
  sw::DmaStats dma_stats() const { return pool_->aggregate_dma_stats(); }
  void reset_stats();

  /// Modeled Sunway time of everything executed since the last reset: the
  /// critical-path core's DMA cost (alpha-beta model) combined with its
  /// measured compute time — summed for the serial strategies, overlapped
  /// (max) for the double-buffered one.
  double modeled_time() const;

  /// Measured compute seconds on the critical-path core.
  double compute_seconds() const;

 private:
  /// Packed particle record staged through the local store (5 doubles: the
  /// paper's data compaction — only the fields a pass needs move over DMA).
  struct Packed {
    double x, y, z;
    double fprime;  ///< F'(rho) for force passes, 0 in the rho pass
    double id;      ///< global id; negative marks a vacancy (bit-exact in double)
  };

  enum class Stage { Rho, PairForce, DensForce };

  void pack(const lat::LatticeNeighborList& lnl, bool with_fprime);
  void run_stage(lat::LatticeNeighborList& lnl, Stage stage,
                 std::vector<double>& out_scalar,
                 std::vector<util::Vec3>& out_vec);
  void complement_runaways_rho(lat::LatticeNeighborList& lnl) const;
  void complement_runaways_force(lat::LatticeNeighborList& lnl) const;

  const pot::EamTableSet* tables_;
  sw::SlaveCorePool* pool_;
  AccelStrategy strategy_;
  std::vector<Packed> packed_;       ///< main-memory staging, entry-indexed
  std::vector<double> rho_stage_;
  std::vector<util::Vec3> fpair_stage_;
  std::vector<util::Vec3> fdens_stage_;
  std::vector<double> compute_s_;    ///< per-core measured compute seconds
};

}  // namespace mmd::md
