#pragma once

#include "comm/world.h"
#include "lattice/ghost_exchange.h"
#include "lattice/lattice_neighbor_list.h"
#include "potential/eam.h"

namespace mmd::md {

/// Newton-third-law (half-neighbor) EAM backend — the design alternative to
/// the full-loop reference path.
///
/// Each lattice pair is evaluated exactly once, by the rank owning the atom
/// with the smaller global id; the contribution to the other atom
/// accumulates into its local (possibly ghost) entry and is returned to the
/// owner with a reverse ghost accumulation (the LAMMPS `reverse_comm`
/// pattern). This halves the pair arithmetic but adds one reverse exchange
/// per pass — the communication-vs-compute trade that makes full loops (the
/// reference path, and CoMD's choice) attractive on communication-bound
/// machines like the paper's. `bench/micro_structures`-style comparison:
/// tests/test_newton_force.cpp verifies physics equality; the ablation's
/// traffic shows up in the comm counters.
///
/// Run-away atoms are handled with full loops (they are a few millionths of
/// the population). Single-species (Fe) only, like the slave-core path.
class NewtonForce {
 public:
  explicit NewtonForce(const pot::EamTableSet& tables);

  /// Pass 1: accumulate host densities pairwise, reverse-return ghost
  /// contributions, then forward-refresh ghost rho.
  void compute_rho(comm::Comm& comm, lat::LatticeNeighborList& lnl,
                   lat::GhostExchange& ghosts) const;

  /// Pass 2: pairwise forces with += / -= accumulation and a reverse force
  /// return. Owned lattice and run-away forces are complete afterwards;
  /// ghost forces are garbage.
  void compute_forces(comm::Comm& comm, lat::LatticeNeighborList& lnl,
                      lat::GhostExchange& ghosts) const;

 private:
  const pot::EamTableSet* tables_;
};

}  // namespace mmd::md
