#include "md/engine.h"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "lattice/neighbor_offsets.h"
#include "md/slave_force.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"

namespace mmd::md {

namespace {

lat::LocalBox make_box(const lat::DomainDecomposition& dd, int rank) {
  return dd.local_box(rank);
}

}  // namespace

MdSetup::MdSetup(const MdConfig& cfg, int nranks)
    : geo(cfg.nx, cfg.ny, cfg.nz, cfg.lattice_constant),
      dd(geo, nranks,
         lat::required_halo_cells(cfg.lattice_constant, cfg.cutoff + kNeighborSkin)) {}

MdEngine::MdEngine(const MdConfig& cfg, const lat::BccGeometry& geo,
                   const lat::DomainDecomposition& dd,
                   const pot::EamTableSet& tables, int rank)
    : cfg_(cfg),
      geo_(&geo),
      rank_(rank),
      lnl_(geo, make_box(dd, rank), cfg.cutoff + kNeighborSkin),
      ghosts_(lnl_, dd, rank),
      tables_(&tables),
      ref_force_(tables) {}

void MdEngine::initialize(comm::Comm& comm) {
  comp_.clear();
  comm_time_.clear();
  time_ = 0.0;
  lnl_.fill_perfect(lat::Species::Fe);
  // Maxwell-Boltzmann velocities; each atom draws from a stream derived from
  // its global site id, so any decomposition yields the same initial state.
  const util::Rng base(cfg_.seed);
  for (std::size_t idx : lnl_.owned_indices()) {
    lat::AtomEntry& e = lnl_.entry(idx);
    const double v_scale =
        std::sqrt(util::units::kBoltzmann * cfg_.temperature *
                  util::units::kForceToAccel / cfg_.mass_of(e.type));
    util::Rng rng = base.split(static_cast<std::uint64_t>(e.id));
    e.v = {v_scale * rng.normal(), v_scale * rng.normal(), v_scale * rng.normal()};
  }
  comm_time_.start();
  ghosts_.exchange(comm);
  comm_time_.stop();
  // Observability: how wide the force kernels run (4 = AVX2 doubles, 1 =
  // scalar). Per-sweep table residency can still drop a vectorized sweep to
  // scalar; that shows up in sw.table.fallback instead.
  telemetry::set_gauge("md.force.simd_lanes",
                       slave_ != nullptr && slave_->simd() ? 4.0 : 1.0);
  compute_all_forces(comm);
}

void MdEngine::inject_pka(comm::Comm& comm, std::int64_t site_rank,
                          const util::Vec3& direction, double energy_ev) {
  const util::Vec3 dir = direction.normalized();
  for (std::size_t idx : lnl_.owned_indices()) {
    lat::AtomEntry& e = lnl_.entry(idx);
    if (e.is_atom() && e.id == site_rank) {
      const double v_mag = std::sqrt(2.0 * energy_ev *
                                     util::units::kForceToAccel /
                                     cfg_.mass_of(e.type));
      e.v = dir * v_mag;
    }
  }
  // Refresh ghost copies so neighbor ranks see the new velocity immediately.
  comm_time_.start();
  ghosts_.exchange(comm);
  comm_time_.stop();
}

void MdEngine::seed_solutes(comm::Comm& comm, double fraction,
                            lat::Species solute) {
  if (tables_->num_species < 2) {
    throw std::invalid_argument(
        "seed_solutes: the engine was built with single-species tables");
  }
  const util::Rng base(cfg_.seed ^ 0xa110c8edull);
  for (std::size_t idx : lnl_.owned_indices()) {
    lat::AtomEntry& e = lnl_.entry(idx);
    if (!e.is_atom()) continue;
    util::Rng rng = base.split(static_cast<std::uint64_t>(e.id));
    if (rng.uniform() < fraction) e.type = solute;
  }
  comm_time_.start();
  ghosts_.exchange(comm);
  comm_time_.stop();
  compute_all_forces(comm);
}

void MdEngine::step(comm::Comm& comm) {
  MMD_TRACE_SCOPE("md.step");
  // Adaptive step length: cap the fastest atom's displacement (collective so
  // every rank integrates with the same dt).
  double dt = cfg_.dt;
  if (cfg_.max_displacement > 0.0) {
    comp_.start();
    double v2_max = 0.0;
    for (std::size_t idx : lnl_.owned_indices()) {
      const lat::AtomEntry& e = lnl_.entry(idx);
      if (e.is_atom()) v2_max = std::max(v2_max, e.v.norm2());
    }
    lnl_.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
      v2_max = std::max(v2_max, lnl_.runaway(ri).v.norm2());
    });
    comp_.stop();
    comm_time_.start();
    double v_max = 0.0;
    {
      MMD_TRACE_SCOPE("md.dt_sync");
      v_max = std::sqrt(comm.allreduce_max(v2_max));
    }
    comm_time_.stop();
    if (v_max * dt > cfg_.max_displacement) dt = cfg_.max_displacement / v_max;
  }
  const double kick0 = 0.5 * dt * util::units::kForceToAccel;
  comp_.start();
  {
    MMD_TRACE_SCOPE("md.integrate");
    for (std::size_t idx : lnl_.owned_indices()) {
      lat::AtomEntry& e = lnl_.entry(idx);
      if (!e.is_atom()) continue;
      e.v += e.f * (kick0 / cfg_.mass_of(e.type));
      e.r += e.v * dt;
    }
    lnl_.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
      lat::RunawayAtom& a = lnl_.runaway(ri);
      a.v += a.f * (kick0 / cfg_.mass_of(a.type));
      a.r += a.v * dt;
    });
    time_ += dt;
  }
  comp_.stop();

  detach_and_rehome(comm);
  compute_all_forces(comm);

  comp_.start();
  double scale = 1.0;
  if (cfg_.thermostat_rate > 0.0) {
    // Berendsen velocity rescale toward the target temperature.
    comp_.stop();
    const double t_now = temperature(comm);
    comp_.start();
    if (t_now > 0.0) {
      const double lambda2 =
          1.0 + cfg_.thermostat_rate * (cfg_.temperature / t_now - 1.0);
      scale = std::sqrt(std::max(0.1, lambda2));
    }
  }
  for (std::size_t idx : lnl_.owned_indices()) {
    lat::AtomEntry& e = lnl_.entry(idx);
    if (!e.is_atom()) continue;
    e.v += e.f * (kick0 / cfg_.mass_of(e.type));
    e.v *= scale;
  }
  lnl_.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
    lat::RunawayAtom& a = lnl_.runaway(ri);
    a.v += a.f * (kick0 / cfg_.mass_of(a.type));
    a.v *= scale;
  });
  comp_.stop();
  telemetry::count("md.steps");
}

void MdEngine::run(comm::Comm& comm, int steps) {
  for (int s = 0; s < steps; ++s) step(comm);
}

void MdEngine::run_for(comm::Comm& comm, double duration_ps) {
  const double until = time_ + duration_ps;
  while (time_ < until) step(comm);
}

void MdEngine::detach_and_rehome(comm::Comm& comm) {
  comp_.start();
  const double thr2 = cfg_.detach_threshold * cfg_.detach_threshold;
  std::vector<lat::RunawayAtom> emigrants;
  {
    MMD_TRACE_SCOPE("md.rehome");
    for (std::size_t idx : lnl_.owned_indices()) {
      lat::AtomEntry& e = lnl_.entry(idx);
      if (!e.is_atom()) continue;
      if ((e.r - lnl_.ideal_position(idx)).norm2() > thr2) {
        lnl_.detach(idx, &emigrants);
      }
    }
    lnl_.rehome_runaways(&emigrants);
  }
  comp_.stop();
  comm_time_.start();
  {
    MMD_TRACE_SCOPE("md.ghost.exchange");
    ghosts_.exchange(comm, std::move(emigrants));
  }
  comm_time_.stop();
}

void MdEngine::compute_all_forces(comm::Comm& comm) {
  // Ghost positions were refreshed by detach_and_rehome (or by initialize /
  // inject_pka); here: rho pass, rho exchange, force pass.
  comp_.start();
  {
    MMD_TRACE_SCOPE("md.force.rho");
    if (slave_ != nullptr) {
      slave_->compute_rho(lnl_);
    } else {
      ref_force_.compute_rho(lnl_);
    }
  }
  comp_.stop();

  if (comm.size() == 1) {
    // Single rank: the rho "exchange" is a local periodic copy with nothing
    // in flight to hide, so keep the plain sequential shape.
    comm_time_.start();
    {
      MMD_TRACE_SCOPE("md.ghost.rho");
      ghosts_.exchange_rho(comm);
    }
    comm_time_.stop();
    comp_.start();
    {
      MMD_TRACE_SCOPE("md.force.eam");
      if (slave_ != nullptr) {
        slave_->compute_forces(lnl_);
      } else {
        ref_force_.compute_forces(lnl_);
      }
    }
    comp_.stop();
    return;
  }

  // Compute/communication overlap: post the x phase of the rho exchange,
  // sweep the interior cells (whose stencils never read ghosts) while the
  // messages travel, then complete the exchange and sweep the boundary
  // shell + run-aways, which do read ghost rho.
  std::optional<lat::GhostExchange::RhoFlight> flight;
  comm_time_.start();
  {
    MMD_TRACE_SCOPE("md.ghost.rho");
    flight = ghosts_.begin_exchange_rho(comm);
  }
  comm_time_.stop();
  comp_.start();
  {
    MMD_TRACE_SCOPE("md.force.eam.interior");
    if (slave_ != nullptr) {
      slave_->compute_forces_interior(lnl_);
    } else {
      ref_force_.compute_entry_forces(lnl_, lnl_.owned_interior_indices());
    }
  }
  comp_.stop();
  comm_time_.start();
  {
    MMD_TRACE_SCOPE("comm.wait");
    ghosts_.finish_exchange_rho(comm, *flight);
  }
  comm_time_.stop();
  comp_.start();
  {
    MMD_TRACE_SCOPE("md.force.eam");
    if (slave_ != nullptr) {
      slave_->compute_forces_boundary(lnl_);
    } else {
      ref_force_.compute_entry_forces(lnl_, lnl_.owned_boundary_indices());
      ref_force_.compute_runaway_forces(lnl_);
    }
  }
  comp_.stop();
}

double MdEngine::local_kinetic() const {
  double ke = 0.0;
  const double half = 0.5 * util::units::kVel2ToEnergy;
  for (std::size_t idx : lnl_.owned_indices()) {
    const lat::AtomEntry& e = lnl_.entry(idx);
    if (e.is_atom()) ke += half * cfg_.mass_of(e.type) * e.v.norm2();
  }
  lnl_.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
    const lat::RunawayAtom& a = lnl_.runaway(ri);
    ke += half * cfg_.mass_of(a.type) * a.v.norm2();
  });
  return ke;
}

double MdEngine::kinetic_energy(comm::Comm& comm) const {
  return comm.allreduce_sum(local_kinetic());
}

double MdEngine::potential_energy(comm::Comm& comm) const {
  return comm.allreduce_sum(ref_force_.potential_energy(lnl_));
}

double MdEngine::temperature(comm::Comm& comm) const {
  const double ke = kinetic_energy(comm);
  const auto n = comm.allreduce_sum_u64(
      static_cast<std::uint64_t>(lnl_.count_owned_atoms()));
  if (n == 0) return 0.0;
  return 2.0 * ke / (3.0 * static_cast<double>(n) * util::units::kBoltzmann);
}

DefectSummary MdEngine::defects(comm::Comm& comm) const {
  DefectSummary d;
  d.atoms = comm.allreduce_sum_u64(
      static_cast<std::uint64_t>(lnl_.count_owned_atoms()));
  d.vacancies = comm.allreduce_sum_u64(
      static_cast<std::uint64_t>(lnl_.count_owned_vacancies()));
  d.interstitials = comm.allreduce_sum_u64(
      static_cast<std::uint64_t>(lnl_.count_owned_runaways()));
  return d;
}

std::vector<VacancyRecord> MdEngine::vacancies() const {
  std::vector<VacancyRecord> out;
  for (std::size_t idx : lnl_.owned_indices()) {
    const lat::AtomEntry& e = lnl_.entry(idx);
    if (e.is_vacancy()) {
      out.push_back({lnl_.site_rank(idx), e.r});
    }
  }
  return out;
}

}  // namespace mmd::md
