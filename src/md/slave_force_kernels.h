#pragma once

#include <cstdint>

#include "util/vec3.h"

// Internal interface between the slave-core sweep driver (slave_force.cpp)
// and the vectorized block kernels (slave_force_simd.cpp). The two TUs are
// compiled with different target flags (-mavx2 -mfma only on the SIMD one),
// so everything crossing the boundary is a POD and all kernels are out of
// line — no inline function may be defined here, or the mixed codegen would
// be an ODR hazard.

namespace mmd::md::detail {

/// A compact table staged resident in the local store with edge-replicated
/// padding: `padded[j + 2]` holds nominal sample j, `padded[0..1]` replicate
/// sample 0 and the last three slots replicate sample n-1. With that layout
/// the clamped 6-sample window of segment i is the contiguous run
/// `padded[i..i+5]` — six vector gathers, no per-lane clamping of the window
/// indices (only of i itself).
struct SimdTable {
  const double* padded = nullptr;
  double x_min = 0.0;
  double dx = 1.0;
  double xmin_over_dx = 0.0;  ///< x_min/dx, matching CompactTable::param
  std::int32_t last_segment = 0;  ///< segments - 1 (clamp bound for i)
};

/// Pointers to the SoA window planes staged in the local store. Each plane is
/// laid out `[sub][window_row][cell]` with `row_cells` doubles per row, rows
/// back-to-back, and a >= 4-double zeroed tail pad so full-width remainder
/// loads stay inside the allocation.
struct WindowPlanes {
  const double* x = nullptr;
  const double* y = nullptr;
  const double* z = nullptr;
  const double* fprime = nullptr;  ///< null in the rho stage
  const double* id = nullptr;
};

/// One block of central cells: both sublattices, `bw` cells along x.
/// `central_base[sub] + xi` is the plane index of central cell xi;
/// `deltas[sub][j] + xi` is the plane index of its j-th stencil neighbor
/// (the offsets are absolute within the window, so neighbor loads are plain
/// unit-stride unaligned vector loads).
struct BlockArgs {
  WindowPlanes w;
  std::int32_t central_base[2] = {0, 0};
  const std::int32_t* deltas[2] = {nullptr, nullptr};
  std::int32_t num_deltas[2] = {0, 0};
  double cut2 = 0.0;
  double r_min = 0.0;
  std::int32_t bw = 0;
};

/// True when the AVX2+FMA kernels were compiled in AND this CPU executes
/// them (runtime __builtin_cpu_supports check).
bool simd_available();

/// Block kernels. `out` is the interleaved per-entry staging buffer of the
/// block (`out[xi * 2 + sub]`), exactly what the result DMA put ships.
/// Contract: bit-identical per atom regardless of block width or lane
/// position (lane-independent arithmetic, masked remainder lanes), so the
/// interior/boundary split reproduces the unsplit sweep exactly.
void simd_rho_block(const BlockArgs& a, const SimdTable& f, double* out);
void simd_pair_block(const BlockArgs& a, const SimdTable& phi, util::Vec3* out);
void simd_dens_block(const BlockArgs& a, const SimdTable& f, util::Vec3* out);
void simd_fused_block(const BlockArgs& a, const SimdTable& phi,
                      const SimdTable& f, util::Vec3* out);

}  // namespace mmd::md::detail
