#include "telemetry/comm_recorder.h"

namespace mmd::telemetry {

CommRecorder::CommRecorder(int nranks, std::size_t events_per_rank,
                           std::chrono::steady_clock::time_point epoch)
    : capacity_(events_per_rank), epoch_(epoch),
      logs_(static_cast<std::size_t>(nranks < 0 ? 0 : nranks)) {
  for (RankLog& log : logs_) {
    log.capacity = capacity_;
    log.events.reserve(capacity_);
  }
}

std::uint64_t CommRecorder::total_recorded() const {
  std::uint64_t total = 0;
  for (const RankLog& log : logs_) total += log.recorded;
  return total;
}

std::uint64_t CommRecorder::total_dropped() const {
  std::uint64_t total = 0;
  for (const RankLog& log : logs_) total += log.dropped();
  return total;
}

void CommRecorder::reset() {
  for (RankLog& log : logs_) {
    log.events.clear();
    log.recorded = 0;
  }
}

}  // namespace mmd::telemetry
