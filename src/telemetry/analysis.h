#pragma once

// Post-run analysis over the Tracer's spans and the MetricsRegistry: the
// quantities the paper's evaluation is judged by — per-phase critical path
// (max over ranks), load-imbalance factor (max/mean), top-N hotspots, tail
// latencies (P² p50/p95/p99 per span name), and the DMA-vs-compute overlap
// ratio on the CPE lanes. Surfaced by `mmd_run --perf-report` as human text
// and as a versioned JSON document (schema in docs/OBSERVABILITY.md).
//
// Read-side only: call after the rank/CPE writer threads have joined (same
// contract as the exporters).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.h"

namespace mmd::telemetry {

class MetricsRegistry;
class Tracer;

struct AnalysisOptions {
  /// Modeled DMA cost for the overlap ratio. Defaults mirror
  /// sw::DmaCostModel (telemetry cannot include sunway headers without a
  /// dependency cycle — sunway already links telemetry).
  double dma_latency_s = 0.25e-6;
  double dma_bandwidth_bytes_per_s = 8e9;
};

/// Aggregated view of one span name ("phase") across all ranks of one lane
/// class (master or CPE).
struct PhaseStats {
  std::string name;
  int ranks = 0;            ///< ranks on which the phase was recorded
  std::uint64_t spans = 0;  ///< spans across those ranks

  // Per-rank totals (sum of span durations within the rank):
  double total_max_s = 0.0;   ///< critical path: the slowest rank's total
  double total_mean_s = 0.0;  ///< mean over all attached ranks (absent = 0)
  double total_min_s = 0.0;   ///< over ranks where the phase is present
  int critical_rank = -1;
  /// Load-imbalance factor max/mean; 1.0 = perfectly balanced, and the
  /// paper's scaling losses show up as this drifting above ~1.1.
  double imbalance = 1.0;

  /// Per-span durations in seconds, pooled over ranks (tails via P²).
  util::QuantileStats span_s;

  // DMA traffic attached to the spans (CPE lanes; zero on master phases).
  std::uint64_t dma_ops = 0;
  std::uint64_t dma_bytes = 0;
};

/// Spread of a per-rank gauge (e.g. md.compute_seconds) across ranks.
struct GaugeSpread {
  std::string name;
  double max = 0.0;
  double mean = 0.0;
  double imbalance = 1.0;  ///< max/mean over the ranks that set the gauge
  int max_rank = -1;
};

struct PerfReport {
  static constexpr int kSchemaVersion = 1;

  int nranks = 0;
  /// Master-lane span envelope: latest end minus earliest begin.
  double wall_s = 0.0;
  std::size_t dropped_spans = 0;

  std::vector<PhaseStats> phases;      ///< master-lane, sorted by critical path
  std::vector<PhaseStats> cpe_phases;  ///< CPE-lane (cpe.kernel et al.)

  // CPE utilization summary:
  double cpe_busy_s = 0.0;     ///< sum of CPE span durations (all lanes)
  double dma_modeled_s = 0.0;  ///< alpha-beta cost of the spans' DMA traffic
  /// Modeled DMA seconds per CPE busy second. < 1: the traffic fits under
  /// the compute (double-buffering can hide it); > 1: DMA-bound.
  double overlap_ratio = 0.0;

  std::vector<GaugeSpread> gauges;  ///< per-rank gauge spread (registry)
};

PerfReport analyze(const Tracer& tracer, const MetricsRegistry& metrics,
                   const AnalysisOptions& opt = {});

/// The n master-lane phases with the largest critical path (pointers into
/// `report.phases`; valid while the report lives).
std::vector<const PhaseStats*> top_hotspots(const PerfReport& report,
                                            std::size_t n);

void write_perf_report_text(std::ostream& os, const PerfReport& report);
void write_perf_report_json(std::ostream& os, const PerfReport& report);
/// Returns false when the file cannot be opened or the write is short.
bool write_perf_report_json_file(const std::string& path,
                                 const PerfReport& report);

}  // namespace mmd::telemetry
