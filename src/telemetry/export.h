#pragma once

#include <iosfwd>
#include <string>

namespace mmd::telemetry {

class CommRecorder;
class MetricsRegistry;
class Tracer;

/// Chrome-trace JSON ("traceEvents" array of complete events): loads in
/// chrome://tracing and in Perfetto (ui.perfetto.dev). One process per rank,
/// one thread per lane (master core = tid 0, CPEs = tid 1..64). Spans carry
/// their DMA traffic as args when nonzero.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Same, plus the comm flight recorder's events when `recorder` is non-null:
/// each message becomes a small "comm.*" slice on the master lane and each
/// matched send/receive pair a flow arrow ("ph":"s"/"f") between the rank
/// timelines. Matching is per (src, dst, tag) in message order — the
/// mailbox delivers same-triple messages FIFO, so the k-th send from a to b
/// with tag t pairs with the k-th completed receive at b from a with tag t.
void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const CommRecorder* recorder);

/// Flat metrics JSON: the cross-rank aggregate (counter sums, gauge max/sum,
/// merged distributions) followed by every rank's raw slot. Schema in
/// docs/OBSERVABILITY.md.
void write_metrics_json(std::ostream& os, const MetricsRegistry& registry);

/// File-writing convenience wrappers; return false (and write nothing else)
/// if the file cannot be opened.
bool write_chrome_trace_file(const std::string& path, const Tracer& tracer);
bool write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             const CommRecorder* recorder);
bool write_metrics_json_file(const std::string& path, const MetricsRegistry& registry);

}  // namespace mmd::telemetry
