#include "telemetry/comm_trace.h"

#include <cstdio>
#include <stdexcept>

#include "io/byte_io.h"

namespace mmd::telemetry {

namespace {

constexpr char kMagic[4] = {'M', 'M', 'D', 'T'};

void put_string(io::ByteWriter& w, std::string_view s) {
  w.put_u32(static_cast<std::uint32_t>(s.size()));
  for (char c : s) w.put_u8(static_cast<std::uint8_t>(c));
}

std::string get_string(io::ByteReader& r) {
  const std::uint32_t len = r.get_u32();
  if (len > r.remaining()) {
    throw std::runtime_error("comm trace: truncated string");
  }
  std::string s;
  s.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(r.get_u8()));
  }
  return s;
}

}  // namespace

std::uint64_t CommTraceData::total_dropped() const {
  std::uint64_t total = 0;
  for (const RankEvents& r : ranks) {
    const std::uint64_t stored = r.events.size();
    if (r.recorded > stored) total += r.recorded - stored;
  }
  return total;
}

std::uint64_t CommTraceData::total_stored() const {
  std::uint64_t total = 0;
  for (const RankEvents& r : ranks) total += r.events.size();
  return total;
}

std::uint64_t CommTraceData::meta_u64(const std::string& key,
                                      std::uint64_t fallback) const {
  auto it = meta.find(key);
  if (it == meta.end() || it->second.empty()) return fallback;
  std::uint64_t v = 0;
  for (char c : it->second) {
    if (c < '0' || c > '9') return fallback;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

CommTraceData trace_from_recorder(const CommRecorder& rec,
                                  std::map<std::string, std::string> meta) {
  CommTraceData trace;
  trace.meta = std::move(meta);
  trace.ranks.resize(static_cast<std::size_t>(rec.nranks()));
  for (int r = 0; r < rec.nranks(); ++r) {
    const CommRecorder::RankLog& log = rec.rank_log(r);
    CommTraceData::RankEvents& out = trace.ranks[static_cast<std::size_t>(r)];
    out.recorded = log.recorded;
    out.events = log.events;
  }
  return trace;
}

std::string serialize_comm_trace(const CommTraceData& trace) {
  io::ByteWriter w;
  for (char c : kMagic) w.put_u8(static_cast<std::uint8_t>(c));
  w.put_u32(trace.version);
  w.put_u32(static_cast<std::uint32_t>(trace.ranks.size()));
  w.put_u32(static_cast<std::uint32_t>(trace.meta.size()));
  for (const auto& [key, value] : trace.meta) {
    put_string(w, key);
    put_string(w, value);
  }
  for (const CommTraceData::RankEvents& r : trace.ranks) {
    w.put_u64(r.recorded);
    w.put_u64(static_cast<std::uint64_t>(r.events.size()));
    for (const CommEvent& ev : r.events) {
      w.put_u64(ev.t0_ns);
      w.put_u64(ev.t1_ns);
      w.put_u64(ev.bytes);
      w.put_i32(ev.peer);
      w.put_i32(ev.tag);
      w.put_u8(static_cast<std::uint8_t>(ev.op));
    }
  }
  return w.take();
}

CommTraceData parse_comm_trace(std::string_view bytes) {
  io::ByteReader r(bytes);
  for (char c : kMagic) {
    if (r.remaining() == 0 || static_cast<char>(r.get_u8()) != c) {
      throw std::runtime_error("comm trace: bad magic (not an MMDT file)");
    }
  }
  CommTraceData trace;
  trace.version = r.get_u32();
  if (trace.version != kCommTraceVersion) {
    throw std::runtime_error("comm trace: unsupported version " +
                             std::to_string(trace.version));
  }
  const std::uint32_t nranks = r.get_u32();
  const std::uint32_t nmeta = r.get_u32();
  for (std::uint32_t i = 0; i < nmeta; ++i) {
    std::string key = get_string(r);
    std::string value = get_string(r);
    trace.meta.emplace(std::move(key), std::move(value));
  }
  trace.ranks.resize(nranks);
  for (std::uint32_t rank = 0; rank < nranks; ++rank) {
    CommTraceData::RankEvents& out = trace.ranks[rank];
    out.recorded = r.get_u64();
    const std::uint64_t stored = r.get_u64();
    // 33 bytes per event; bound against the remaining payload before
    // allocating so a corrupt count cannot drive a huge reserve.
    if (stored > r.remaining() / 33) {
      throw std::runtime_error("comm trace: truncated event block");
    }
    out.events.reserve(static_cast<std::size_t>(stored));
    for (std::uint64_t i = 0; i < stored; ++i) {
      CommEvent ev;
      ev.t0_ns = r.get_u64();
      ev.t1_ns = r.get_u64();
      ev.bytes = r.get_u64();
      ev.peer = r.get_i32();
      ev.tag = r.get_i32();
      const std::uint8_t op = r.get_u8();
      if (op >= kCommOpCount) {
        throw std::runtime_error("comm trace: unknown op " + std::to_string(op));
      }
      ev.op = static_cast<CommOp>(op);
      out.events.push_back(ev);
    }
  }
  return trace;
}

bool write_comm_trace_file(const std::string& path, const CommTraceData& trace,
                           std::string* error) {
  const std::string bytes = serialize_comm_trace(trace);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

CommTraceData read_comm_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("comm trace: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return parse_comm_trace(bytes);
}

}  // namespace mmd::telemetry
