#include "telemetry/trace.h"

#include <algorithm>
#include <stdexcept>

namespace mmd::telemetry {

namespace {

struct ThreadBinding {
  Tracer* tracer = nullptr;
  TrackId track;
};

thread_local ThreadBinding tls_binding;

}  // namespace

Tracer::Tracer(int nranks, int lanes_per_rank, std::size_t events_per_track)
    : nranks_(nranks),
      lanes_(lanes_per_rank),
      capacity_(std::max<std::size_t>(1, events_per_track)),
      epoch_(std::chrono::steady_clock::now()),
      tracks_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(lanes_per_rank)) {
  if (nranks <= 0 || lanes_per_rank <= 0) {
    throw std::invalid_argument("Tracer requires at least one rank and one lane");
  }
}

void Tracer::attach_calling_thread(int rank, int lane) {
  if (rank < 0 || rank >= nranks_ || lane < 0 || lane >= lanes_) {
    detach_calling_thread();
    return;
  }
  const std::size_t idx = static_cast<std::size_t>(rank) * static_cast<std::size_t>(lanes_) +
                          static_cast<std::size_t>(lane);
  {
    std::lock_guard lk(attach_mutex_);
    if (tracks_[idx] == nullptr) {
      auto t = std::make_unique<Track>();
      t->rank = rank;
      t->lane = lane;
      t->ring.resize(capacity_);
      tracks_[idx] = std::move(t);
    }
  }
  tls_binding.tracer = this;
  tls_binding.track = TrackId{rank, lane};
}

void Tracer::detach_calling_thread() {
  tls_binding.tracer = nullptr;
  tls_binding.track = TrackId{};
}

TrackId Tracer::calling_thread_track() { return tls_binding.track; }

Tracer* Tracer::calling_thread_tracer() { return tls_binding.tracer; }

void Tracer::record(const TrackId& id, const TraceEvent& ev) {
  if (id.rank < 0 || id.rank >= nranks_ || id.lane < 0 || id.lane >= lanes_) return;
  const std::size_t idx = static_cast<std::size_t>(id.rank) * static_cast<std::size_t>(lanes_) +
                          static_cast<std::size_t>(id.lane);
  Track* t = tracks_[idx].get();
  if (t == nullptr) return;  // never attached
  t->ring[t->recorded % t->ring.size()] = ev;
  ++t->recorded;
}

std::size_t Tracer::total_dropped() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) {
    if (t) n += t->dropped();
  }
  return n;
}

}  // namespace mmd::telemetry
