#include "telemetry/analysis.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mmd::telemetry {

namespace {

constexpr double kNsToS = 1e-9;

struct PhaseAccum {
  std::map<int, double> per_rank_total_s;
  std::uint64_t spans = 0;
  util::QuantileStats span_s;
  std::uint64_t dma_ops = 0;
  std::uint64_t dma_bytes = 0;
};

std::vector<PhaseStats> finalize_phases(std::map<std::string, PhaseAccum>& accum,
                                        int attached_ranks) {
  std::vector<PhaseStats> out;
  out.reserve(accum.size());
  for (auto& [name, a] : accum) {
    PhaseStats p;
    p.name = name;
    p.ranks = static_cast<int>(a.per_rank_total_s.size());
    p.spans = a.spans;
    p.span_s = a.span_s;
    p.dma_ops = a.dma_ops;
    p.dma_bytes = a.dma_bytes;
    double sum = 0.0;
    bool first = true;
    for (const auto& [rank, total] : a.per_rank_total_s) {
      sum += total;
      if (total > p.total_max_s) {
        p.total_max_s = total;
        p.critical_rank = rank;
      }
      if (first || total < p.total_min_s) p.total_min_s = total;
      first = false;
    }
    // Mean over every attached rank: a rank that never entered the phase
    // contributes zero, which is exactly the imbalance the critical path
    // pays for.
    const int denom = std::max(attached_ranks, p.ranks);
    p.total_mean_s = denom > 0 ? sum / denom : 0.0;
    p.imbalance = p.total_mean_s > 0.0 ? p.total_max_s / p.total_mean_s : 1.0;
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(), [](const PhaseStats& a, const PhaseStats& b) {
    return a.total_max_s > b.total_max_s;
  });
  return out;
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_phase_json(std::ostream& os, const PhaseStats& p) {
  os << "{\"name\":";
  write_escaped(os, p.name);
  os << ",\"ranks\":" << p.ranks << ",\"spans\":" << p.spans
     << ",\"critical_path_s\":" << p.total_max_s
     << ",\"critical_rank\":" << p.critical_rank
     << ",\"mean_s\":" << p.total_mean_s << ",\"min_s\":" << p.total_min_s
     << ",\"imbalance\":" << p.imbalance << ",\"span_p50_s\":" << p.span_s.p50()
     << ",\"span_p95_s\":" << p.span_s.p95()
     << ",\"span_p99_s\":" << p.span_s.p99()
     << ",\"span_max_s\":" << p.span_s.max() << ",\"dma_ops\":" << p.dma_ops
     << ",\"dma_bytes\":" << p.dma_bytes << "}";
}

}  // namespace

PerfReport analyze(const Tracer& tracer, const MetricsRegistry& metrics,
                   const AnalysisOptions& opt) {
  PerfReport report;
  report.nranks = tracer.nranks();
  report.dropped_spans = tracer.total_dropped();

  std::map<std::string, PhaseAccum> master_accum;
  std::map<std::string, PhaseAccum> cpe_accum;
  std::set<int> master_ranks;
  std::set<int> cpe_ranks;
  std::uint64_t wall_t0 = 0, wall_t1 = 0;
  bool any_master_span = false;

  for (int i = 0; i < tracer.num_tracks(); ++i) {
    const Tracer::Track* t = tracer.track(i);
    if (t == nullptr || t->recorded == 0) continue;
    const bool master = t->lane == Tracer::kMasterLane;
    auto& accum = master ? master_accum : cpe_accum;
    (master ? master_ranks : cpe_ranks).insert(t->rank);
    for (std::size_t e = 0; e < t->live(); ++e) {
      const TraceEvent& ev = t->ring[e];
      const double dur_s =
          static_cast<double>(ev.t1_ns - ev.t0_ns) * kNsToS;
      PhaseAccum& a = accum[ev.name != nullptr ? ev.name : "?"];
      a.per_rank_total_s[t->rank] += dur_s;
      a.spans += 1;
      a.span_s.add(dur_s);
      a.dma_ops += ev.dma_ops;
      a.dma_bytes += ev.dma_bytes;
      if (master) {
        if (!any_master_span || ev.t0_ns < wall_t0) wall_t0 = ev.t0_ns;
        if (!any_master_span || ev.t1_ns > wall_t1) wall_t1 = ev.t1_ns;
        any_master_span = true;
      } else {
        report.cpe_busy_s += dur_s;
        report.dma_modeled_s +=
            static_cast<double>(ev.dma_ops) * opt.dma_latency_s +
            static_cast<double>(ev.dma_bytes) / opt.dma_bandwidth_bytes_per_s;
      }
    }
  }
  if (any_master_span) {
    report.wall_s = static_cast<double>(wall_t1 - wall_t0) * kNsToS;
  }
  report.phases =
      finalize_phases(master_accum, static_cast<int>(master_ranks.size()));
  report.cpe_phases =
      finalize_phases(cpe_accum, static_cast<int>(cpe_ranks.size()));
  report.overlap_ratio =
      report.cpe_busy_s > 0.0 ? report.dma_modeled_s / report.cpe_busy_s : 0.0;

  // Per-rank gauge spread from the registry (e.g. md.compute_seconds): which
  // rank carries the stage, and by how much.
  std::map<std::string, GaugeSpread> gauges;
  std::map<std::string, int> gauge_ranks;
  for (int r = 0; r < metrics.nranks(); ++r) {
    for (const auto& [name, v] : metrics.rank(r).gauges) {
      GaugeSpread& g = gauges[name];
      g.name = name;
      if (gauge_ranks[name] == 0 || v > g.max) {
        g.max = v;
        g.max_rank = r;
      }
      g.mean += v;
      gauge_ranks[name] += 1;
    }
  }
  for (auto& [name, g] : gauges) {
    const int n = gauge_ranks[name];
    if (n > 0) g.mean /= n;
    g.imbalance = g.mean > 0.0 ? g.max / g.mean : 1.0;
    report.gauges.push_back(g);
  }
  return report;
}

std::vector<const PhaseStats*> top_hotspots(const PerfReport& report,
                                            std::size_t n) {
  std::vector<const PhaseStats*> out;
  for (const PhaseStats& p : report.phases) {
    if (out.size() >= n) break;
    out.push_back(&p);
  }
  return out;
}

void write_perf_report_text(std::ostream& os, const PerfReport& report) {
  char line[320];
  std::snprintf(line, sizeof(line),
                "perf report: %d ranks, wall %.3f s, %zu dropped spans\n",
                report.nranks, report.wall_s, report.dropped_spans);
  os << line;

  const auto phase_table = [&](const char* title,
                               const std::vector<PhaseStats>& phases) {
    if (phases.empty()) return;
    std::snprintf(line, sizeof(line),
                  "\n%s\n  %-20s %10s %6s %8s %7s %8s %10s %10s %10s\n", title,
                  "phase", "crit [ms]", "@rank", "mean[ms]", "imbal", "spans",
                  "p50 [us]", "p95 [us]", "p99 [us]");
    os << line;
    for (const PhaseStats& p : phases) {
      std::snprintf(line, sizeof(line),
                    "  %-20s %10.3f %6d %8.3f %6.2fx %8llu %10.1f %10.1f %10.1f\n",
                    p.name.c_str(), 1e3 * p.total_max_s, p.critical_rank,
                    1e3 * p.total_mean_s, p.imbalance,
                    static_cast<unsigned long long>(p.spans),
                    1e6 * p.span_s.p50(), 1e6 * p.span_s.p95(),
                    1e6 * p.span_s.p99());
      os << line;
    }
  };
  phase_table("Per-phase critical path (master lanes, max over ranks):",
              report.phases);

  const auto hotspots = top_hotspots(report, 3);
  if (!hotspots.empty()) {
    os << "\nTop hotspots (critical path):";
    for (std::size_t i = 0; i < hotspots.size(); ++i) {
      std::snprintf(line, sizeof(line), "%s %s (%.3f ms)", i == 0 ? "" : ",",
                    hotspots[i]->name.c_str(), 1e3 * hotspots[i]->total_max_s);
      os << line;
    }
    os << "\n";
  }

  phase_table("CPE lanes:", report.cpe_phases);
  if (report.cpe_busy_s > 0.0) {
    std::snprintf(line, sizeof(line),
                  "  CPE busy %.3f s, modeled DMA %.3f s, overlap ratio %.3f "
                  "(%s)\n",
                  report.cpe_busy_s, report.dma_modeled_s, report.overlap_ratio,
                  report.overlap_ratio < 1.0 ? "DMA can hide under compute"
                                             : "DMA-bound");
    os << line;
  }

  if (!report.gauges.empty()) {
    std::snprintf(line, sizeof(line), "\nGauge spread over ranks:\n  %-28s %12s %6s %12s %7s\n",
                  "gauge", "max", "@rank", "mean", "imbal");
    os << line;
    for (const GaugeSpread& g : report.gauges) {
      std::snprintf(line, sizeof(line), "  %-28s %12.4g %6d %12.4g %6.2fx\n",
                    g.name.c_str(), g.max, g.max_rank, g.mean, g.imbalance);
      os << line;
    }
  }
}

void write_perf_report_json(std::ostream& os, const PerfReport& report) {
  os << "{\"schema\":\"mmd.perf_report\",\"schema_version\":"
     << PerfReport::kSchemaVersion << ",\"nranks\":" << report.nranks
     << ",\"wall_s\":" << report.wall_s
     << ",\"dropped_spans\":" << report.dropped_spans << ",\n\"phases\":[";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_phase_json(os, report.phases[i]);
  }
  os << "\n],\"cpe\":{\"busy_s\":" << report.cpe_busy_s
     << ",\"dma_modeled_s\":" << report.dma_modeled_s
     << ",\"overlap_ratio\":" << report.overlap_ratio << ",\"phases\":[";
  for (std::size_t i = 0; i < report.cpe_phases.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_phase_json(os, report.cpe_phases[i]);
  }
  os << "\n]},\"gauges\":[";
  for (std::size_t i = 0; i < report.gauges.size(); ++i) {
    const GaugeSpread& g = report.gauges[i];
    os << (i == 0 ? "\n" : ",\n") << "{\"name\":";
    write_escaped(os, g.name);
    os << ",\"max\":" << g.max << ",\"max_rank\":" << g.max_rank
       << ",\"mean\":" << g.mean << ",\"imbalance\":" << g.imbalance << "}";
  }
  os << "\n]}\n";
}

bool write_perf_report_json_file(const std::string& path,
                                 const PerfReport& report) {
  std::ofstream os(path);
  if (!os) return false;
  write_perf_report_json(os, report);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace mmd::telemetry
