#include "telemetry/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string_view>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mmd::telemetry {

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (int i = 0; i < tracer.num_tracks(); ++i) {
    const Tracer::Track* t = tracer.track(i);
    if (t == nullptr || t->recorded == 0) continue;
    // Metadata: pid = rank, tid = lane, labelled for the trace viewer.
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << t->rank
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << t->rank << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << t->rank
       << ",\"tid\":" << t->lane << ",\"args\":{\"name\":\""
       << (t->lane == Tracer::kMasterLane
               ? std::string("master")
               : "cpe " + std::to_string(t->lane - 1))
       << "\"}}";
    for (std::size_t e = 0; e < t->live(); ++e) {
      const TraceEvent& ev = t->ring[e];
      sep();
      os << "{\"ph\":\"X\",\"name\":";
      write_escaped(os, ev.name != nullptr ? ev.name : "?");
      os << ",\"pid\":" << t->rank << ",\"tid\":" << t->lane << ",\"ts\":" << us(ev.t0_ns)
         << ",\"dur\":" << us(ev.t1_ns - ev.t0_ns);
      if (ev.dma_ops != 0 || ev.dma_bytes != 0) {
        os << ",\"args\":{\"dma_ops\":" << ev.dma_ops
           << ",\"dma_bytes\":" << ev.dma_bytes << "}";
      }
      os << "}";
    }
  }
  os << "],\"otherData\":{\"dropped_events\":" << tracer.total_dropped() << "}}\n";
}

namespace {

void write_slot(std::ostream& os, const MetricsRegistry::RankSlot& slot) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : slot.counters) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : slot.gauges) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"distributions\":{";
  first = true;
  for (const auto& [name, s] : slot.dists) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":{\"count\":" << s.count() << ",\"mean\":" << s.mean()
       << ",\"min\":" << s.min() << ",\"max\":" << s.max()
       << ",\"variance\":" << s.variance() << "}";
  }
  os << "}}";
}

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsRegistry& registry) {
  const MetricsRegistry::Aggregate agg = registry.aggregate();
  os << "{\"nranks\":" << registry.nranks() << ",\"aggregate\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : agg.counters) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"gauge_max\":{";
  first = true;
  for (const auto& [name, v] : agg.gauge_max) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"gauge_sum\":{";
  first = true;
  for (const auto& [name, v] : agg.gauge_sum) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"distributions\":{";
  first = true;
  for (const auto& [name, s] : agg.dists) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":{\"count\":" << s.count() << ",\"mean\":" << s.mean()
       << ",\"min\":" << s.min() << ",\"max\":" << s.max()
       << ",\"variance\":" << s.variance() << "}";
  }
  os << "}},\"ranks\":[";
  for (int r = 0; r < registry.nranks(); ++r) {
    if (r > 0) os << ",";
    os << "\n";
    write_slot(os, registry.rank(r));
  }
  os << "]}\n";
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tracer) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, tracer);
  return static_cast<bool>(os);
}

bool write_metrics_json_file(const std::string& path, const MetricsRegistry& registry) {
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_json(os, registry);
  return static_cast<bool>(os);
}

}  // namespace mmd::telemetry
