#include "telemetry/export.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <string_view>
#include <tuple>

#include "telemetry/comm_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mmd::telemetry {

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

namespace {

const char* comm_slice_name(CommOp op) {
  switch (op) {
    case CommOp::kSend: return "comm.send";
    case CommOp::kRecv: return "comm.recv";
    case CommOp::kIrecvPost: return "comm.irecv";
    case CommOp::kWait: return "comm.wait";
    case CommOp::kPut: return "comm.put";
    case CommOp::kCollective: return "comm.collective";
  }
  return "comm.?";
}

/// (src, dst, tag, per-triple sequence) -> flow id. Mailbox delivery keeps
/// same-triple messages FIFO, so ordinal matching reconstructs the pairing.
using FlowKey = std::tuple<int, int, int, std::uint64_t>;

std::map<FlowKey, std::uint64_t> assign_flow_ids(const CommRecorder& rec) {
  std::map<FlowKey, std::uint64_t> ids;
  std::uint64_t next_id = 1;
  for (int rank = 0; rank < rec.nranks(); ++rank) {
    std::map<std::tuple<int, int, int>, std::uint64_t> seq;
    for (const CommEvent& ev : rec.rank_log(rank).events) {
      if (ev.op != CommOp::kSend || ev.peer < 0) continue;
      const auto triple = std::make_tuple(rank, ev.peer, ev.tag);
      ids.emplace(std::tuple_cat(triple, std::make_tuple(seq[triple]++)),
                  next_id++);
    }
  }
  return ids;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  write_chrome_trace(os, tracer, nullptr);
}

void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const CommRecorder* recorder) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (int i = 0; i < tracer.num_tracks(); ++i) {
    const Tracer::Track* t = tracer.track(i);
    if (t == nullptr || t->recorded == 0) continue;
    // Metadata: pid = rank, tid = lane, labelled for the trace viewer.
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << t->rank
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << t->rank << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << t->rank
       << ",\"tid\":" << t->lane << ",\"args\":{\"name\":\""
       << (t->lane == Tracer::kMasterLane
               ? std::string("master")
               : "cpe " + std::to_string(t->lane - 1))
       << "\"}}";
    for (std::size_t e = 0; e < t->live(); ++e) {
      const TraceEvent& ev = t->ring[e];
      sep();
      os << "{\"ph\":\"X\",\"name\":";
      write_escaped(os, ev.name != nullptr ? ev.name : "?");
      os << ",\"pid\":" << t->rank << ",\"tid\":" << t->lane << ",\"ts\":" << us(ev.t0_ns)
         << ",\"dur\":" << us(ev.t1_ns - ev.t0_ns);
      if (ev.dma_ops != 0 || ev.dma_bytes != 0) {
        os << ",\"args\":{\"dma_ops\":" << ev.dma_ops
           << ",\"dma_bytes\":" << ev.dma_bytes << "}";
      }
      os << "}";
    }
  }
  std::uint64_t comm_stored = 0;
  std::uint64_t comm_dropped = 0;
  if (recorder != nullptr) {
    comm_stored = recorder->total_recorded() - recorder->total_dropped();
    comm_dropped = recorder->total_dropped();
    const std::map<FlowKey, std::uint64_t> flow_ids = assign_flow_ids(*recorder);
    for (int rank = 0; rank < recorder->nranks(); ++rank) {
      std::map<std::tuple<int, int, int>, std::uint64_t> send_seq;
      std::map<std::tuple<int, int, int>, std::uint64_t> recv_seq;
      for (const CommEvent& ev : recorder->rank_log(rank).events) {
        // Every recorded op is a small slice on the rank's master lane...
        sep();
        os << "{\"ph\":\"X\",\"name\":\"" << comm_slice_name(ev.op)
           << "\",\"cat\":\"comm\",\"pid\":" << rank
           << ",\"tid\":" << Tracer::kMasterLane << ",\"ts\":" << us(ev.t0_ns)
           << ",\"dur\":" << us(ev.t1_ns - ev.t0_ns) << ",\"args\":{\"peer\":"
           << ev.peer << ",\"tag\":" << ev.tag << ",\"bytes\":" << ev.bytes
           << "}}";
        // ...and each matched send/receive pair a flow arrow between ranks.
        if (ev.peer < 0) continue;
        if (ev.op == CommOp::kSend) {
          const auto triple = std::make_tuple(rank, ev.peer, ev.tag);
          const auto it = flow_ids.find(
              std::tuple_cat(triple, std::make_tuple(send_seq[triple]++)));
          if (it == flow_ids.end()) continue;
          sep();
          os << "{\"ph\":\"s\",\"id\":" << it->second
             << ",\"name\":\"msg\",\"cat\":\"comm\",\"pid\":" << rank
             << ",\"tid\":" << Tracer::kMasterLane << ",\"ts\":" << us(ev.t0_ns)
             << "}";
        } else if (ev.op == CommOp::kRecv || ev.op == CommOp::kWait) {
          const auto triple = std::make_tuple(ev.peer, rank, ev.tag);
          const auto it = flow_ids.find(
              std::tuple_cat(triple, std::make_tuple(recv_seq[triple]++)));
          if (it == flow_ids.end()) continue;
          sep();
          os << "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << it->second
             << ",\"name\":\"msg\",\"cat\":\"comm\",\"pid\":" << rank
             << ",\"tid\":" << Tracer::kMasterLane << ",\"ts\":" << us(ev.t1_ns)
             << "}";
        }
      }
    }
  }
  os << "],\"otherData\":{\"dropped_events\":" << tracer.total_dropped();
  if (recorder != nullptr) {
    os << ",\"comm_events\":" << comm_stored
       << ",\"comm_dropped\":" << comm_dropped;
  }
  os << "}}\n";
}

namespace {

void write_slot(std::ostream& os, const MetricsRegistry::RankSlot& slot) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : slot.counters) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : slot.gauges) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"distributions\":{";
  first = true;
  for (const auto& [name, s] : slot.dists) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":{\"count\":" << s.count() << ",\"mean\":" << s.mean()
       << ",\"min\":" << s.min() << ",\"max\":" << s.max()
       << ",\"variance\":" << s.variance() << "}";
  }
  os << "}}";
}

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsRegistry& registry) {
  const MetricsRegistry::Aggregate agg = registry.aggregate();
  os << "{\"nranks\":" << registry.nranks() << ",\"aggregate\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : agg.counters) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"gauge_max\":{";
  first = true;
  for (const auto& [name, v] : agg.gauge_max) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"gauge_sum\":{";
  first = true;
  for (const auto& [name, v] : agg.gauge_sum) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"distributions\":{";
  first = true;
  for (const auto& [name, s] : agg.dists) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":{\"count\":" << s.count() << ",\"mean\":" << s.mean()
       << ",\"min\":" << s.min() << ",\"max\":" << s.max()
       << ",\"variance\":" << s.variance() << "}";
  }
  os << "}},\"ranks\":[";
  for (int r = 0; r < registry.nranks(); ++r) {
    if (r > 0) os << ",";
    os << "\n";
    write_slot(os, registry.rank(r));
  }
  os << "]}\n";
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tracer) {
  return write_chrome_trace_file(path, tracer, nullptr);
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             const CommRecorder* recorder) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, tracer, recorder);
  return static_cast<bool>(os);
}

bool write_metrics_json_file(const std::string& path, const MetricsRegistry& registry) {
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_json(os, registry);
  return static_cast<bool>(os);
}

}  // namespace mmd::telemetry
