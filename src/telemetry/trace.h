#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace mmd::telemetry {

/// One completed span, Chrome-trace "complete" event shaped ("ph":"X").
/// `name` must point to storage that outlives the tracer — in practice the
/// string literals passed to MMD_TRACE_SCOPE.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;  ///< begin, ns since tracer epoch
  std::uint64_t t1_ns = 0;  ///< end
  std::uint64_t dma_ops = 0;    ///< optional DMA payload (0 = omit)
  std::uint64_t dma_bytes = 0;
};

/// Identity of the track a thread records into. Lane 0 is the rank's master
/// core; lanes 1..64 are its logical slave cores (CPEs).
struct TrackId {
  int rank = -1;  ///< -1: thread not attached, spans are no-ops
  int lane = 0;
};

/// Per-rank, per-lane span recorder.
///
/// Every track owns a ring buffer of TraceEvents, preallocated when a thread
/// first attaches to the track; recording a span is a couple of stores into
/// that ring with no locks and no allocation. The single-writer discipline
/// mirrors comm::RankTraffic: a track is only ever written by the one thread
/// currently attached to it (the rank's thread for lane 0, the OS thread
/// executing that logical CPE for lanes >= 1), so readers must wait for the
/// writers to join — exporters run after World::run() returns.
///
/// When a ring fills up it wraps and overwrites the oldest events (Chrome
/// trace format does not require chronological order); `Track::recorded`
/// keeps the true total so exporters can report how many were dropped.
class Tracer {
 public:
  static constexpr int kMasterLane = 0;

  struct Track {
    int rank = 0;
    int lane = 0;
    std::vector<TraceEvent> ring;   ///< fixed capacity, set at attach
    std::size_t recorded = 0;       ///< total events; > ring.size() => wrapped

    std::size_t live() const { return std::min(recorded, ring.size()); }
    std::size_t dropped() const {
      return recorded > ring.size() ? recorded - ring.size() : 0;
    }
  };

  Tracer(int nranks, int lanes_per_rank, std::size_t events_per_track);

  int nranks() const { return nranks_; }
  int lanes_per_rank() const { return lanes_; }

  /// Bind the calling thread to (rank, lane), allocating the track's ring on
  /// first attach (the only locked path; recording itself is lock-free).
  /// Out-of-range ids detach the thread instead, so spans become no-ops
  /// rather than misattributed.
  void attach_calling_thread(int rank, int lane = kMasterLane);

  static void detach_calling_thread();
  static TrackId calling_thread_track();
  static Tracer* calling_thread_tracer();

  /// The construction instant all span timestamps are relative to. The comm
  /// flight recorder shares it so comm events line up with phase spans.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Nanoseconds since this tracer's construction.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Append to the calling thread's track. Callers must be attached.
  void record(const TrackId& id, const TraceEvent& ev);

  // --- read side (after writers joined) ---
  int num_tracks() const { return static_cast<int>(tracks_.size()); }
  /// nullptr if no thread ever attached to this slot.
  const Track* track(int i) const { return tracks_[static_cast<std::size_t>(i)].get(); }
  std::size_t total_dropped() const;

 private:
  int nranks_;
  int lanes_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex attach_mutex_;
  std::vector<std::unique_ptr<Track>> tracks_;
};

/// RAII scoped span: records [construction, destruction) onto the calling
/// thread's track. A no-op (two branch instructions) when the thread is not
/// attached to a tracer, so library code can trace unconditionally.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : tracer_(Tracer::calling_thread_tracer()) {
    if (tracer_ != nullptr) {
      track_ = Tracer::calling_thread_track();
      ev_.name = name;
      ev_.t0_ns = tracer_->now_ns();
    }
  }

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      ev_.t1_ns = tracer_->now_ns();
      tracer_->record(track_, ev_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach DMA traffic to the span (shown as args in the trace viewer).
  void set_dma(std::uint64_t ops, std::uint64_t bytes) {
    ev_.dma_ops = ops;
    ev_.dma_bytes = bytes;
  }

 private:
  Tracer* tracer_;
  TrackId track_;
  TraceEvent ev_;
};

#define MMD_TRACE_CONCAT_IMPL(a, b) a##b
#define MMD_TRACE_CONCAT(a, b) MMD_TRACE_CONCAT_IMPL(a, b)

/// Scoped phase span, e.g. MMD_TRACE_SCOPE("md.force"). See
/// docs/OBSERVABILITY.md for the span naming conventions.
#define MMD_TRACE_SCOPE(name) \
  ::mmd::telemetry::ScopedSpan MMD_TRACE_CONCAT(mmd_trace_span_, __LINE__)(name)

}  // namespace mmd::telemetry
