#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "telemetry/comm_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mmd::telemetry {

/// One run's worth of telemetry: a phase tracer plus a metrics registry,
/// sized for a fixed number of ranks.
///
/// The first Session constructed installs itself as the process-wide
/// *current* session (RAII: the destructor uninstalls it). Instrumented code
/// all over the stack — comm::World, the MD/KMC engines, sw::SlaveCorePool —
/// reaches the current session through `Session::current()` and the free
/// helpers below, so enabling telemetry for any driver is one line:
///
///   telemetry::Session session(nranks);
///   ... run ...
///   telemetry::write_chrome_trace_file("trace.json", session.tracer());
///
/// When no session is installed every instrumentation point is a cheap no-op.
///
/// Service mode runs many independent simulations concurrently in one
/// process; a single process-wide session would mix their metrics (and race:
/// two jobs' rank-0 threads would share one single-writer slot). ThreadScope
/// overrides `current()` for one thread, and comm::World::run propagates the
/// submitting thread's current session to the rank threads it spawns — so
/// each campaign lane sees only its own session while the global fallback
/// keeps the one-session drivers working unchanged.
class Session {
 public:
  struct Options {
    /// Track lanes per rank: master core + the 64 CPEs of one core group.
    int lanes_per_rank = 65;
    /// Ring capacity per track; oldest spans are overwritten on overflow.
    std::size_t events_per_track = 1 << 14;
    /// Compete for the process-wide `current()` slot. Campaign lanes pass
    /// false: their sessions are reachable only through a ThreadScope, so a
    /// job's telemetry can never leak to unrelated threads.
    bool install_global = true;
    /// Comm flight-recorder ring capacity per rank; 0 disables recording.
    /// When nonzero, comm::World::run records every send/recv/wait into the
    /// session's CommRecorder (see comm_recorder.h).
    std::size_t comm_events_per_rank = 0;
  };

  explicit Session(int nranks);
  Session(int nranks, Options opt);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// The comm flight recorder, or nullptr when Options::comm_events_per_rank
  /// was 0. Shares the tracer's epoch so event and span timestamps align.
  CommRecorder* comm_recorder() { return comm_recorder_.get(); }
  const CommRecorder* comm_recorder() const { return comm_recorder_.get(); }

  /// Whether this session won the race to become the process-wide one (a
  /// nested session stays usable through explicit references but is not
  /// reachable via current()).
  bool installed() const { return installed_; }

  /// The calling thread's session: its ThreadScope override when one is
  /// active, otherwise the process-wide session (nullptr when neither).
  static Session* current();

  /// RAII thread-local override of current() for the calling thread. Nests;
  /// restores the previous override on destruction. A null session is
  /// allowed and means "no telemetry on this thread" regardless of the
  /// global.
  class ThreadScope {
   public:
    explicit ThreadScope(Session* session);
    ~ThreadScope();

    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    Session* prev_;
    bool prev_active_;
  };

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::unique_ptr<CommRecorder> comm_recorder_;
  bool installed_;
};

/// Rank of the calling thread if it is attached to the current session's
/// tracer on the master lane; -1 otherwise. Metrics slots are single-writer,
/// so only master-lane threads may write them — CPE worker threads must fold
/// their contributions through the owning rank thread (see SlaveCorePool).
int attached_metrics_rank();

/// Hot-path helpers against the current session; no-ops when no session is
/// installed or the calling thread is not attached at the master lane.
void count(std::string_view name, std::uint64_t v = 1);
void set_gauge(std::string_view name, double v);
void observe(std::string_view name, double x);

}  // namespace mmd::telemetry
