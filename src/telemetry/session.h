#pragma once

#include <cstdint>
#include <string_view>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mmd::telemetry {

/// One run's worth of telemetry: a phase tracer plus a metrics registry,
/// sized for a fixed number of ranks.
///
/// The first Session constructed installs itself as the process-wide
/// *current* session (RAII: the destructor uninstalls it). Instrumented code
/// all over the stack — comm::World, the MD/KMC engines, sw::SlaveCorePool —
/// reaches the current session through `Session::current()` and the free
/// helpers below, so enabling telemetry for any driver is one line:
///
///   telemetry::Session session(nranks);
///   ... run ...
///   telemetry::write_chrome_trace_file("trace.json", session.tracer());
///
/// When no session is installed every instrumentation point is a cheap no-op.
class Session {
 public:
  struct Options {
    /// Track lanes per rank: master core + the 64 CPEs of one core group.
    int lanes_per_rank = 65;
    /// Ring capacity per track; oldest spans are overwritten on overflow.
    std::size_t events_per_track = 1 << 14;
  };

  explicit Session(int nranks);
  Session(int nranks, Options opt);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Whether this session won the race to become the process-wide one (a
  /// nested session stays usable through explicit references but is not
  /// reachable via current()).
  bool installed() const { return installed_; }

  static Session* current();

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  bool installed_;
};

/// Rank of the calling thread if it is attached to the current session's
/// tracer on the master lane; -1 otherwise. Metrics slots are single-writer,
/// so only master-lane threads may write them — CPE worker threads must fold
/// their contributions through the owning rank thread (see SlaveCorePool).
int attached_metrics_rank();

/// Hot-path helpers against the current session; no-ops when no session is
/// installed or the calling thread is not attached at the master lane.
void count(std::string_view name, std::uint64_t v = 1);
void set_gauge(std::string_view name, double v);
void observe(std::string_view name, double x);

}  // namespace mmd::telemetry
