#include "telemetry/registry.h"

#include <algorithm>
#include <stdexcept>

namespace mmd::telemetry {

MetricsRegistry::MetricsRegistry(int nranks)
    : slots_(static_cast<std::size_t>(nranks)) {
  if (nranks <= 0) {
    throw std::invalid_argument("MetricsRegistry requires at least one rank");
  }
}

void MetricsRegistry::add(int rank, std::string_view name, std::uint64_t v) {
  if (rank < 0 || rank >= nranks()) return;
  auto& counters = slots_[static_cast<std::size_t>(rank)].counters;
  const auto it = counters.find(name);
  if (it != counters.end()) {
    it->second += v;
  } else {
    counters.emplace(std::string(name), v);
  }
}

void MetricsRegistry::set_gauge(int rank, std::string_view name, double v) {
  if (rank < 0 || rank >= nranks()) return;
  auto& gauges = slots_[static_cast<std::size_t>(rank)].gauges;
  const auto it = gauges.find(name);
  if (it != gauges.end()) {
    it->second = v;
  } else {
    gauges.emplace(std::string(name), v);
  }
}

void MetricsRegistry::observe(int rank, std::string_view name, double x) {
  if (rank < 0 || rank >= nranks()) return;
  auto& dists = slots_[static_cast<std::size_t>(rank)].dists;
  auto it = dists.find(name);
  if (it == dists.end()) {
    it = dists.emplace(std::string(name), util::RunningStats{}).first;
  }
  it->second.add(x);
}

MetricsRegistry::Aggregate MetricsRegistry::aggregate() const {
  Aggregate agg;
  for (const RankSlot& slot : slots_) {
    for (const auto& [name, v] : slot.counters) agg.counters[name] += v;
    for (const auto& [name, v] : slot.gauges) {
      const auto it = agg.gauge_max.find(name);
      if (it == agg.gauge_max.end()) {
        agg.gauge_max.emplace(name, v);
      } else {
        it->second = std::max(it->second, v);
      }
      agg.gauge_sum[name] += v;
    }
    for (const auto& [name, s] : slot.dists) agg.dists[name].merge(s);
  }
  return agg;
}

void MetricsRegistry::reset() {
  for (RankSlot& slot : slots_) slot = RankSlot{};
}

MetricsRegistry::Aggregate MetricsRegistry::snapshot_and_reset() {
  Aggregate agg = aggregate();
  reset();
  return agg;
}

void MetricsRegistry::Aggregate::merge(const Aggregate& o) {
  for (const auto& [name, v] : o.counters) counters[name] += v;
  for (const auto& [name, v] : o.gauge_max) {
    const auto it = gauge_max.find(name);
    if (it == gauge_max.end()) {
      gauge_max.emplace(name, v);
    } else {
      it->second = std::max(it->second, v);
    }
  }
  for (const auto& [name, v] : o.gauge_sum) gauge_sum[name] += v;
  for (const auto& [name, s] : o.dists) dists[name].merge(s);
}

std::uint64_t MetricsRegistry::Aggregate::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

double MetricsRegistry::Aggregate::gauge_maximum(std::string_view name) const {
  const auto it = gauge_max.find(std::string(name));
  return it == gauge_max.end() ? 0.0 : it->second;
}

}  // namespace mmd::telemetry
