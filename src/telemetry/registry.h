#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace mmd::telemetry {

/// Named counters, gauges, and RunningStats-backed distributions, one slot
/// per rank.
///
/// Concurrency contract (same single-writer discipline as comm::RankTraffic):
/// a rank's slot is only ever written by the thread running that rank, so the
/// hot path takes no locks; `aggregate()` and the per-rank read accessors are
/// only valid after the writer threads joined (e.g. after World::run()
/// returns). Out-of-range ranks are dropped silently so instrumented library
/// code never has to check whether telemetry is sized for the current world.
class MetricsRegistry {
 public:
  struct RankSlot {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, util::RunningStats, std::less<>> dists;
  };

  /// Cross-rank roll-up: counters sum, gauges keep both the max over ranks
  /// (critical path, e.g. compute seconds) and the sum (capacity, e.g.
  /// modeled DMA time), distributions merge exactly (Chan's parallel
  /// variance update in RunningStats::merge).
  struct Aggregate {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauge_max;
    std::map<std::string, double> gauge_sum;
    std::map<std::string, util::RunningStats> dists;

    std::uint64_t counter(std::string_view name) const;
    double gauge_maximum(std::string_view name) const;

    /// Fold another aggregate in with the same cross-rank semantics:
    /// counters and gauge sums add, gauge maxima take the max, distributions
    /// merge exactly. This is the fleet-rollup primitive of the campaign
    /// runner: per-job aggregates merge into one fleet-wide view.
    void merge(const Aggregate& o);
  };

  explicit MetricsRegistry(int nranks);

  int nranks() const { return static_cast<int>(slots_.size()); }

  // --- write side (owning rank thread only) ---
  void add(int rank, std::string_view name, std::uint64_t v = 1);
  void set_gauge(int rank, std::string_view name, double v);
  void observe(int rank, std::string_view name, double x);

  // --- read side (after writers joined) ---
  const RankSlot& rank(int r) const { return slots_[static_cast<std::size_t>(r)]; }
  Aggregate aggregate() const;
  void reset();

  /// Aggregate, then clear every slot — the handoff that lets one registry
  /// serve many jobs back to back (campaign service mode) with no cross-job
  /// bleed: counters, gauges, and distributions of a finished job cannot leak
  /// into the next one's aggregate. Same read-side contract as aggregate():
  /// call only after the writer threads joined.
  Aggregate snapshot_and_reset();

 private:
  std::vector<RankSlot> slots_;
};

}  // namespace mmd::telemetry
