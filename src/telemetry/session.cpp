#include "telemetry/session.h"

#include <atomic>

namespace mmd::telemetry {

namespace {

std::atomic<Session*> g_current{nullptr};

/// Per-thread override of the current session (Session::ThreadScope). The
/// `active` flag distinguishes "no override" from "overridden to null".
thread_local Session* t_current = nullptr;
thread_local bool t_current_active = false;

}  // namespace

Session::Session(int nranks) : Session(nranks, Options{}) {}

Session::Session(int nranks, Options opt)
    : metrics_(nranks),
      tracer_(nranks, opt.lanes_per_rank, opt.events_per_track) {
  if (opt.comm_events_per_rank > 0) {
    comm_recorder_ = std::make_unique<CommRecorder>(
        nranks, opt.comm_events_per_rank, tracer_.epoch());
  }
  if (opt.install_global) {
    Session* expected = nullptr;
    installed_ = g_current.compare_exchange_strong(expected, this);
  } else {
    installed_ = false;
  }
}

Session::~Session() {
  if (installed_) {
    Session* expected = this;
    g_current.compare_exchange_strong(expected, nullptr);
  }
}

Session* Session::current() {
  if (t_current_active) return t_current;
  return g_current.load(std::memory_order_acquire);
}

Session::ThreadScope::ThreadScope(Session* session)
    : prev_(t_current), prev_active_(t_current_active) {
  t_current = session;
  t_current_active = true;
}

Session::ThreadScope::~ThreadScope() {
  t_current = prev_;
  t_current_active = prev_active_;
}

int attached_metrics_rank() {
  Session* s = Session::current();
  if (s == nullptr) return -1;
  if (Tracer::calling_thread_tracer() != &s->tracer()) return -1;
  const TrackId id = Tracer::calling_thread_track();
  return id.lane == Tracer::kMasterLane ? id.rank : -1;
}

void count(std::string_view name, std::uint64_t v) {
  const int rank = attached_metrics_rank();
  if (rank >= 0) Session::current()->metrics().add(rank, name, v);
}

void set_gauge(std::string_view name, double v) {
  const int rank = attached_metrics_rank();
  if (rank >= 0) Session::current()->metrics().set_gauge(rank, name, v);
}

void observe(std::string_view name, double x) {
  const int rank = attached_metrics_rank();
  if (rank >= 0) Session::current()->metrics().observe(rank, name, x);
}

}  // namespace mmd::telemetry
