#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmd::telemetry {

/// What a recorded communication event was. Values are part of the trace
/// file format (comm_trace.h) — append only, never renumber.
enum class CommOp : std::uint8_t {
  kSend = 0,       ///< blocking or buffered-nonblocking send (outbound)
  kRecv = 1,       ///< blocking receive returned (inbound)
  kIrecvPost = 2,  ///< nonblocking receive posted (no data yet)
  kWait = 3,       ///< wait/wait_all/wait_any completed a posted receive
  kPut = 4,        ///< one-sided put into a remote window (outbound)
  kCollective = 5, ///< barrier / allreduce / window creation
};

inline constexpr std::uint8_t kCommOpCount = 6;

/// One per-message flight-recorder event: timestamps share the owning
/// session's tracer epoch so comm events line up with phase spans in the
/// Chrome trace. 40 bytes, trivially copyable — the ring push is two stores
/// and a bump.
struct CommEvent {
  std::uint64_t t0_ns = 0;  ///< op start (ns since tracer epoch)
  std::uint64_t t1_ns = 0;  ///< op completion (== t0_ns for instant ops)
  std::uint64_t bytes = 0;  ///< payload size (0 for barrier/posts)
  std::int32_t peer = -1;   ///< dst for kSend/kPut, src for kRecv/kWait; -1 wildcard/collective
  std::int32_t tag = -1;    ///< message tag; -1 for collectives
  CommOp op = CommOp::kSend;
};

/// Per-rank comm flight recorder.
///
/// Same single-writer discipline as Tracer / comm::RankTraffic: a rank's log
/// is only ever appended by the thread running that rank inside World::run,
/// so recording takes no locks and no atomics. Unlike the span tracer's
/// wrapping rings, a full log DROPS NEW events and counts them — a trace
/// used for replay needs a contiguous prefix, not the most recent suffix.
/// Readers (trace writers, exporters) run after the rank threads joined.
class CommRecorder {
 public:
  struct RankLog {
    std::vector<CommEvent> events;   ///< stored prefix, capacity fixed at construction
    std::uint64_t recorded = 0;      ///< total record attempts (stored + dropped)
    std::size_t capacity = 0;

    std::uint64_t dropped() const {
      return recorded > events.size() ? recorded - events.size() : 0;
    }
  };

  CommRecorder(int nranks, std::size_t events_per_rank,
               std::chrono::steady_clock::time_point epoch);

  int nranks() const { return static_cast<int>(logs_.size()); }
  std::size_t events_per_rank() const { return capacity_; }

  /// Nanoseconds since the shared epoch (the session tracer's construction).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Append onto `rank`'s log (owning rank thread only). Out-of-range ranks
  /// are dropped silently, mirroring MetricsRegistry.
  void record(int rank, const CommEvent& ev) {
    if (rank < 0 || rank >= nranks()) return;
    RankLog& log = logs_[static_cast<std::size_t>(rank)];
    if (log.events.size() < log.capacity) log.events.push_back(ev);
    ++log.recorded;
  }

  // --- read side (after writers joined) ---
  const RankLog& rank_log(int rank) const {
    return logs_[static_cast<std::size_t>(rank)];
  }
  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;

  /// Clear every log (keeps ring capacity). Campaign lanes call this between
  /// jobs so one job's messages never leak into the next job's trace; same
  /// read-side contract as the accessors — only after the writers joined.
  void reset();

 private:
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<RankLog> logs_;
};

}  // namespace mmd::telemetry
