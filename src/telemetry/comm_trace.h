#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/comm_recorder.h"

namespace mmd::telemetry {

/// Schema-versioned binary container for comm flight-recorder traces
/// (see docs/OBSERVABILITY.md "Comm trace format"). Layout, all
/// little-endian via io::ByteWriter:
///
///   magic   "MMDT" (4 bytes)
///   u32     version (kCommTraceVersion)
///   u32     nranks
///   u32     meta pair count, then per pair: u32 len + bytes (key),
///           u32 len + bytes (value) — run parameters the replay needs
///           (steps, atoms, ranks, box, scenario label, ...)
///   per rank:
///     u64   recorded  (total record attempts, >= stored; drop accounting)
///     u64   stored    (events that follow)
///     per event: u64 t0_ns, u64 t1_ns, u64 bytes, i32 peer, i32 tag, u8 op
///
/// Version bumps only for layout changes; new CommOp values append without a
/// bump (readers reject out-of-range ops, so old readers fail loudly).
inline constexpr std::uint32_t kCommTraceVersion = 1;

/// In-memory form of a trace file: what the writer consumes and the parser
/// returns. Round-trips bit-exactly through serialize/parse.
struct CommTraceData {
  struct RankEvents {
    std::uint64_t recorded = 0;  ///< attempts; recorded - events.size() dropped
    std::vector<CommEvent> events;
  };

  std::uint32_t version = kCommTraceVersion;
  std::map<std::string, std::string> meta;
  std::vector<RankEvents> ranks;

  std::uint64_t total_dropped() const;
  std::uint64_t total_stored() const;

  /// meta[key] parsed as a nonnegative integer, or `fallback` when the key is
  /// absent/malformed. The replay uses this for steps/atom counts.
  std::uint64_t meta_u64(const std::string& key, std::uint64_t fallback) const;
};

/// Snapshot a recorder's logs (writers must have joined — same read-side
/// contract as CommRecorder's accessors).
CommTraceData trace_from_recorder(const CommRecorder& rec,
                                  std::map<std::string, std::string> meta);

/// Serialize to the binary format above.
std::string serialize_comm_trace(const CommTraceData& trace);

/// Parse a serialized trace. Throws std::runtime_error on bad magic,
/// unsupported version, out-of-range op, or truncation.
CommTraceData parse_comm_trace(std::string_view bytes);

/// Write `trace` to `path`. Returns false (with the reason in *error when
/// non-null) instead of throwing on I/O failure, mirroring FigureJson.
bool write_comm_trace_file(const std::string& path, const CommTraceData& trace,
                           std::string* error = nullptr);

/// Read and parse a trace file. Throws std::runtime_error on I/O or format
/// errors.
CommTraceData read_comm_trace_file(const std::string& path);

}  // namespace mmd::telemetry
