#pragma once

// Minimal JSON reader for the machine-readable artifacts this repo emits
// (BENCH_*.json, metrics.json, figure dumps). Strict enough for round-trip
// use by tools/mmd_perf_diff and the tests; not a general-purpose library —
// numbers are always doubles, objects preserve insertion order so diffs stay
// stable against the writers' ordering.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mmd::util::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object (the writers emit deterministic key order and the
/// readers want to report in the same order).
using Object = std::vector<std::pair<std::string, Value>>;

/// Parse/shape violations surface as this exception (what + byte offset).
class Error : public std::exception {
 public:
  Error(std::string what, std::size_t offset = 0);
  const char* what() const noexcept override { return what_.c_str(); }
  std::size_t offset() const { return offset_; }

 private:
  std::string what_;
  std::size_t offset_;
};

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Typed accessors; throw json::Error on type mismatch.
  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const Array& array() const;
  const Object& object() const;

  /// Object member lookup; nullptr when absent or when this is not an object.
  const Value* find(std::string_view key) const;
  /// Object member lookup; throws json::Error when absent.
  const Value& at(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parse a complete JSON document (trailing garbage is an error).
Value parse(std::string_view text);

/// Parse the file's whole contents; throws json::Error (unreadable file or
/// malformed content, the message names the path).
Value parse_file(const std::string& path);

}  // namespace mmd::util::json
