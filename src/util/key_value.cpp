#include "util/key_value.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mmd::util {

namespace {

std::string trim(const std::string& s) {
  auto b = s.begin();
  auto e = s.end();
  while (b != e && std::isspace(static_cast<unsigned char>(*b))) ++b;
  while (e != b && std::isspace(static_cast<unsigned char>(*(e - 1)))) --e;
  return {b, e};
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

KeyValueConfig KeyValueConfig::parse(const std::string& text,
                                     const std::string& source) {
  KeyValueConfig cfg;
  cfg.source_ = source;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments (# or ;) outside of values' leading text.
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("KeyValueConfig: missing '=' on line " +
                                  std::to_string(lineno));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("KeyValueConfig: empty key on line " +
                                  std::to_string(lineno));
    }
    if (cfg.values_.count(key) > 0) {
      throw std::invalid_argument("KeyValueConfig: duplicate key '" + key +
                                  "' on line " + std::to_string(lineno));
    }
    cfg.values_[key] = value;
    cfg.lines_[key] = lineno;
  }
  return cfg;
}

KeyValueConfig KeyValueConfig::parse_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("KeyValueConfig: cannot read " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str(), path);
}

void KeyValueConfig::set(const std::string& key, const std::string& value,
                         int line) {
  values_[key] = value;
  lines_[key] = line;
}

int KeyValueConfig::line_of(const std::string& key) const {
  const auto it = lines_.find(key);
  return it == lines_.end() ? 0 : it->second;
}

std::optional<std::string> KeyValueConfig::get(const std::string& key) const {
  mark_known(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string KeyValueConfig::get_string(const std::string& key,
                                       const std::string& dflt) const {
  return get(key).value_or(dflt);
}

double KeyValueConfig::get_double(const std::string& key, double dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  try {
    std::size_t pos = 0;
    const double d = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return d;
  } catch (const std::exception&) {
    throw std::invalid_argument("KeyValueConfig: '" + key + "' = '" + *v +
                                "' is not a number");
  }
}

std::int64_t KeyValueConfig::get_int(const std::string& key,
                                     std::int64_t dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  try {
    std::size_t pos = 0;
    const long long i = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return i;
  } catch (const std::exception&) {
    throw std::invalid_argument("KeyValueConfig: '" + key + "' = '" + *v +
                                "' is not an integer");
  }
}

bool KeyValueConfig::get_bool(const std::string& key, bool dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  const std::string s = lower(*v);
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  throw std::invalid_argument("KeyValueConfig: '" + key + "' = '" + *v +
                              "' is not a boolean");
}

void KeyValueConfig::mark_known(const std::string& key) const {
  touched_[key] = true;
}

std::vector<std::string> KeyValueConfig::unknown_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (touched_.count(k) == 0) out.push_back(k);
  }
  return out;
}

void KeyValueConfig::reject_unknown_keys() const {
  const auto unknown = unknown_keys();
  if (unknown.empty()) return;
  std::ostringstream os;
  for (const auto& k : unknown) {
    if (os.tellp() > 0) os << '\n';
    os << source_;
    if (const int line = line_of(k); line > 0) os << ':' << line;
    os << ": unknown key '" << k << "'";
  }
  os << "\n(a typo here would silently fall through to the default; "
        "see --print-defaults for the recognized keys)";
  throw std::invalid_argument(os.str());
}

}  // namespace mmd::util
