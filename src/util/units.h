#pragma once

namespace mmd::util {

/// Metal units, following the LAMMPS "metal" convention:
///   length      Angstrom (A)
///   time        picosecond (ps)
///   energy      electron-volt (eV)
///   mass        atomic mass unit (amu)
///   temperature Kelvin (K)
///   force       eV/A
/// Velocities are A/ps; accelerations A/ps^2.
namespace units {

/// Boltzmann constant [eV/K].
inline constexpr double kBoltzmann = 8.617333262e-5;

/// Conversion from force/mass to acceleration:
/// 1 (eV/A)/amu = kForceToAccel A/ps^2.
inline constexpr double kForceToAccel = 9648.53329;

/// Equivalently, (1/2) m v^2 in eV requires v^2 [A^2/ps^2] * m [amu] *
/// kVel2ToEnergy.
inline constexpr double kVel2ToEnergy = 1.0 / kForceToAccel;

/// One femtosecond in ps — the paper's MD time step.
inline constexpr double kFemtosecond = 1.0e-3;

/// One picosecond expressed in seconds (for KMC real-time bookkeeping).
inline constexpr double kPicosecondInSeconds = 1.0e-12;

}  // namespace units

/// Material constants for BCC iron as simulated by the paper.
namespace iron {

/// Lattice constant [A] (paper §3: "The lattice constant is set to 2.855").
inline constexpr double kLatticeConstant = 2.855;

/// Atomic mass of Fe [amu].
inline constexpr double kMass = 55.845;

/// Vacancy formation energy [eV] (used in t_real = t_thr * C_MC / C_real).
/// The paper does not state E_v+ but reports t_real = 19.2 days from
/// t_thr = 2e-4, C_MC = 2e-6, T = 600 K; inverting the formula gives
/// E_v+ = 1.86 eV, within the literature range for alpha-Fe.
inline constexpr double kVacancyFormationEnergy = 1.86;

/// Vacancy migration barrier [eV] for nearest-neighbor hops in alpha-Fe.
inline constexpr double kVacancyMigrationBarrier = 0.65;

/// KMC attempt frequency (pre-exponential factor) [1/s].
inline constexpr double kAttemptFrequency = 1.0e13;

}  // namespace iron

}  // namespace mmd::util
