#include "util/vec3.h"

#include <ostream>

namespace mmd::util {

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace mmd::util
