#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmd::util {

/// Minimal key=value configuration format used by the CLI driver:
///
///   # comment
///   box = 12            ; trailing comments too
///   temperature = 600.0
///   kmc.strategy = on-demand
///
/// Keys are dot-namespaced strings; values are parsed on access with typed
/// getters that validate and report precise errors. Unknown keys can be
/// enumerated so drivers can reject typos instead of ignoring them.
class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  /// Parse from text; throws std::invalid_argument with a line number on
  /// malformed input (missing '=', empty key, duplicate key).
  static KeyValueConfig parse(const std::string& text);

  /// Parse a file; throws std::runtime_error if unreadable.
  static KeyValueConfig parse_file(const std::string& path);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::size_t size() const { return values_.size(); }

  /// Raw string access.
  std::optional<std::string> get(const std::string& key) const;

  // Typed getters with defaults; throw std::invalid_argument on a value
  // that does not parse as the requested type.
  std::string get_string(const std::string& key, const std::string& dflt) const;
  double get_double(const std::string& key, double dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// Record that a key is recognized; see unknown_keys().
  void mark_known(const std::string& key) const;

  /// Keys present in the file that no getter or mark_known() touched —
  /// drivers should treat a non-empty result as a configuration error.
  std::vector<std::string> unknown_keys() const;

  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace mmd::util
