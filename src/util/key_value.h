#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmd::util {

/// Minimal key=value configuration format used by the CLI drivers:
///
///   # comment
///   box = 12            ; trailing comments too
///   temperature = 600.0
///   kmc.strategy = on-demand
///
/// Keys are dot-namespaced strings; values are parsed on access with typed
/// getters that validate and report precise errors. Every key remembers the
/// source file and line it came from, so drivers can reject typos with a
/// message that points at the offending line instead of silently falling
/// through to defaults (see reject_unknown_keys()).
class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  /// Parse from text; throws std::invalid_argument with a line number on
  /// malformed input (missing '=', empty key, duplicate key). `source` names
  /// the origin in diagnostics (a file path, "<string>", ...).
  static KeyValueConfig parse(const std::string& text,
                              const std::string& source = "<config>");

  /// Parse a file; throws std::runtime_error if unreadable. The path becomes
  /// the diagnostic source name.
  static KeyValueConfig parse_file(const std::string& path);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::size_t size() const { return values_.size(); }

  /// Raw string access.
  std::optional<std::string> get(const std::string& key) const;

  // Typed getters with defaults; throw std::invalid_argument on a value
  // that does not parse as the requested type.
  std::string get_string(const std::string& key, const std::string& dflt) const;
  double get_double(const std::string& key, double dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// Insert or overwrite a key programmatically (campaign matrix expansion
  /// derives per-job configs from a base config this way). `line` attributes
  /// the value to a source line for diagnostics; 0 means "not from a file".
  void set(const std::string& key, const std::string& value, int line = 0);

  /// Diagnostic source name ("<config>" unless parsed from a file or
  /// overridden).
  const std::string& source() const { return source_; }
  void set_source(std::string source) { source_ = std::move(source); }

  /// Line the key was defined on (0 when unknown / programmatic).
  int line_of(const std::string& key) const;

  /// Record that a key is recognized; see unknown_keys().
  void mark_known(const std::string& key) const;

  /// Keys present in the file that no getter or mark_known() touched —
  /// drivers should treat a non-empty result as a configuration error.
  std::vector<std::string> unknown_keys() const;

  /// Loud form of unknown_keys(): throws std::invalid_argument naming every
  /// untouched key with its source file and line, e.g.
  ///
  ///   config.mmd:7: unknown key 'pka.enerty_ev' (did you mean a key the
  ///   driver recognizes? run with --print-defaults for the list)
  ///
  /// Call after every recognized key has been read or marked known.
  void reject_unknown_keys() const;

  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, int> lines_;
  std::string source_ = "<config>";
  mutable std::map<std::string, bool> touched_;
};

}  // namespace mmd::util
