#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace mmd::util {

/// Online mean/variance accumulator (Welford), with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    if (n_ == 0 || x < min_) min_ = x;
    if (n_ == 0 || x > max_) max_ = x;
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }

  /// Fold another accumulator in (Chan's parallel update), as if every sample
  /// of `o` had been add()ed here. Used for cross-rank aggregation.
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double d = o.mean_ - mean_;
    m2_ += o.m2_ + d * d * na * nb / (na + nb);
    mean_ += d * nb / (na + nb);
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Integer-keyed histogram (e.g. vacancy-cluster size distribution).
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t count = 1) { bins_[key] += count; }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [k, v] : bins_) t += v;
    return t;
  }

  /// Sum of key*count — e.g. total vacancies across all clusters.
  std::int64_t weighted_total() const {
    std::int64_t t = 0;
    for (const auto& [k, v] : bins_) t += k * static_cast<std::int64_t>(v);
    return t;
  }

  double mean_key() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(weighted_total()) / static_cast<double>(t);
  }

  std::int64_t max_key() const { return bins_.empty() ? 0 : bins_.rbegin()->first; }

  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
};

/// Streaming estimate of a single quantile in O(1) memory — the P² algorithm
/// of Jain & Chlamtac (CACM 1985): five markers track the quantile and its
/// neighborhood, adjusted with a piecewise-parabolic fit as samples arrive.
/// Exact for the first five observations; afterwards the estimate converges
/// to the true quantile without storing the samples, which is what lets span
/// distributions report tails (p95/p99) from a fixed-size accumulator.
class P2Quantile {
 public:
  /// `p` in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double p);

  void add(double x);

  /// Current estimate; exact while count() <= 5, NaN-free 0.0 when empty.
  double value() const;

  std::size_t count() const { return n_; }
  double probability() const { return p_; }

 private:
  double p_;
  std::size_t n_ = 0;
  std::array<double, 5> q_{};    // marker heights
  std::array<double, 5> pos_{};  // actual marker positions (1-based)
  std::array<double, 5> want_{}; // desired marker positions
};

/// RunningStats extended with P²-estimated tail quantiles (p50/p95/p99), so
/// distribution summaries can report tails instead of just mean/min/max.
/// Composition, not inheritance: RunningStats stays mergeable and POD-cheap
/// for the hot metrics path; the tails only exist where someone asked for
/// them (the telemetry analyzer, the bench harness).
class QuantileStats {
 public:
  void add(double x) {
    base_.add(x);
    p50_.add(x);
    p95_.add(x);
    p99_.add(x);
  }

  const RunningStats& base() const { return base_; }
  std::size_t count() const { return base_.count(); }
  double mean() const { return base_.mean(); }
  double variance() const { return base_.variance(); }
  double min() const { return base_.min(); }
  double max() const { return base_.max(); }

  double p50() const { return p50_.value(); }
  double p95() const { return p95_.value(); }
  double p99() const { return p99_.value(); }

 private:
  RunningStats base_;
  P2Quantile p50_{0.5};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

/// Geometric mean of a series of ratios (used for the "improved by X% on
/// average in geometric mean" comparisons in the paper's evaluation).
double geometric_mean(const std::vector<double>& xs);

/// Median of a series (copies and partially sorts; even length averages the
/// middle pair). Returns 0.0 for an empty series.
double median(std::vector<double> xs);

/// Median absolute deviation around the median — the robust spread the bench
/// harness records so perf diffs can derive a noise threshold. Consistent
/// sigma estimate for normal data is 1.4826 * MAD.
double median_abs_deviation(const std::vector<double>& xs);

}  // namespace mmd::util
