#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace mmd::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
/// check guarding every checkpoint section so corruption is detected at
/// load time instead of silently restoring damaged state.
inline std::uint32_t crc32(std::string_view data, std::uint32_t crc = 0) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace mmd::util
