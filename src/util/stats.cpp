#include "util/stats.h"

#include <cmath>

namespace mmd::util {

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace mmd::util
