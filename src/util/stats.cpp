#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmd::util {

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double median_abs_deviation(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::abs(x - m));
  return median(std::move(dev));
}

P2Quantile::P2Quantile(double p) : p_(p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("P2Quantile: p must be in (0, 1)");
  }
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    q_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (int i = 0; i < 5; ++i) pos_[static_cast<std::size_t>(i)] = i + 1;
      want_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
    }
    return;
  }

  // Locate the cell containing x, extending the extreme markers if needed.
  std::size_t k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x < q_[1]) {
    k = 0;
  } else if (x < q_[2]) {
    k = 1;
  } else if (x < q_[3]) {
    k = 2;
  } else if (x <= q_[4]) {
    k = 3;
  } else {
    q_[4] = x;
    k = 3;
  }
  ++n_;
  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;

  // Desired positions advance by {0, p/2, p, (1+p)/2, 1} per observation.
  want_[1] += p_ / 2.0;
  want_[2] += p_;
  want_[3] += (1.0 + p_) / 2.0;
  want_[4] += 1.0;

  // Nudge the three middle markers toward their desired positions, with the
  // piecewise-parabolic (P²) height update, falling back to linear when the
  // parabola would break marker monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = want_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      const double np = pos_[i + 1];
      const double nm = pos_[i - 1];
      const double ni = pos_[i];
      const double qp = q_[i + 1];
      const double qm = q_[i - 1];
      const double qi = q_[i];
      double cand = qi + s / (np - nm) *
                             ((ni - nm + s) * (qp - qi) / (np - ni) +
                              (np - ni - s) * (qi - qm) / (ni - nm));
      if (!(qm < cand && cand < qp)) {
        // Linear update toward the neighbor in the step direction.
        const std::size_t j = s > 0.0 ? i + 1 : i - 1;
        cand = qi + s * (q_[j] - qi) / (pos_[j] - ni);
      }
      q_[i] = cand;
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ >= 5) return q_[2];
  // Exact small-sample quantile (nearest rank) over the buffered values.
  std::array<double, 5> buf = q_;
  std::sort(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n_));
  const double rank = p_ * static_cast<double>(n_);
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  if (idx >= n_) idx = n_ - 1;
  return buf[idx];
}

}  // namespace mmd::util
