#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace mmd::util {

/// Small fixed 3-vector of doubles used for positions, velocities, and
/// forces. All operations are constexpr-friendly and allocation-free.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }
};

std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// Squared distance between two points.
constexpr double distance2(const Vec3& a, const Vec3& b) { return (a - b).norm2(); }

/// Euclidean distance between two points.
inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

}  // namespace mmd::util
