#pragma once

#include <chrono>

namespace mmd::util {

/// Wall-clock stopwatch. `elapsed()` returns seconds since construction or
/// the last `reset()`.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time across multiple start/stop intervals; used to split
/// computation time from communication time in the scaling benches.
///
/// Interval discipline: `start()` while an interval is already open closes it
/// first (the open time is accumulated, never discarded); `stop()` without a
/// matching `start()` is a documented no-op.
class AccumTimer {
 public:
  void start() {
    if (running_) total_ += t_.elapsed();
    t_.reset();
    running_ = true;
  }

  void stop() {
    if (running_) {
      total_ += t_.elapsed();
      running_ = false;
    }
  }

  double total() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace mmd::util
