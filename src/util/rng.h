#pragma once

#include <cmath>
#include <cstdint>

#include "util/vec3.h"

namespace mmd::util {

/// Deterministic, splittable pseudo-random generator (SplitMix64 core).
///
/// Every stochastic component of the simulation draws from an Rng seeded from
/// the run seed plus a stable stream id (rank, sector, atom id, ...), so runs
/// are bit-reproducible regardless of thread scheduling — a requirement for
/// the serial-vs-parallel and traditional-vs-on-demand equivalence tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Derive an independent stream deterministically from this generator's
  /// seed and a stream id (does not advance this generator).
  Rng split(std::uint64_t stream) const {
    return Rng(mix(state_ + 0x632be59bd9b4e019ull * (stream + 1)));
  }

  /// Raw generator state, for checkpointing. A resumed run must restore the
  /// state (`set_state`), not re-seed: reconstructing from the seed silently
  /// rewinds every draw made before the checkpoint.
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t s) { state_ = s; }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    return mix(state_);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Multiplication-based bounded draw (Lemire); bias is negligible for the
    // n (< 2^32) used in this codebase.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Standard normal via Box-Muller (no cached spare: keeps the generator
  /// stateless beyond `state_` so `split()` streams stay independent).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Isotropic random unit vector.
  Vec3 unit_vector() {
    const double z = uniform(-1.0, 1.0);
    const double phi = uniform(0.0, 6.283185307179586);
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    return {r * std::cos(phi), r * std::sin(phi), z};
  }

 private:
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t state_;
};

}  // namespace mmd::util
