#include "util/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mmd::util::json {

Error::Error(std::string what, std::size_t offset)
    : what_(std::move(what)), offset_(offset) {
  if (offset_ != 0) what_ += " (at byte " + std::to_string(offset_) + ")";
}

bool Value::boolean() const {
  if (!is_bool()) throw Error("json: not a bool");
  return std::get<bool>(v_);
}

double Value::number() const {
  if (!is_number()) throw Error("json: not a number");
  return std::get<double>(v_);
}

const std::string& Value::str() const {
  if (!is_string()) throw Error("json: not a string");
  return std::get<std::string>(v_);
}

const Array& Value::array() const {
  if (!is_array()) throw Error("json: not an array");
  return std::get<Array>(v_);
}

const Object& Value::object() const {
  if (!is_object()) throw Error("json: not an object");
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw Error("json: missing key '" + std::string(key) + "'");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("json: " + why, pos_);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return Value(parse_number());
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          pos_ += 4;
          // The writers only escape control characters, so a non-ASCII code
          // point here is unexpected input; encode it as UTF-8 anyway.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool saw_digit = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      saw_digit = saw_digit ||
                  std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
      ++pos_;
    }
    if (!saw_digit) fail("bad number");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + tok + "'");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("json: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return parse(buf.str());
  } catch (const Error& e) {
    throw Error("'" + path + "': " + e.what());
  }
}

}  // namespace mmd::util::json
