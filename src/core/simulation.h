#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/stage.h"
#include "kmc/cluster_stats.h"
#include "kmc/ghost_strategy.h"
#include "md/config.h"
#include "md/defects.h"

namespace mmd::io {
class FaultInjector;
}
namespace mmd::pot {
struct EamTableSet;
}
namespace mmd::sw {
class SlaveCorePool;
}

namespace mmd::core {

/// Configuration of a coupled MD-KMC run (the paper's end-to-end pipeline:
/// MD simulates cascade-collision defect generation, KMC continues with
/// vacancy clustering and evolution at a much larger temporal scale).
struct SimulationConfig {
  md::MdConfig md;                 ///< box + MD parameters
  int nranks = 1;                  ///< in-process message-passing ranks
  /// Simulated cascade duration [ps]. The paper runs 50 ps; the default here
  /// is a downscaled window that still covers the ballistic phase of the
  /// modest PKA energies used at laptop scale.
  double md_time_ps = 0.08;
  int pka_count = 1;               ///< primary knock-on atoms
  double pka_energy_ev = 60.0;     ///< PKA kinetic energy
  /// Fe-Cu alloy mode: fraction of atoms substituted by Cu (0 = pure Fe).
  /// The solute arrangement survives the MD->KMC handoff, so the KMC stage
  /// evolves vacancies through the same alloy (paper §1/§2.1.2).
  double solute_fraction = 0.0;
  kmc::GhostStrategy kmc_strategy = kmc::GhostStrategy::OnDemandOneSided;
  int kmc_cycles = 50;             ///< KMC cycles after the MD stage
  double kmc_dt_scale = 1.0;
  int kmc_table_segments = 2000;   ///< KMC-side table resolution
  /// Incremental event tables (scenario key `kmc.incremental`): dirty-region
  /// rate rebuilds + O(log N) BKL selection. false selects the full-rescan
  /// oracle; both produce bit-identical event sequences.
  bool kmc_incremental = true;
  /// Per-event stderr logging (scenario key `kmc.debug_events`).
  bool kmc_debug_events = false;

  // --- sampled long-time mode (scenario keys `sample.*`, docs/SAMPLING.md) ---
  /// Off runs every KMC cycle detailed (the default pipeline, byte-identical
  /// to pre-pipeline builds); Scd alternates detailed measurement windows
  /// with stochastic-cluster-dynamics warming strides, trading exactness for
  /// a defect estimate with replicate-derived confidence intervals.
  SamplingPolicy sampling;

  // --- fault-tolerant checkpoint/restart (docs/CHECKPOINTING.md) ---
  /// KMC cycles between checkpoint epochs (0 disables periodic saving).
  int checkpoint_every = 0;
  /// Directory for the per-rank checkpoint files + MANIFEST. Empty disables
  /// checkpointing AND resuming.
  std::string checkpoint_dir;
  /// Resume from the newest committed epoch in checkpoint_dir that every
  /// rank can validate, falling back epoch by epoch on corruption; a fresh
  /// run starts when none is usable.
  bool resume = false;
  /// Committed epochs retained on disk (older ones are pruned at commit).
  int checkpoint_keep = 2;
  /// Test hook: injects write faults into the checkpoint store (not owned).
  io::FaultInjector* fault_injector = nullptr;

  // --- observability ---
  /// Comm flight-recorder trace output (scenario key `comm.trace`). Empty
  /// disables recording. The DRIVER owns this: it sizes the session's
  /// recorder and writes the trace file after the run (mmd_run writes the
  /// path as given; campaigns write it under the job's directory).
  std::string comm_trace;

  // --- execution backend ---
  /// Compute MD forces on the simulated slave-core pipeline instead of the
  /// reference master-core path (identical physics; see md::SlaveForceCompute).
  /// Single-species only: rejected when solute_fraction > 0.
  bool use_slave_force = false;
  /// Allow the AVX2 block kernels in the slave force path (scenario key
  /// `md.simd = auto|off`). True means auto: vectorize when the build and
  /// CPU support it and the sweep's tables are store-resident; false pins
  /// the scalar loops (for A/B runs and debugging).
  bool use_simd_force = true;
  /// Executor for the slave force path. In campaign service mode many
  /// concurrent jobs point at ONE pool and interleave epochs on it; nullptr
  /// makes the simulation own a private pool. Not owned; must outlive run().
  sw::SlaveCorePool* slave_pool = nullptr;
};

/// The immutable table assets a Simulation interpolates from. Building them
/// is the expensive part of construction (EAM spline sampling), and they are
/// read-only for the whole run — so campaign service mode builds each
/// distinct set once (serve::AssetCache) and shares it across every
/// concurrent job with the same potential/resolution.
struct SimulationAssets {
  std::shared_ptr<const pot::EamTableSet> md_tables;
  std::shared_ptr<const pot::EamTableSet> kmc_tables;
};

/// What the coupled run produced.
struct SimulationReport {
  md::DefectSummary md_defects;        ///< census after the MD stage
  kmc::ClusterStats clusters_after_md;  ///< vacancy clustering before KMC
  kmc::ClusterStats clusters_after_kmc; ///< ... and after
  std::uint64_t kmc_events = 0;
  double kmc_mc_time = 0.0;            ///< MC clock reached [s]
  double vacancy_concentration = 0.0;  ///< C_MC
  double real_time_days = 0.0;         ///< t_real via the paper's formula
  double md_seconds = 0.0;             ///< wall time of the MD stage
  double kmc_seconds = 0.0;            ///< wall time of the KMC stage
  double md_compute_seconds = 0.0;     ///< max over ranks
  double md_comm_seconds = 0.0;
  double kmc_compute_seconds = 0.0;
  double kmc_comm_seconds = 0.0;
  /// Global vacancy site ranks after the KMC stage (for visualization and
  /// further analysis).
  std::vector<std::int64_t> final_vacancies;
  /// Whether this run restarted from a checkpoint, and from which KMC cycle.
  /// Deliberately absent from to_string(): a resumed run's report must be
  /// byte-identical to an uninterrupted one (restart equivalence).
  bool resumed = false;
  std::uint64_t resumed_from_cycle = 0;
  /// Sampled-mode estimate (windows == 0 on an all-detailed run, and the
  /// sampled lines are then absent from to_string() — default-mode output
  /// stays byte-identical to pre-pipeline builds).
  SampledStats sampled;
};

std::string to_string(const SimulationReport& r);

/// The public facade: one object owning the substrates, running the coupled
/// MD-KMC damage simulation end to end across the in-process ranks.
///
///   core::SimulationConfig cfg;
///   cfg.md.nx = cfg.md.ny = cfg.md.nz = 12;
///   cfg.nranks = 4;
///   core::Simulation sim(cfg);
///   auto report = sim.run();
class Simulation {
 public:
  explicit Simulation(const SimulationConfig& cfg);

  /// Construct with externally shared assets (campaign service mode). Both
  /// table sets must be non-null and match what build_assets(cfg) would
  /// produce in potential kind and segment counts.
  Simulation(const SimulationConfig& cfg, SimulationAssets assets);

  /// Build the table assets `cfg` implies (what the single-argument
  /// constructor does internally; serve::AssetCache calls this on misses).
  static SimulationAssets build_assets(const SimulationConfig& cfg);

  /// Execute the full pipeline; collective across cfg.nranks ranks.
  SimulationReport run();

  const SimulationConfig& config() const { return cfg_; }
  const pot::EamTableSet& tables() const { return *md_tables_; }

 private:
  SimulationConfig cfg_;
  std::shared_ptr<const pot::EamTableSet> md_tables_;
  std::shared_ptr<const pot::EamTableSet> kmc_tables_;
};

}  // namespace mmd::core
