#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/simulation.h"
#include "core/stage.h"
#include "util/timer.h"

namespace mmd::io {
class CheckpointStore;
}
namespace mmd::kmc {
class ScdStage;
}

namespace mmd::core {

/// An ordered composition of stage propagators — the paper's fixed MD->KMC
/// handoff generalized so new propagators (the SCD warming stage, future
/// OKMC or rate-theory backends) plug in without touching the facade. One
/// Pipeline instance is built per rank inside Simulation::run(); run()
/// advances every stage in order and records per-stage reports plus
/// `stage.<name>.seconds` gauges.
class Pipeline {
 public:
  StagePropagator& add(std::unique_ptr<StagePropagator> stage);

  /// Collective across ranks: every rank calls run() with its own state.
  void run(comm::Comm& comm, StageState& state, StageClock& clock);

  const std::vector<StageReport>& reports() const { return reports_; }

 private:
  std::vector<std::unique_ptr<StagePropagator>> stages_;
  std::vector<StageReport> reports_;
};

/// Stage 1 of the coupled pipeline: cascade-collision defect generation.
/// Initializes the lattice, seeds solutes, injects the PKAs and integrates
/// the cascade window; a checkpoint-restored run skips the dynamics (the
/// lattice was loaded) but still produces the census and the handoff.
class MdCascadeStage : public StagePropagator {
 public:
  MdCascadeStage(const SimulationConfig& cfg, std::uint64_t num_sites,
                 md::MdEngine& md);

  const char* name() const override { return "md_cascade"; }
  StageReport advance(comm::Comm& comm, StageState& state,
                      StageClock& clock) override;

 private:
  const SimulationConfig& cfg_;
  std::uint64_t num_sites_;
  md::MdEngine& md_;
};

/// Stage 2: vacancy clustering and evolution on the KMC engine. Owns the
/// MD->KMC handoff application, the chunked cycle loop with checkpoint
/// epochs, and the final vacancy census. The begin/run_detailed/finish
/// pieces are public so SamplingScheduler can interleave detailed windows
/// with SCD warming while executing the byte-identical cycle sequence.
class KmcStage : public StagePropagator {
 public:
  KmcStage(const SimulationConfig& cfg, kmc::KmcEngine& kmc, md::MdEngine& md,
           io::CheckpointStore* store);

  const char* name() const override { return "kmc"; }
  StageReport advance(comm::Comm& comm, StageState& state,
                      StageClock& clock) override;

  /// Handoff application (fresh run) or pre-KMC census reconstruction
  /// (restored run); fills state.vacancies_before on rank 0.
  void begin(comm::Comm& comm, StageState& state);

  /// Advance the detailed engine to absolute cycle `target` (chunked at
  /// checkpoint-epoch boundaries; every epoch saves a stage-tagged META so a
  /// sampled schedule resumes mid-window). No-op when already there.
  void run_detailed(comm::Comm& comm, StageState& state, StageClock& clock,
                    std::uint64_t target);

  /// Final census + global concentration; fills state.vacancies_after.
  void finish(comm::Comm& comm, StageState& state, StageClock& clock);

  std::uint64_t detailed_done() const { return done_; }
  double mc_time() const;
  std::vector<std::int64_t> gather_vacancies(comm::Comm& comm) const;

 private:
  const SimulationConfig& cfg_;
  kmc::KmcEngine& kmc_;
  md::MdEngine& md_;
  io::CheckpointStore* store_;
  std::uint64_t done_ = 0;
  util::Timer timer_;
};

/// The SMARTS-style sampled schedule (docs/SAMPLING.md): alternate detailed
/// KMC windows with cheap SCD warming strides until the coverage target
/// (kmc.cycles, counted in detailed-equivalent cycles) is reached.
/// Detailed windows advance the lattice; warming strides advance the
/// population estimate and the clock only.
class SamplingScheduler : public StagePropagator {
 public:
  SamplingScheduler(const SimulationConfig& cfg,
                    std::unique_ptr<KmcStage> detailed,
                    std::unique_ptr<kmc::ScdStage> scd);
  ~SamplingScheduler() override;

  const char* name() const override { return "sampling"; }
  StageReport advance(comm::Comm& comm, StageState& state,
                      StageClock& clock) override;

 private:
  const SimulationConfig& cfg_;
  std::unique_ptr<KmcStage> detailed_;
  std::unique_ptr<kmc::ScdStage> scd_;
};

}  // namespace mmd::core
