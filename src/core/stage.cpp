#include "core/stage.h"

#include <stdexcept>
#include <string>

#include "kmc/engine.h"
#include "md/engine.h"

namespace mmd::core {

void SamplingPolicy::validate() const {
  if (!enabled()) return;
  if (window < 1) {
    throw std::invalid_argument("sample.window must be >= 1 (got " +
                                std::to_string(window) + ")");
  }
  if (stride < 1) {
    throw std::invalid_argument("sample.stride must be >= 1 (got " +
                                std::to_string(stride) + ")");
  }
  if (replicates < 2) {
    throw std::invalid_argument(
        "sample.replicates must be >= 2 (the confidence interval comes from "
        "the replicate variance); got " +
        std::to_string(replicates));
  }
}

HandoffState HandoffState::capture(const md::MdEngine& md) {
  HandoffState h;
  for (const auto& v : md.vacancies()) h.vacancy_sites.push_back(v.site_rank);
  // Carry the Cu arrangement over: on-lattice mapping of each Cu atom
  // (displaced atoms map to their nearest lattice site).
  const lat::LatticeNeighborList& lnl = md.lattice();
  for (std::size_t idx : lnl.owned_indices()) {
    const lat::AtomEntry& e = lnl.entry(idx);
    if (e.is_atom() && e.type == lat::Species::Cu) {
      h.solute_sites.push_back(lnl.site_rank(idx));
    }
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
    const lat::RunawayAtom& a = lnl.runaway(ri);
    if (a.type == lat::Species::Cu) {
      const std::size_t host = lnl.nearest_owned_entry(a.r);
      h.solute_sites.push_back(lnl.site_rank(host));
    }
  });
  return h;
}

void HandoffState::apply(comm::Comm& comm, kmc::KmcEngine& kmc) const {
  for (const std::int64_t gid : solute_sites) {
    kmc.model().set_state_global(gid, kmc::SiteState::Cu);
  }
  kmc.initialize_sites(comm, vacancy_sites);
}

}  // namespace mmd::core
