#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "md/defects.h"

namespace mmd::comm {
class Comm;
}
namespace mmd::md {
class MdEngine;
}
namespace mmd::kmc {
class KmcEngine;
}

namespace mmd::core {

/// Policy of the SMARTS-style sampled long-time mode (scenario keys
/// `sample.*`, docs/SAMPLING.md): detailed KMC windows alternating with a
/// cheap stochastic-cluster-dynamics (SCD) warming propagator. `Off` is the
/// paper's all-detailed pipeline, byte-identical to the pre-pipeline runs.
struct SamplingPolicy {
  enum class Mode {
    Off,  ///< every KMC cycle is detailed (the default coupled pipeline)
    Scd,  ///< detailed windows + SCD warming strides between them
  };
  Mode mode = Mode::Off;
  /// Detailed KMC cycles per measured window.
  int window = 5;
  /// Coarse cycles covered by one SCD warming stride between windows. The
  /// stride's MC-time budget is the stride count times the per-cycle MC time
  /// measured in the preceding detailed window.
  int stride = 45;
  /// RNG-paired SCD replicates per warming stride; the replicate variance is
  /// what the confidence interval of the defect-count estimate comes from.
  int replicates = 8;

  bool enabled() const { return mode == Mode::Scd; }
  /// Throws std::invalid_argument on an unusable policy (window < 1,
  /// stride < 1, or replicates < 2 while mode is Scd).
  void validate() const;
};

/// MD->KMC handoff bookkeeping: the vacancy census and the surviving solute
/// arrangement, captured once from the MD lattice and applied to the KMC
/// model. Replaces the loose locals that used to thread between the engines
/// inside Simulation::run().
struct HandoffState {
  /// Global site ranks of this rank's owned vacancies.
  std::vector<std::int64_t> vacancy_sites;
  /// Global site ranks holding a Cu atom after the cascade: on-lattice atoms
  /// plus run-away Cu mapped to their nearest owned lattice site (the alloy
  /// arrangement survives the handoff, paper §1/§2.1.2).
  std::vector<std::int64_t> solute_sites;

  /// Census the owned vacancies and solute sites of the MD lattice.
  static HandoffState capture(const md::MdEngine& md);

  /// Collective: mark the solute sites on the KMC model and initialize the
  /// vacancy sites (ghosts included). The inverse of capture().
  void apply(comm::Comm& comm, kmc::KmcEngine& kmc) const;
};

/// Running defect-count estimate of the sampled mode: mean and 95% CI
/// halfwidth over the warming replicates of the most recent stride.
struct SampledStats {
  std::uint64_t windows = 0;   ///< completed window+warming pairs
  int replicates = 0;          ///< replicates per warming stride
  double est_clusters = 0.0;   ///< replicate-mean vacancy-cluster count
  double ci_halfwidth = 0.0;   ///< 1.96 * sd / sqrt(replicates)
  /// Per-replicate final cluster counts of the last warming (test hook for
  /// validating ci_halfwidth against the replicate variance; not persisted
  /// across checkpoint resume).
  std::vector<double> replicate_estimates;
};

/// Clocks threaded through the pipeline. The detailed engines advance
/// md_time_ps / kmc_mc_time_s; the SCD warming propagator advances
/// scd_time_s without touching the lattice.
struct StageClock {
  double md_time_ps = 0.0;
  double kmc_mc_time_s = 0.0;
  double scd_time_s = 0.0;
  double total_mc_time_s() const { return kmc_mc_time_s + scd_time_s; }
};

/// Per-rank state handed from stage to stage.
struct StageState {
  HandoffState handoff;
  /// Whether this run restored from a checkpoint, and from which KMC cycle;
  /// a restored run skips the MD cascade (the lattice was loaded).
  bool restored = false;
  std::uint64_t restored_cycles = 0;
  /// Sampled-mode schedule position restored from a checkpoint (windows
  /// completed and SCD time accumulated before the crash).
  SampledStats sampled;
  md::DefectSummary md_defects;
  /// Rank-0 gathers of the global vacancy census before and after KMC.
  std::vector<std::int64_t> vacancies_before;
  std::vector<std::int64_t> vacancies_after;
  double vacancy_concentration = 0.0;
};

/// What one stage propagator did.
struct StageReport {
  std::string stage;
  double wall_seconds = 0.0;
  std::uint64_t units = 0;  ///< MD steps / KMC cycles / warming windows
};

/// A composable propagator in the coupled pipeline. advance() is collective
/// across the in-process ranks: every rank calls it in pipeline order with
/// its own state, and the stage is free to communicate internally.
class StagePropagator {
 public:
  virtual ~StagePropagator() = default;
  virtual const char* name() const = 0;
  virtual StageReport advance(comm::Comm& comm, StageState& state,
                              StageClock& clock) = 0;
};

}  // namespace mmd::core
