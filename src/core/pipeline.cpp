#include "core/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "io/checkpoint.h"
#include "io/checkpoint_store.h"
#include "kmc/engine.h"
#include "kmc/scd.h"
#include "md/engine.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "util/rng.h"

namespace mmd::core {

namespace {

/// Collective: write one checkpoint epoch (per-rank file, then a manifest
/// commit on rank 0 once every rank's write landed). A failed write on any
/// rank abandons the epoch — the run degrades to the previous good one
/// instead of aborting. The META section carries the stage tag and the
/// sampled-schedule position so a sampled run resumes mid-window.
void save_checkpoint_epoch(comm::Comm& comm, io::CheckpointStore& store,
                           const SimulationConfig& cfg, std::uint64_t epoch,
                           md::MdEngine& md_engine, kmc::KmcEngine& kmc_engine,
                           const StageState& state, const StageClock& clock) {
  MMD_TRACE_SCOPE("sim.checkpoint");
  util::Timer t;
  std::ostringstream os;
  io::Checkpoint::write_file_header(os);
  io::Checkpoint::MetaState meta;
  meta.rank = comm.rank();
  meta.nranks = comm.size();
  meta.seed = cfg.md.seed;
  meta.md_time_ps = md_engine.simulated_time();
  const kmc::KmcEngineState st = kmc_engine.engine_state();
  meta.kmc_cycles = st.cycles;
  meta.kmc_events = st.events;
  meta.kmc_mc_time = st.mc_time;
  meta.kmc_last_max_rate = st.last_max_rate;
  meta.kmc_rng_state = st.rng_state;
  meta.stage_tag = cfg.sampling.enabled() ? "sampling" : "kmc";
  meta.sample_windows = state.sampled.windows;
  meta.scd_time_s = clock.scd_time_s;
  meta.sample_est_clusters = state.sampled.est_clusters;
  meta.sample_ci_halfwidth = state.sampled.ci_halfwidth;
  io::Checkpoint::write_meta_section(os, meta);
  io::Checkpoint::write_md_section(os, md_engine.lattice(),
                                   md_engine.simulated_time());
  io::Checkpoint::write_kmc_section(os, kmc_engine.model(), st.mc_time);
  const std::string blob = os.str();
  const bool ok = store.write_rank_blob(epoch, comm.rank(), blob);
  telemetry::count("ckpt.bytes", blob.size());
  telemetry::observe("ckpt.write_seconds", t.elapsed());
  const std::uint64_t failures = comm.allreduce_sum_u64(ok ? 0u : 1u);
  if (failures == 0) {
    if (comm.rank() == 0) {
      if (store.commit_epoch(epoch)) {
        telemetry::count("ckpt.epochs");
      } else {
        telemetry::count("ckpt.failed_epochs");
      }
    }
  } else {
    store.discard_rank_blob(epoch, comm.rank());
    if (comm.rank() == 0) {
      telemetry::count("ckpt.failed_epochs");
      std::fprintf(stderr,
                   "mmd: checkpoint epoch %llu failed on %llu rank(s); "
                   "keeping the previous epoch\n",
                   static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(failures));
    }
  }
  comm.barrier();
}

}  // namespace

StagePropagator& Pipeline::add(std::unique_ptr<StagePropagator> stage) {
  stages_.push_back(std::move(stage));
  return *stages_.back();
}

void Pipeline::run(comm::Comm& comm, StageState& state, StageClock& clock) {
  reports_.clear();
  for (auto& stage : stages_) {
    StageReport r = stage->advance(comm, state, clock);
    telemetry::set_gauge("stage." + r.stage + ".seconds", r.wall_seconds);
    reports_.push_back(std::move(r));
  }
}

// --- MdCascadeStage ---

MdCascadeStage::MdCascadeStage(const SimulationConfig& cfg,
                               std::uint64_t num_sites, md::MdEngine& md)
    : cfg_(cfg), num_sites_(num_sites), md_(md) {}

StageReport MdCascadeStage::advance(comm::Comm& comm, StageState& state,
                                    StageClock& clock) {
  util::Timer wall;
  if (!state.restored) {
    // --- MD stage: cascade-collision defect generation ---
    MMD_TRACE_SCOPE("sim.md");
    md_.initialize(comm);
    if (cfg_.solute_fraction > 0.0) {
      md_.seed_solutes(comm, cfg_.solute_fraction);
    }
    util::Rng rng(cfg_.md.seed ^ 0x7a3d5e9bull);
    for (int p = 0; p < cfg_.pka_count; ++p) {
      const auto site = static_cast<std::int64_t>(rng.uniform_index(num_sites_));
      md_.inject_pka(comm, site, rng.unit_vector(), cfg_.pka_energy_ev);
    }
    md_.run_for(comm, cfg_.md_time_ps);
  }
  // A restored run skips the dynamics (the lattice was loaded) but still
  // produces the census and the handoff from the frozen MD lattice.
  state.md_defects = md_.defects(comm);
  state.handoff = HandoffState::capture(md_);
  clock.md_time_ps = md_.simulated_time();
  telemetry::set_gauge("md.wall_seconds", wall.elapsed());
  telemetry::set_gauge("md.compute_seconds", md_.computation_seconds());
  telemetry::set_gauge("md.comm_seconds", md_.communication_seconds());
  return {name(), wall.elapsed(), static_cast<std::uint64_t>(cfg_.pka_count)};
}

// --- KmcStage ---

KmcStage::KmcStage(const SimulationConfig& cfg, kmc::KmcEngine& kmc,
                   md::MdEngine& md, io::CheckpointStore* store)
    : cfg_(cfg), kmc_(kmc), md_(md), store_(store) {}

double KmcStage::mc_time() const { return kmc_.mc_time(); }

std::vector<std::int64_t> KmcStage::gather_vacancies(comm::Comm& comm) const {
  return kmc_.gather_vacancies(comm);
}

void KmcStage::begin(comm::Comm& comm, StageState& state) {
  timer_.reset();
  done_ = state.restored ? state.restored_cycles : 0;
  if (!state.restored) {
    state.handoff.apply(comm, kmc_);
    state.vacancies_before = kmc_.gather_vacancies(comm);
  } else {
    // The restored sites already contain the handoff (vacancies AND any
    // solute arrangement); reconstruct the pre-KMC vacancy census from
    // the frozen MD lattice instead of the evolved KMC state.
    state.vacancies_before = comm.gather_to<std::int64_t>(
        0, state.handoff.vacancy_sites, comm::tags::kSimVacancyGather);
    std::sort(state.vacancies_before.begin(), state.vacancies_before.end());
  }
}

void KmcStage::run_detailed(comm::Comm& comm, StageState& state,
                            StageClock& clock, std::uint64_t target) {
  // Chunked run_cycles calls execute the identical cycle sequence, so
  // checkpointing does not perturb the physics.
  while (done_ < target) {
    std::uint64_t chunk = target - done_;
    if (store_ != nullptr && cfg_.checkpoint_every > 0) {
      const auto every = static_cast<std::uint64_t>(cfg_.checkpoint_every);
      chunk = std::min(chunk, every - done_ % every);
    }
    kmc_.run_cycles(comm, static_cast<int>(chunk));
    done_ += chunk;
    if (store_ != nullptr && cfg_.checkpoint_every > 0 &&
        done_ % static_cast<std::uint64_t>(cfg_.checkpoint_every) == 0) {
      save_checkpoint_epoch(comm, *store_, cfg_, done_, md_, kmc_, state,
                            clock);
    }
  }
}

void KmcStage::finish(comm::Comm& comm, StageState& state, StageClock& clock) {
  state.vacancies_after = kmc_.gather_vacancies(comm);
  state.vacancy_concentration = kmc_.vacancy_concentration(comm);
  clock.kmc_mc_time_s = kmc_.mc_time();
  telemetry::set_gauge("kmc.wall_seconds", timer_.elapsed());
  telemetry::set_gauge("kmc.compute_seconds", kmc_.computation_seconds());
  telemetry::set_gauge("kmc.comm_seconds", kmc_.communication_seconds());
}

StageReport KmcStage::advance(comm::Comm& comm, StageState& state,
                              StageClock& clock) {
  MMD_TRACE_SCOPE("sim.kmc");
  begin(comm, state);
  run_detailed(comm, state, clock, static_cast<std::uint64_t>(cfg_.kmc_cycles));
  finish(comm, state, clock);
  return {name(), timer_.elapsed(), done_};
}

// --- SamplingScheduler ---

SamplingScheduler::SamplingScheduler(const SimulationConfig& cfg,
                                     std::unique_ptr<KmcStage> detailed,
                                     std::unique_ptr<kmc::ScdStage> scd)
    : cfg_(cfg), detailed_(std::move(detailed)), scd_(std::move(scd)) {}

SamplingScheduler::~SamplingScheduler() = default;

StageReport SamplingScheduler::advance(comm::Comm& comm, StageState& state,
                                       StageClock& clock) {
  MMD_TRACE_SCOPE("sim.kmc");
  util::Timer wall;
  const auto target = static_cast<std::uint64_t>(cfg_.kmc_cycles);
  const auto window = static_cast<std::uint64_t>(cfg_.sampling.window);
  const auto stride = static_cast<std::uint64_t>(cfg_.sampling.stride);
  detailed_->begin(comm, state);
  // Schedule position: `covered` counts detailed-equivalent cycles. On a
  // mid-schedule resume state.sampled.windows and detailed_done() come from
  // the checkpoint META, so the loop re-enters exactly where the interrupted
  // run left off (strides never touch the lattice, so the detailed cycle
  // sequence is the all-detailed run's prefix either way).
  std::uint64_t windows = state.sampled.windows;
  std::uint64_t covered = detailed_->detailed_done() + windows * stride;
  while (covered < target) {
    const std::uint64_t done = detailed_->detailed_done();
    const bool stride_pending =
        done > 0 && done % window == 0 && windows < done / window;
    if (!stride_pending) {
      // Detailed window (a partial one when resuming mid-window or when the
      // coverage target lands inside it).
      const std::uint64_t w =
          std::min(window - done % window, target - covered);
      detailed_->run_detailed(comm, state, clock, done + w);
      covered += w;
      continue;
    }
    // Warming stride: seed the SCD estimator from the current census and
    // advance it by the stride's MC-time budget. The budget derives from the
    // cumulative per-cycle MC time, which is a pure function of checkpointed
    // engine state — a resumed schedule recomputes the identical budget.
    const std::uint64_t stride_cov = std::min(stride, target - covered);
    const double dt_cycle = detailed_->mc_time() / static_cast<double>(done);
    state.vacancies_after = detailed_->gather_vacancies(comm);
    scd_->set_window(windows, dt_cycle * static_cast<double>(stride_cov));
    scd_->advance(comm, state, clock);
    covered += stride_cov;
    ++windows;
    state.sampled.windows = windows;
    if (comm.rank() == 0) {
      telemetry::set_gauge("sample.windows", static_cast<double>(windows));
    }
  }
  state.sampled.windows = windows;
  state.sampled.replicates = cfg_.sampling.replicates;
  detailed_->finish(comm, state, clock);
  return {name(), wall.elapsed(), windows};
}

}  // namespace mmd::core
