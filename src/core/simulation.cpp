#include "core/simulation.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "io/checkpoint.h"
#include "io/checkpoint_store.h"
#include "md/slave_force.h"
#include "sunway/slave_pool.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace mmd::core {

namespace {

kmc::KmcConfig kmc_config_from(const SimulationConfig& cfg) {
  kmc::KmcConfig k;
  k.nx = cfg.md.nx;
  k.ny = cfg.md.ny;
  k.nz = cfg.md.nz;
  k.lattice_constant = cfg.md.lattice_constant;
  k.cutoff = cfg.md.cutoff;
  k.temperature = cfg.md.temperature;
  k.seed = cfg.md.seed;
  k.dt_scale = cfg.kmc_dt_scale;
  k.table_segments = cfg.kmc_table_segments;
  k.incremental = cfg.kmc_incremental;
  k.debug_events = cfg.kmc_debug_events;
  return k;
}

/// Collective: write one checkpoint epoch (per-rank file, then a manifest
/// commit on rank 0 once every rank's write landed). A failed write on any
/// rank abandons the epoch — the run degrades to the previous good one
/// instead of aborting.
void save_checkpoint_epoch(comm::Comm& comm, io::CheckpointStore& store,
                           const SimulationConfig& cfg, std::uint64_t epoch,
                           md::MdEngine& md_engine, kmc::KmcEngine& kmc_engine) {
  MMD_TRACE_SCOPE("sim.checkpoint");
  util::Timer t;
  std::ostringstream os;
  io::Checkpoint::write_file_header(os);
  io::Checkpoint::MetaState meta;
  meta.rank = comm.rank();
  meta.nranks = comm.size();
  meta.seed = cfg.md.seed;
  meta.md_time_ps = md_engine.simulated_time();
  const kmc::KmcEngineState st = kmc_engine.engine_state();
  meta.kmc_cycles = st.cycles;
  meta.kmc_events = st.events;
  meta.kmc_mc_time = st.mc_time;
  meta.kmc_last_max_rate = st.last_max_rate;
  meta.kmc_rng_state = st.rng_state;
  io::Checkpoint::write_meta_section(os, meta);
  io::Checkpoint::write_md_section(os, md_engine.lattice(),
                                   md_engine.simulated_time());
  io::Checkpoint::write_kmc_section(os, kmc_engine.model(), st.mc_time);
  const std::string blob = os.str();
  const bool ok = store.write_rank_blob(epoch, comm.rank(), blob);
  telemetry::count("ckpt.bytes", blob.size());
  telemetry::observe("ckpt.write_seconds", t.elapsed());
  const std::uint64_t failures = comm.allreduce_sum_u64(ok ? 0u : 1u);
  if (failures == 0) {
    if (comm.rank() == 0) {
      if (store.commit_epoch(epoch)) {
        telemetry::count("ckpt.epochs");
      } else {
        telemetry::count("ckpt.failed_epochs");
      }
    }
  } else {
    store.discard_rank_blob(epoch, comm.rank());
    if (comm.rank() == 0) {
      telemetry::count("ckpt.failed_epochs");
      std::fprintf(stderr,
                   "mmd: checkpoint epoch %llu failed on %llu rank(s); "
                   "keeping the previous epoch\n",
                   static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(failures));
    }
  }
  comm.barrier();
}

}  // namespace

std::string to_string(const SimulationReport& r) {
  std::ostringstream os;
  os << "MD stage: " << r.md_defects.atoms << " atoms, " << r.md_defects.vacancies
     << " vacancies, " << r.md_defects.interstitials << " interstitials ("
     << r.md_seconds << " s)\n";
  os << "KMC stage: " << r.kmc_events << " events, MC time " << r.kmc_mc_time
     << " s, C_MC " << r.vacancy_concentration << " (" << r.kmc_seconds
     << " s)\n";
  os << "Clusters after MD : " << r.clusters_after_md.num_clusters
     << " clusters, mean size " << r.clusters_after_md.mean_size
     << ", max " << r.clusters_after_md.max_size << "\n";
  os << "Clusters after KMC: " << r.clusters_after_kmc.num_clusters
     << " clusters, mean size " << r.clusters_after_kmc.mean_size
     << ", max " << r.clusters_after_kmc.max_size << "\n";
  os << "Temporal scale: " << r.real_time_days << " days";
  return os.str();
}

SimulationAssets Simulation::build_assets(const SimulationConfig& cfg) {
  const pot::EamModel model =
      cfg.solute_fraction > 0.0
          ? pot::EamModel::iron_copper(cfg.md.lattice_constant, cfg.md.cutoff)
          : pot::EamModel::iron(cfg.md.lattice_constant, cfg.md.cutoff);
  SimulationAssets assets;
  assets.md_tables = std::make_shared<const pot::EamTableSet>(
      pot::EamTableSet::build(model, cfg.md.table_segments));
  assets.kmc_tables = std::make_shared<const pot::EamTableSet>(
      pot::EamTableSet::build(model, cfg.kmc_table_segments));
  return assets;
}

Simulation::Simulation(const SimulationConfig& cfg)
    : Simulation(cfg, build_assets(cfg)) {}

Simulation::Simulation(const SimulationConfig& cfg, SimulationAssets assets)
    : cfg_(cfg),
      md_tables_(std::move(assets.md_tables)),
      kmc_tables_(std::move(assets.kmc_tables)) {
  if (md_tables_ == nullptr || kmc_tables_ == nullptr) {
    throw std::invalid_argument("SimulationAssets must hold both table sets");
  }
  if (cfg_.use_slave_force && cfg_.solute_fraction > 0.0) {
    throw std::invalid_argument(
        "the slave-core force kernel is single-species; alloy runs "
        "(solute_fraction > 0) must use the reference path");
  }
}

SimulationReport Simulation::run() {
  SimulationReport report;
  std::mutex report_mutex;

  const md::MdSetup md_setup(cfg_.md, cfg_.nranks);
  const kmc::KmcConfig kmc_cfg = kmc_config_from(cfg_);
  const kmc::KmcSetup kmc_setup(kmc_cfg, cfg_.nranks);

  // Record into the calling thread's telemetry session if a driver provided
  // one (mmd_run --trace-out/--metrics-out, or a campaign lane's thread-scoped
  // session), otherwise spin up a private one so the report can always be
  // populated from the registry. The private session stays off the global
  // slot: concurrent simulations must never observe each other's fallback.
  std::unique_ptr<telemetry::Session> owned_session;
  telemetry::Session* session = telemetry::Session::current();
  if (session == nullptr) {
    telemetry::Session::Options opts;
    opts.install_global = false;
    owned_session = std::make_unique<telemetry::Session>(cfg_.nranks, opts);
    session = owned_session.get();
  }
  // Pin `session` as this thread's current one for the duration of the run;
  // comm::World::run hands it on to the rank threads it spawns.
  telemetry::Session::ThreadScope telemetry_scope(session);
  // Counters in a driver-provided session may carry earlier runs; report
  // deltas, not absolutes.
  const std::uint64_t events_before =
      session->metrics().aggregate().counter("kmc.events");

  std::unique_ptr<io::CheckpointStore> store;
  if (!cfg_.checkpoint_dir.empty()) {
    store = std::make_unique<io::CheckpointStore>(cfg_.checkpoint_dir,
                                                  cfg_.nranks);
    store->set_keep_epochs(cfg_.checkpoint_keep);
    store->set_fault_injector(cfg_.fault_injector);
  }
  // Resume candidates, newest first; every rank tries them in lock step.
  std::vector<std::uint64_t> resume_epochs;
  if (store != nullptr && cfg_.resume) {
    resume_epochs = store->committed_epochs();
    std::reverse(resume_epochs.begin(), resume_epochs.end());
  }

  // Slave force path: all ranks share ONE pool (its run() serializes
  // concurrent epochs), either the campaign's shared executor or a private
  // one owned by this run.
  std::unique_ptr<sw::SlaveCorePool> owned_pool;
  sw::SlaveCorePool* pool = cfg_.slave_pool;
  if (cfg_.use_slave_force && pool == nullptr) {
    owned_pool = std::make_unique<sw::SlaveCorePool>();
    pool = owned_pool.get();
  }

  comm::World world(cfg_.nranks);
  world.run([&](comm::Comm& comm) {
    util::Timer wall;

    md::MdEngine md_engine(cfg_.md, md_setup.geo, md_setup.dd, *md_tables_,
                           comm.rank());
    kmc::KmcEngine kmc_engine(kmc_cfg, kmc_setup.geo, kmc_setup.dd, *kmc_tables_,
                              comm.rank(), cfg_.kmc_strategy);
    std::unique_ptr<md::SlaveForceCompute> slave_force;
    if (cfg_.use_slave_force) {
      slave_force = std::make_unique<md::SlaveForceCompute>(
          *md_tables_, *pool, md::AccelStrategy::CompactedReuse);
      slave_force->set_simd(cfg_.use_simd_force);
      md_engine.use_slave_kernel(slave_force.get());
    }

    // --- resume: an epoch is adopted only when EVERY rank validates its
    // file; otherwise all ranks fall back to the next older epoch together.
    bool restored = false;
    std::uint64_t restored_cycles = 0;
    for (const std::uint64_t epoch : resume_epochs) {
      io::Checkpoint::MetaState meta;
      bool ok = true;
      std::string error;
      try {
        const auto blob = store->read_rank_blob(epoch, comm.rank());
        if (!blob) throw std::runtime_error("missing rank file");
        std::istringstream is(*blob);
        io::Checkpoint::read_file_header(is);
        meta = io::Checkpoint::read_meta_section(is);
        if (meta.rank != comm.rank() || meta.nranks != comm.size() ||
            meta.seed != cfg_.md.seed) {
          throw std::runtime_error(
              "checkpoint was written by a different run configuration");
        }
        md_engine.set_simulated_time(
            io::Checkpoint::read_md_section(is, md_engine.lattice()));
        io::Checkpoint::read_kmc_section(is, kmc_engine.model());
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
      const std::uint64_t bad = comm.allreduce_sum_u64(ok ? 0u : 1u);
      if (bad == 0) {
        kmc::KmcEngineState st;
        st.events = meta.kmc_events;
        st.cycles = meta.kmc_cycles;
        st.mc_time = meta.kmc_mc_time;
        st.last_max_rate = meta.kmc_last_max_rate;
        st.rng_state = meta.kmc_rng_state;
        kmc_engine.restore_state(comm, st);
        // Events executed before the checkpoint re-enter the registry so a
        // resumed run reports the same totals as an uninterrupted one.
        if (meta.kmc_events > 0) telemetry::count("kmc.events", meta.kmc_events);
        telemetry::count("ckpt.resumed_ranks");
        restored = true;
        restored_cycles = meta.kmc_cycles;
        break;
      }
      telemetry::count("ckpt.load_fallbacks");
      if (!ok) {
        std::fprintf(stderr,
                     "mmd: rank %d: checkpoint epoch %llu rejected (%s); "
                     "falling back\n",
                     comm.rank(), static_cast<unsigned long long>(epoch),
                     error.c_str());
      }
    }

    if (!restored) {
      if (!resume_epochs.empty()) {
        // A partially-applied failed load must not leak into a fresh run.
        for (std::size_t i = 0; i < kmc_engine.model().size(); ++i) {
          kmc_engine.model().set_state(i, kmc::SiteState::Fe);
        }
      }
      // --- MD stage: cascade-collision defect generation ---
      MMD_TRACE_SCOPE("sim.md");
      md_engine.initialize(comm);
      if (cfg_.solute_fraction > 0.0) {
        md_engine.seed_solutes(comm, cfg_.solute_fraction);
      }
      util::Rng rng(cfg_.md.seed ^ 0x7a3d5e9bull);
      for (int p = 0; p < cfg_.pka_count; ++p) {
        const auto site = static_cast<std::int64_t>(rng.uniform_index(
            static_cast<std::uint64_t>(md_setup.geo.num_sites())));
        md_engine.inject_pka(comm, site, rng.unit_vector(), cfg_.pka_energy_ev);
      }
      md_engine.run_for(comm, cfg_.md_time_ps);
    }
    const auto defects = md_engine.defects(comm);
    telemetry::set_gauge("md.wall_seconds", wall.elapsed());
    telemetry::set_gauge("md.compute_seconds", md_engine.computation_seconds());
    telemetry::set_gauge("md.comm_seconds", md_engine.communication_seconds());

    // --- handoff: vacancy coordinates (and, for alloys, the solute
    // arrangement) become KMC sites ---
    std::vector<std::int64_t> vac_sites;
    for (const auto& v : md_engine.vacancies()) vac_sites.push_back(v.site_rank);

    // --- KMC stage: vacancy clustering and evolution ---
    wall.reset();
    std::vector<std::int64_t> before;
    std::vector<std::int64_t> after;
    {
      MMD_TRACE_SCOPE("sim.kmc");
      if (!restored) {
        if (cfg_.solute_fraction > 0.0) {
          // Carry the Cu arrangement over: on-lattice mapping of each Cu atom
          // (displaced atoms map to their nearest lattice site).
          auto& lnl = md_engine.lattice();
          for (std::size_t idx : lnl.owned_indices()) {
            const lat::AtomEntry& e = lnl.entry(idx);
            if (e.is_atom() && e.type == lat::Species::Cu) {
              kmc_engine.model().set_state_global(lnl.site_rank(idx),
                                                  kmc::SiteState::Cu);
            }
          }
          lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
            const lat::RunawayAtom& a = lnl.runaway(ri);
            if (a.type == lat::Species::Cu) {
              const std::size_t host = lnl.nearest_owned_entry(a.r);
              kmc_engine.model().set_state_global(lnl.site_rank(host),
                                                  kmc::SiteState::Cu);
            }
          });
        }
        kmc_engine.initialize_sites(comm, vac_sites);
        before = kmc_engine.gather_vacancies(comm);
      } else {
        // The restored sites already contain the handoff (vacancies AND any
        // solute arrangement); reconstruct the pre-KMC vacancy census from
        // the frozen MD lattice instead of the evolved KMC state.
        before = comm.gather_to<std::int64_t>(0, vac_sites,
                                              comm::tags::kSimVacancyGather);
        std::sort(before.begin(), before.end());
      }
      // Advance to cfg_.kmc_cycles, checkpointing at every epoch boundary.
      // Chunked run_cycles calls execute the identical cycle sequence, so
      // checkpointing does not perturb the physics.
      const int total = cfg_.kmc_cycles;
      int done = static_cast<int>(restored_cycles);
      while (done < total) {
        int chunk = total - done;
        if (store != nullptr && cfg_.checkpoint_every > 0) {
          chunk = std::min(chunk,
                           cfg_.checkpoint_every - done % cfg_.checkpoint_every);
        }
        kmc_engine.run_cycles(comm, chunk);
        done += chunk;
        if (store != nullptr && cfg_.checkpoint_every > 0 &&
            done % cfg_.checkpoint_every == 0) {
          save_checkpoint_epoch(comm, *store, cfg_,
                                static_cast<std::uint64_t>(done), md_engine,
                                kmc_engine);
        }
      }
      after = kmc_engine.gather_vacancies(comm);
    }
    const double c_mc = kmc_engine.vacancy_concentration(comm);
    telemetry::set_gauge("kmc.wall_seconds", wall.elapsed());
    telemetry::set_gauge("kmc.compute_seconds", kmc_engine.computation_seconds());
    telemetry::set_gauge("kmc.comm_seconds", kmc_engine.communication_seconds());

    if (comm.rank() == 0) {
      std::lock_guard lk(report_mutex);
      report.md_defects = defects;
      report.clusters_after_md = kmc::cluster_vacancies(kmc_setup.geo, before);
      report.clusters_after_kmc = kmc::cluster_vacancies(kmc_setup.geo, after);
      report.kmc_mc_time = kmc_engine.mc_time();
      report.vacancy_concentration = c_mc;
      report.real_time_days =
          kmc::real_time_scale(kmc_engine.mc_time(), c_mc, kmc_cfg.temperature) /
          86400.0;
      report.final_vacancies = after;
      report.resumed = restored;
      report.resumed_from_cycle = restored_cycles;
    }
  });

  // Timing split and event totals come from the telemetry registry — the
  // per-rank gauges/counters written above replace the old in-run allreduces
  // (max over ranks = the critical path, exactly what the allreduce computed).
  const auto agg = session->metrics().aggregate();
  report.kmc_events = agg.counter("kmc.events") - events_before;
  report.md_seconds = agg.gauge_maximum("md.wall_seconds");
  report.kmc_seconds = agg.gauge_maximum("kmc.wall_seconds");
  report.md_compute_seconds = agg.gauge_maximum("md.compute_seconds");
  report.md_comm_seconds = agg.gauge_maximum("md.comm_seconds");
  report.kmc_compute_seconds = agg.gauge_maximum("kmc.compute_seconds");
  report.kmc_comm_seconds = agg.gauge_maximum("kmc.comm_seconds");
  return report;
}

}  // namespace mmd::core
