#include "core/simulation.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "core/pipeline.h"
#include "io/checkpoint.h"
#include "io/checkpoint_store.h"
#include "kmc/clusters.h"
#include "kmc/engine.h"
#include "kmc/scd.h"
#include "md/engine.h"
#include "md/slave_force.h"
#include "potential/eam.h"
#include "sunway/slave_pool.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace mmd::core {

namespace {

kmc::KmcConfig kmc_config_from(const SimulationConfig& cfg) {
  kmc::KmcConfig k;
  k.nx = cfg.md.nx;
  k.ny = cfg.md.ny;
  k.nz = cfg.md.nz;
  k.lattice_constant = cfg.md.lattice_constant;
  k.cutoff = cfg.md.cutoff;
  k.temperature = cfg.md.temperature;
  k.seed = cfg.md.seed;
  k.dt_scale = cfg.kmc_dt_scale;
  k.table_segments = cfg.kmc_table_segments;
  k.incremental = cfg.kmc_incremental;
  k.debug_events = cfg.kmc_debug_events;
  return k;
}

}  // namespace

std::string to_string(const SimulationReport& r) {
  std::ostringstream os;
  os << "MD stage: " << r.md_defects.atoms << " atoms, " << r.md_defects.vacancies
     << " vacancies, " << r.md_defects.interstitials << " interstitials ("
     << r.md_seconds << " s)\n";
  os << "KMC stage: " << r.kmc_events << " events, MC time " << r.kmc_mc_time
     << " s, C_MC " << r.vacancy_concentration << " (" << r.kmc_seconds
     << " s)\n";
  os << "Clusters after MD : " << r.clusters_after_md.num_clusters
     << " clusters, mean size " << r.clusters_after_md.mean_size
     << ", max " << r.clusters_after_md.max_size << "\n";
  os << "Clusters after KMC: " << r.clusters_after_kmc.num_clusters
     << " clusters, mean size " << r.clusters_after_kmc.mean_size
     << ", max " << r.clusters_after_kmc.max_size << "\n";
  os << "Temporal scale: " << r.real_time_days << " days";
  if (r.sampled.windows > 0) {
    os << "\nSampled mode: " << r.sampled.windows << " windows, "
       << r.sampled.replicates << " replicates, est. clusters "
       << r.sampled.est_clusters << " +/- " << r.sampled.ci_halfwidth;
  }
  return os.str();
}

SimulationAssets Simulation::build_assets(const SimulationConfig& cfg) {
  const pot::EamModel model =
      cfg.solute_fraction > 0.0
          ? pot::EamModel::iron_copper(cfg.md.lattice_constant, cfg.md.cutoff)
          : pot::EamModel::iron(cfg.md.lattice_constant, cfg.md.cutoff);
  SimulationAssets assets;
  assets.md_tables = std::make_shared<const pot::EamTableSet>(
      pot::EamTableSet::build(model, cfg.md.table_segments));
  assets.kmc_tables = std::make_shared<const pot::EamTableSet>(
      pot::EamTableSet::build(model, cfg.kmc_table_segments));
  return assets;
}

Simulation::Simulation(const SimulationConfig& cfg)
    : Simulation(cfg, build_assets(cfg)) {}

Simulation::Simulation(const SimulationConfig& cfg, SimulationAssets assets)
    : cfg_(cfg),
      md_tables_(std::move(assets.md_tables)),
      kmc_tables_(std::move(assets.kmc_tables)) {
  if (md_tables_ == nullptr || kmc_tables_ == nullptr) {
    throw std::invalid_argument("SimulationAssets must hold both table sets");
  }
  if (cfg_.use_slave_force && cfg_.solute_fraction > 0.0) {
    throw std::invalid_argument(
        "the slave-core force kernel is single-species; alloy runs "
        "(solute_fraction > 0) must use the reference path");
  }
}

SimulationReport Simulation::run() {
  cfg_.sampling.validate();
  SimulationReport report;
  std::mutex report_mutex;

  const md::MdSetup md_setup(cfg_.md, cfg_.nranks);
  const kmc::KmcConfig kmc_cfg = kmc_config_from(cfg_);
  const kmc::KmcSetup kmc_setup(kmc_cfg, cfg_.nranks);

  // Record into the calling thread's telemetry session if a driver provided
  // one (mmd_run --trace-out/--metrics-out, or a campaign lane's thread-scoped
  // session), otherwise spin up a private one so the report can always be
  // populated from the registry. The private session stays off the global
  // slot: concurrent simulations must never observe each other's fallback.
  std::unique_ptr<telemetry::Session> owned_session;
  telemetry::Session* session = telemetry::Session::current();
  if (session == nullptr) {
    telemetry::Session::Options opts;
    opts.install_global = false;
    owned_session = std::make_unique<telemetry::Session>(cfg_.nranks, opts);
    session = owned_session.get();
  }
  // Pin `session` as this thread's current one for the duration of the run;
  // comm::World::run hands it on to the rank threads it spawns.
  telemetry::Session::ThreadScope telemetry_scope(session);
  // Counters in a driver-provided session may carry earlier runs; report
  // deltas, not absolutes.
  const std::uint64_t events_before =
      session->metrics().aggregate().counter("kmc.events");

  std::unique_ptr<io::CheckpointStore> store;
  if (!cfg_.checkpoint_dir.empty()) {
    store = std::make_unique<io::CheckpointStore>(cfg_.checkpoint_dir,
                                                  cfg_.nranks);
    store->set_keep_epochs(cfg_.checkpoint_keep);
    store->set_fault_injector(cfg_.fault_injector);
  }
  // Resume candidates, newest first; every rank tries them in lock step.
  std::vector<std::uint64_t> resume_epochs;
  if (store != nullptr && cfg_.resume) {
    resume_epochs = store->committed_epochs();
    std::reverse(resume_epochs.begin(), resume_epochs.end());
  }

  // Slave force path: all ranks share ONE pool (its run() serializes
  // concurrent epochs), either the campaign's shared executor or a private
  // one owned by this run.
  std::unique_ptr<sw::SlaveCorePool> owned_pool;
  sw::SlaveCorePool* pool = cfg_.slave_pool;
  if (cfg_.use_slave_force && pool == nullptr) {
    owned_pool = std::make_unique<sw::SlaveCorePool>();
    pool = owned_pool.get();
  }

  comm::World world(cfg_.nranks);
  world.run([&](comm::Comm& comm) {
    md::MdEngine md_engine(cfg_.md, md_setup.geo, md_setup.dd, *md_tables_,
                           comm.rank());
    kmc::KmcEngine kmc_engine(kmc_cfg, kmc_setup.geo, kmc_setup.dd, *kmc_tables_,
                              comm.rank(), cfg_.kmc_strategy);
    std::unique_ptr<md::SlaveForceCompute> slave_force;
    if (cfg_.use_slave_force) {
      slave_force = std::make_unique<md::SlaveForceCompute>(
          *md_tables_, *pool, md::AccelStrategy::CompactedReuse);
      slave_force->set_simd(cfg_.use_simd_force);
      md_engine.use_slave_kernel(slave_force.get());
    }

    // --- resume: an epoch is adopted only when EVERY rank validates its
    // file; otherwise all ranks fall back to the next older epoch together.
    StageState state;
    StageClock clock;
    const char* expected_tag = cfg_.sampling.enabled() ? "sampling" : "kmc";
    for (const std::uint64_t epoch : resume_epochs) {
      io::Checkpoint::MetaState meta;
      bool ok = true;
      std::string error;
      try {
        const auto blob = store->read_rank_blob(epoch, comm.rank());
        if (!blob) throw std::runtime_error("missing rank file");
        std::istringstream is(*blob);
        io::Checkpoint::read_file_header(is);
        meta = io::Checkpoint::read_meta_section(is);
        if (meta.rank != comm.rank() || meta.nranks != comm.size() ||
            meta.seed != cfg_.md.seed || meta.stage_tag != expected_tag) {
          throw std::runtime_error(
              "checkpoint was written by a different run configuration");
        }
        md_engine.set_simulated_time(
            io::Checkpoint::read_md_section(is, md_engine.lattice()));
        io::Checkpoint::read_kmc_section(is, kmc_engine.model());
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
      const std::uint64_t bad = comm.allreduce_sum_u64(ok ? 0u : 1u);
      if (bad == 0) {
        kmc::KmcEngineState st;
        st.events = meta.kmc_events;
        st.cycles = meta.kmc_cycles;
        st.mc_time = meta.kmc_mc_time;
        st.last_max_rate = meta.kmc_last_max_rate;
        st.rng_state = meta.kmc_rng_state;
        kmc_engine.restore_state(comm, st);
        // Events executed before the checkpoint re-enter the registry so a
        // resumed run reports the same totals as an uninterrupted one.
        if (meta.kmc_events > 0) telemetry::count("kmc.events", meta.kmc_events);
        telemetry::count("ckpt.resumed_ranks");
        state.restored = true;
        state.restored_cycles = meta.kmc_cycles;
        // Sampled-schedule position: the scheduler re-enters the window/
        // stride loop exactly where the interrupted run left off.
        state.sampled.windows = meta.sample_windows;
        state.sampled.est_clusters = meta.sample_est_clusters;
        state.sampled.ci_halfwidth = meta.sample_ci_halfwidth;
        clock.scd_time_s = meta.scd_time_s;
        break;
      }
      telemetry::count("ckpt.load_fallbacks");
      if (!ok) {
        std::fprintf(stderr,
                     "mmd: rank %d: checkpoint epoch %llu rejected (%s); "
                     "falling back\n",
                     comm.rank(), static_cast<unsigned long long>(epoch),
                     error.c_str());
      }
    }
    if (!state.restored && !resume_epochs.empty()) {
      // A partially-applied failed load must not leak into a fresh run.
      for (std::size_t i = 0; i < kmc_engine.model().size(); ++i) {
        kmc_engine.model().set_state(i, kmc::SiteState::Fe);
      }
    }
    if (state.restored && cfg_.sampling.enabled()) {
      state.sampled.replicates = cfg_.sampling.replicates;
    }

    // --- the stage pipeline: MD cascade, then either the all-detailed KMC
    // stage or the sampled window/stride scheduler ---
    Pipeline pipeline;
    pipeline.add(std::make_unique<MdCascadeStage>(
        cfg_, static_cast<std::uint64_t>(md_setup.geo.num_sites()), md_engine));
    auto kmc_stage = std::make_unique<KmcStage>(cfg_, kmc_engine, md_engine,
                                                store.get());
    if (cfg_.sampling.enabled()) {
      auto scd = std::make_unique<kmc::ScdStage>(
          kmc_setup.geo,
          kmc::ScdParams::from(
              kmc_cfg, static_cast<std::uint64_t>(kmc_setup.geo.num_sites())),
          cfg_.sampling.replicates, cfg_.md.seed);
      pipeline.add(std::make_unique<SamplingScheduler>(
          cfg_, std::move(kmc_stage), std::move(scd)));
    } else {
      pipeline.add(std::move(kmc_stage));
    }
    pipeline.run(comm, state, clock);

    if (comm.rank() == 0) {
      std::lock_guard lk(report_mutex);
      report.md_defects = state.md_defects;
      report.clusters_after_md =
          kmc::cluster_vacancies(kmc_setup.geo, state.vacancies_before);
      report.clusters_after_kmc =
          kmc::cluster_vacancies(kmc_setup.geo, state.vacancies_after);
      report.kmc_mc_time = clock.total_mc_time_s();
      report.vacancy_concentration = state.vacancy_concentration;
      report.real_time_days =
          kmc::real_time_scale(clock.total_mc_time_s(),
                               state.vacancy_concentration,
                               kmc_cfg.temperature) /
          86400.0;
      report.final_vacancies = state.vacancies_after;
      report.resumed = state.restored;
      report.resumed_from_cycle = state.restored_cycles;
      report.sampled = state.sampled;
    }
  });

  // Timing split and event totals come from the telemetry registry — the
  // per-rank gauges/counters written above replace the old in-run allreduces
  // (max over ranks = the critical path, exactly what the allreduce computed).
  const auto agg = session->metrics().aggregate();
  report.kmc_events = agg.counter("kmc.events") - events_before;
  report.md_seconds = agg.gauge_maximum("md.wall_seconds");
  report.kmc_seconds = agg.gauge_maximum("kmc.wall_seconds");
  report.md_compute_seconds = agg.gauge_maximum("md.compute_seconds");
  report.md_comm_seconds = agg.gauge_maximum("md.comm_seconds");
  report.kmc_compute_seconds = agg.gauge_maximum("kmc.compute_seconds");
  report.kmc_comm_seconds = agg.gauge_maximum("kmc.comm_seconds");
  return report;
}

}  // namespace mmd::core
