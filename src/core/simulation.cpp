#include "core/simulation.h"

#include <memory>
#include <mutex>
#include <sstream>

#include "telemetry/session.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace mmd::core {

namespace {

kmc::KmcConfig kmc_config_from(const SimulationConfig& cfg) {
  kmc::KmcConfig k;
  k.nx = cfg.md.nx;
  k.ny = cfg.md.ny;
  k.nz = cfg.md.nz;
  k.lattice_constant = cfg.md.lattice_constant;
  k.cutoff = cfg.md.cutoff;
  k.temperature = cfg.md.temperature;
  k.seed = cfg.md.seed;
  k.dt_scale = cfg.kmc_dt_scale;
  k.table_segments = cfg.kmc_table_segments;
  return k;
}

}  // namespace

std::string to_string(const SimulationReport& r) {
  std::ostringstream os;
  os << "MD stage: " << r.md_defects.atoms << " atoms, " << r.md_defects.vacancies
     << " vacancies, " << r.md_defects.interstitials << " interstitials ("
     << r.md_seconds << " s)\n";
  os << "KMC stage: " << r.kmc_events << " events, MC time " << r.kmc_mc_time
     << " s, C_MC " << r.vacancy_concentration << " (" << r.kmc_seconds
     << " s)\n";
  os << "Clusters after MD : " << r.clusters_after_md.num_clusters
     << " clusters, mean size " << r.clusters_after_md.mean_size
     << ", max " << r.clusters_after_md.max_size << "\n";
  os << "Clusters after KMC: " << r.clusters_after_kmc.num_clusters
     << " clusters, mean size " << r.clusters_after_kmc.mean_size
     << ", max " << r.clusters_after_kmc.max_size << "\n";
  os << "Temporal scale: " << r.real_time_days << " days";
  return os.str();
}

Simulation::Simulation(const SimulationConfig& cfg)
    : cfg_(cfg),
      md_tables_(pot::EamTableSet::build(
          cfg.solute_fraction > 0.0
              ? pot::EamModel::iron_copper(cfg.md.lattice_constant, cfg.md.cutoff)
              : pot::EamModel::iron(cfg.md.lattice_constant, cfg.md.cutoff),
          cfg.md.table_segments)),
      kmc_tables_(pot::EamTableSet::build(
          cfg.solute_fraction > 0.0
              ? pot::EamModel::iron_copper(cfg.md.lattice_constant, cfg.md.cutoff)
              : pot::EamModel::iron(cfg.md.lattice_constant, cfg.md.cutoff),
          cfg.kmc_table_segments)) {}

SimulationReport Simulation::run() {
  SimulationReport report;
  std::mutex report_mutex;

  const md::MdSetup md_setup(cfg_.md, cfg_.nranks);
  const kmc::KmcConfig kmc_cfg = kmc_config_from(cfg_);
  const kmc::KmcSetup kmc_setup(kmc_cfg, cfg_.nranks);

  // Record into the installed telemetry session if a driver provided one
  // (mmd_run --trace-out/--metrics-out), otherwise spin up a private one so
  // the report can always be populated from the registry.
  std::unique_ptr<telemetry::Session> owned_session;
  telemetry::Session* session = telemetry::Session::current();
  if (session == nullptr) {
    owned_session = std::make_unique<telemetry::Session>(cfg_.nranks);
    session = owned_session.get();
  }
  // Counters in a driver-provided session may carry earlier runs; report
  // deltas, not absolutes.
  const std::uint64_t events_before =
      session->metrics().aggregate().counter("kmc.events");

  comm::World world(cfg_.nranks);
  world.run([&](comm::Comm& comm) {
    util::Timer wall;

    // --- MD stage: cascade-collision defect generation ---
    md::MdEngine md_engine(cfg_.md, md_setup.geo, md_setup.dd, md_tables_,
                           comm.rank());
    {
      MMD_TRACE_SCOPE("sim.md");
      md_engine.initialize(comm);
      if (cfg_.solute_fraction > 0.0) {
        md_engine.seed_solutes(comm, cfg_.solute_fraction);
      }
      util::Rng rng(cfg_.md.seed ^ 0x7a3d5e9bull);
      for (int p = 0; p < cfg_.pka_count; ++p) {
        const auto site = static_cast<std::int64_t>(rng.uniform_index(
            static_cast<std::uint64_t>(md_setup.geo.num_sites())));
        md_engine.inject_pka(comm, site, rng.unit_vector(), cfg_.pka_energy_ev);
      }
      md_engine.run_for(comm, cfg_.md_time_ps);
    }
    const auto defects = md_engine.defects(comm);
    telemetry::set_gauge("md.wall_seconds", wall.elapsed());
    telemetry::set_gauge("md.compute_seconds", md_engine.computation_seconds());
    telemetry::set_gauge("md.comm_seconds", md_engine.communication_seconds());

    // --- handoff: vacancy coordinates (and, for alloys, the solute
    // arrangement) become KMC sites ---
    std::vector<std::int64_t> vac_sites;
    for (const auto& v : md_engine.vacancies()) vac_sites.push_back(v.site_rank);

    // --- KMC stage: vacancy clustering and evolution ---
    wall.reset();
    kmc::KmcEngine kmc_engine(kmc_cfg, kmc_setup.geo, kmc_setup.dd, kmc_tables_,
                              comm.rank(), cfg_.kmc_strategy);
    std::vector<std::int64_t> before;
    std::vector<std::int64_t> after;
    {
      MMD_TRACE_SCOPE("sim.kmc");
      if (cfg_.solute_fraction > 0.0) {
        // Carry the Cu arrangement over: on-lattice mapping of each Cu atom
        // (displaced atoms map to their nearest lattice site).
        auto& lnl = md_engine.lattice();
        for (std::size_t idx : lnl.owned_indices()) {
          const lat::AtomEntry& e = lnl.entry(idx);
          if (e.is_atom() && e.type == lat::Species::Cu) {
            kmc_engine.model().set_state_global(lnl.site_rank(idx),
                                                kmc::SiteState::Cu);
          }
        }
        lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
          const lat::RunawayAtom& a = lnl.runaway(ri);
          if (a.type == lat::Species::Cu) {
            const std::size_t host = lnl.nearest_owned_entry(a.r);
            kmc_engine.model().set_state_global(lnl.site_rank(host),
                                                kmc::SiteState::Cu);
          }
        });
      }
      kmc_engine.initialize_sites(comm, vac_sites);
      before = kmc_engine.gather_vacancies(comm);
      kmc_engine.run_cycles(comm, cfg_.kmc_cycles);
      after = kmc_engine.gather_vacancies(comm);
    }
    const double c_mc = kmc_engine.vacancy_concentration(comm);
    telemetry::set_gauge("kmc.wall_seconds", wall.elapsed());
    telemetry::set_gauge("kmc.compute_seconds", kmc_engine.computation_seconds());
    telemetry::set_gauge("kmc.comm_seconds", kmc_engine.communication_seconds());

    if (comm.rank() == 0) {
      std::lock_guard lk(report_mutex);
      report.md_defects = defects;
      report.clusters_after_md = kmc::cluster_vacancies(kmc_setup.geo, before);
      report.clusters_after_kmc = kmc::cluster_vacancies(kmc_setup.geo, after);
      report.kmc_mc_time = kmc_engine.mc_time();
      report.vacancy_concentration = c_mc;
      report.real_time_days =
          kmc::real_time_scale(kmc_engine.mc_time(), c_mc, kmc_cfg.temperature) /
          86400.0;
      report.final_vacancies = after;
    }
  });

  // Timing split and event totals come from the telemetry registry — the
  // per-rank gauges/counters written above replace the old in-run allreduces
  // (max over ranks = the critical path, exactly what the allreduce computed).
  const auto agg = session->metrics().aggregate();
  report.kmc_events = agg.counter("kmc.events") - events_before;
  report.md_seconds = agg.gauge_maximum("md.wall_seconds");
  report.kmc_seconds = agg.gauge_maximum("kmc.wall_seconds");
  report.md_compute_seconds = agg.gauge_maximum("md.compute_seconds");
  report.md_comm_seconds = agg.gauge_maximum("md.comm_seconds");
  report.kmc_compute_seconds = agg.gauge_maximum("kmc.compute_seconds");
  report.kmc_comm_seconds = agg.gauge_maximum("kmc.comm_seconds");
  return report;
}

}  // namespace mmd::core
