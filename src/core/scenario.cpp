#include "core/scenario.h"

#include <stdexcept>

namespace mmd::core {

kmc::GhostStrategy parse_ghost_strategy(const std::string& s) {
  if (s == "traditional") return kmc::GhostStrategy::Traditional;
  if (s == "on-demand") return kmc::GhostStrategy::OnDemandOneSided;
  if (s == "on-demand-2sided") return kmc::GhostStrategy::OnDemandTwoSided;
  throw std::invalid_argument("unknown kmc.strategy '" + s + "'");
}

SimulationConfig scenario_from_kv(const util::KeyValueConfig& kv) {
  SimulationConfig cfg;
  const auto box = static_cast<int>(kv.get_int("box", 10));
  cfg.md.nx = cfg.md.ny = cfg.md.nz = box;
  cfg.nranks = static_cast<int>(kv.get_int("ranks", 1));
  cfg.md.temperature = kv.get_double("temperature", 600.0);
  cfg.md.seed = static_cast<std::uint64_t>(kv.get_int("seed", 42));
  cfg.md_time_ps = kv.get_double("md.time_ps", 0.08);
  cfg.md.table_segments =
      static_cast<int>(kv.get_int("md.table_segments", 2000));
  cfg.pka_count = static_cast<int>(kv.get_int("pka.count", 1));
  cfg.pka_energy_ev = kv.get_double("pka.energy_ev", 60.0);
  cfg.kmc_cycles = static_cast<int>(kv.get_int("kmc.cycles", 50));
  cfg.kmc_dt_scale = kv.get_double("kmc.dt_scale", 1.0);
  cfg.kmc_table_segments =
      static_cast<int>(kv.get_int("kmc.table_segments", 2000));
  cfg.kmc_strategy =
      parse_ghost_strategy(kv.get_string("kmc.strategy", "on-demand"));
  cfg.kmc_incremental = kv.get_bool("kmc.incremental", true);
  cfg.kmc_debug_events = kv.get_bool("kmc.debug_events", false);
  cfg.solute_fraction = kv.get_double("solute", 0.0);
  const std::string accel = kv.get_string("accel", "reference");
  if (accel == "slave") {
    cfg.use_slave_force = true;
  } else if (accel != "reference") {
    throw std::invalid_argument("unknown accel '" + accel +
                                "' (expected reference | slave)");
  }
  if (cfg.use_slave_force && cfg.solute_fraction > 0.0) {
    throw std::invalid_argument(
        "accel=slave is single-species (pure Fe); alloy runs (solute > 0) "
        "must use accel=reference");
  }
  const std::string simd = kv.get_string("md.simd", "auto");
  if (simd == "off") {
    cfg.use_simd_force = false;
  } else if (simd != "auto") {
    throw std::invalid_argument("unknown md.simd '" + simd +
                                "' (expected auto | off)");
  }
  cfg.checkpoint_dir = kv.get_string("checkpoint.dir", "");
  cfg.checkpoint_every =
      static_cast<int>(kv.get_int("checkpoint.every", 0));
  cfg.comm_trace = kv.get_string("comm.trace", "");
  const std::string sample_mode = kv.get_string("sample.mode", "off");
  if (sample_mode == "scd") {
    cfg.sampling.mode = SamplingPolicy::Mode::Scd;
  } else if (sample_mode != "off") {
    throw std::invalid_argument("unknown sample.mode '" + sample_mode +
                                "' (expected off | scd)");
  }
  cfg.sampling.window = static_cast<int>(kv.get_int("sample.window", 5));
  cfg.sampling.stride = static_cast<int>(kv.get_int("sample.stride", 45));
  cfg.sampling.replicates =
      static_cast<int>(kv.get_int("sample.replicates", 8));
  cfg.sampling.validate();
  return cfg;
}

std::string scenario_defaults_text() {
  return
      "box           = 10      # unit cells per axis\n"
      "ranks         = 1       # in-process message-passing ranks\n"
      "temperature   = 600     # K\n"
      "seed          = 42\n"
      "md.time_ps    = 0.08    # cascade MD window\n"
      "md.table_segments = 2000\n"
      "pka.count     = 1\n"
      "pka.energy_ev = 60\n"
      "kmc.cycles    = 50\n"
      "kmc.strategy  = on-demand  # traditional | on-demand | on-demand-2sided\n"
      "kmc.dt_scale  = 1.0\n"
      "kmc.table_segments = 2000\n"
      "kmc.incremental = on    # incremental event tables | off = full-rescan oracle\n"
      "kmc.debug_events = off  # per-event stderr logging\n"
      "solute        = 0.0      # Fe-Cu alloy: Cu fraction\n"
      "accel         = reference  # reference | slave (slave-core force kernel)\n"
      "md.simd       = auto     # auto | off (AVX2 kernels in the slave force path)\n"
      "checkpoint.dir   =       # optional: directory for per-rank checkpoints\n"
      "checkpoint.every = 0     # KMC cycles between epochs (0 = off)\n"
      "comm.trace    =          # optional: comm flight-recorder trace file\n"
      "sample.mode   = off      # off | scd (sampled long-time mode, docs/SAMPLING.md)\n"
      "sample.window = 5        # detailed KMC cycles per measured window\n"
      "sample.stride = 45       # coarse cycles covered by each SCD warming stride\n"
      "sample.replicates = 8    # RNG-paired SCD replicates (CI from their variance)\n";
}

}  // namespace mmd::core
