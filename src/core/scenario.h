#pragma once

#include <string>

#include "core/simulation.h"
#include "util/key_value.h"

namespace mmd::core {

/// Parse the `kmc.strategy` scenario value; throws std::invalid_argument on
/// anything but "traditional" | "on-demand" | "on-demand-2sided".
kmc::GhostStrategy parse_ghost_strategy(const std::string& s);

/// Scenario-as-data: the declarative key=value schema shared by mmd_run
/// config files and campaign job specs, mapped onto a SimulationConfig.
///
///   box, ranks, temperature, seed,
///   md.time_ps, md.table_segments,
///   pka.count, pka.energy_ev,
///   kmc.cycles, kmc.strategy, kmc.dt_scale, kmc.table_segments,
///   kmc.incremental, kmc.debug_events,
///   solute, accel (reference | slave), md.simd (auto | off),
///   checkpoint.dir, checkpoint.every,
///   comm.trace (comm flight-recorder output file; campaigns write it
///   under the job's directory),
///   sample.mode (off | scd), sample.window, sample.stride,
///   sample.replicates (sampled long-time mode, docs/SAMPLING.md)
///
/// Every key consumed is marked known on `kv`, so callers can follow up with
/// kv.reject_unknown_keys() after reading their own driver-level keys (xyz,
/// job.priority, ...). Validates cross-key constraints that the plain
/// getters cannot: accel=slave with solute>0 is rejected because the
/// slave-core force kernel is single-species.
SimulationConfig scenario_from_kv(const util::KeyValueConfig& kv);

/// The schema above as `--print-defaults` text (one source of truth for the
/// mmd_run and mmd_campaign help output).
std::string scenario_defaults_text();

}  // namespace mmd::core
