#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/vec3.h"

namespace mmd::lat {

/// Classic Verlet neighbor list (the LAMMPS structure, paper §2.1.1): every
/// atom stores the indices of all atoms within cutoff + skin. Rebuilt when
/// atoms move more than skin/2. Memory grows with atoms * neighbors — the
/// baseline the lattice neighbor list is compared against in
/// `bench/tab_memory_footprint`.
class VerletNeighborList {
 public:
  VerletNeighborList(double cutoff, double skin) : cutoff_(cutoff), skin_(skin) {}

  /// Build from positions in a periodic orthorhombic box of extents `box`.
  void build(std::span<const util::Vec3> positions, const util::Vec3& box);

  std::size_t num_atoms() const { return starts_.empty() ? 0 : starts_.size() - 1; }

  std::span<const std::int32_t> neighbors(std::size_t i) const {
    return {neighbors_.data() + starts_[i],
            static_cast<std::size_t>(starts_[i + 1] - starts_[i])};
  }

  double cutoff() const { return cutoff_; }
  double skin() const { return skin_; }

  std::size_t memory_bytes() const {
    return neighbors_.capacity() * sizeof(std::int32_t) +
           starts_.capacity() * sizeof(std::int64_t);
  }

 private:
  double cutoff_;
  double skin_;
  std::vector<std::int32_t> neighbors_;
  std::vector<std::int64_t> starts_;
};

/// Linked-cell structure (the IMD / CoMD structure): the box is divided into
/// cells at least one cutoff wide; each cell keeps an intrusive list of its
/// atoms. Lower memory than a Verlet list but every query scans 27 cells and
/// the lists are rebuilt each step.
class LinkedCellList {
 public:
  explicit LinkedCellList(double cutoff) : cutoff_(cutoff) {}

  void build(std::span<const util::Vec3> positions, const util::Vec3& box);

  /// Visit every atom index j != i within the cutoff of atom i, passing the
  /// minimum-image displacement r_j - r_i. Each neighbor is reported once
  /// even when the cell grid is short enough that the 27-stencil wraps onto
  /// the same cell twice.
  template <typename F>
  void for_each_neighbor(std::size_t i, F&& f) const {
    const util::Vec3 ri = positions_[i];
    const int ci = cell_of(ri)[0], cj = cell_of(ri)[1], ck = cell_of(ri)[2];
    const double cut2 = cutoff_ * cutoff_;
    std::size_t cells[27];
    std::size_t ncells = 0;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const std::size_t c = cell_index(ci + dx, cj + dy, ck + dz);
          bool dup = false;
          for (std::size_t k = 0; k < ncells; ++k) {
            if (cells[k] == c) { dup = true; break; }
          }
          if (!dup) cells[ncells++] = c;
        }
      }
    }
    for (std::size_t k = 0; k < ncells; ++k) {
      for (std::int32_t j = head_[cells[k]]; j >= 0;
           j = next_[static_cast<std::size_t>(j)]) {
        if (static_cast<std::size_t>(j) == i) continue;
        util::Vec3 d = min_image(positions_[static_cast<std::size_t>(j)] - ri);
        if (d.norm2() <= cut2) f(static_cast<std::size_t>(j), d);
      }
    }
  }

  std::size_t memory_bytes() const {
    return head_.capacity() * sizeof(std::int32_t) +
           next_.capacity() * sizeof(std::int32_t) +
           positions_.capacity() * sizeof(util::Vec3);
  }

 private:
  std::array<int, 3> cell_of(const util::Vec3& r) const;
  std::size_t cell_index(int x, int y, int z) const;
  util::Vec3 min_image(util::Vec3 d) const;

  double cutoff_;
  util::Vec3 box_;
  int ncx_ = 0, ncy_ = 0, ncz_ = 0;
  std::vector<std::int32_t> head_;
  std::vector<std::int32_t> next_;
  std::vector<util::Vec3> positions_;
};

}  // namespace mmd::lat
