#pragma once

#include <cstdint>
#include <vector>

#include "lattice/atom.h"
#include "lattice/geometry.h"
#include "lattice/local_box.h"
#include "lattice/neighbor_offsets.h"

namespace mmd::lat {

/// Uniform read-only view of a particle (lattice atom or run-away atom)
/// passed to neighbor visitors.
struct ParticleView {
  const util::Vec3& r;
  Species type;
  double rho;
  std::int64_t id;
};

/// The paper's dedicated data structure for BCC metals (§2.1.1):
///
///  * Atom information lives in a flat array ranked by lattice position;
///    there is NO per-atom neighbor storage — neighbor indices are the same
///    constant flat-index deltas for every central site.
///  * An atom that leaves its lattice point ("run-away atom") moves to a
///    dynamically sized pool and is linked, via an intrusive singly linked
///    list, to its nearest lattice point. The vacated entry becomes a
///    vacancy tombstone (negative id) recording the vacancy position.
///  * Neighbor queries visit the lattice entries selected by the offset
///    table plus every run-away chain hanging off those entries.
///
/// Compared with Verlet neighbor lists (LAMMPS) and linked cells (IMD/CoMD),
/// this stores no neighbor indices and no cell occupancy lists, which is the
/// memory saving the paper's weak-scaling record relies on; see
/// `bench/tab_memory_footprint`.
///
/// Positions are kept in the *local frame*: ghost copies received across the
/// periodic boundary are shifted by +-L, so plain coordinate differences are
/// correct and no minimum-image logic appears in force kernels.
class LatticeNeighborList {
 public:
  LatticeNeighborList(const BccGeometry& geo, const LocalBox& box, double cutoff);

  const BccGeometry& geometry() const { return *geo_; }
  const LocalBox& box() const { return box_; }
  double cutoff() const { return cutoff_; }

  // --- entry access -------------------------------------------------------

  std::size_t size() const { return entries_.size(); }
  AtomEntry& entry(std::size_t i) { return entries_[i]; }
  const AtomEntry& entry(std::size_t i) const { return entries_[i]; }

  /// Global (wrapped) site rank of an entry.
  std::int64_t site_rank(std::size_t idx) const;

  /// Ideal lattice position of an entry in the local frame (ghost cells give
  /// coordinates outside the primary box, by design).
  util::Vec3 ideal_position(std::size_t idx) const;

  /// Entry index of the lattice site nearest to `r` (local frame). Returns
  /// SIZE_MAX if the nearest site falls outside this rank's storage.
  std::size_t nearest_entry(const util::Vec3& r) const;

  /// Entry index of the nearest OWNED lattice site (candidates clamped into
  /// the owned region). Run-away atoms are only ever chained to owned hosts:
  /// a ghost-hosted chain node would be dropped by the next clear_ghosts().
  std::size_t nearest_owned_entry(const util::Vec3& r) const;

  /// Populate every storage entry (owned and ghost) with a perfect crystal.
  void fill_perfect(Species s);

  /// Mark all ghost entries unset and clear their run-away chains.
  void clear_ghosts();

  /// Indices of all owned entries, in rank order (cached).
  const std::vector<std::size_t>& owned_indices() const { return owned_; }

  /// Owned entries whose cell lies at least `halo` cells from every
  /// subdomain face: their neighbor stencils never read ghost storage, so
  /// their forces can be computed while a halo exchange is still in flight.
  /// Disjoint from owned_boundary_indices(); the union (in rank order) is
  /// owned_indices(). Empty when the subdomain is thinner than two halos.
  const std::vector<std::size_t>& owned_interior_indices() const {
    return interior_;
  }

  /// Owned entries within `halo` cells of a face — the complement shell,
  /// whose stencils reach ghost entries (compute only after the exchange).
  const std::vector<std::size_t>& owned_boundary_indices() const {
    return boundary_;
  }

  bool is_owned(std::size_t idx) const { return box_.owns(box_.coord_of(idx)); }

  // --- neighbor iteration --------------------------------------------------

  const std::vector<SiteOffset>& offsets(int sub) const { return offsets_[sub]; }
  const std::vector<std::int64_t>& deltas(int sub) const { return deltas_[sub]; }

  /// Visit every particle within the cutoff of the lattice entry at `idx`:
  /// neighbor lattice atoms, run-away atoms chained to neighbor lattice
  /// points, and run-aways chained to `idx` itself. Vacancy/unset entries are
  /// not reported. The central entry itself is excluded by id.
  template <typename F>
  void for_each_neighbor_of_entry(std::size_t idx, F&& f) const {
    const AtomEntry& center = entries_[idx];
    visit_region(idx, center.id, f);
  }

  /// Same, for a run-away atom: it sees exactly what its host lattice point
  /// sees (paper: "it checks the same neighbor atoms as the nearest lattice
  /// point it is linked to"), plus the host entry itself, minus itself.
  template <typename F>
  void for_each_neighbor_of_runaway(std::int32_t ri, std::size_t host_idx,
                                    F&& f) const {
    const RunawayAtom& self = runaways_[static_cast<std::size_t>(ri)];
    const AtomEntry& host = entries_[host_idx];
    if (host.is_atom()) {
      f(ParticleView{host.r, host.type, host.rho, host.id});
    }
    visit_region(host_idx, self.id, f);
  }

  // --- run-away management --------------------------------------------------

  RunawayAtom& runaway(std::int32_t i) { return runaways_[static_cast<std::size_t>(i)]; }
  const RunawayAtom& runaway(std::int32_t i) const {
    return runaways_[static_cast<std::size_t>(i)];
  }

  /// Allocate a run-away node and push it onto the chain of `host_idx`.
  std::int32_t add_runaway(const RunawayAtom& a, std::size_t host_idx);

  /// Unlink node `ri` from the chain of `host_idx` and return it to the pool.
  void remove_runaway(std::int32_t ri, std::size_t host_idx);

  /// Convert the atom at `idx` into a vacancy tombstone and move the atom to
  /// the run-away pool, linked to the lattice point nearest its position.
  /// If that lattice point is not owned by this rank, the atom is appended to
  /// `emigrants` instead (or, when emigrants is null, linked to the nearest
  /// owned site). Returns the run-away node index, or kNoRunaway if the atom
  /// emigrated.
  std::int32_t detach(std::size_t idx,
                      std::vector<RunawayAtom>* emigrants = nullptr);

  /// Re-evaluate every run-away hosted in the owned region: re-link atoms
  /// whose nearest lattice point changed, and let a run-away that reached a
  /// vacancy re-occupy it (the vacancy record "is overlapped by the run-away
  /// atom"). Run-aways whose host left this rank's storage are returned as
  /// emigrants for the caller (ghost exchange) to route. Returns the number
  /// of vacancy re-occupations.
  int rehome_runaways(std::vector<RunawayAtom>* emigrants);

  /// Maximum distance [A] at which a run-away atom re-occupies a vacancy at
  /// its nearest lattice point. Must be below the MD detach threshold, or a
  /// freshly detached atom would immediately re-attach.
  double reattach_threshold() const { return reattach_threshold_; }
  void set_reattach_threshold(double t) { reattach_threshold_ = t; }

  /// Visit every live run-away chained to an owned entry as (node index,
  /// host entry index).
  template <typename F>
  void for_each_owned_runaway(F&& f) const {
    for (std::size_t idx : owned_) {
      for (std::int32_t ri = entries_[idx].runaway_head;
           ri != AtomEntry::kNoRunaway;) {
        const std::int32_t next = runaways_[static_cast<std::size_t>(ri)].next;
        f(ri, idx);
        ri = next;
      }
    }
  }

  // --- statistics -----------------------------------------------------------

  std::size_t count_owned_atoms() const;
  std::size_t count_owned_vacancies() const;
  /// Run-aways chained to OWNED entries (ghost chains hold copies of other
  /// ranks' — or, with periodic self-neighboring, this rank's own — atoms
  /// and must not be double counted).
  std::size_t count_owned_runaways() const;
  /// All pool nodes, including ghost-image copies.
  std::size_t count_live_runaways() const { return runaways_.size() - free_.size(); }

  /// Bytes of heap memory held by this structure (entries + run-away pool +
  /// offset tables). Baseline structures implement the same query for the
  /// memory-footprint comparison.
  std::size_t memory_bytes() const;

 private:
  template <typename F>
  void visit_region(std::size_t idx, std::int64_t self_id, F&& f) const {
    const int sub = static_cast<int>(idx & 1);
    for (const std::int64_t d : deltas_[sub]) {
      const std::size_t n = idx + static_cast<std::size_t>(d);
      const AtomEntry& e = entries_[n];
      if (e.is_atom() && e.id != self_id) {
        f(ParticleView{e.r, e.type, e.rho, e.id});
      }
      visit_chain(e.runaway_head, self_id, f);
    }
    visit_chain(entries_[idx].runaway_head, self_id, f);
  }

  template <typename F>
  void visit_chain(std::int32_t head, std::int64_t self_id, F&& f) const {
    for (std::int32_t ri = head; ri != AtomEntry::kNoRunaway;
         ri = runaways_[static_cast<std::size_t>(ri)].next) {
      const RunawayAtom& a = runaways_[static_cast<std::size_t>(ri)];
      if (a.id != self_id) f(ParticleView{a.r, a.type, a.rho, a.id});
    }
  }

  const BccGeometry* geo_;
  LocalBox box_;
  double cutoff_;
  std::vector<AtomEntry> entries_;
  std::vector<RunawayAtom> runaways_;
  std::vector<std::int32_t> free_;
  std::vector<std::size_t> owned_;
  std::vector<std::size_t> interior_;  ///< owned, stencil ghost-free
  std::vector<std::size_t> boundary_;  ///< owned, stencil reads ghosts
  std::vector<SiteOffset> offsets_[2];
  std::vector<std::int64_t> deltas_[2];
  double reattach_threshold_ = 0.8;
};

}  // namespace mmd::lat
