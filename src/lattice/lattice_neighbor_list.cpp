#include "lattice/lattice_neighbor_list.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace mmd::lat {

LatticeNeighborList::LatticeNeighborList(const BccGeometry& geo,
                                         const LocalBox& box, double cutoff)
    : geo_(&geo), box_(box), cutoff_(cutoff) {
  const int halo_needed = required_halo_cells(geo.lattice_constant(), cutoff);
  if (box.halo < halo_needed) {
    throw std::invalid_argument(
        "LatticeNeighborList: halo too small for the cutoff radius");
  }
  for (int sub = 0; sub <= 1; ++sub) {
    offsets_[sub] = bcc_neighbor_offsets(geo.lattice_constant(), cutoff, sub);
    deltas_[sub].reserve(offsets_[sub].size());
    for (const auto& o : offsets_[sub]) {
      deltas_[sub].push_back(box.flat_delta(o.dx, o.dy, o.dz, o.to_sub - sub));
    }
  }
  entries_.resize(box.num_entries());
  owned_.reserve(box.num_owned_sites());
  const CellRegion interior = interior_region(box_, box_.halo);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const LocalCoord c = box_.coord_of(i);
    if (!box_.owns(c)) continue;
    owned_.push_back(i);
    (interior.contains(c) ? interior_ : boundary_).push_back(i);
  }
}

std::int64_t LatticeNeighborList::site_rank(std::size_t idx) const {
  const LocalCoord c = box_.coord_of(idx);
  const SiteCoord g =
      geo_->wrap({c.x + box_.ox, c.y + box_.oy, c.z + box_.oz, c.sub});
  return geo_->site_id(g);
}

util::Vec3 LatticeNeighborList::ideal_position(std::size_t idx) const {
  const LocalCoord c = box_.coord_of(idx);
  const double a = geo_->lattice_constant();
  const double half = 0.5 * c.sub;
  return {(c.x + box_.ox + half) * a, (c.y + box_.oy + half) * a,
          (c.z + box_.oz + half) * a};
}

std::size_t LatticeNeighborList::nearest_entry(const util::Vec3& r) const {
  const double a = geo_->lattice_constant();
  const double sx = r.x / a - box_.ox;
  const double sy = r.y / a - box_.oy;
  const double sz = r.z / a - box_.oz;
  // Candidate on each sublattice in local cell coordinates.
  LocalCoord corner{static_cast<int>(std::lround(sx)),
                    static_cast<int>(std::lround(sy)),
                    static_cast<int>(std::lround(sz)), 0};
  LocalCoord center{static_cast<int>(std::lround(sx - 0.5)),
                    static_cast<int>(std::lround(sy - 0.5)),
                    static_cast<int>(std::lround(sz - 0.5)), 1};
  auto dist2 = [&](const LocalCoord& c) {
    const double half = 0.5 * c.sub;
    const util::Vec3 p{(c.x + box_.ox + half) * a, (c.y + box_.oy + half) * a,
                       (c.z + box_.oz + half) * a};
    return (p - r).norm2();
  };
  const LocalCoord best = dist2(corner) <= dist2(center) ? corner : center;
  if (!box_.in_storage(best)) return std::numeric_limits<std::size_t>::max();
  return box_.entry_index(best);
}

std::size_t LatticeNeighborList::nearest_owned_entry(const util::Vec3& r) const {
  const double a = geo_->lattice_constant();
  const double sx = r.x / a - box_.ox;
  const double sy = r.y / a - box_.oy;
  const double sz = r.z / a - box_.oz;
  auto clamp_owned = [](int v, int len) { return std::clamp(v, 0, len - 1); };
  LocalCoord corner{clamp_owned(static_cast<int>(std::lround(sx)), box_.lx),
                    clamp_owned(static_cast<int>(std::lround(sy)), box_.ly),
                    clamp_owned(static_cast<int>(std::lround(sz)), box_.lz), 0};
  LocalCoord center{clamp_owned(static_cast<int>(std::lround(sx - 0.5)), box_.lx),
                    clamp_owned(static_cast<int>(std::lround(sy - 0.5)), box_.ly),
                    clamp_owned(static_cast<int>(std::lround(sz - 0.5)), box_.lz), 1};
  auto dist2 = [&](const LocalCoord& c) {
    const double half = 0.5 * c.sub;
    const util::Vec3 p{(c.x + box_.ox + half) * a, (c.y + box_.oy + half) * a,
                       (c.z + box_.oz + half) * a};
    return (p - r).norm2();
  };
  return box_.entry_index(dist2(corner) <= dist2(center) ? corner : center);
}

void LatticeNeighborList::fill_perfect(Species s) {
  runaways_.clear();
  free_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    AtomEntry& e = entries_[i];
    e = AtomEntry{};
    e.id = site_rank(i);
    e.type = s;
    e.r = ideal_position(i);
  }
}

void LatticeNeighborList::clear_ghosts() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!box_.owns(box_.coord_of(i))) {
      // Drop the ghost chain nodes back into the pool, then reset the entry.
      for (std::int32_t ri = entries_[i].runaway_head;
           ri != AtomEntry::kNoRunaway;) {
        const std::int32_t next = runaways_[static_cast<std::size_t>(ri)].next;
        free_.push_back(ri);
        ri = next;
      }
      entries_[i] = AtomEntry{};
    }
  }
}

std::int32_t LatticeNeighborList::add_runaway(const RunawayAtom& a,
                                              std::size_t host_idx) {
  std::int32_t ri;
  if (!free_.empty()) {
    ri = free_.back();
    free_.pop_back();
    runaways_[static_cast<std::size_t>(ri)] = a;
  } else {
    ri = static_cast<std::int32_t>(runaways_.size());
    runaways_.push_back(a);
  }
  runaways_[static_cast<std::size_t>(ri)].next = entries_[host_idx].runaway_head;
  entries_[host_idx].runaway_head = ri;
  return ri;
}

void LatticeNeighborList::remove_runaway(std::int32_t ri, std::size_t host_idx) {
  std::int32_t* link = &entries_[host_idx].runaway_head;
  while (*link != AtomEntry::kNoRunaway) {
    if (*link == ri) {
      *link = runaways_[static_cast<std::size_t>(ri)].next;
      free_.push_back(ri);
      return;
    }
    link = &runaways_[static_cast<std::size_t>(*link)].next;
  }
  throw std::logic_error("remove_runaway: node not found in host chain");
}

std::int32_t LatticeNeighborList::detach(std::size_t idx,
                                         std::vector<RunawayAtom>* emigrants) {
  AtomEntry& e = entries_[idx];
  if (!e.is_atom()) {
    throw std::logic_error("detach: entry does not hold an atom");
  }
  RunawayAtom a;
  a.r = e.r;
  a.v = e.v;
  a.f = e.f;
  a.rho = e.rho;
  a.id = e.id;
  a.type = e.type;
  // The vacated entry becomes the vacancy record: negative id, position reset
  // to the lattice point (the "coordinates of the vacancy", paper Fig. 3).
  e.id = AtomEntry::vacancy_id(site_rank(idx));
  e.r = ideal_position(idx);
  e.v = {};
  e.f = {};
  e.rho = 0.0;
  const std::size_t host = nearest_entry(a.r);
  if (host == std::numeric_limits<std::size_t>::max() ||
      !box_.owns(box_.coord_of(host))) {
    if (emigrants != nullptr) {
      emigrants->push_back(a);
      return AtomEntry::kNoRunaway;
    }
    return add_runaway(a, nearest_owned_entry(a.r));
  }
  return add_runaway(a, host);
}

int LatticeNeighborList::rehome_runaways(std::vector<RunawayAtom>* emigrants) {
  int reoccupied = 0;
  const double thr2 = reattach_threshold_ * reattach_threshold_;
  for (std::size_t idx : owned_) {
    std::int32_t* link = &entries_[idx].runaway_head;
    while (*link != AtomEntry::kNoRunaway) {
      const std::int32_t ri = *link;
      RunawayAtom& a = runaways_[static_cast<std::size_t>(ri)];
      const std::size_t host = nearest_entry(a.r);
      if (host == std::numeric_limits<std::size_t>::max() ||
          !box_.owns(box_.coord_of(host))) {
        // Nearest point left this rank's subdomain: the atom now belongs to
        // a neighbor rank (even if that point is a vacancy — the owner
        // handles the re-occupation).
        *link = a.next;
        if (emigrants) emigrants->push_back(a);
        free_.push_back(ri);
        continue;
      }
      AtomEntry& h = entries_[host];
      // Re-occupation: the vacancy record is overlapped by the atom — but
      // only when the atom has genuinely settled back onto the lattice point
      // (hysteresis below the MD detach threshold).
      const bool occupy = h.is_vacancy() &&
                          (a.r - ideal_position(host)).norm2() <= thr2;
      if (host == idx && !occupy) {
        link = &a.next;
        continue;
      }
      *link = a.next;
      if (occupy) {
        h.id = a.id;
        h.type = a.type;
        h.r = a.r;
        h.v = a.v;
        h.f = a.f;
        h.rho = a.rho;
        free_.push_back(ri);
        ++reoccupied;
      } else {
        a.next = h.runaway_head;
        h.runaway_head = ri;
      }
    }
  }
  return reoccupied;
}

std::size_t LatticeNeighborList::count_owned_atoms() const {
  std::size_t n = 0;
  for (std::size_t idx : owned_) {
    if (entries_[idx].is_atom()) ++n;
  }
  return n + count_owned_runaways();
}

std::size_t LatticeNeighborList::count_owned_runaways() const {
  std::size_t n = 0;
  for_each_owned_runaway([&](std::int32_t, std::size_t) { ++n; });
  return n;
}

std::size_t LatticeNeighborList::count_owned_vacancies() const {
  std::size_t n = 0;
  for (std::size_t idx : owned_) {
    if (entries_[idx].is_vacancy()) ++n;
  }
  return n;
}

std::size_t LatticeNeighborList::memory_bytes() const {
  std::size_t b = entries_.capacity() * sizeof(AtomEntry);
  b += runaways_.capacity() * sizeof(RunawayAtom);
  b += free_.capacity() * sizeof(std::int32_t);
  b += owned_.capacity() * sizeof(std::size_t);
  for (int sub = 0; sub <= 1; ++sub) {
    b += offsets_[sub].capacity() * sizeof(SiteOffset);
    b += deltas_[sub].capacity() * sizeof(std::int64_t);
  }
  return b;
}

}  // namespace mmd::lat
