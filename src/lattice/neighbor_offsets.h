#pragma once

#include <cstdint>
#include <vector>

#include "util/vec3.h"

namespace mmd::lat {

/// One entry of the constant-offset neighbor table: the relative cell
/// displacement and sublattice change from a central site to a neighbor site
/// within the cutoff radius. Because every lattice point sees the same
/// pattern, these offsets are computed once and reused for all central atoms
/// — this is what makes the lattice neighbor list free of per-atom neighbor
/// storage (paper §2.1.1: "the offsets of the neighbor atoms relative to the
/// central atom are the same").
struct SiteOffset {
  int dx = 0;
  int dy = 0;
  int dz = 0;
  int to_sub = 0;       ///< sublattice of the neighbor
  double dist2 = 0.0;   ///< squared ideal-lattice distance [A^2]
  util::Vec3 disp;      ///< ideal displacement vector [A]
};

/// Compute all neighbor offsets within `cutoff` for a central site on
/// sublattice `from_sub` of a BCC lattice with constant `a`. The central site
/// itself is excluded. Offsets are sorted by distance, so the first 8 entries
/// are the first-nearest-neighbor shell used by the KMC vacancy events.
std::vector<SiteOffset> bcc_neighbor_offsets(double a, double cutoff, int from_sub);

/// Number of lattice cells of halo needed so that every neighbor offset of an
/// owned cell lands inside the stored region: max |d{x,y,z}| over both
/// sublattices' offset tables.
int required_halo_cells(double a, double cutoff);

}  // namespace mmd::lat
