#include "lattice/verlet_list.h"

#include <cmath>
#include <stdexcept>

namespace mmd::lat {

void VerletNeighborList::build(std::span<const util::Vec3> positions,
                               const util::Vec3& box) {
  // Bin with a linked-cell pass, then record all pairs within cutoff + skin.
  LinkedCellList cells(cutoff_ + skin_);
  cells.build(positions, box);
  const double r2 = (cutoff_ + skin_) * (cutoff_ + skin_);
  neighbors_.clear();
  starts_.assign(1, 0);
  starts_.reserve(positions.size() + 1);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    cells.for_each_neighbor(i, [&](std::size_t j, const util::Vec3& d) {
      if (d.norm2() <= r2) neighbors_.push_back(static_cast<std::int32_t>(j));
    });
    starts_.push_back(static_cast<std::int64_t>(neighbors_.size()));
  }
}

void LinkedCellList::build(std::span<const util::Vec3> positions,
                           const util::Vec3& box) {
  if (box.x < cutoff_ || box.y < cutoff_ || box.z < cutoff_) {
    throw std::invalid_argument("LinkedCellList: box smaller than cutoff");
  }
  box_ = box;
  ncx_ = std::max(1, static_cast<int>(box.x / cutoff_));
  ncy_ = std::max(1, static_cast<int>(box.y / cutoff_));
  ncz_ = std::max(1, static_cast<int>(box.z / cutoff_));
  positions_.assign(positions.begin(), positions.end());
  head_.assign(static_cast<std::size_t>(ncx_) * ncy_ * ncz_, -1);
  next_.assign(positions.size(), -1);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const auto c = cell_of(positions_[i]);
    const std::size_t ci = cell_index(c[0], c[1], c[2]);
    next_[i] = head_[ci];
    head_[ci] = static_cast<std::int32_t>(i);
  }
}

std::array<int, 3> LinkedCellList::cell_of(const util::Vec3& r) const {
  auto clampc = [](double x, double len, int n) {
    int c = static_cast<int>(std::floor(x / len * n));
    c %= n;
    return c < 0 ? c + n : c;
  };
  return {clampc(r.x, box_.x, ncx_), clampc(r.y, box_.y, ncy_),
          clampc(r.z, box_.z, ncz_)};
}

std::size_t LinkedCellList::cell_index(int x, int y, int z) const {
  auto mod = [](int v, int n) {
    const int m = v % n;
    return m < 0 ? m + n : m;
  };
  return (static_cast<std::size_t>(mod(z, ncz_)) * ncy_ + mod(y, ncy_)) * ncx_ +
         mod(x, ncx_);
}

util::Vec3 LinkedCellList::min_image(util::Vec3 d) const {
  d.x -= box_.x * std::nearbyint(d.x / box_.x);
  d.y -= box_.y * std::nearbyint(d.y / box_.y);
  d.z -= box_.z * std::nearbyint(d.z / box_.z);
  return d;
}

}  // namespace mmd::lat
