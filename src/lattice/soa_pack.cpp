#include "lattice/soa_pack.h"

#include "lattice/lattice_neighbor_list.h"

namespace mmd::lat {

void SoaPlanes::reset(const LocalBox& box) {
  num_cells_ = box.num_cells();
  const std::size_t n = 2 * num_cells_;
  x_.resize(n);
  y_.resize(n);
  z_.resize(n);
  fprime_.resize(n);
  id_.resize(n);
}

void SoaPlanes::pack_positions(const LatticeNeighborList& lnl) {
  // Iterate in slot order (sub-major) so every plane is written as two
  // contiguous streaming passes instead of a strided scatter.
  for (std::size_t sub = 0; sub < 2; ++sub) {
    const std::size_t base = sub * num_cells_;
    for (std::size_t cell = 0; cell < num_cells_; ++cell) {
      const AtomEntry& e = lnl.entry(2 * cell + sub);
      x_[base + cell] = e.r.x;
      y_[base + cell] = e.r.y;
      z_[base + cell] = e.r.z;
      id_[base + cell] = e.is_atom() ? static_cast<double>(e.id) : -1.0;
    }
  }
}

}  // namespace mmd::lat
