#include "lattice/geometry.h"

#include <cmath>
#include <stdexcept>

namespace mmd::lat {

BccGeometry::BccGeometry(int nx, int ny, int nz, double a)
    : nx_(nx), ny_(ny), nz_(nz), a_(a) {
  if (nx <= 0 || ny <= 0 || nz <= 0 || a <= 0.0) {
    throw std::invalid_argument("BccGeometry: dimensions and lattice constant must be positive");
  }
}

SiteCoord BccGeometry::site_coord(std::int64_t id) const {
  SiteCoord c;
  c.sub = static_cast<int>(id & 1);
  std::int64_t cell = id >> 1;
  c.x = static_cast<int>(cell % nx_);
  cell /= nx_;
  c.y = static_cast<int>(cell % ny_);
  c.z = static_cast<int>(cell / ny_);
  return c;
}

SiteCoord BccGeometry::wrap(SiteCoord c) const {
  auto mod = [](int v, int n) {
    const int m = v % n;
    return m < 0 ? m + n : m;
  };
  c.x = mod(c.x, nx_);
  c.y = mod(c.y, ny_);
  c.z = mod(c.z, nz_);
  return c;
}

SiteCoord BccGeometry::nearest_site(const util::Vec3& r) const {
  // Candidate on each sublattice, then pick the closer one. Corner sites sit
  // at integer multiples of a; center sites at half-integer multiples.
  const util::Vec3 s = r / a_;
  SiteCoord corner{static_cast<int>(std::lround(s.x)),
                   static_cast<int>(std::lround(s.y)),
                   static_cast<int>(std::lround(s.z)), 0};
  SiteCoord center{static_cast<int>(std::lround(s.x - 0.5)),
                   static_cast<int>(std::lround(s.y - 0.5)),
                   static_cast<int>(std::lround(s.z - 0.5)), 1};
  const double d_corner = min_image(position(corner), r).norm2();
  const double d_center = min_image(position(center), r).norm2();
  return wrap(d_corner <= d_center ? corner : center);
}

util::Vec3 BccGeometry::min_image(const util::Vec3& a, const util::Vec3& b) const {
  util::Vec3 d = b - a;
  const util::Vec3 box = box_length();
  d.x -= box.x * std::nearbyint(d.x / box.x);
  d.y -= box.y * std::nearbyint(d.y / box.y);
  d.z -= box.z * std::nearbyint(d.z / box.z);
  return d;
}

}  // namespace mmd::lat
