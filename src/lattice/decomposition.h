#pragma once

#include <array>
#include <vector>

#include "lattice/geometry.h"
#include "lattice/local_box.h"

namespace mmd::lat {

/// Standard 3D domain decomposition of the periodic simulation box across
/// ranks (paper §2: "we use the standard domain decomposition to equally
/// partition the simulation box").
///
/// The rank grid (px, py, pz) is chosen to minimize subdomain surface area.
/// Each subdomain must be at least `halo` cells wide in every axis so that
/// the three-phase ghost exchange only ever talks to face neighbors.
class DomainDecomposition {
 public:
  DomainDecomposition(const BccGeometry& geo, int nranks, int halo);

  int nranks() const { return px_ * py_ * pz_; }
  std::array<int, 3> grid() const { return {px_, py_, pz_}; }

  std::array<int, 3> coords_of(int rank) const;
  int rank_of(int rx, int ry, int rz) const;

  /// Owned cell box (with halo metadata) of a rank.
  LocalBox local_box(int rank) const;

  /// Rank of the periodic face neighbor along `axis` (0..2) in direction
  /// `dir` (-1 or +1).
  int neighbor(int rank, int axis, int dir) const;

  /// Rank owning a global (wrapped, in-box) cell coordinate.
  int rank_of_cell(int gx, int gy, int gz) const;

  /// The up-to-26 distinct ranks adjacent to `rank` (excluding itself unless
  /// the grid wraps onto it), sorted ascending.
  std::vector<int> neighbor_ranks(int rank) const;

  /// Choose a near-cubic factorization of n into 3 factors, each factor not
  /// exceeding the number of cells available on that axis divided by halo.
  static std::array<int, 3> choose_grid(int n, int nx, int ny, int nz, int halo);

 private:
  static std::pair<int, int> split(int ncells, int nparts, int part);

  const BccGeometry* geo_;
  int halo_;
  int px_, py_, pz_;
};

}  // namespace mmd::lat
