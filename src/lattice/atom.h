#pragma once

#include <cstdint>

#include "util/vec3.h"

namespace mmd::lat {

/// Chemical species. Fe is the paper's primary material; Cu enables the
/// Fe-Cu alloy configuration of §2.1.2.
enum class Species : std::int16_t { Fe = 0, Cu = 1 };

/// State of one lattice-point entry in the lattice neighbor list.
///
/// The paper stores atom information "sequentially in an array in the order
/// of the atoms' ranks" and marks a vacancy by flipping the ID negative
/// (§2.1.1, Fig. 3). We encode:
///   id >= 0            : atom with global site rank `id`
///   id == kVacancy(g)  : vacancy at global site rank g (id = -g - 1)
///   id == kUnset       : ghost entry not yet filled by an exchange
struct AtomEntry {
  util::Vec3 r;          ///< position [A]
  util::Vec3 v;          ///< velocity [A/ps]
  util::Vec3 f;          ///< force [eV/A]
  double rho = 0.0;      ///< accumulated electron density at this atom
  std::int64_t id = kUnset;
  std::int32_t runaway_head = kNoRunaway;  ///< head of linked run-away chain
  Species type = Species::Fe;
  std::int16_t pad = 0;

  static constexpr std::int64_t kUnset = INT64_MIN;
  static constexpr std::int32_t kNoRunaway = -1;

  static constexpr std::int64_t vacancy_id(std::int64_t site_rank) {
    return -site_rank - 1;
  }
  static constexpr std::int64_t vacancy_site(std::int64_t id) { return -id - 1; }

  bool is_atom() const { return id >= 0; }
  bool is_vacancy() const { return id < 0 && id != kUnset; }
  bool is_unset() const { return id == kUnset; }
};

/// A run-away atom: an atom that left its lattice point. It is stored in a
/// pool and linked (via `next`) into the chain of its nearest lattice point,
/// the paper's linked-list improvement over the flat array of [Hu 2017].
struct RunawayAtom {
  util::Vec3 r;
  util::Vec3 v;
  util::Vec3 f;
  double rho = 0.0;
  std::int64_t id = 0;  ///< original global site rank of the atom
  Species type = Species::Fe;
  std::int16_t pad = 0;
  std::int32_t next = AtomEntry::kNoRunaway;  ///< next node in host chain
};

}  // namespace mmd::lat
