#pragma once

#include <cstddef>
#include <vector>

#include "lattice/local_box.h"
#include "util/vec3.h"

namespace mmd::lat {

class LatticeNeighborList;

/// Sublattice-deinterleaved SoA staging planes for the slave-core force path.
///
/// The lattice neighbor list stores entries AoS and sublattice-interleaved
/// (entry index = 2*cell + sub). For SIMD the force kernel wants the
/// opposite: one PLANE per field (x, y, z, F'(rho), id) laid out sub-major —
///
///     plane[sub * num_cells + cell]
///
/// so that a row of cells of ONE sublattice is a contiguous run of doubles.
/// That is the neighbor-contiguous packing of the cell-decomposition data
/// sorting literature (physics/0311055) applied to the fixed BCC stencil:
/// every neighbor offset of a 4-atom SIMD group of central atoms becomes one
/// unit-stride unaligned vector load, and the block-window DMA stays a run
/// per (plane, sub, row).
///
/// Field semantics match the old AoS Packed record: `id` is the global atom
/// id as a double, negative (-1.0) for vacancies/unset entries — the packed
/// is-atom mask; `fprime` is F'(rho) for force passes and 0 in the rho pass.
class SoaPlanes {
 public:
  /// Resize the planes for one rank's storage (owned + ghost cells).
  void reset(const LocalBox& box);

  std::size_t size() const { return 2 * num_cells_; }
  std::size_t cells() const { return num_cells_; }
  bool empty() const { return num_cells_ == 0; }

  /// Plane slot of a lattice entry index: cell + sub*num_cells.
  std::size_t slot(std::size_t entry_idx) const {
    return (entry_idx >> 1) + (entry_idx & 1) * num_cells_;
  }
  /// Inverse of slot() — entry index whose fields live at plane slot `s`.
  std::size_t entry_of(std::size_t s) const {
    const std::size_t sub = s >= num_cells_ ? 1 : 0;
    return 2 * (s - sub * num_cells_) + sub;
  }

  double* x() { return x_.data(); }
  double* y() { return y_.data(); }
  double* z() { return z_.data(); }
  double* fprime() { return fprime_.data(); }
  double* id() { return id_.data(); }
  const double* x() const { return x_.data(); }
  const double* y() const { return y_.data(); }
  const double* z() const { return z_.data(); }
  const double* fprime() const { return fprime_.data(); }
  const double* id() const { return id_.data(); }

  /// Pack position + id of EVERY entry (owned and ghost, atoms, vacancies
  /// and unset ghosts) into the planes; fprime is left untouched — the force
  /// path owns that field (it needs the embedding table).
  void pack_positions(const LatticeNeighborList& lnl);

  /// Round-trip accessors (tests and debugging): the packed fields of one
  /// entry, read back through the slot mapping.
  util::Vec3 position(std::size_t entry_idx) const {
    const std::size_t s = slot(entry_idx);
    return {x_[s], y_[s], z_[s]};
  }
  double packed_id(std::size_t entry_idx) const { return id_[slot(entry_idx)]; }
  double packed_fprime(std::size_t entry_idx) const {
    return fprime_[slot(entry_idx)];
  }

 private:
  std::vector<double> x_, y_, z_, fprime_, id_;
  std::size_t num_cells_ = 0;
};

}  // namespace mmd::lat
