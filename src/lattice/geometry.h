#pragma once

#include <cstdint>

#include "util/vec3.h"

namespace mmd::lat {

/// Integer coordinates of one BCC lattice site: unit cell (x, y, z) plus the
/// sublattice index `sub` (0 = cube corner, 1 = body center, paper Fig. 1).
struct SiteCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  int sub = 0;

  friend bool operator==(const SiteCoord&, const SiteCoord&) = default;
};

/// Geometry of a periodic BCC simulation box of nx*ny*nz unit cells with
/// lattice constant `a`. Provides the global site-id ranking used by the
/// lattice neighbor list: sites are ranked in the order of their spatial
/// distribution (paper §2.1.1), i.e. id = 2*((z*ny + y)*nx + x) + sub.
class BccGeometry {
 public:
  BccGeometry(int nx, int ny, int nz, double a);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  double lattice_constant() const { return a_; }

  /// Two sites per unit cell.
  std::int64_t num_sites() const {
    return 2ll * nx_ * static_cast<std::int64_t>(ny_) * nz_;
  }

  util::Vec3 box_length() const { return {nx_ * a_, ny_ * a_, nz_ * a_}; }

  /// Global rank of a site (requires in-box coordinates; wrap() first if
  /// needed).
  std::int64_t site_id(const SiteCoord& c) const {
    return 2 * ((static_cast<std::int64_t>(c.z) * ny_ + c.y) * nx_ + c.x) + c.sub;
  }

  SiteCoord site_coord(std::int64_t id) const;

  /// Ideal (zero-temperature) position of a site.
  util::Vec3 position(const SiteCoord& c) const {
    const double half = 0.5 * c.sub;
    return {(c.x + half) * a_, (c.y + half) * a_, (c.z + half) * a_};
  }

  /// Apply periodic boundary conditions to integer cell coordinates.
  SiteCoord wrap(SiteCoord c) const;

  /// Whether coordinates are inside the primary box (no wrap needed).
  bool in_box(const SiteCoord& c) const {
    return c.x >= 0 && c.x < nx_ && c.y >= 0 && c.y < ny_ && c.z >= 0 &&
           c.z < nz_ && (c.sub == 0 || c.sub == 1);
  }

  /// Nearest lattice site to an arbitrary position (used to link run-away
  /// atoms to their closest lattice point, paper §2.1.1). The returned
  /// coordinates are wrapped into the box.
  SiteCoord nearest_site(const util::Vec3& r) const;

  /// Minimum-image displacement b - a under periodic boundaries.
  util::Vec3 min_image(const util::Vec3& a, const util::Vec3& b) const;

 private:
  int nx_, ny_, nz_;
  double a_;
};

}  // namespace mmd::lat
