#include "lattice/decomposition.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mmd::lat {

DomainDecomposition::DomainDecomposition(const BccGeometry& geo, int nranks,
                                         int halo)
    : geo_(&geo), halo_(halo) {
  if (nranks <= 0) throw std::invalid_argument("DomainDecomposition: nranks must be positive");
  if (halo < 0) throw std::invalid_argument("DomainDecomposition: halo must be non-negative");
  const auto g = choose_grid(nranks, geo.nx(), geo.ny(), geo.nz(), halo);
  px_ = g[0];
  py_ = g[1];
  pz_ = g[2];
  if (px_ * py_ * pz_ != nranks) {
    throw std::invalid_argument(
        "DomainDecomposition: no factorization of nranks fits the box with the "
        "required halo width");
  }
}

std::array<int, 3> DomainDecomposition::coords_of(int rank) const {
  return {rank % px_, (rank / px_) % py_, rank / (px_ * py_)};
}

int DomainDecomposition::rank_of(int rx, int ry, int rz) const {
  auto mod = [](int v, int n) {
    const int m = v % n;
    return m < 0 ? m + n : m;
  };
  return (mod(rz, pz_) * py_ + mod(ry, py_)) * px_ + mod(rx, px_);
}

LocalBox DomainDecomposition::local_box(int rank) const {
  const auto c = coords_of(rank);
  LocalBox box;
  box.halo = halo_;
  auto [x0, x1] = split(geo_->nx(), px_, c[0]);
  auto [y0, y1] = split(geo_->ny(), py_, c[1]);
  auto [z0, z1] = split(geo_->nz(), pz_, c[2]);
  box.ox = x0;
  box.oy = y0;
  box.oz = z0;
  box.lx = x1 - x0;
  box.ly = y1 - y0;
  box.lz = z1 - z0;
  return box;
}

int DomainDecomposition::neighbor(int rank, int axis, int dir) const {
  auto c = coords_of(rank);
  c[static_cast<std::size_t>(axis)] += dir;
  return rank_of(c[0], c[1], c[2]);
}

int DomainDecomposition::rank_of_cell(int gx, int gy, int gz) const {
  auto part = [](int cell, int ncells, int nparts) {
    // Splits are lo_i = floor(ncells*i/nparts); invert with a guarded guess.
    int i = static_cast<int>((static_cast<long>(cell) * nparts) / ncells);
    i = std::min(i, nparts - 1);
    while (i > 0 && cell < static_cast<int>(static_cast<long>(ncells) * i / nparts)) --i;
    while (i + 1 < nparts &&
           cell >= static_cast<int>(static_cast<long>(ncells) * (i + 1) / nparts)) {
      ++i;
    }
    return i;
  };
  return rank_of(part(gx, geo_->nx(), px_), part(gy, geo_->ny(), py_),
                 part(gz, geo_->nz(), pz_));
}

std::vector<int> DomainDecomposition::neighbor_ranks(int rank) const {
  const auto c = coords_of(rank);
  std::vector<int> out;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int r = rank_of(c[0] + dx, c[1] + dy, c[2] + dz);
        if (r != rank) out.push_back(r);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::array<int, 3> DomainDecomposition::choose_grid(int n, int nx, int ny,
                                                    int nz, int halo) {
  // A split into p parts of an axis with c cells is valid when every part is
  // at least `halo` cells wide, i.e. floor(c/p) >= halo (and >= 1).
  auto fits = [halo](int cells, int parts) {
    if (parts > cells) return false;
    const int min_part = cells / parts;
    return min_part >= std::max(1, halo);
  };
  std::array<int, 3> best{0, 0, 0};
  long best_cost = std::numeric_limits<long>::max();
  for (int px = 1; px <= n; ++px) {
    if (n % px != 0 || !fits(nx, px)) continue;
    const int rem = n / px;
    for (int py = 1; py <= rem; ++py) {
      if (rem % py != 0 || !fits(ny, py)) continue;
      const int pz = rem / py;
      if (!fits(nz, pz)) continue;
      // Surface-area proxy: sum of pairwise products of subdomain extents.
      const long ax = nx / px, ay = ny / py, az = nz / pz;
      const long cost = ax * ay + ay * az + az * ax;
      if (cost < best_cost) {
        best_cost = cost;
        best = {px, py, pz};
      }
    }
  }
  return best;
}

std::pair<int, int> DomainDecomposition::split(int ncells, int nparts, int part) {
  const auto lo = static_cast<int>(static_cast<long>(ncells) * part / nparts);
  const auto hi = static_cast<int>(static_cast<long>(ncells) * (part + 1) / nparts);
  return {lo, hi};
}

}  // namespace mmd::lat
