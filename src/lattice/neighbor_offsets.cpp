#include "lattice/neighbor_offsets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmd::lat {

std::vector<SiteOffset> bcc_neighbor_offsets(double a, double cutoff, int from_sub) {
  if (a <= 0.0 || cutoff <= 0.0) {
    throw std::invalid_argument("bcc_neighbor_offsets: a and cutoff must be positive");
  }
  if (from_sub != 0 && from_sub != 1) {
    throw std::invalid_argument("bcc_neighbor_offsets: from_sub must be 0 or 1");
  }
  const double cutoff2 = cutoff * cutoff;
  // Sub-0 sites sit at integer cell corners, sub-1 at +0.5 in each axis, so
  // the displacement to a neighbor at cell offset (dx,dy,dz) on `to_sub` is
  // (d + 0.5*(to_sub - from_sub)) * a per component.
  const int reach = static_cast<int>(std::ceil(cutoff / a)) + 1;
  std::vector<SiteOffset> out;
  for (int dz = -reach; dz <= reach; ++dz) {
    for (int dy = -reach; dy <= reach; ++dy) {
      for (int dx = -reach; dx <= reach; ++dx) {
        for (int to_sub = 0; to_sub <= 1; ++to_sub) {
          if (dx == 0 && dy == 0 && dz == 0 && to_sub == from_sub) continue;
          const double shift = 0.5 * (to_sub - from_sub);
          const util::Vec3 disp{(dx + shift) * a, (dy + shift) * a, (dz + shift) * a};
          const double d2 = disp.norm2();
          if (d2 <= cutoff2) {
            out.push_back({dx, dy, dz, to_sub, d2, disp});
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const SiteOffset& l, const SiteOffset& r) {
    if (l.dist2 != r.dist2) return l.dist2 < r.dist2;
    if (l.dz != r.dz) return l.dz < r.dz;
    if (l.dy != r.dy) return l.dy < r.dy;
    if (l.dx != r.dx) return l.dx < r.dx;
    return l.to_sub < r.to_sub;
  });
  return out;
}

int required_halo_cells(double a, double cutoff) {
  int halo = 0;
  for (int sub = 0; sub <= 1; ++sub) {
    for (const auto& o : bcc_neighbor_offsets(a, cutoff, sub)) {
      halo = std::max({halo, std::abs(o.dx), std::abs(o.dy), std::abs(o.dz)});
    }
  }
  return halo;
}

}  // namespace mmd::lat
