#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmd::lat {

/// Local cell coordinates within one rank's storage: owned cells span
/// [0, l*) per axis; ghost (halo) cells extend to [-halo, l*+halo).
struct LocalCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  int sub = 0;

  friend bool operator==(const LocalCoord&, const LocalCoord&) = default;
};

/// The cell-aligned subdomain owned by one rank, plus its halo. Storage is a
/// dense 3D array of (l+2*halo) cells per axis with two sites per cell, so
/// neighbor lookups reduce to constant flat-index deltas for every interior
/// site — the essence of the lattice neighbor list.
struct LocalBox {
  int ox = 0, oy = 0, oz = 0;  ///< global cell coords of owned origin
  int lx = 0, ly = 0, lz = 0;  ///< owned extent in unit cells
  int halo = 0;                ///< ghost shell width in unit cells

  int sx() const { return lx + 2 * halo; }
  int sy() const { return ly + 2 * halo; }
  int sz() const { return lz + 2 * halo; }

  std::size_t num_cells() const {
    return static_cast<std::size_t>(sx()) * sy() * sz();
  }
  std::size_t num_entries() const { return 2 * num_cells(); }
  std::size_t num_owned_sites() const {
    return 2ull * static_cast<std::size_t>(lx) * ly * lz;
  }

  /// Flat entry index of a local coordinate (must be inside storage).
  std::size_t entry_index(const LocalCoord& c) const {
    const std::size_t cell =
        (static_cast<std::size_t>(c.z + halo) * sy() + (c.y + halo)) * sx() +
        (c.x + halo);
    return 2 * cell + static_cast<std::size_t>(c.sub);
  }

  LocalCoord coord_of(std::size_t idx) const {
    LocalCoord c;
    c.sub = static_cast<int>(idx & 1);
    std::size_t cell = idx >> 1;
    c.x = static_cast<int>(cell % sx()) - halo;
    cell /= static_cast<std::size_t>(sx());
    c.y = static_cast<int>(cell % sy()) - halo;
    c.z = static_cast<int>(cell / sy()) - halo;
    return c;
  }

  bool owns(const LocalCoord& c) const {
    return c.x >= 0 && c.x < lx && c.y >= 0 && c.y < ly && c.z >= 0 && c.z < lz;
  }

  bool in_storage(const LocalCoord& c) const {
    return c.x >= -halo && c.x < lx + halo && c.y >= -halo && c.y < ly + halo &&
           c.z >= -halo && c.z < lz + halo && (c.sub == 0 || c.sub == 1);
  }

  /// Flat-index displacement of a cell offset (dx,dy,dz) plus sublattice
  /// change; valid for any central site whose neighbors stay in storage.
  std::int64_t flat_delta(int dx, int dy, int dz, int dsub) const {
    return 2 * ((static_cast<std::int64_t>(dz) * sy() + dy) * sx() + dx) + dsub;
  }
};

/// A half-open box of owned cells, [x0,x1) x [y0,y1) x [z0,z1) in local cell
/// coordinates — the unit the compute/communication overlap splits sweeps by.
struct CellRegion {
  int x0 = 0, x1 = 0, y0 = 0, y1 = 0, z0 = 0, z1 = 0;

  bool empty() const { return x1 <= x0 || y1 <= y0 || z1 <= z0; }
  std::size_t cells() const {
    return empty() ? 0
                   : static_cast<std::size_t>(x1 - x0) *
                         static_cast<std::size_t>(y1 - y0) *
                         static_cast<std::size_t>(z1 - z0);
  }
  bool contains(const LocalCoord& c) const {
    return c.x >= x0 && c.x < x1 && c.y >= y0 && c.y < y1 && c.z >= z0 &&
           c.z < z1;
  }

  static CellRegion full(const LocalBox& b) {
    return {0, b.lx, 0, b.ly, 0, b.lz};
  }
};

/// Owned cells at least `margin` cells from every subdomain face: a site in
/// here has its whole neighbor stencil (reach <= margin cells) inside the
/// owned region, so it can be computed while a halo exchange is in flight.
/// Empty when the subdomain is thinner than 2*margin on any axis.
inline CellRegion interior_region(const LocalBox& b, int margin) {
  CellRegion r{margin, b.lx - margin, margin, b.ly - margin,
               margin, b.lz - margin};
  if (r.empty()) return {};
  return r;
}

/// Decompose owned-minus-interior into at most 6 disjoint slab regions
/// (z-slabs, then y-slabs, then x-slabs of the remainder). When the interior
/// is empty the whole owned box is returned as a single region. Appends to
/// `out`; skips empty slabs.
inline void boundary_shell(const LocalBox& b, int margin,
                           std::vector<CellRegion>& out) {
  const CellRegion in = interior_region(b, margin);
  if (in.empty()) {
    if (!CellRegion::full(b).empty()) out.push_back(CellRegion::full(b));
    return;
  }
  auto add = [&](CellRegion r) {
    if (!r.empty()) out.push_back(r);
  };
  add({0, b.lx, 0, b.ly, 0, in.z0});
  add({0, b.lx, 0, b.ly, in.z1, b.lz});
  add({0, b.lx, 0, in.y0, in.z0, in.z1});
  add({0, b.lx, in.y1, b.ly, in.z0, in.z1});
  add({0, in.x0, in.y0, in.y1, in.z0, in.z1});
  add({in.x1, b.lx, in.y0, in.y1, in.z0, in.z1});
}

}  // namespace mmd::lat
