#pragma once

#include <cstddef>
#include <cstdint>

namespace mmd::lat {

/// Local cell coordinates within one rank's storage: owned cells span
/// [0, l*) per axis; ghost (halo) cells extend to [-halo, l*+halo).
struct LocalCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  int sub = 0;

  friend bool operator==(const LocalCoord&, const LocalCoord&) = default;
};

/// The cell-aligned subdomain owned by one rank, plus its halo. Storage is a
/// dense 3D array of (l+2*halo) cells per axis with two sites per cell, so
/// neighbor lookups reduce to constant flat-index deltas for every interior
/// site — the essence of the lattice neighbor list.
struct LocalBox {
  int ox = 0, oy = 0, oz = 0;  ///< global cell coords of owned origin
  int lx = 0, ly = 0, lz = 0;  ///< owned extent in unit cells
  int halo = 0;                ///< ghost shell width in unit cells

  int sx() const { return lx + 2 * halo; }
  int sy() const { return ly + 2 * halo; }
  int sz() const { return lz + 2 * halo; }

  std::size_t num_cells() const {
    return static_cast<std::size_t>(sx()) * sy() * sz();
  }
  std::size_t num_entries() const { return 2 * num_cells(); }
  std::size_t num_owned_sites() const {
    return 2ull * static_cast<std::size_t>(lx) * ly * lz;
  }

  /// Flat entry index of a local coordinate (must be inside storage).
  std::size_t entry_index(const LocalCoord& c) const {
    const std::size_t cell =
        (static_cast<std::size_t>(c.z + halo) * sy() + (c.y + halo)) * sx() +
        (c.x + halo);
    return 2 * cell + static_cast<std::size_t>(c.sub);
  }

  LocalCoord coord_of(std::size_t idx) const {
    LocalCoord c;
    c.sub = static_cast<int>(idx & 1);
    std::size_t cell = idx >> 1;
    c.x = static_cast<int>(cell % sx()) - halo;
    cell /= static_cast<std::size_t>(sx());
    c.y = static_cast<int>(cell % sy()) - halo;
    c.z = static_cast<int>(cell / sy()) - halo;
    return c;
  }

  bool owns(const LocalCoord& c) const {
    return c.x >= 0 && c.x < lx && c.y >= 0 && c.y < ly && c.z >= 0 && c.z < lz;
  }

  bool in_storage(const LocalCoord& c) const {
    return c.x >= -halo && c.x < lx + halo && c.y >= -halo && c.y < ly + halo &&
           c.z >= -halo && c.z < lz + halo && (c.sub == 0 || c.sub == 1);
  }

  /// Flat-index displacement of a cell offset (dx,dy,dz) plus sublattice
  /// change; valid for any central site whose neighbors stay in storage.
  std::int64_t flat_delta(int dx, int dy, int dz, int dsub) const {
    return 2 * ((static_cast<std::int64_t>(dz) * sy() + dy) * sx() + dx) + dsub;
  }
};

}  // namespace mmd::lat
