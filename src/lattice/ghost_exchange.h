#pragma once

#include <cstdint>
#include <vector>

#include "comm/neighborhood.h"
#include "comm/world.h"
#include "lattice/decomposition.h"
#include "lattice/lattice_neighbor_list.h"

namespace mmd::lat {

/// Three-phase (x, then y, then z) face-neighbor ghost exchange for the
/// lattice neighbor list.
///
/// For the regularly distributed lattice points "the communication pattern is
/// static, which can be reused at each time step" (paper §2.1.1): the send
/// and receive entry-index lists are precomputed once. Run-away atoms ride
/// along as variable-length side messages, and run-aways whose nearest
/// lattice point left this rank's subdomain are routed to their new owner
/// during the same three phases (dimension-ordered routing handles edge and
/// corner crossings).
///
/// All paths are nonblocking neighborhood rounds (comm::NeighborhoodExchange):
/// within a phase both sides' receives are posted up front, each side's
/// categories (entries + run-away chains + emigrants, or rho + chain rho) are
/// aggregated into ONE message per peer, and completion is out of order.
/// The phases themselves stay sequential — later axes relay the corner data
/// that earlier axes deposited in the halo.
///
/// Positions are translated by +-L when a message crosses the periodic
/// boundary, which keeps every rank's storage in a continuous local frame.
class GhostExchange {
 public:
  GhostExchange(LatticeNeighborList& lnl, const DomainDecomposition& dd, int rank);

  /// Refresh all ghost entries and chains; route `emigrants` (run-aways that
  /// left the subdomain, from rehome_runaways) to their owners.
  void exchange(comm::Comm& comm, std::vector<RunawayAtom> emigrants = {});

  /// A rho refresh whose first (x) phase is in flight: returned by
  /// begin_exchange_rho so the caller can compute interior forces while the
  /// largest phase's messages travel, then finish_exchange_rho.
  class RhoFlight {
   public:
    RhoFlight(RhoFlight&&) = default;
    RhoFlight& operator=(RhoFlight&&) = default;

   private:
    friend class GhostExchange;
    explicit RhoFlight(comm::Comm& comm) : nx(comm) {}
    comm::NeighborhoodExchange nx;
  };

  /// Post the x-phase of a rho refresh (both sides, aggregated, nonblocking)
  /// and return without waiting. Must be paired with finish_exchange_rho on
  /// the same Comm; ghost rho (and ghost-chain rho) is garbage until then.
  RhoFlight begin_exchange_rho(comm::Comm& comm);

  /// Complete the in-flight x phase, then run the y and z phases. After this
  /// every ghost entry and ghost run-away chain carries the owner's rho.
  void finish_exchange_rho(comm::Comm& comm, RhoFlight& flight);

  /// Refresh only the electron density (rho) of ghost entries and ghost
  /// run-away chains. Must be called after an `exchange()` with no chain
  /// mutations in between, so the ghost chain layout still mirrors the
  /// sender's. Equivalent to begin + finish with no overlapped compute.
  void exchange_rho(comm::Comm& comm);

  /// Reverse accumulation (the LAMMPS `reverse_comm` pattern, used by the
  /// Newton-third-law force backend): each rank's HALO values flow back to
  /// the owners and are ADDED to the owned entries, phases in reverse
  /// (z, y, x) order so corner contributions route through intermediate
  /// slabs. Only the selected field moves; ghost copies are garbage
  /// afterwards.
  void reverse_accumulate_rho(comm::Comm& comm);
  void reverse_accumulate_force(comm::Comm& comm);

  /// Bytes sent by this rank over ALL ghost traffic so far — full exchanges,
  /// rho-only refreshes, and reverse accumulations — for the weak-scaling
  /// communication split and the telemetry fold.
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Side {
    int peer = 0;                          ///< neighbor rank on this side
    util::Vec3 shift;                      ///< position shift applied when sending
    std::vector<std::size_t> send_idx;     ///< canonical slab order, sender view
    std::vector<std::size_t> recv_idx;     ///< canonical slab order, receiver view
  };

  /// Serialized run-away record: which slab entry hosts it plus the node.
  struct PackedRunaway {
    std::int32_t slab_pos;
    std::int32_t pad = 0;
    RunawayAtom atom;
  };

  /// Build one aggregated forward-exchange payload for (axis, side):
  /// sections are [entries][chains][emigrants], all position-shifted.
  void pack_side(int axis, int side, std::vector<RunawayAtom> migrants,
                 comm::SectionWriter& w) const;
  /// Unpack a forward payload into the (axis, side) halo slab; returns the
  /// emigrants riding along (adopted later, in fixed side order).
  std::vector<RunawayAtom> unpack_side(int axis, int side,
                                       const comm::Message& m);

  /// Post one rho phase (both sides) on `nx` / complete it.
  void post_rho_axis(int axis, comm::NeighborhoodExchange& nx);
  void complete_rho_axis(int axis, comm::NeighborhoodExchange& nx);

  /// Shared reverse-accumulate driver: ship halo values of one field back to
  /// their owners and add, nonblocking per axis, fixed side-apply order.
  template <typename T, typename Get, typename Add>
  void reverse_accumulate_field(comm::Comm& comm, int base_tag, Get get,
                                Add add);

  /// Split emigrants into (low, high, keep-for-now) along `axis`.
  void route_emigrants(int axis, std::vector<RunawayAtom>& pending,
                       std::vector<RunawayAtom>& low,
                       std::vector<RunawayAtom>& high) const;
  void adopt(std::vector<RunawayAtom>& settled);

  LatticeNeighborList* lnl_;
  int rank_;
  Side sides_[3][2];  ///< [axis][0 = low, 1 = high]
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace mmd::lat
