#pragma once

#include <cstdint>
#include <vector>

#include "comm/world.h"
#include "lattice/decomposition.h"
#include "lattice/lattice_neighbor_list.h"

namespace mmd::lat {

/// Three-phase (x, then y, then z) face-neighbor ghost exchange for the
/// lattice neighbor list.
///
/// For the regularly distributed lattice points "the communication pattern is
/// static, which can be reused at each time step" (paper §2.1.1): the send
/// and receive entry-index lists are precomputed once. Run-away atoms ride
/// along as variable-length side messages, and run-aways whose nearest
/// lattice point left this rank's subdomain are routed to their new owner
/// during the same three phases (dimension-ordered routing handles edge and
/// corner crossings).
///
/// Positions are translated by +-L when a message crosses the periodic
/// boundary, which keeps every rank's storage in a continuous local frame.
class GhostExchange {
 public:
  GhostExchange(LatticeNeighborList& lnl, const DomainDecomposition& dd, int rank);

  /// Refresh all ghost entries and chains; route `emigrants` (run-aways that
  /// left the subdomain, from rehome_runaways) to their owners.
  void exchange(comm::Comm& comm, std::vector<RunawayAtom> emigrants = {});

  /// Refresh only the electron density (rho) of ghost entries and ghost
  /// run-away chains. Must be called after an `exchange()` with no chain
  /// mutations in between, so the ghost chain layout still mirrors the
  /// sender's.
  void exchange_rho(comm::Comm& comm);

  /// Reverse accumulation (the LAMMPS `reverse_comm` pattern, used by the
  /// Newton-third-law force backend): each rank's HALO values flow back to
  /// the owners and are ADDED to the owned entries, phases in reverse
  /// (z, y, x) order so corner contributions route through intermediate
  /// slabs. Only the selected field moves; ghost copies are garbage
  /// afterwards.
  void reverse_accumulate_rho(comm::Comm& comm);
  void reverse_accumulate_force(comm::Comm& comm);

  /// Bytes sent by this rank in full exchanges so far (for the weak-scaling
  /// communication split).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Side {
    int peer = 0;                          ///< neighbor rank on this side
    util::Vec3 shift;                      ///< position shift applied when sending
    std::vector<std::size_t> send_idx;     ///< canonical slab order, sender view
    std::vector<std::size_t> recv_idx;     ///< canonical slab order, receiver view
  };

  /// Serialized run-away record: which slab entry hosts it plus the node.
  struct PackedRunaway {
    std::int32_t slab_pos;
    std::int32_t pad = 0;
    RunawayAtom atom;
  };

  void send_side(comm::Comm& comm, int axis, int side,
                 std::vector<RunawayAtom>& low_emigrants,
                 std::vector<RunawayAtom>& high_emigrants);
  void recv_side(comm::Comm& comm, int axis, int side,
                 std::vector<RunawayAtom>& keep);
  /// Split emigrants into (low, high, keep-for-now) along `axis`.
  void route_emigrants(int axis, std::vector<RunawayAtom>& pending,
                       std::vector<RunawayAtom>& low,
                       std::vector<RunawayAtom>& high) const;
  void adopt(std::vector<RunawayAtom>& settled);

  LatticeNeighborList* lnl_;
  int rank_;
  Side sides_[3][2];  ///< [axis][0 = low, 1 = high]
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace mmd::lat
