#include "lattice/ghost_exchange.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mmd::lat {

namespace {

using comm::tags::axis_side;

struct Range {
  int lo, hi;
};

// Canonical slab index list: iterate z, y, x ascending, two subs per cell.
std::vector<std::size_t> slab_indices(const LocalBox& b, Range xr, Range yr,
                                      Range zr) {
  std::vector<std::size_t> out;
  out.reserve(2ull * static_cast<std::size_t>(xr.hi - xr.lo) *
              static_cast<std::size_t>(yr.hi - yr.lo) *
              static_cast<std::size_t>(zr.hi - zr.lo));
  for (int z = zr.lo; z < zr.hi; ++z) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (int x = xr.lo; x < xr.hi; ++x) {
        for (int sub = 0; sub <= 1; ++sub) {
          out.push_back(b.entry_index({x, y, z, sub}));
        }
      }
    }
  }
  return out;
}

}  // namespace

GhostExchange::GhostExchange(LatticeNeighborList& lnl,
                             const DomainDecomposition& dd, int rank)
    : lnl_(&lnl), rank_(rank) {
  const LocalBox& b = lnl.box();
  const BccGeometry& geo = lnl.geometry();
  const int h = b.halo;
  const auto grid = dd.grid();
  const auto coords = dd.coords_of(rank);
  const util::Vec3 L = geo.box_length();
  const int owned[3] = {b.lx, b.ly, b.lz};

  for (int axis = 0; axis < 3; ++axis) {
    // Extents on the other two axes grow as earlier phases fill the halo.
    auto cross_range = [&](int other_axis) -> Range {
      const int len = owned[other_axis];
      return other_axis < axis ? Range{-h, len + h} : Range{0, len};
    };
    Range xr{0, b.lx}, yr{0, b.ly}, zr{0, b.lz};
    Range* ranges[3] = {&xr, &yr, &zr};
    for (int o = 0; o < 3; ++o) {
      if (o != axis) *ranges[o] = cross_range(o);
    }
    for (int side = 0; side < 2; ++side) {
      Side& s = sides_[axis][side];
      const int dir = side == 0 ? -1 : +1;
      s.peer = dd.neighbor(rank, axis, dir);
      // Send slab: my border of width h on this side. Receive slab: my halo
      // on this side (filled by the peer's border from the opposite side).
      Range send_r = side == 0 ? Range{0, h} : Range{owned[axis] - h, owned[axis]};
      Range recv_r = side == 0 ? Range{-h, 0} : Range{owned[axis], owned[axis] + h};
      *ranges[axis] = send_r;
      s.send_idx = slab_indices(b, xr, yr, zr);
      *ranges[axis] = recv_r;
      s.recv_idx = slab_indices(b, xr, yr, zr);
      // Crossing the periodic boundary shifts positions by the box length.
      s.shift = {};
      const bool crossing = (side == 0 && coords[static_cast<std::size_t>(axis)] == 0) ||
                            (side == 1 && coords[static_cast<std::size_t>(axis)] ==
                                              grid[static_cast<std::size_t>(axis)] - 1);
      if (crossing) {
        const double l = axis == 0 ? L.x : (axis == 1 ? L.y : L.z);
        (axis == 0 ? s.shift.x : axis == 1 ? s.shift.y : s.shift.z) =
            side == 0 ? +l : -l;
      }
    }
  }
}

// Each phase is one nonblocking neighborhood round: both halo receives are
// posted before either aggregated send, and the two sides complete out of
// order. Entries and chains land in disjoint slabs so they unpack on
// arrival; emigrants are staged and merged in fixed side order, so the
// downstream adopt() sequence — and with it the trajectory — is independent
// of which neighbor answered first.
void GhostExchange::exchange(comm::Comm& comm, std::vector<RunawayAtom> emigrants) {
  lnl_->clear_ghosts();
  for (int axis = 0; axis < 3; ++axis) {
    std::array<std::vector<RunawayAtom>, 2> outbound;
    route_emigrants(axis, emigrants, outbound[0], outbound[1]);

    comm::NeighborhoodExchange nx(comm);
    for (int side = 0; side < 2; ++side) {
      // Channel index == side; my `side` halo is filled by that peer's
      // opposite-side send.
      nx.expect(sides_[axis][side].peer,
                axis_side(comm::tags::kGhostHalo, axis, 1 - side));
    }
    for (int side = 0; side < 2; ++side) {
      comm::SectionWriter w;
      pack_side(axis, side, std::move(outbound[static_cast<std::size_t>(side)]), w);
      bytes_sent_ += w.bytes().size();
      nx.send(sides_[axis][side].peer,
              axis_side(comm::tags::kGhostHalo, axis, side), w.bytes());
    }
    std::array<std::vector<RunawayAtom>, 2> arrived;
    nx.complete([&](std::size_t side, comm::Message&& m) {
      arrived[side] = unpack_side(axis, static_cast<int>(side), m);
    });
    for (const auto& a : arrived) {
      emigrants.insert(emigrants.end(), a.begin(), a.end());
    }
  }
  adopt(emigrants);
}

void GhostExchange::pack_side(int axis, int side,
                              std::vector<RunawayAtom> migrants,
                              comm::SectionWriter& w) const {
  const Side& s = sides_[axis][side];
  std::vector<AtomEntry> entries;
  entries.reserve(s.send_idx.size());
  std::vector<PackedRunaway> chains;
  for (std::size_t pos = 0; pos < s.send_idx.size(); ++pos) {
    AtomEntry e = lnl_->entry(s.send_idx[pos]);
    for (std::int32_t ri = e.runaway_head; ri != AtomEntry::kNoRunaway;
         ri = lnl_->runaway(ri).next) {
      PackedRunaway p{static_cast<std::int32_t>(pos), 0, lnl_->runaway(ri)};
      p.atom.r += s.shift;
      p.atom.next = AtomEntry::kNoRunaway;
      chains.push_back(p);
    }
    e.runaway_head = AtomEntry::kNoRunaway;
    e.r += s.shift;
    entries.push_back(e);
  }
  for (RunawayAtom& a : migrants) a.r += s.shift;
  w.add(std::span<const AtomEntry>(entries));
  w.add(std::span<const PackedRunaway>(chains));
  w.add(std::span<const RunawayAtom>(migrants));
}

std::vector<RunawayAtom> GhostExchange::unpack_side(int axis, int side,
                                                    const comm::Message& m) {
  const Side& s = sides_[axis][side];
  comm::SectionReader r(m.payload);
  auto entries = r.take<AtomEntry>();
  if (entries.size() != s.recv_idx.size()) {
    throw std::runtime_error("GhostExchange: slab size mismatch between peers");
  }
  for (std::size_t pos = 0; pos < entries.size(); ++pos) {
    entries[pos].runaway_head = AtomEntry::kNoRunaway;
    lnl_->entry(s.recv_idx[pos]) = entries[pos];
  }
  auto chains = r.take<PackedRunaway>();
  // add_runaway pushes at the head, so insert each host's nodes in reverse to
  // preserve the sender's chain order (exchange_rho depends on it).
  for (auto it = chains.rbegin(); it != chains.rend(); ++it) {
    lnl_->add_runaway(it->atom, s.recv_idx[static_cast<std::size_t>(it->slab_pos)]);
  }
  return r.take<RunawayAtom>();
}

void GhostExchange::route_emigrants(int axis, std::vector<RunawayAtom>& pending,
                                    std::vector<RunawayAtom>& low,
                                    std::vector<RunawayAtom>& high) const {
  const LocalBox& b = lnl_->box();
  const double a = lnl_->geometry().lattice_constant();
  const int origin[3] = {b.ox, b.oy, b.oz};
  const int owned[3] = {b.lx, b.ly, b.lz};
  std::vector<RunawayAtom> still;
  for (const RunawayAtom& r : pending) {
    const double coord = axis == 0 ? r.r.x : (axis == 1 ? r.r.y : r.r.z);
    const double cell = coord / a - origin[axis];
    if (cell < 0.0) {
      low.push_back(r);
    } else if (cell >= static_cast<double>(owned[axis])) {
      high.push_back(r);
    } else {
      still.push_back(r);
    }
  }
  pending.swap(still);
}

void GhostExchange::adopt(std::vector<RunawayAtom>& settled) {
  const double thr = lnl_->reattach_threshold();
  for (RunawayAtom& a : settled) {
    // Owned host always: a ghost-hosted chain node would vanish at the next
    // clear_ghosts(). Routing guarantees the position lies in an owned cell.
    const std::size_t host = lnl_->nearest_owned_entry(a.r);
    AtomEntry& h = lnl_->entry(host);
    if (h.is_vacancy() &&
        (a.r - lnl_->ideal_position(host)).norm2() <= thr * thr) {
      h.id = a.id;
      h.type = a.type;
      h.r = a.r;
      h.v = a.v;
      h.f = a.f;
      h.rho = a.rho;
    } else {
      a.next = AtomEntry::kNoRunaway;
      lnl_->add_runaway(a, host);
    }
  }
  settled.clear();
}

// Reverse accumulation ships each side's halo values (recv_idx lists) back
// to the peer, which ADDS them onto its border entries (send_idx lists).
// Axis order is reversed relative to the forward exchange so that corner
// halo contributions hop through the intermediate slabs. Both sides of an
// axis fly concurrently; the additions are applied in fixed side order
// because the two border slabs OVERLAP when the subdomain is thinner than
// two halo widths, and floating-point addition order must not depend on
// message arrival.
template <typename T, typename Get, typename Add>
void GhostExchange::reverse_accumulate_field(comm::Comm& comm, int base_tag,
                                             Get get, Add add) {
  for (int axis = 2; axis >= 0; --axis) {
    comm::NeighborhoodExchange nx(comm);
    for (int side = 0; side < 2; ++side) {
      nx.expect(sides_[axis][side].peer, axis_side(base_tag, axis, 1 - side));
    }
    for (int side = 0; side < 2; ++side) {
      const Side& s = sides_[axis][side];
      std::vector<T> vals;
      vals.reserve(s.recv_idx.size());
      for (std::size_t idx : s.recv_idx) vals.push_back(get(lnl_->entry(idx)));
      bytes_sent_ += vals.size() * sizeof(T);
      nx.send(s.peer, axis_side(base_tag, axis, side),
              std::as_bytes(std::span<const T>(vals)));
    }
    std::array<std::vector<T>, 2> in;
    nx.complete([&](std::size_t side, comm::Message&& m) {
      in[side] = comm::unpack<T>(m.payload);
    });
    for (int side = 0; side < 2; ++side) {
      const Side& s = sides_[axis][side];
      const auto& vals = in[static_cast<std::size_t>(side)];
      if (vals.size() != s.send_idx.size()) {
        throw std::runtime_error("GhostExchange: reverse slab size mismatch");
      }
      for (std::size_t pos = 0; pos < vals.size(); ++pos) {
        add(lnl_->entry(s.send_idx[pos]), vals[pos]);
      }
    }
  }
}

void GhostExchange::reverse_accumulate_rho(comm::Comm& comm) {
  reverse_accumulate_field<double>(
      comm, comm::tags::kGhostReverseRho,
      [](const AtomEntry& e) { return e.rho; },
      [](AtomEntry& e, double v) { e.rho += v; });
}

void GhostExchange::reverse_accumulate_force(comm::Comm& comm) {
  reverse_accumulate_field<util::Vec3>(
      comm, comm::tags::kGhostReverseForce,
      [](const AtomEntry& e) { return e.f; },
      [](AtomEntry& e, const util::Vec3& v) { e.f += v; });
}

void GhostExchange::post_rho_axis(int axis, comm::NeighborhoodExchange& nx) {
  for (int side = 0; side < 2; ++side) {
    nx.expect(sides_[axis][side].peer,
              axis_side(comm::tags::kGhostRho, axis, 1 - side));
  }
  for (int side = 0; side < 2; ++side) {
    const Side& s = sides_[axis][side];
    std::vector<double> rho;
    rho.reserve(s.send_idx.size());
    std::vector<double> chain_rho;
    for (std::size_t idx : s.send_idx) {
      const AtomEntry& e = lnl_->entry(idx);
      rho.push_back(e.rho);
      for (std::int32_t ri = e.runaway_head; ri != AtomEntry::kNoRunaway;
           ri = lnl_->runaway(ri).next) {
        chain_rho.push_back(lnl_->runaway(ri).rho);
      }
    }
    comm::SectionWriter w;
    w.add(std::span<const double>(rho));
    w.add(std::span<const double>(chain_rho));
    bytes_sent_ += w.bytes().size();
    nx.send(s.peer, axis_side(comm::tags::kGhostRho, axis, side), w.bytes());
  }
}

void GhostExchange::complete_rho_axis(int axis, comm::NeighborhoodExchange& nx) {
  nx.complete([&](std::size_t side, comm::Message&& m) {
    // The two sides' slabs are disjoint: unpack on arrival.
    const Side& s = sides_[axis][side];
    comm::SectionReader r(m.payload);
    auto rho = r.take<double>();
    auto chain_rho = r.take<double>();
    if (rho.size() != s.recv_idx.size()) {
      throw std::runtime_error("GhostExchange: rho slab size mismatch");
    }
    std::size_t ci = 0;
    for (std::size_t pos = 0; pos < rho.size(); ++pos) {
      AtomEntry& e = lnl_->entry(s.recv_idx[pos]);
      e.rho = rho[pos];
      for (std::int32_t ri = e.runaway_head; ri != AtomEntry::kNoRunaway;
           ri = lnl_->runaway(ri).next) {
        lnl_->runaway(ri).rho = chain_rho.at(ci++);
      }
    }
  });
}

GhostExchange::RhoFlight GhostExchange::begin_exchange_rho(comm::Comm& comm) {
  RhoFlight flight(comm);
  post_rho_axis(0, flight.nx);
  return flight;
}

void GhostExchange::finish_exchange_rho(comm::Comm&, RhoFlight& flight) {
  complete_rho_axis(0, flight.nx);
  // The y and z phases relay what x deposited in the halo, so they cannot be
  // posted before x completes; each is still a concurrent two-sided round.
  for (int axis = 1; axis < 3; ++axis) {
    post_rho_axis(axis, flight.nx);
    complete_rho_axis(axis, flight.nx);
  }
}

void GhostExchange::exchange_rho(comm::Comm& comm) {
  RhoFlight flight = begin_exchange_rho(comm);
  finish_exchange_rho(comm, flight);
}

}  // namespace mmd::lat
