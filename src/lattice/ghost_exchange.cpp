#include "lattice/ghost_exchange.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mmd::lat {

namespace {

// Message tags: base + axis*2 + side so concurrent phases never cross-match.
constexpr int kTagEntries = 100;
constexpr int kTagChains = 200;
constexpr int kTagEmigrants = 300;
constexpr int kTagRho = 400;
constexpr int kTagRhoChains = 500;

int tag_for(int base, int axis, int side) { return base + axis * 2 + side; }

struct Range {
  int lo, hi;
};

// Canonical slab index list: iterate z, y, x ascending, two subs per cell.
std::vector<std::size_t> slab_indices(const LocalBox& b, Range xr, Range yr,
                                      Range zr) {
  std::vector<std::size_t> out;
  out.reserve(2ull * static_cast<std::size_t>(xr.hi - xr.lo) *
              static_cast<std::size_t>(yr.hi - yr.lo) *
              static_cast<std::size_t>(zr.hi - zr.lo));
  for (int z = zr.lo; z < zr.hi; ++z) {
    for (int y = yr.lo; y < yr.hi; ++y) {
      for (int x = xr.lo; x < xr.hi; ++x) {
        for (int sub = 0; sub <= 1; ++sub) {
          out.push_back(b.entry_index({x, y, z, sub}));
        }
      }
    }
  }
  return out;
}

}  // namespace

GhostExchange::GhostExchange(LatticeNeighborList& lnl,
                             const DomainDecomposition& dd, int rank)
    : lnl_(&lnl), rank_(rank) {
  const LocalBox& b = lnl.box();
  const BccGeometry& geo = lnl.geometry();
  const int h = b.halo;
  const auto grid = dd.grid();
  const auto coords = dd.coords_of(rank);
  const util::Vec3 L = geo.box_length();
  const int owned[3] = {b.lx, b.ly, b.lz};

  for (int axis = 0; axis < 3; ++axis) {
    // Extents on the other two axes grow as earlier phases fill the halo.
    auto cross_range = [&](int other_axis) -> Range {
      const int len = owned[other_axis];
      return other_axis < axis ? Range{-h, len + h} : Range{0, len};
    };
    Range xr{0, b.lx}, yr{0, b.ly}, zr{0, b.lz};
    Range* ranges[3] = {&xr, &yr, &zr};
    for (int o = 0; o < 3; ++o) {
      if (o != axis) *ranges[o] = cross_range(o);
    }
    for (int side = 0; side < 2; ++side) {
      Side& s = sides_[axis][side];
      const int dir = side == 0 ? -1 : +1;
      s.peer = dd.neighbor(rank, axis, dir);
      // Send slab: my border of width h on this side. Receive slab: my halo
      // on this side (filled by the peer's border from the opposite side).
      Range send_r = side == 0 ? Range{0, h} : Range{owned[axis] - h, owned[axis]};
      Range recv_r = side == 0 ? Range{-h, 0} : Range{owned[axis], owned[axis] + h};
      *ranges[axis] = send_r;
      s.send_idx = slab_indices(b, xr, yr, zr);
      *ranges[axis] = recv_r;
      s.recv_idx = slab_indices(b, xr, yr, zr);
      // Crossing the periodic boundary shifts positions by the box length.
      s.shift = {};
      const bool crossing = (side == 0 && coords[static_cast<std::size_t>(axis)] == 0) ||
                            (side == 1 && coords[static_cast<std::size_t>(axis)] ==
                                              grid[static_cast<std::size_t>(axis)] - 1);
      if (crossing) {
        const double l = axis == 0 ? L.x : (axis == 1 ? L.y : L.z);
        (axis == 0 ? s.shift.x : axis == 1 ? s.shift.y : s.shift.z) =
            side == 0 ? +l : -l;
      }
    }
  }
}

void GhostExchange::exchange(comm::Comm& comm, std::vector<RunawayAtom> emigrants) {
  lnl_->clear_ghosts();
  std::vector<RunawayAtom> settled;
  for (int axis = 0; axis < 3; ++axis) {
    std::vector<RunawayAtom> low, high;
    route_emigrants(axis, emigrants, low, high);
    send_side(comm, axis, 0, low, high);
    send_side(comm, axis, 1, low, high);
    recv_side(comm, axis, 0, emigrants);
    recv_side(comm, axis, 1, emigrants);
  }
  adopt(emigrants);
}

void GhostExchange::send_side(comm::Comm& comm, int axis, int side,
                              std::vector<RunawayAtom>& low_emigrants,
                              std::vector<RunawayAtom>& high_emigrants) {
  const Side& s = sides_[axis][side];
  std::vector<AtomEntry> entries;
  entries.reserve(s.send_idx.size());
  std::vector<PackedRunaway> chains;
  for (std::size_t pos = 0; pos < s.send_idx.size(); ++pos) {
    AtomEntry e = lnl_->entry(s.send_idx[pos]);
    for (std::int32_t ri = e.runaway_head; ri != AtomEntry::kNoRunaway;
         ri = lnl_->runaway(ri).next) {
      PackedRunaway p{static_cast<std::int32_t>(pos), 0, lnl_->runaway(ri)};
      p.atom.r += s.shift;
      p.atom.next = AtomEntry::kNoRunaway;
      chains.push_back(p);
    }
    e.runaway_head = AtomEntry::kNoRunaway;
    e.r += s.shift;
    entries.push_back(e);
  }
  std::vector<RunawayAtom>& out = side == 0 ? low_emigrants : high_emigrants;
  for (RunawayAtom& a : out) a.r += s.shift;
  comm.send(s.peer, tag_for(kTagEntries, axis, side),
            std::span<const AtomEntry>(entries));
  comm.send(s.peer, tag_for(kTagChains, axis, side),
            std::span<const PackedRunaway>(chains));
  comm.send(s.peer, tag_for(kTagEmigrants, axis, side),
            std::span<const RunawayAtom>(out));
  bytes_sent_ += entries.size() * sizeof(AtomEntry) +
                 chains.size() * sizeof(PackedRunaway) +
                 out.size() * sizeof(RunawayAtom);
  out.clear();
}

void GhostExchange::recv_side(comm::Comm& comm, int axis, int side,
                              std::vector<RunawayAtom>& keep) {
  // My low halo (side 0) is filled by my low peer's high-side send, and vice
  // versa: match the tag of the opposite side.
  const Side& s = sides_[axis][side];
  const int opposite = 1 - side;
  auto entries = comm.recv_vector<AtomEntry>(s.peer, tag_for(kTagEntries, axis, opposite));
  if (entries.size() != s.recv_idx.size()) {
    throw std::runtime_error("GhostExchange: slab size mismatch between peers");
  }
  for (std::size_t pos = 0; pos < entries.size(); ++pos) {
    entries[pos].runaway_head = AtomEntry::kNoRunaway;
    lnl_->entry(s.recv_idx[pos]) = entries[pos];
  }
  auto chains = comm.recv_vector<PackedRunaway>(s.peer, tag_for(kTagChains, axis, opposite));
  // add_runaway pushes at the head, so insert each host's nodes in reverse to
  // preserve the sender's chain order (exchange_rho depends on it).
  for (auto it = chains.rbegin(); it != chains.rend(); ++it) {
    lnl_->add_runaway(it->atom, s.recv_idx[static_cast<std::size_t>(it->slab_pos)]);
  }
  auto migrants = comm.recv_vector<RunawayAtom>(s.peer, tag_for(kTagEmigrants, axis, opposite));
  keep.insert(keep.end(), migrants.begin(), migrants.end());
}

void GhostExchange::route_emigrants(int axis, std::vector<RunawayAtom>& pending,
                                    std::vector<RunawayAtom>& low,
                                    std::vector<RunawayAtom>& high) const {
  const LocalBox& b = lnl_->box();
  const double a = lnl_->geometry().lattice_constant();
  const int origin[3] = {b.ox, b.oy, b.oz};
  const int owned[3] = {b.lx, b.ly, b.lz};
  std::vector<RunawayAtom> still;
  for (const RunawayAtom& r : pending) {
    const double coord = axis == 0 ? r.r.x : (axis == 1 ? r.r.y : r.r.z);
    const double cell = coord / a - origin[axis];
    if (cell < 0.0) {
      low.push_back(r);
    } else if (cell >= static_cast<double>(owned[axis])) {
      high.push_back(r);
    } else {
      still.push_back(r);
    }
  }
  pending.swap(still);
}

void GhostExchange::adopt(std::vector<RunawayAtom>& settled) {
  const double thr = lnl_->reattach_threshold();
  for (RunawayAtom& a : settled) {
    // Owned host always: a ghost-hosted chain node would vanish at the next
    // clear_ghosts(). Routing guarantees the position lies in an owned cell.
    const std::size_t host = lnl_->nearest_owned_entry(a.r);
    AtomEntry& h = lnl_->entry(host);
    if (h.is_vacancy() &&
        (a.r - lnl_->ideal_position(host)).norm2() <= thr * thr) {
      h.id = a.id;
      h.type = a.type;
      h.r = a.r;
      h.v = a.v;
      h.f = a.f;
      h.rho = a.rho;
    } else {
      a.next = AtomEntry::kNoRunaway;
      lnl_->add_runaway(a, host);
    }
  }
  settled.clear();
}

namespace {
constexpr int kTagReverse = 600;
}  // namespace

// Reverse accumulation ships each side's halo values (recv_idx lists) back
// to the peer, which ADDS them onto its border entries (send_idx lists).
// Axis order is reversed relative to the forward exchange so that corner
// halo contributions hop through the intermediate slabs.
void GhostExchange::reverse_accumulate_rho(comm::Comm& comm) {
  for (int axis = 2; axis >= 0; --axis) {
    for (int side = 0; side < 2; ++side) {
      const Side& s = sides_[axis][side];
      // My halo on this side returns to the peer that owns it.
      std::vector<double> vals;
      vals.reserve(s.recv_idx.size());
      for (std::size_t idx : s.recv_idx) vals.push_back(lnl_->entry(idx).rho);
      comm.send(s.peer, kTagReverse + axis * 2 + side,
                std::span<const double>(vals));
    }
    for (int side = 0; side < 2; ++side) {
      const Side& s = sides_[axis][side];
      const int opposite = 1 - side;
      auto vals = comm.recv_vector<double>(s.peer,
                                           kTagReverse + axis * 2 + opposite);
      if (vals.size() != s.send_idx.size()) {
        throw std::runtime_error("reverse_accumulate_rho: slab size mismatch");
      }
      for (std::size_t pos = 0; pos < vals.size(); ++pos) {
        lnl_->entry(s.send_idx[pos]).rho += vals[pos];
      }
    }
  }
}

void GhostExchange::reverse_accumulate_force(comm::Comm& comm) {
  for (int axis = 2; axis >= 0; --axis) {
    for (int side = 0; side < 2; ++side) {
      const Side& s = sides_[axis][side];
      std::vector<util::Vec3> vals;
      vals.reserve(s.recv_idx.size());
      for (std::size_t idx : s.recv_idx) vals.push_back(lnl_->entry(idx).f);
      comm.send(s.peer, kTagReverse + 50 + axis * 2 + side,
                std::span<const util::Vec3>(vals));
    }
    for (int side = 0; side < 2; ++side) {
      const Side& s = sides_[axis][side];
      const int opposite = 1 - side;
      auto vals = comm.recv_vector<util::Vec3>(
          s.peer, kTagReverse + 50 + axis * 2 + opposite);
      if (vals.size() != s.send_idx.size()) {
        throw std::runtime_error("reverse_accumulate_force: slab size mismatch");
      }
      for (std::size_t pos = 0; pos < vals.size(); ++pos) {
        lnl_->entry(s.send_idx[pos]).f += vals[pos];
      }
    }
  }
}

void GhostExchange::exchange_rho(comm::Comm& comm) {
  for (int axis = 0; axis < 3; ++axis) {
    for (int side = 0; side < 2; ++side) {
      const Side& s = sides_[axis][side];
      std::vector<double> rho;
      rho.reserve(s.send_idx.size());
      std::vector<double> chain_rho;
      for (std::size_t idx : s.send_idx) {
        const AtomEntry& e = lnl_->entry(idx);
        rho.push_back(e.rho);
        for (std::int32_t ri = e.runaway_head; ri != AtomEntry::kNoRunaway;
             ri = lnl_->runaway(ri).next) {
          chain_rho.push_back(lnl_->runaway(ri).rho);
        }
      }
      comm.send(s.peer, tag_for(kTagRho, axis, side), std::span<const double>(rho));
      comm.send(s.peer, tag_for(kTagRhoChains, axis, side),
                std::span<const double>(chain_rho));
    }
    for (int side = 0; side < 2; ++side) {
      const Side& s = sides_[axis][side];
      const int opposite = 1 - side;
      auto rho = comm.recv_vector<double>(s.peer, tag_for(kTagRho, axis, opposite));
      auto chain_rho =
          comm.recv_vector<double>(s.peer, tag_for(kTagRhoChains, axis, opposite));
      if (rho.size() != s.recv_idx.size()) {
        throw std::runtime_error("GhostExchange: rho slab size mismatch");
      }
      std::size_t ci = 0;
      for (std::size_t pos = 0; pos < rho.size(); ++pos) {
        AtomEntry& e = lnl_->entry(s.recv_idx[pos]);
        e.rho = rho[pos];
        for (std::int32_t ri = e.runaway_head; ri != AtomEntry::kNoRunaway;
             ri = lnl_->runaway(ri).next) {
          lnl_->runaway(ri).rho = chain_rho.at(ci++);
        }
      }
    }
  }
}

}  // namespace mmd::lat
