#include "serve/campaign_runner.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/scenario.h"
#include "telemetry/comm_trace.h"
#include "util/crc32.h"
#include "util/timer.h"

namespace mmd::serve {

namespace fs = std::filesystem;

namespace {

/// Canonical fingerprint of a job's physics outcome: CRC-32 over the decimal
/// text of the final vacancy site ranks (text, not raw bytes, so the value is
/// stable across platforms and readable to recompute by hand).
std::uint32_t vacancies_crc32(const std::vector<std::int64_t>& sites) {
  std::ostringstream os;
  for (const std::int64_t s : sites) os << s << ',';
  return util::crc32(os.str());
}

/// Copy an aggregate with every metric name prefixed — the "job/<id>/..."
/// namespace of the campaign summary.
telemetry::MetricsRegistry::Aggregate namespaced(
    const telemetry::MetricsRegistry::Aggregate& a, const std::string& prefix) {
  telemetry::MetricsRegistry::Aggregate out;
  for (const auto& [name, v] : a.counters) out.counters[prefix + name] = v;
  for (const auto& [name, v] : a.gauge_max) out.gauge_max[prefix + name] = v;
  for (const auto& [name, v] : a.gauge_sum) out.gauge_sum[prefix + name] = v;
  for (const auto& [name, v] : a.dists) out.dists[prefix + name] = v;
  return out;
}

/// Atomic drop of the per-job completion marker: a marker either exists with
/// full content or not at all (write tmp, close, rename), so a kill between
/// jobs can never leave a half-truth behind for the resume pass.
void write_marker(const fs::path& marker, const JobResult& r) {
  const fs::path tmp = marker.string() + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) {
      throw std::runtime_error("cannot write job marker " + tmp.string());
    }
    os.precision(17);
    os << "job.id = " << r.id << '\n'
       << "job.label = " << r.label << '\n'
       << "job.priority = " << r.priority << '\n'
       << "wall_seconds = " << r.wall_seconds << '\n'
       << "vacancies_crc = " << r.vacancies_crc << '\n'
       << "kmc_events = " << r.kmc_events << '\n'
       << "vacancies = " << r.vacancies << '\n'
       << "mc_time = " << r.mc_time << '\n'
       << "vacancy_concentration = " << r.vacancy_concentration << '\n'
       << "md_seconds = " << r.md_seconds << '\n'
       << "kmc_seconds = " << r.kmc_seconds << '\n';
    if (!os.flush()) {
      throw std::runtime_error("cannot write job marker " + tmp.string());
    }
  }
  fs::rename(tmp, marker);
}

/// Load a completed job's scalar fields back from its marker. Returns false
/// (job reruns) when the marker is unreadable or malformed.
bool load_marker(const fs::path& marker, JobResult& r) {
  try {
    const auto kv = util::KeyValueConfig::parse_file(marker.string());
    r.wall_seconds = kv.get_double("wall_seconds", 0.0);
    r.vacancies_crc =
        static_cast<std::uint32_t>(kv.get_int("vacancies_crc", 0));
    r.kmc_events = static_cast<std::uint64_t>(kv.get_int("kmc_events", 0));
    r.vacancies = static_cast<std::uint64_t>(kv.get_int("vacancies", 0));
    r.mc_time = kv.get_double("mc_time", 0.0);
    r.vacancy_concentration = kv.get_double("vacancy_concentration", 0.0);
    r.md_seconds = kv.get_double("md_seconds", 0.0);
    r.kmc_seconds = kv.get_double("kmc_seconds", 0.0);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignSpec spec, Options opt)
    : spec_(std::move(spec)), opt_(std::move(opt)) {
  if (opt_.root.empty()) {
    throw std::invalid_argument("CampaignRunner needs a root directory");
  }
  if (opt_.max_concurrent > 0) spec_.max_concurrent = opt_.max_concurrent;
  for (std::size_t i = 0; i < spec_.jobs.size(); ++i) {
    index_of_[spec_.jobs[i].id] = i;
  }
}

CampaignOutcome CampaignRunner::run() {
  util::Timer wall;
  fs::create_directories(opt_.root);
  results_.assign(spec_.jobs.size(), JobResult{});
  if (spec_.uses_slave_pool) {
    pool_ = std::make_unique<sw::SlaveCorePool>(
        static_cast<std::size_t>(spec_.pool_cores));
  }

  // The whole campaign is known up front: enqueue everything, close, and let
  // the lanes drain the queue in priority order.
  JobQueue queue;
  for (const ScenarioSpec& job : spec_.jobs) queue.push(job);
  queue.close();

  int max_nranks = 1;
  bool wants_comm_trace = false;
  for (const ScenarioSpec& job : spec_.jobs) {
    max_nranks = std::max(
        max_nranks, static_cast<int>(job.config.get_int("ranks", 1)));
    if (!job.config.get_string("comm.trace", "").empty()) {
      wants_comm_trace = true;
    }
  }

  const int lanes = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(spec_.max_concurrent),
                            spec_.jobs.size()));
  std::vector<std::thread> lane_threads;
  lane_threads.reserve(static_cast<std::size_t>(lanes));
  for (int lane = 0; lane < lanes; ++lane) {
    lane_threads.emplace_back([&] {
      // One telemetry session per lane, REUSED across the lane's jobs:
      // snapshot_and_reset() between jobs keeps them isolated (no cross-job
      // bleed) without re-allocating ring buffers per job. Sized for the
      // largest job; install_global=false keeps it reachable only through
      // the ThreadScope each job opens.
      telemetry::Session::Options o;
      o.lanes_per_rank = 1 + spec_.pool_cores;  // master lane + CPE span lanes
      o.events_per_track = 1 << 10;
      o.install_global = false;
      // Any comm.trace job turns the lane's flight recorder on; the recorder
      // is reset between jobs, so each trace file holds exactly one job.
      if (wants_comm_trace) o.comm_events_per_rank = std::size_t{1} << 16;
      telemetry::Session session(max_nranks, o);
      for (;;) {
        if (stop_.load(std::memory_order_relaxed)) break;
        auto job = queue.try_pop();
        if (!job) break;
        // Sequence the id lookup before the move constructs the parameter.
        const std::size_t spec_index = index_of_.at(job->id);
        run_one_job(spec_index, std::move(*job), session);
      }
    });
  }
  for (auto& t : lane_threads) t.join();

  CampaignOutcome out;
  out.completed = completed_.load();
  out.skipped = skipped_.load();
  out.failed = failed_.load();
  out.complete = static_cast<std::size_t>(out.completed + out.skipped) ==
                 spec_.jobs.size();
  out.wall_seconds = wall.elapsed();
  const double done = out.completed + out.skipped;
  if (out.wall_seconds > 0.0) {
    out.jobs_per_hour = done / (out.wall_seconds / 3600.0);
    if (pool_ != nullptr) {
      out.pool = pool_->activity();
      out.pool_utilization = out.pool.busy_seconds / out.wall_seconds;
    }
  }
  out.assets = cache_.stats();
  for (JobResult& r : results_) {
    if (r.id.empty()) continue;  // never started (early stop)
    out.fleet.merge(r.metrics);
    out.fleet.merge(namespaced(r.metrics, "job/" + r.id + "/"));
    out.jobs.push_back(std::move(r));
  }
  results_.clear();
  return out;
}

void CampaignRunner::run_one_job(std::size_t spec_index, ScenarioSpec job,
                                 telemetry::Session& session) {
  JobResult r;
  r.id = job.id;
  r.label = job.label;
  r.priority = job.priority;

  const fs::path jobdir = fs::path(opt_.root) / job.id;
  const fs::path marker = jobdir / "result.mmd";
  if (opt_.resume && fs::exists(marker) && load_marker(marker, r)) {
    r.skipped = true;
  } else {
    // Jobs see only their own telemetry: this thread (and the rank threads
    // its World spawns) record into the lane session for the duration.
    telemetry::Session::ThreadScope telemetry_scope(&session);
    util::Timer t;
    try {
      core::SimulationConfig cfg = core::scenario_from_kv(job.config);
      fs::create_directories(jobdir / "ckpt");
      cfg.checkpoint_dir = (jobdir / "ckpt").string();  // per-job isolation
      cfg.checkpoint_every = opt_.checkpoint_every;
      cfg.resume = opt_.resume;
      if (cfg.use_slave_force) cfg.slave_pool = pool_.get();
      core::Simulation sim(cfg, cache_.assets_for(cfg));
      r.report = sim.run();
      r.wall_seconds = t.elapsed();
      r.metrics = session.metrics().snapshot_and_reset();
      r.vacancies_crc = vacancies_crc32(r.report.final_vacancies);
      r.kmc_events = r.report.kmc_events;
      r.vacancies = r.report.final_vacancies.size();
      r.mc_time = r.report.kmc_mc_time;
      r.vacancy_concentration = r.report.vacancy_concentration;
      r.md_seconds = r.report.md_seconds;
      r.kmc_seconds = r.report.kmc_seconds;
      write_marker(marker, r);
      if (!cfg.comm_trace.empty() && session.comm_recorder() != nullptr) {
        // The job's trace lands under its directory regardless of the path
        // the scenario gave (per-job isolation, like checkpoints).
        const fs::path trace_path =
            jobdir / fs::path(cfg.comm_trace).filename();
        const auto counter = [&](const char* name) -> std::uint64_t {
          const auto it = r.metrics.counters.find(name);
          return it == r.metrics.counters.end() ? 0 : it->second;
        };
        const auto nranks_u =
            static_cast<std::uint64_t>(std::max(1, cfg.nranks));
        const std::uint64_t steps =
            (counter("md.steps") + counter("kmc.cycles")) / nranks_u;
        std::map<std::string, std::string> meta;
        meta["scenario"] = job.id;
        meta["ranks"] = std::to_string(cfg.nranks);
        meta["box"] = std::to_string(cfg.md.nx);
        meta["atoms"] = std::to_string(2 * cfg.md.nx * cfg.md.ny * cfg.md.nz);
        meta["steps"] = std::to_string(steps > 0 ? steps : 1);
        const auto trace = telemetry::trace_from_recorder(
            *session.comm_recorder(), std::move(meta));
        std::string err;
        if (!telemetry::write_comm_trace_file(trace_path.string(), trace,
                                              &err)) {
          // A trace write failure must not fail a finished job.
          std::fprintf(stderr, "campaign: %s\n", err.c_str());
        }
      }
      if (session.comm_recorder() != nullptr) session.comm_recorder()->reset();
    } catch (const std::exception& e) {
      // One bad job must not take the fleet down: record the failure, leave
      // no marker (a resumed campaign retries it), and keep the lane
      // draining. The reset keeps the half-run's metrics out of the lane's
      // next job.
      r.error = e.what();
      r.wall_seconds = t.elapsed();
      (void)session.metrics().snapshot_and_reset();
      if (session.comm_recorder() != nullptr) session.comm_recorder()->reset();
    }
  }

  if (opt_.on_job_complete) opt_.on_job_complete(r);
  const bool was_skipped = r.skipped;
  const bool was_failed = !r.error.empty();
  {
    std::lock_guard<std::mutex> lk(results_mu_);
    results_[spec_index] = std::move(r);
  }
  if (was_failed) {
    failed_.fetch_add(1);
  } else if (was_skipped) {
    skipped_.fetch_add(1);
  } else {
    completed_.fetch_add(1);
  }
  const int finished = finished_.fetch_add(1) + 1;
  if (opt_.stop_after_jobs > 0 && finished >= opt_.stop_after_jobs) {
    stop_.store(true, std::memory_order_relaxed);
  }
}

bool write_campaign_summary_file(const std::string& path,
                                 const CampaignSpec& spec,
                                 const CampaignOutcome& outcome) {
  std::ofstream os(path);
  if (!os) return false;
  os.precision(17);
  os << "{\n";
  os << "  \"schema\": 1,\n";
  os << "  \"campaign\": ";
  json_escape(os, spec.name);
  os << ",\n";
  os << "  \"jobs_total\": " << spec.jobs.size() << ",\n";
  os << "  \"completed\": " << outcome.completed << ",\n";
  os << "  \"skipped\": " << outcome.skipped << ",\n";
  os << "  \"failed\": " << outcome.failed << ",\n";
  os << "  \"complete\": " << (outcome.complete ? "true" : "false") << ",\n";
  os << "  \"wall_seconds\": " << outcome.wall_seconds << ",\n";
  os << "  \"jobs_per_hour\": " << outcome.jobs_per_hour << ",\n";
  os << "  \"pool\": {\"cores\": " << spec.pool_cores
     << ", \"epochs\": " << outcome.pool.epochs
     << ", \"contended_epochs\": " << outcome.pool.contended_epochs
     << ", \"busy_seconds\": " << outcome.pool.busy_seconds
     << ", \"utilization\": " << outcome.pool_utilization << "},\n";
  os << "  \"assets\": {\"table_sets_built\": " << outcome.assets.misses
     << ", \"hits\": " << outcome.assets.hits << "},\n";
  os << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < outcome.jobs.size(); ++i) {
    const JobResult& r = outcome.jobs[i];
    os << "    {\"id\": ";
    json_escape(os, r.id);
    os << ", \"label\": ";
    json_escape(os, r.label);
    os << ", \"priority\": " << r.priority
       << ", \"skipped\": " << (r.skipped ? "true" : "false")
       << ", \"wall_seconds\": " << r.wall_seconds
       << ", \"vacancies\": " << r.vacancies
       << ", \"vacancies_crc\": " << r.vacancies_crc
       << ", \"kmc_events\": " << r.kmc_events;
    if (!r.error.empty()) {
      os << ", \"error\": ";
      json_escape(os, r.error);
    }
    os << ",\n     \"phase\": {\"md_seconds\": " << r.md_seconds
       << ", \"kmc_seconds\": " << r.kmc_seconds
       << ", \"md_compute_seconds\": " << r.report.md_compute_seconds
       << ", \"md_comm_seconds\": " << r.report.md_comm_seconds
       << ", \"kmc_compute_seconds\": " << r.report.kmc_compute_seconds
       << ", \"kmc_comm_seconds\": " << r.report.kmc_comm_seconds << "}}"
       << (i + 1 < outcome.jobs.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  // Fleet rollup: plain names are campaign totals, job/<id>/... the per-job
  // namespace (both from the same merge semantics as cross-rank aggregation).
  os << "  \"metrics\": {\n    \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : outcome.fleet.counters) {
    os << (first ? "" : ", ") << "\n      ";
    json_escape(os, name);
    os << ": " << v;
    first = false;
  }
  os << "\n    },\n    \"gauge_max\": {";
  first = true;
  for (const auto& [name, v] : outcome.fleet.gauge_max) {
    os << (first ? "" : ", ") << "\n      ";
    json_escape(os, name);
    os << ": " << v;
    first = false;
  }
  os << "\n    }\n  }\n}\n";
  return static_cast<bool>(os.flush());
}

}  // namespace mmd::serve
