#include "serve/asset_cache.h"

#include <sstream>

#include "potential/eam.h"

namespace mmd::serve {

core::SimulationAssets AssetCache::assets_for(const core::SimulationConfig& cfg) {
  const bool alloy = cfg.solute_fraction > 0.0;
  core::SimulationAssets assets;
  assets.md_tables = table_for(alloy, cfg.md.lattice_constant, cfg.md.cutoff,
                               cfg.md.table_segments);
  assets.kmc_tables = table_for(alloy, cfg.md.lattice_constant, cfg.md.cutoff,
                                cfg.kmc_table_segments);
  return assets;
}

std::shared_ptr<const pot::EamTableSet> AssetCache::table_for(
    bool alloy, double lattice_constant, double cutoff, int segments) {
  std::ostringstream key;
  key.precision(17);
  key << (alloy ? "fecu" : "fe") << '|' << lattice_constant << '|' << cutoff
      << '|' << segments;
  // Build under the lock: a second job asking for the same set while the
  // first build is in flight must wait for it, not build a duplicate. Builds
  // are milliseconds; the simplicity beats a per-key future scheme.
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tables_.find(key.str());
  if (it != tables_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  const pot::EamModel model = alloy
                                  ? pot::EamModel::iron_copper(lattice_constant, cutoff)
                                  : pot::EamModel::iron(lattice_constant, cutoff);
  auto tables = std::make_shared<const pot::EamTableSet>(
      pot::EamTableSet::build(model, segments));
  tables_.emplace(key.str(), tables);
  return tables;
}

AssetCache::Stats AssetCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t AssetCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tables_.size();
}

}  // namespace mmd::serve
