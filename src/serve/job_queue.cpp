#include "serve/job_queue.h"

#include <stdexcept>
#include <utility>

namespace mmd::serve {

void JobQueue::push(ScenarioSpec spec) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) throw std::logic_error("JobQueue::push after close");
    jobs_.emplace(spec.priority, std::move(spec));
  }
  cv_.notify_one();
}

std::optional<ScenarioSpec> JobQueue::pop() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return std::nullopt;
  auto it = jobs_.begin();
  ScenarioSpec out = std::move(it->second);
  jobs_.erase(it);
  return out;
}

std::optional<ScenarioSpec> JobQueue::try_pop() {
  std::lock_guard<std::mutex> lk(mu_);
  if (jobs_.empty()) return std::nullopt;
  auto it = jobs_.begin();
  ScenarioSpec out = std::move(it->second);
  jobs_.erase(it);
  return out;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return jobs_.size();
}

}  // namespace mmd::serve
