#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/simulation.h"

namespace mmd::serve {

/// Shared immutable asset cache for campaign service mode.
///
/// Building an EAM interpolation table set (spline sampling over thousands of
/// segments) dominates Simulation construction; a campaign re-deriving it per
/// job would pay that cost jobs_total x 2 times (MD + KMC resolutions). The
/// cache keys each table set by exactly what determines its content —
/// potential kind (Fe vs Fe-Cu), lattice constant, cutoff, and segment count
/// — builds it once under the lock, and hands out shared_ptr<const> aliases.
/// Jobs that agree on MD and KMC resolution even share ONE set for both.
///
/// Thread-safe; the tables themselves are immutable after construction, so
/// any number of concurrent jobs may interpolate from the same set.
class AssetCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< table sets actually built
  };

  /// The MD + KMC table pair `cfg` needs, from cache or freshly built.
  core::SimulationAssets assets_for(const core::SimulationConfig& cfg);

  Stats stats() const;
  /// Distinct table sets currently held.
  std::size_t size() const;

 private:
  std::shared_ptr<const pot::EamTableSet> table_for(bool alloy,
                                                    double lattice_constant,
                                                    double cutoff,
                                                    int segments);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const pot::EamTableSet>> tables_;
  Stats stats_;
};

}  // namespace mmd::serve
