#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "util/key_value.h"

namespace mmd::serve {

/// One expanded campaign job: a scenario-as-data config plus the scheduling
/// metadata the runner needs. The config carries the full key=value scenario
/// (base keys + this job's sweep overrides) with source/line attribution
/// preserved, so a bad key in an expanded job still points at the campaign
/// file line it came from.
struct ScenarioSpec {
  std::string id;     ///< stable short id ("j000", "j001", ...)
  std::string label;  ///< human-readable sweep coordinates ("pka.energy_ev=80")
  int priority = 0;   ///< higher runs earlier (job.priority key)
  util::KeyValueConfig config;
};

/// Thread-safe priority queue of campaign jobs.
///
/// Ordering: highest priority first, FIFO among equal priorities (insertion
/// order is preserved, so the expansion order of the campaign file breaks
/// ties deterministically). Producers push(); consumer lanes pop() — which
/// blocks until a job arrives or the queue is closed — or try_pop() when the
/// whole campaign is enqueued up front.
class JobQueue {
 public:
  /// Enqueue a job; wakes one blocked pop(). Throws if the queue is closed.
  void push(ScenarioSpec spec);

  /// Dequeue the highest-priority job, blocking while the queue is open but
  /// empty. Returns nullopt once the queue is closed AND drained.
  std::optional<ScenarioSpec> pop();

  /// Non-blocking dequeue; nullopt when currently empty.
  std::optional<ScenarioSpec> try_pop();

  /// No more jobs will arrive: blocked pop() calls drain the remainder and
  /// then return nullopt.
  void close();

  bool closed() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// greater<int> puts the highest priority first; multimap keeps equal keys
  /// in insertion order (stable tie-break).
  std::multimap<int, ScenarioSpec, std::greater<int>> jobs_;
  bool closed_ = false;
};

}  // namespace mmd::serve
