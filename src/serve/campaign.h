#pragma once

#include <string>
#include <vector>

#include "serve/job_queue.h"

namespace mmd::serve {

/// A declarative campaign: many scenarios over one process, expanded from a
/// single key=value file (docs/SERVICE.md).
///
///   campaign.name           = quick-matrix
///   campaign.max_concurrent = 4        # lanes running jobs side by side
///   campaign.pool_cores     = 8        # shared slave-core executor size
///
///   box          = 8                   # base scenario keys: any mmd_run key
///   kmc.cycles   = 30
///
///   sweep.pka.energy_ev = 80,160,320   # axes: comma-separated values over
///   sweep.temperature   = 300,600      # existing scenario keys
///
/// The sweep axes expand as a cross product (axis order = file order, last
/// axis fastest), each combination becoming one ScenarioSpec whose config is
/// the base keys overridden by that combination. `sweep.job.priority` (or a
/// base `job.priority`) feeds the queue ordering. Keys the runner owns —
/// checkpoint.*, xyz — are rejected: per-job checkpoint directories and
/// output routing are the campaign runner's job, not the file's.
struct CampaignSpec {
  std::string name = "campaign";
  int max_concurrent = 2;  ///< lanes (concurrent jobs)
  int pool_cores = 8;      ///< shared SlaveCorePool size for accel=slave jobs
  /// True when any job asks for accel=slave (the runner then builds the
  /// shared pool; a pure-reference campaign never spawns it).
  bool uses_slave_pool = false;
  /// Expanded jobs in deterministic expansion order. Every job's config has
  /// been validated against the scenario schema at parse time.
  std::vector<ScenarioSpec> jobs;

  static CampaignSpec parse(const util::KeyValueConfig& kv);
  static CampaignSpec parse_file(const std::string& path);
};

/// Example campaign file for --print-example (kept next to the parser so the
/// two cannot drift).
std::string campaign_example_text();

}  // namespace mmd::serve
