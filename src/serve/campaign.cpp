#include "serve/campaign.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/scenario.h"

namespace mmd::serve {

namespace {

constexpr std::size_t kMaxJobs = 1000;

/// Keys the campaign runner owns: per-job checkpoint directories, resume
/// policy, and output routing are scheduling decisions, not scenario physics.
/// `file_key` is the literal key in the file (for line attribution), `key`
/// the effective scenario key (they differ for sweep.<key>).
void forbid_runner_owned(const util::KeyValueConfig& kv,
                         const std::string& file_key, const std::string& key) {
  const bool owned = key == "xyz" || key == "resume" ||
                     key.rfind("checkpoint.", 0) == 0;
  if (!owned) return;
  std::ostringstream os;
  os << kv.source();
  if (const int line = kv.line_of(file_key); line > 0) os << ':' << line;
  os << ": key '" << key
     << "' is owned by the campaign runner (per-job checkpoint directories "
        "and output routing); remove it from the campaign file";
  throw std::invalid_argument(os.str());
}

std::vector<std::string> split_csv(const util::KeyValueConfig& kv,
                                   const std::string& key,
                                   const std::string& value) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(value);
  while (std::getline(is, item, ',')) {
    const auto b = item.find_first_not_of(" \t");
    const auto e = item.find_last_not_of(" \t");
    out.push_back(b == std::string::npos ? std::string()
                                         : item.substr(b, e - b + 1));
  }
  const bool empty_item =
      out.empty() || std::any_of(out.begin(), out.end(),
                                 [](const std::string& s) { return s.empty(); });
  if (empty_item) {
    std::ostringstream os;
    os << kv.source();
    if (const int line = kv.line_of(key); line > 0) os << ':' << line;
    os << ": sweep '" << key << "' needs a non-empty comma-separated list";
    throw std::invalid_argument(os.str());
  }
  return out;
}

}  // namespace

CampaignSpec CampaignSpec::parse(const util::KeyValueConfig& kv) {
  CampaignSpec spec;
  spec.name = kv.get_string("campaign.name", "campaign");
  spec.max_concurrent =
      static_cast<int>(kv.get_int("campaign.max_concurrent", 2));
  spec.pool_cores = static_cast<int>(kv.get_int("campaign.pool_cores", 8));
  if (spec.max_concurrent < 1) {
    throw std::invalid_argument("campaign.max_concurrent must be >= 1");
  }
  if (spec.pool_cores < 1) {
    throw std::invalid_argument("campaign.pool_cores must be >= 1");
  }

  struct Axis {
    std::string key;  ///< the scenario key being swept
    int line = 0;
    std::vector<std::string> values;
  };
  std::vector<Axis> axes;
  std::vector<std::string> base_keys;
  for (const auto& [key, value] : kv.all()) {
    if (key.rfind("campaign.", 0) == 0) continue;  // typos caught below
    if (key.rfind("sweep.", 0) == 0) {
      Axis a;
      a.key = key.substr(6);
      a.line = kv.line_of(key);
      if (a.key.empty()) {
        throw std::invalid_argument(kv.source() + ": sweep key without a target");
      }
      forbid_runner_owned(kv, key, a.key);
      a.values = split_csv(kv, key, value);
      kv.mark_known(key);
      axes.push_back(std::move(a));
      continue;
    }
    forbid_runner_owned(kv, key, key);
    base_keys.push_back(key);
    kv.mark_known(key);  // validated per expanded job, with this file's lines
  }
  // Axis order = file order (kv.all() iterates alphabetically), so the
  // expansion is what the author reads top to bottom: last axis fastest.
  std::stable_sort(axes.begin(), axes.end(),
                   [](const Axis& a, const Axis& b) { return a.line < b.line; });

  std::size_t total = 1;
  for (const Axis& a : axes) total *= a.values.size();
  if (total > kMaxJobs) {
    throw std::invalid_argument("campaign expands to " + std::to_string(total) +
                                " jobs (limit " + std::to_string(kMaxJobs) + ")");
  }

  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t j = 0; j < total; ++j) {
    ScenarioSpec job;
    char id[16];
    std::snprintf(id, sizeof id, "j%03zu", j);
    job.id = id;
    util::KeyValueConfig cfg;
    cfg.set_source(kv.source());
    for (const std::string& key : base_keys) {
      cfg.set(key, *kv.get(key), kv.line_of(key));
    }
    std::string label;
    for (std::size_t i = 0; i < axes.size(); ++i) {
      const std::string& value = axes[i].values[idx[i]];
      cfg.set(axes[i].key, value, axes[i].line);
      if (!label.empty()) label += ',';
      label += axes[i].key + '=' + value;
    }
    job.label = label.empty() ? "base" : label;
    job.priority = static_cast<int>(cfg.get_int("job.priority", 0));
    // Validate the expanded job NOW: every scenario key is consumed and
    // anything left over is a typo, reported with the campaign file's line.
    const core::SimulationConfig sim_cfg = core::scenario_from_kv(cfg);
    if (sim_cfg.use_slave_force) spec.uses_slave_pool = true;
    cfg.reject_unknown_keys();
    job.config = std::move(cfg);
    spec.jobs.push_back(std::move(job));
    for (std::size_t i = axes.size(); i-- > 0;) {
      if (++idx[i] < axes[i].values.size()) break;
      idx[i] = 0;
    }
  }

  kv.reject_unknown_keys();  // campaign.* typos
  return spec;
}

CampaignSpec CampaignSpec::parse_file(const std::string& path) {
  return parse(util::KeyValueConfig::parse_file(path));
}

std::string campaign_example_text() {
  return
      "# mmd_campaign file: base scenario keys + sweep axes\n"
      "campaign.name           = quick-matrix\n"
      "campaign.max_concurrent = 4       # lanes running jobs side by side\n"
      "campaign.pool_cores     = 8       # shared slave-core executor size\n"
      "\n"
      "# Base scenario (any mmd_run key except checkpoint.* / xyz):\n"
      "box        = 8\n"
      "ranks      = 1\n"
      "md.time_ps = 0.04\n"
      "kmc.cycles = 30\n"
      "\n"
      "# Axes expand as a cross product (file order, last axis fastest):\n"
      "sweep.pka.energy_ev = 80,160\n"
      "sweep.temperature   = 300,600\n"
      "\n"
      "# Optional: higher job.priority runs earlier (sweepable too)\n"
      "#sweep.job.priority = 1,0\n";
}

}  // namespace mmd::serve
