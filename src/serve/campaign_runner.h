#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "serve/asset_cache.h"
#include "serve/campaign.h"
#include "sunway/slave_pool.h"
#include "telemetry/registry.h"
#include "telemetry/session.h"

namespace mmd::serve {

/// Outcome of one campaign job.
struct JobResult {
  std::string id;
  std::string label;
  int priority = 0;
  /// Completed in an EARLIER campaign run — resumed campaigns skip it and
  /// reload these fields from the job's result marker instead of rerunning.
  bool skipped = false;
  double wall_seconds = 0.0;
  /// CRC-32 over the canonical text of final_vacancies: the cheap
  /// bit-identity fingerprint (a campaign job must reproduce standalone
  /// mmd_run exactly).
  std::uint32_t vacancies_crc = 0;
  std::uint64_t kmc_events = 0;
  std::uint64_t vacancies = 0;
  double mc_time = 0.0;
  double vacancy_concentration = 0.0;
  double md_seconds = 0.0;
  double kmc_seconds = 0.0;
  /// Full report (fresh runs only; a skipped job carries just the scalar
  /// fields above, reloaded from its marker).
  core::SimulationReport report;
  /// This job's isolated telemetry aggregate (empty for skipped jobs).
  telemetry::MetricsRegistry::Aggregate metrics;
  /// Non-empty when the job threw instead of completing (bad scenario at
  /// runtime, simulation failure). A failed job never gets a result marker,
  /// so a resumed campaign retries it; the other lanes keep draining.
  std::string error;
};

/// Fleet-wide view of a finished (or stopped) campaign.
struct CampaignOutcome {
  std::vector<JobResult> jobs;  ///< in expansion order (spec order)
  int completed = 0;            ///< jobs run to completion THIS invocation
  int skipped = 0;              ///< jobs skipped because already done
  int failed = 0;               ///< jobs that threw (see JobResult::error)
  double wall_seconds = 0.0;
  double jobs_per_hour = 0.0;   ///< (completed + skipped) / wall hours
  sw::SlaveCorePool::PoolActivity pool;  ///< shared-executor activity
  double pool_utilization = 0.0;  ///< pool busy_seconds / campaign wall
  AssetCache::Stats assets;
  /// Rollup of every job's telemetry: plain names hold fleet totals,
  /// "job/<id>/<name>" the per-job values (the summary JSON's namespace).
  telemetry::MetricsRegistry::Aggregate fleet;
  /// True when every job in the spec is done (false after an early stop).
  bool complete = false;
};

/// Interleaves many scenario jobs over one process: a lane per concurrent
/// job, one shared AssetCache, and — for accel=slave jobs — one shared
/// SlaveCorePool whose epochs from different jobs interleave (the pool never
/// parks while any job has runnable work; see SlaveCorePool). Each job runs
/// under its own thread-scoped telemetry session and writes checkpoints into
/// its own subdirectory of the campaign root, so jobs never observe each
/// other. A completed job atomically drops `<root>/<id>/result.mmd`; a
/// resumed campaign skips marked jobs and lets unfinished ones pick up from
/// their newest per-job checkpoint epoch. docs/SERVICE.md covers the model.
class CampaignRunner {
 public:
  struct Options {
    /// Campaign root directory (markers + per-job checkpoint subdirs).
    std::string root;
    /// Override spec.max_concurrent when > 0.
    int max_concurrent = 0;
    /// KMC cycles between per-job checkpoint epochs (0 = only the result
    /// marker makes a job resumable-as-done; no mid-job restart points).
    int checkpoint_every = 0;
    /// Skip jobs with a result marker; resume the rest from their newest
    /// usable checkpoint.
    bool resume = false;
    /// Deterministic mid-campaign stop for kill/resume drills: once this
    /// many jobs have finished in this invocation, no further job starts
    /// (in-flight lanes still complete their current job). 0 = run all.
    int stop_after_jobs = 0;
    /// Called on the completing lane's thread, jobs in any order.
    std::function<void(const JobResult&)> on_job_complete;
  };

  CampaignRunner(CampaignSpec spec, Options opt);

  /// Run (or resume) the campaign; returns when every lane has drained.
  CampaignOutcome run();

  const CampaignSpec& spec() const { return spec_; }
  const AssetCache& assets() const { return cache_; }

 private:
  void run_one_job(std::size_t spec_index, ScenarioSpec job,
                   telemetry::Session& session);

  CampaignSpec spec_;
  Options opt_;
  AssetCache cache_;
  /// Shared epoch-interleaved executor (built only when a job wants it).
  std::unique_ptr<sw::SlaveCorePool> pool_;
  std::map<std::string, std::size_t> index_of_;  ///< job id -> spec index

  // Per-run state (one run() per runner).
  std::vector<JobResult> results_;
  std::mutex results_mu_;
  std::atomic<int> completed_{0};
  std::atomic<int> skipped_{0};
  std::atomic<int> failed_{0};
  std::atomic<int> finished_{0};  ///< completed_ + skipped_ + failed_
  std::atomic<bool> stop_{false};
};

/// Write the campaign summary JSON (jobs/hour, pool utilization, per-job
/// phase breakdown, namespaced metric rollup). Returns false when the file
/// cannot be written.
bool write_campaign_summary_file(const std::string& path,
                                 const CampaignSpec& spec,
                                 const CampaignOutcome& outcome);

}  // namespace mmd::serve
