#pragma once

#include <cstdint>

namespace mmd::perf {

/// Alpha-beta network model with a contention term, standing in for the
/// TaihuLight interconnect (DESIGN.md §2). Message cost = latency + bytes /
/// effective bandwidth, where effective bandwidth degrades logarithmically
/// with the number of ranks — the "communication contention" the paper cites
/// for the slowly growing communication time in its weak-scaling figures.
struct NetworkModel {
  double latency_s = 1.5e-6;        ///< per-message startup
  double bandwidth_bps = 6.0e9;     ///< point-to-point stream [bytes/s]
  double contention_alpha = 0.05;   ///< bandwidth loss per log2(ranks)

  double effective_bandwidth(std::uint64_t nranks) const;
  double p2p_time(std::uint64_t msgs, std::uint64_t bytes,
                  std::uint64_t nranks) const;
  /// Tree allreduce/barrier: 2*ceil(log2 n) latency hops.
  double collective_time(std::uint64_t nranks) const;
};

/// Per-rank, per-step (or per-cycle) cost profile extracted from a live
/// downscaled run: measured compute seconds plus counted communication.
struct StepProfile {
  double compute_s = 0.0;
  std::uint64_t p2p_msgs = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t collectives = 0;
};

/// Projects live measurements to paper-scale core counts.
///
/// Weak scaling: per-rank quantities stay fixed, communication grows with
/// contention and collective depth. Strong scaling: per-rank compute and
/// ghost traffic shrink with the subdomain (volume ~ 1/f, surface ~ f^-2/3).
class ScalingModel {
 public:
  explicit ScalingModel(NetworkModel net = {}) : net_(net) {}

  const NetworkModel& network() const { return net_; }

  /// Modeled wall time of one step at `nranks` given the per-rank profile.
  double step_time(const StepProfile& p, std::uint64_t nranks) const;

  /// Derive the per-rank profile at `factor` times more ranks than the
  /// measured base, with the global problem size fixed (strong scaling).
  StepProfile strong_scale(const StepProfile& base, double factor,
                           double cache_boost = 1.0) const;

  /// Weak-scaling parallel efficiency: T(base) / T(n).
  static double weak_efficiency(double t_base, double t_n);

  /// Strong-scaling speedup and efficiency.
  static double strong_efficiency(double speedup, double rank_ratio);

  /// Calibration: the one quantity a simulated substrate cannot measure is
  /// the real machine's per-rank compute time (the authors' slave-core code
  /// is vectorized many-core; our reference path is scalar). Given modeled
  /// communication times at the base and final scale, solve for the compute
  /// time C that reproduces the paper's REPORTED efficiency at the final
  /// point; every intermediate point of the curve is then a prediction of
  /// this model. Returns C [s]; 0 if the target is unreachable.
  ///
  /// Weak scaling: eff = (C + m_base) / (C + m_n).
  static double calibrate_weak_compute(double m_base, double m_n,
                                       double target_eff);

  /// Strong scaling: speedup = (C + m_base) / (C/(f*boost_n) + m_n), with f
  /// the rank ratio; target_speedup = target_eff * f.
  static double calibrate_strong_compute(double m_base, double m_n, double f,
                                         double target_speedup,
                                         double boost_n = 1.0);

 private:
  NetworkModel net_;
};

/// TaihuLight accounting helper: the paper counts "master+slave cores", i.e.
/// 65 cores per core group (1 MPE + 64 CPEs), with one MPI rank per group.
inline constexpr std::uint64_t kCoresPerGroup = 65;

inline std::uint64_t ranks_from_cores(std::uint64_t master_plus_slave_cores) {
  return master_plus_slave_cores / kCoresPerGroup;
}

inline std::uint64_t cores_from_ranks(std::uint64_t ranks) {
  return ranks * kCoresPerGroup;
}

}  // namespace mmd::perf
