#include "perf/scaling_model.h"

#include <algorithm>
#include <cmath>

namespace mmd::perf {

double NetworkModel::effective_bandwidth(std::uint64_t nranks) const {
  const double lg = nranks > 1 ? std::log2(static_cast<double>(nranks)) : 0.0;
  return bandwidth_bps / (1.0 + contention_alpha * lg);
}

double NetworkModel::p2p_time(std::uint64_t msgs, std::uint64_t bytes,
                              std::uint64_t nranks) const {
  return static_cast<double>(msgs) * latency_s +
         static_cast<double>(bytes) / effective_bandwidth(nranks);
}

double NetworkModel::collective_time(std::uint64_t nranks) const {
  const double depth =
      nranks > 1 ? std::ceil(std::log2(static_cast<double>(nranks))) : 0.0;
  return 2.0 * depth * latency_s;
}

double ScalingModel::step_time(const StepProfile& p, std::uint64_t nranks) const {
  return p.compute_s + net_.p2p_time(p.p2p_msgs, p.p2p_bytes, nranks) +
         static_cast<double>(p.collectives) * net_.collective_time(nranks);
}

StepProfile ScalingModel::strong_scale(const StepProfile& base, double factor,
                                       double cache_boost) const {
  StepProfile p = base;
  p.compute_s = base.compute_s / factor / cache_boost;
  // Ghost traffic follows the subdomain surface: (1/f)^(2/3) per rank.
  const double surface = std::pow(1.0 / factor, 2.0 / 3.0);
  p.p2p_bytes =
      static_cast<std::uint64_t>(static_cast<double>(base.p2p_bytes) * surface);
  // Message count per rank is constant (same neighbor topology).
  return p;
}

double ScalingModel::weak_efficiency(double t_base, double t_n) {
  return t_n > 0.0 ? std::min(1.0, t_base / t_n) : 0.0;
}

double ScalingModel::strong_efficiency(double speedup, double rank_ratio) {
  return rank_ratio > 0.0 ? speedup / rank_ratio : 0.0;
}

double ScalingModel::calibrate_weak_compute(double m_base, double m_n,
                                            double target_eff) {
  // (C + m_base) / (C + m_n) = e  =>  C = (e*m_n - m_base) / (1 - e).
  if (target_eff <= 0.0 || target_eff >= 1.0 || m_n <= m_base) return 0.0;
  const double c = (target_eff * m_n - m_base) / (1.0 - target_eff);
  return std::max(0.0, c);
}

double ScalingModel::calibrate_strong_compute(double m_base, double m_n,
                                              double f, double target_speedup,
                                              double boost_n) {
  // (C + m_base) / (C/(f*b) + m_n) = s  =>  C (1 - s/(f*b)) = s*m_n - m_base.
  const double denom = 1.0 - target_speedup / (f * boost_n);
  if (denom <= 0.0) return 0.0;
  return std::max(0.0, (target_speedup * m_n - m_base) / denom);
}

}  // namespace mmd::perf
