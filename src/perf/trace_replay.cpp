#include "perf/trace_replay.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <stdexcept>

#include "perf/scaling_model.h"
#include "telemetry/comm_trace.h"

namespace mmd::perf {

namespace {

/// Paper-reported curves (Fig. 12/13 as reproduced by bench/fig11_md_weak and
/// bench/fig10_md_strong): cores are the paper's master+slave accounting
/// (65 per rank). The final weak row beyond the paper is the full machine —
/// 40,960 nodes x 4 core groups — with no reported value to compare against.
struct PaperRow {
  std::uint64_t cores;
  double value;
};

constexpr PaperRow kWeakRows[] = {
    {104000, 0.801},  {208000, 0.867}, {416000, 0.951},   {832000, 0.907},
    {1664000, 0.884}, {6656000, 0.85}, {10649600, 0.0}};
constexpr std::size_t kWeakPaperEnd = 5;  ///< index of the calibration target

constexpr PaperRow kStrongRows[] = {{97500, 1.0},    {195000, 1.96},
                                    {390000, 3.8},   {780000, 7.2},
                                    {1560000, 12.8}, {3120000, 19.5},
                                    {6240000, 26.4}};

/// Paper problem sizes the traffic is rescaled to (surface ~ atoms^(2/3)):
/// weak runs hold ~3.9e7 atoms per rank (4e12 atoms on 102,400 ranks);
/// strong runs divide 3.2e10 atoms among the ranks of each row.
constexpr double kWeakAtomsPerRank = 4.0e12 / 102400.0;
constexpr double kStrongAtomsTotal = 3.2e10;

double surface_scale(double target_atoms_per_rank, double trace_atoms_per_rank) {
  if (trace_atoms_per_rank <= 0.0 || target_atoms_per_rank <= 0.0) return 1.0;
  return std::pow(target_atoms_per_rank / trace_atoms_per_rank, 2.0 / 3.0);
}

/// Model one communication round at `nranks`: every rank sends its six face
/// messages on a near-cubic 3D grid with linear rank→node placement, so x
/// neighbors are mostly intra-node while y/z neighbors cross node and (at
/// scale) supernode boundaries — the traffic pattern of the paper's 3D
/// domain decomposition on TaihuLight.
struct RoundShape {
  double bytes_per_neighbor = 0.0;
  int msgs_per_neighbor = 1;
  double collectives_per_step = 0.0;
};

struct RoundResult {
  double comm_s = 0.0;
  std::string bottleneck;
};

RoundResult model_round(const PlatformConfig& platform, std::uint64_t nranks,
                        const RoundShape& shape, const LogGpModel& host,
                        bool contention) {
  TopologyPlatform topo(platform, nranks);
  const Grid3 g = near_cubic_grid(nranks);
  const std::uint64_t msg_bytes = static_cast<std::uint64_t>(
      std::max(1.0, shape.bytes_per_neighbor /
                        static_cast<double>(shape.msgs_per_neighbor)));
  const auto wrap = [](std::uint64_t i, std::uint64_t n, std::int64_t d) {
    return (i + static_cast<std::uint64_t>(static_cast<std::int64_t>(n) + d)) % n;
  };
  for (std::uint64_t iz = 0; iz < g.z; ++iz) {
    for (std::uint64_t iy = 0; iy < g.y; ++iy) {
      for (std::uint64_t ix = 0; ix < g.x; ++ix) {
        const std::uint64_t src = ix + g.x * (iy + g.y * iz);
        const std::uint64_t dsts[6] = {
            wrap(ix, g.x, 1) + g.x * (iy + g.y * iz),
            wrap(ix, g.x, -1) + g.x * (iy + g.y * iz),
            ix + g.x * (wrap(iy, g.y, 1) + g.y * iz),
            ix + g.x * (wrap(iy, g.y, -1) + g.y * iz),
            ix + g.x * (iy + g.y * wrap(iz, g.z, 1)),
            ix + g.x * (iy + g.y * wrap(iz, g.z, -1))};
        for (const std::uint64_t dst : dsts) {
          if (dst == src) continue;  // degenerate periodic dim (size 1..2)
          for (int m = 0; m < shape.msgs_per_neighbor; ++m) {
            topo.add_message(src, dst, msg_bytes, host);
          }
        }
      }
    }
  }
  const TopologyPlatform::RoundCost rc =
      contention ? topo.round_cost() : topo.round_cost_no_contention();
  RoundResult out;
  out.comm_s = rc.total_s +
               shape.collectives_per_step * topo.collective_time();
  out.bottleneck = rc.bottleneck;
  return out;
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void write_points(std::ostream& os, const std::vector<ProjectionPoint>& pts,
                  const char* value_key, const char* paper_key) {
  os << "[";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const ProjectionPoint& p = pts[i];
    if (i > 0) os << ",";
    os << "\n    {\"cores\":" << p.cores << ",\"ranks\":" << p.ranks
       << ",\"nodes\":" << p.nodes << ",\"comm_s\":" << p.comm_s
       << ",\"time_s\":" << p.time_s << ",\"" << value_key << "\":" << p.value
       << ",\"" << paper_key << "\":" << p.paper_value << ",\"bottleneck\":";
    json_escape(os, p.bottleneck);
    os << "}";
  }
  os << "]";
}

}  // namespace

TraceStats summarize_trace(const telemetry::CommTraceData& trace) {
  TraceStats st;
  st.nranks = trace.ranks.size();
  st.steps = std::max<std::uint64_t>(1, trace.meta_u64("steps", 1));
  st.dropped = trace.total_dropped();
  const std::uint64_t atoms = trace.meta_u64("atoms", 0);
  if (st.nranks > 0 && atoms > 0) {
    st.atoms_per_rank =
        static_cast<double>(atoms) / static_cast<double>(st.nranks);
  }

  std::uint64_t sends = 0, p2p_bytes = 0, collectives = 0;
  double comm_s_total = 0.0;
  double peers_total = 0.0;
  for (const auto& rank : trace.ranks) {
    std::set<std::int32_t> peers;
    std::uint64_t first_t0 = UINT64_MAX, last_t1 = 0;
    for (const telemetry::CommEvent& ev : rank.events) {
      ++st.events;
      first_t0 = std::min(first_t0, ev.t0_ns);
      last_t1 = std::max(last_t1, ev.t1_ns);
      const double dur_s =
          static_cast<double>(ev.t1_ns - ev.t0_ns) * 1.0e-9;
      switch (ev.op) {
        case telemetry::CommOp::kSend:
          ++sends;
          p2p_bytes += ev.bytes;
          if (ev.peer >= 0) peers.insert(ev.peer);
          st.send_samples.push_back(MsgSample{ev.bytes, dur_s});
          comm_s_total += dur_s;
          break;
        case telemetry::CommOp::kCollective:
          ++collectives;
          comm_s_total += dur_s;
          break;
        case telemetry::CommOp::kIrecvPost:
          break;  // instantaneous post
        default:
          comm_s_total += dur_s;  // kRecv / kWait / kPut
      }
    }
    peers_total += static_cast<double>(peers.size());
    if (last_t1 > first_t0 && first_t0 != UINT64_MAX) {
      st.wall_s = std::max(
          st.wall_s, static_cast<double>(last_t1 - first_t0) * 1.0e-9);
    }
  }
  if (st.nranks == 0) return st;
  const double rank_steps =
      static_cast<double>(st.nranks) * static_cast<double>(st.steps);
  st.sends_per_rank_step = static_cast<double>(sends) / rank_steps;
  st.bytes_per_rank_step = static_cast<double>(p2p_bytes) / rank_steps;
  st.collectives_per_rank_step = static_cast<double>(collectives) / rank_steps;
  st.peers_per_rank = peers_total / static_cast<double>(st.nranks);
  st.comm_s_per_step =
      comm_s_total / rank_steps;  // mean over ranks, per step
  st.compute_s_per_step = std::max(
      0.0, st.wall_s / static_cast<double>(st.steps) - st.comm_s_per_step);
  return st;
}

ProjectionResult project_scaling(const telemetry::CommTraceData& trace,
                                 const ProjectionOptions& opt) {
  ProjectionResult result;
  result.options = opt;
  result.stats = summarize_trace(trace);
  TraceStats& st = result.stats;
  if (st.nranks == 0) {
    throw std::runtime_error("trace replay: trace has no ranks");
  }
  if (opt.steps > 0 && opt.steps != st.steps) {
    // Re-normalize the per-step shape to the caller's step count.
    const double f = static_cast<double>(st.steps) /
                     static_cast<double>(opt.steps);
    st.sends_per_rank_step *= f;
    st.bytes_per_rank_step *= f;
    st.collectives_per_rank_step *= f;
    st.comm_s_per_step *= f;
    st.steps = opt.steps;
    st.compute_s_per_step = std::max(
        0.0, st.wall_s / static_cast<double>(st.steps) - st.comm_s_per_step);
  }
  result.host_model = LogGpModel::fit(st.send_samples, opt.breakpoints);

  const int msgs_per_neighbor = static_cast<int>(std::clamp(
      std::llround(st.sends_per_rank_step / 6.0), 1ll, 8ll));

  // --- weak scaling: per-rank subdomain fixed at the paper's atom load ---
  const double weak_scale = surface_scale(kWeakAtomsPerRank, st.atoms_per_rank);
  std::vector<double> weak_m(std::size(kWeakRows));
  result.weak.resize(std::size(kWeakRows));
  for (std::size_t i = 0; i < std::size(kWeakRows); ++i) {
    ProjectionPoint& p = result.weak[i];
    p.cores = kWeakRows[i].cores;
    p.paper_value = kWeakRows[i].value;
    p.ranks = ranks_from_cores(p.cores);
    RoundShape shape;
    shape.bytes_per_neighbor = st.bytes_per_rank_step * weak_scale / 6.0;
    shape.msgs_per_neighbor = msgs_per_neighbor;
    shape.collectives_per_step = st.collectives_per_rank_step;
    const RoundResult rr = model_round(opt.platform, p.ranks, shape,
                                       result.host_model, opt.contention);
    weak_m[i] = rr.comm_s;
    p.comm_s = rr.comm_s;
    p.bottleneck = rr.bottleneck;
    p.nodes = TopologyPlatform(opt.platform, p.ranks).nnodes();
  }
  result.weak_compute_s =
      opt.compute_from_trace
          ? st.compute_s_per_step
          : ScalingModel::calibrate_weak_compute(
                weak_m[0], weak_m[kWeakPaperEnd], opt.weak_target_eff);
  for (std::size_t i = 0; i < result.weak.size(); ++i) {
    ProjectionPoint& p = result.weak[i];
    p.time_s = result.weak_compute_s + weak_m[i];
    p.value = (result.weak_compute_s + weak_m[0]) / p.time_s;
  }

  // --- strong scaling: global problem fixed, subdomains shrink ---
  const std::uint64_t strong_base_ranks = ranks_from_cores(kStrongRows[0].cores);
  const double strong_base_apr =
      kStrongAtomsTotal / static_cast<double>(strong_base_ranks);
  const double strong_scale = surface_scale(strong_base_apr, st.atoms_per_rank);
  std::vector<double> strong_m(std::size(kStrongRows));
  std::vector<double> strong_f(std::size(kStrongRows));
  result.strong.resize(std::size(kStrongRows));
  for (std::size_t i = 0; i < std::size(kStrongRows); ++i) {
    ProjectionPoint& p = result.strong[i];
    p.cores = kStrongRows[i].cores;
    p.paper_value = kStrongRows[i].value;
    p.ranks = ranks_from_cores(p.cores);
    const double f = static_cast<double>(p.cores) /
                     static_cast<double>(kStrongRows[0].cores);
    strong_f[i] = f;
    RoundShape shape;
    shape.bytes_per_neighbor = st.bytes_per_rank_step * strong_scale *
                               std::pow(f, -2.0 / 3.0) / 6.0;
    shape.msgs_per_neighbor = msgs_per_neighbor;
    shape.collectives_per_step = st.collectives_per_rank_step;
    const RoundResult rr = model_round(opt.platform, p.ranks, shape,
                                       result.host_model, opt.contention);
    strong_m[i] = rr.comm_s;
    p.comm_s = rr.comm_s;
    p.bottleneck = rr.bottleneck;
    p.nodes = TopologyPlatform(opt.platform, p.ranks).nnodes();
  }
  const std::size_t last = std::size(kStrongRows) - 1;
  result.strong_compute_s =
      opt.compute_from_trace
          ? st.compute_s_per_step * strong_scale
          : ScalingModel::calibrate_strong_compute(
                strong_m[0], strong_m[last], strong_f[last],
                opt.strong_target_speedup);
  for (std::size_t i = 0; i < result.strong.size(); ++i) {
    ProjectionPoint& p = result.strong[i];
    p.time_s = result.strong_compute_s / strong_f[i] + strong_m[i];
    p.value = (result.strong_compute_s + strong_m[0]) / p.time_s;
  }
  return result;
}

void write_projection_json(std::ostream& os, const ProjectionResult& r) {
  os << "{\"schema\":\"mmd.trace_replay\",\"schema_version\":1,";
  os << "\"trace\":{\"ranks\":" << r.stats.nranks
     << ",\"steps\":" << r.stats.steps << ",\"events\":" << r.stats.events
     << ",\"dropped\":" << r.stats.dropped
     << ",\"atoms_per_rank\":" << r.stats.atoms_per_rank
     << ",\"sends_per_rank_step\":" << r.stats.sends_per_rank_step
     << ",\"bytes_per_rank_step\":" << r.stats.bytes_per_rank_step
     << ",\"collectives_per_rank_step\":" << r.stats.collectives_per_rank_step
     << ",\"peers_per_rank\":" << r.stats.peers_per_rank
     << ",\"wall_s\":" << r.stats.wall_s
     << ",\"comm_s_per_step\":" << r.stats.comm_s_per_step
     << ",\"compute_s_per_step\":" << r.stats.compute_s_per_step << "},";
  os << "\"calibration\":{\"segments\":[";
  const auto& segs = r.host_model.segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"max_bytes\":";
    if (segs[i].max_bytes == UINT64_MAX) {
      os << "null";
    } else {
      os << segs[i].max_bytes;
    }
    os << ",\"overhead_s\":" << segs[i].overhead_s
       << ",\"per_byte_s\":" << segs[i].per_byte_s << "}";
  }
  os << "],\"samples\":" << r.stats.send_samples.size() << "},";
  const PlatformConfig& pc = r.options.platform;
  os << "\"platform\":{\"name\":";
  json_escape(os, pc.name);
  os << ",\"ranks_per_node\":" << pc.ranks_per_node
     << ",\"nodes_per_supernode\":" << pc.nodes_per_supernode
     << ",\"uplinks_per_supernode\":" << pc.uplinks_per_supernode
     << ",\"intra_node_bps\":" << pc.intra_node.bandwidth_bps
     << ",\"node_link_bps\":" << pc.node_link.bandwidth_bps
     << ",\"uplink_bps\":" << pc.uplink.bandwidth_bps
     << ",\"contention\":" << (r.options.contention ? "true" : "false") << "},";
  os << "\"weak\":{\"target_efficiency\":" << r.options.weak_target_eff
     << ",\"compute_s\":" << r.weak_compute_s << ",\"points\":";
  write_points(os, r.weak, "efficiency", "paper_efficiency");
  os << "},";
  os << "\"strong\":{\"target_speedup\":" << r.options.strong_target_speedup
     << ",\"compute_s\":" << r.strong_compute_s << ",\"points\":";
  write_points(os, r.strong, "speedup", "paper_speedup");
  os << "}}\n";
}

bool write_projection_json_file(const std::string& path,
                                const ProjectionResult& result) {
  std::ofstream os(path);
  if (!os) return false;
  write_projection_json(os, result);
  return static_cast<bool>(os);
}

void print_projection(std::ostream& os, const ProjectionResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Trace: %llu ranks, %llu steps, %llu events (%llu dropped)\n",
                static_cast<unsigned long long>(r.stats.nranks),
                static_cast<unsigned long long>(r.stats.steps),
                static_cast<unsigned long long>(r.stats.events),
                static_cast<unsigned long long>(r.stats.dropped));
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "  %.1f sends/rank-step, %.0f B/rank-step, %.2f peers/rank, "
                "%.2f collectives/rank-step\n",
                r.stats.sends_per_rank_step, r.stats.bytes_per_rank_step,
                r.stats.peers_per_rank, r.stats.collectives_per_rank_step);
  os << buf;
  os << "LogGP host model (calibrated from "
     << r.stats.send_samples.size() << " send samples):\n";
  for (const auto& s : r.host_model.segments()) {
    if (s.max_bytes == UINT64_MAX) {
      std::snprintf(buf, sizeof(buf), "  <= inf B");
    } else {
      std::snprintf(buf, sizeof(buf), "  <= %llu B",
                    static_cast<unsigned long long>(s.max_bytes));
    }
    os << buf;
    std::snprintf(buf, sizeof(buf), ": o = %.3f us, G = %.4f ns/B\n",
                  s.overhead_s * 1e6, s.per_byte_s * 1e9);
    os << buf;
  }
  os << "\nWeak scaling (" << r.options.platform.name
     << (r.options.contention ? ", link contention on" : ", contention off")
     << "), compute " << r.weak_compute_s << " s/step:\n";
  std::snprintf(buf, sizeof(buf), "  %10s %9s %7s %12s %11s %7s  %s\n", "cores",
                "ranks", "nodes", "comm [ms]", "efficiency", "paper",
                "bottleneck");
  os << buf;
  for (const ProjectionPoint& p : r.weak) {
    std::snprintf(buf, sizeof(buf),
                  "  %10llu %9llu %7llu %12.3f %10.1f%% %6.1f%%  %s\n",
                  static_cast<unsigned long long>(p.cores),
                  static_cast<unsigned long long>(p.ranks),
                  static_cast<unsigned long long>(p.nodes), p.comm_s * 1e3,
                  100.0 * p.value, 100.0 * p.paper_value,
                  p.bottleneck.c_str());
    os << buf;
  }
  os << "\nStrong scaling, base compute " << r.strong_compute_s
     << " s/step:\n";
  std::snprintf(buf, sizeof(buf), "  %10s %9s %7s %12s %9s %7s  %s\n", "cores",
                "ranks", "nodes", "comm [ms]", "speedup", "paper",
                "bottleneck");
  os << buf;
  for (const ProjectionPoint& p : r.strong) {
    std::snprintf(buf, sizeof(buf),
                  "  %10llu %9llu %7llu %12.3f %8.2fx %6.2fx  %s\n",
                  static_cast<unsigned long long>(p.cores),
                  static_cast<unsigned long long>(p.ranks),
                  static_cast<unsigned long long>(p.nodes), p.comm_s * 1e3,
                  p.value, p.paper_value, p.bottleneck.c_str());
    os << buf;
  }
}

}  // namespace mmd::perf
