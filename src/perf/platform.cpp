#include "perf/platform.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mmd::perf {

namespace {

constexpr std::uint64_t kNoCap = std::numeric_limits<std::uint64_t>::max();

/// Ordinary least squares of seconds = o + G*bytes; returns false when the
/// sample set cannot support a 2-parameter fit (too few points or no size
/// spread). Coefficients are clamped nonnegative: a negative o or G is
/// measurement noise, and extrapolating it to paper scale would produce
/// negative message costs.
bool least_squares(std::span<const MsgSample> samples, double* o, double* g) {
  if (samples.size() < 4) return false;
  double n = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const MsgSample& s : samples) {
    const double x = static_cast<double>(s.bytes);
    n += 1.0;
    sx += x;
    sy += s.seconds;
    sxx += x * x;
    sxy += x * s.seconds;
  }
  const double det = n * sxx - sx * sx;
  if (det <= 0.0 || !(std::abs(det) > n * 1e-9)) return false;
  const double slope = (n * sxy - sx * sy) / det;
  const double intercept = (sy - slope * sx) / n;
  *g = std::max(0.0, slope);
  *o = std::max(0.0, intercept);
  return *o > 0.0 || *g > 0.0;
}

std::uint64_t ceil_log2(std::uint64_t n) {
  std::uint64_t bits = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

LogGpModel::LogGpModel()
    : segments_({Segment{kNoCap, 1.0e-6, 0.25e-9}}) {}

LogGpModel::LogGpModel(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    segments_ = LogGpModel().segments_;
  }
  segments_.back().max_bytes = kNoCap;
}

double LogGpModel::message_time(std::uint64_t bytes) const {
  for (const Segment& s : segments_) {
    if (bytes <= s.max_bytes) {
      return s.overhead_s + s.per_byte_s * static_cast<double>(bytes);
    }
  }
  const Segment& s = segments_.back();
  return s.overhead_s + s.per_byte_s * static_cast<double>(bytes);
}

LogGpModel LogGpModel::fit(std::span<const MsgSample> samples,
                           std::span<const std::uint64_t> breakpoints) {
  if (samples.empty()) return LogGpModel();

  double global_o = 0.0, global_g = 0.0;
  if (!least_squares(samples, &global_o, &global_g)) {
    // Not enough spread for a slope: the mean cost becomes a pure overhead.
    double sum = 0.0;
    for (const MsgSample& s : samples) sum += s.seconds;
    global_o = sum / static_cast<double>(samples.size());
    global_g = 0.0;
  }

  std::vector<Segment> segments;
  std::uint64_t lo = 0;
  for (std::size_t i = 0; i <= breakpoints.size(); ++i) {
    const std::uint64_t hi = i < breakpoints.size() ? breakpoints[i] : kNoCap;
    if (hi <= lo && hi != kNoCap) continue;  // ignore unsorted/duplicate bounds
    // Segment i covers (lo, hi]; the first also includes zero-byte messages.
    std::vector<MsgSample> in_segment;
    for (const MsgSample& s : samples) {
      if ((lo == 0 || s.bytes > lo) && s.bytes <= hi) in_segment.push_back(s);
    }
    double o = global_o, g = global_g;
    least_squares(in_segment, &o, &g);  // keep global fit on failure
    segments.push_back(Segment{hi, o, g});
    lo = hi;
  }
  return LogGpModel(std::move(segments));
}

TopologyPlatform::TopologyPlatform(PlatformConfig cfg, std::uint64_t nranks)
    : cfg_(std::move(cfg)), nranks_(nranks) {
  if (cfg_.ranks_per_node <= 0 || cfg_.nodes_per_supernode <= 0 ||
      cfg_.uplinks_per_supernode <= 0) {
    throw std::invalid_argument("TopologyPlatform: nonpositive config");
  }
  const auto rpn = static_cast<std::uint64_t>(cfg_.ranks_per_node);
  const auto nps = static_cast<std::uint64_t>(cfg_.nodes_per_supernode);
  nnodes_ = (nranks_ + rpn - 1) / rpn;
  nsupernodes_ = (nnodes_ + nps - 1) / nps;
  intra_bytes_.assign(nnodes_, 0);
  node_up_bytes_.assign(nnodes_, 0);
  node_down_bytes_.assign(nnodes_, 0);
  sn_up_bytes_.assign(nsupernodes_, 0);
  sn_down_bytes_.assign(nsupernodes_, 0);
  host_s_.assign(nranks_, 0.0);
  private_s_.assign(nranks_, 0.0);
}

void TopologyPlatform::reset() {
  std::fill(intra_bytes_.begin(), intra_bytes_.end(), 0);
  std::fill(node_up_bytes_.begin(), node_up_bytes_.end(), 0);
  std::fill(node_down_bytes_.begin(), node_down_bytes_.end(), 0);
  std::fill(sn_up_bytes_.begin(), sn_up_bytes_.end(), 0);
  std::fill(sn_down_bytes_.begin(), sn_down_bytes_.end(), 0);
  std::fill(host_s_.begin(), host_s_.end(), 0.0);
  std::fill(private_s_.begin(), private_s_.end(), 0.0);
  max_latency_s_ = 0.0;
}

void TopologyPlatform::add_message(std::uint64_t src, std::uint64_t dst,
                                   std::uint64_t bytes,
                                   const LogGpModel& host) {
  if (src >= nranks_ || dst >= nranks_) return;
  const double o = host.message_time(bytes);
  host_s_[src] += o;
  host_s_[dst] += o;

  const std::uint64_t src_node = node_of(src);
  const std::uint64_t dst_node = node_of(dst);
  double wire_latency = 0.0;
  double private_bw = cfg_.intra_node.bandwidth_bps;
  if (src_node == dst_node) {
    intra_bytes_[src_node] += bytes;
    wire_latency = cfg_.intra_node.latency_s;
  } else {
    node_up_bytes_[src_node] += bytes;
    node_down_bytes_[dst_node] += bytes;
    const std::uint64_t src_sn = supernode_of(src);
    const std::uint64_t dst_sn = supernode_of(dst);
    if (src_sn == dst_sn) {
      wire_latency = cfg_.node_link.latency_s;
      private_bw = cfg_.node_link.bandwidth_bps;
    } else {
      sn_up_bytes_[src_sn] += bytes;
      sn_down_bytes_[dst_sn] += bytes;
      wire_latency = cfg_.uplink.latency_s;
      private_bw = std::min(cfg_.node_link.bandwidth_bps,
                            cfg_.uplink.bandwidth_bps);
    }
  }
  max_latency_s_ = std::max(max_latency_s_, wire_latency);
  private_s_[src] +=
      o + wire_latency + static_cast<double>(bytes) / private_bw;
}

TopologyPlatform::RoundCost TopologyPlatform::round_cost() const {
  RoundCost rc;
  rc.latency_s = max_latency_s_;
  for (double h : host_s_) rc.host_s = std::max(rc.host_s, h);

  double worst = 0.0;
  const char* worst_name = "intra_node";
  const auto consider = [&](std::uint64_t bytes, double bandwidth,
                            const char* name) {
    const double t = static_cast<double>(bytes) / bandwidth;
    if (t > worst) {
      worst = t;
      worst_name = name;
    }
  };
  for (std::uint64_t b : intra_bytes_) {
    consider(b, cfg_.intra_node.bandwidth_bps, "intra_node");
  }
  for (std::uint64_t b : node_up_bytes_) {
    consider(b, cfg_.node_link.bandwidth_bps, "node_link");
  }
  for (std::uint64_t b : node_down_bytes_) {
    consider(b, cfg_.node_link.bandwidth_bps, "node_link");
  }
  const double trunk_bw = cfg_.uplink.bandwidth_bps *
                          static_cast<double>(cfg_.uplinks_per_supernode);
  for (std::uint64_t b : sn_up_bytes_) {
    consider(b, trunk_bw, "supernode_uplink");
  }
  for (std::uint64_t b : sn_down_bytes_) {
    consider(b, trunk_bw, "supernode_uplink");
  }
  rc.link_s = worst;
  rc.bottleneck = worst_name;
  rc.total_s = rc.link_s + rc.host_s + rc.latency_s;
  return rc;
}

TopologyPlatform::RoundCost TopologyPlatform::round_cost_no_contention() const {
  RoundCost rc;
  rc.bottleneck = "none";
  for (double p : private_s_) rc.total_s = std::max(rc.total_s, p);
  rc.link_s = rc.total_s;  // undifferentiated in the private-link bound
  return rc;
}

double TopologyPlatform::collective_time() const {
  const auto rpn = static_cast<std::uint64_t>(cfg_.ranks_per_node);
  const std::uint64_t ranks_on_node = std::min(nranks_, rpn);
  const std::uint64_t nodes_in_sn =
      std::min(nnodes_, static_cast<std::uint64_t>(cfg_.nodes_per_supernode));
  const double up_down = 2.0;
  return up_down *
         (static_cast<double>(ceil_log2(ranks_on_node)) *
              cfg_.intra_node.latency_s +
          static_cast<double>(ceil_log2(nodes_in_sn)) * cfg_.node_link.latency_s +
          static_cast<double>(ceil_log2(nsupernodes_)) * cfg_.uplink.latency_s);
}

Grid3 near_cubic_grid(std::uint64_t n) {
  Grid3 best{n, 1, 1};
  double best_surface = std::numeric_limits<double>::max();
  for (std::uint64_t z = 1; z * z * z <= n; ++z) {
    if (n % z != 0) continue;
    const std::uint64_t nz = n / z;
    for (std::uint64_t y = z; y * y <= nz; ++y) {
      if (nz % y != 0) continue;
      const std::uint64_t x = nz / y;
      const double surface = 2.0 * (static_cast<double>(x * y) +
                                    static_cast<double>(y * z) +
                                    static_cast<double>(x * z));
      if (surface < best_surface) {
        best_surface = surface;
        best = Grid3{x, y, z};
      }
    }
  }
  return best;
}

}  // namespace mmd::perf
