#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mmd::perf {

/// One recorded message-cost observation: payload size and measured wall
/// seconds of the operation (from the comm flight recorder's send events).
struct MsgSample {
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

/// Piecewise-linear LogGP-style host cost model: the per-message software
/// time (packing, matching, buffer handoff) as o + G*bytes on the segment
/// containing `bytes`. Segments are calibrated from recorded message-size
/// distributions (fit), so the replay's overhead term comes from measured
/// traffic rather than guessed constants. Wire time is NOT in here — the
/// topology's link specs own serialization and latency.
class LogGpModel {
 public:
  struct Segment {
    std::uint64_t max_bytes = 0;  ///< inclusive upper bound; last = UINT64_MAX
    double overhead_s = 0.0;      ///< o: per-message fixed cost
    double per_byte_s = 0.0;      ///< G: gap per byte
  };

  /// Single-segment fallback model (o = 1 us, G = 0.25 ns/B ~ 4 GB/s memcpy).
  LogGpModel();
  explicit LogGpModel(std::vector<Segment> segments);

  double message_time(std::uint64_t bytes) const;
  const std::vector<Segment>& segments() const { return segments_; }

  /// Least-squares fit of (o, G) per size segment. Breakpoints are inclusive
  /// upper bounds of all but the last segment (e.g. {256, 4096, 65536} makes
  /// four segments). Segments with too few samples or degenerate spread fall
  /// back to the global fit over all samples; negative fitted coefficients
  /// are clamped to zero. With no samples at all, returns the default model.
  static LogGpModel fit(std::span<const MsgSample> samples,
                        std::span<const std::uint64_t> breakpoints);

 private:
  std::vector<Segment> segments_;
};

/// Capacities of one link class.
struct LinkSpec {
  double bandwidth_bps = 0.0;  ///< bytes/s
  double latency_s = 0.0;      ///< one-way hop latency
};

/// TaihuLight-shaped hierarchy: ranks (core groups) pack onto nodes, nodes
/// onto supernodes, supernodes onto the central fat-tree. The supernode
/// uplink trunk is oversubscribed (256 nodes share `uplinks_per_supernode`
/// uplinks), which is what bends the weak-scaling curve at scale.
struct PlatformConfig {
  std::string name = "taihulight";
  int ranks_per_node = 4;          ///< 4 core groups per SW26010 node
  int nodes_per_supernode = 256;
  LinkSpec intra_node{32.0e9, 0.2e-6};  ///< on-chip / memory fabric
  LinkSpec node_link{14.0e9, 1.0e-6};   ///< node NIC into the supernode switch
  LinkSpec uplink{14.0e9, 2.2e-6};      ///< supernode trunk toward the core
  int uplinks_per_supernode = 64;       ///< 256 nodes : 64 uplinks = 4:1

  static PlatformConfig taihulight() { return PlatformConfig{}; }
};

/// Flow-level contention accounting over the platform graph.
///
/// Callers lay out one *communication round* (every rank's messages for one
/// step) with add_message; the round's cost is then the bottleneck link's
/// serialization time (per-link byte totals over per-link capacity) plus the
/// busiest rank's host time (LogGP) plus the deepest latency crossed. The
/// no-contention variant prices the same messages with every link private —
/// the flat-model assumption — so the contention penalty is directly
/// reportable as their ratio.
class TopologyPlatform {
 public:
  TopologyPlatform(PlatformConfig cfg, std::uint64_t nranks);

  const PlatformConfig& config() const { return cfg_; }
  std::uint64_t nranks() const { return nranks_; }
  std::uint64_t nnodes() const { return nnodes_; }
  std::uint64_t nsupernodes() const { return nsupernodes_; }

  std::uint64_t node_of(std::uint64_t rank) const {
    return rank / static_cast<std::uint64_t>(cfg_.ranks_per_node);
  }
  std::uint64_t supernode_of(std::uint64_t rank) const {
    return node_of(rank) / static_cast<std::uint64_t>(cfg_.nodes_per_supernode);
  }

  struct RoundCost {
    double total_s = 0.0;    ///< link_s + host_s + latency_s
    double link_s = 0.0;     ///< bottleneck link serialization
    double host_s = 0.0;     ///< busiest rank's software overhead
    double latency_s = 0.0;  ///< deepest link class crossed
    std::string bottleneck;  ///< "intra_node" | "node_link" | "supernode_uplink"
  };

  void reset();
  /// One directed message in the round; host cost priced by `host` on both
  /// the sending and receiving rank.
  void add_message(std::uint64_t src, std::uint64_t dst, std::uint64_t bytes,
                   const LogGpModel& host);

  /// Bottleneck cost of the laid-out round with shared links.
  RoundCost round_cost() const;
  /// Same messages, every link private (contention-free lower bound).
  RoundCost round_cost_no_contention() const;

  /// Hierarchical tree allreduce/barrier: up+down through the intra-node,
  /// intra-supernode, and trunk levels actually present at `nranks`.
  double collective_time() const;

 private:
  PlatformConfig cfg_;
  std::uint64_t nranks_ = 0;
  std::uint64_t nnodes_ = 0;
  std::uint64_t nsupernodes_ = 0;
  // Per-link directed byte accumulators for the current round.
  std::vector<std::uint64_t> intra_bytes_;      ///< per node
  std::vector<std::uint64_t> node_up_bytes_;    ///< per node, into the switch
  std::vector<std::uint64_t> node_down_bytes_;  ///< per node, out of the switch
  std::vector<std::uint64_t> sn_up_bytes_;      ///< per supernode trunk, out
  std::vector<std::uint64_t> sn_down_bytes_;    ///< per supernode trunk, in
  std::vector<double> host_s_;                  ///< per rank software time
  std::vector<double> private_s_;               ///< per rank, private-link cost
  double max_latency_s_ = 0.0;
};

/// Near-cubic 3D factorization of n (px >= py >= pz, px*py*pz == n),
/// minimizing surface area — the rank grid the replay projects onto.
struct Grid3 {
  std::uint64_t x = 1, y = 1, z = 1;
};
Grid3 near_cubic_grid(std::uint64_t n);

}  // namespace mmd::perf
