#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "perf/platform.h"

namespace mmd::telemetry {
struct CommTraceData;
}  // namespace mmd::telemetry

namespace mmd::perf {

/// Per-rank-per-step traffic shape distilled from a recorded comm trace:
/// the quantities the projection replays onto the platform graph.
struct TraceStats {
  std::uint64_t nranks = 0;
  std::uint64_t steps = 1;          ///< from trace meta ("steps"), min 1
  std::uint64_t events = 0;         ///< stored events
  std::uint64_t dropped = 0;
  double atoms_per_rank = 0.0;      ///< from meta ("atoms"), 0 if absent
  double sends_per_rank_step = 0.0;
  double bytes_per_rank_step = 0.0;       ///< p2p payload bytes
  double collectives_per_rank_step = 0.0;
  double peers_per_rank = 0.0;      ///< mean distinct kSend destinations
  double wall_s = 0.0;              ///< max rank span (last t1 - first t0)
  double comm_s_per_step = 0.0;     ///< mean recorded op time per rank-step
  double compute_s_per_step = 0.0;  ///< (wall - comm) / steps, floored at 0
  std::vector<MsgSample> send_samples;  ///< (bytes, duration) of kSend events
};

TraceStats summarize_trace(const telemetry::CommTraceData& trace);

/// One projected point of a scaling curve.
struct ProjectionPoint {
  std::uint64_t cores = 0;   ///< paper accounting: 65 per rank (MPE + CPEs)
  std::uint64_t ranks = 0;
  std::uint64_t nodes = 0;
  double comm_s = 0.0;       ///< modeled per-step communication time
  double time_s = 0.0;       ///< compute + comm per step
  double value = 0.0;        ///< weak: efficiency; strong: speedup
  double paper_value = 0.0;  ///< the paper's reported number; 0 = beyond paper
  std::string bottleneck;    ///< dominant link class at this point
};

struct ProjectionOptions {
  PlatformConfig platform = PlatformConfig::taihulight();
  bool contention = true;
  /// Override the trace's step count (0: use meta).
  std::uint64_t steps = 0;
  /// Paper targets the compute calibration solves against (see
  /// ScalingModel::calibrate_*_compute); the curve SHAPE between endpoints is
  /// the model's prediction.
  double weak_target_eff = 0.85;
  double strong_target_speedup = 26.4;
  /// Use the trace's own (wall - comm) compute time instead of calibrating
  /// against the paper endpoint.
  bool compute_from_trace = false;
  /// LogGP segment boundaries for the host-cost fit.
  std::vector<std::uint64_t> breakpoints = {256, 4096, 65536};
};

struct ProjectionResult {
  TraceStats stats;
  LogGpModel host_model;      ///< calibrated from the trace's send samples
  ProjectionOptions options;
  double weak_compute_s = 0.0;    ///< calibrated per-step compute (weak)
  double strong_compute_s = 0.0;  ///< calibrated per-step compute (strong base)
  std::vector<ProjectionPoint> weak;    ///< paper Fig. 12 rows + full machine
  std::vector<ProjectionPoint> strong;  ///< paper Fig. 13 rows
};

/// Replay `trace` through the platform graph: lay every rank's six
/// face-neighbor messages onto a near-cubic 3D rank grid with linear
/// rank→node placement (so z-face neighbors cross node and supernode
/// boundaries at scale), price each round with link contention, and solve
/// the compute calibration so the endpoint matches the paper's reported
/// number. Throws std::runtime_error on an unusable trace (no ranks).
ProjectionResult project_scaling(const telemetry::CommTraceData& trace,
                                 const ProjectionOptions& opt);

/// Projection JSON, schema "mmd.trace_replay" version 1 (validated by the CI
/// trace-replay smoke job; layout documented in docs/OBSERVABILITY.md).
void write_projection_json(std::ostream& os, const ProjectionResult& result);
bool write_projection_json_file(const std::string& path,
                                const ProjectionResult& result);

/// Human-readable curve tables (the mmd_trace_replay CLI's stdout).
void print_projection(std::ostream& os, const ProjectionResult& result);

}  // namespace mmd::perf
