#include "perf/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "util/json.h"
#include "util/stats.h"

namespace mmd::perf {

namespace {

// Configure-time facts arrive as compile definitions (see src/perf/CMakeLists);
// fall back loudly rather than failing the build when they are absent.
#ifndef MMD_GIT_SHA
#define MMD_GIT_SHA "unknown"
#endif
#ifndef MMD_BUILD_TYPE
#define MMD_BUILD_TYPE "unknown"
#endif
#ifndef MMD_CXX_FLAGS
#define MMD_CXX_FLAGS ""
#endif
#ifndef MMD_SOURCE_DIR
#define MMD_SOURCE_DIR ""
#endif

/// Resolve the source tree's HEAD at BENCH RUNTIME. The configure-time SHA
/// (MMD_GIT_SHA) goes stale the moment a commit lands without re-running
/// CMake — a baseline refreshed from such a build points perf regressions at
/// the wrong commit. Runtime resolution asks git directly; the baked-in SHA
/// remains only as the fallback for tarball builds or stripped environments.
std::string resolve_git_sha() {
  const char* dir = MMD_SOURCE_DIR;
  if (dir[0] != '\0') {
    const std::string cmd =
        std::string("git -C \"") + dir + "\" rev-parse --short=12 HEAD 2>/dev/null";
    if (FILE* pipe = popen(cmd.c_str(), "r")) {
      char buf[64] = {};
      const bool got = std::fgets(buf, sizeof(buf), pipe) != nullptr;
      const int status = pclose(pipe);
      if (got && status == 0) {
        std::string sha(buf);
        while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
          sha.pop_back();
        }
        const bool hex =
            sha.size() >= 7 && sha.size() <= 40 &&
            std::all_of(sha.begin(), sha.end(), [](char c) {
              return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
            });
        if (hex) return sha;
      }
    }
  }
  return MMD_GIT_SHA;
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "0";  // JSON has no inf/nan; a bench metric should never produce one
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

BenchEnv capture_bench_env() {
  BenchEnv env;
  env.git_sha = resolve_git_sha();
  env.compiler = compiler_string();
  env.flags = MMD_CXX_FLAGS;
  env.build_type = MMD_BUILD_TYPE;
  env.hardware_threads = static_cast<int>(std::thread::hardware_concurrency());
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  env.timestamp_utc = buf;
  return env;
}

void BenchMetric::finalize() {
  if (samples.empty()) {
    median = mad = min = max = mean = 0.0;
    outliers = 0;
    return;
  }
  median = util::median(samples);
  mad = util::median_abs_deviation(samples);
  min = *std::min_element(samples.begin(), samples.end());
  max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double s : samples) sum += s;
  mean = sum / static_cast<double>(samples.size());
  outliers = 0;
  const double gate = 3.0 * 1.4826 * mad;
  if (gate > 0.0) {
    for (double s : samples) {
      if (std::abs(s - median) > gate) ++outliers;
    }
  }
}

BenchMetric* BenchReport::find(std::string_view metric) {
  for (auto& m : metrics) {
    if (m.name == metric) return &m;
  }
  return nullptr;
}

const BenchMetric* BenchReport::find(std::string_view metric) const {
  return const_cast<BenchReport*>(this)->find(metric);
}

void BenchReport::write_json(std::ostream& os) const {
  os << "{\"schema\":\"mmd.bench\",\"schema_version\":" << kSchemaVersion
     << ",\"name\":";
  write_escaped(os, name);
  os << ",\n\"env\":{\"git_sha\":";
  write_escaped(os, env.git_sha);
  os << ",\"compiler\":";
  write_escaped(os, env.compiler);
  os << ",\"flags\":";
  write_escaped(os, env.flags);
  os << ",\"build_type\":";
  write_escaped(os, env.build_type);
  os << ",\"hardware_threads\":" << env.hardware_threads << ",\"timestamp_utc\":";
  write_escaped(os, env.timestamp_utc);
  os << "},\n\"harness\":{\"warmup\":" << warmup << ",\"repeats\":" << repeats
     << "},\n\"metrics\":[";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const BenchMetric& m = metrics[i];
    os << (i == 0 ? "\n" : ",\n") << "{\"name\":";
    write_escaped(os, m.name);
    os << ",\"unit\":";
    write_escaped(os, m.unit);
    os << ",\"lower_is_better\":" << (m.lower_is_better ? "true" : "false")
       << ",\"median\":";
    write_number(os, m.median);
    os << ",\"mad\":";
    write_number(os, m.mad);
    os << ",\"min\":";
    write_number(os, m.min);
    os << ",\"max\":";
    write_number(os, m.max);
    os << ",\"mean\":";
    write_number(os, m.mean);
    os << ",\"outliers\":" << m.outliers << ",\"samples\":[";
    for (std::size_t s = 0; s < m.samples.size(); ++s) {
      if (s > 0) os << ",";
      write_number(os, m.samples[s]);
    }
    os << "]}";
  }
  os << "\n]}\n";
}

std::string BenchReport::write_file(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open '" + path + "' for writing");
  write_json(os);
  os.flush();
  if (!os) throw std::runtime_error("short write to '" + path + "'");
  return path;
}

BenchReport BenchReport::from_json(const util::json::Value& v) {
  if (const util::json::Value* schema = v.find("schema");
      schema == nullptr || schema->str() != "mmd.bench") {
    throw util::json::Error("not an mmd.bench document (missing schema tag)");
  }
  const int version = static_cast<int>(v.at("schema_version").number());
  if (version != kSchemaVersion) {
    throw util::json::Error("unsupported mmd.bench schema_version " +
                            std::to_string(version) + " (expected " +
                            std::to_string(kSchemaVersion) + ")");
  }
  BenchReport r;
  r.name = v.at("name").str();
  const util::json::Value& env = v.at("env");
  r.env.git_sha = env.at("git_sha").str();
  r.env.compiler = env.at("compiler").str();
  r.env.flags = env.at("flags").str();
  r.env.build_type = env.at("build_type").str();
  r.env.hardware_threads = static_cast<int>(env.at("hardware_threads").number());
  r.env.timestamp_utc = env.at("timestamp_utc").str();
  const util::json::Value& harness = v.at("harness");
  r.warmup = static_cast<int>(harness.at("warmup").number());
  r.repeats = static_cast<int>(harness.at("repeats").number());
  for (const util::json::Value& jm : v.at("metrics").array()) {
    BenchMetric m;
    m.name = jm.at("name").str();
    m.unit = jm.at("unit").str();
    m.lower_is_better = jm.at("lower_is_better").boolean();
    m.median = jm.at("median").number();
    m.mad = jm.at("mad").number();
    m.min = jm.at("min").number();
    m.max = jm.at("max").number();
    m.mean = jm.at("mean").number();
    m.outliers = static_cast<int>(jm.at("outliers").number());
    for (const util::json::Value& s : jm.at("samples").array()) {
      m.samples.push_back(s.number());
    }
    r.metrics.push_back(std::move(m));
  }
  return r;
}

BenchReport BenchReport::load_file(const std::string& path) {
  return from_json(util::json::parse_file(path));
}

std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::Pass: return "pass";
    case Verdict::Warn: return "warn";
    case Verdict::Fail: return "FAIL";
  }
  return "?";
}

Verdict DiffReport::overall() const {
  Verdict worst = Verdict::Pass;
  for (const auto& m : metrics) {
    if (static_cast<int>(m.verdict) > static_cast<int>(worst)) worst = m.verdict;
  }
  return worst;
}

DiffReport diff_reports(const BenchReport& baseline, const BenchReport& candidate,
                        const DiffOptions& opt) {
  DiffReport out;
  for (const BenchMetric& b : baseline.metrics) {
    MetricDiff d;
    d.name = b.name;
    d.unit = b.unit;
    d.base_median = b.median;
    const BenchMetric* c = candidate.find(b.name);
    if (c == nullptr) {
      d.missing_in_candidate = true;
      d.verdict = Verdict::Warn;
      out.metrics.push_back(std::move(d));
      continue;
    }
    d.cand_median = c->median;
    if (b.median == 0.0) {
      // No baseline magnitude to scale against: equal is a pass, anything
      // else is worth a look but cannot be graded.
      d.verdict = c->median == 0.0 ? Verdict::Pass : Verdict::Warn;
      out.metrics.push_back(std::move(d));
      continue;
    }
    const double delta_rel = (c->median - b.median) / std::abs(b.median);
    d.regression_rel = b.lower_is_better ? delta_rel : -delta_rel;
    // Noise gate from the recorded spread of both sides: a robust sigma of
    // the repeat-to-repeat jitter, relative to the baseline magnitude.
    const double sigma = 1.4826 * std::max(b.mad, c->mad);
    const double noise_rel = opt.noise_sigmas * sigma / std::abs(b.median);
    d.threshold_rel = std::max(opt.rel_floor, noise_rel);
    if (d.regression_rel <= d.threshold_rel) {
      d.verdict = Verdict::Pass;
    } else if (d.regression_rel <= std::max(opt.fail_rel, 2.0 * d.threshold_rel)) {
      d.verdict = Verdict::Warn;
    } else {
      d.verdict = opt.warn_only ? Verdict::Warn : Verdict::Fail;
    }
    out.metrics.push_back(std::move(d));
  }
  for (const BenchMetric& c : candidate.metrics) {
    if (baseline.find(c.name) != nullptr) continue;
    MetricDiff d;
    d.name = c.name;
    d.unit = c.unit;
    d.cand_median = c.median;
    d.missing_in_baseline = true;
    d.verdict = Verdict::Warn;
    out.metrics.push_back(std::move(d));
  }
  return out;
}

void write_diff_text(std::ostream& os, const DiffReport& diff) {
  char line[256];
  std::snprintf(line, sizeof(line), "  %-44s %14s %14s %9s %9s  %s\n", "metric",
                "baseline", "candidate", "delta", "noise", "verdict");
  os << line;
  for (const MetricDiff& m : diff.metrics) {
    if (m.missing_in_candidate || m.missing_in_baseline) {
      std::snprintf(line, sizeof(line), "  %-44s %14s %14s %9s %9s  %s (%s)\n",
                    m.name.c_str(),
                    m.missing_in_baseline ? "-" : "present",
                    m.missing_in_candidate ? "-" : "present", "", "",
                    std::string(to_string(m.verdict)).c_str(),
                    m.missing_in_baseline ? "new metric" : "metric disappeared");
      os << line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  %-44s %14.4g %14.4g %+8.1f%% %8.1f%%  %s\n", m.name.c_str(),
                  m.base_median, m.cand_median, 100.0 * m.regression_rel,
                  100.0 * m.threshold_rel,
                  std::string(to_string(m.verdict)).c_str());
    os << line;
  }
  os << "  overall: " << to_string(diff.overall()) << "\n";
}

}  // namespace mmd::perf
