#pragma once

// BENCH_<name>.json — the stable, versioned schema every bench binary emits
// and tools/mmd_perf_diff consumes. One report per binary; one metric per
// measured quantity, carrying robust statistics (median/MAD/min) over the
// timed repeats plus the raw samples, so a later diff can derive its noise
// threshold from the recorded spread instead of a guessed percentage.
// Schema documented in docs/OBSERVABILITY.md; bump kSchemaVersion on any
// incompatible change.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mmd::util::json {
class Value;
}

namespace mmd::perf {

/// Where the numbers came from: enough to tell two BENCH files apart when a
/// diff looks suspicious (different compiler? different box? stale build?).
struct BenchEnv {
  std::string git_sha;        // configure-time HEAD, "unknown" outside a repo
  std::string compiler;       // e.g. "gcc 13.2.0"
  std::string flags;          // CMAKE_CXX_FLAGS + per-config flags
  std::string build_type;     // e.g. "Release"
  int hardware_threads = 0;   // std::thread::hardware_concurrency
  std::string timestamp_utc;  // run time, ISO-8601 Z
};

/// Environment of the running binary (compile-time defines + runtime probes).
BenchEnv capture_bench_env();

/// One measured quantity. `samples` holds one value per timed repeat (a
/// deterministic quantity — a byte count, a modeled time — is a single
/// sample); the derived fields are filled by finalize().
struct BenchMetric {
  std::string name;
  std::string unit;             // "ns/op", "ms", "bytes", "ratio", ...
  bool lower_is_better = true;  // diff direction
  std::vector<double> samples;

  // Derived by finalize():
  double median = 0.0;
  double mad = 0.0;  // median absolute deviation of the samples
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int outliers = 0;  // samples beyond median +/- 3 * 1.4826 * MAD

  void finalize();
};

struct BenchReport {
  static constexpr int kSchemaVersion = 1;

  std::string name;  // bench binary name; file becomes BENCH_<name>.json
  BenchEnv env;
  int warmup = 0;   // untimed repeats discarded before sampling
  int repeats = 0;  // timed repeats per metric (deterministic metrics: 1)
  std::vector<BenchMetric> metrics;

  BenchMetric* find(std::string_view metric);
  const BenchMetric* find(std::string_view metric) const;

  void write_json(std::ostream& os) const;
  /// Write `<dir>/BENCH_<name>.json`; returns the path written. Throws
  /// std::runtime_error naming the path when the file cannot be written.
  std::string write_file(const std::string& dir = ".") const;

  /// Throws util::json::Error on schema violations (wrong version included).
  static BenchReport from_json(const util::json::Value& v);
  static BenchReport load_file(const std::string& path);
};

// --- regression diffing -----------------------------------------------------

enum class Verdict { Pass = 0, Warn = 1, Fail = 2 };
std::string_view to_string(Verdict v);

struct DiffOptions {
  /// Relative deltas below this are always a pass (measurement floor).
  double rel_floor = 0.02;
  /// Noise gate: regressions within `noise_sigmas` robust standard
  /// deviations (1.4826 * MAD of either side's samples, relative to the
  /// baseline median) are a pass.
  double noise_sigmas = 3.0;
  /// Regressions beyond both the noise gate and this relative delta fail;
  /// between the gate and this, they warn.
  double fail_rel = 0.10;
  /// Demote every Fail to Warn (CI seed baselines from different hardware).
  bool warn_only = false;
};

struct MetricDiff {
  std::string name;
  std::string unit;
  double base_median = 0.0;
  double cand_median = 0.0;
  /// Signed regression: positive = candidate worse, whatever the metric's
  /// direction (higher-is-better metrics are sign-flipped).
  double regression_rel = 0.0;
  /// The threshold that was actually applied (max of floor and noise gate).
  double threshold_rel = 0.0;
  Verdict verdict = Verdict::Pass;
  /// Metric present in only one of the two reports (always a Warn).
  bool missing_in_baseline = false;
  bool missing_in_candidate = false;
};

struct DiffReport {
  std::vector<MetricDiff> metrics;
  Verdict overall() const;
};

DiffReport diff_reports(const BenchReport& baseline, const BenchReport& candidate,
                        const DiffOptions& opt = {});

/// Human-readable verdict table (one line per metric + overall).
void write_diff_text(std::ostream& os, const DiffReport& diff);

}  // namespace mmd::perf
