#include "analysis/defects.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace mmd::analysis {

namespace {

DefectAnalysis match(const lat::BccGeometry& geo,
                     std::vector<util::Vec3> vacancies,
                     const std::vector<util::Vec3>& interstitials) {
  DefectAnalysis out;
  std::vector<bool> used(vacancies.size(), false);
  for (const util::Vec3& i_pos : interstitials) {
    double best_d2 = std::numeric_limits<double>::max();
    std::size_t best = vacancies.size();
    for (std::size_t v = 0; v < vacancies.size(); ++v) {
      if (used[v]) continue;
      const double d2 = geo.min_image(i_pos, vacancies[v]).norm2();
      if (d2 < best_d2) {
        best_d2 = d2;
        best = v;
      }
    }
    if (best == vacancies.size()) break;
    used[best] = true;
    FrenkelPair p;
    p.vacancy = vacancies[best];
    p.interstitial = i_pos;
    p.separation = std::sqrt(best_d2);
    out.separation.add(p.separation);
    out.pairs.push_back(p);
  }
  out.unmatched_vacancies = static_cast<std::uint64_t>(
      std::count(used.begin(), used.end(), false));
  return out;
}

void collect(const lat::LatticeNeighborList& lnl, std::vector<util::Vec3>* vac,
             std::vector<util::Vec3>* inter) {
  for (std::size_t idx : lnl.owned_indices()) {
    const lat::AtomEntry& e = lnl.entry(idx);
    if (e.is_vacancy()) vac->push_back(e.r);
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
    inter->push_back(lnl.runaway(ri).r);
  });
}

}  // namespace

double DefectAnalysis::fraction_within(double r) const {
  if (pairs.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& p : pairs) {
    if (p.separation <= r) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(pairs.size());
}

DefectAnalysis analyze_defects(const lat::LatticeNeighborList& lnl) {
  std::vector<util::Vec3> vac, inter;
  collect(lnl, &vac, &inter);
  return match(lnl.geometry(), std::move(vac), inter);
}

PositionClusterStats cluster_positions(const std::vector<util::Vec3>& points,
                                       const util::Vec3& box, double cutoff) {
  PositionClusterStats out;
  out.num_points = points.size();
  if (points.empty()) return out;
  // Union-find with path halving over all pairs (damage populations are
  // small relative to the crystal; O(N^2) is fine here).
  std::vector<std::size_t> parent(points.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto min_image = [&](util::Vec3 d) {
    d.x -= box.x * std::nearbyint(d.x / box.x);
    d.y -= box.y * std::nearbyint(d.y / box.y);
    d.z -= box.z * std::nearbyint(d.z / box.z);
    return d;
  };
  const double cut2 = cutoff * cutoff;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (min_image(points[j] - points[i]).norm2() <= cut2) {
        const std::size_t a = find(i), b = find(j);
        if (a != b) parent[a] = b;
      }
    }
  }
  std::unordered_map<std::size_t, std::uint64_t> sizes;
  for (std::size_t i = 0; i < points.size(); ++i) ++sizes[find(i)];
  out.num_clusters = sizes.size();
  for (const auto& [root, size] : sizes) {
    out.size_histogram.add(static_cast<std::int64_t>(size));
    out.max_size = std::max<std::uint64_t>(out.max_size, size);
  }
  out.mean_size = static_cast<double>(out.num_points) /
                  static_cast<double>(out.num_clusters);
  return out;
}

PositionClusterStats cluster_interstitials(const lat::LatticeNeighborList& lnl,
                                           double cutoff) {
  if (cutoff <= 0.0) {
    cutoff = 1.1 * std::sqrt(3.0) / 2.0 * lnl.geometry().lattice_constant();
  }
  std::vector<util::Vec3> pos;
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
    pos.push_back(lnl.runaway(ri).r);
  });
  return cluster_positions(pos, lnl.geometry().box_length(), cutoff);
}

DefectAnalysis analyze_defects_global(comm::Comm& comm,
                                      const lat::LatticeNeighborList& lnl) {
  constexpr int kTagVac = 9100;
  constexpr int kTagInt = 9101;
  std::vector<util::Vec3> vac, inter;
  collect(lnl, &vac, &inter);
  if (comm.rank() != 0) {
    comm.send(0, kTagVac, std::span<const util::Vec3>(vac));
    comm.send(0, kTagInt, std::span<const util::Vec3>(inter));
    return {};
  }
  for (int r = 1; r < comm.size(); ++r) {
    auto v = comm.recv_vector<util::Vec3>(r, kTagVac);
    auto i = comm.recv_vector<util::Vec3>(r, kTagInt);
    vac.insert(vac.end(), v.begin(), v.end());
    inter.insert(inter.end(), i.begin(), i.end());
  }
  return match(lnl.geometry(), std::move(vac), inter);
}

}  // namespace mmd::analysis
