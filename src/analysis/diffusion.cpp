#include "analysis/diffusion.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mmd::analysis {

void VacancyTracker::record(double t, const std::vector<std::int64_t>& sites) {
  if (!started_) {
    tracks_.reserve(sites.size());
    for (std::int64_t s : sites) tracks_.push_back({{}, s});
    t_first_ = t_last_ = t;
    started_ = true;
    return;
  }
  t_last_ = t;
  // Greedy matching: each track claims the nearest unclaimed new site (by
  // minimum-image distance). Hop distances are a few 1NN spacings per cycle,
  // far below the typical inter-vacancy distance, so greedy is adequate.
  std::vector<bool> claimed(sites.size(), false);
  for (Track& track : tracks_) {
    const util::Vec3 from = geo_->position(geo_->site_coord(track.site));
    double best_d2 = std::numeric_limits<double>::max();
    std::size_t best = sites.size();
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (claimed[i]) continue;
      const util::Vec3 to = geo_->position(geo_->site_coord(sites[i]));
      const double d2 = geo_->min_image(from, to).norm2();
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    if (best == sites.size()) continue;  // fewer sites than tracks
    claimed[best] = true;
    if (sites[best] != track.site) {
      const util::Vec3 to = geo_->position(geo_->site_coord(sites[best]));
      track.unwrapped += geo_->min_image(from, to);
      track.site = sites[best];
      ++hops_;
    }
  }
}

double VacancyTracker::msd() const {
  if (tracks_.empty()) return 0.0;
  double sum = 0.0;
  for (const Track& t : tracks_) sum += t.unwrapped.norm2();
  return sum / static_cast<double>(tracks_.size());
}

double VacancyTracker::diffusion_coefficient() const {
  const double dt = elapsed();
  return dt > 0.0 ? msd() / (6.0 * dt) : 0.0;
}

double VacancyTracker::random_walk_d(double gamma_per_s, double a) {
  const double d1 = std::sqrt(3.0) / 2.0 * a;
  return gamma_per_s * d1 * d1 / 6.0;
}

}  // namespace mmd::analysis
