#pragma once

#include <vector>

#include "lattice/lattice_neighbor_list.h"
#include "md/config.h"
#include "util/vec3.h"

namespace mmd::analysis {

/// Radial kinetic-energy ("thermal spike") profile around a cascade center:
/// local temperature versus distance from the PKA site. During the ballistic
/// phase the core is thousands of kelvin hot and the profile decays steeply;
/// as the cascade thermalizes the profile flattens to the bath temperature —
/// the standard diagnostic for cascade evolution.
struct ThermalProfile {
  struct Shell {
    double r_lo = 0.0;
    double r_hi = 0.0;
    std::size_t atoms = 0;
    double temperature = 0.0;  ///< [K] from the local kinetic energy
  };
  std::vector<Shell> shells;

  /// Temperature of the innermost non-empty shell.
  double core_temperature() const;
  /// Atom-weighted mean over all shells.
  double mean_temperature() const;
};

/// Compute the profile over one rank's owned atoms (lattice + run-aways).
/// Distances are minimum-image from `center`; per-species masses from `cfg`.
ThermalProfile thermal_profile(const lat::LatticeNeighborList& lnl,
                               const md::MdConfig& cfg, const util::Vec3& center,
                               double r_max, int shells);

}  // namespace mmd::analysis
