#include "analysis/thermal.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace mmd::analysis {

double ThermalProfile::core_temperature() const {
  for (const Shell& s : shells) {
    if (s.atoms > 0) return s.temperature;
  }
  return 0.0;
}

double ThermalProfile::mean_temperature() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Shell& s : shells) {
    sum += s.temperature * static_cast<double>(s.atoms);
    n += s.atoms;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

ThermalProfile thermal_profile(const lat::LatticeNeighborList& lnl,
                               const md::MdConfig& cfg, const util::Vec3& center,
                               double r_max, int nshells) {
  if (r_max <= 0.0 || nshells <= 0) {
    throw std::invalid_argument("thermal_profile: bad r_max/shells");
  }
  ThermalProfile out;
  const double dr = r_max / nshells;
  std::vector<double> ke(static_cast<std::size_t>(nshells), 0.0);
  std::vector<std::size_t> count(static_cast<std::size_t>(nshells), 0);
  const auto& geo = lnl.geometry();

  auto add = [&](const util::Vec3& r, const util::Vec3& v, lat::Species type) {
    const double dist = geo.min_image(center, r).norm();
    if (dist >= r_max) return;
    const auto bin = static_cast<std::size_t>(dist / dr);
    ke[bin] += 0.5 * cfg.mass_of(type) * v.norm2() * util::units::kVel2ToEnergy;
    ++count[bin];
  };
  for (std::size_t idx : lnl.owned_indices()) {
    const lat::AtomEntry& e = lnl.entry(idx);
    if (e.is_atom()) add(e.r, e.v, e.type);
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
    const lat::RunawayAtom& a = lnl.runaway(ri);
    add(a.r, a.v, a.type);
  });

  out.shells.resize(static_cast<std::size_t>(nshells));
  for (int b = 0; b < nshells; ++b) {
    auto& s = out.shells[static_cast<std::size_t>(b)];
    s.r_lo = b * dr;
    s.r_hi = (b + 1) * dr;
    s.atoms = count[static_cast<std::size_t>(b)];
    // T = 2 <KE> / (3 kB) per atom.
    s.temperature =
        s.atoms > 0
            ? 2.0 * ke[static_cast<std::size_t>(b)] /
                  (3.0 * static_cast<double>(s.atoms) * util::units::kBoltzmann)
            : 0.0;
  }
  return out;
}

}  // namespace mmd::analysis
