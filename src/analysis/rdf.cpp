#include "analysis/rdf.h"

#include <cmath>
#include <stdexcept>

namespace mmd::analysis {

RadialDistribution::RadialDistribution(double r_max, int bins)
    : r_max_(r_max), counts_(static_cast<std::size_t>(bins), 0) {
  if (r_max <= 0.0 || bins <= 0) {
    throw std::invalid_argument("RadialDistribution: bad r_max/bins");
  }
}

void RadialDistribution::accumulate(std::span<const util::Vec3> positions,
                                    const util::Vec3& box) {
  const double dr = r_max_ / static_cast<double>(counts_.size());
  auto min_image = [&](util::Vec3 d) {
    d.x -= box.x * std::nearbyint(d.x / box.x);
    d.y -= box.y * std::nearbyint(d.y / box.y);
    d.z -= box.z * std::nearbyint(d.z / box.z);
    return d;
  };
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const double r = min_image(positions[j] - positions[i]).norm();
      if (r < r_max_) {
        counts_[static_cast<std::size_t>(r / dr)] += 2;  // both directions
      }
    }
  }
  n_atoms_ += positions.size();
  ++n_frames_;
  density_ = static_cast<double>(positions.size()) / (box.x * box.y * box.z);
}

void RadialDistribution::accumulate(const lat::LatticeNeighborList& lnl) {
  std::vector<util::Vec3> pos;
  pos.reserve(lnl.owned_indices().size());
  for (std::size_t idx : lnl.owned_indices()) {
    const lat::AtomEntry& e = lnl.entry(idx);
    if (e.is_atom()) pos.push_back(e.r);
  }
  lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
    pos.push_back(lnl.runaway(ri).r);
  });
  accumulate(pos, lnl.geometry().box_length());
}

std::vector<RadialDistribution::Bin> RadialDistribution::result() const {
  std::vector<Bin> out(counts_.size());
  if (n_frames_ == 0) return out;
  const double dr = r_max_ / static_cast<double>(counts_.size());
  const double atoms_per_frame =
      static_cast<double>(n_atoms_) / static_cast<double>(n_frames_);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double r_lo = static_cast<double>(b) * dr;
    const double r_hi = r_lo + dr;
    const double shell =
        4.0 / 3.0 * 3.14159265358979323846 *
        (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = density_ * shell * atoms_per_frame;
    out[b].r_lo = r_lo;
    out[b].r_hi = r_hi;
    out[b].g = ideal > 0.0 ? static_cast<double>(counts_[b]) /
                                 static_cast<double>(n_frames_) / ideal
                           : 0.0;
  }
  return out;
}

double RadialDistribution::first_peak() const {
  const auto bins = result();
  double best_g = 0.0, best_r = 0.0;
  for (const auto& b : bins) {
    if (b.g > best_g) {
      best_g = b.g;
      best_r = 0.5 * (b.r_lo + b.r_hi);
    }
  }
  return best_r;
}

}  // namespace mmd::analysis
