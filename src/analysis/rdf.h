#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lattice/lattice_neighbor_list.h"
#include "util/vec3.h"

namespace mmd::analysis {

/// Radial distribution function g(r) of an atomic configuration in a
/// periodic orthorhombic box — the standard structural diagnostic: a BCC
/// crystal shows sharp peaks at the neighbor shells (2.47, 2.855, 4.04, ...
/// for a = 2.855 A); a molten/damaged region smears them out.
class RadialDistribution {
 public:
  RadialDistribution(double r_max, int bins);

  /// Accumulate all pairs from a position list (O(N^2); intended for the
  /// modest analysis boxes of the examples and tests).
  void accumulate(std::span<const util::Vec3> positions, const util::Vec3& box);

  /// Accumulate the owned atoms of a lattice neighbor list (positions of
  /// lattice atoms and run-aways alike).
  void accumulate(const lat::LatticeNeighborList& lnl);

  /// Normalized g(r) histogram; empty until accumulate() was called.
  struct Bin {
    double r_lo = 0.0;
    double r_hi = 0.0;
    double g = 0.0;
  };
  std::vector<Bin> result() const;

  /// Location of the highest peak [A].
  double first_peak() const;

  int bins() const { return static_cast<int>(counts_.size()); }
  double r_max() const { return r_max_; }

 private:
  double r_max_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_atoms_ = 0;
  std::uint64_t n_frames_ = 0;
  double density_ = 0.0;
};

}  // namespace mmd::analysis
