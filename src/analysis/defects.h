#pragma once

#include <cstdint>
#include <vector>

#include "comm/world.h"
#include "lattice/lattice_neighbor_list.h"
#include "util/stats.h"

namespace mmd::analysis {

/// A vacancy-interstitial (Frenkel) pair matched by proximity.
struct FrenkelPair {
  util::Vec3 vacancy;
  util::Vec3 interstitial;
  double separation = 0.0;  ///< [A]
};

/// Cascade damage census beyond raw counts: matches each interstitial
/// (run-away atom) to its nearest vacancy, giving the Frenkel-pair
/// separation distribution — small separations mean correlated pairs that
/// will recombine quickly; large ones are the stable damage the KMC stage
/// evolves.
struct DefectAnalysis {
  std::vector<FrenkelPair> pairs;
  util::RunningStats separation;   ///< statistics over pair separations [A]
  std::uint64_t unmatched_vacancies = 0;

  /// Fraction of pairs closer than `r` [A].
  double fraction_within(double r) const;
};

/// Analyze the owned defects of one rank's lattice (no communication).
DefectAnalysis analyze_defects(const lat::LatticeNeighborList& lnl);

/// Gather every rank's defect positions on rank 0 and analyze globally.
DefectAnalysis analyze_defects_global(comm::Comm& comm,
                                      const lat::LatticeNeighborList& lnl);

/// Cluster census over off-lattice positions (e.g. interstitial / SIA
/// clusters from the run-away pool): connected components under a distance
/// cutoff with periodic boundaries.
struct PositionClusterStats {
  std::uint64_t num_points = 0;
  std::uint64_t num_clusters = 0;
  double mean_size = 0.0;
  std::uint64_t max_size = 0;
  util::Histogram size_histogram;
};

PositionClusterStats cluster_positions(const std::vector<util::Vec3>& points,
                                       const util::Vec3& box, double cutoff);

/// Interstitial (run-away) cluster census of one rank's lattice; `cutoff`
/// defaults to just past the BCC 1NN distance.
PositionClusterStats cluster_interstitials(const lat::LatticeNeighborList& lnl,
                                           double cutoff = 0.0);

}  // namespace mmd::analysis
