#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lattice/geometry.h"
#include "util/vec3.h"

namespace mmd::analysis {

/// Tracks vacancy trajectories through a KMC run and estimates the vacancy
/// diffusion coefficient from the mean-square displacement:
///   D = <|r(t) - r(0)|^2> / (6 t).
///
/// Vacancies are identified across snapshots by greedy nearest-neighbor
/// matching under periodic boundary conditions; each hop accumulates into an
/// unwrapped displacement, so diffusion across the box boundary is counted
/// correctly. For a random walk on the BCC lattice the theoretical value is
///   D_rw = Gamma * d1NN^2 / 6,
/// with Gamma the total hop rate per vacancy and d1NN = sqrt(3)/2 a.
class VacancyTracker {
 public:
  explicit VacancyTracker(const lat::BccGeometry& geo) : geo_(&geo) {}

  /// Record a snapshot of global vacancy site ranks at MC time `t` [s].
  void record(double t, const std::vector<std::int64_t>& vacancy_sites);

  std::size_t tracked() const { return tracks_.size(); }

  /// Mean-square displacement over all tracked vacancies [A^2].
  double msd() const;

  /// Time span covered [s].
  double elapsed() const { return t_last_ - t_first_; }

  /// Diffusion coefficient estimate [A^2/s]; 0 before two snapshots.
  double diffusion_coefficient() const;

  /// Total hops observed across all tracked vacancies.
  std::uint64_t hops() const { return hops_; }

  /// Theoretical random-walk diffusion coefficient for hop rate `gamma`
  /// [1/s] on a BCC lattice with constant `a` [A].
  static double random_walk_d(double gamma_per_s, double a);

 private:
  struct Track {
    util::Vec3 unwrapped;  ///< accumulated displacement [A]
    std::int64_t site = 0; ///< current site rank
  };

  const lat::BccGeometry* geo_;
  std::vector<Track> tracks_;
  double t_first_ = 0.0;
  double t_last_ = 0.0;
  std::uint64_t hops_ = 0;
  bool started_ = false;
};

}  // namespace mmd::analysis
