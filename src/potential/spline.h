#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mmd::pot {

/// Cubic Hermite evaluation shared by both table formats. Node derivatives
/// come from the 5-point finite-difference stencil the paper shows in Fig. 5:
///   d[i] = (S[i-2] - S[i+2] + 8*(S[i+1] - S[i-1])) / 12
/// (indices clamped at the table edges), so the traditional coefficient table
/// and the on-the-fly compacted evaluation produce IDENTICAL values.
namespace hermite {

/// Node derivative (per segment-unit) from a clamped 5-point stencil over the
/// sample array `s` of length `n`.
double node_derivative(const double* s, std::int64_t n, std::int64_t i);

/// Evaluate the Hermite cubic of segment [i, i+1] at parameter t in [0,1].
double value(double s0, double s1, double d0, double d1, double t);

/// Derivative with respect to t of the same cubic.
double deriv_t(double s0, double s1, double d0, double d1, double t);

}  // namespace hermite

/// The "traditional interpolation table" (paper Fig. 5, as in LAMMPS/CoMD):
/// one row of 7 coefficients per segment — columns 3-6 the cubic value
/// polynomial, columns 0-2 its derivative polynomial. At 5000 segments of
/// doubles this is ~273 KB, which does NOT fit a 64 KB local store, forcing a
/// DMA per lookup on the slave cores.
class CoefficientTable {
 public:
  using Row = std::array<double, 7>;
  static constexpr int kDefaultSegments = 5000;

  /// Sample `f` uniformly over [x_min, x_max] and build segment coefficients
  /// via the 5-point-stencil Hermite construction.
  static CoefficientTable build(const std::function<double(double)>& f,
                                double x_min, double x_max,
                                int segments = kDefaultSegments);

  double x_min() const { return x_min_; }
  double x_max() const { return x_max_; }
  int segments() const { return static_cast<int>(rows_.size()); }
  double dx() const { return dx_; }

  /// Segment index for x (clamped into range).
  int segment_of(double x) const;
  /// Normalized parameter t in [0,1] within segment i.
  double param(double x, int i) const { return x / dx_ - x_min_ / dx_ - i; }

  const Row& row(int i) const { return rows_[static_cast<std::size_t>(i)]; }
  const Row* data() const { return rows_.data(); }

  double value(double x) const;
  double derivative(double x) const;

  /// Evaluate from an externally fetched row (the slave-core DMA path).
  static double eval_value(const Row& r, double t) {
    return ((r[3] * t + r[4]) * t + r[5]) * t + r[6];
  }
  static double eval_derivative(const Row& r, double t, double dx) {
    return ((r[0] * t + r[1]) * t + r[2]) / dx;
  }

  std::size_t bytes() const { return rows_.size() * sizeof(Row); }

 private:
  friend class CompactTable;
  double x_min_ = 0.0, x_max_ = 1.0, dx_ = 1.0;
  std::vector<Row> rows_;
};

/// The paper's compacted interpolation table: only the sampled values are
/// stored (segments+1 doubles, ~39 KB for 5000 segments — 1/7 of the
/// traditional table, small enough to be resident in the local store).
/// Coefficients are reconstructed on the fly from a 6-sample window using the
/// same stencil, trading a little extra arithmetic for far fewer DMA
/// transfers (paper §2.1.2).
class CompactTable {
 public:
  static CompactTable build(const std::function<double(double)>& f, double x_min,
                            double x_max,
                            int segments = CoefficientTable::kDefaultSegments);

  double x_min() const { return x_min_; }
  double x_max() const { return x_max_; }
  int segments() const { return static_cast<int>(samples_.size()) - 1; }
  double dx() const { return dx_; }

  int segment_of(double x) const;
  double param(double x, int i) const { return x / dx_ - x_min_ / dx_ - i; }

  const double* samples() const { return samples_.data(); }
  std::int64_t num_samples() const { return static_cast<std::int64_t>(samples_.size()); }

  double value(double x) const;
  double derivative(double x) const;
  void eval(double x, double* value, double* derivative) const;

  /// Evaluate segment i from a caller-supplied window of the 6 samples with
  /// nominal indices [i-2, i+3]; at table edges the out-of-range slots must
  /// hold the clamped (edge-replicated) samples, exactly as `window_indices`
  /// prescribes. This is the on-the-fly path used when the samples were
  /// DMA-fetched to a local store.
  static void eval_window(const double window[6], double t, double dx,
                          double* value, double* derivative);

  /// The 6 (clamped) sample indices needed to evaluate segment i.
  static void window_indices(std::int64_t i, std::int64_t num_samples,
                             std::int64_t out[6]);

  /// Expand this table into the equivalent traditional coefficient table.
  CoefficientTable to_coefficients() const;

  std::size_t bytes() const { return samples_.size() * sizeof(double); }

 private:
  double x_min_ = 0.0, x_max_ = 1.0, dx_ = 1.0;
  std::vector<double> samples_;
};

}  // namespace mmd::pot
