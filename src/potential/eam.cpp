#include "potential/eam.h"

#include <cmath>
#include <stdexcept>

#include "lattice/neighbor_offsets.h"

namespace mmd::pot {

namespace {

/// Lorentz-Berthelot-style mixing for the cross-species interaction.
EamSpeciesParams mix(const EamSpeciesParams& a, const EamSpeciesParams& b) {
  EamSpeciesParams m;
  m.pair_D = std::sqrt(a.pair_D * b.pair_D);
  m.pair_a = 0.5 * (a.pair_a + b.pair_a);
  m.r0 = 0.5 * (a.r0 + b.r0);
  m.dens_fe = std::sqrt(a.dens_fe * b.dens_fe);
  m.dens_beta = 0.5 * (a.dens_beta + b.dens_beta);
  m.emb_E = 0.5 * (a.emb_E + b.emb_E);
  m.rho_e = 0.5 * (a.rho_e + b.rho_e);
  return m;
}

EamSpeciesParams iron_params() {
  return EamSpeciesParams{};  // defaults are the Fe-like values
}

EamSpeciesParams copper_params() {
  EamSpeciesParams p;
  p.pair_D = 0.34;     // Cu is softer than Fe
  p.pair_a = 1.35;
  p.r0 = 2.556;        // Cu FCC 1NN distance
  p.dens_fe = 0.85;
  p.dens_beta = 2.2;
  p.emb_E = 1.20;
  return p;
}

}  // namespace

EamModel::EamModel(std::vector<EamSpeciesParams> sp, double cutoff)
    : species_(std::move(sp)), cutoff_(cutoff), r_switch_(0.8 * cutoff) {
  if (species_.empty()) throw std::invalid_argument("EamModel: no species");
  const auto n = species_.size();
  mixed_.resize(n * (n + 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      mixed_[j * (j + 1) / 2 + i] = mix(species_[i], species_[j]);
    }
  }
}

EamModel EamModel::iron(double a, double cutoff) {
  EamModel m({iron_params()}, cutoff);
  m.species_[0].rho_e = m.perfect_rho(0, a);
  m.mixed_[0].rho_e = m.species_[0].rho_e;
  return m;
}

EamModel EamModel::iron_copper(double a, double cutoff) {
  EamModel m({iron_params(), copper_params()}, cutoff);
  for (int s = 0; s < 2; ++s) {
    m.species_[static_cast<std::size_t>(s)].rho_e = m.perfect_rho(s, a);
  }
  return m;
}

std::size_t EamModel::pair_index(int si, int sj) const {
  auto lo = static_cast<std::size_t>(std::min(si, sj));
  auto hi = static_cast<std::size_t>(std::max(si, sj));
  return hi * (hi + 1) / 2 + lo;
}

double EamModel::switch_fn(double r) const {
  if (r <= r_switch_) return 1.0;
  if (r >= cutoff_) return 0.0;
  const double t = (r - r_switch_) / (cutoff_ - r_switch_);
  return 1.0 + t * t * t * (-10.0 + t * (15.0 - 6.0 * t));
}

double EamModel::dswitch_fn(double r) const {
  if (r <= r_switch_ || r >= cutoff_) return 0.0;
  const double w = cutoff_ - r_switch_;
  const double t = (r - r_switch_) / w;
  return t * t * (-30.0 + t * (60.0 - 30.0 * t)) / w;
}

double EamModel::phi(int si, int sj, double r) const {
  const auto& p = mixed_[pair_index(si, sj)];
  const double e1 = std::exp(-p.pair_a * (r - p.r0));
  return p.pair_D * (e1 * e1 - 2.0 * e1) * switch_fn(r);
}

double EamModel::dphi(int si, int sj, double r) const {
  const auto& p = mixed_[pair_index(si, sj)];
  const double e1 = std::exp(-p.pair_a * (r - p.r0));
  const double morse = p.pair_D * (e1 * e1 - 2.0 * e1);
  const double dmorse = p.pair_D * (-2.0 * p.pair_a) * (e1 * e1 - e1);
  return dmorse * switch_fn(r) + morse * dswitch_fn(r);
}

double EamModel::f(int si, int sj, double r) const {
  const auto& p = mixed_[pair_index(si, sj)];
  return p.dens_fe * std::exp(-p.dens_beta * (r - p.r0)) * switch_fn(r);
}

double EamModel::df(int si, int sj, double r) const {
  const auto& p = mixed_[pair_index(si, sj)];
  const double g = p.dens_fe * std::exp(-p.dens_beta * (r - p.r0));
  return -p.dens_beta * g * switch_fn(r) + g * dswitch_fn(r);
}

double EamModel::embed(int s, double rho) const {
  const auto& p = species_[static_cast<std::size_t>(s)];
  // F(rho) = -E sqrt(rho/rho_e); below rho_min, switch to the quadratic with
  // matching value and slope so F' stays finite at rho -> 0.
  const double rho_min = 1e-3 * p.rho_e;
  if (rho >= rho_min) return -p.emb_E * std::sqrt(rho / p.rho_e);
  const double fm = -p.emb_E * std::sqrt(rho_min / p.rho_e);
  const double dm = -p.emb_E / (2.0 * std::sqrt(rho_min * p.rho_e));
  // Quadratic q(rho) = A rho^2 + B rho with q(rho_min)=fm, q'(rho_min)=dm.
  const double A = (dm * rho_min - fm) / (rho_min * rho_min);
  const double B = dm - 2.0 * A * rho_min;
  return A * rho * rho + B * rho;
}

double EamModel::dembed(int s, double rho) const {
  const auto& p = species_[static_cast<std::size_t>(s)];
  const double rho_min = 1e-3 * p.rho_e;
  if (rho >= rho_min) return -p.emb_E / (2.0 * std::sqrt(rho * p.rho_e));
  const double fm = -p.emb_E * std::sqrt(rho_min / p.rho_e);
  const double dm = -p.emb_E / (2.0 * std::sqrt(rho_min * p.rho_e));
  const double A = (dm * rho_min - fm) / (rho_min * rho_min);
  const double B = dm - 2.0 * A * rho_min;
  return 2.0 * A * rho + B;
}

double EamModel::perfect_rho(int s, double a) const {
  double rho = 0.0;
  for (const auto& o : lat::bcc_neighbor_offsets(a, cutoff_, 0)) {
    rho += f(s, s, std::sqrt(o.dist2));
  }
  return rho;
}

EamTableSet EamTableSet::build(const EamModel& model, int segments) {
  EamTableSet t;
  t.num_species = model.num_species();
  t.cutoff = model.cutoff();
  t.r_min = model.r_min();
  const auto n = static_cast<std::size_t>(t.num_species);
  t.pairs.resize(n * (n + 1) / 2);
  for (int i = 0; i < t.num_species; ++i) {
    for (int j = i; j < t.num_species; ++j) {
      auto& p = t.pairs[t.pair_index(i, j)];
      p.phi = CompactTable::build(
          [&](double r) { return model.phi(i, j, r); }, t.r_min, t.cutoff, segments);
      p.f = CompactTable::build(
          [&](double r) { return model.f(i, j, r); }, t.r_min, t.cutoff, segments);
    }
    // Headroom above the perfect-crystal density: cascade cores compress the
    // local environment well past equilibrium.
    const double rho_max = 4.0 * model.perfect_rho(i, 2.855);
    t.embed.push_back(CompactTable::build(
        [&](double rho) { return model.embed(i, rho); }, 0.0, rho_max, segments));
  }
  t.phi_trad = t.pairs[0].phi.to_coefficients();
  t.f_trad = t.pairs[0].f.to_coefficients();
  t.embed_trad = t.embed[0].to_coefficients();
  return t;
}

std::size_t EamTableSet::pair_index(int si, int sj) const {
  auto lo = static_cast<std::size_t>(std::min(si, sj));
  auto hi = static_cast<std::size_t>(std::max(si, sj));
  return hi * (hi + 1) / 2 + lo;
}

std::size_t EamTableSet::compact_bytes() const {
  std::size_t b = 0;
  for (const auto& p : pairs) b += p.phi.bytes() + p.f.bytes();
  for (const auto& e : embed) b += e.bytes();
  return b;
}

}  // namespace mmd::pot
