#pragma once

#include <algorithm>
#include <cstdint>

#include "potential/spline.h"
#include "sunway/dma.h"
#include "sunway/local_store.h"

namespace mmd::pot {

/// Slave-core access path to a compacted table.
///
/// If the samples fit the remaining local store, they are staged with ONE
/// bulk DMA and every lookup is local (the paper's resident case: "we load
/// the whole compacted table into the local store at one time"). Otherwise
/// each lookup DMAs the contiguous 6-sample window it needs — still a single
/// small transfer instead of the traditional table's full coefficient row.
///
/// The resident copy is staged EDGE-PADDED into a 64-byte-aligned block of
/// num_samples + 5 doubles: two replicated front samples, the n true
/// samples, three replicated back samples. Nominal sample j sits at
/// padded()[j + 2], so the clamped 6-sample window of segment i is the
/// contiguous run padded()[i .. i+5] — what the SIMD gather kernels index
/// without per-lane clamping. The scalar eval() below reads through the same
/// copy; replication makes the padded reads bit-equal to clamped ones.
class CompactTableAccess {
 public:
  static constexpr std::size_t kPadFront = 2;
  static constexpr std::size_t kPadBack = 3;

  CompactTableAccess(const CompactTable& table, sw::LocalStore& store,
                     sw::DmaEngine& dma, bool want_resident = true)
      : table_(&table), dma_(&dma) {
    if (want_resident) {
      const auto n = static_cast<std::size_t>(table.num_samples());
      const std::size_t bytes = n * sizeof(double);
      padded_ = store.allocate_array<double>(n + kPadFront + kPadBack, 64);
      if (padded_ != nullptr) {
        local_ = padded_ + kPadFront;
        dma_->get(local_, table.samples(), bytes);
        padded_[0] = padded_[1] = local_[0];
        for (std::size_t k = 0; k < kPadBack; ++k) {
          local_[n + k] = local_[n - 1];
        }
      }
    }
  }

  bool resident() const { return local_ != nullptr; }

  /// Base of the padded resident copy (nullptr when not resident).
  const double* padded() const { return padded_; }

  void eval(double x, double* value, double* derivative) {
    const auto i = static_cast<std::int64_t>(table_->segment_of(x));
    const std::int64_t n = table_->num_samples();
    double window[6];
    if (local_ != nullptr) {
      std::int64_t idx[6];
      CompactTable::window_indices(i, n, idx);
      for (int k = 0; k < 6; ++k) window[k] = local_[idx[k]];
    } else {
      // The clamped window [i-2, i+3] is a contiguous span: one DMA get.
      const std::int64_t lo = std::clamp<std::int64_t>(i - 2, 0, n - 1);
      const std::int64_t hi = std::clamp<std::int64_t>(i + 3, 0, n - 1);
      double span[6];
      dma_->get(span, table_->samples() + lo,
                static_cast<std::size_t>(hi - lo + 1) * sizeof(double));
      for (std::int64_t k = 0; k < 6; ++k) {
        const std::int64_t src = std::clamp<std::int64_t>(i - 2 + k, lo, hi);
        window[k] = span[src - lo];
      }
    }
    CompactTable::eval_window(window, table_->param(x, static_cast<int>(i)),
                              table_->dx(), value, derivative);
  }

 private:
  const CompactTable* table_;
  sw::DmaEngine* dma_;
  double* padded_ = nullptr;
  double* local_ = nullptr;  ///< padded_ + kPadFront: nominal sample 0
};

/// Slave-core access path to a traditional coefficient table: at ~273 KB it
/// can never be resident in a 64 KB local store, so EVERY lookup costs one
/// DMA get of the 56-byte coefficient row — the overhead the compacted table
/// eliminates (paper §2.1.2).
class CoefficientTableAccess {
 public:
  CoefficientTableAccess(const CoefficientTable& table, sw::DmaEngine& dma)
      : table_(&table), dma_(&dma) {}

  void eval(double x, double* value, double* derivative) {
    const int i = table_->segment_of(x);
    CoefficientTable::Row row;
    dma_->get(row.data(), table_->row(i).data(), sizeof(row));
    const double t = table_->param(x, i);
    if (value) *value = CoefficientTable::eval_value(row, t);
    if (derivative) {
      *derivative = CoefficientTable::eval_derivative(row, t, table_->dx());
    }
  }

 private:
  const CoefficientTable* table_;
  sw::DmaEngine* dma_;
};

}  // namespace mmd::pot
