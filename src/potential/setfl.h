#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "potential/eam.h"

namespace mmd::pot {

/// In-memory representation of a DYNAMO/LAMMPS `eam/alloy` (setfl) potential
/// file — the de-facto exchange format for EAM potentials. Supporting it
/// means this reproduction can run with published Fe / Fe-Cu potentials
/// instead of the built-in analytic stand-in (see DESIGN.md §2).
struct SetflData {
  std::vector<std::string> comments;       ///< the 3 header comment lines
  std::vector<std::string> elements;       ///< element symbols
  int nrho = 0;
  double drho = 0.0;
  int nr = 0;
  double dr = 0.0;
  double cutoff = 0.0;
  /// Per element: atomic number, mass, lattice constant, structure tag.
  struct ElementMeta {
    int atomic_number = 0;
    double mass = 0.0;
    double lattice = 0.0;
    std::string structure;
  };
  std::vector<ElementMeta> meta;
  std::vector<std::vector<double>> embed;    ///< F(rho), nrho values/element
  std::vector<std::vector<double>> density;  ///< f(r), nr values/element
  /// r*phi(r) for each unordered pair, file order: (0,0),(1,0),(1,1),...
  std::vector<std::vector<double>> rphi;

  int num_elements() const { return static_cast<int>(elements.size()); }
};

/// Parse setfl text; throws std::runtime_error with a description on
/// malformed input.
SetflData parse_setfl(std::istream& is);
SetflData load_setfl(const std::string& path);

/// Serialize (round-trip capable; used by tests and to export the built-in
/// analytic potential for use with LAMMPS).
void write_setfl(std::ostream& os, const SetflData& data);

/// Export an EamModel by sampling it on a setfl grid.
SetflData setfl_from_model(const EamModel& model,
                           const std::vector<std::string>& element_names,
                           int nr = 2000, int nrho = 2000);

/// Build interpolation tables from setfl data. Density/pair interactions are
/// linearly interpolated from the file grid and resampled onto this
/// library's compacted-table grid; the setfl convention stores r*phi, which
/// is divided out (with the r -> 0 singularity clamped at r_min).
EamTableSet tables_from_setfl(const SetflData& data,
                              int segments = CoefficientTable::kDefaultSegments,
                              double r_min = 0.4);

}  // namespace mmd::pot
