#include "potential/spline.h"

#include <algorithm>
#include <stdexcept>

namespace mmd::pot {

namespace hermite {

double node_derivative(const double* s, std::int64_t n, std::int64_t i) {
  auto at = [&](std::int64_t k) {
    return s[std::clamp<std::int64_t>(k, 0, n - 1)];
  };
  // The paper's Fig. 5 formula: (S[i-2] - S[i+2] + 8*(S[i+1] - S[i-1]))/12,
  // written here centered on node i.
  return (at(i - 2) - at(i + 2) + 8.0 * (at(i + 1) - at(i - 1))) / 12.0;
}

double value(double s0, double s1, double d0, double d1, double t) {
  const double t2 = t * t;
  const double t3 = t2 * t;
  return (2.0 * t3 - 3.0 * t2 + 1.0) * s0 + (t3 - 2.0 * t2 + t) * d0 +
         (-2.0 * t3 + 3.0 * t2) * s1 + (t3 - t2) * d1;
}

double deriv_t(double s0, double s1, double d0, double d1, double t) {
  const double t2 = t * t;
  return (6.0 * t2 - 6.0 * t) * s0 + (3.0 * t2 - 4.0 * t + 1.0) * d0 +
         (-6.0 * t2 + 6.0 * t) * s1 + (3.0 * t2 - 2.0 * t) * d1;
}

}  // namespace hermite

namespace {

void check_domain(double x_min, double x_max, int segments) {
  if (!(x_max > x_min) || segments < 1) {
    throw std::invalid_argument("spline table: need x_max > x_min and >= 1 segment");
  }
}

std::vector<double> sample(const std::function<double(double)>& f, double x_min,
                           double x_max, int segments) {
  std::vector<double> s(static_cast<std::size_t>(segments) + 1);
  const double dx = (x_max - x_min) / segments;
  for (int i = 0; i <= segments; ++i) {
    s[static_cast<std::size_t>(i)] = f(x_min + i * dx);
  }
  return s;
}

}  // namespace

CoefficientTable CoefficientTable::build(const std::function<double(double)>& f,
                                         double x_min, double x_max,
                                         int segments) {
  check_domain(x_min, x_max, segments);
  // Build through the compact form so the two representations are identical
  // by construction.
  return CompactTable::build(f, x_min, x_max, segments).to_coefficients();
}

int CoefficientTable::segment_of(double x) const {
  const int i = static_cast<int>((x - x_min_) / dx_);
  return std::clamp(i, 0, segments() - 1);
}

double CoefficientTable::value(double x) const {
  const int i = segment_of(x);
  return eval_value(rows_[static_cast<std::size_t>(i)], param(x, i));
}

double CoefficientTable::derivative(double x) const {
  const int i = segment_of(x);
  return eval_derivative(rows_[static_cast<std::size_t>(i)], param(x, i), dx_);
}

CompactTable CompactTable::build(const std::function<double(double)>& f,
                                 double x_min, double x_max, int segments) {
  check_domain(x_min, x_max, segments);
  CompactTable t;
  t.x_min_ = x_min;
  t.x_max_ = x_max;
  t.dx_ = (x_max - x_min) / segments;
  t.samples_ = sample(f, x_min, x_max, segments);
  return t;
}

int CompactTable::segment_of(double x) const {
  const int i = static_cast<int>((x - x_min_) / dx_);
  return std::clamp(i, 0, segments() - 1);
}

void CompactTable::window_indices(std::int64_t i, std::int64_t num_samples,
                                  std::int64_t out[6]) {
  for (std::int64_t k = 0; k < 6; ++k) {
    out[k] = std::clamp<std::int64_t>(i - 2 + k, 0, num_samples - 1);
  }
}

void CompactTable::eval_window(const double window[6], double t, double dx,
                               double* value, double* derivative) {
  // window nominal layout: [i-2, i-1, i, i+1, i+2, i+3] (edge-clamped).
  // Node derivatives at i and i+1 from the paper's 5-point stencil.
  const double d0 =
      (window[0] - window[4] + 8.0 * (window[3] - window[1])) / 12.0;
  const double d1 =
      (window[1] - window[5] + 8.0 * (window[4] - window[2])) / 12.0;
  if (value) *value = hermite::value(window[2], window[3], d0, d1, t);
  if (derivative) {
    *derivative = hermite::deriv_t(window[2], window[3], d0, d1, t) / dx;
  }
}

double CompactTable::value(double x) const {
  double v;
  eval(x, &v, nullptr);
  return v;
}

double CompactTable::derivative(double x) const {
  double d;
  eval(x, nullptr, &d);
  return d;
}

void CompactTable::eval(double x, double* value, double* derivative) const {
  const std::int64_t i = segment_of(x);
  const std::int64_t n = num_samples();
  std::int64_t idx[6];
  window_indices(i, n, idx);
  double w[6];
  for (int k = 0; k < 6; ++k) w[k] = samples_[static_cast<std::size_t>(idx[k])];
  eval_window(w, param(x, static_cast<int>(i)), dx_, value, derivative);
}

CoefficientTable CompactTable::to_coefficients() const {
  CoefficientTable t;
  t.x_min_ = x_min_;
  t.x_max_ = x_max_;
  t.dx_ = dx_;
  const std::int64_t n = num_samples();
  t.rows_.resize(static_cast<std::size_t>(segments()));
  for (std::int64_t i = 0; i < segments(); ++i) {
    const double s0 = samples_[static_cast<std::size_t>(i)];
    const double s1 = samples_[static_cast<std::size_t>(i + 1)];
    const double d0 = hermite::node_derivative(samples_.data(), n, i);
    const double d1 = hermite::node_derivative(samples_.data(), n, i + 1);
    // Power basis: value = c3 t^3 + c4 t^2 + c5 t + c6.
    auto& r = t.rows_[static_cast<std::size_t>(i)];
    r[3] = 2.0 * s0 - 2.0 * s1 + d0 + d1;
    r[4] = -3.0 * s0 + 3.0 * s1 - 2.0 * d0 - d1;
    r[5] = d0;
    r[6] = s0;
    // Derivative polynomial (columns 0-2), to be divided by dx at eval time.
    r[0] = 3.0 * r[3];
    r[1] = 2.0 * r[4];
    r[2] = r[5];
  }
  return t;
}

}  // namespace mmd::pot
