#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "potential/spline.h"
#include "sunway/register_mesh.h"

namespace mmd::pot {

/// The alternative table layout the paper weighs for alloys (§2.1.2):
/// "distribute all the tables to the local stores of neighbor slave cores,
/// and use register communication ... to transfer data between the local
/// stores". Each core owns a contiguous shard of the compacted samples
/// (5001 doubles / 64 cores ~ 79 samples, ~630 B — trivially resident);
/// a lookup pulls its 6-sample window from the owning core(s) over the
/// register mesh, one `remote_get` per shard touched (one or two).
///
/// The paper rejected this for two-sided register interfaces because "which
/// data ... should be transferred cannot be known before runtime"; with the
/// one-sided pull modeled in RegisterMesh (its §5 suggestion) the pattern
/// becomes expressible — `bench/micro_register_sharding` quantifies the
/// trade against resident tables and per-lookup main-memory DMA.
class ShardedTableAccess {
 public:
  ShardedTableAccess(const CompactTable& table, sw::RegisterMesh& mesh,
                     int my_core)
      : table_(&table), mesh_(&mesh), me_(my_core) {
    const std::int64_t n = table.num_samples();
    const std::int64_t cores = mesh.size();
    shard_size_ = (n + cores - 1) / cores;
  }

  /// Owning core of a sample index.
  int owner_of(std::int64_t sample) const {
    return static_cast<int>(sample / shard_size_);
  }

  std::int64_t shard_size() const { return shard_size_; }

  void eval(double x, double* value, double* derivative) {
    const auto i = static_cast<std::int64_t>(table_->segment_of(x));
    const std::int64_t n = table_->num_samples();
    const std::int64_t lo = std::clamp<std::int64_t>(i - 2, 0, n - 1);
    const std::int64_t hi = std::clamp<std::int64_t>(i + 3, 0, n - 1);
    double span[6];
    // Pull the contiguous [lo, hi] window shard by shard: samples owned by
    // this core are free local reads; remote shards cost one mesh message
    // each (at most two shards can cover a 6-sample window).
    std::int64_t pos = lo;
    while (pos <= hi) {
      const int owner = owner_of(pos);
      const std::int64_t shard_end =
          std::min<std::int64_t>(hi, (owner + 1) * shard_size_ - 1);
      const std::size_t count = static_cast<std::size_t>(shard_end - pos + 1);
      if (owner == me_) {
        std::copy_n(table_->samples() + pos, count, span + (pos - lo));
      } else {
        mesh_->remote_get(me_, owner, span + (pos - lo), table_->samples() + pos,
                          count * sizeof(double));
      }
      pos = shard_end + 1;
    }
    double window[6];
    for (std::int64_t k = 0; k < 6; ++k) {
      const std::int64_t src = std::clamp<std::int64_t>(i - 2 + k, lo, hi);
      window[k] = span[src - lo];
    }
    CompactTable::eval_window(window, table_->param(x, static_cast<int>(i)),
                              table_->dx(), value, derivative);
  }

 private:
  const CompactTable* table_;
  sw::RegisterMesh* mesh_;
  int me_;
  std::int64_t shard_size_;
};

}  // namespace mmd::pot
