#pragma once

#include <functional>
#include <vector>

#include "lattice/atom.h"
#include "potential/spline.h"

namespace mmd::pot {

/// Parameters of the analytic EAM used as a stand-in for the tabulated Fe /
/// Fe-Cu potentials of the paper (see DESIGN.md §2, substitution table):
///   pair      phi(r) = D * (e^{-2 a (r-r0)} - 2 e^{-a (r-r0)}) * S(r)
///   density   f(r)   = f_e * e^{-beta (r-r0)} * S(r)
///   embedding F(rho) = -E_emb * sqrt(rho / rho_e)
/// where S(r) is a quintic smoothstep switching the interaction off between
/// r_switch and the cutoff. The paper's optimizations act on the table
/// machinery, not on potential coefficients, so any smooth EAM that keeps a
/// BCC crystal metastable at a = 2.855 A preserves the studied behaviour.
struct EamSpeciesParams {
  double pair_D = 0.40;       ///< Morse well depth [eV]
  double pair_a = 1.40;       ///< Morse stiffness [1/A]
  double r0 = 2.4725;         ///< Morse minimum ~ BCC 1NN distance [A]
  double dens_fe = 1.0;       ///< density prefactor
  double dens_beta = 2.0;     ///< density decay [1/A]
  double emb_E = 1.50;        ///< embedding scale [eV]
  double rho_e = 11.0;        ///< reference density (set by calibrate())
};

/// Full EAM model: one or two species with per-pair pair/density functions
/// and per-species embedding. The Fe-Cu alloy instance carries the three
/// kinds of pair and density interactions the paper describes (Fe-Fe, Cu-Cu,
/// Fe-Cu) plus two embedding functions.
class EamModel {
 public:
  /// Pure iron (the paper's primary material), calibrated so rho_e equals the
  /// perfect-BCC host density at lattice constant `a`.
  static EamModel iron(double a = 2.855, double cutoff = 5.0);

  /// Fe-Cu alloy (paper §2.1.2's multi-table configuration).
  static EamModel iron_copper(double a = 2.855, double cutoff = 5.0);

  int num_species() const { return static_cast<int>(species_.size()); }
  double cutoff() const { return cutoff_; }
  double r_switch() const { return r_switch_; }
  double r_min() const { return r_min_; }

  /// Pair potential and its derivative between species si and sj at
  /// separation r [A].
  double phi(int si, int sj, double r) const;
  double dphi(int si, int sj, double r) const;

  /// Electron-density contribution (and derivative) of an sj neighbor at an
  /// si atom.
  double f(int si, int sj, double r) const;
  double df(int si, int sj, double r) const;

  /// Embedding energy and derivative for species s at host density rho.
  double embed(int s, double rho) const;
  double dembed(int s, double rho) const;

  /// Host electron density of a perfect BCC crystal of species s.
  double perfect_rho(int s, double a) const;

  const EamSpeciesParams& species(int s) const {
    return species_[static_cast<std::size_t>(s)];
  }

 private:
  EamModel(std::vector<EamSpeciesParams> sp, double cutoff);

  /// Index into pair-interaction parameter storage (symmetric).
  std::size_t pair_index(int si, int sj) const;
  double switch_fn(double r) const;
  double dswitch_fn(double r) const;

  std::vector<EamSpeciesParams> species_;
  std::vector<EamSpeciesParams> mixed_;  ///< per unordered pair
  double cutoff_;
  double r_switch_;
  /// Lower edge of the tabulated domain [A]. Deep enough that the repulsive
  /// wall (phi(0.4 A) ~ 130 eV) stops cascade atoms up to ~100 eV instead of
  /// letting them tunnel through a clamped table.
  double r_min_ = 0.4;
};

/// The full interpolation-table family of an EAM model: one pair+density
/// table set per species pair and one embedding table per species — the three
/// tables the paper names (electron cloud density, pair potential, embedding
/// potential) for pure Fe, and 8 compact tables for Fe-Cu, whose combined
/// size exceeds the 64 KB local store (paper: "we only load the compacted
/// table for the element with the highest content").
///
/// For the primary (species 0-0) interaction the traditional 5000x7
/// coefficient form is also kept, so the slave-core kernels can run the
/// paper's un-optimized baseline (Fig. 9's "TraditionalTable" bars).
struct EamTableSet {
  struct PairTables {
    CompactTable phi;
    CompactTable f;
  };
  std::vector<PairTables> pairs;   ///< indexed by symmetric pair index
  std::vector<CompactTable> embed; ///< per species
  CoefficientTable phi_trad;       ///< species 0-0, traditional form
  CoefficientTable f_trad;
  CoefficientTable embed_trad;
  int num_species = 0;
  double cutoff = 0.0;
  double r_min = 0.0;

  static EamTableSet build(const EamModel& model,
                           int segments = CoefficientTable::kDefaultSegments);

  std::size_t pair_index(int si, int sj) const;
  std::size_t compact_bytes() const;

  const CompactTable& phi(int si, int sj) const { return pairs[pair_index(si, sj)].phi; }
  const CompactTable& f(int si, int sj) const { return pairs[pair_index(si, sj)].f; }
  const CompactTable& embed_of(int s) const { return embed[static_cast<std::size_t>(s)]; }
};

}  // namespace mmd::pot
