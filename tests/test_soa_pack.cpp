#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "lattice/ghost_exchange.h"
#include "lattice/lattice_neighbor_list.h"
#include "lattice/soa_pack.h"
#include "md/engine.h"

namespace mmd::lat {
namespace {

TEST(SoaPlanes, SlotMappingIsABijection) {
  LocalBox box;
  box.lx = box.ly = box.lz = 4;
  box.halo = 2;
  SoaPlanes p;
  p.reset(box);
  ASSERT_EQ(p.size(), box.num_entries());
  std::vector<bool> seen(p.size(), false);
  for (std::size_t idx = 0; idx < p.size(); ++idx) {
    const std::size_t s = p.slot(idx);
    ASSERT_LT(s, p.size());
    EXPECT_FALSE(seen[s]) << "slot " << s << " hit twice";
    seen[s] = true;
    EXPECT_EQ(p.entry_of(s), idx);
  }
}

TEST(SoaPlanes, SublatticeRowsAreContiguous) {
  // The point of the layout: walking +x within one sublattice advances the
  // plane slot by exactly 1, so neighbor loads across a 4-atom SIMD group
  // are unit-stride.
  LocalBox box;
  box.lx = 5;
  box.ly = 4;
  box.lz = 3;
  box.halo = 2;
  SoaPlanes p;
  p.reset(box);
  for (int sub = 0; sub <= 1; ++sub) {
    const std::size_t s0 = p.slot(box.entry_index({0, 1, 1, sub}));
    for (int x = 1; x < box.lx; ++x) {
      EXPECT_EQ(p.slot(box.entry_index({x, 1, 1, sub})),
                s0 + static_cast<std::size_t>(x));
    }
  }
  // And the two sublattices are fully deinterleaved: sub 1 lives in the
  // second half of each plane.
  EXPECT_EQ(p.slot(0), 0u);
  EXPECT_EQ(p.slot(1), p.cells());
}

/// Pack/unpack round-trip on a thermalized box containing all entry kinds:
/// owned atoms, ghost copies, vacancy tombstones from detached run-aways,
/// and unset ghost slots.
TEST(SoaPlanes, RoundTripWithGhostsAndRunaways) {
  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.temperature = 500.0;
  cfg.table_segments = 500;
  const md::MdSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 3);
    auto& lnl = engine.lattice();
    // Force a run-away: its lattice entry becomes a vacancy tombstone.
    const std::size_t det = lnl.box().entry_index({3, 3, 3, 0});
    lnl.entry(det).r += util::Vec3{0.5, 0.3, 0.1};
    lnl.detach(det);
    GhostExchange ghosts(lnl, setup.dd, comm.rank());
    ghosts.exchange(comm);
    ASSERT_TRUE(lnl.entry(det).is_vacancy());

    SoaPlanes p;
    p.reset(lnl.box());
    p.pack_positions(lnl);

    std::size_t atoms = 0, nonatoms = 0;
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      const AtomEntry& e = lnl.entry(i);
      const util::Vec3 r = p.position(i);
      EXPECT_EQ(r.x, e.r.x);
      EXPECT_EQ(r.y, e.r.y);
      EXPECT_EQ(r.z, e.r.z);
      if (e.is_atom()) {
        ++atoms;
        EXPECT_EQ(p.packed_id(i), static_cast<double>(e.id));
      } else {
        ++nonatoms;  // vacancy tombstone or unset ghost
        EXPECT_LT(p.packed_id(i), 0.0);
      }
    }
    EXPECT_GT(atoms, 0u);
    EXPECT_GT(nonatoms, 0u);  // the detached entry at least
  });
}

TEST(SoaPlanes, ResetResizesForNewBox) {
  SoaPlanes p;
  LocalBox small;
  small.lx = small.ly = small.lz = 2;
  small.halo = 1;
  p.reset(small);
  EXPECT_EQ(p.size(), small.num_entries());
  LocalBox big;
  big.lx = big.ly = big.lz = 6;
  big.halo = 2;
  p.reset(big);
  EXPECT_EQ(p.size(), big.num_entries());
  EXPECT_EQ(p.cells(), big.num_cells());
}

}  // namespace
}  // namespace mmd::lat
