#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lattice/decomposition.h"
#include "lattice/geometry.h"
#include "lattice/local_box.h"
#include "lattice/neighbor_offsets.h"

namespace mmd::lat {
namespace {

constexpr double kA = 2.855;

TEST(BccGeometry, SiteCount) {
  BccGeometry g(4, 5, 6, kA);
  EXPECT_EQ(g.num_sites(), 2ll * 4 * 5 * 6);
}

TEST(BccGeometry, RejectsInvalid) {
  EXPECT_THROW(BccGeometry(0, 1, 1, kA), std::invalid_argument);
  EXPECT_THROW(BccGeometry(1, 1, 1, -1.0), std::invalid_argument);
}

class GeometryRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GeometryRoundTrip, IdCoordRoundTrip) {
  const auto [nx, ny, nz] = GetParam();
  BccGeometry g(nx, ny, nz, kA);
  for (std::int64_t id = 0; id < g.num_sites(); ++id) {
    const SiteCoord c = g.site_coord(id);
    EXPECT_TRUE(g.in_box(c));
    EXPECT_EQ(g.site_id(c), id);
  }
}

TEST_P(GeometryRoundTrip, RankOrderIsSpatial) {
  // Ranking follows z-major, then y, then x, with sub interleaved — the
  // paper's "order of their spatial distribution".
  const auto [nx, ny, nz] = GetParam();
  BccGeometry g(nx, ny, nz, kA);
  EXPECT_EQ(g.site_id({0, 0, 0, 0}), 0);
  EXPECT_EQ(g.site_id({0, 0, 0, 1}), 1);
  if (nx > 1) {
    EXPECT_EQ(g.site_id({1, 0, 0, 0}), 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Boxes, GeometryRoundTrip,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{5, 5, 5},
                                           std::tuple{8, 2, 3}));

TEST(BccGeometry, PositionOfSublattices) {
  BccGeometry g(2, 2, 2, 2.0);
  EXPECT_EQ(g.position({1, 0, 1, 0}), util::Vec3(2.0, 0.0, 2.0));
  EXPECT_EQ(g.position({0, 0, 0, 1}), util::Vec3(1.0, 1.0, 1.0));
}

TEST(BccGeometry, WrapPeriodic) {
  BccGeometry g(3, 3, 3, kA);
  EXPECT_EQ(g.wrap({-1, 3, 7, 0}), (SiteCoord{2, 0, 1, 0}));
  EXPECT_EQ(g.wrap({0, 0, 0, 1}), (SiteCoord{0, 0, 0, 1}));
}

TEST(BccGeometry, NearestSiteExactOnLattice) {
  BccGeometry g(4, 4, 4, kA);
  for (std::int64_t id = 0; id < g.num_sites(); id += 7) {
    const SiteCoord c = g.site_coord(id);
    EXPECT_EQ(g.nearest_site(g.position(c)), c);
  }
}

TEST(BccGeometry, NearestSitePerturbed) {
  BccGeometry g(4, 4, 4, kA);
  const SiteCoord c{1, 2, 3, 1};
  const util::Vec3 p = g.position(c) + util::Vec3{0.3, -0.2, 0.25};
  EXPECT_EQ(g.nearest_site(p), c);
}

TEST(BccGeometry, MinImage) {
  BccGeometry g(4, 4, 4, 1.0);
  const util::Vec3 d = g.min_image({0.1, 0, 0}, {3.9, 0, 0});
  EXPECT_NEAR(d.x, -0.2, 1e-12);
}

TEST(NeighborOffsets, FirstShellIs8At1NN) {
  for (int sub = 0; sub <= 1; ++sub) {
    const auto offs = bcc_neighbor_offsets(kA, 0.9 * kA, sub);
    ASSERT_EQ(offs.size(), 8u) << "sub=" << sub;
    const double d1 = std::sqrt(3.0) / 2.0 * kA;
    for (const auto& o : offs) {
      EXPECT_NEAR(std::sqrt(o.dist2), d1, 1e-12);
      EXPECT_EQ(o.to_sub, 1 - sub);  // 1NN connects the sublattices
    }
  }
}

TEST(NeighborOffsets, SecondShellIs6AtA) {
  const auto offs = bcc_neighbor_offsets(kA, 1.05 * kA, 0);
  ASSERT_EQ(offs.size(), 14u);  // 8 + 6
  for (std::size_t i = 8; i < 14; ++i) {
    EXPECT_NEAR(std::sqrt(offs[i].dist2), kA, 1e-12);
    EXPECT_EQ(offs[i].to_sub, 0);
  }
}

TEST(NeighborOffsets, CountsMatchKnownShells) {
  // Within 5.0 A at a=2.855: shells 8 (2.472) + 6 (2.855) + 12 (4.038) +
  // 24 (4.734) + 8 (4.945) = 58 neighbors.
  const auto offs = bcc_neighbor_offsets(kA, 5.0, 0);
  EXPECT_EQ(offs.size(), 58u);
}

TEST(NeighborOffsets, SymmetricUnderNegation) {
  for (int sub = 0; sub <= 1; ++sub) {
    const auto offs = bcc_neighbor_offsets(kA, 5.0, sub);
    std::set<std::tuple<int, int, int, int>> set;
    for (const auto& o : offs) set.insert({o.dx, o.dy, o.dz, o.to_sub});
    for (const auto& o : offs) {
      if (o.to_sub == sub) {
        // Same-sublattice offsets come in +/- pairs.
        EXPECT_TRUE(set.count({-o.dx, -o.dy, -o.dz, o.to_sub}));
      }
    }
  }
}

TEST(NeighborOffsets, SortedByDistance) {
  const auto offs = bcc_neighbor_offsets(kA, 6.0, 1);
  for (std::size_t i = 1; i < offs.size(); ++i) {
    EXPECT_LE(offs[i - 1].dist2, offs[i].dist2);
  }
}

TEST(NeighborOffsets, HaloForMdCutoff) {
  EXPECT_EQ(required_halo_cells(kA, 5.0), 2);
  EXPECT_EQ(required_halo_cells(kA, 5.6), 2);
  EXPECT_EQ(required_halo_cells(kA, 0.9 * kA), 1);
}

TEST(LocalBox, IndexRoundTrip) {
  LocalBox b{0, 0, 0, 4, 3, 2, 2};
  for (std::size_t i = 0; i < b.num_entries(); ++i) {
    const LocalCoord c = b.coord_of(i);
    EXPECT_TRUE(b.in_storage(c));
    EXPECT_EQ(b.entry_index(c), i);
  }
  EXPECT_EQ(b.num_owned_sites(), 2u * 4 * 3 * 2);
}

TEST(LocalBox, FlatDeltaConsistent) {
  LocalBox b{0, 0, 0, 5, 5, 5, 2};
  const LocalCoord c{2, 2, 2, 0};
  const std::size_t i = b.entry_index(c);
  const std::int64_t d = b.flat_delta(1, -1, 2, 1);
  EXPECT_EQ(static_cast<std::size_t>(static_cast<std::int64_t>(i) + d),
            b.entry_index({3, 1, 4, 1}));
}

TEST(LocalBox, Ownership) {
  LocalBox b{0, 0, 0, 3, 3, 3, 1};
  EXPECT_TRUE(b.owns({0, 0, 0, 0}));
  EXPECT_TRUE(b.owns({2, 2, 2, 1}));
  EXPECT_FALSE(b.owns({-1, 0, 0, 0}));
  EXPECT_FALSE(b.owns({0, 3, 0, 0}));
  EXPECT_TRUE(b.in_storage({-1, 3, 0, 0}));
  EXPECT_FALSE(b.in_storage({-2, 0, 0, 0}));
}

class DecompositionTest : public ::testing::TestWithParam<int> {};

TEST_P(DecompositionTest, PartitionCoversBoxExactly) {
  const int nranks = GetParam();
  BccGeometry g(12, 12, 12, kA);
  DomainDecomposition dd(g, nranks, 2);
  std::vector<int> owner(static_cast<std::size_t>(12 * 12 * 12), -1);
  for (int r = 0; r < nranks; ++r) {
    const LocalBox b = dd.local_box(r);
    EXPECT_GE(b.lx, b.halo);
    EXPECT_GE(b.ly, b.halo);
    EXPECT_GE(b.lz, b.halo);
    for (int z = 0; z < b.lz; ++z) {
      for (int y = 0; y < b.ly; ++y) {
        for (int x = 0; x < b.lx; ++x) {
          auto& o = owner[static_cast<std::size_t>(
              ((b.oz + z) * 12 + b.oy + y) * 12 + b.ox + x)];
          EXPECT_EQ(o, -1);  // no overlap
          o = r;
        }
      }
    }
  }
  for (int v : owner) EXPECT_NE(v, -1);  // full cover
}

TEST_P(DecompositionTest, RankOfCellMatchesBoxes) {
  const int nranks = GetParam();
  BccGeometry g(12, 12, 12, kA);
  DomainDecomposition dd(g, nranks, 2);
  for (int r = 0; r < nranks; ++r) {
    const LocalBox b = dd.local_box(r);
    EXPECT_EQ(dd.rank_of_cell(b.ox, b.oy, b.oz), r);
    EXPECT_EQ(dd.rank_of_cell(b.ox + b.lx - 1, b.oy + b.ly - 1, b.oz + b.lz - 1), r);
  }
}

TEST_P(DecompositionTest, NeighborsAreMutual) {
  const int nranks = GetParam();
  BccGeometry g(12, 12, 12, kA);
  DomainDecomposition dd(g, nranks, 2);
  for (int r = 0; r < nranks; ++r) {
    for (int axis = 0; axis < 3; ++axis) {
      const int p = dd.neighbor(r, axis, +1);
      EXPECT_EQ(dd.neighbor(p, axis, -1), r);
    }
    for (int q : dd.neighbor_ranks(r)) {
      const auto qs = dd.neighbor_ranks(q);
      EXPECT_TRUE(std::find(qs.begin(), qs.end(), r) != qs.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DecompositionTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 27));

TEST(Decomposition, ThrowsWhenHaloDoesNotFit) {
  BccGeometry g(4, 4, 4, kA);
  // 27 ranks would give sub-halo subdomains of 1 cell < halo 2.
  EXPECT_THROW(DomainDecomposition(g, 27, 2), std::invalid_argument);
}

TEST(Decomposition, PrefersCubicGrids) {
  BccGeometry g(16, 16, 16, kA);
  DomainDecomposition dd(g, 8, 2);
  EXPECT_EQ(dd.grid(), (std::array<int, 3>{2, 2, 2}));
}

}  // namespace
}  // namespace mmd::lat
