#include <gtest/gtest.h>

#include "util/key_value.h"

namespace mmd::util {
namespace {

TEST(KeyValue, ParsesBasicPairs) {
  const auto cfg = KeyValueConfig::parse(
      "box = 12\n"
      "temperature=600.5\n"
      "  kmc.strategy   =   on-demand  \n");
  EXPECT_EQ(cfg.size(), 3u);
  EXPECT_EQ(cfg.get_int("box", 0), 12);
  EXPECT_DOUBLE_EQ(cfg.get_double("temperature", 0.0), 600.5);
  EXPECT_EQ(cfg.get_string("kmc.strategy", ""), "on-demand");
}

TEST(KeyValue, CommentsAndBlankLines) {
  const auto cfg = KeyValueConfig::parse(
      "# full-line comment\n"
      "\n"
      "a = 1   # trailing hash\n"
      "b = 2   ; trailing semicolon\n"
      "   ; another comment\n");
  EXPECT_EQ(cfg.size(), 2u);
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_int("b", 0), 2);
}

TEST(KeyValue, DefaultsWhenMissing) {
  const auto cfg = KeyValueConfig::parse("");
  EXPECT_EQ(cfg.get_int("nope", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 1.5), 1.5);
  EXPECT_EQ(cfg.get_string("nope", "x"), "x");
  EXPECT_TRUE(cfg.get_bool("nope", true));
  EXPECT_FALSE(cfg.has("nope"));
}

TEST(KeyValue, BoolSpellings) {
  const auto cfg = KeyValueConfig::parse(
      "a = true\nb = Off\nc = YES\nd = 0\ne = maybe\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_THROW(cfg.get_bool("e", false), std::invalid_argument);
}

TEST(KeyValue, MalformedInputRejected) {
  EXPECT_THROW(KeyValueConfig::parse("just a line\n"), std::invalid_argument);
  EXPECT_THROW(KeyValueConfig::parse("= value\n"), std::invalid_argument);
  EXPECT_THROW(KeyValueConfig::parse("a = 1\na = 2\n"), std::invalid_argument);
}

TEST(KeyValue, TypeErrorsRejected) {
  const auto cfg = KeyValueConfig::parse("a = 12abc\nb = 3.5\n");
  EXPECT_THROW(cfg.get_int("a", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_int("b", 0), std::invalid_argument);  // not integral
  EXPECT_THROW(cfg.get_double("a", 0), std::invalid_argument);
}

TEST(KeyValue, UnknownKeyDetection) {
  const auto cfg = KeyValueConfig::parse("a = 1\nb = 2\ntypo = 3\n");
  cfg.get_int("a", 0);
  cfg.get_int("b", 0);
  const auto unknown = cfg.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(KeyValue, FileNotFound) {
  EXPECT_THROW(KeyValueConfig::parse_file("/nonexistent/path.cfg"),
               std::runtime_error);
}

TEST(KeyValue, EmptyValueAllowed) {
  const auto cfg = KeyValueConfig::parse("xyz = \n");
  EXPECT_EQ(cfg.get_string("xyz", "default"), "");
}

TEST(KeyValue, TracksSourceAndLineNumbers) {
  const auto cfg = KeyValueConfig::parse(
      "# header comment\n"
      "a = 1\n"
      "\n"
      "b = 2\n",
      "demo.mmd");
  EXPECT_EQ(cfg.source(), "demo.mmd");
  EXPECT_EQ(cfg.line_of("a"), 2);
  EXPECT_EQ(cfg.line_of("b"), 4);
  EXPECT_EQ(cfg.line_of("absent"), 0);
}

TEST(KeyValue, RejectUnknownKeysNamesKeyAndFileLine) {
  const auto cfg = KeyValueConfig::parse(
      "a = 1\n"
      "pka.enerty_ev = 80\n",  // typo'd key the driver never reads
      "campaign.mmd");
  cfg.get_int("a", 0);
  try {
    cfg.reject_unknown_keys();
    FAIL() << "expected reject_unknown_keys to throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("campaign.mmd:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pka.enerty_ev"), std::string::npos) << msg;
  }
}

TEST(KeyValue, RejectUnknownKeysPassesWhenAllTouched) {
  const auto cfg = KeyValueConfig::parse("a = 1\nb = 2\n");
  cfg.get_int("a", 0);
  cfg.mark_known("b");
  EXPECT_NO_THROW(cfg.reject_unknown_keys());
}

TEST(KeyValue, SetInsertsAndOverridesWithAttribution) {
  auto cfg = KeyValueConfig::parse("a = 1\n", "base.mmd");
  cfg.set("a", "9", 12);
  cfg.set("fresh", "hello");
  EXPECT_EQ(cfg.get_int("a", 0), 9);
  EXPECT_EQ(cfg.line_of("a"), 12);
  EXPECT_EQ(cfg.get_string("fresh", ""), "hello");
  EXPECT_EQ(cfg.line_of("fresh"), 0);
}

}  // namespace
}  // namespace mmd::util
