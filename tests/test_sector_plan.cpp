// White-box tests of the sector exchange planner: the traditional KMC
// get/put pattern is only deadlock- and corruption-free if every rank
// derives mutually consistent plans from the same pure function of the
// decomposition. These tests check that consistency directly.

#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "kmc/comm_strategy.h"
#include "kmc/engine.h"

namespace mmd::kmc {
namespace {

struct Rig {
  KmcConfig cfg;
  KmcSetup setup;
  pot::EamTableSet tables;

  explicit Rig(int nranks, int box = 10)
      : cfg(make_cfg(box)),
        setup(cfg, nranks),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), 300)) {}

  static KmcConfig make_cfg(int box) {
    KmcConfig c;
    c.nx = c.ny = c.nz = box;
    c.table_segments = 300;
    return c;
  }
};

class SectorPlanRanks : public ::testing::TestWithParam<int> {};

TEST_P(SectorPlanRanks, GetThenPutRoundTripsArbitraryState) {
  // Fill every rank's owned sites with a site-rank-derived pattern, exchange
  // sector by sector, and verify each rank's ghost images match the owner's
  // pattern exactly — for every sector region.
  const int nranks = GetParam();
  Rig rig(nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    KmcModel model(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    for (std::size_t idx : model.owned_indices()) {
      model.set_state(idx,
                      static_cast<SiteState>(model.site_rank_of(idx) % 3));
    }
    const int halo = model.box().halo;
    for (int sector = 0; sector < 8; ++sector) {
      SectorExchangePlan plan(rig.setup.geo, rig.setup.dd, comm.rank(), sector,
                              halo);
      plan.get(comm, model, 500 + sector);
    }
    // After GETs over all sectors, every storage image agrees with the
    // pattern of its global site.
    for (std::size_t i = 0; i < model.size(); ++i) {
      const auto expect =
          static_cast<SiteState>(model.site_rank_of(i) % 3);
      ASSERT_EQ(model.state(i), expect) << "idx " << i;
    }
    comm.barrier();
  });
}

TEST_P(SectorPlanRanks, PutDeliversGhostModificationsToOwner) {
  const int nranks = GetParam();
  Rig rig(nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    KmcModel model(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    const int halo = model.box().halo;
    for (int sector = 0; sector < 8; ++sector) {
      SectorExchangePlan get_plan(rig.setup.geo, rig.setup.dd, comm.rank(),
                                  sector, halo);
      SectorExchangePlan put_plan(rig.setup.geo, rig.setup.dd, comm.rank(),
                                  sector, /*depth=*/1);
      get_plan.get(comm, model, 600 + sector);
      const auto snapshot = put_plan.snapshot(model);
      // Rank 0 marks one ghost site in the put region of this sector (if it
      // has one) by flipping it to Vacancy.
      std::int64_t marked_gid = -1;
      if (comm.rank() == 0) {
        const auto& b = model.box();
        for (std::size_t i = 0; i < model.size(); ++i) {
          if (model.is_owned(i)) continue;
          const auto c = b.coord_of(i);
          // Depth-1 shell of this sector: one cell beyond the octant.
          const int mids[3] = {b.lx / 2, b.ly / 2, b.lz / 2};
          const int los[3] = {((sector >> 0) & 1) ? mids[0] - 1 : -1,
                              ((sector >> 1) & 1) ? mids[1] - 1 : -1,
                              ((sector >> 2) & 1) ? mids[2] - 1 : -1};
          const int his[3] = {((sector >> 0) & 1) ? b.lx + 1 : mids[0] + 1,
                              ((sector >> 1) & 1) ? b.ly + 1 : mids[1] + 1,
                              ((sector >> 2) & 1) ? b.lz + 1 : mids[2] + 1};
          const int cc[3] = {c.x, c.y, c.z};
          bool in = true;
          for (int a = 0; a < 3; ++a) in = in && cc[a] >= los[a] && cc[a] < his[a];
          if (!in) continue;
          marked_gid = model.site_rank_of(i);
          model.set_state_global(marked_gid, SiteState::Vacancy);
          break;
        }
      }
      put_plan.put(comm, model, 700 + sector, snapshot);
      // Broadcast the marked gid and verify the owner (and everyone holding
      // an image after its own gets) sees the vacancy.
      std::int64_t gid = marked_gid;
      if (comm.rank() == 0) {
        for (int r = 1; r < comm.size(); ++r) comm.send_value(r, 800, gid);
      } else {
        gid = comm.recv_vector<std::int64_t>(0, 800)[0];
      }
      if (gid >= 0) {
        std::vector<std::size_t> images;
        model.images_of_global(gid, images);
        for (std::size_t i : images) {
          if (model.is_owned(i)) {
            ASSERT_EQ(model.state(i), SiteState::Vacancy)
                << "sector " << sector << " owner did not receive the put";
          }
        }
      }
      // Reset for the next sector.
      if (gid >= 0) model.set_state_global(gid, SiteState::Fe);
      comm.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SectorPlanRanks, ::testing::Values(2, 4, 8));

TEST(SectorPlan, GhostSiteCountsArePositive) {
  Rig rig(2);
  for (int sector = 0; sector < 8; ++sector) {
    SectorExchangePlan plan(rig.setup.geo, rig.setup.dd, 0, sector, 4);
    EXPECT_GT(plan.ghost_sites(), 0u) << sector;
  }
  SectorExchangePlan full(rig.setup.geo, rig.setup.dd, 0, -1, 4);
  // Full halo dwarfs any single sector shell.
  SectorExchangePlan s0(rig.setup.geo, rig.setup.dd, 0, 0, 4);
  EXPECT_GT(full.ghost_sites(), s0.ghost_sites());
}

}  // namespace
}  // namespace mmd::kmc
