#include <gtest/gtest.h>

#include <cmath>

#include "kmc/engine.h"
#include "md/engine.h"

namespace mmd {
namespace {

constexpr double kA = 2.855;

struct AlloyMdRig {
  md::MdConfig cfg;
  md::MdSetup setup;
  pot::EamTableSet tables;

  AlloyMdRig()
      : cfg(make_cfg()),
        setup(cfg, 1),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron_copper(kA, cfg.cutoff), cfg.table_segments)) {}

  static md::MdConfig make_cfg() {
    md::MdConfig c;
    c.nx = c.ny = c.nz = 6;
    c.temperature = 300.0;
    c.table_segments = 500;
    return c;
  }
};

TEST(AlloyMd, SeedSolutesRequiresAlloyTables) {
  md::MdConfig cfg = AlloyMdRig::make_cfg();
  md::MdSetup setup(cfg, 1);
  const auto fe_only = pot::EamTableSet::build(
      pot::EamModel::iron(kA, cfg.cutoff), cfg.table_segments);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(cfg, setup.geo, setup.dd, fe_only, comm.rank());
    engine.initialize(comm);
    EXPECT_THROW(engine.seed_solutes(comm, 0.05), std::invalid_argument);
  });
}

TEST(AlloyMd, SolutesSeededAndStable) {
  AlloyMdRig rig;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables,
                        comm.rank());
    engine.initialize(comm);
    engine.seed_solutes(comm, 0.10);
    auto& lnl = engine.lattice();
    std::size_t cu = 0;
    for (std::size_t i : lnl.owned_indices()) {
      if (lnl.entry(i).is_atom() && lnl.entry(i).type == lat::Species::Cu) ++cu;
    }
    // ~10% of 432 atoms, binomial noise.
    EXPECT_GT(cu, 20u);
    EXPECT_LT(cu, 70u);
    // Dynamics stays sane: short NVE run keeps the crystal intact.
    engine.run(comm, 20);
    const auto d = engine.defects(comm);
    EXPECT_EQ(d.vacancies, 0u);
    EXPECT_EQ(d.atoms, static_cast<std::uint64_t>(rig.setup.geo.num_sites()));
  });
}

TEST(AlloyMd, SoluteArrangementDecompositionIndependent) {
  AlloyMdRig rig;
  auto census = [&](int nranks) {
    md::MdSetup setup(rig.cfg, nranks);
    std::vector<std::int64_t> cu_ids;
    std::mutex m;
    comm::World world(nranks);
    world.run([&](comm::Comm& comm) {
      md::MdEngine engine(rig.cfg, setup.geo, setup.dd, rig.tables, comm.rank());
      engine.initialize(comm);
      engine.seed_solutes(comm, 0.08);
      auto& lnl = engine.lattice();
      std::lock_guard lk(m);
      for (std::size_t i : lnl.owned_indices()) {
        if (lnl.entry(i).is_atom() && lnl.entry(i).type == lat::Species::Cu) {
          cu_ids.push_back(lnl.entry(i).id);
        }
      }
    });
    std::sort(cu_ids.begin(), cu_ids.end());
    return cu_ids;
  };
  EXPECT_EQ(census(1), census(2));
}

TEST(AlloyMd, MixedForcesDifferFromPureIron) {
  // Same geometry, same seed; substituting Cu changes the local forces.
  AlloyMdRig rig;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables,
                        comm.rank());
    engine.initialize(comm);
    // Perturb one atom, record the force answer for Fe...
    auto& lnl = engine.lattice();
    const std::size_t idx = lnl.box().entry_index({3, 3, 3, 0});
    const std::size_t nb = lnl.box().entry_index({3, 3, 3, 1});
    lnl.entry(idx).r += util::Vec3{0.3, 0.0, 0.0};
    md::ReferenceForce force(rig.tables);
    force.compute_rho(lnl);
    force.compute_forces(lnl);
    const util::Vec3 f_fe = lnl.entry(nb).f;
    // ...then make the perturbed atom Cu and recompute.
    lnl.entry(idx).type = lat::Species::Cu;
    force.compute_rho(lnl);
    force.compute_forces(lnl);
    const util::Vec3 f_cu = lnl.entry(nb).f;
    EXPECT_GT((f_fe - f_cu).norm(), 1e-6);
  });
}

struct AlloyKmcRig {
  kmc::KmcConfig cfg;
  kmc::KmcSetup setup;
  pot::EamTableSet tables;

  explicit AlloyKmcRig(int nranks)
      : cfg(make_cfg()),
        setup(cfg, nranks),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron_copper(kA, cfg.cutoff), cfg.table_segments)) {}

  static kmc::KmcConfig make_cfg() {
    kmc::KmcConfig c;
    c.nx = c.ny = c.nz = 10;
    c.table_segments = 300;
    c.dt_scale = 2.0;
    return c;
  }
};

TEST(AlloyKmc, SolutesSeededAndConserved) {
  AlloyKmcRig rig(2);
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    kmc::KmcEngine engine(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables,
                          comm.rank(), kmc::GhostStrategy::OnDemandOneSided);
    engine.initialize_random(comm, 0.01, 0.05);
    auto count_cu = [&] {
      std::uint64_t cu = 0;
      for (std::size_t i : engine.model().owned_indices()) {
        if (engine.model().state(i) == kmc::SiteState::Cu) ++cu;
      }
      return comm.allreduce_sum_u64(cu);
    };
    const auto cu_before = count_cu();
    EXPECT_GT(cu_before, 30u);
    engine.run_cycles(comm, 4);
    // Vacancy exchanges move Cu atoms but never create or destroy them.
    EXPECT_EQ(count_cu(), cu_before);
    const auto vacs = engine.gather_vacancies(comm);
    const auto n = comm.allreduce_sum_u64(
        static_cast<std::uint64_t>(engine.model().count_owned_vacancies()));
    if (comm.rank() == 0) {
      EXPECT_EQ(vacs.size(), n);
    }
  });
}

TEST(AlloyKmc, CuHopsHaveDifferentRates) {
  AlloyKmcRig rig(1);
  const auto& model_tables = rig.tables;
  kmc::KmcModel model(rig.cfg, rig.setup.geo, rig.setup.dd, model_tables, 0);
  // Vacancy with one Cu neighbor and the rest Fe.
  const std::size_t vac = model.index_of_local({5, 5, 5, 0});
  const std::size_t cu = model.index_of_local({5, 5, 5, 1});
  const std::size_t fe = model.index_of_local({4, 4, 4, 1});
  model.set_state_global(model.site_rank_of(vac), kmc::SiteState::Vacancy);
  model.set_state_global(model.site_rank_of(cu), kmc::SiteState::Cu);
  const double dE_cu = model.exchange_dE(vac, cu);
  const double dE_fe = model.exchange_dE(vac, fe);
  EXPECT_NE(dE_cu, dE_fe);
  EXPECT_TRUE(std::isfinite(dE_cu));
}

}  // namespace
}  // namespace mmd
