#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/analysis.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"
#include "util/json.h"

namespace mmd::telemetry {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000;  // ns

void record_span(Tracer& tracer, int rank, int lane, const char* name,
                 std::uint64_t t0_ns, std::uint64_t t1_ns,
                 std::uint64_t dma_ops = 0, std::uint64_t dma_bytes = 0) {
  tracer.attach_calling_thread(rank, lane);
  TraceEvent ev;
  ev.name = name;
  ev.t0_ns = t0_ns;
  ev.t1_ns = t1_ns;
  ev.dma_ops = dma_ops;
  ev.dma_bytes = dma_bytes;
  tracer.record(TrackId{rank, lane}, ev);
  Tracer::detach_calling_thread();
}

/// The hand-built workload every test below reads: 3 ranks, master-lane
/// "md.step" totals of 1 s / 2 s / 3 s (critical path 3.0 at rank 2,
/// mean 2.0, imbalance 1.5), a "kmc.cycle" phase present only on rank 0,
/// and one CPE span on rank 0 lane 1 carrying DMA traffic. (Tracer owns a
/// mutex, so the fixture fills a caller-constructed instance.)
void build_workload(Tracer& tracer) {
  record_span(tracer, 0, 0, "md.step", 0, 1 * kSecond);
  record_span(tracer, 1, 0, "md.step", 0, 1 * kSecond);
  record_span(tracer, 1, 0, "md.step", 1 * kSecond, 2 * kSecond);
  record_span(tracer, 2, 0, "md.step", 0, 3 * kSecond);
  record_span(tracer, 0, 0, "kmc.cycle", 1 * kSecond, 2 * kSecond);
  // CPE: 1 s busy, 1000 DMA ops of 8 KB each = 8 MB.
  record_span(tracer, 0, 1, "cpe.kernel", 0, 1 * kSecond, 1000, 8'000'000);
}

MetricsRegistry make_metrics() {
  MetricsRegistry metrics(3);
  metrics.set_gauge(0, "md.compute_seconds", 1.0);
  metrics.set_gauge(1, "md.compute_seconds", 2.0);
  metrics.set_gauge(2, "md.compute_seconds", 3.0);
  metrics.set_gauge(2, "kmc.wall_seconds", 4.0);
  return metrics;
}

const PhaseStats* find_phase(const std::vector<PhaseStats>& phases,
                             const std::string& name) {
  for (const PhaseStats& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

TEST(TelemetryAnalysis, CriticalPathAndImbalance) {
  Tracer tracer(3, 2, 64);
  build_workload(tracer);
  const MetricsRegistry metrics = make_metrics();
  const PerfReport report = analyze(tracer, metrics);

  EXPECT_EQ(report.nranks, 3);
  EXPECT_EQ(report.dropped_spans, 0u);
  // Master envelope: earliest begin 0, latest end 3 s.
  EXPECT_NEAR(report.wall_s, 3.0, 1e-9);

  const PhaseStats* md = find_phase(report.phases, "md.step");
  ASSERT_NE(md, nullptr);
  EXPECT_EQ(md->ranks, 3);
  EXPECT_EQ(md->spans, 4u);
  EXPECT_NEAR(md->total_max_s, 3.0, 1e-9);
  EXPECT_EQ(md->critical_rank, 2);
  EXPECT_NEAR(md->total_mean_s, 2.0, 1e-9);
  EXPECT_NEAR(md->total_min_s, 1.0, 1e-9);
  EXPECT_NEAR(md->imbalance, 1.5, 1e-9);
  // Per-span durations {1,1,1,3} s — P² is exact at n <= 5.
  EXPECT_NEAR(md->span_s.p50(), 1.0, 1e-9);
  EXPECT_NEAR(md->span_s.max(), 3.0, 1e-9);

  // Phases sort by critical path, so md.step leads and is the top hotspot.
  ASSERT_FALSE(report.phases.empty());
  EXPECT_EQ(report.phases.front().name, "md.step");
  const auto hot = top_hotspots(report, 1);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0]->name, "md.step");
}

TEST(TelemetryAnalysis, AbsentRanksCountAsZeroInTheMean) {
  Tracer tracer(3, 2, 64);
  build_workload(tracer);
  const MetricsRegistry metrics = make_metrics();
  const PerfReport report = analyze(tracer, metrics);

  // kmc.cycle ran only on rank 0 (1 s) of 3 attached ranks: mean 1/3,
  // imbalance 3 — the idle ranks are the imbalance.
  const PhaseStats* kmc = find_phase(report.phases, "kmc.cycle");
  ASSERT_NE(kmc, nullptr);
  EXPECT_EQ(kmc->ranks, 1);
  EXPECT_NEAR(kmc->total_max_s, 1.0, 1e-9);
  EXPECT_EQ(kmc->critical_rank, 0);
  EXPECT_NEAR(kmc->total_mean_s, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(kmc->imbalance, 3.0, 1e-9);
}

TEST(TelemetryAnalysis, CpeOverlapRatioFromDmaModel) {
  Tracer tracer(3, 2, 64);
  build_workload(tracer);
  const MetricsRegistry metrics = make_metrics();
  const PerfReport report = analyze(tracer, metrics);

  const PhaseStats* cpe = find_phase(report.cpe_phases, "cpe.kernel");
  ASSERT_NE(cpe, nullptr);
  EXPECT_EQ(cpe->dma_ops, 1000u);
  EXPECT_EQ(cpe->dma_bytes, 8'000'000u);
  EXPECT_NEAR(report.cpe_busy_s, 1.0, 1e-9);
  // alpha-beta: 1000 * 0.25us + 8 MB / 8 GB/s = 0.25 ms + 1 ms.
  EXPECT_NEAR(report.dma_modeled_s, 1.25e-3, 1e-9);
  EXPECT_NEAR(report.overlap_ratio, 1.25e-3, 1e-9);

  // Custom model: 10x slower link doubles-and-more the modeled time.
  AnalysisOptions opt;
  opt.dma_bandwidth_bytes_per_s = 8e8;
  const PerfReport slow = analyze(tracer, metrics, opt);
  EXPECT_NEAR(slow.dma_modeled_s, 1.025e-2, 1e-9);
}

TEST(TelemetryAnalysis, GaugeSpreadOverRanks) {
  Tracer tracer(3, 2, 64);
  build_workload(tracer);
  const MetricsRegistry metrics = make_metrics();
  const PerfReport report = analyze(tracer, metrics);

  const GaugeSpread* compute = nullptr;
  const GaugeSpread* kmc_wall = nullptr;
  for (const GaugeSpread& g : report.gauges) {
    if (g.name == "md.compute_seconds") compute = &g;
    if (g.name == "kmc.wall_seconds") kmc_wall = &g;
  }
  ASSERT_NE(compute, nullptr);
  EXPECT_NEAR(compute->max, 3.0, 1e-12);
  EXPECT_EQ(compute->max_rank, 2);
  EXPECT_NEAR(compute->mean, 2.0, 1e-12);
  EXPECT_NEAR(compute->imbalance, 1.5, 1e-12);
  // Set on one rank only: spread over the setting ranks.
  ASSERT_NE(kmc_wall, nullptr);
  EXPECT_NEAR(kmc_wall->mean, 4.0, 1e-12);
  EXPECT_NEAR(kmc_wall->imbalance, 1.0, 1e-12);
}

TEST(TelemetryAnalysis, TextReportNamesTheHeadlines) {
  Tracer tracer(3, 2, 64);
  build_workload(tracer);
  const MetricsRegistry metrics = make_metrics();
  const PerfReport report = analyze(tracer, metrics);
  std::ostringstream os;
  write_perf_report_text(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find("md.step"), std::string::npos);
  EXPECT_NE(text.find("kmc.cycle"), std::string::npos);
  EXPECT_NE(text.find("cpe.kernel"), std::string::npos);
  EXPECT_NE(text.find("Top hotspots"), std::string::npos);
  EXPECT_NE(text.find("md.compute_seconds"), std::string::npos);
}

TEST(TelemetryAnalysis, JsonReportParsesAndCarriesSchema) {
  Tracer tracer(3, 2, 64);
  build_workload(tracer);
  const MetricsRegistry metrics = make_metrics();
  const PerfReport report = analyze(tracer, metrics);
  std::ostringstream os;
  write_perf_report_json(os, report);
  const auto v = util::json::parse(os.str());
  EXPECT_EQ(v.at("schema").str(), "mmd.perf_report");
  EXPECT_DOUBLE_EQ(v.at("schema_version").number(), PerfReport::kSchemaVersion);
  EXPECT_DOUBLE_EQ(v.at("nranks").number(), 3.0);
  const auto& phases = v.at("phases").array();
  ASSERT_FALSE(phases.empty());
  EXPECT_EQ(phases[0].at("name").str(), "md.step");
  EXPECT_NEAR(phases[0].at("imbalance").number(), 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(v.at("cpe").at("busy_s").number(), 1.0);
  ASSERT_FALSE(v.at("gauges").array().empty());
}

TEST(TelemetryAnalysis, EmptyTracerYieldsEmptyReport) {
  const Tracer tracer(2, 1, 8);
  const MetricsRegistry metrics(2);
  const PerfReport report = analyze(tracer, metrics);
  EXPECT_EQ(report.wall_s, 0.0);
  EXPECT_TRUE(report.phases.empty());
  EXPECT_TRUE(report.cpe_phases.empty());
  EXPECT_EQ(report.overlap_ratio, 0.0);
  std::ostringstream os;
  write_perf_report_json(os, report);
  EXPECT_NO_THROW(util::json::parse(os.str()));  // stays valid JSON
}

TEST(TelemetryAnalysis, JsonFileWriteFailureReturnsFalse) {
  const PerfReport report;
  EXPECT_FALSE(write_perf_report_json_file("/nonexistent-mmd-dir/x.json", report));
}

}  // namespace
}  // namespace mmd::telemetry
