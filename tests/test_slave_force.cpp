#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "md/engine.h"
#include "md/slave_force.h"

namespace mmd::md {
namespace {

MdConfig accel_config() {
  MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.temperature = 400.0;
  cfg.table_segments = 5000;  // authentic table sizes for residency behaviour
  return cfg;
}

struct Rig {
  MdConfig cfg;
  MdSetup setup;
  pot::EamTableSet tables;

  explicit Rig(const MdConfig& c)
      : cfg(c),
        setup(c, 1),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron(c.lattice_constant, c.cutoff), c.table_segments)) {}
};

/// Reference forces vs slave-kernel forces on the same perturbed crystal.
void compare_forces(AccelStrategy strategy, sw::DmaStats* stats_out = nullptr,
                    bool with_runaways = false, int box_cells = 6) {
  MdConfig cfg = accel_config();
  cfg.nx = cfg.ny = cfg.nz = box_cells;
  Rig rig(cfg);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 5);  // develop thermal displacements
    if (with_runaways) {
      auto& lnl = engine.lattice();
      const std::size_t idx = lnl.box().entry_index({3, 3, 3, 0});
      lnl.entry(idx).r += util::Vec3{0.4, 0.2, 0.1};
      lnl.detach(idx);
      // Refresh ghosts so chains are mirrored before comparing kernels.
      lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());
      ghosts.exchange(comm);
    }

    auto& lnl = engine.lattice();
    // Reference pass.
    ReferenceForce ref(rig.tables);
    ref.compute_rho(lnl);
    lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());
    ghosts.exchange_rho(comm);
    ref.compute_forces(lnl);
    std::vector<util::Vec3> f_ref(lnl.size());
    std::vector<double> rho_ref(lnl.size());
    for (std::size_t i : lnl.owned_indices()) {
      f_ref[i] = lnl.entry(i).f;
      rho_ref[i] = lnl.entry(i).rho;
    }

    // Slave pass.
    sw::SlaveCorePool pool(8);
    SlaveForceCompute slave(rig.tables, pool, strategy);
    slave.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    slave.compute_forces(lnl);

    double max_rho_err = 0.0, max_f_err = 0.0;
    for (std::size_t i : lnl.owned_indices()) {
      if (!lnl.entry(i).is_atom()) continue;
      max_rho_err = std::max(max_rho_err, std::abs(lnl.entry(i).rho - rho_ref[i]));
      max_f_err = std::max(max_f_err, (lnl.entry(i).f - f_ref[i]).norm());
    }
    EXPECT_LT(max_rho_err, 1e-10);
    EXPECT_LT(max_f_err, 1e-9);
    if (stats_out != nullptr) *stats_out = slave.dma_stats();
  });
}

TEST(SlaveForce, TraditionalMatchesReference) {
  compare_forces(AccelStrategy::TraditionalTable);
}

TEST(SlaveForce, CompactedMatchesReference) {
  compare_forces(AccelStrategy::CompactedTable);
}

TEST(SlaveForce, CompactedReuseMatchesReference) {
  compare_forces(AccelStrategy::CompactedReuse);
}

TEST(SlaveForce, DoubleBufferMatchesReference) {
  compare_forces(AccelStrategy::CompactedReuseDouble);
}

TEST(SlaveForce, MatchesReferenceWithRunaways) {
  compare_forces(AccelStrategy::CompactedReuse, nullptr, /*with_runaways=*/true);
}

TEST(SlaveForce, CompactedUsesFarFewerDmaOps) {
  sw::DmaStats trad, compact;
  compare_forces(AccelStrategy::TraditionalTable, &trad);
  compare_forces(AccelStrategy::CompactedTable, &compact);
  // The whole point of table compaction (paper Fig. 9): per-lookup row DMAs
  // vanish once the compact table is resident.
  EXPECT_GT(trad.get_ops, 10u * compact.get_ops)
      << "traditional=" << trad.get_ops << " compacted=" << compact.get_ops;
}

TEST(SlaveForce, ReuseReducesDmaBytes) {
  // Needs a box wider than one block along x, or there is nothing to reuse.
  sw::DmaStats plain, reuse;
  compare_forces(AccelStrategy::CompactedTable, &plain, false, 12);
  compare_forces(AccelStrategy::CompactedReuse, &reuse, false, 12);
  EXPECT_LT(reuse.get_bytes, plain.get_bytes);
}

TEST(SlaveForce, RejectsAlloyTables) {
  const auto alloy = pot::EamTableSet::build(pot::EamModel::iron_copper(), 500);
  sw::SlaveCorePool pool(4);
  EXPECT_THROW(SlaveForceCompute(alloy, pool, AccelStrategy::CompactedTable),
               std::invalid_argument);
}

TEST(SlaveForce, EngineIntegrationProducesSameTrajectory) {
  const MdConfig cfg = accel_config();
  Rig rig(cfg);

  auto run_with = [&](SlaveForceCompute* kernel) {
    std::vector<util::Vec3> pos;
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
      engine.use_slave_kernel(kernel);
      engine.initialize(comm);
      engine.run(comm, 5);
      auto& lnl = engine.lattice();
      for (std::size_t i : lnl.owned_indices()) pos.push_back(lnl.entry(i).r);
    });
    return pos;
  };

  const auto ref = run_with(nullptr);
  sw::SlaveCorePool pool(8);
  SlaveForceCompute slave(rig.tables, pool, AccelStrategy::CompactedReuse);
  const auto acc = run_with(&slave);
  ASSERT_EQ(ref.size(), acc.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_err = std::max(max_err, (ref[i] - acc[i]).norm());
  }
  EXPECT_LT(max_err, 1e-8);
}

TEST(SlaveForce, ModeledTimeOverlapsOnlyWithDoubleBuffer) {
  // The double-buffered model overlaps DMA with compute: its modeled time is
  // max(dma, compute) per core, which is bounded by the serial sum of the
  // SAME run's components (cross-run wall-clock comparisons are too noisy).
  const MdConfig cfg = accel_config();
  Rig rig(cfg);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    auto& lnl = engine.lattice();

    sw::SlaveCorePool pool(4);
    SlaveForceCompute dbl(rig.tables, pool, AccelStrategy::CompactedReuseDouble);
    dbl.compute_rho(lnl);
    const double overlap_model = dbl.modeled_time();
    const double dma_model = pool.max_modeled_dma_time();
    const double compute_model = dbl.compute_seconds();

    EXPECT_GT(overlap_model, 0.0);
    EXPECT_GT(dma_model, 0.0);
    // max(dma, compute) per core: bounded below by each component's max and
    // above by their sum.
    EXPECT_GE(overlap_model, dma_model * (1.0 - 1e-12));
    EXPECT_LE(overlap_model, dma_model + compute_model + 1e-12);
  });
}

}  // namespace
}  // namespace mmd::md
