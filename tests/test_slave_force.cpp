#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "md/engine.h"
#include "md/slave_force.h"

namespace mmd::md {
namespace {

MdConfig accel_config() {
  MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.temperature = 400.0;
  cfg.table_segments = 5000;  // authentic table sizes for residency behaviour
  return cfg;
}

struct Rig {
  MdConfig cfg;
  MdSetup setup;
  pot::EamTableSet tables;

  explicit Rig(const MdConfig& c)
      : cfg(c),
        setup(c, 1),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron(c.lattice_constant, c.cutoff), c.table_segments)) {}
};

struct CompareOpts {
  bool fused = false;
  bool with_runaways = false;
  int box_cells = 6;
  int table_segments = 5000;
  std::size_t store_bytes = sw::LocalStore::kSunwayCapacity;
  double tol_rho = 1e-10;
  double tol_f = 1e-9;
  sw::DmaStats* stats_out = nullptr;
  std::uint64_t* fallbacks_out = nullptr;
};

/// Reference forces vs slave-kernel forces on the same perturbed crystal.
void compare_forces(AccelStrategy strategy, const CompareOpts& opt = {}) {
  MdConfig cfg = accel_config();
  cfg.nx = cfg.ny = cfg.nz = opt.box_cells;
  cfg.table_segments = opt.table_segments;
  Rig rig(cfg);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 5);  // develop thermal displacements
    if (opt.with_runaways) {
      auto& lnl = engine.lattice();
      const std::size_t idx = lnl.box().entry_index({3, 3, 3, 0});
      lnl.entry(idx).r += util::Vec3{0.4, 0.2, 0.1};
      lnl.detach(idx);
      // Refresh ghosts so chains are mirrored before comparing kernels.
      lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());
      ghosts.exchange(comm);
    }

    auto& lnl = engine.lattice();
    // Reference pass.
    ReferenceForce ref(rig.tables);
    ref.compute_rho(lnl);
    lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());
    ghosts.exchange_rho(comm);
    ref.compute_forces(lnl);
    std::vector<util::Vec3> f_ref(lnl.size());
    std::vector<double> rho_ref(lnl.size());
    for (std::size_t i : lnl.owned_indices()) {
      f_ref[i] = lnl.entry(i).f;
      rho_ref[i] = lnl.entry(i).rho;
    }

    // Slave pass.
    sw::SlaveCorePool pool(8, opt.store_bytes);
    SlaveForceCompute slave(rig.tables, pool, strategy);
    slave.set_fused(opt.fused);
    slave.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    slave.compute_forces(lnl);

    double max_rho_err = 0.0, max_f_err = 0.0;
    for (std::size_t i : lnl.owned_indices()) {
      if (!lnl.entry(i).is_atom()) continue;
      max_rho_err = std::max(max_rho_err, std::abs(lnl.entry(i).rho - rho_ref[i]));
      max_f_err = std::max(max_f_err, (lnl.entry(i).f - f_ref[i]).norm());
    }
    EXPECT_LT(max_rho_err, opt.tol_rho);
    EXPECT_LT(max_f_err, opt.tol_f);
    if (opt.stats_out != nullptr) *opt.stats_out = slave.dma_stats();
    if (opt.fallbacks_out != nullptr) *opt.fallbacks_out = slave.table_fallbacks();
  });
}

TEST(SlaveForce, TraditionalMatchesReference) {
  compare_forces(AccelStrategy::TraditionalTable);
}

TEST(SlaveForce, CompactedMatchesReference) {
  compare_forces(AccelStrategy::CompactedTable);
}

TEST(SlaveForce, CompactedReuseMatchesReference) {
  compare_forces(AccelStrategy::CompactedReuse);
}

TEST(SlaveForce, DoubleBufferMatchesReference) {
  compare_forces(AccelStrategy::CompactedReuseDouble);
}

TEST(SlaveForce, MatchesReferenceWithRunaways) {
  CompareOpts opt;
  opt.with_runaways = true;
  compare_forces(AccelStrategy::CompactedReuse, opt);
}

// The fused single-sweep kernel evaluates the SAME per-pair expression as
// ReferenceForce ((phi' + (F'_i + F'_j) f') / r, identical neighbor order),
// so compact-table strategies agree to round-off. The traditional 7-column
// coefficient format reconstructs the polynomial differently from the
// reference spline, so its (fusion-independent) error floor is larger.
class SlaveForceFused : public ::testing::TestWithParam<AccelStrategy> {};

TEST_P(SlaveForceFused, MatchesReference) {
  CompareOpts opt;
  opt.fused = true;
  const bool trad = GetParam() == AccelStrategy::TraditionalTable;
  opt.tol_rho = trad ? 1e-10 : 1e-12;
  opt.tol_f = trad ? 1e-9 : 1e-12;
  compare_forces(GetParam(), opt);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SlaveForceFused,
    ::testing::Values(AccelStrategy::TraditionalTable,
                      AccelStrategy::CompactedTable,
                      AccelStrategy::CompactedReuse,
                      AccelStrategy::CompactedReuseDouble),
    [](const auto& param_info) {
      switch (param_info.param) {
        case AccelStrategy::TraditionalTable: return "Traditional";
        case AccelStrategy::CompactedTable: return "Compacted";
        case AccelStrategy::CompactedReuse: return "CompactedReuse";
        case AccelStrategy::CompactedReuseDouble: return "CompactedReuseDouble";
      }
      return "Unknown";
    });

/// SIMD kernels vs the scalar SoA fallback on identical inputs: same packed
/// planes, same stencil, same tables. The vectorized arithmetic regroups
/// FMA chains, so agreement is 1e-12, not bitwise. On hardware without AVX2
/// set_simd(true) degrades to scalar and the comparison is trivially exact.
struct SimdOpts {
  bool fused = true;
  bool with_runaways = false;
  int table_segments = 1500;  // both compact tables resident -> SIMD engages
  std::size_t store_bytes = sw::LocalStore::kSunwayCapacity;
};

void compare_simd_vs_scalar(AccelStrategy strategy, const SimdOpts& opt = {}) {
  MdConfig cfg = accel_config();
  cfg.table_segments = opt.table_segments;
  Rig rig(cfg);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 5);
    auto& lnl = engine.lattice();
    if (opt.with_runaways) {
      const std::size_t idx = lnl.box().entry_index({3, 3, 3, 0});
      lnl.entry(idx).r += util::Vec3{0.4, 0.2, 0.1};
      lnl.detach(idx);
    }
    lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());
    ghosts.exchange(comm);

    auto run_pass = [&](bool simd, std::vector<double>& rho,
                        std::vector<util::Vec3>& f) {
      sw::SlaveCorePool pool(8, opt.store_bytes);
      SlaveForceCompute slave(rig.tables, pool, strategy);
      slave.set_fused(opt.fused);
      slave.set_simd(simd);
      slave.compute_rho(lnl);
      ghosts.exchange_rho(comm);
      slave.compute_forces(lnl);
      rho.assign(lnl.size(), 0.0);
      f.assign(lnl.size(), util::Vec3{});
      for (std::size_t i : lnl.owned_indices()) {
        rho[i] = lnl.entry(i).rho;
        f[i] = lnl.entry(i).f;
      }
    };

    std::vector<double> rho_scalar, rho_simd;
    std::vector<util::Vec3> f_scalar, f_simd;
    run_pass(false, rho_scalar, f_scalar);
    run_pass(true, rho_simd, f_simd);

    double max_rho_err = 0.0, max_f_err = 0.0;
    for (std::size_t i : lnl.owned_indices()) {
      if (!lnl.entry(i).is_atom()) continue;
      max_rho_err = std::max(max_rho_err, std::abs(rho_simd[i] - rho_scalar[i]));
      max_f_err = std::max(max_f_err, (f_simd[i] - f_scalar[i]).norm());
    }
    EXPECT_LT(max_rho_err, 1e-12);
    EXPECT_LT(max_f_err, 1e-12);
  });
}

class SlaveForceSimd : public ::testing::TestWithParam<AccelStrategy> {};

TEST_P(SlaveForceSimd, FusedSimdMatchesScalar) {
  compare_simd_vs_scalar(GetParam());
}

TEST_P(SlaveForceSimd, TwoPassSimdMatchesScalar) {
  SimdOpts opt;
  opt.fused = false;
  compare_simd_vs_scalar(GetParam(), opt);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SlaveForceSimd,
    ::testing::Values(AccelStrategy::TraditionalTable,
                      AccelStrategy::CompactedTable,
                      AccelStrategy::CompactedReuse,
                      AccelStrategy::CompactedReuseDouble),
    [](const auto& param_info) {
      switch (param_info.param) {
        case AccelStrategy::TraditionalTable: return "Traditional";
        case AccelStrategy::CompactedTable: return "Compacted";
        case AccelStrategy::CompactedReuse: return "CompactedReuse";
        case AccelStrategy::CompactedReuseDouble: return "CompactedReuseDouble";
      }
      return "Unknown";
    });

TEST(SlaveForce, SimdMatchesScalarWithRunaways) {
  // Runaway chains leave holes (packed_id < 0) in the window planes: the
  // SIMD validity mask must drop exactly the lanes the scalar loop skips.
  SimdOpts opt;
  opt.with_runaways = true;
  compare_simd_vs_scalar(AccelStrategy::CompactedReuse, opt);
}

TEST(SlaveForce, SimdMatchesScalarWhenTablesFallBack) {
  // A 48 KB store cannot keep both authentic-size tables resident; the sweep
  // must drop to the scalar per-segment path and still agree with a pure
  // scalar run (trivially, since SIMD disengages — this pins that behavior).
  SimdOpts opt;
  opt.table_segments = 5000;
  opt.store_bytes = 48 * 1024;
  compare_simd_vs_scalar(AccelStrategy::CompactedReuse, opt);
}

TEST(SlaveForce, FusedFallbackWithTinyStoreMatchesReference) {
  // A 48 KB store cannot hold both authentic ~40 KB compact tables: the
  // secondary falls back to per-segment DMA lookups. Physics must not change,
  // with run-aways in the mix, and the fallback must be counted.
  CompareOpts opt;
  opt.fused = true;
  opt.with_runaways = true;
  opt.store_bytes = 48 * 1024;
  opt.tol_rho = 1e-12;
  opt.tol_f = 1e-12;
  std::uint64_t fallbacks = 0;
  opt.fallbacks_out = &fallbacks;
  compare_forces(AccelStrategy::CompactedReuse, opt);
  EXPECT_GT(fallbacks, 0u);
}

TEST(SlaveForce, FusedStaysResidentWhenBothTablesFit) {
  // At 1500 segments the two ~12 KB tables fit the 64 KB store together with
  // the window: no fallback.
  CompareOpts opt;
  opt.fused = true;
  opt.table_segments = 1500;
  opt.tol_rho = 1e-12;
  opt.tol_f = 1e-12;
  std::uint64_t fallbacks = 0;
  opt.fallbacks_out = &fallbacks;
  compare_forces(AccelStrategy::CompactedReuse, opt);
  EXPECT_EQ(fallbacks, 0u);
}

/// The overlap split (interior while the rho exchange is notionally in
/// flight, boundary after) must reproduce the unsplit compute_forces
/// bit-for-bit: same window walk order per entry, scatter is assignment.
/// Ghost rho is POISONED during the interior phase to prove the interior
/// sweep reads no ghost state.
void compare_split_forces(bool fused, bool with_runaways) {
  MdConfig cfg = accel_config();
  Rig rig(cfg);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 5);
    auto& lnl = engine.lattice();
    if (with_runaways) {
      const std::size_t idx = lnl.box().entry_index({3, 3, 3, 0});
      lnl.entry(idx).r += util::Vec3{0.4, 0.2, 0.1};
      lnl.detach(idx);
    }
    lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());
    ghosts.exchange(comm);
    ASSERT_FALSE(lnl.owned_interior_indices().empty());

    sw::SlaveCorePool pool(8);
    SlaveForceCompute slave(rig.tables, pool, AccelStrategy::CompactedReuse);
    slave.set_fused(fused);

    // Unsplit pass.
    slave.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    slave.compute_forces(lnl);
    std::vector<util::Vec3> f_full(lnl.size());
    for (std::size_t i : lnl.owned_indices()) f_full[i] = lnl.entry(i).f;
    std::vector<util::Vec3> fr_full;
    lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
      fr_full.push_back(lnl.runaway(ri).f);
    });

    // Split pass: poison ghost rho before the interior sweep.
    slave.compute_rho(lnl);
    const lat::LocalBox& b = lnl.box();
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      if (!b.owns(b.coord_of(i))) lnl.entry(i).rho = 1e300;
    }
    slave.compute_forces_interior(lnl);
    ghosts.exchange_rho(comm);
    slave.compute_forces_boundary(lnl);

    for (std::size_t i : lnl.owned_indices()) {
      ASSERT_EQ(lnl.entry(i).f, f_full[i]) << "entry " << i;
    }
    std::size_t k = 0;
    lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
      ASSERT_EQ(lnl.runaway(ri).f, fr_full[k++]);
    });
    EXPECT_EQ(k, fr_full.size());
  });
}

TEST(SlaveForce, SplitFusedMatchesUnsplitBitwise) {
  compare_split_forces(/*fused=*/true, /*with_runaways=*/false);
}

TEST(SlaveForce, SplitTwoPassMatchesUnsplitBitwise) {
  compare_split_forces(/*fused=*/false, /*with_runaways=*/false);
}

TEST(SlaveForce, SplitWithRunawaysMatchesUnsplitBitwise) {
  compare_split_forces(/*fused=*/true, /*with_runaways=*/true);
}

TEST(SlaveForce, CompactedUsesFarFewerDmaOps) {
  // The whole point of table compaction (paper Fig. 9): per-lookup row DMAs
  // vanish once the compact table is resident. Measured on the two-pass
  // shape, which stages exactly one table per sweep (the paper's design).
  sw::DmaStats trad, compact;
  CompareOpts opt;
  opt.stats_out = &trad;
  compare_forces(AccelStrategy::TraditionalTable, opt);
  opt.stats_out = &compact;
  compare_forces(AccelStrategy::CompactedTable, opt);
  EXPECT_GT(trad.get_ops, 10u * compact.get_ops)
      << "traditional=" << trad.get_ops << " compacted=" << compact.get_ops;
}

TEST(SlaveForce, ReuseReducesDmaBytes) {
  // Needs a box wider than one block along x, or there is nothing to reuse.
  sw::DmaStats plain, reuse;
  CompareOpts opt;
  opt.box_cells = 12;
  opt.stats_out = &plain;
  compare_forces(AccelStrategy::CompactedTable, opt);
  opt.stats_out = &reuse;
  compare_forces(AccelStrategy::CompactedReuse, opt);
  EXPECT_LT(reuse.get_bytes, plain.get_bytes);
}

TEST(SlaveForce, FusedSweepCutsForcePhaseGetBytesByFortyPercent) {
  // The acceptance bar of the fused-sweep PR: one window pass instead of two
  // must drop force-phase DMA get bytes by >= 40% on identical inputs (both
  // tables resident at 1500 segments).
  MdConfig cfg = accel_config();
  cfg.nx = cfg.ny = cfg.nz = 10;
  cfg.table_segments = 1500;
  Rig rig(cfg);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 2);
    auto& lnl = engine.lattice();
    lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());

    auto force_phase_get_bytes = [&](bool fused) {
      sw::SlaveCorePool pool(8);
      SlaveForceCompute slave(rig.tables, pool, AccelStrategy::CompactedReuse);
      slave.set_fused(fused);
      slave.compute_rho(lnl);
      ghosts.exchange_rho(comm);
      slave.reset_stats();  // isolate the force phase
      slave.compute_forces(lnl);
      EXPECT_EQ(slave.table_fallbacks(), 0u);
      return slave.dma_stats().get_bytes;
    };

    const std::uint64_t two_pass = force_phase_get_bytes(false);
    const std::uint64_t fused = force_phase_get_bytes(true);
    EXPECT_LE(static_cast<double>(fused), 0.6 * static_cast<double>(two_pass))
        << "fused=" << fused << " two_pass=" << two_pass;
  });
}

TEST(SlaveForce, ComputeForcesAloneRepacksPositions) {
  // compute_forces without a preceding compute_rho (no fresh packed array)
  // must fall back to a full pack and still match the reference.
  MdConfig cfg = accel_config();
  Rig rig(cfg);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 3);
    auto& lnl = engine.lattice();
    lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());

    ReferenceForce ref(rig.tables);
    ref.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    ref.compute_forces(lnl);
    std::vector<util::Vec3> f_ref(lnl.size());
    for (std::size_t i : lnl.owned_indices()) f_ref[i] = lnl.entry(i).f;

    // rho (and its ghosts) are already in place; call compute_forces cold.
    sw::SlaveCorePool pool(4);
    SlaveForceCompute slave(rig.tables, pool, AccelStrategy::CompactedReuse);
    slave.compute_forces(lnl);
    double max_err = 0.0;
    for (std::size_t i : lnl.owned_indices()) {
      if (!lnl.entry(i).is_atom()) continue;
      max_err = std::max(max_err, (lnl.entry(i).f - f_ref[i]).norm());
    }
    EXPECT_LT(max_err, 1e-12);
  });
}

TEST(SlaveForce, RejectsAlloyTables) {
  const auto alloy = pot::EamTableSet::build(pot::EamModel::iron_copper(), 500);
  sw::SlaveCorePool pool(4);
  EXPECT_THROW(SlaveForceCompute(alloy, pool, AccelStrategy::CompactedTable),
               std::invalid_argument);
}

TEST(SlaveForce, EngineIntegrationProducesSameTrajectory) {
  const MdConfig cfg = accel_config();
  Rig rig(cfg);

  auto run_with = [&](SlaveForceCompute* kernel) {
    std::vector<util::Vec3> pos;
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
      engine.use_slave_kernel(kernel);
      engine.initialize(comm);
      engine.run(comm, 5);
      auto& lnl = engine.lattice();
      for (std::size_t i : lnl.owned_indices()) pos.push_back(lnl.entry(i).r);
    });
    return pos;
  };

  const auto ref = run_with(nullptr);
  sw::SlaveCorePool pool(8);
  SlaveForceCompute slave(rig.tables, pool, AccelStrategy::CompactedReuse);
  const auto acc = run_with(&slave);
  ASSERT_EQ(ref.size(), acc.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_err = std::max(max_err, (ref[i] - acc[i]).norm());
  }
  EXPECT_LT(max_err, 1e-8);
}

TEST(SlaveForce, ModeledTimeOverlapsOnlyWithDoubleBuffer) {
  // The double-buffered model overlaps DMA with compute: its modeled time is
  // max(dma, compute) per core, which is bounded by the serial sum of the
  // SAME run's components (cross-run wall-clock comparisons are too noisy).
  const MdConfig cfg = accel_config();
  Rig rig(cfg);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    auto& lnl = engine.lattice();

    sw::SlaveCorePool pool(4);
    SlaveForceCompute dbl(rig.tables, pool, AccelStrategy::CompactedReuseDouble);
    dbl.compute_rho(lnl);
    const double overlap_model = dbl.modeled_time();
    const double dma_model = pool.max_modeled_dma_time();
    const double compute_model = dbl.compute_seconds();

    EXPECT_GT(overlap_model, 0.0);
    EXPECT_GT(dma_model, 0.0);
    // max(dma, compute) per core: bounded below by each component's max and
    // above by their sum.
    EXPECT_GE(overlap_model, dma_model * (1.0 - 1e-12));
    EXPECT_LE(overlap_model, dma_model + compute_model + 1e-12);
  });
}

}  // namespace
}  // namespace mmd::md
