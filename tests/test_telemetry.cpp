#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/world.h"
#include "sunway/slave_pool.h"
#include "telemetry/export.h"
#include "telemetry/registry.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"

namespace mmd::telemetry {
namespace {

TEST(MetricsRegistry, PerRankSlotsAndAggregate) {
  MetricsRegistry reg(3);
  reg.add(0, "events", 5);
  reg.add(1, "events", 7);
  reg.add(2, "events");  // default +1
  reg.set_gauge(0, "seconds", 1.5);
  reg.set_gauge(1, "seconds", 3.0);
  reg.set_gauge(2, "seconds", 2.0);
  reg.observe(0, "batch", 1.0);
  reg.observe(1, "batch", 3.0);
  reg.observe(2, "batch", 2.0);

  const auto agg = reg.aggregate();
  EXPECT_EQ(agg.counter("events"), 13u);
  EXPECT_EQ(agg.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(agg.gauge_maximum("seconds"), 3.0);
  EXPECT_DOUBLE_EQ(agg.gauge_sum.at("seconds"), 6.5);
  const auto& d = agg.dists.at("batch");
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 3.0);
}

TEST(MetricsRegistry, OutOfRangeRankIsDropped) {
  MetricsRegistry reg(2);
  reg.add(-1, "x", 1);
  reg.add(2, "x", 1);
  reg.set_gauge(7, "g", 1.0);
  reg.observe(7, "d", 1.0);
  EXPECT_EQ(reg.aggregate().counter("x"), 0u);
}

TEST(MetricsRegistry, AggregationAcrossConcurrentRankWriters) {
  // The RankTraffic discipline: each rank's thread writes only its own slot,
  // lock-free; aggregation after join sees every write.
  constexpr int kRanks = 8;
  constexpr int kWrites = 10000;
  MetricsRegistry reg(kRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&reg, r] {
      for (int i = 0; i < kWrites; ++i) {
        reg.add(r, "ops");
        reg.observe(r, "value", static_cast<double>(i));
      }
      reg.set_gauge(r, "rank_id", static_cast<double>(r));
    });
  }
  for (auto& t : threads) t.join();

  const auto agg = reg.aggregate();
  EXPECT_EQ(agg.counter("ops"), static_cast<std::uint64_t>(kRanks) * kWrites);
  EXPECT_DOUBLE_EQ(agg.gauge_maximum("rank_id"), kRanks - 1.0);
  const auto& d = agg.dists.at("value");
  EXPECT_EQ(d.count(), static_cast<std::size_t>(kRanks) * kWrites);
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), kWrites - 1.0);
  EXPECT_NEAR(d.mean(), (kWrites - 1.0) / 2.0, 1e-9);
}

TEST(MetricsRegistry, SnapshotAndResetPreventsCrossJobBleed) {
  // Campaign service mode reuses one registry across jobs; the snapshot must
  // carry everything the job wrote, and the next job must start from zero.
  MetricsRegistry reg(2);
  reg.add(0, "kmc.events", 10);
  reg.add(1, "kmc.events", 5);
  reg.set_gauge(0, "md.wall_seconds", 2.0);
  reg.observe(0, "ckpt.write_seconds", 0.5);

  const auto first = reg.snapshot_and_reset();
  EXPECT_EQ(first.counter("kmc.events"), 15u);
  EXPECT_DOUBLE_EQ(first.gauge_maximum("md.wall_seconds"), 2.0);
  EXPECT_EQ(first.dists.at("ckpt.write_seconds").count(), 1u);

  // Second "job" writes a disjoint and an overlapping name; nothing of job 1
  // may appear — in particular the stale gauge must be gone, not kept at its
  // old value.
  reg.add(0, "kmc.events", 3);
  const auto second = reg.snapshot_and_reset();
  EXPECT_EQ(second.counter("kmc.events"), 3u);
  EXPECT_EQ(second.gauge_max.count("md.wall_seconds"), 0u);
  EXPECT_EQ(second.dists.count("ckpt.write_seconds"), 0u);

  // And after both snapshots the registry is empty.
  const auto empty = reg.aggregate();
  EXPECT_TRUE(empty.counters.empty());
  EXPECT_TRUE(empty.gauge_max.empty());
  EXPECT_TRUE(empty.dists.empty());
}

TEST(MetricsRegistry, AggregateMergeMatchesCrossRankSemantics) {
  // merge() is the fleet rollup: counters sum, gauge maxima max, gauge sums
  // add, distributions merge exactly (same moments as observing everything
  // into one registry).
  MetricsRegistry a(1), b(1);
  a.add(0, "jobs", 2);
  a.set_gauge(0, "busy", 1.0);
  a.observe(0, "lat", 1.0);
  a.observe(0, "lat", 3.0);
  b.add(0, "jobs", 5);
  b.add(0, "extra", 1);
  b.set_gauge(0, "busy", 4.0);
  b.observe(0, "lat", 5.0);

  auto fleet = a.aggregate();
  fleet.merge(b.aggregate());
  EXPECT_EQ(fleet.counter("jobs"), 7u);
  EXPECT_EQ(fleet.counter("extra"), 1u);
  EXPECT_DOUBLE_EQ(fleet.gauge_maximum("busy"), 4.0);
  EXPECT_DOUBLE_EQ(fleet.gauge_sum.at("busy"), 5.0);
  const auto& d = fleet.dists.at("lat");
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 5.0);

  // Merging an empty aggregate is the identity.
  auto copy = fleet;
  copy.merge(MetricsRegistry(1).aggregate());
  EXPECT_EQ(copy.counter("jobs"), 7u);
  EXPECT_DOUBLE_EQ(copy.gauge_maximum("busy"), 4.0);
}

TEST(Session, ThreadScopeOverridesCurrentPerThread) {
  Session global(1);
  ASSERT_TRUE(global.installed());
  EXPECT_EQ(Session::current(), &global);

  Session::Options opt;
  opt.install_global = false;
  opt.lanes_per_rank = 1;
  opt.events_per_track = 16;
  Session scoped(1, opt);
  EXPECT_FALSE(scoped.installed());

  {
    Session::ThreadScope scope(&scoped);
    EXPECT_EQ(Session::current(), &scoped);
    // Another thread without an override still sees the global session.
    Session* other_thread_view = nullptr;
    std::thread([&] { other_thread_view = Session::current(); }).join();
    EXPECT_EQ(other_thread_view, &global);
    {
      Session::ThreadScope inner(nullptr);  // "no telemetry here"
      EXPECT_EQ(Session::current(), nullptr);
    }
    EXPECT_EQ(Session::current(), &scoped);
  }
  EXPECT_EQ(Session::current(), &global);
}

TEST(Session, WorldRunPropagatesSubmitterScopeToRankThreads) {
  // Two concurrent "jobs", each a World under its own thread-scoped session:
  // every rank's writes must land in its own job's registry, none in the
  // other's and none in the global fallback.
  Session global(1);
  auto run_job = [](Session& s, std::uint64_t amount) {
    Session::ThreadScope scope(&s);
    comm::World world(2);
    world.run([&](comm::Comm& comm) {
      count("job.steps", amount + static_cast<std::uint64_t>(comm.rank()));
      comm.barrier();
    });
  };
  Session::Options opt;
  opt.install_global = false;
  opt.lanes_per_rank = 1;
  opt.events_per_track = 64;
  Session job_a(2, opt), job_b(2, opt);
  std::thread ta([&] { run_job(job_a, 100); });
  std::thread tb([&] { run_job(job_b, 500); });
  ta.join();
  tb.join();
  EXPECT_EQ(job_a.metrics().aggregate().counter("job.steps"), 201u);
  EXPECT_EQ(job_b.metrics().aggregate().counter("job.steps"), 1001u);
  EXPECT_EQ(global.metrics().aggregate().counter("job.steps"), 0u);
}

TEST(Tracer, SpansAreNoopsOnUnattachedThreads) {
  Tracer tracer(1, 1, 16);
  { MMD_TRACE_SCOPE("orphan"); }
  EXPECT_EQ(tracer.track(0), nullptr);
}

TEST(Tracer, RecordsScopedSpans) {
  Tracer tracer(2, 2, 16);
  tracer.attach_calling_thread(1, 0);
  {
    MMD_TRACE_SCOPE("outer");
    MMD_TRACE_SCOPE("inner");
  }
  Tracer::detach_calling_thread();

  const Tracer::Track* t = tracer.track(1 * 2 + 0);
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->recorded, 2u);
  // Inner scope closes first.
  EXPECT_STREQ(t->ring[0].name, "inner");
  EXPECT_STREQ(t->ring[1].name, "outer");
  EXPECT_GE(t->ring[1].t1_ns, t->ring[1].t0_ns);
  // Outer began before inner and ended after it.
  EXPECT_LE(t->ring[1].t0_ns, t->ring[0].t0_ns);
  EXPECT_GE(t->ring[1].t1_ns, t->ring[0].t1_ns);
}

TEST(Tracer, RingWrapsAndCountsDrops) {
  Tracer tracer(1, 1, 4);
  tracer.attach_calling_thread(0, 0);
  for (int i = 0; i < 10; ++i) {
    MMD_TRACE_SCOPE("span");
  }
  Tracer::detach_calling_thread();

  const Tracer::Track* t = tracer.track(0);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->recorded, 10u);
  EXPECT_EQ(t->live(), 4u);
  EXPECT_EQ(t->dropped(), 6u);
  EXPECT_EQ(tracer.total_dropped(), 6u);
}

TEST(Tracer, OutOfRangeAttachDetaches) {
  Tracer tracer(2, 2, 16);
  tracer.attach_calling_thread(0, 0);
  tracer.attach_calling_thread(5, 0);  // out of range
  EXPECT_EQ(Tracer::calling_thread_tracer(), nullptr);
  { MMD_TRACE_SCOPE("dropped"); }
  const Tracer::Track* t = tracer.track(0);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->recorded, 0u);
}

TEST(Session, InstallsAsCurrentAndUninstalls) {
  EXPECT_EQ(Session::current(), nullptr);
  {
    Session s(2);
    EXPECT_TRUE(s.installed());
    EXPECT_EQ(Session::current(), &s);
    // A nested session stays usable but is not current.
    Session nested(1);
    EXPECT_FALSE(nested.installed());
    EXPECT_EQ(Session::current(), &s);
  }
  EXPECT_EQ(Session::current(), nullptr);
}

TEST(Session, WorldRunAttachesRanksAndFoldsTraffic) {
  Session session(3);
  comm::World world(3);
  world.run([](comm::Comm& c) {
    // Every rank thread is attached at its own master lane...
    EXPECT_EQ(attached_metrics_rank(), c.rank());
    { MMD_TRACE_SCOPE("phase.a"); }
    count("work_items", static_cast<std::uint64_t>(c.rank() + 1));
    // ... and comm traffic is folded into the registry after the run.
    c.send_value((c.rank() + 1) % c.size(), 1, c.rank());
    c.recv(comm::kAnySource, 1);
    c.barrier();
  });

  const auto agg = session.metrics().aggregate();
  EXPECT_EQ(agg.counter("work_items"), 1u + 2u + 3u);
  EXPECT_EQ(agg.counter("comm.p2p.msgs"), 3u);
  EXPECT_EQ(agg.counter("comm.p2p.bytes"), 3u * sizeof(int));
  EXPECT_EQ(agg.counter("comm.collectives"), 3u);
  // Registry totals agree with the World's own RankTraffic accounting.
  EXPECT_EQ(agg.counter("comm.p2p.bytes"), world.total_traffic().p2p_bytes_sent);

  for (int r = 0; r < 3; ++r) {
    const Tracer::Track* t =
        session.tracer().track(r * session.tracer().lanes_per_rank());
    ASSERT_NE(t, nullptr);
    ASSERT_GE(t->recorded, 1u);
    EXPECT_STREQ(t->ring[0].name, "phase.a");
  }
}

TEST(Session, SlaveCorePoolEmitsPerCpeSpansAndFoldsDma) {
  Session session(1);
  session.tracer().attach_calling_thread(0, 0);

  sw::SlaveCorePool pool(4, 1024);
  std::vector<double> main_mem(64, 1.0);
  pool.parallel_for(main_mem.size(), [&](sw::SlaveCtx& ctx, std::size_t i) {
    double x = 0.0;
    ctx.dma->get(&x, &main_mem[i], sizeof(double));
    x *= 2.0;
    ctx.dma->put(&main_mem[i], &x, sizeof(double));
  });

  // The caller's master-lane binding is restored after the fork/join.
  EXPECT_EQ(attached_metrics_rank(), 0);
  Tracer::detach_calling_thread();

  const auto agg = session.metrics().aggregate();
  EXPECT_EQ(agg.counter("sw.dma.get_ops"), 64u);
  EXPECT_EQ(agg.counter("sw.dma.put_ops"), 64u);
  EXPECT_EQ(agg.counter("sw.dma.get_bytes"), 64u * sizeof(double));
  EXPECT_EQ(agg.counter("sw.dma.put_bytes"), 64u * sizeof(double));

  // One span per logical CPE, on that CPE's lane, tagged with its DMA load.
  std::uint64_t span_ops = 0;
  int lanes_with_spans = 0;
  for (int lane = 1; lane <= 4; ++lane) {
    const Tracer::Track* t = session.tracer().track(lane);
    if (t == nullptr || t->recorded == 0) continue;
    ++lanes_with_spans;
    for (std::size_t e = 0; e < t->live(); ++e) {
      EXPECT_STREQ(t->ring[e].name, "cpe.kernel");
      span_ops += t->ring[e].dma_ops;
    }
  }
  EXPECT_EQ(lanes_with_spans, 4);
  EXPECT_EQ(span_ops, 128u);  // 64 gets + 64 puts
}

TEST(Export, ChromeTraceIsWellFormedJson) {
  Session session(2);
  comm::World world(2);
  world.run([](comm::Comm& c) {
    { MMD_TRACE_SCOPE("md.force"); }
    { MMD_TRACE_SCOPE("kmc.sector"); }
    c.barrier();
  });

  std::ostringstream os;
  write_chrome_trace(os, session.tracer());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"md.force\""), std::string::npos);
  EXPECT_NE(json.find("\"kmc.sector\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 1\""), std::string::npos);
  // Balanced braces/brackets => loads in chrome://tracing / Perfetto.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Export, MetricsJsonContainsAggregateAndRanks) {
  MetricsRegistry reg(2);
  reg.add(0, "kmc.events", 40);
  reg.add(1, "kmc.events", 2);
  reg.set_gauge(0, "md.compute_seconds", 0.25);
  reg.observe(1, "kmc.sector_events", 4.0);

  std::ostringstream os;
  write_metrics_json(os, reg);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"nranks\":2"), std::string::npos);
  EXPECT_NE(json.find("\"kmc.events\":42"), std::string::npos);
  EXPECT_NE(json.find("\"md.compute_seconds\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"distributions\""), std::string::npos);
  EXPECT_NE(json.find("\"ranks\":["), std::string::npos);
}

}  // namespace
}  // namespace mmd::telemetry
