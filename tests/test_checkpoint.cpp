// Fault-tolerant checkpoint/restart of the coupled MD-KMC pipeline:
//   - io::CheckpointStore atomic-write / commit / prune discipline,
//   - io::FaultInjector units (truncate, bit-flip, fail-on-nth-write),
//   - restart equivalence: run N cycles vs run N/2, "crash", resume — the
//     reports (defect census included) must be bit-identical,
//   - graceful degradation: every injected fault is detected at load or at
//     write time, and the run falls back to the previous good epoch instead
//     of crashing.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.h"
#include "io/checkpoint_store.h"
#include "io/fault_injector.h"

namespace mmd {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty scratch directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path d = fs::path(::testing::TempDir()) / ("mmd_ckpt_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d.string();
}

core::SimulationConfig base_config() {
  core::SimulationConfig cfg;
  cfg.md.nx = cfg.md.ny = cfg.md.nz = 8;
  cfg.md.temperature = 300.0;
  cfg.md.table_segments = 800;
  cfg.kmc_table_segments = 400;
  cfg.md_time_ps = 0.03;
  cfg.pka_count = 2;
  cfg.pka_energy_ev = 70.0;
  cfg.kmc_cycles = 8;
  cfg.nranks = 2;
  return cfg;
}

/// The reference: one uninterrupted run of base_config(), computed once.
const core::SimulationReport& clean_full_report() {
  static const core::SimulationReport r = [] {
    core::Simulation sim(base_config());
    return sim.run();
  }();
  return r;
}

/// Restart equivalence is *bit* identity, so doubles compare with ==.
void expect_same_physics(const core::SimulationReport& a,
                         const core::SimulationReport& b) {
  EXPECT_EQ(a.md_defects.atoms, b.md_defects.atoms);
  EXPECT_EQ(a.md_defects.vacancies, b.md_defects.vacancies);
  EXPECT_EQ(a.md_defects.interstitials, b.md_defects.interstitials);
  EXPECT_EQ(a.kmc_events, b.kmc_events);
  EXPECT_EQ(a.kmc_mc_time, b.kmc_mc_time);
  EXPECT_EQ(a.vacancy_concentration, b.vacancy_concentration);
  EXPECT_EQ(a.real_time_days, b.real_time_days);
  EXPECT_EQ(a.clusters_after_md.num_vacancies, b.clusters_after_md.num_vacancies);
  EXPECT_EQ(a.clusters_after_md.num_clusters, b.clusters_after_md.num_clusters);
  EXPECT_EQ(a.clusters_after_md.mean_size, b.clusters_after_md.mean_size);
  EXPECT_EQ(a.clusters_after_md.max_size, b.clusters_after_md.max_size);
  EXPECT_EQ(a.clusters_after_kmc.num_vacancies, b.clusters_after_kmc.num_vacancies);
  EXPECT_EQ(a.clusters_after_kmc.num_clusters, b.clusters_after_kmc.num_clusters);
  EXPECT_EQ(a.clusters_after_kmc.mean_size, b.clusters_after_kmc.mean_size);
  EXPECT_EQ(a.clusters_after_kmc.max_size, b.clusters_after_kmc.max_size);
  EXPECT_EQ(a.final_vacancies, b.final_vacancies);
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

TEST(CheckpointStore, CommitPrunesOldEpochsAndLeavesNoTempFiles) {
  const std::string dir = fresh_dir("store_prune");
  io::CheckpointStore store(dir, 2);
  store.set_keep_epochs(2);

  const std::string blob = "pretend-checkpoint-payload";
  for (std::uint64_t e : {1u, 2u, 3u}) {
    EXPECT_TRUE(store.write_rank_blob(e, 0, blob));
    EXPECT_TRUE(store.write_rank_blob(e, 1, blob + "-r1"));
    EXPECT_TRUE(store.commit_epoch(e));
  }

  EXPECT_EQ(store.committed_epochs(), (std::vector<std::uint64_t>{2, 3}));
  // Epoch 1 was pruned; 2 and 3 survive with every rank file.
  EXPECT_FALSE(fs::exists(store.rank_path(1, 0)));
  EXPECT_FALSE(fs::exists(store.rank_path(1, 1)));
  for (std::uint64_t e : {2u, 3u}) {
    EXPECT_TRUE(fs::exists(store.rank_path(e, 0)));
    EXPECT_TRUE(fs::exists(store.rank_path(e, 1)));
  }
  // Round trip, including the pruned epoch reading as absent.
  ASSERT_TRUE(store.read_rank_blob(3, 1).has_value());
  EXPECT_EQ(*store.read_rank_blob(3, 1), blob + "-r1");
  EXPECT_FALSE(store.read_rank_blob(1, 0).has_value());
  // Atomic rename discipline: no .tmp stragglers.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  fs::remove_all(dir);
}

TEST(CheckpointStore, ConcurrentSiblingStoresStayIsolated) {
  // Campaign service mode gives every job its own CheckpointStore in a
  // sibling subdirectory of one root. Drive several stores concurrently and
  // check there is no manifest cross-talk and pruning stays per-store.
  const std::string root = fresh_dir("store_siblings");
  constexpr int kStores = 4;
  constexpr std::uint64_t kEpochs = 6;
  std::vector<std::unique_ptr<io::CheckpointStore>> stores;
  for (int s = 0; s < kStores; ++s) {
    stores.push_back(std::make_unique<io::CheckpointStore>(
        root + "/job" + std::to_string(s), /*nranks=*/1));
    stores.back()->set_keep_epochs(2);
  }
  std::vector<std::thread> threads;
  for (int s = 0; s < kStores; ++s) {
    threads.emplace_back([&, s] {
      for (std::uint64_t e = 1; e <= kEpochs; ++e) {
        // Payload unique per (store, epoch) so cross-talk would be visible.
        ASSERT_TRUE(stores[static_cast<std::size_t>(s)]->write_rank_blob(
            e, 0, "store" + std::to_string(s) + "-epoch" + std::to_string(e)));
        ASSERT_TRUE(stores[static_cast<std::size_t>(s)]->commit_epoch(e));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int s = 0; s < kStores; ++s) {
    auto& store = *stores[static_cast<std::size_t>(s)];
    // Per-store keep-2 pruning: exactly the two newest epochs survive.
    EXPECT_EQ(store.committed_epochs(),
              (std::vector<std::uint64_t>{kEpochs - 1, kEpochs}));
    for (std::uint64_t e = 1; e <= kEpochs - 2; ++e) {
      EXPECT_FALSE(fs::exists(store.rank_path(e, 0)));
    }
    // Each store's blobs are its own (no manifest or payload cross-talk).
    const auto blob = store.read_rank_blob(kEpochs, 0);
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(*blob, "store" + std::to_string(s) + "-epoch" +
                         std::to_string(kEpochs));
  }
  fs::remove_all(root);
}

TEST(CheckpointStore, ManifestForDifferentRankCountIsIgnored) {
  const std::string dir = fresh_dir("store_ranks");
  {
    io::CheckpointStore store(dir, 2);
    ASSERT_TRUE(store.write_rank_blob(5, 0, "a"));
    ASSERT_TRUE(store.write_rank_blob(5, 1, "b"));
    ASSERT_TRUE(store.commit_epoch(5));
    EXPECT_EQ(store.committed_epochs().size(), 1u);
  }
  // The same directory seen by a 4-rank run offers nothing to resume from.
  io::CheckpointStore other(dir, 4);
  EXPECT_TRUE(other.committed_epochs().empty());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, TruncateFiresOnceThenPassesThrough) {
  io::FaultInjector fi;
  fi.arm_truncate_at(10);
  std::string blob(100, 'x');
  EXPECT_TRUE(fi.apply(blob));
  EXPECT_EQ(blob.size(), 10u);
  std::string blob2(100, 'y');
  EXPECT_TRUE(fi.apply(blob2));  // fire_once: second write is untouched
  EXPECT_EQ(blob2.size(), 100u);
  EXPECT_EQ(fi.writes_seen(), 2);
  EXPECT_EQ(fi.faults_injected(), 1);
}

TEST(FaultInjector, BitFlipInvertsExactlyOneBit) {
  io::FaultInjector fi;
  fi.arm_bit_flip(/*byte=*/5, /*bit=*/3);
  std::string blob(16, '\0');
  EXPECT_TRUE(fi.apply(blob));
  for (std::size_t i = 0; i < blob.size(); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(blob[i]), i == 5 ? 0x08 : 0x00) << i;
  }
  EXPECT_EQ(fi.faults_injected(), 1);
}

TEST(FaultInjector, FailsExactlyTheNthWrite) {
  io::FaultInjector fi;
  fi.arm_fail_on_nth_write(3);
  std::string blob = "payload";
  EXPECT_TRUE(fi.apply(blob));
  EXPECT_TRUE(fi.apply(blob));
  EXPECT_FALSE(fi.apply(blob));  // the 3rd write dies
  EXPECT_TRUE(fi.apply(blob));   // fire_once: later writes succeed again
  EXPECT_EQ(fi.writes_seen(), 4);
  EXPECT_EQ(fi.faults_injected(), 1);
}

TEST(FaultInjector, TruncateThroughStoreShrinksThePersistedFile) {
  const std::string dir = fresh_dir("store_truncate");
  io::FaultInjector fi;
  fi.arm_truncate_at(100);
  io::CheckpointStore store(dir, 1);
  store.set_fault_injector(&fi);
  const std::string blob(4096, 'z');
  EXPECT_TRUE(store.write_rank_blob(7, 0, blob));  // "succeeds", short
  EXPECT_EQ(fs::file_size(store.rank_path(7, 0)), 100u);
  EXPECT_EQ(fi.faults_injected(), 1);
  fs::remove_all(dir);
}

TEST(FaultInjector, FailedWriteLeavesNoFileBehind) {
  const std::string dir = fresh_dir("store_fail");
  io::FaultInjector fi;
  fi.arm_fail_on_nth_write(1);
  io::CheckpointStore store(dir, 1);
  store.set_fault_injector(&fi);
  EXPECT_FALSE(store.write_rank_blob(7, 0, "doomed"));
  EXPECT_FALSE(fs::exists(store.rank_path(7, 0)));
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Restart equivalence and graceful degradation through core::Simulation
// ---------------------------------------------------------------------------

TEST(CheckpointRestart, ResumeMatchesUninterruptedRun) {
  const std::string dir = fresh_dir("resume_equiv");

  // Run the first half only and checkpoint at cycle 4 — the "killed" run.
  core::SimulationConfig half = base_config();
  half.kmc_cycles = 4;
  half.checkpoint_dir = dir;
  half.checkpoint_every = 4;
  const auto killed = core::Simulation(half).run();
  EXPECT_FALSE(killed.resumed);

  // Resume and finish all 8 cycles.
  core::SimulationConfig rest = base_config();
  rest.checkpoint_dir = dir;
  rest.checkpoint_every = 4;
  rest.resume = true;
  const auto resumed = core::Simulation(rest).run();
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from_cycle, 4u);

  expect_same_physics(clean_full_report(), resumed);
  fs::remove_all(dir);
}

TEST(CheckpointRestart, IncrementalResumeMatchesRescanOracle) {
  const std::string dir = fresh_dir("resume_incremental_oracle");

  // The oracle: one uninterrupted run with the incremental event tables OFF
  // (full table rebuild after every executed event). The default pipeline is
  // incremental, so this pins end-to-end bit-equivalence of the two modes.
  core::SimulationConfig oracle = base_config();
  oracle.kmc_incremental = false;
  const auto rescan = core::Simulation(oracle).run();
  expect_same_physics(clean_full_report(), rescan);

  // Kill an incremental run mid-campaign and resume it. The resumed
  // incremental run must still match the rescan oracle bit for bit: the
  // per-sector event table is rebuilt from the restored site states, so no
  // table state needs to survive the crash.
  core::SimulationConfig half = base_config();
  half.kmc_cycles = 4;
  half.checkpoint_dir = dir;
  half.checkpoint_every = 4;
  core::Simulation(half).run();

  core::SimulationConfig rest = base_config();
  rest.checkpoint_dir = dir;
  rest.checkpoint_every = 4;
  rest.resume = true;
  const auto resumed = core::Simulation(rest).run();
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from_cycle, 4u);
  expect_same_physics(rescan, resumed);
  fs::remove_all(dir);
}

TEST(CheckpointRestart, FallsBackPastCorruptNewestEpoch) {
  const std::string dir = fresh_dir("resume_fallback");

  // A full checkpointed run commits epochs 4 and 8 (keep = 2).
  core::SimulationConfig cfg = base_config();
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 4;
  const auto full = core::Simulation(cfg).run();
  expect_same_physics(clean_full_report(), full);

  io::CheckpointStore paths(dir, cfg.nranks);
  ASSERT_EQ(paths.committed_epochs(), (std::vector<std::uint64_t>{4, 8}));

  // Media corruption on ONE rank's newest file: flip a byte mid-payload. The
  // other rank validates fine, but adoption is collective, so both must fall
  // back together.
  const std::string victim = paths.rank_path(8, 0);
  const auto size = fs::file_size(victim);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(size / 2));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.put(static_cast<char>(c ^ 0x40));
  }

  core::SimulationConfig rest = base_config();
  rest.checkpoint_dir = dir;
  rest.checkpoint_every = 4;
  rest.resume = true;
  const auto resumed = core::Simulation(rest).run();
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from_cycle, 4u);  // epoch 8 rejected, 4 adopted
  expect_same_physics(clean_full_report(), resumed);
  fs::remove_all(dir);
}

TEST(CheckpointRestart, WriteFailureDegradesToPreviousEpoch) {
  const std::string dir = fresh_dir("write_failure");

  // Epoch 4 needs writes 1-2 (two ranks); the 3rd write — epoch 8 — dies.
  io::FaultInjector fi;
  fi.arm_fail_on_nth_write(3);
  core::SimulationConfig cfg = base_config();
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 4;
  cfg.fault_injector = &fi;
  const auto report = core::Simulation(cfg).run();
  EXPECT_EQ(fi.faults_injected(), 1);

  // The run completed with unchanged physics; only epoch 4 was committed.
  expect_same_physics(clean_full_report(), report);
  io::CheckpointStore paths(dir, cfg.nranks);
  EXPECT_EQ(paths.committed_epochs(), (std::vector<std::uint64_t>{4}));
  // The abandoned epoch's files were discarded on every rank.
  EXPECT_FALSE(fs::exists(paths.rank_path(8, 0)));
  EXPECT_FALSE(fs::exists(paths.rank_path(8, 1)));
  fs::remove_all(dir);
}

TEST(CheckpointRestart, TruncatedFileDetectedAtLoad) {
  const std::string dir = fresh_dir("truncate_load");

  // Epoch 4 lands intact; one epoch-8 file is silently cut to 100 bytes (a
  // crash mid-write that the rename discipline could not catch because the
  // truncation happened before fsync). The epoch still commits — detection
  // must happen at load time.
  io::FaultInjector fi;
  fi.arm_truncate_at(100, /*after_writes=*/2);
  core::SimulationConfig cfg = base_config();
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 4;
  cfg.fault_injector = &fi;
  const auto full = core::Simulation(cfg).run();
  EXPECT_EQ(fi.faults_injected(), 1);
  expect_same_physics(clean_full_report(), full);

  io::CheckpointStore paths(dir, cfg.nranks);
  ASSERT_EQ(paths.committed_epochs(), (std::vector<std::uint64_t>{4, 8}));

  core::SimulationConfig rest = base_config();
  rest.checkpoint_dir = dir;
  rest.checkpoint_every = 4;
  rest.resume = true;
  const auto resumed = core::Simulation(rest).run();
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from_cycle, 4u);
  expect_same_physics(clean_full_report(), resumed);
  fs::remove_all(dir);
}

TEST(CheckpointRestart, CheckpointFromDifferentRunConfigStartsFresh) {
  const std::string dir = fresh_dir("wrong_seed");

  core::SimulationConfig half = base_config();
  half.kmc_cycles = 4;
  half.checkpoint_dir = dir;
  half.checkpoint_every = 4;
  core::Simulation(half).run();

  // Same directory, different seed: the checkpoint belongs to another run
  // and must be refused — the simulation starts over instead of mixing state.
  core::SimulationConfig rest = base_config();
  rest.md.seed += 1;
  rest.checkpoint_dir = dir;
  rest.checkpoint_every = 4;
  rest.resume = true;
  const auto report = core::Simulation(rest).run();
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.resumed_from_cycle, 0u);
  // The fresh run is still a complete, healthy simulation.
  EXPECT_GT(report.md_defects.vacancies, 0u);
  EXPECT_GT(report.kmc_mc_time, 0.0);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mmd
